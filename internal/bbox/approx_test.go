package bbox

import (
	"testing"

	"repro/internal/formula"
)

// TestE4PaperExample3 reproduces §4 Example 3:
//
//	f = ~x&y ∨ x&y ∨ x&z&~w  (the function of Example 2)
//	L_f = ⌈y⌉
//	U_f = ⌈y⌉ ⊔ (⌈x⌉ ⊓ ⌈z⌉)
func TestE4PaperExample3(t *testing.T) {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	f := formula.OrN(
		formula.And(formula.Not(x), y),
		formula.And(x, y),
		formula.AndN(x, z, formula.Not(w)),
	)
	a, err := Approximate(f)
	if err != nil {
		t.Fatal(err)
	}
	if !a.L.Same(VarFunc(1)) {
		t.Errorf("L_f = %v, want [x1]", a.L)
	}
	wantU := JoinFunc(VarFunc(1), MeetFunc(VarFunc(0), VarFunc(2)))
	if !a.U.Same(wantU) {
		t.Errorf("U_f = %v, want %v", a.U, wantU)
	}
}

func TestLowerUpperOfConstants(t *testing.T) {
	l, err := Lower(formula.Zero())
	if err != nil || l.Kind() != FEmpty {
		t.Errorf("L_0 = %v, %v", l, err)
	}
	u, err := Upper(formula.Zero())
	if err != nil || u.Kind() != FEmpty {
		t.Errorf("U_0 = %v, %v", u, err)
	}
	l, err = Lower(formula.One())
	if err != nil || l.Kind() != FUniv {
		t.Errorf("L_1 = %v, %v", l, err)
	}
	u, err = Upper(formula.One())
	if err != nil || u.Kind() != FUniv {
		t.Errorf("U_1 = %v, %v", u, err)
	}
}

func TestLowerOfVariable(t *testing.T) {
	l, err := Lower(formula.Var(3))
	if err != nil || !l.Same(VarFunc(3)) {
		t.Errorf("L_x = %v, %v", l, err)
	}
	u, err := Upper(formula.Var(3))
	if err != nil || !u.Same(VarFunc(3)) {
		t.Errorf("U_x = %v, %v", u, err)
	}
}

// The paper's §4 motivating example: x&y ∨ x&z ≡ x&(y∨z) but the naive
// syntactic transformations differ; the BCF-based upper bound must pick
// the *smaller* (x⊓y) ⊔ (x⊓z), never x ⊓ (y⊔z).
func TestUpperUsesSOPShape(t *testing.T) {
	x, y, z := formula.Var(0), formula.Var(1), formula.Var(2)
	f1 := formula.Or(formula.And(x, y), formula.And(x, z))
	f2 := formula.And(x, formula.Or(y, z))
	u1, err := Upper(f1)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Upper(f2)
	if err != nil {
		t.Fatal(err)
	}
	want := JoinFunc(MeetFunc(VarFunc(0), VarFunc(1)), MeetFunc(VarFunc(0), VarFunc(2)))
	if !u1.Same(want) || !u2.Same(want) {
		t.Errorf("U = %v / %v, want %v (same for both spellings)", u1, u2, want)
	}
	// And on concrete boxes the two box expressions really differ:
	bx := Rect(4, 4, 10, 10)
	by := Rect(0, 0, 1, 1) // disjoint from bx, so ⌈x⌉⊓⌈y⌉ = ∅
	bz := Rect(9, 9, 10, 10)
	env := []Box{bx, by, bz}
	good := want.Eval(2, env)
	naive := MeetFunc(VarFunc(0), JoinFunc(VarFunc(1), VarFunc(2))).Eval(2, env)
	if !naive.Contains(good) || naive.Equal(good) {
		t.Errorf("BCF-based upper bound is not strictly tighter: %v vs %v", good, naive)
	}
}

// Upper must drop negative literals: U_{x&~y} = ⌈x⌉.
func TestUpperDropsNegativeLiterals(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	u, err := Upper(formula.And(x, formula.Not(y)))
	if err != nil {
		t.Fatal(err)
	}
	if !u.Same(VarFunc(0)) {
		t.Errorf("U = %v, want [x0]", u)
	}
	// A purely negative function has universe upper bound.
	u, err = Upper(formula.Not(y))
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind() != FUniv {
		t.Errorf("U_~y = %v, want U", u)
	}
}

// Lower must find atoms hidden by syntax: x ∨ x&y has BCF = x, so L = ⌈x⌉;
// and (x∨y)&(x∨~y) ≡ x similarly.
func TestLowerFindsHiddenAtoms(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	f := formula.And(formula.Or(x, y), formula.Or(x, formula.Not(y)))
	l, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Same(VarFunc(0)) {
		t.Errorf("L = %v, want [x0]", l)
	}
}

// For f = x ∨ y the lower bound is ⌈x⌉ ⊔ ⌈y⌉ = upper bound (f is a pure
// disjunction of atoms, so the bounds coincide).
func TestBoundsCoincideOnDisjunction(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	f := formula.Or(x, y)
	a, err := Approximate(f)
	if err != nil {
		t.Fatal(err)
	}
	want := JoinFunc(VarFunc(0), VarFunc(1))
	if !a.L.Same(want) || !a.U.Same(want) {
		t.Errorf("L = %v, U = %v, want both %v", a.L, a.U, want)
	}
}

// For a conjunction x&y the lower bound is empty (no atom below x&y) while
// the upper is ⌈x⌉⊓⌈y⌉ (Lemma 8).
func TestConjunctionBounds(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	a, err := Approximate(formula.And(x, y))
	if err != nil {
		t.Fatal(err)
	}
	if a.L.Kind() != FEmpty {
		t.Errorf("L_{x&y} = %v, want ∅", a.L)
	}
	if !a.U.Same(MeetFunc(VarFunc(0), VarFunc(1))) {
		t.Errorf("U_{x&y} = %v", a.U)
	}
}

func TestUpperAbsorbsRedundantTerms(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	// BCF(x ∨ x&y) = x, but feed a redundant SOP directly to UpperFromBCF
	// to check the box-level absorption too.
	s := formula.SOP{
		formula.Term{Pos: 0b01},
		formula.Term{Pos: 0b11},
	}
	u := UpperFromBCF(s)
	if !u.Same(VarFunc(0)) {
		t.Errorf("UpperFromBCF = %v, want [x0]", u)
	}
	_ = x
	_ = y
}
