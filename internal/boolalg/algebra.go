// Package boolalg defines the abstract Boolean algebra interface used by the
// constraint engine, together with a finite (atomic) bitset implementation.
//
// The paper's constraint language is interpreted over an arbitrary Boolean
// algebra: two-valued logic, finite set algebras, and — the case that matters
// for spatial databases — the (atomless) algebra of measurable subsets of
// R^k. The query engine is generic over this interface; the spatial region
// algebra in internal/region implements it for the spatial case.
//
// DESIGN.md §2 ("Foundations") places this package in the module map.
package boolalg

import "fmt"

// Element is an opaque value of some Boolean algebra. Elements must only be
// combined through the Algebra that produced them.
type Element interface{}

// Algebra is a Boolean algebra: a bounded, complemented, distributive
// lattice. Implementations must satisfy the usual axioms; the checkers in
// laws.go verify them for test inputs.
type Algebra interface {
	// Bottom returns the least element 0.
	Bottom() Element
	// Top returns the greatest element 1.
	Top() Element
	// Meet returns a ∧ b (set intersection in spatial models).
	Meet(a, b Element) Element
	// Join returns a ∨ b (set union).
	Join(a, b Element) Element
	// Complement returns ¬a (set complement w.r.t. the universe).
	Complement(a Element) Element
	// IsBottom reports whether a = 0. Emptiness testing is the only
	// predicate Algorithm 1's disequations need at runtime.
	IsBottom(a Element) bool
	// Equal reports whether a = b.
	Equal(a, b Element) bool
}

// Diff returns a ∧ ¬b, the relative difference, in any algebra.
func Diff(alg Algebra, a, b Element) Element {
	return alg.Meet(a, alg.Complement(b))
}

// Leqer is an optional fast path: algebras whose containment test is much
// cheaper than materializing a ∧ ¬b (the region algebra refutes it from
// bounding boxes) implement it, and Leq dispatches to it.
type Leqer interface {
	Leq(a, b Element) bool
}

// Overlapper is an optional fast path for the a ∧ b ≠ 0 test, analogous
// to Leqer.
type Overlapper interface {
	Overlaps(a, b Element) bool
}

// Leq reports a ≤ b (a ⊑ b in the paper's containment notation), i.e.
// a ∧ ¬b = 0. Algebras implementing Leqer answer directly.
func Leq(alg Algebra, a, b Element) bool {
	if l, ok := alg.(Leqer); ok {
		return l.Leq(a, b)
	}
	return alg.IsBottom(Diff(alg, a, b))
}

// Overlaps reports a ∧ b ≠ 0. Algebras implementing Overlapper answer
// directly, without building the meet.
func Overlaps(alg Algebra, a, b Element) bool {
	if o, ok := alg.(Overlapper); ok {
		return o.Overlaps(a, b)
	}
	return !alg.IsBottom(alg.Meet(a, b))
}

// Xor returns the symmetric difference (a ∧ ¬b) ∨ (¬a ∧ b).
func Xor(alg Algebra, a, b Element) Element {
	return alg.Join(Diff(alg, a, b), Diff(alg, b, a))
}

// Bitset is a finite Boolean algebra whose elements are subsets of
// {0,…,N-1} for N ≤ 64, represented as uint64 masks. It is *atomic*: every
// nonzero element dominates an atom (a singleton bit). The paper proves
// that projection of multi-disequation systems can be inexact precisely on
// such algebras (Theorem 5 needs atomlessness); experiment E7 exhibits the
// gap using Bitset.
type Bitset struct {
	n    uint // number of atoms
	mask uint64
}

// NewBitset returns the finite Boolean algebra with n atoms (1 ≤ n ≤ 64).
func NewBitset(n uint) *Bitset {
	if n == 0 || n > 64 {
		panic(fmt.Sprintf("boolalg: bitset algebra needs 1..64 atoms, got %d", n))
	}
	var mask uint64
	if n == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << n) - 1
	}
	return &Bitset{n: n, mask: mask}
}

// N returns the number of atoms.
func (b *Bitset) N() uint { return b.n }

// Univ returns the universe mask.
func (b *Bitset) Univ() uint64 { return b.mask }

// Elem returns the element with exactly the given bits set (clipped to the
// universe).
func (b *Bitset) Elem(bits uint64) Element { return bits & b.mask }

// Atom returns the i-th atom.
func (b *Bitset) Atom(i uint) Element {
	if i >= b.n {
		panic(fmt.Sprintf("boolalg: atom %d out of range [0,%d)", i, b.n))
	}
	return uint64(1) << i
}

// Bottom implements Algebra.
func (b *Bitset) Bottom() Element { return uint64(0) }

// Top implements Algebra.
func (b *Bitset) Top() Element { return b.mask }

// Meet implements Algebra.
func (b *Bitset) Meet(x, y Element) Element { return x.(uint64) & y.(uint64) }

// Join implements Algebra.
func (b *Bitset) Join(x, y Element) Element { return x.(uint64) | y.(uint64) }

// Complement implements Algebra.
func (b *Bitset) Complement(x Element) Element { return ^x.(uint64) & b.mask }

// IsBottom implements Algebra.
func (b *Bitset) IsBottom(x Element) bool { return x.(uint64) == 0 }

// Equal implements Algebra.
func (b *Bitset) Equal(x, y Element) bool { return x.(uint64) == y.(uint64) }

// Two is the two-valued Boolean algebra {0,1}, the smallest Bitset.
func Two() *Bitset { return NewBitset(1) }
