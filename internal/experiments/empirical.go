package experiments

import (
	"fmt"
	"time"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/constraint"
	"repro/internal/formula"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
	"repro/internal/workload"
	"repro/internal/zorder"
)

// E5PointTransform demonstrates Figure 3: the combined containment/overlap
// constraints over bounding boxes answered by a single range query on
// 2k-dimensional points, agreeing exactly with direct filtering.
func E5PointTransform() Table {
	rng := workload.NewRNG(5)
	universe := bbox.Rect(0, 0, 1000, 1000)
	store := spatialdb.NewStore(universe, spatialdb.PointRTree)
	n := 5000
	for i := 0; i < n; i++ {
		x, y := rng.Range(0, 990), rng.Range(0, 990)
		w, h := rng.Range(1, 10), rng.Range(1, 10)
		store.MustInsert("objs", "", region.FromBox(bbox.Rect(x, y, x+w, y+h)))
	}
	t := Table{
		ID:     "E5",
		Title:  "range query via 2k-dim point transform",
		Paper:  "a single range query answers a ⊑ ⌈x⌉ ⊑ b ∧ ⌈x⌉⊓c ≠ ∅ (Fig 3)",
		Header: []string{"query", "matches", "agrees-with-scan", "candidates-scanned", "of"},
	}
	specs := []struct {
		name string
		spec bbox.RangeSpec
	}{
		{"containment", bbox.RangeSpec{K: 2, Lower: bbox.Empty(2),
			Upper: bbox.Rect(100, 100, 300, 300)}},
		{"enclosure", bbox.RangeSpec{K: 2, Lower: bbox.Rect(500, 500, 502, 502),
			Upper: bbox.Univ(2)}},
		{"overlap", bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2),
			Overlaps: []bbox.Box{bbox.Rect(400, 400, 450, 450)}}},
		{"combined", bbox.RangeSpec{K: 2, Lower: bbox.Empty(2),
			Upper: bbox.Rect(0, 0, 600, 600),
			Overlaps: []bbox.Box{bbox.Rect(200, 200, 260, 260),
				bbox.Rect(240, 240, 300, 300)}}},
	}
	layer := store.Layer("objs")
	for _, s := range specs {
		layer.ResetStats()
		got := 0
		layer.Search(s.spec, func(spatialdb.Object) bool {
			got++
			return true
		})
		want := 0
		layer.All(func(o spatialdb.Object) bool {
			if s.spec.Matches(o.Box) {
				want++
			}
			return true
		})
		st := layer.Stats()
		t.Rows = append(t.Rows, []string{
			s.name, itoa(got), fmt.Sprintf("%v", got == want),
			itoa(st.Scanned), itoa(n),
		})
	}
	return t
}

// E6Pruning measures the paper's headline claim: constraint-driven
// incremental evaluation eliminates useless partial tuples early, beating
// the naive cross product by orders of magnitude as the database grows.
func E6Pruning() Table {
	t := Table{
		ID:     "E6",
		Title:  "early pruning vs naive cross product (smuggler query)",
		Paper:  "useless partial tuples eliminated as soon as possible (§1)",
		Header: []string{"towns/roads/states", "naive-tuples", "opt-tuples", "reduction", "naive-ms", "opt-ms", "solutions-agree"},
	}
	for _, scale := range []int{1, 2, 4} {
		cfg := workload.MapConfig{
			Seed:     42,
			Towns:    12 * scale,
			Interior: 12 * scale,
			Roads:    30 * scale,
			StatesX:  3, StatesY: 3,
		}
		m := workload.GenMap(cfg)
		store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
		m.Populate(store)
		params := map[string]*region.Region{"C": m.Country, "A": m.Area}
		q := query.Smuggler()

		start := time.Now()
		naive, err := query.RunNaive(q, store, params)
		if err != nil {
			panic(err)
		}
		naiveT := time.Since(start)

		plan, err := query.Compile(q, store)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		opt, err := plan.Run(store, params, query.DefaultOptions)
		if err != nil {
			panic(err)
		}
		optT := time.Since(start)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/%d/%d", cfg.Towns+cfg.Interior, cfg.Roads, cfg.StatesX*cfg.StatesY),
			itoa(naive.Stats.Candidates), itoa(opt.Stats.Candidates),
			fmt.Sprintf("%.1fx", float64(naive.Stats.Candidates)/float64(maxInt(opt.Stats.Candidates, 1))),
			msString(naiveT), msString(optT),
			fmt.Sprintf("%v", naive.Stats.Solutions == opt.Stats.Solutions),
		})
	}
	return t
}

// E7Atomless contrasts projection exactness on the atomless region algebra
// against the gap on atomic algebras (Theorems 5-6 vs the Example-1
// remark): the same projected condition admits a region witness in every
// sampled case, while the one-atom algebra admits none.
func E7Atomless() Table {
	x, y := formula.Var(0), formula.Var(1)
	sys := constraint.Normal{
		F: formula.Zero(),
		G: []*formula.Formula{
			formula.And(x, y),
			formula.And(formula.Not(x), y),
		},
	}
	proj, err := triangular.Proj(sys, 0)
	if err != nil {
		panic(err)
	}

	t := Table{
		ID:     "E7",
		Title:  "quantifier-elimination exactness: atomless vs atomic",
		Paper:  "proj exact on atomless algebras (Thm 6); gap on atomic ones (Ex 1)",
		Header: []string{"algebra", "trials", "proj-accepts", "witness-exists", "exact"},
	}

	// Atomless: random regions y; witness x constructed by splitting y.
	universe := bbox.Rect(0, 0, 100, 100)
	alg := region.NewAlgebra(universe)
	rng := workload.NewRNG(7)
	trials, accepted, witnessed := 60, 0, 0
	for i := 0; i < trials; i++ {
		yv := workload.RandRegion(rng, universe, 3)
		env := []boolalg.Element{alg.Bottom(), yv}
		if !proj.Satisfied(alg, env) {
			continue
		}
		accepted++
		xv := yv.Split() // proper nonempty subregion: x∧y ≠ 0 and ¬x∧y ≠ 0
		env[0] = xv
		if sys.Satisfied(alg, env) {
			witnessed++
		}
	}
	t.Rows = append(t.Rows, []string{
		"regions (atomless)", itoa(trials), itoa(accepted), itoa(witnessed),
		fmt.Sprintf("%v", accepted == witnessed && accepted > 0),
	})

	// Atomic: the one-atom algebra; y = the atom passes the projection but
	// has no witness.
	two := boolalg.Two()
	env2 := []boolalg.Element{two.Bottom(), two.Top()}
	accepts := proj.Satisfied(two, env2)
	exists := false
	for _, xv := range []boolalg.Element{two.Bottom(), two.Top()} {
		if sys.Satisfied(two, []boolalg.Element{xv, two.Top()}) {
			exists = true
		}
	}
	t.Rows = append(t.Rows, []string{
		"1-atom (atomic)", "1", boolToCount(accepts), boolToCount(exists),
		fmt.Sprintf("%v", accepts == exists),
	})
	t.Notes = append(t.Notes,
		"the atomic row SHOULD be inexact: that is the gap Theorem 5 excludes for atomless algebras")
	return t
}

// E8FilterCost measures the paper's §4 cost claim: evaluating compiled
// bounding-box functions per candidate is much cheaper than exact region
// evaluation of the solved constraint, at a modest false-positive rate
// cleaned up by later steps.
func E8FilterCost() Table {
	m := workload.GenMap(workload.MapConfig{Seed: 13, Roads: 60, Towns: 24, Interior: 24})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.Scan)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}
	q := query.Smuggler()
	plan, err := query.Compile(q, store)
	if err != nil {
		panic(err)
	}

	start := time.Now()
	bboxOnly, err := plan.Run(store, params, query.Options{UseIndex: true, UseExact: false})
	if err != nil {
		panic(err)
	}
	bboxT := time.Since(start)

	start = time.Now()
	exact, err := plan.Run(store, params, query.Options{UseIndex: false, UseExact: true})
	if err != nil {
		panic(err)
	}
	exactT := time.Since(start)

	start = time.Now()
	both, err := plan.Run(store, params, query.DefaultOptions)
	if err != nil {
		panic(err)
	}
	bothT := time.Since(start)

	t := Table{
		ID:     "E8",
		Title:  "bounding-box filtering vs exact region evaluation",
		Paper:  "box functions are 'much cheaper' than region complements/intersections (§4)",
		Header: []string{"filter", "time-ms", "tuples-extended", "final-rejected", "solutions"},
	}
	t.Rows = append(t.Rows,
		[]string{"bbox functions only", msString(bboxT), itoa(bboxOnly.Stats.Extended),
			itoa(bboxOnly.Stats.FinalRejected), itoa(bboxOnly.Stats.Solutions)},
		[]string{"exact regions only", msString(exactT), itoa(exact.Stats.Extended),
			itoa(exact.Stats.FinalRejected), itoa(exact.Stats.Solutions)},
		[]string{"bbox + exact", msString(bothT), itoa(both.Stats.Extended),
			itoa(both.Stats.FinalRejected), itoa(both.Stats.Solutions)},
	)
	t.Notes = append(t.Notes,
		"final-rejected on the bbox row counts the approximation's false positives; solutions agree on every row")
	return t
}

// E9ZOrder compares the compiled pipeline against the Orenstein–Manola
// z-order spatial join (the paper's related work) and the nested loop, on
// the binary overlay query both systems support.
func E9ZOrder() Table {
	rng := workload.NewRNG(9)
	universe := bbox.Rect(0, 0, 1024, 1024)
	t := Table{
		ID:     "E9",
		Title:  "binary overlay: compiled pipeline vs z-order join vs nested loop",
		Paper:  "z-order supports only the spatial join; Boolean constraints are more expressive (§1)",
		Header: []string{"n-per-side", "pairs", "pipeline-ms", "zorder-ms", "nested-ms", "agree"},
	}
	for _, n := range []int{100, 200, 400} {
		store := spatialdb.NewStore(universe, spatialdb.RTree)
		var as, bs []zorder.Item
		var aRegs, bRegs []*region.Region
		for i := 0; i < n; i++ {
			x, y := rng.Range(0, 1000), rng.Range(0, 1000)
			r := region.FromBox(bbox.Rect(x, y, x+rng.Range(2, 20), y+rng.Range(2, 20)))
			o := store.MustInsert("as", "", r)
			as = append(as, zorder.Item{ID: o.ID, Box: o.Box})
			aRegs = append(aRegs, r)
			x, y = rng.Range(0, 1000), rng.Range(0, 1000)
			r = region.FromBox(bbox.Rect(x, y, x+rng.Range(2, 20), y+rng.Range(2, 20)))
			o = store.MustInsert("bs", "", r)
			bs = append(bs, zorder.Item{ID: o.ID, Box: o.Box})
			bRegs = append(bRegs, r)
		}

		q := query.New()
		xa, xb := q.Sys.Var("x"), q.Sys.Var("y")
		q.Sys.Overlap(xa, xb)
		q.From("x", "as").From("y", "bs")
		plan, err := query.Compile(q, store)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := plan.Run(store, nil, query.DefaultOptions)
		if err != nil {
			panic(err)
		}
		pipeT := time.Since(start)

		space := zorder.NewSpace(universe)
		start = time.Now()
		pairs, _ := space.Join(as, bs, 32)
		zT := time.Since(start)

		start = time.Now()
		nested := 0
		for i := range aRegs {
			for j := range bRegs {
				if aRegs[i].Overlaps(bRegs[j]) {
					nested++
				}
			}
		}
		nestedT := time.Since(start)

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(nested), msString(pipeT), msString(zT), msString(nestedT),
			fmt.Sprintf("%v", res.Stats.Solutions == nested && len(pairs) == nested),
		})
	}
	t.Notes = append(t.Notes,
		"pipeline answers arbitrary Boolean-constraint queries; z-order is specialized to the join")
	return t
}

// E10CompileScaling measures Algorithm 1 + Algorithm 2 compile time as the
// number of variables grows — exponential worst case, milliseconds at the
// paper's expected query sizes.
func E10CompileScaling() Table {
	t := Table{
		ID:     "E10",
		Title:  "compile time vs number of variables",
		Paper:  "normal-form computation is exponential but runs at compile time on small systems (§4)",
		Header: []string{"variables", "constraints", "compile-ms", "steps", "unsat"},
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		s := constraint.NewSystem()
		vars := make([]*formula.Formula, n)
		for i := 0; i < n; i++ {
			vars[i] = s.Var(fmt.Sprintf("x%d", i))
		}
		c := s.Var("C")
		// A chain of containments plus overlaps: xi ⊑ x(i+1), xi ∧ C ≠ 0.
		for i := 0; i+1 < n; i++ {
			s.Subset(vars[i], vars[i+1])
		}
		for i := 0; i < n; i++ {
			s.Overlap(vars[i], c)
		}
		s.Subset(vars[n-1], c)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		start := time.Now()
		form, err := triangular.Compile(s.Normalize(), order)
		if err != nil {
			panic(err)
		}
		// Also run Algorithm 2 on every step, as query.Compile would.
		for _, st := range form.Steps {
			if _, err := bbox.Lower(st.Lower); err != nil {
				panic(err)
			}
			if _, err := bbox.Upper(st.Upper); err != nil {
				panic(err)
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(len(s.Cons)), msString(time.Since(start)),
			itoa(len(form.Steps)), fmt.Sprintf("%v", form.Unsat),
		})
	}
	return t
}

// E11Indexes runs the identical compiled plan over all four index
// backends: identical answers, different costs — the "no special-purpose
// data structure required" claim.
func E11Indexes() Table {
	t := Table{
		ID:     "E11",
		Title:  "one plan, five index backends",
		Paper:  "the technique does not require a special-purpose data structure (§1)",
		Header: []string{"backend", "solutions", "db-scanned", "db-touched", "time-ms"},
	}
	kinds := []spatialdb.IndexKind{spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid, spatialdb.ZOrderIdx}
	base := -1
	for _, kind := range kinds {
		m := workload.GenMap(workload.MapConfig{Seed: 21, Roads: 60, Towns: 24, Interior: 24})
		store := spatialdb.NewStore(m.Config.Universe, kind)
		m.Populate(store)
		params := map[string]*region.Region{"C": m.Country, "A": m.Area}
		plan, err := query.Compile(query.Smuggler(), store)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := plan.Run(store, params, query.DefaultOptions)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		if base < 0 {
			base = res.Stats.Solutions
		}
		t.Rows = append(t.Rows, []string{
			kind.String(), itoa(res.Stats.Solutions), itoa(res.Stats.DB.Scanned),
			itoa(res.Stats.DB.Touched), msString(el),
		})
		if res.Stats.Solutions != base {
			t.Notes = append(t.Notes,
				fmt.Sprintf("MISMATCH: %v returned %d solutions, scan returned %d",
					kind, res.Stats.Solutions, base))
		}
	}
	if len(t.Notes) == 0 {
		t.Notes = append(t.Notes, "all backends returned identical solution sets")
	}
	return t
}

func boolToCount(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
