package lang

import "testing"

func TestNormalizeCanonical(t *testing.T) {
	a := `find T in towns, R in roads
given C   # the country
where
  T !<= C;
  overlaps( R , T );
  R <= (T | C)`
	b := `find T in towns,R in roads given C where T !<= C;overlaps(R,T);R<=(T|C)`
	na, err := Normalize(a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Normalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Errorf("normal forms differ:\n  %q\n  %q", na, nb)
	}
	want := `find T in towns, R in roads given C where T !<= C; overlaps(R, T); R <= (T | C)`
	if na != want {
		t.Errorf("Normalize = %q, want %q", na, want)
	}
	// Normalization is idempotent.
	again, err := Normalize(na)
	if err != nil {
		t.Fatal(err)
	}
	if again != na {
		t.Errorf("not idempotent: %q -> %q", na, again)
	}
}

func TestNormalizeDistinguishesQueries(t *testing.T) {
	na, err := Normalize(`find T in towns given C where T <= C`)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Normalize(`find T in towns given C where T !<= C`)
	if err != nil {
		t.Fatal(err)
	}
	if na == nb {
		t.Errorf("distinct queries normalized to the same key %q", na)
	}
}

func TestNormalizeLexError(t *testing.T) {
	if _, err := Normalize(`find T in towns where T $ C`); err == nil {
		t.Error("expected lex error")
	}
}
