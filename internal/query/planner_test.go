package query

import (
	"testing"

	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func TestSuggestOrderSingleVariableIsIdentity(t *testing.T) {
	store := spatialdb.NewStore(workload.GenMap(workload.MapConfig{Seed: 1}).Config.Universe, spatialdb.Scan)
	q := New()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "towns")
	if got := SuggestOrder(q, store); len(got.Retrieve) != 1 || got.Retrieve[0].Var != "x" {
		t.Errorf("SuggestOrder changed a single binding: %v", got.Retrieve)
	}
}

func TestSuggestOrderPrefersConnectedAndSmall(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 3})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)

	// In the smuggler system, T connects to the parameter C directly
	// (T ⋢ C) while B only connects to C (B ⊑ C) and R needs T. Both T
	// and B have one grounded constraint initially; states (9) is smaller
	// than towns (24), so B goes first, then T, then R.
	q := Smuggler()
	got := SuggestOrder(q, store)
	order := []string{got.Retrieve[0].Var, got.Retrieve[1].Var, got.Retrieve[2].Var}
	if order[0] != "B" || order[1] != "T" || order[2] != "R" {
		t.Errorf("suggested order = %v", order)
	}
	// The reordered query must still produce identical solutions.
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}
	orig, err := CompileAndRun(q, store, params)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := CompileAndRun(got, store, params)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Stats.Solutions != reordered.Stats.Solutions {
		t.Errorf("reordering changed solutions: %d vs %d",
			orig.Stats.Solutions, reordered.Stats.Solutions)
	}
}

func TestSuggestOrderDoesNotMutateInput(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 3})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	q := Smuggler()
	before := append([]Binding(nil), q.Retrieve...)
	SuggestOrder(q, store)
	for i := range before {
		if q.Retrieve[i] != before[i] {
			t.Fatalf("input query mutated")
		}
	}
}

// Exhaustive check on the smuggler query: the suggested order's candidate
// count is within 2x of the best permutation's (and far from the worst).
func TestSuggestOrderNearBestPermutation(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}

	base := Smuggler()
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	best, worst := -1, -1
	counts := map[string]int{}
	for _, p := range perms {
		q := &Query{Sys: base.Sys}
		for _, i := range p {
			q.Retrieve = append(q.Retrieve, base.Retrieve[i])
		}
		res, err := CompileAndRun(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		key := q.Retrieve[0].Var + q.Retrieve[1].Var + q.Retrieve[2].Var
		counts[key] = res.Stats.Candidates
		if best < 0 || res.Stats.Candidates < best {
			best = res.Stats.Candidates
		}
		if res.Stats.Candidates > worst {
			worst = res.Stats.Candidates
		}
	}
	// The static heuristic sees structure but not data selectivity
	// (it cannot know that few roads overlap the area); it must at least
	// avoid the worst orders.
	suggested := SuggestOrder(base, store)
	res, err := CompileAndRun(suggested, store, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates >= worst {
		t.Errorf("static order examines %d candidates; best %d, worst %d (all: %v)",
			res.Stats.Candidates, best, worst, counts)
	}
	// The sampling planner sees first-step selectivity and must come
	// within 1.5x of the optimum here.
	sampled, err := SuggestOrderSampled(base, store, params)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := CompileAndRun(sampled, store, params)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res2.Stats.Candidates) > 1.5*float64(best) {
		t.Errorf("sampled order examines %d candidates; best %d (all: %v)",
			res2.Stats.Candidates, best, counts)
	}
}
