package query

import (
	"fmt"
	"testing"

	"repro/internal/bbox"
	"repro/internal/formula"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// randSystem builds a random constraint system over two retrieval
// variables (x, y) and one parameter (C) from a seeded RNG. It returns the
// query with retrieval bindings attached.
func randSystem(rng *workload.RNG) *Query {
	q := New()
	x := q.Sys.Var("x")
	y := q.Sys.Var("y")
	c := q.Sys.Var("C")
	atoms := []*formula.Formula{x, y, c, formula.One()}

	randFormula := func() *formula.Formula {
		f := atoms[rng.IntN(len(atoms))]
		for i := 0; i < rng.IntN(3); i++ {
			g := atoms[rng.IntN(len(atoms))]
			switch rng.IntN(3) {
			case 0:
				f = formula.And(f, g)
			case 1:
				f = formula.Or(f, g)
			default:
				f = formula.And(f, formula.Not(g))
			}
		}
		return f
	}

	ncons := 1 + rng.IntN(4)
	for i := 0; i < ncons; i++ {
		f, g := randFormula(), randFormula()
		switch rng.IntN(5) {
		case 0:
			q.Sys.Subset(f, g)
		case 1:
			q.Sys.NotSubset(f, g)
		case 2:
			q.Sys.Overlap(f, g)
		case 3:
			q.Sys.Disjoint(f, g)
		default:
			q.Sys.NonEmpty(f)
		}
	}
	// Make sure both retrieval variables appear somewhere.
	q.Sys.Overlap(x, formula.One())
	q.Sys.Overlap(y, formula.One())
	return q.From("x", "xs").From("y", "ys")
}

// TestFuzzOptimizedAgainstNaive is the end-to-end differential test: for
// random constraint systems over random stores, every optimizer
// configuration must return exactly the naive cross product's solutions.
// This exercises normalization, projection, solved forms, bounding-box
// approximation, the indexes and the executor together.
func TestFuzzOptimizedAgainstNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	universe := bbox.Rect(0, 0, 64, 64)
	for trial := 0; trial < 40; trial++ {
		rng := workload.NewRNG(uint64(trial) + 1000)
		q := randSystem(rng)

		kind := []spatialdb.IndexKind{
			spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid,
		}[trial%4]
		store := spatialdb.NewStore(universe, kind)
		for i := 0; i < 6; i++ {
			store.MustInsert("xs", fmt.Sprintf("x%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("ys", fmt.Sprintf("y%d", i), workload.RandRegion(rng, universe, 2))
		}
		params := map[string]*region.Region{"C": workload.RandRegion(rng, universe, 2)}

		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		plan, err := Compile(q, store)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsystem:\n%s", trial, err, q.Sys)
		}
		for _, opts := range []Options{
			{UseIndex: false, UseExact: false},
			{UseIndex: false, UseExact: true},
			{UseIndex: true, UseExact: false},
			{UseIndex: true, UseExact: true},
		} {
			res, err := plan.Run(store, params, opts)
			if err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			if res.Stats.Solutions != naive.Stats.Solutions {
				t.Fatalf("trial %d (%v, opts %+v): optimized %d solutions, naive %d\nsystem:\n%s\nplan:\n%s",
					trial, kind, opts, res.Stats.Solutions, naive.Stats.Solutions,
					q.Sys, plan.Explain())
			}
		}
	}
}

// TestFuzzThreeVariableChains stresses deeper retrieval chains (3 steps)
// where projections compose: again optimized must equal naive.
func TestFuzzThreeVariableChains(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	universe := bbox.Rect(0, 0, 64, 64)
	for trial := 0; trial < 15; trial++ {
		rng := workload.NewRNG(uint64(trial) + 5000)
		q := New()
		x := q.Sys.Var("x")
		y := q.Sys.Var("y")
		z := q.Sys.Var("z")
		c := q.Sys.Var("C")
		// Chain-shaped system with a random twist per trial.
		q.Sys.Subset(x, formula.Or(y, c))
		q.Sys.Overlap(y, z)
		switch trial % 3 {
		case 0:
			q.Sys.NotSubset(z, c)
		case 1:
			q.Sys.Disjoint(x, formula.Not(c))
		default:
			q.Sys.NonEmpty(formula.And(y, c))
		}
		q.From("x", "xs").From("y", "ys").From("z", "zs")

		store := spatialdb.NewStore(universe, spatialdb.RTree)
		for i := 0; i < 5; i++ {
			store.MustInsert("xs", fmt.Sprintf("x%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("ys", fmt.Sprintf("y%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("zs", fmt.Sprintf("z%d", i), workload.RandRegion(rng, universe, 2))
		}
		params := map[string]*region.Region{"C": workload.RandRegion(rng, universe, 2)}

		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileAndRun(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Solutions != naive.Stats.Solutions {
			t.Fatalf("trial %d: optimized %d, naive %d\nsystem:\n%s",
				trial, res.Stats.Solutions, naive.Stats.Solutions, q.Sys)
		}
	}
}
