// Fixture for walcheck: a //boolq:mutation entry point must log to the
// WAL under the write lock, after the epoch bump, with the error used,
// and must reach a //boolq:statsink call.
package d

import (
	"sync"
	"sync/atomic"
)

type stats struct{ n int }

//boolq:statsink
func (st *stats) Add(n int) { st.n += n }

//boolq:statsink
func (st *stats) Remove(n int) { st.n -= n }

type store struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
	data  *stats
	objs  map[int]int
}

func (s *store) logMutation(op int) error { return nil }

// GoodInsert is the shape every mutation should have.
//
//boolq:mutation
func (s *store) GoodInsert(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
	return s.logMutation(k)
}

//boolq:mutation
func (s *store) BadNoLog(k, v int) { // want `BadNoLog never calls logMutation`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
}

//boolq:mutation
func (s *store) BadDropError(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Add(1)
	s.epoch.Add(1)
	_ = s.logMutation(k) // want `logMutation error discarded`
}

//boolq:mutation
func (s *store) BadOutsideLock(k int) error {
	s.mu.Lock()
	s.data.Add(1)
	s.epoch.Add(1)
	s.mu.Unlock()
	return s.logMutation(k) // want `logMutation called without holding a write lock`
}

//boolq:mutation
func (s *store) BadBeforeEpoch(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Add(1)
	err := s.logMutation(k) // want `logMutation called before the epoch bump`
	s.epoch.Add(1)
	return err
}

//boolq:mutation
func (s *store) BadNoStats(k, v int) error { // want `BadNoStats never reaches a //boolq:statsink call`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.epoch.Add(1)
	return s.logMutation(k)
}

// GoodCreate is the near miss: nostats waives the stats rule for
// mutations with no per-object statistics to touch.
//
//boolq:mutation nostats
func (s *store) GoodCreate(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1)
	return s.logMutation(k)
}

// GoodViaHelper reaches the sink through a same-package helper, and
// its log call sits in an if-init — both shapes the real store uses.
//
//boolq:mutation
func (s *store) GoodViaHelper(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commit(k, v)
	s.epoch.Add(1)
	if err := s.logMutation(k); err != nil {
		return err
	}
	return nil
}

func (s *store) commit(k, v int) {
	s.objs[k] = v
	s.data.Add(1)
}

// Replay entry points are deliberately unannotated: relogging during
// recovery would duplicate the WAL tail.
func (s *store) ApplyMutation(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
}
