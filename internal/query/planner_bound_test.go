package query

import (
	"fmt"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// TestEstimateCostScanBounded pins the sampleScanCap bound on plan-time
// sampling: estimateCost runs under the store's read guard with no
// execCtl to poll, so its per-prefix range scans must be finite by
// construction. Below the cap the estimate tracks the layer exactly;
// beyond it, growing the layer must not change what one prefix scans.
func TestEstimateCostScanBounded(t *testing.T) {
	universe := bbox.Rect(0, 0, 1e6, 1e6)
	costFor := func(n int) float64 {
		t.Helper()
		store := spatialdb.NewStore(universe, spatialdb.RTree)
		for i := 0; i < n; i++ {
			x := float64(i)
			r := region.FromBox(bbox.Rect(x, 0, x+0.5, 1))
			if _, err := store.Insert("objs", fmt.Sprintf("o%d", i), r); err != nil {
				t.Fatal(err)
			}
		}
		q := New()
		x, c := q.Sys.Var("x"), q.Sys.Var("C")
		q.Sys.Subset(x, c)
		q.From("x", "objs")
		alg := region.NewAlgebra(universe)
		baseEnv, err := bindParams(q, alg, map[string]*region.Region{"C": region.FromBox(universe)})
		if err != nil {
			t.Fatal(err)
		}
		cost, err := estimateCost(q, store, alg, baseEnv)
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}

	// Under the cap every matching object is counted.
	if got := costFor(100); got != 100 {
		t.Errorf("cost for 100 objects = %v, want 100", got)
	}
	// Over the cap the scan stops: a bigger layer costs the same.
	a := costFor(sampleScanCap + 200)
	b := costFor(sampleScanCap + 900)
	if a != b {
		t.Errorf("estimate not scan-bounded: cost(%d)=%v vs cost(%d)=%v",
			sampleScanCap+200, a, sampleScanCap+900, b)
	}
	if a > float64(sampleScanCap) {
		t.Errorf("cost %v exceeds sampleScanCap %d", a, sampleScanCap)
	}
}
