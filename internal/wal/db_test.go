package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/vfs"
)

var (
	testUniverse = bbox.Rect(0, 0, 1000, 1000)
	allKinds     = []spatialdb.IndexKind{
		spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
		spatialdb.Grid, spatialdb.ZOrderIdx,
	}
)

// noCheckpoints disables the background checkpointer so tests control
// checkpoint timing themselves.
func noCheckpoints(o *DBOptions) {
	o.CheckpointInterval = -1
	o.CheckpointBytes = -1
}

func mustOpenDB(t *testing.T, dir string, opts DBOptions) *DB {
	t.Helper()
	db, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// scriptOp applies the i-th operation of the deterministic mutation
// script. Every operation succeeds, so each call logs exactly one WAL
// record, and applying the first n ops to a fresh store reproduces the
// state the first n records recover to.
func scriptOp(i int, s *spatialdb.Store) error {
	x := float64((i * 37) % 900)
	y := float64((i * 53) % 900)
	box := bbox.Rect(x, y, x+5, y+5)
	switch i % 6 {
	case 0:
		_, _, err := s.CreateLayer(fmt.Sprintf("layer-%d", i))
		return err
	case 1:
		_, err := s.Insert("towns", fmt.Sprintf("t%d", i), region.FromBox(box))
		return err
	case 2:
		// The name repeats across script steps, so later upserts replace.
		_, _, err := s.Upsert("towns", fmt.Sprintf("u%d", i%4),
			region.FromBoxes(2, box, bbox.Rect(x, y+20, x+5, y+25)))
		return err
	case 3:
		_, err := s.Insert("roads", "", region.FromBox(box))
		return err
	case 4:
		_, err := s.BulkInsert("roads", []spatialdb.BulkItem{
			{Name: fmt.Sprintf("r%d-a", i), Reg: region.FromBox(box)},
			{Name: fmt.Sprintf("r%d-b", i), Reg: region.FromBox(bbox.Rect(x, y+40, x+5, y+45))},
		}, spatialdb.BulkAtomic)
		return err
	default: // i%6 == 5: remove the insert from step i-4 (i-4 ≡ 1 mod 6)
		ok, err := s.Remove("towns", fmt.Sprintf("t%d", i-4))
		if err == nil && !ok {
			return fmt.Errorf("op %d: remove target t%d missing", i, i-4)
		}
		return err
	}
}

func runScript(t *testing.T, s *spatialdb.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := scriptOp(i, s); err != nil {
			t.Fatalf("script op %d: %v", i, err)
		}
	}
}

// scriptState is the expected store after the first n script ops.
func scriptState(t *testing.T, kind spatialdb.IndexKind, n int) *spatialdb.Store {
	t.Helper()
	s := spatialdb.NewStore(testUniverse, kind)
	runScript(t, s, n)
	return s
}

// assertStoresEqual compares two stores through the public API: layer
// order, per-layer objects in insertion order (id, name, region), and
// the id counter.
func assertStoresEqual(t *testing.T, got, want *spatialdb.Store, label string) {
	t.Helper()
	if !got.Universe().Equal(want.Universe()) {
		t.Fatalf("%s: universe %v, want %v", label, got.Universe(), want.Universe())
	}
	gn, wn := got.LayerNames(), want.LayerNames()
	if len(gn) != len(wn) {
		t.Fatalf("%s: layers %v, want %v", label, gn, wn)
	}
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("%s: layers %v, want %v", label, gn, wn)
		}
	}
	for _, name := range wn {
		gobjs, wobjs := got.Layer(name).Objects(), want.Layer(name).Objects()
		if len(gobjs) != len(wobjs) {
			t.Fatalf("%s: layer %q: %d objects, want %d", label, name, len(gobjs), len(wobjs))
		}
		for i := range wobjs {
			g, w := gobjs[i], wobjs[i]
			if g.ID != w.ID || g.Name != w.Name || !g.Reg.Equal(w.Reg) {
				t.Fatalf("%s: layer %q object %d: (%d,%q), want (%d,%q)",
					label, name, i, g.ID, g.Name, w.ID, w.Name)
			}
		}
	}
	if got.NextID() != want.NextID() {
		t.Fatalf("%s: NextID %d, want %d", label, got.NextID(), want.NextID())
	}
}

func TestDBRecoversAfterCleanClose(t *testing.T) {
	const nOps = 24
	dir := t.TempDir()
	opts := DBOptions{Kind: spatialdb.RTree, Universe: testUniverse,
		Log: Options{Policy: SyncNever}} // Close seals regardless of policy
	noCheckpoints(&opts)
	db := mustOpenDB(t, dir, opts)
	runScript(t, db.Store(), nOps)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDB(t, dir, opts)
	defer db2.Close()
	if got := db2.Replayed(); got != nOps {
		t.Fatalf("Replayed = %d, want %d", got, nOps)
	}
	assertStoresEqual(t, db2.Store(), scriptState(t, spatialdb.RTree, nOps), "reopen")

	// The recovered store keeps logging: one more op survives another
	// restart, with ids continuing where they stopped.
	if err := scriptOp(nOps, db2.Store()); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := mustOpenDB(t, dir, opts)
	defer db3.Close()
	assertStoresEqual(t, db3.Store(), scriptState(t, spatialdb.RTree, nOps+1), "second reopen")
}

func TestDBCheckpointTruncatesLogAndBoundsRecovery(t *testing.T) {
	const half, full = 18, 36
	dir := t.TempDir()
	// Tiny segments so the pre-checkpoint records span several of them.
	opts := DBOptions{Kind: spatialdb.Grid, Universe: testUniverse,
		Log: Options{Policy: SyncNever, SegmentBytes: 256}}
	noCheckpoints(&opts)
	db := mustOpenDB(t, dir, opts)
	runScript(t, db.Store(), half)
	before := db.Log().Stats().Segments
	if before < 2 {
		t.Fatalf("want several segments before the checkpoint, got %d", before)
	}
	lsn, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != half {
		t.Fatalf("checkpoint lsn = %d, want %d", lsn, half)
	}
	if after := db.Log().Stats().Segments; after >= before {
		t.Fatalf("checkpoint kept %d segments (was %d)", after, before)
	}
	snap := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	// A checkpoint with nothing new logged is a quiet no-op.
	again, err := db.Checkpoint()
	if err != nil || again != lsn {
		t.Fatalf("idle checkpoint = %d, %v; want %d, nil", again, err, lsn)
	}

	for i := half; i < full; i++ {
		if err := scriptOp(i, db.Store()); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = snapshot + only the records past it.
	db2 := mustOpenDB(t, dir, opts)
	defer db2.Close()
	if got := db2.Replayed(); got != full-half {
		t.Fatalf("Replayed = %d, want %d", got, full-half)
	}
	if got := db2.Stats().RecoveredFrom; got != uint64(half) {
		t.Fatalf("recovered from snapshot lsn %d, want %d", got, half)
	}
	assertStoresEqual(t, db2.Store(), scriptState(t, spatialdb.Grid, full), "after checkpointed reopen")

	// More checkpoints prune old snapshots down to KeepSnapshots.
	if err := scriptOp(full, db2.Store()); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := scriptOp(full+1, db2.Store()); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snaps, err := scanSnapshots(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > DefaultKeepSnapshots {
		t.Fatalf("%d snapshots retained, want ≤ %d", len(snaps), DefaultKeepSnapshots)
	}
}

func TestDBFallsBackPastCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := DBOptions{Kind: spatialdb.Scan, Universe: testUniverse,
		Log: Options{Policy: SyncNever}, KeepSnapshots: 4}
	noCheckpoints(&opts)
	db := mustOpenDB(t, dir, opts)
	runScript(t, db.Store(), 6)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 12; i++ {
		if err := scriptOp(i, db.Store()); err != nil {
			t.Fatal(err)
		}
	}
	lsn2, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot (a bad disk block, not a torn write —
	// renames are atomic). Boot must not fail: recovery sets the corrupt
	// file aside and falls back to the previous generation.
	newest := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn2, snapSuffix))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDB(t, dir, opts)
	defer db2.Close()
	if got := db2.Stats().RecoveredFrom; got == uint64(lsn2) {
		t.Fatal("recovery trusted the corrupt snapshot")
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place: %v", err)
	}
}

// TestDBKillAndReplayAtArbitraryCuts is the crash-recovery property
// test: write a mutation script through a durable DB, then simulate a
// SIGKILL at every interesting byte offset of the WAL — record
// boundaries, one byte into a header, mid-record — by truncating a copy
// of the segment there. Recovery must yield exactly the state of the
// record prefix that survived the cut, for every index backend.
func TestDBKillAndReplayAtArbitraryCuts(t *testing.T) {
	const nOps = 24
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			master := t.TempDir()
			opts := DBOptions{Kind: kind, Universe: testUniverse,
				Log: Options{Policy: SyncAlways}}
			noCheckpoints(&opts)
			db := mustOpenDB(t, master, opts)
			runScript(t, db.Store(), nOps)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			segName := fmt.Sprintf("%s%020d%s", segPrefix, 1, segSuffix)
			raw, err := os.ReadFile(filepath.Join(master, segName))
			if err != nil {
				t.Fatal(err)
			}
			ends := recordEnds(t, raw)
			if len(ends) != nOps {
				t.Fatalf("segment holds %d records, want %d (script ops must map 1:1 to records)",
					len(ends), nOps)
			}

			// cut offset → records that must survive.
			cuts := map[int]int{0: 0}
			prev := 0
			for r, end := range ends {
				cuts[end] = r + 1
				if mid := prev + (end-prev)/2; mid > prev {
					cuts[mid] = r // mid-record: the torn record is lost
				}
				if end+1 < len(raw) {
					cuts[end+1] = r + 1 // one byte into the next header
				}
				prev = end
			}

			ropts := DBOptions{Kind: kind, Universe: testUniverse,
				Log: Options{Policy: SyncNever}}
			noCheckpoints(&ropts)
			for off, wantRecs := range cuts {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, segName), raw[:off], 0o644); err != nil {
					t.Fatal(err)
				}
				rdb, err := OpenDB(dir, ropts)
				if err != nil {
					t.Fatalf("cut at byte %d: recovery failed: %v", off, err)
				}
				if got := rdb.Replayed(); got != int64(wantRecs) {
					t.Fatalf("cut at byte %d: replayed %d records, want %d", off, got, wantRecs)
				}
				assertStoresEqual(t, rdb.Store(), scriptState(t, kind, wantRecs),
					fmt.Sprintf("cut@%d", off))
				rdb.Close()
			}

			// One cut dir, taken further: the repaired log accepts new
			// writes and they survive the next restart.
			dir := t.TempDir()
			cut := ends[nOps/2] - 2 // mid-record
			if err := os.WriteFile(filepath.Join(dir, segName), raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rdb := mustOpenDB(t, dir, ropts)
			survivors := nOps / 2 // records before the torn one
			for i := survivors; i < survivors+6; i++ {
				if err := scriptOp(i, rdb.Store()); err != nil {
					t.Fatal(err)
				}
			}
			if err := rdb.Close(); err != nil {
				t.Fatal(err)
			}
			rdb2 := mustOpenDB(t, dir, ropts)
			assertStoresEqual(t, rdb2.Store(), scriptState(t, kind, survivors+6), "write-after-cut")
			rdb2.Close()
		})
	}
}

// TestDBConcurrentWritesAndCheckpoints exercises the live path under
// -race: mutations from several goroutines race the checkpointer, and a
// clean close must still recover every acknowledged write.
func TestDBConcurrentWritesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	opts := DBOptions{Kind: spatialdb.RTree, Universe: testUniverse,
		Log: Options{Policy: SyncNever, SegmentBytes: 4 << 10}}
	noCheckpoints(&opts)
	db := mustOpenDB(t, dir, opts)

	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			layer := fmt.Sprintf("w%d", w)
			for i := 0; i < perWorker; i++ {
				x, y := float64((i*13)%900), float64((w*101+i*7)%900)
				_, err := db.Store().Insert(layer, fmt.Sprintf("o%d", i),
					region.FromBox(bbox.Rect(x, y, x+3, y+3)))
				if err != nil {
					t.Errorf("worker %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDB(t, dir, opts)
	defer db2.Close()
	for w := 0; w < workers; w++ {
		layer := fmt.Sprintf("w%d", w)
		if got := db2.Store().Layer(layer).Len(); got != perWorker {
			t.Errorf("layer %s recovered %d objects, want %d", layer, got, perWorker)
		}
	}
}
