package query

import (
	"fmt"
	"strings"

	"repro/internal/bbox"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
)

// DiseqBoxPlan holds the compiled bounding-box approximations of one
// solved disequation x∧P ∨ ¬x∧Q ≠ 0. Both functions approximate from
// above. At run time, when U_Q evaluates to the empty box the disequation
// forces x∧P ≠ 0, which the plan turns into the range-query overlap
// constraint ⌈x⌉ ⊓ U_P ≠ ∅ (§4's conditional approximation).
type DiseqBoxPlan struct {
	P, Q *bbox.Func

	p, q *bbox.Program // compiled forms of P and Q
}

// StepBoxPlan is the compiled per-variable range-query template. The
// *bbox.Func trees are the readable plan (Explain, tests); Compile also
// lowers each to a flat *bbox.Program, which the executors evaluate per
// candidate prefix with zero steady-state allocations (SpecInto).
type StepBoxPlan struct {
	Var    int
	Layer  string
	Lower  *bbox.Func // approximates the solved lower bound s from below
	Upper  *bbox.Func // approximates the solved upper bound t from above
	Diseqs []DiseqBoxPlan

	// Backend, when HasBackend is set, routes this step's range queries
	// through a specific index backend instead of the layer's primary —
	// the adaptive planner's per-step choice (CompileAdaptive). The
	// backend changes only cost: an unavailable choice falls back to the
	// primary inside the layer.
	Backend    spatialdb.IndexKind
	HasBackend bool

	lower, upper *bbox.Program // compiled forms of Lower and Upper
}

// search issues the step's range query through the layer, honoring the
// planner's backend override when present.
func (sp *StepBoxPlan) search(l *spatialdb.Layer, spec bbox.RangeSpec, visit func(spatialdb.Object) bool) spatialdb.Stats {
	if sp.HasBackend {
		return l.SearchStatsKind(spec, sp.Backend, visit)
	}
	return l.SearchStats(spec, visit)
}

// compilePrograms lowers the step's function trees to programs; Compile
// calls it once per step, so executors never compile in the hot path.
func (sp *StepBoxPlan) compilePrograms() {
	sp.lower = sp.Lower.Compile()
	sp.upper = sp.Upper.Compile()
	for i := range sp.Diseqs {
		sp.Diseqs[i].p = sp.Diseqs[i].P.Compile()
		sp.Diseqs[i].q = sp.Diseqs[i].Q.Compile()
	}
}

// Spec instantiates the range query for a concrete prefix (envBox binds
// the bounding boxes of parameters and earlier variables). The second
// result is false when the step is statically unsatisfiable for this
// prefix — the whole prefix can be pruned. The returned spec owns its
// boxes; executors use SpecInto, the scratch-backed form.
func (sp StepBoxPlan) Spec(k int, envBox []bbox.Box) (bbox.RangeSpec, bool) {
	spec := bbox.RangeSpec{
		K:     k,
		Lower: sp.Lower.Eval(k, envBox),
		Upper: sp.Upper.Eval(k, envBox),
	}
	for _, d := range sp.Diseqs {
		if !d.Q.Eval(k, envBox).IsEmpty() {
			// ¬x∧Q can witness the disequation for any x: no box
			// constraint derivable (the paper's "trivial constraint true"
			// case).
			continue
		}
		p := d.P.Eval(k, envBox)
		if p.IsEmpty() {
			// Both branches empty: the disequation cannot hold.
			return bbox.RangeSpec{}, false
		}
		if p.IsUniv() {
			// ⌈x⌉ ⊓ universe ≠ ∅ holds for every stored object: trivial.
			continue
		}
		spec.Overlaps = append(spec.Overlaps, p)
	}
	if spec.Unsatisfiable() {
		return bbox.RangeSpec{}, false
	}
	return spec, true
}

// specScratch is the per-step, per-frame evaluation state SpecInto reuses
// across candidates: the program stack plus owned boxes for the spec's
// bounds and overlap witnesses. A warm scratch makes SpecInto
// allocation-free.
type specScratch struct {
	eval         bbox.Scratch
	lower, upper bbox.Box
	overlaps     []bbox.Box
}

// SpecInto is Spec evaluated through the step's compiled programs into
// caller-owned scratch. The returned spec's boxes alias scr and stay valid
// only until the next SpecInto with the same scratch — exactly the
// executor's use: build the spec, run the index search, drop it. Plans
// built without Compile (no programs) fall back to the tree-walking Spec.
//
//boolq:noalloc
func (sp StepBoxPlan) SpecInto(k int, envBox []bbox.Box, scr *specScratch) (bbox.RangeSpec, bool) {
	if sp.lower == nil {
		return sp.Spec(k, envBox) //boolq:allowalloc uncompiled-plan fallback; compiled plans never reach it
	}
	sp.lower.Eval(k, envBox, &scr.eval).CopyInto(&scr.lower)
	sp.upper.Eval(k, envBox, &scr.eval).CopyInto(&scr.upper)
	spec := bbox.RangeSpec{K: k, Lower: scr.lower, Upper: scr.upper} //boolq:allowalloc value literal aliasing scratch boxes; stays on the stack
	n := 0
	for _, d := range sp.Diseqs {
		if !d.q.Eval(k, envBox, &scr.eval).IsEmpty() {
			continue // ¬x∧Q can witness the disequation: trivially true
		}
		p := d.p.Eval(k, envBox, &scr.eval)
		if p.IsEmpty() {
			return bbox.RangeSpec{}, false //boolq:allowalloc zero-value literal with nil slices; stays on the stack
		}
		if p.IsUniv() {
			continue // overlaps-universe holds for every stored object
		}
		if n == len(scr.overlaps) {
			scr.overlaps = append(scr.overlaps, bbox.Box{}) //boolq:allowalloc grow-once: a warm scratch already holds a slot per witness
		}
		p.CopyInto(&scr.overlaps[n])
		n++
	}
	if n > 0 {
		spec.Overlaps = scr.overlaps[:n]
	}
	if spec.Unsatisfiable() {
		return bbox.RangeSpec{}, false //boolq:allowalloc zero-value literal with nil slices; stays on the stack
	}
	return spec, true
}

// Plan is a compiled query: the triangular solved form plus one range-query
// template per retrieval step.
type Plan struct {
	Query *Query
	Form  *triangular.Form
	Steps []StepBoxPlan

	// Adaptive records how CompileAdaptive chose this plan (nil for plans
	// from plain Compile).
	Adaptive *AdaptiveInfo

	// outPos maps step index → output tuple position. CompileAdaptive
	// sets it so solutions keep the caller's original binding order even
	// when execution runs the steps in another order; nil means identity.
	outPos []int
}

// Bindings returns the retrieval bindings in output-tuple order: position
// i of every Solution holds an object for Bindings()[i]. For plans from
// Compile this is just Query.Retrieve; for adaptive plans it is the
// original query's order, whatever order the steps execute in.
func (p *Plan) Bindings() []Binding {
	if p.outPos == nil {
		return p.Query.Retrieve
	}
	out := make([]Binding, len(p.Query.Retrieve))
	for i, b := range p.Query.Retrieve {
		out[p.outPos[i]] = b
	}
	return out
}

// OrderKey renders the plan's retrieval order as "T→R→B" — the key the
// feedback tuner files observed run costs under.
func (p *Plan) OrderKey() string { return orderKey(p.Query) }

// Compile runs the full §3+§4 pipeline on the query against the given
// store's schema.
func Compile(q *Query, store *spatialdb.Store) (*Plan, error) {
	if err := validate(q, store); err != nil {
		return nil, err
	}
	order := make([]int, len(q.Retrieve))
	for i, b := range q.Retrieve {
		order[i], _ = q.Sys.Vars.Lookup(b.Var)
	}
	form, err := triangular.Compile(q.Sys.Normalize(), order)
	if err != nil {
		return nil, fmt.Errorf("query: triangularization failed: %w", err)
	}
	plan := &Plan{Query: q, Form: form}
	for i, st := range form.Steps {
		sp := StepBoxPlan{Var: st.Var, Layer: q.Retrieve[i].Layer}
		if sp.Lower, err = bbox.Lower(st.Lower); err != nil {
			return nil, fmt.Errorf("query: lower approximation for %s: %w", q.Retrieve[i].Var, err)
		}
		if sp.Upper, err = bbox.Upper(st.Upper); err != nil {
			return nil, fmt.Errorf("query: upper approximation for %s: %w", q.Retrieve[i].Var, err)
		}
		for _, d := range st.Diseqs {
			var dp DiseqBoxPlan
			if dp.P, err = bbox.Upper(d.P); err != nil {
				return nil, fmt.Errorf("query: disequation approximation: %w", err)
			}
			if dp.Q, err = bbox.Upper(d.Q); err != nil {
				return nil, fmt.Errorf("query: disequation approximation: %w", err)
			}
			sp.Diseqs = append(sp.Diseqs, dp)
		}
		sp.compilePrograms()
		plan.Steps = append(plan.Steps, sp)
	}
	return plan, nil
}

// Explain renders the plan: the triangular solved form followed by the
// per-step range-query templates, in the paper's notation.
func (p *Plan) Explain() string {
	name := p.Query.Sys.Vars.Name
	var b strings.Builder
	b.WriteString("triangular solved form:\n")
	b.WriteString(indent(p.Form.StringNamed(name)))
	b.WriteString("\nrange-query plan:\n")
	for i, sp := range p.Steps {
		fmt.Fprintf(&b, "  step %d: retrieve %s from layer %q\n",
			i+1, name(sp.Var), sp.Layer)
		fmt.Fprintf(&b, "    %s <= [%s] <= %s\n",
			sp.Lower.StringNamed(name), name(sp.Var), sp.Upper.StringNamed(name))
		for _, d := range sp.Diseqs {
			fmt.Fprintf(&b, "    [%s] ^ %s != ∅   (when %s = ∅)\n",
				name(sp.Var), d.P.StringNamed(name), d.Q.StringNamed(name))
		}
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
