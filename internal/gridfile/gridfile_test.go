package gridfile

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bbox"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params should panic")
		}
	}()
	New(0, 8)
}

func TestInsertValidation(t *testing.T) {
	g := New(2, 4)
	if err := g.Insert([]float64{1}, 1); err == nil {
		t.Errorf("wrong-dimension point accepted")
	}
	if err := g.Insert([]float64{1, 2}, 1); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestSearchSmall(t *testing.T) {
	g := New(2, 4)
	pts := [][]float64{{1, 1}, {2, 2}, {5, 5}, {9, 9}}
	for i, p := range pts {
		if err := g.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int64
	g.Search(bbox.Rect(0, 0, 3, 3), func(_ []float64, id int64) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("Search = %v", ids)
	}
}

func TestSplitsHappen(t *testing.T) {
	g := New(2, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		_ = g.Insert([]float64{rng.Float64() * 100, rng.Float64() * 100}, int64(i))
	}
	if g.Splits() == 0 {
		t.Errorf("no scale refinements after 500 inserts with cap 4")
	}
	if g.NumCells() < 10 {
		t.Errorf("only %d cells after 500 inserts", g.NumCells())
	}
}

func TestDuplicatePointsOverflow(t *testing.T) {
	g := New(2, 2)
	for i := 0; i < 20; i++ {
		if err := g.Insert([]float64{3, 3}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	g.Search(bbox.Rect(3, 3, 3, 3), func(_ []float64, _ int64) bool {
		count++
		return true
	})
	if count != 20 {
		t.Errorf("duplicate search found %d of 20", count)
	}
}

func TestDelete(t *testing.T) {
	g := New(2, 4)
	_ = g.Insert([]float64{1, 1}, 10)
	_ = g.Insert([]float64{1, 1}, 11)
	if !g.Delete([]float64{1, 1}, 10) {
		t.Fatalf("Delete failed")
	}
	if g.Delete([]float64{1, 1}, 10) {
		t.Errorf("double delete succeeded")
	}
	if g.Delete([]float64{9, 9}, 11) {
		t.Errorf("delete with wrong coords succeeded")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestSearchMatchesScan(t *testing.T) {
	g := New(2, 8)
	rng := rand.New(rand.NewSource(7))
	type rec struct {
		p  []float64
		id int64
	}
	var pts []rec
	for i := 0; i < 1000; i++ {
		p := []float64{rng.Float64() * 100, rng.Float64() * 100}
		pts = append(pts, rec{p, int64(i)})
		_ = g.Insert(p, int64(i))
	}
	for trial := 0; trial < 20; trial++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		q := bbox.Rect(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
		var got []int64
		g.Search(q, func(_ []float64, id int64) bool {
			got = append(got, id)
			return true
		})
		var want []int64
		for _, r := range pts {
			if q.ContainsPoint(r.p) {
				want = append(want, r.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: ids differ at %d", q, i)
			}
		}
	}
}

func TestSearchEarlyStopAndEmptyQuery(t *testing.T) {
	g := New(2, 4)
	for i := 0; i < 50; i++ {
		_ = g.Insert([]float64{float64(i), 0}, int64(i))
	}
	n := 0
	g.Search(bbox.Rect(0, 0, 100, 1), func(_ []float64, _ int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	if got := g.Search(bbox.Empty(2), func(_ []float64, _ int64) bool { return true }); got != 0 {
		t.Errorf("empty query touched %d cells", got)
	}
}

func TestSearchDimPanics(t *testing.T) {
	g := New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension query should panic")
		}
	}()
	g.Search(bbox.New([]float64{0}, []float64{1}), func(_ []float64, _ int64) bool { return true })
}

func TestAll(t *testing.T) {
	g := New(3, 4)
	for i := 0; i < 30; i++ {
		_ = g.Insert([]float64{float64(i), float64(i % 5), float64(i % 3)}, int64(i))
	}
	seen := map[int64]bool{}
	g.All(func(_ []float64, id int64) bool {
		seen[id] = true
		return true
	})
	if len(seen) != 30 {
		t.Errorf("All visited %d of 30", len(seen))
	}
}

// Property: insert+search agrees with scan for 4-dim points (the
// point-transform dimensionality for 2-D boxes).
func TestQuick4DAgainstScan(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(4, 6)
		type rec struct {
			p  []float64
			id int64
		}
		var pts []rec
		for i := 0; i < 150; i++ {
			p := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
			pts = append(pts, rec{p, int64(i)})
			if err := g.Insert(p, int64(i)); err != nil {
				return false
			}
		}
		q := bbox.New([]float64{1, 1, 1, 1}, []float64{7, 7, 7, 7})
		count := 0
		g.Search(q, func(_ []float64, _ int64) bool {
			count++
			return true
		})
		want := 0
		for _, r := range pts {
			if q.ContainsPoint(r.p) {
				want++
			}
		}
		return count == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
