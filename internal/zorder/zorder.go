// Package zorder implements z-order (Morton) encoding and the
// Orenstein–Manola style spatial join the paper discusses as the only
// other application-independent approach to multivariable spatial queries
// (§1, reference [10], PROBE).
//
// Two-dimensional space is recursively quartered down to a fixed depth;
// every cell at depth d has a z-code — the bit-interleaving of its row and
// column indices — and all its descendants share that code as a prefix.
// A box decomposes into a small set of maximal cells ("z-elements");
// a spatial join sorts the z-elements of both inputs and sweeps them with
// a stack, reporting pairs whose z-elements are in a prefix relation.
// These are exactly the candidate pairs whose boxes may overlap; a final
// exact box test removes false positives (which arise because a box is
// over-approximated by its covering cells).
//
// DESIGN.md §2 ("Storage") places this package in the module map.
package zorder

import (
	"fmt"
	"sort"

	"repro/internal/bbox"
)

// MaxLevel is the quadtree depth used for decomposition: 16 levels give a
// 65536×65536 grid, plenty for the synthetic workloads.
const MaxLevel = 16

// Interleave2 spreads the low 16 bits of x and y into even/odd bit
// positions (Morton code).
func Interleave2(x, y uint32) uint64 {
	return spread(uint64(x)) | spread(uint64(y))<<1
}

// spread inserts a zero bit between each of the low 16 bits.
func spread(v uint64) uint64 {
	v &= 0xffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// Deinterleave2 is the inverse of Interleave2.
func Deinterleave2(code uint64) (x, y uint32) {
	return uint32(compact(code)), uint32(compact(code >> 1))
}

func compact(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// Element is a z-element: a quadtree cell identified by the Morton code of
// its top-left grid cell and its level (0 = whole space, MaxLevel =
// single grid cell). Its z-interval is [Code, Code + 4^(MaxLevel-Level)).
type Element struct {
	Code  uint64
	Level int
}

// Size returns the length of the element's z-interval.
func (e Element) Size() uint64 { return 1 << uint(2*(MaxLevel-e.Level)) }

// End returns the exclusive end of the z-interval.
func (e Element) End() uint64 { return e.Code + e.Size() }

// ContainsElem reports whether e's z-interval contains f's (prefix
// relation).
func (e Element) ContainsElem(f Element) bool {
	return e.Code <= f.Code && f.End() <= e.End()
}

// Space maps a universe box onto the 2^MaxLevel grid.
type Space struct {
	universe bbox.Box
	cell     [2]float64 // cell width per dimension
}

// NewSpace returns a z-order space over the given 2-D universe.
func NewSpace(universe bbox.Box) *Space {
	if universe.IsEmpty() || universe.K != 2 {
		panic("zorder: universe must be a nonempty 2-D box")
	}
	n := float64(uint32(1) << MaxLevel)
	return &Space{
		universe: universe,
		cell: [2]float64{
			(universe.Hi[0] - universe.Lo[0]) / n,
			(universe.Hi[1] - universe.Lo[1]) / n,
		},
	}
}

// gridRange clamps box coordinates to grid cell indices [lo, hi]
// (inclusive).
func (s *Space) gridRange(b bbox.Box) (x0, y0, x1, y1 uint32, ok bool) {
	clip := b.Meet(s.universe)
	if clip.IsEmpty() {
		return 0, 0, 0, 0, false
	}
	n := uint32(1)<<MaxLevel - 1
	toCell := func(v, lo, w float64) uint32 {
		c := int64((v - lo) / w)
		if c < 0 {
			c = 0
		}
		if c > int64(n) {
			c = int64(n)
		}
		return uint32(c)
	}
	x0 = toCell(clip.Lo[0], s.universe.Lo[0], s.cell[0])
	y0 = toCell(clip.Lo[1], s.universe.Lo[1], s.cell[1])
	// Upper edges: a coordinate exactly on a cell boundary belongs to the
	// lower cell so that touching boxes still share a cell (closed-box
	// overlap semantics).
	x1 = toCell(clip.Hi[0], s.universe.Lo[0], s.cell[0])
	y1 = toCell(clip.Hi[1], s.universe.Lo[1], s.cell[1])
	return x0, y0, x1, y1, true
}

// Decompose covers the box with maximal z-elements, recursing at most to
// maxElems leaf splits (coarser covers are still correct — they only add
// candidate pairs). maxElems ≤ 0 means no budget limit.
func (s *Space) Decompose(b bbox.Box, maxElems int) []Element {
	x0, y0, x1, y1, ok := s.gridRange(b)
	if !ok {
		return nil
	}
	var out []Element
	budget := maxElems
	var rec func(cx, cy uint32, level int)
	rec = func(cx, cy uint32, level int) {
		// Cell spans grid rows [cy*size, (cy+1)*size) etc. at this level.
		size := uint32(1) << uint(MaxLevel-level)
		gx0, gy0 := cx*size, cy*size
		gx1, gy1 := gx0+size-1, gy0+size-1
		if gx1 < x0 || gx0 > x1 || gy1 < y0 || gy0 > y1 {
			return // disjoint
		}
		fullyInside := gx0 >= x0 && gx1 <= x1 && gy0 >= y0 && gy1 <= y1
		if fullyInside || level == MaxLevel || (budget > 0 && len(out) >= budget) {
			out = append(out, Element{
				Code:  Interleave2(gx0, gy0),
				Level: level,
			})
			return
		}
		rec(cx*2, cy*2, level+1)
		rec(cx*2+1, cy*2, level+1)
		rec(cx*2, cy*2+1, level+1)
		rec(cx*2+1, cy*2+1, level+1)
	}
	rec(0, 0, 0)
	return mergeElems(out)
}

// mergeElems merges four sibling cells into their parent where possible
// and drops elements contained in others.
func mergeElems(es []Element) []Element {
	if len(es) < 2 {
		return es
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Code != es[j].Code {
			return es[i].Code < es[j].Code
		}
		return es[i].Level < es[j].Level
	})
	// Drop contained elements (they follow their container in z-order).
	out := es[:0]
	for _, e := range es {
		if len(out) > 0 && out[len(out)-1].ContainsElem(e) {
			continue
		}
		out = append(out, e)
	}
	// Merge complete sibling quartets repeatedly.
	for {
		merged := false
		next := out[:0:cap(out)]
		i := 0
		for i < len(out) {
			e := out[i]
			if e.Level > 0 && i+3 < len(out) {
				parentSize := e.Size() * 4
				if e.Code%parentSize == 0 &&
					out[i+1] == (Element{e.Code + e.Size(), e.Level}) &&
					out[i+2] == (Element{e.Code + 2*e.Size(), e.Level}) &&
					out[i+3] == (Element{e.Code + 3*e.Size(), e.Level}) {
					next = append(next, Element{Code: e.Code, Level: e.Level - 1})
					i += 4
					merged = true
					continue
				}
			}
			next = append(next, e)
			i++
		}
		out = next
		if !merged {
			return out
		}
	}
}

// Item is a join input: an identified box.
type Item struct {
	ID  int64
	Box bbox.Box
}

// Pair is a join result.
type Pair struct {
	A, B int64
}

// JoinStats reports the work a Join performed.
type JoinStats struct {
	ElementsA, ElementsB int // z-elements generated
	Candidates           int // prefix-matching pairs before the exact test
	Results              int
}

// Join computes all pairs (a ∈ as, b ∈ bs) with overlapping boxes using the
// z-order sweep, with maxElems budget per box decomposition (0 = default
// of 32).
func (s *Space) Join(as, bs []Item, maxElems int) ([]Pair, JoinStats) {
	if maxElems <= 0 {
		maxElems = 32
	}
	type tagged struct {
		elem Element
		side int // 0 = as, 1 = bs
		id   int64
	}
	var stats JoinStats
	var all []tagged
	for _, it := range as {
		for _, e := range s.Decompose(it.Box, maxElems) {
			all = append(all, tagged{e, 0, it.ID})
			stats.ElementsA++
		}
	}
	for _, it := range bs {
		for _, e := range s.Decompose(it.Box, maxElems) {
			all = append(all, tagged{e, 1, it.ID})
			stats.ElementsB++
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ei, ej := all[i].elem, all[j].elem
		if ei.Code != ej.Code {
			return ei.Code < ej.Code
		}
		if ei.Level != ej.Level {
			return ei.Level < ej.Level // container before contained
		}
		return all[i].side < all[j].side
	})
	boxOf := map[[2]int64]bbox.Box{}
	for _, it := range as {
		boxOf[[2]int64{0, it.ID}] = it.Box
	}
	for _, it := range bs {
		boxOf[[2]int64{1, it.ID}] = it.Box
	}
	seen := map[Pair]bool{}
	var stack []tagged
	for _, cur := range all {
		for len(stack) > 0 && !stack[len(stack)-1].elem.ContainsElem(cur.elem) {
			stack = stack[:len(stack)-1]
		}
		for _, anc := range stack {
			if anc.side == cur.side {
				continue
			}
			var p Pair
			if cur.side == 0 {
				p = Pair{A: cur.id, B: anc.id}
			} else {
				p = Pair{A: anc.id, B: cur.id}
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			stats.Candidates++
		}
		stack = append(stack, cur)
	}
	var pairs []Pair
	for p := range seen {
		ab := boxOf[[2]int64{0, p.A}]
		bb := boxOf[[2]int64{1, p.B}]
		if ab.Overlaps(bb) {
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	stats.Results = len(pairs)
	return pairs, stats
}

// String renders an element for debugging.
func (e Element) String() string {
	return fmt.Sprintf("z%0*x@%d", 2, e.Code, e.Level)
}
