// Package bbox implements k-dimensional bounding boxes, bounding-box
// functions, and the paper's Algorithm 2: the best lower (L_f) and upper
// (U_f) bounding-box approximations of a Boolean function, read off its
// Blake canonical form (Theorems 14 and 15).
//
// A bounding box ⌈x⌉ is the minimal axis-parallel box enclosing a region x.
// The box operators are ⊓ (Meet, ordinary intersection), ⊔ (Join, the
// minimal box enclosing the union — not set union), and ⊑ (Contains,
// containment). Queries combining box constraints of the forms ⌈x⌉ ⊑ a,
// b ⊑ ⌈x⌉ and ⌈x⌉ ⊓ c ≠ ∅ are answered by a *single* range query on points
// in 2k dimensions (Figure 3); see PointTransform and RangeSpec.
//
// DESIGN.md §2 ("Foundations") places this package in the module map; §1 sketches the compilation pipeline it serves.
package bbox

import (
	"fmt"
	"math"
	"strings"
)

// Box is an axis-parallel box in k dimensions, possibly empty. The empty
// box (Lo == nil) is the identity of ⊔ and the absorbing element of ⊓; it
// is the bounding box of the empty region. Coordinates may be ±Inf: the
// universe box Univ(k) is the bounding box of the whole space.
type Box struct {
	K      int       // dimensionality
	Lo, Hi []float64 // nil iff empty; otherwise len K with Lo[i] ≤ Hi[i]
}

// Empty returns the empty box in k dimensions.
func Empty(k int) Box { return Box{K: k} }

// Univ returns the box covering all of R^k.
func Univ(k int) Box {
	lo, hi := make([]float64, k), make([]float64, k)
	for i := range lo {
		lo[i], hi[i] = math.Inf(-1), math.Inf(1)
	}
	return Box{K: k, Lo: lo, Hi: hi}
}

// New returns the box [lo, hi]. It panics if the slices disagree in length
// or lo[i] > hi[i]; callers constructing boxes from unvalidated input
// should use Make.
func New(lo, hi []float64) Box {
	b, err := Make(lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// Make returns the box [lo, hi], validating the input.
func Make(lo, hi []float64) (Box, error) {
	if len(lo) != len(hi) {
		return Box{}, fmt.Errorf("bbox: corner dimensions differ: %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("bbox: inverted interval in dim %d: [%g,%g]", i, lo[i], hi[i])
		}
	}
	l := append([]float64(nil), lo...)
	h := append([]float64(nil), hi...)
	return Box{K: len(lo), Lo: l, Hi: h}, nil
}

// Rect is a 2-D convenience constructor.
func Rect(x0, y0, x1, y1 float64) Box {
	return New([]float64{x0, y0}, []float64{x1, y1})
}

// IsEmpty reports whether b is the empty box. Emptiness is a length-zero
// (usually nil) Lo slice: the in-place operations (MeetInto and friends)
// mark a destination empty by truncating its Lo/Hi to length 0, which
// keeps the backing arrays available for reuse.
//
//boolq:noalloc
func (b Box) IsEmpty() bool { return len(b.Lo) == 0 }

// IsUniv reports whether b is Univ(b.K), i.e. unbounded in every
// dimension. Unlike Equal(Univ(k)) it allocates nothing.
//
//boolq:noalloc
func (b Box) IsUniv() bool {
	if b.IsEmpty() {
		return false
	}
	for i := 0; i < b.K; i++ {
		if !math.IsInf(b.Lo[i], -1) || !math.IsInf(b.Hi[i], 1) {
			return false
		}
	}
	return true
}

// Meet returns b ⊓ c, the intersection. Boxes of mismatched dimension
// panic: that is always a programming error in the compiler. Disjoint
// operands short-circuit to the empty box without allocating.
func (b Box) Meet(c Box) Box {
	b.checkDim(c)
	if b.IsEmpty() || c.IsEmpty() {
		return Empty(b.K)
	}
	for i := 0; i < b.K; i++ {
		if math.Max(b.Lo[i], c.Lo[i]) > math.Min(b.Hi[i], c.Hi[i]) {
			return Empty(b.K)
		}
	}
	lo, hi := make([]float64, b.K), make([]float64, b.K)
	for i := 0; i < b.K; i++ {
		lo[i] = math.Max(b.Lo[i], c.Lo[i])
		hi[i] = math.Min(b.Hi[i], c.Hi[i])
	}
	return Box{K: b.K, Lo: lo, Hi: hi}
}

// Join returns b ⊔ c, the minimal box enclosing both (bounding-box union).
func (b Box) Join(c Box) Box {
	b.checkDim(c)
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	lo, hi := make([]float64, b.K), make([]float64, b.K)
	for i := 0; i < b.K; i++ {
		lo[i] = math.Min(b.Lo[i], c.Lo[i])
		hi[i] = math.Max(b.Hi[i], c.Hi[i])
	}
	return Box{K: b.K, Lo: lo, Hi: hi}
}

// Contains reports b ⊒ c, i.e. c ⊑ b. The empty box is contained in every
// box.
//
//boolq:noalloc
func (b Box) Contains(c Box) bool {
	b.checkDim(c)
	if c.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	for i := 0; i < b.K; i++ {
		if c.Lo[i] < b.Lo[i] || c.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Overlaps reports b ⊓ c ≠ ∅ without materializing the meet.
//
//boolq:noalloc
func (b Box) Overlaps(c Box) bool {
	b.checkDim(c)
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	for i := 0; i < b.K; i++ {
		if b.Lo[i] > c.Hi[i] || c.Lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports coordinate equality (or both empty).
func (b Box) Equal(c Box) bool {
	if b.K != c.K {
		return false
	}
	if b.IsEmpty() || c.IsEmpty() {
		return b.IsEmpty() == c.IsEmpty()
	}
	for i := 0; i < b.K; i++ {
		if b.Lo[i] != c.Lo[i] || b.Hi[i] != c.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the k-dimensional volume (0 for the empty box, +Inf for
// unbounded boxes).
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := 0; i < b.K; i++ {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// Margin returns the sum of edge lengths (used by R-tree split heuristics).
func (b Box) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	m := 0.0
	for i := 0; i < b.K; i++ {
		m += b.Hi[i] - b.Lo[i]
	}
	return m
}

// Center returns the center point of the box (undefined for empty boxes).
func (b Box) Center() []float64 {
	c := make([]float64, b.K)
	for i := 0; i < b.K; i++ {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// ContainsPoint reports whether p lies in b.
func (b Box) ContainsPoint(p []float64) bool {
	if b.IsEmpty() || len(p) != b.K {
		return false
	}
	for i := 0; i < b.K; i++ {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Enlarge returns the volume increase of b ⊔ c over b (Guttman's insertion
// heuristic).
func (b Box) Enlarge(c Box) float64 {
	return b.Join(c).Volume() - b.Volume()
}

//boolq:noalloc
func (b Box) checkDim(c Box) {
	if b.K != c.K {
		panic(fmt.Sprintf("bbox: dimension mismatch %d vs %d", b.K, c.K))
	}
}

// In-place box arithmetic. These are the allocation-free core the compiled
// box-function programs (Program.Eval) run on: a destination box is reused
// across operations, growing its Lo/Hi backing arrays once and then
// truncating them to length 0 whenever a result is empty, so steady-state
// evaluation allocates nothing. The destination must own its backing
// arrays — it may alias one of the operands (the writes are pointwise),
// but never a box the caller still needs afterwards.

// ensureLen returns s resized to length k, reusing its backing array when
// the capacity allows.
//
//boolq:noalloc
func ensureLen(s []float64, k int) []float64 {
	if cap(s) >= k {
		return s[:k]
	}
	return make([]float64, k) //boolq:allowalloc grow-once: a warm destination never takes this branch
}

// SetEmpty makes dst the empty box in k dimensions, keeping its backing
// arrays for reuse.
//
//boolq:noalloc
func (dst *Box) SetEmpty(k int) {
	dst.K = k
	if dst.Lo != nil {
		dst.Lo, dst.Hi = dst.Lo[:0], dst.Hi[:0]
	}
}

// SetUniv makes dst the universe box in k dimensions, reusing its backing
// arrays when possible.
//
//boolq:noalloc
func (dst *Box) SetUniv(k int) {
	dst.K = k
	dst.Lo, dst.Hi = ensureLen(dst.Lo, k), ensureLen(dst.Hi, k)
	for i := 0; i < k; i++ {
		dst.Lo[i], dst.Hi[i] = math.Inf(-1), math.Inf(1)
	}
}

// CopyInto copies b into dst, reusing dst's backing arrays when possible.
//
//boolq:noalloc
func (b Box) CopyInto(dst *Box) {
	if b.IsEmpty() {
		dst.SetEmpty(b.K)
		return
	}
	dst.K = b.K
	dst.Lo, dst.Hi = ensureLen(dst.Lo, b.K), ensureLen(dst.Hi, b.K)
	copy(dst.Lo, b.Lo)
	copy(dst.Hi, b.Hi)
}

// MeetInto stores b ⊓ c into dst without allocating (after dst's arrays
// have grown to dimension K once). dst may alias b or c.
//
//boolq:noalloc
func (b Box) MeetInto(c Box, dst *Box) {
	b.checkDim(c)
	if b.IsEmpty() || c.IsEmpty() {
		dst.SetEmpty(b.K)
		return
	}
	dst.K = b.K
	dst.Lo, dst.Hi = ensureLen(dst.Lo, b.K), ensureLen(dst.Hi, b.K)
	for i := 0; i < b.K; i++ {
		lo := math.Max(b.Lo[i], c.Lo[i])
		hi := math.Min(b.Hi[i], c.Hi[i])
		if lo > hi {
			dst.SetEmpty(b.K)
			return
		}
		dst.Lo[i], dst.Hi[i] = lo, hi
	}
}

// JoinInto stores b ⊔ c into dst without allocating (after dst's arrays
// have grown to dimension K once). dst may alias b or c.
//
//boolq:noalloc
func (b Box) JoinInto(c Box, dst *Box) {
	b.checkDim(c)
	if b.IsEmpty() {
		c.CopyInto(dst)
		return
	}
	if c.IsEmpty() {
		b.CopyInto(dst)
		return
	}
	dst.K = b.K
	dst.Lo, dst.Hi = ensureLen(dst.Lo, b.K), ensureLen(dst.Hi, b.K)
	for i := 0; i < b.K; i++ {
		dst.Lo[i] = math.Min(b.Lo[i], c.Lo[i])
		dst.Hi[i] = math.Max(b.Hi[i], c.Hi[i])
	}
}

// String renders the box as [lo1,hi1]x[lo2,hi2]…
func (b Box) String() string {
	if b.IsEmpty() {
		return "∅"
	}
	var sb strings.Builder
	for i := 0; i < b.K; i++ {
		if i > 0 {
			sb.WriteString("x")
		}
		fmt.Fprintf(&sb, "[%g,%g]", b.Lo[i], b.Hi[i])
	}
	return sb.String()
}

// JoinAll returns the ⊔ of all boxes (empty if none).
func JoinAll(k int, boxes ...Box) Box {
	acc := Empty(k)
	for _, b := range boxes {
		acc = acc.Join(b)
	}
	return acc
}
