package boolq

import (
	"context"

	"testing"

	"repro/internal/workload"
)

// The README quickstart, as a test: parse, compile, run, inspect.
func TestPublicAPIQuickstart(t *testing.T) {
	store := NewStore(Rect(0, 0, 1000, 1000), RTree)
	country := RegionFromBox(Rect(100, 100, 900, 900))
	store.MustInsert("towns", "border", RegionFromBoxes(2, Rect(95, 400, 110, 415)))
	store.MustInsert("towns", "inland", RegionFromBox(Rect(400, 400, 415, 415)))

	q, err := ParseQuery(`find T in towns given C where T & ~C != 0; T & C != 0`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(store, map[string]*Region{"C": country}, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0].Objects[0].Name != "border" {
		t.Fatalf("quickstart solutions = %v", res.Solutions)
	}
}

func TestPublicAPISmuggler(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := NewStore(m.Config.Universe, PointRTree)
	m.Populate(store)
	params := map[string]*Region{"C": m.Country, "A": m.Area}

	opt, err := CompileAndRun(Smuggler(), store, params)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaive(Smuggler(), store, params)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.Solutions != naive.Stats.Solutions || opt.Stats.Solutions == 0 {
		t.Fatalf("optimized %d solutions, naive %d",
			opt.Stats.Solutions, naive.Stats.Solutions)
	}
	if opt.Stats.Candidates >= naive.Stats.Candidates {
		t.Errorf("no pruning: %d vs %d candidates",
			opt.Stats.Candidates, naive.Stats.Candidates)
	}
}

func TestPublicAPIProgrammaticQuery(t *testing.T) {
	store := NewStore(Rect(0, 0, 100, 100), Grid)
	store.MustInsert("objs", "a", RegionFromBox(Rect(10, 10, 20, 20)))
	store.MustInsert("objs", "b", RegionFromBox(Rect(50, 50, 60, 60)))

	q := NewQuery()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "objs")

	res, err := CompileAndRun(q, store, map[string]*Region{
		"C": RegionFromBox(Rect(0, 0, 30, 30)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0].Objects[0].Name != "a" {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

// The bounded-execution surface through the public API: limits truncate,
// cancelled contexts stop every executor, streaming yields per solution.
func TestPublicAPIBoundedExecution(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := NewStore(m.Config.Universe, RTree)
	m.Populate(store)
	params := map[string]*Region{"C": m.Country, "A": m.Area}
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions
	opts.Limit = 1
	res, err := plan.RunCtx(context.Background(), store, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || !res.Stats.Truncated {
		t.Fatalf("limit 1: %d solutions, truncated=%v", len(res.Solutions), res.Stats.Truncated)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() (*Result, error){
		"RunCtx":         func() (*Result, error) { return plan.RunCtx(ctx, store, params, DefaultOptions) },
		"RunParallelCtx": func() (*Result, error) { return plan.RunParallelCtx(ctx, store, params, DefaultOptions, 4) },
		"RunNaiveCtx":    func() (*Result, error) { return RunNaiveCtx(ctx, Smuggler(), store, params, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Stats.Cancelled || len(res.Solutions) != 0 {
			t.Errorf("%s: cancelled=%v, %d solutions", name, res.Stats.Cancelled, len(res.Solutions))
		}
	}

	streamed := 0
	stats, err := plan.RunStream(context.Background(), store, params, DefaultOptions,
		func(Solution) bool { streamed++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 || streamed != stats.Solutions {
		t.Fatalf("stream yielded %d solutions, stats say %d", streamed, stats.Solutions)
	}
}
