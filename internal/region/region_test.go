package region

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bbox"
)

func rect(x0, y0, x1, y1 float64) bbox.Box { return bbox.Rect(x0, y0, x1, y1) }

func TestFromBoxAndBasics(t *testing.T) {
	r := FromBox(rect(0, 0, 2, 3))
	if r.IsEmpty() || r.K() != 2 {
		t.Fatalf("FromBox wrong: %v", r)
	}
	if r.Measure() != 6 {
		t.Errorf("Measure = %g", r.Measure())
	}
	if !r.BoundingBox().Equal(rect(0, 0, 2, 3)) {
		t.Errorf("BoundingBox = %v", r.BoundingBox())
	}
	if r.NumBoxes() != 1 {
		t.Errorf("NumBoxes = %d", r.NumBoxes())
	}
	// Degenerate boxes are null sets → empty region.
	if !FromBox(rect(1, 1, 1, 5)).IsEmpty() {
		t.Errorf("degenerate box should produce empty region")
	}
	if !FromBox(bbox.Empty(2)).IsEmpty() {
		t.Errorf("empty box should produce empty region")
	}
	if Empty(2).String() != "∅" {
		t.Errorf("empty String = %q", Empty(2).String())
	}
}

func TestUnionDisjointAndOverlapping(t *testing.T) {
	a := FromBox(rect(0, 0, 2, 2))
	b := FromBox(rect(4, 4, 6, 6))
	u := a.Union(b)
	if u.Measure() != 8 {
		t.Errorf("disjoint union measure = %g", u.Measure())
	}
	c := FromBox(rect(1, 1, 3, 3)) // overlaps a by 1
	v := a.Union(c)
	if v.Measure() != 4+4-1 {
		t.Errorf("overlapping union measure = %g", v.Measure())
	}
	// Union with self is identity.
	if !a.Union(a).Equal(a) {
		t.Errorf("a ∪ a ≠ a")
	}
	// Union with empty.
	if !a.Union(Empty(2)).Equal(a) || !Empty(2).Union(a).Equal(a) {
		t.Errorf("union with empty wrong")
	}
}

func TestIntersect(t *testing.T) {
	a := FromBox(rect(0, 0, 4, 4))
	b := FromBox(rect(2, 2, 6, 6))
	i := a.Intersect(b)
	if i.Measure() != 4 {
		t.Errorf("intersect measure = %g", i.Measure())
	}
	// Edge-touching boxes have null intersection.
	c := FromBox(rect(4, 0, 8, 4))
	if !a.Intersect(c).IsEmpty() {
		t.Errorf("edge-touching intersection should be null")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Errorf("Overlaps wrong")
	}
}

func TestDifference(t *testing.T) {
	a := FromBox(rect(0, 0, 4, 4))
	b := FromBox(rect(1, 1, 3, 3))
	d := a.Difference(b)
	if d.Measure() != 16-4 {
		t.Errorf("difference measure = %g", d.Measure())
	}
	if !a.Difference(a).IsEmpty() {
		t.Errorf("a \\ a nonempty")
	}
	if !Empty(2).Difference(a).IsEmpty() {
		t.Errorf("∅ \\ a nonempty")
	}
	if !a.Difference(Empty(2)).Equal(a) {
		t.Errorf("a \\ ∅ ≠ a")
	}
	// Subtract completely covering region.
	big := FromBox(rect(-1, -1, 5, 5))
	if !a.Difference(big).IsEmpty() {
		t.Errorf("a \\ big nonempty")
	}
}

func TestComplementIn(t *testing.T) {
	u := rect(0, 0, 10, 10)
	a := FromBox(rect(2, 2, 4, 4))
	c := a.ComplementIn(u)
	if c.Measure() != 100-4 {
		t.Errorf("complement measure = %g", c.Measure())
	}
	// Double complement is identity (up to null sets).
	if !c.ComplementIn(u).Equal(a) {
		t.Errorf("double complement ≠ identity")
	}
}

func TestEqualLeq(t *testing.T) {
	// Same region, different decompositions.
	a := FromBoxes(2, rect(0, 0, 2, 1), rect(0, 1, 2, 2))
	b := FromBox(rect(0, 0, 2, 2))
	if !a.Equal(b) {
		t.Errorf("tiled region ≠ whole box")
	}
	if !a.Leq(b) || !b.Leq(a) {
		t.Errorf("Leq wrong on equal regions")
	}
	c := FromBox(rect(0, 0, 1, 1))
	if !c.Leq(b) || b.Leq(c) {
		t.Errorf("strict Leq wrong")
	}
}

func TestCompactMergesTiles(t *testing.T) {
	a := FromBoxes(2, rect(0, 0, 1, 2), rect(1, 0, 2, 2))
	if a.NumBoxes() != 1 {
		t.Errorf("adjacent tiles not merged: %v", a)
	}
}

func TestSplit(t *testing.T) {
	a := FromBox(rect(0, 0, 4, 2))
	h := a.Split()
	if h.IsEmpty() || !h.Leq(a) || h.Equal(a) {
		t.Errorf("Split is not a proper nonempty subregion: %v", h)
	}
	if h.Measure() != a.Measure()/2 {
		t.Errorf("Split measure = %g", h.Measure())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Split of empty should panic")
		}
	}()
	Empty(2).Split()
}

func TestContainsPoint(t *testing.T) {
	a := FromBoxes(2, rect(0, 0, 1, 1), rect(5, 5, 6, 6))
	if !a.ContainsPoint([]float64{0.5, 0.5}) || !a.ContainsPoint([]float64{5.5, 5.5}) {
		t.Errorf("ContainsPoint misses region points")
	}
	if a.ContainsPoint([]float64{3, 3}) {
		t.Errorf("ContainsPoint accepts outside point")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	Empty(2).Union(Empty(3))
}

func TestSubtractBoxShapes(t *testing.T) {
	// Punching a hole in the middle yields 4 slabs in 2-D.
	a := rect(0, 0, 3, 3)
	b := rect(1, 1, 2, 2)
	parts := subtractBox(a, b)
	total := 0.0
	for _, p := range parts {
		total += p.Volume()
		if !positiveVolume(p) {
			t.Errorf("degenerate part %v", p)
		}
		if p.Overlaps(b) && positiveVolume(p.Meet(b)) {
			t.Errorf("part %v overlaps subtrahend interior", p)
		}
	}
	if total != 9-1 {
		t.Errorf("subtract total = %g", total)
	}
}

func TestThreeDimensionalRegions(t *testing.T) {
	u := bbox.New([]float64{0, 0, 0}, []float64{10, 10, 10})
	a := FromBox(bbox.New([]float64{0, 0, 0}, []float64{5, 5, 5}))
	c := a.ComplementIn(u)
	if got := a.Measure() + c.Measure(); got != 1000 {
		t.Errorf("3-D complement measures = %g", got)
	}
	if !a.Intersect(c).IsEmpty() {
		t.Errorf("region overlaps its complement")
	}
}

// randRegion builds a small random region from the bits of seed.
func randRegion(seed uint64) *Region {
	r := Empty(2)
	for i := 0; i < 3; i++ {
		bits := seed >> uint(i*16)
		x := float64(bits & 0xf)
		y := float64((bits >> 4) & 0xf)
		w := float64((bits>>8)&0x7) + 1
		h := float64((bits>>11)&0x7) + 1
		r = r.Union(FromBox(rect(x, y, x+w, y+h)))
	}
	return r
}

// Property: measure is additive — |a| + |b| = |a∪b| + |a∩b|.
func TestQuickMeasureAdditivity(t *testing.T) {
	check := func(s1, s2 uint64) bool {
		a, b := randRegion(s1), randRegion(s2)
		lhs := a.Measure() + b.Measure()
		rhs := a.Union(b).Measure() + a.Intersect(b).Measure()
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan in the region algebra.
func TestQuickRegionDeMorgan(t *testing.T) {
	u := rect(0, 0, 32, 32)
	check := func(s1, s2 uint64) bool {
		a, b := randRegion(s1), randRegion(s2)
		lhs := a.Intersect(b).ComplementIn(u)
		rhs := a.ComplementIn(u).Union(b.ComplementIn(u))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: difference is intersection with complement.
func TestQuickDifferenceViaComplement(t *testing.T) {
	u := rect(0, 0, 32, 32)
	check := func(s1, s2 uint64) bool {
		a, b := randRegion(s1), randRegion(s2)
		return a.Difference(b).Equal(a.Intersect(b.ComplementIn(u)))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decomposition invariant survives the sort-based compact —
// boxes stay pairwise interior-disjoint with positive volume, and the
// fast Leq/Overlaps agree with their measure-theoretic definitions.
func TestQuickInvariantsAndFastPredicates(t *testing.T) {
	check := func(s1, s2 uint64) bool {
		a, b := randRegion(s1), randRegion(s2)
		for _, r := range []*Region{a.Union(b), a.Difference(b), a.Intersect(b)} {
			for i, bi := range r.boxes {
				if !positiveVolume(bi) {
					return false
				}
				for _, bj := range r.boxes[i+1:] {
					if interiorOverlaps(bi, bj) {
						return false
					}
				}
			}
		}
		if a.Leq(b) != a.Difference(b).IsEmpty() {
			return false
		}
		// LeqIn is containment clipped to a universe: (a\b) ∩ u = (a∩u)\b.
		u := rect(0, 0, 12, 12)
		if a.LeqIn(u, b) != a.Intersect(FromBox(u)).Leq(b) {
			return false
		}
		return a.Overlaps(b) == !a.Intersect(b).IsEmpty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferenceDisjointReturnsReceiver pins the allocation fast path: a
// subtrahend that misses the region entirely must hand back the receiver.
func TestDifferenceDisjointReturnsReceiver(t *testing.T) {
	a := FromBoxes(2, rect(0, 0, 2, 2), rect(4, 4, 6, 6))
	far := FromBox(rect(20, 20, 30, 30))
	if got := a.Difference(far); got != a {
		t.Errorf("Difference with disjoint subtrahend rebuilt the region")
	}
	if got := a.Difference(Empty(2)); got != a {
		t.Errorf("Difference with empty subtrahend rebuilt the region")
	}
}

// Property: ⌈a∪b⌉ = ⌈a⌉ ⊔ ⌈b⌉ and ⌈a∩b⌉ ⊑ ⌈a⌉ ⊓ ⌈b⌉ (Lemma 5).
func TestQuickBoundingBoxHomomorphism(t *testing.T) {
	check := func(s1, s2 uint64) bool {
		a, b := randRegion(s1), randRegion(s2)
		if !a.Union(b).BoundingBox().Equal(a.BoundingBox().Join(b.BoundingBox())) {
			return false
		}
		return a.BoundingBox().Meet(b.BoundingBox()).Contains(a.Intersect(b).BoundingBox())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
