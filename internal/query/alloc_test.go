package query

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// These tests pin the PR's tentpole — an allocation-free per-candidate
// path — against backsliding. BENCH_PR4.json tracks the absolute numbers;
// these are the hard floors.

// allocTestSetup builds a store whose layer holds n small objects inside
// the bounding box of an L-shaped parameter region C but outside C itself:
// every object passes the index's bounding-box filter and is rejected by
// the exact solved-form filter, exercising both per-candidate paths.
func allocTestSetup(n int) (*spatialdb.Store, *Plan, map[string]*region.Region) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	for i := 0; i < n; i++ {
		x := 15 + float64(i%28)
		y := 15 + float64((i/28)%28)
		store.MustInsert("objs", fmt.Sprintf("o%d", i),
			region.FromBox(bbox.Rect(x, y, x+0.5, y+0.5)))
	}
	q := New()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "objs")
	plan, err := Compile(q, store)
	if err != nil {
		panic(err)
	}
	// C is an L: its bounding box [0,0]x[50,50] covers every object, the
	// region itself covers none.
	params := map[string]*region.Region{"C": region.FromBoxes(2,
		bbox.Rect(0, 0, 50, 10), bbox.Rect(0, 0, 10, 50))}
	return store, plan, params
}

// TestSpecIntoAllocFree pins SpecInto (the executor's form of
// StepBoxPlan.Spec) at zero steady-state allocations.
func TestSpecIntoAllocFree(t *testing.T) {
	_, plan, params := allocTestSetup(4)
	envBox := make([]bbox.Box, plan.Query.Sys.Vars.Len())
	v, _ := plan.Query.Sys.Vars.Lookup("C")
	envBox[v] = params["C"].BoundingBox()
	var scr specScratch
	if _, ok := plan.Steps[0].SpecInto(2, envBox, &scr); !ok {
		t.Fatal("spec unexpectedly unsatisfiable")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := plan.Steps[0].SpecInto(2, envBox, &scr); !ok {
			t.Fatal("spec unexpectedly unsatisfiable")
		}
	})
	if allocs != 0 {
		t.Fatalf("SpecInto allocates %v per call with a warm scratch, want 0", allocs)
	}
}

// TestRunCtxCandidateLoopAllocs pins the full executor: a run examining
// ~500 candidates must stay within a small fixed allocation budget — the
// per-run setup (algebra, frame, scratch, stats) — proving the candidate
// loop itself is allocation-free. Before this PR the same run cost ~25
// allocations per candidate.
func TestRunCtxCandidateLoopAllocs(t *testing.T) {
	store, plan, params := allocTestSetup(500)
	run := func() *Result {
		res, err := plan.RunCtx(context.Background(), store, params, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Stats.Candidates < 500 || res.Stats.ExactRejects < 500 || len(res.Solutions) != 0 {
		t.Fatalf("setup does not exercise the loop: %+v", res.Stats)
	}
	allocs := testing.AllocsPerRun(20, func() { run() })
	// ~51 fixed allocations per run measured at commit time; the bound
	// leaves 2x headroom while still failing if per-candidate work ever
	// allocates again (500 candidates x 1 alloc would be ~4x over).
	const budget = 128
	if allocs > budget {
		t.Fatalf("RunCtx allocates %v per run over %d candidates, want <= %d",
			allocs, res.Stats.Candidates, budget)
	}
}

// TestExactFilterUniverseRelative pins the algebra's containment
// semantics: stored regions may extend beyond the store universe, and the
// exact filter must treat the excess as a null set (the generic
// IsBottom(x ∧ ¬y) path complements within the universe, so the Leqer
// fast path has to agree). Regression: an early version of the fast path
// used absolute containment and silently dropped such objects, breaking
// the every-configuration-same-solutions contract.
func TestExactFilterUniverseRelative(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	store.MustInsert("objs", "spill", region.FromBox(bbox.Rect(90, 90, 110, 110)))
	q := New()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "objs")
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]*region.Region{"C": region.FromBox(bbox.Rect(0, 0, 100, 100))}
	// (UseIndex stays off: the bounding-box filter sees the raw, unclipped
	// box — an object spilling past the universe is outside the paper's
	// data model for the index path, and ZOrderIdx rejects such inserts.)
	for _, opts := range []Options{
		{UseIndex: false, UseExact: false},
		{UseIndex: false, UseExact: true},
	} {
		res, err := plan.Run(store, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Solutions) != 1 {
			t.Errorf("opts %+v: %d solutions, want 1 (object spilling past the universe must count as contained)",
				opts, len(res.Solutions))
		}
	}
}

// TestScanExactLoopAllocs covers the other ablation: no index, exact
// filter only — the fast Leq refutation must keep the scan allocation-free
// per candidate too.
func TestScanExactLoopAllocs(t *testing.T) {
	store, plan, params := allocTestSetup(500)
	opts := Options{UseIndex: false, UseExact: true}
	run := func() {
		if _, err := plan.RunCtx(context.Background(), store, params, opts); err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(20, func() { run() })
	const budget = 128
	if allocs > budget {
		t.Fatalf("scan+exact RunCtx allocates %v per run, want <= %d", allocs, budget)
	}
}
