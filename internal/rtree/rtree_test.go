package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bbox"
)

func rect(x0, y0, x1, y1 float64) bbox.Box { return bbox.Rect(x0, y0, x1, y1) }

// collectIDs gathers and sorts result IDs.
func collectIDs(search func(func(Entry) bool) int) []int64 {
	var ids []int64
	search(func(e Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid branching should panic")
		}
	}()
	New(2, WithBranching(3, 4))
}

func TestInsertValidation(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(bbox.Empty(2), 1); err == nil {
		t.Errorf("empty box accepted")
	}
	if err := tr.Insert(bbox.New([]float64{0}, []float64{1}), 1); err == nil {
		t.Errorf("wrong-dimension box accepted")
	}
	if err := tr.Insert(rect(0, 0, 1, 1), 1); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestSmallOverlapSearch(t *testing.T) {
	tr := New(2)
	boxes := []bbox.Box{
		rect(0, 0, 1, 1), rect(2, 2, 3, 3), rect(0.5, 0.5, 2.5, 2.5),
		rect(10, 10, 11, 11),
	}
	for i, b := range boxes {
		if err := tr.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Closed-box semantics: box 1 touches the query at its corner (2,2)
	// and therefore overlaps.
	ids := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(rect(0, 0, 2, 2), v) })
	want := []int64{0, 1, 2}
	if !equalIDs(ids, want) {
		t.Errorf("overlap ids = %v, want %v", ids, want)
	}
	// Shrinking the query below the corner excludes box 1.
	ids = collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(rect(0, 0, 1.9, 1.9), v) })
	want = []int64{0, 2}
	if !equalIDs(ids, want) {
		t.Errorf("overlap ids = %v, want %v", ids, want)
	}
}

func TestContainedSearch(t *testing.T) {
	tr := New(2)
	_ = tr.Insert(rect(0, 0, 1, 1), 0)
	_ = tr.Insert(rect(0, 0, 5, 5), 1)
	_ = tr.Insert(rect(2, 2, 3, 3), 2)
	ids := collectIDs(func(v func(Entry) bool) int { return tr.SearchContained(rect(0, 0, 3.5, 3.5), v) })
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("contained ids = %v", ids)
	}
}

func TestEarlyTermination(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		_ = tr.Insert(rect(float64(i), 0, float64(i)+1, 1), int64(i))
	}
	count := 0
	tr.SearchOverlap(rect(0, 0, 200, 1), func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visitor ran %d times after requesting stop at 5", count)
	}
}

// randomBoxes generates n deterministic pseudo-random small boxes.
func randomBoxes(n int, seed int64) []bbox.Box {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bbox.Box, n)
	for i := range out {
		x, y := rng.Float64()*100, rng.Float64()*100
		w, h := rng.Float64()*10+0.1, rng.Float64()*10+0.1
		out[i] = rect(x, y, x+w, y+h)
	}
	return out
}

// Exhaustive cross-check against linear scan for all three search modes,
// both split strategies.
func TestSearchMatchesLinearScan(t *testing.T) {
	for _, strat := range []SplitStrategy{QuadraticSplit, LinearSplit} {
		tr := New(2, WithSplit(strat), WithBranching(2, 5))
		boxes := randomBoxes(400, 42)
		for i, b := range boxes {
			if err := tr.Insert(b, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		queries := randomBoxes(25, 7)
		for _, q := range queries {
			got := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(q, v) })
			var want []int64
			for i, b := range boxes {
				if b.Overlaps(q) {
					want = append(want, int64(i))
				}
			}
			if !equalIDs(got, want) {
				t.Fatalf("overlap mismatch for %v: got %d ids, want %d", q, len(got), len(want))
			}
			gotC := collectIDs(func(v func(Entry) bool) int { return tr.SearchContained(q, v) })
			var wantC []int64
			for i, b := range boxes {
				if q.Contains(b) {
					wantC = append(wantC, int64(i))
				}
			}
			if !equalIDs(gotC, wantC) {
				t.Fatalf("contained mismatch for %v", q)
			}
		}
	}
}

func TestSearchSpecMatchesDirectFilter(t *testing.T) {
	tr := New(2, WithBranching(2, 6))
	boxes := randomBoxes(300, 99)
	for i, b := range boxes {
		_ = tr.Insert(b, int64(i))
	}
	specs := []bbox.RangeSpec{
		{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 50, 50)},
		{K: 2, Lower: rect(20, 20, 21, 21), Upper: bbox.Univ(2)},
		{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2),
			Overlaps: []bbox.Box{rect(40, 40, 60, 60)}},
		{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 70, 70),
			Overlaps: []bbox.Box{rect(10, 10, 30, 30), rect(25, 25, 45, 45)}},
	}
	for _, spec := range specs {
		got := collectIDs(func(v func(Entry) bool) int { return tr.SearchSpec(spec, v) })
		var want []int64
		for i, b := range boxes {
			if spec.Matches(b) {
				want = append(want, int64(i))
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("spec %+v: got %d ids, want %d", spec, len(got), len(want))
		}
	}
}

func TestSearchSpecUnsatisfiable(t *testing.T) {
	tr := New(2)
	_ = tr.Insert(rect(0, 0, 1, 1), 1)
	spec := bbox.RangeSpec{K: 2, Lower: rect(5, 5, 6, 6), Upper: rect(0, 0, 1, 1)}
	touched := tr.SearchSpec(spec, func(Entry) bool {
		t.Fatal("visitor called on unsatisfiable spec")
		return false
	})
	if touched != 0 {
		t.Errorf("touched %d nodes on unsatisfiable spec", touched)
	}
}

func TestDelete(t *testing.T) {
	tr := New(2, WithBranching(2, 4))
	boxes := randomBoxes(200, 5)
	for i, b := range boxes {
		_ = tr.Insert(b, int64(i))
	}
	// Delete half, verify the rest intact.
	for i := 0; i < 100; i++ {
		if !tr.Delete(boxes[i], int64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(rect(0, 0, 200, 200), v) })
	if len(got) != 100 {
		t.Fatalf("%d entries visible after deletes", len(got))
	}
	for _, id := range got {
		if id < 100 {
			t.Fatalf("deleted entry %d still present", id)
		}
	}
	// Deleting a missing entry returns false.
	if tr.Delete(rect(0, 0, 1, 1), 9999) {
		t.Errorf("deleting a missing entry succeeded")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := New(2)
	for i := 0; i < 50; i++ {
		_ = tr.Insert(rect(float64(i), 0, float64(i+1), 1), int64(i))
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(rect(float64(i), 0, float64(i+1), 1), int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	// Tree must be reusable.
	_ = tr.Insert(rect(0, 0, 1, 1), 7)
	ids := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(rect(0, 0, 2, 2), v) })
	if len(ids) != 1 || ids[0] != 7 {
		t.Errorf("reuse after emptying failed: %v", ids)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New(2, WithBranching(2, 4))
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for i, b := range randomBoxes(300, 3) {
		_ = tr.Insert(b, int64(i))
	}
	if tr.Height() < 3 {
		t.Errorf("height %d after 300 inserts with fanout 4", tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := New(2)
	for i, b := range randomBoxes(123, 11) {
		_ = tr.Insert(b, int64(i))
	}
	seen := map[int64]bool{}
	tr.All(func(e Entry) bool {
		seen[e.ID] = true
		return true
	})
	if len(seen) != 123 {
		t.Errorf("All visited %d of 123", len(seen))
	}
}

func TestSearchPrunes(t *testing.T) {
	// Clustered data: a query hitting one cluster must touch far fewer
	// nodes than the whole tree.
	tr := New(2, WithBranching(2, 4))
	n := 0
	for cluster := 0; cluster < 10; cluster++ {
		cx := float64(cluster * 1000)
		for i := 0; i < 100; i++ {
			_ = tr.Insert(rect(cx+float64(i), 0, cx+float64(i)+1, 1), int64(n))
			n++
		}
	}
	touched := tr.SearchOverlap(rect(0, 0, 50, 1), func(Entry) bool { return true })
	total := tr.SearchOverlap(rect(-1e9, -1e9, 1e9, 1e9), func(Entry) bool { return true })
	if touched*4 > total {
		t.Errorf("clustered query touched %d nodes of %d — no pruning", touched, total)
	}
}

// Property: after any sequence of inserts, search agrees with scan.
func TestQuickInsertSearchAgainstScan(t *testing.T) {
	check := func(seed int64, qx, qy uint8) bool {
		tr := New(2, WithBranching(2, 4))
		boxes := randomBoxes(60, seed)
		for i, b := range boxes {
			if err := tr.Insert(b, int64(i)); err != nil {
				return false
			}
		}
		q := rect(float64(qx%100), float64(qy%100), float64(qx%100)+15, float64(qy%100)+15)
		got := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(q, v) })
		var want []int64
		for i, b := range boxes {
			if b.Overlaps(q) {
				want = append(want, int64(i))
			}
		}
		return equalIDs(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFourDimensional(t *testing.T) {
	// The point-transform mode indexes 2k-dim point boxes; make sure k=4
	// works end to end.
	tr := New(4, WithBranching(2, 6))
	rng := rand.New(rand.NewSource(8))
	type rec struct {
		p  []float64
		id int64
	}
	var pts []rec
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		pts = append(pts, rec{p, int64(i)})
		if err := tr.Insert(bbox.New(p, p), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := bbox.New([]float64{2, 2, 2, 2}, []float64{8, 8, 8, 8})
	got := collectIDs(func(v func(Entry) bool) int { return tr.SearchOverlap(q, v) })
	var want []int64
	for _, r := range pts {
		if q.ContainsPoint(r.p) {
			want = append(want, r.id)
		}
	}
	if !equalIDs(got, want) {
		t.Errorf("4-D point search mismatch: %d vs %d", len(got), len(want))
	}
}
