// Package query is the public face of the library: it compiles a system of
// Boolean constraints plus a retrieval order into the paper's optimized
// execution plan, and runs it against a spatial store.
//
// Compilation (the paper's §3–§4 pipeline):
//
//  1. the system is normalized (Theorem 1) and triangularized
//     (Algorithm 1, internal/triangular);
//  2. each solved constraint's Boolean functions s, t, p, q are
//     approximated by bounding-box functions (Algorithm 2, internal/bbox):
//     s from below, t/p/q from above;
//  3. at run time each retrieval step evaluates its box functions against
//     the already-bound prefix, yielding ONE univariate range query
//     (bbox.RangeSpec) per step, which the spatial index answers.
//
// Execution builds solution tuples incrementally, pruning useless partial
// tuples as early as possible — the paper's headline optimization. Two
// independently switchable filters implement the ablations of the
// experiment suite: the index/bounding-box filter and the exact
// solved-form filter. Final tuples are always verified against the
// original system in the exact region algebra, so every execution mode
// returns the same, sound solution set.
//
// Execution is cancellable and boundable: every executor has a
// context-aware variant (RunCtx, RunParallelCtx, RunNaiveCtx, RunStream)
// that polls cancellation every few hundred candidates, stops at
// Options.Limit solutions, and returns the partial result flagged
// Stats.Cancelled/Stats.Truncated instead of an error — so one
// pathological query can neither pin the store's read guard forever nor
// buffer an unbounded result set.
//
// DESIGN.md §2 ("Compilation") places this package in the module map; §3 describes the concurrency contract the executors uphold.
package query

import (
	"context"
	"fmt"

	"repro/internal/boolalg"
	"repro/internal/constraint"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// Binding associates a retrieval variable with the layer its candidate
// objects come from.
type Binding struct {
	Var   string
	Layer string
}

// Query is a constraint system plus a retrieval order. Variables of the
// system not mentioned in Retrieve are parameters and must be bound to
// concrete regions at Run time.
type Query struct {
	Sys      *constraint.System
	Retrieve []Binding
}

// New returns a query over a fresh constraint system.
func New() *Query {
	return &Query{Sys: constraint.NewSystem()}
}

// From appends a retrieval binding (variable drawn from layer) and returns
// the query for chaining.
func (q *Query) From(varName, layer string) *Query {
	q.Retrieve = append(q.Retrieve, Binding{Var: varName, Layer: layer})
	return q
}

// Options selects the executor's filters. The zero value disables both —
// a full scan per step with only the final verification, the weakest
// configuration; use DefaultOptions for the paper's full pipeline.
type Options struct {
	// UseIndex answers each step's range query with the layer index
	// (bounding-box filtering). When false the step scans the whole layer.
	UseIndex bool
	// UseExact applies the solved-form constraint Cᵢ exactly (region
	// algebra) to every candidate before extending the partial tuple.
	UseExact bool
	// Limit stops the search after this many solutions (≤ 0: unlimited).
	// A run stopped by its limit returns the partial result with
	// Stats.Truncated set. Honored by every executor, including the
	// naive baseline.
	Limit int
}

// DefaultOptions enables both filters: the paper's full pipeline.
var DefaultOptions = Options{UseIndex: true, UseExact: true}

// Stats counts the executor's work.
type Stats struct {
	Candidates    int // objects considered across all steps
	ExactRejects  int // candidates rejected by the exact solved-form filter
	Extended      int // partial-tuple extensions performed
	FinalChecked  int // full tuples reaching final verification
	FinalRejected int // full tuples failing it
	Solutions     int
	GroundFailed  bool // parameter-only constraints already unsatisfiable
	Truncated     bool // Options.Limit stopped the search early
	Cancelled     bool // the context was cancelled or expired mid-run
	DB            spatialdb.Stats
}

// Solution is one tuple of objects, in retrieval order.
type Solution struct {
	Objects []spatialdb.Object
}

// Names returns the object names of the tuple.
func (s Solution) Names() []string {
	out := make([]string, len(s.Objects))
	for i, o := range s.Objects {
		out[i] = o.Name
	}
	return out
}

// Result is the outcome of one execution.
type Result struct {
	Solutions []Solution
	Stats     Stats
}

// RunNaive executes the query with no optimization at all: it enumerates
// the full cross product of the bound layers and checks the original
// system on each complete tuple. This is the baseline the paper's
// optimization is measured against (experiment E6). Like Plan.Run it
// holds the store's read guard for the whole execution.
func RunNaive(q *Query, store *spatialdb.Store, params map[string]*region.Region) (*Result, error) {
	return RunNaiveCtx(context.Background(), q, store, params, Options{})
}

// RunNaiveCtx is RunNaive bounded by a context and Options.Limit (the
// filter options are meaningless for the naive baseline and ignored).
// Cancellation and the limit behave exactly as in Plan.RunCtx: the
// search stops early, the read guard is released, and the partial
// result comes back with Stats.Cancelled/Stats.Truncated set rather
// than an error.
func RunNaiveCtx(ctx context.Context, q *Query, store *spatialdb.Store, params map[string]*region.Region, opts Options) (*Result, error) {
	if err := validate(q, store); err != nil {
		return nil, err
	}
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(q, alg, params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	ctl := newExecCtl(ctx, opts.Limit)
	if ctl.poll() { // already cancelled: don't touch the read guard
		ctl.finish(&res.Stats)
		return res, nil
	}
	store.RLock()
	defer store.RUnlock()
	names := make([]string, len(q.Retrieve))
	for i, b := range q.Retrieve {
		names[i] = b.Layer
	}
	layers, err := resolveLayers(store, names)
	if err != nil {
		return nil, err
	}
	tuple := make([]spatialdb.Object, len(q.Retrieve))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Retrieve) {
			if ctl.poll() {
				return
			}
			res.Stats.FinalChecked++
			if q.Sys.Satisfied(alg, env) {
				if !ctl.reserve() {
					return
				}
				res.Stats.Solutions++
				objs := append([]spatialdb.Object(nil), tuple...)
				res.Solutions = append(res.Solutions, Solution{Objects: objs})
			} else {
				res.Stats.FinalRejected++
			}
			return
		}
		v, _ := q.Sys.Vars.Lookup(q.Retrieve[i].Var)
		layers[i].All(func(o spatialdb.Object) bool {
			res.Stats.Candidates++
			if res.Stats.Candidates%cancelCheckEvery == 0 {
				ctl.poll()
			}
			if ctl.halted() {
				return false
			}
			tuple[i] = o
			env[v] = o.Reg
			rec(i + 1)
			env[v] = nil
			return !ctl.halted()
		})
	}
	rec(0)
	ctl.finish(&res.Stats)
	return res, nil
}

// validate checks the query's bindings against the system and store.
func validate(q *Query, store *spatialdb.Store) error {
	if len(q.Retrieve) == 0 {
		return fmt.Errorf("query: no retrieval variables")
	}
	seen := map[string]bool{}
	for _, b := range q.Retrieve {
		if _, ok := q.Sys.Vars.Lookup(b.Var); !ok {
			return fmt.Errorf("query: retrieval variable %q not used in any constraint", b.Var)
		}
		if seen[b.Var] {
			return fmt.Errorf("query: variable %q retrieved twice", b.Var)
		}
		seen[b.Var] = true
		if !store.HasLayer(b.Layer) {
			return fmt.Errorf("query: layer %q does not exist", b.Layer)
		}
	}
	return nil
}

// paramIDs returns the variable ids of the system's parameters (variables
// not retrieved).
func paramIDs(q *Query) []int {
	retrieved := map[int]bool{}
	for _, b := range q.Retrieve {
		if v, ok := q.Sys.Vars.Lookup(b.Var); ok {
			retrieved[v] = true
		}
	}
	var out []int
	for v := 0; v < q.Sys.Vars.Len(); v++ {
		if !retrieved[v] {
			out = append(out, v)
		}
	}
	return out
}

// bindParams builds the evaluation environment with all parameters bound
// (clipped to the store universe, since the region algebra's complement is
// relative to it).
func bindParams(q *Query, alg *region.Algebra, params map[string]*region.Region) ([]boolalg.Element, error) {
	env := make([]boolalg.Element, q.Sys.Vars.Len())
	for _, v := range paramIDs(q) {
		name := q.Sys.Vars.Name(v)
		val, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("query: parameter %q not bound", name)
		}
		env[v] = alg.Clip(val)
	}
	return env, nil
}
