// Server-side overload admission control (DESIGN.md §9). Unbounded
// concurrent admission is how a serving tier dies under overload: every
// request that cannot make progress still holds memory, a goroutine and
// eventually a store guard, and the latency of everything behind it grows
// without bound. Instead, each expensive request class reserves a slot
// from a bounded pool before it touches the store:
//
//   - the read pool covers plan execution (/query, /query?stream=1, and
//     each sub-query of /query/batch individually)
//   - the mutate pool covers the write-lock endpoints (object PUT/DELETE,
//     layer creation, objects:bulk)
//
// When a pool is exhausted the request enters a bounded wait queue; when
// the queue is full — or the request's own deadline (or the queue wait
// cap) expires first — it is shed with 429 + Retry-After, never having
// touched the store or its guards. Cheap point reads and the
// observability endpoints (/stats, /healthz, /readyz, /debug/vars) are
// deliberately unguarded: an operator must be able to see an overloaded
// server.
package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultMaxQueueWait bounds how long a request may sit in the admission
// queue when neither it nor its context expires sooner.
const DefaultMaxQueueWait = 250 * time.Millisecond

// Shed reasons; both answer 429 with Retry-After.
var (
	errShedQueueFull = errors.New("server overloaded: admission queue full")
	errShedWait      = errors.New("server overloaded: gave up waiting for admission")
)

// errIsShed reports whether err is an admission shed.
func errIsShed(err error) bool {
	return errors.Is(err, errShedQueueFull) || errors.Is(err, errShedWait)
}

// shedReject answers a shed request: 429 Too Many Requests with a
// Retry-After hint, counted in query_shed.
//
//boolq:errwriter
func (s *Server) shedReject(w http.ResponseWriter, err error) {
	s.metrics.Shed.Add(1)
	writeRetryError(w, http.StatusTooManyRequests, retryAfterShed, "%v", err)
}

// admission is one bounded in-flight pool plus its wait queue. A nil
// *admission admits everything (the feature is off unless -max-inflight
// is set), so the zero-configuration path costs one nil check.
type admission struct {
	slots   chan struct{} // capacity = max in-flight reservations
	queue   chan struct{} // capacity = max waiters beyond the slots
	maxWait time.Duration

	admitted atomic.Int64 // reservations granted
	queued   atomic.Int64 // reservations that had to wait
	shedFull atomic.Int64 // rejected: queue full
	shedWait atomic.Int64 // rejected: deadline or wait cap expired queued
}

// newAdmission builds a pool of maxInflight slots with a queueDepth-deep
// wait queue. maxInflight ≤ 0 disables admission control (returns nil).
func newAdmission(maxInflight, queueDepth int, maxWait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxQueueWait
	}
	return &admission{
		slots:   make(chan struct{}, maxInflight),
		queue:   make(chan struct{}, queueDepth),
		maxWait: maxWait,
	}
}

// acquire reserves a slot, waiting in the bounded queue if none is free.
// The wait is deadline-aware: it ends at the request context's deadline
// or after maxWait, whichever comes first, and the request is shed. The
// caller must invoke the returned release exactly once (on nil error).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	default:
	}
	// No free slot: claim a queue position or shed immediately.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shedFull.Add(1)
		return nil, errShedQueueFull
	}
	defer func() { <-a.queue }()
	a.queued.Add(1)
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	case <-ctx.Done():
		a.shedWait.Add(1)
		return nil, errShedWait
	case <-t.C:
		a.shedWait.Add(1)
		return nil, errShedWait
	}
}

func (a *admission) release() { <-a.slots }

// poolStats snapshots one pool for /stats.
func (a *admission) poolStats() *shedPool {
	if a == nil {
		return nil
	}
	return &shedPool{
		MaxInflight: cap(a.slots),
		QueueDepth:  cap(a.queue),
		InFlight:    len(a.slots),
		Admitted:    a.admitted.Load(),
		Queued:      a.queued.Load(),
		ShedFull:    a.shedFull.Load(),
		ShedWait:    a.shedWait.Load(),
	}
}

// shedTotal is the pool's lifetime shed count (0 for a nil pool).
func (a *admission) shedTotal() int64 {
	if a == nil {
		return 0
	}
	return a.shedFull.Load() + a.shedWait.Load()
}
