package spatialdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

// bulkItems returns n deterministic random items inside the 100×100
// universe.
func bulkItems(n int, seed int64) []BulkItem {
	rng := rand.New(rand.NewSource(seed))
	items := make([]BulkItem, n)
	for i := range items {
		x, y := rng.Float64()*90, rng.Float64()*90
		w, h := rng.Float64()*8+0.5, rng.Float64()*8+0.5
		items[i] = BulkItem{
			Name: fmt.Sprintf("o%d", i),
			Reg:  region.FromBox(rect(x, y, x+w, y+h)),
		}
	}
	return items
}

// searchIDSet runs one containment query and returns the matched names.
func searchNames(l *Layer, b bbox.Box) map[string]bool {
	out := map[string]bool{}
	l.Search(bbox.RangeSpec{K: b.K, Lower: bbox.Empty(b.K), Upper: b}, func(o Object) bool {
		out[o.Name] = true
		return true
	})
	return out
}

// TestBulkInsertMatchesLooped checks, for every backend, that a bulk
// load answers range queries exactly like per-object insertion and bumps
// the epoch once for the whole batch.
func TestBulkInsertMatchesLooped(t *testing.T) {
	items := bulkItems(300, 11)
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			u := rect(0, 0, 100, 100)
			looped := NewStore(u, kind)
			for _, it := range items {
				if _, err := looped.Insert("objs", it.Name, it.Reg); err != nil {
					t.Fatal(err)
				}
			}
			bulk := NewStore(u, kind)
			before := bulk.Epoch()
			rep, err := bulk.BulkInsert("objs", items, BulkAtomic)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Inserted != len(items) {
				t.Fatalf("inserted %d of %d", rep.Inserted, len(items))
			}
			if got := bulk.Epoch(); got != before+1 {
				t.Errorf("epoch bumped %d times, want 1", got-before)
			}
			for i, res := range rep.Results {
				if res.Err != nil || res.Object.ID == 0 {
					t.Fatalf("result %d: %+v", i, res)
				}
			}
			// Several probe queries must agree exactly.
			for _, q := range []bbox.Box{rect(0, 0, 100, 100), rect(10, 10, 40, 40), rect(70, 5, 95, 30)} {
				want := searchNames(looped.Layer("objs"), q)
				got := searchNames(bulk.Layer("objs"), q)
				if len(want) != len(got) {
					t.Fatalf("query %v: %d names vs %d", q, len(got), len(want))
				}
				for n := range want {
					if !got[n] {
						t.Fatalf("query %v: missing %q", q, n)
					}
				}
			}
		})
	}
}

// TestBulkInsertIntoNonEmptyLayer checks the packed rebuild keeps the
// pre-batch objects intact.
func TestBulkInsertIntoNonEmptyLayer(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), RTree)
	s.MustInsert("objs", "pre", region.FromBox(rect(1, 1, 2, 2)))
	if _, err := s.BulkInsert("objs", bulkItems(50, 3), BulkAtomic); err != nil {
		t.Fatal(err)
	}
	l := s.Layer("objs")
	if l.Len() != 51 {
		t.Fatalf("Len = %d, want 51", l.Len())
	}
	if !searchNames(l, rect(0, 0, 3, 3))["pre"] {
		t.Error("pre-batch object lost by the bulk rebuild")
	}
	if _, ok := l.GetByName("o49"); !ok {
		t.Error("bulk object not reachable by name")
	}
}

// TestBulkInsertTrickleBatch: a batch much smaller than the layer takes
// the incremental path (no packed rebuild) and must still leave the
// index answering exactly.
func TestBulkInsertTrickleBatch(t *testing.T) {
	for _, kind := range []IndexKind{RTree, Grid, ZOrderIdx} {
		t.Run(kind.String(), func(t *testing.T) {
			s := NewStore(rect(0, 0, 100, 100), kind)
			if _, err := s.BulkInsert("objs", bulkItems(400, 31), BulkAtomic); err != nil {
				t.Fatal(err)
			}
			trickle := []BulkItem{
				{Name: "tr1", Reg: region.FromBox(rect(50, 50, 51, 51))},
				{Name: "tr2", Reg: region.FromBox(rect(60, 60, 61, 61))},
			}
			rep, err := s.BulkInsert("objs", trickle, BulkAtomic)
			if err != nil || rep.Inserted != 2 {
				t.Fatalf("trickle batch: %v, inserted %d", err, rep.Inserted)
			}
			got := searchNames(s.Layer("objs"), rect(49, 49, 62, 62))
			if !got["tr1"] || !got["tr2"] {
				t.Errorf("trickle objects unsearchable: %v", got)
			}
		})
	}
}

// TestBulkInsertAtomicInvalidMidBatch: an empty region in the middle of
// an atomic batch aborts the whole batch and leaves the store unchanged.
func TestBulkInsertAtomicInvalidMidBatch(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			s := NewStore(rect(0, 0, 100, 100), kind)
			s.MustInsert("objs", "pre", region.FromBox(rect(1, 1, 2, 2)))
			epoch := s.Epoch()
			items := bulkItems(10, 5)
			items[4].Reg = region.Empty(2)
			rep, err := s.BulkInsert("objs", items, BulkAtomic)
			if err == nil {
				t.Fatal("atomic batch with an empty region succeeded")
			}
			if rep.Results[4].Err == nil {
				t.Error("invalid item not attributed")
			}
			if rep.Inserted != 0 || s.Layer("objs").Len() != 1 {
				t.Errorf("atomic abort inserted %d objects (layer has %d)",
					rep.Inserted, s.Layer("objs").Len())
			}
			if s.Epoch() != epoch {
				t.Errorf("epoch moved on an aborted batch: %d -> %d", epoch, s.Epoch())
			}
		})
	}
}

// TestBulkInsertBestEffortInvalidMidBatch: the same batch in best-effort
// mode inserts the nine valid objects and reports the empty one.
func TestBulkInsertBestEffortInvalidMidBatch(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), RTree)
	items := bulkItems(10, 5)
	items[4].Reg = region.Empty(2)
	rep, err := s.BulkInsert("objs", items, BulkBestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted != 9 || s.Layer("objs").Len() != 9 {
		t.Errorf("inserted %d (layer %d), want 9", rep.Inserted, s.Layer("objs").Len())
	}
	if rep.Results[4].Err == nil {
		t.Error("invalid item not attributed")
	}
	if _, ok := s.Layer("objs").GetByName("o5"); !ok {
		t.Error("valid item after the invalid one was not inserted")
	}
}

// TestBulkInsertIndexRejectionRollback uses a z-order layer, whose index
// rejects boxes outside the universe at insertion time (the store itself
// does not check). The packed bulk build fails, the fallback loop
// attributes the error to the exact object, and in atomic mode the index
// is rolled back to its pre-batch contents.
func TestBulkInsertIndexRejectionRollback(t *testing.T) {
	u := rect(0, 0, 100, 100)
	mk := func() (*Store, []BulkItem) {
		s := NewStore(u, ZOrderIdx)
		s.MustInsert("objs", "pre", region.FromBox(rect(1, 1, 2, 2)))
		items := bulkItems(10, 9)
		items[6] = BulkItem{Name: "outside", Reg: region.FromBox(rect(90, 90, 150, 150))}
		return s, items
	}

	t.Run("atomic", func(t *testing.T) {
		s, items := mk()
		epoch := s.Epoch()
		rep, err := s.BulkInsert("objs", items, BulkAtomic)
		if err == nil {
			t.Fatal("atomic batch with an out-of-universe box succeeded")
		}
		if rep.Results[6].Err == nil {
			t.Error("index rejection not attributed to the offending object")
		}
		l := s.Layer("objs")
		if l.Len() != 1 {
			t.Fatalf("rollback left %d objects, want 1", l.Len())
		}
		// The rolled-back index still answers queries for the survivor.
		if !searchNames(l, rect(0, 0, 5, 5))["pre"] {
			t.Error("pre-batch object unsearchable after rollback")
		}
		if s.Epoch() != epoch {
			t.Errorf("epoch moved on an aborted batch: %d -> %d", epoch, s.Epoch())
		}
	})

	t.Run("best-effort", func(t *testing.T) {
		s, items := mk()
		rep, err := s.BulkInsert("objs", items, BulkBestEffort)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Inserted != 9 {
			t.Errorf("inserted %d, want 9", rep.Inserted)
		}
		if rep.Results[6].Err == nil {
			t.Error("index rejection not attributed")
		}
		l := s.Layer("objs")
		if l.Len() != 10 { // pre + 9 valid
			t.Errorf("layer has %d objects, want 10", l.Len())
		}
		if _, ok := l.GetByName("outside"); ok {
			t.Error("rejected object reachable by name")
		}
	})
}

// TestBulkInsertCreatesLayer: bulk insert into a missing layer creates
// it, and the creation bumps the epoch even when the batch is empty.
func TestBulkInsertCreatesLayer(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), RTree)
	epoch := s.Epoch()
	if _, err := s.BulkInsert("fresh", nil, BulkAtomic); err != nil {
		t.Fatal(err)
	}
	if !s.HasLayer("fresh") {
		t.Fatal("layer not created")
	}
	if s.Epoch() == epoch {
		t.Error("layer creation did not bump the epoch")
	}
}

// TestSnapshotRoundTripBulkLoaded: a store filled through BulkInsert
// snapshots and reloads like any other, across index backends.
func TestSnapshotRoundTripBulkLoaded(t *testing.T) {
	src := NewStore(rect(0, 0, 100, 100), RTree)
	if _, err := src.BulkInsert("a", bulkItems(80, 21), BulkAtomic); err != nil {
		t.Fatal(err)
	}
	if _, err := src.BulkInsert("b", bulkItems(40, 22), BulkBestEffort); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		got, err := Load(bytes.NewReader(buf.Bytes()), kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, layer := range []string{"a", "b"} {
			if got.Layer(layer).Len() != src.Layer(layer).Len() {
				t.Fatalf("%v: layer %q has %d objects, want %d",
					kind, layer, got.Layer(layer).Len(), src.Layer(layer).Len())
			}
			q := rect(10, 10, 60, 60)
			want := searchNames(src.Layer(layer), q)
			have := searchNames(got.Layer(layer), q)
			if len(want) != len(have) {
				t.Fatalf("%v: layer %q query returns %d names, want %d", kind, layer, len(have), len(want))
			}
		}
	}
}
