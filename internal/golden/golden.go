// Package golden pins the engine's observable semantics with a
// golden-result regression corpus: ~30 queries over three deterministic
// fixtures (the §2 smuggler map, a VLSI layout, and a hand-built
// edge-case store), executed across every index backend, every executor
// and both planners, and compared against checked-in expected solution
// sets in testdata/golden/.
//
// The corpus is the safety net under the adaptive planner: whatever
// retrieval order or per-step backend the planner picks, the solution
// set — and the order of variables within each tuple — must not move.
// Results are canonicalized to "Var=object" lines sorted
// lexicographically, so comparisons are insensitive to the order
// solutions are found in but sensitive to tuple contents.
//
// Regenerate with `make golden-update` (or
// `go test ./internal/golden -run TestCorpus -update`); the update path
// derives expected sets from the naive cross-product executor, the
// semantics oracle every optimization is measured against.
package golden

import (
	"sort"
	"strings"

	"repro/internal/bbox"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// Fixture is a deterministic store-building recipe plus the parameter
// pool its cases draw from. Populate must be a pure function of the
// fixture definition so every backend (and a WAL-recovered copy) holds
// identical data.
type Fixture struct {
	Name     string
	Universe bbox.Box
	Layers   []string
	Populate func(store *spatialdb.Store)
	Params   map[string]*region.Region
}

// Case is one corpus query. The golden file lives at
// testdata/golden/<Fixture>/<Name>.txt.
type Case struct {
	Name    string
	Fixture string
	Query   string
}

// Fixtures returns the corpus fixtures, freshly generated.
func Fixtures() []*Fixture {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	vl := workload.GenVLSI(workload.VLSIConfig{Seed: 7, Metal1: 18, Metal2: 18, Vias: 24})

	smuggler := &Fixture{
		Name:     "smuggler",
		Universe: m.Config.Universe,
		Layers:   []string{"towns", "roads", "states"},
		Populate: m.Populate,
		Params: map[string]*region.Region{
			"C": m.Country,
			"A": m.Area,
			"W": region.FromBox(bbox.Rect(0, 0, 500, 500)),
			"E": region.Empty(2),
		},
	}

	vlsi := &Fixture{
		Name:     "vlsi",
		Universe: vl.Config.Universe,
		Layers:   []string{"metal1", "metal2", "vias"},
		Populate: vl.Populate,
		Params: map[string]*region.Region{
			"W": region.FromBox(bbox.Rect(200, 200, 700, 700)),
			"U": region.FromBox(vl.Config.Universe),
		},
	}

	edgeUniverse := bbox.Rect(0, 0, 100, 100)
	edge := &Fixture{
		Name:     "edge",
		Universe: edgeUniverse,
		Layers:   []string{"pins", "boxes", "empty"},
		Populate: func(store *spatialdb.Store) {
			// Tiny "pins", including two with identical geometry.
			store.MustInsert("pins", "p0", region.FromBox(bbox.Rect(9, 9, 11, 11)))
			store.MustInsert("pins", "p0-twin", region.FromBox(bbox.Rect(9, 9, 11, 11)))
			store.MustInsert("pins", "p1", region.FromBox(bbox.Rect(49, 49, 51, 51)))
			// Boxes: the whole universe, two boxes sharing only an edge
			// (measure-zero intersection — empty as a region), a nested
			// pair, and a two-box L-shaped region.
			store.MustInsert("boxes", "all", region.FromBox(edgeUniverse))
			store.MustInsert("boxes", "west", region.FromBox(bbox.Rect(0, 0, 10, 10)))
			store.MustInsert("boxes", "east", region.FromBox(bbox.Rect(10, 0, 20, 10)))
			store.MustInsert("boxes", "outer", region.FromBox(bbox.Rect(30, 30, 60, 60)))
			store.MustInsert("boxes", "inner", region.FromBox(bbox.Rect(40, 40, 50, 50)))
			store.MustInsert("boxes", "ell", region.FromBoxes(2,
				bbox.Rect(70, 0, 90, 10), bbox.Rect(70, 0, 80, 30)))
			// A layer that exists but holds nothing.
			store.Layer("empty")
		},
		Params: map[string]*region.Region{
			"W": region.FromBox(bbox.Rect(0, 0, 30, 30)),
			"U": region.FromBox(edgeUniverse),
		},
	}

	return []*Fixture{smuggler, vlsi, edge}
}

// smugglerConstraints is the §2 constraint system shared by the two
// smuggler-query cases (original and permuted retrieval order).
const smugglerConstraints = "A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T !<= C"

// Cases returns the corpus. Names are unique within a fixture.
func Cases() []Case {
	return []Case{
		// ---- smuggler: the paper's §2 scenario ----
		{"e1-smuggler", "smuggler",
			"find T in towns, R in roads, B in states given C, A where " + smugglerConstraints},
		{"e1-reordered", "smuggler",
			"find B in states, R in roads, T in towns given C, A where " + smugglerConstraints},
		{"towns-inside", "smuggler", "find T in towns given C where T <= C"},
		{"border-towns", "smuggler", "find T in towns given C where T & C != 0; T !<= C"},
		{"border-roads", "smuggler", "find R in roads given C where R & C != 0; R !<= C"},
		{"town-road", "smuggler", "find T in towns, R in roads where T & R != 0"},
		{"roads-into-area", "smuggler", "find R in roads given A where R & A != 0"},
		{"states-touching-area", "smuggler", "find B in states given A where B & A != 0"},
		{"chain-triple", "smuggler",
			"find T in towns, R in roads, B in states where T & R != 0; R & B != 0"},
		{"road-within-state", "smuggler", "find R in roads, B in states where R <= B"},
		{"towns-clear-of-area", "smuggler", "find T in towns given A where disjoint(T, A)"},
		{"towns-in-window", "smuggler", "find T in towns given W where T <= W"},
		{"nothing-in-empty", "smuggler", "find T in towns given E where T <= E"},
		{"roads-in-country-touching-area", "smuggler",
			"find R in roads given C, A where R <= C; R & A != 0"},
		{"town-state-overlap", "smuggler", "find T in towns, B in states where overlaps(T, B)"},

		// ---- vlsi: design-rule-checking shapes (§1 motivation) ----
		{"via-on-m1", "vlsi", "find V in vias, M in metal1 where V & M != 0"},
		{"via-at-crossing", "vlsi",
			"find V in vias, M in metal1, N in metal2 where V & M != 0; V & N != 0; M & N != 0"},
		{"via-inside-wire", "vlsi", "find V in vias, M in metal1 where V <= M"},
		{"crossings", "vlsi", "find M in metal1, N in metal2 where M & N != 0"},
		{"m1-in-window", "vlsi", "find M in metal1 given W where M & W != 0"},
		{"window-vias-on-m2", "vlsi",
			"find V in vias, M in metal2 given W where V <= W; V & M != 0"},
		{"m1-clear-of-window", "vlsi", "find M in metal1 given W where disjoint(M, W)"},
		{"vias-straddling-window", "vlsi",
			"find V in vias given W where V & W != 0; V !<= W"},

		// ---- edge: degenerate and boundary semantics ----
		{"pin-in-box", "edge", "find P in pins, B in boxes where P <= B"},
		{"overlapping-pairs", "edge",
			"find X in boxes, Y in boxes where X & Y != 0; X != Y"},
		{"empty-layer", "edge", "find E in empty where E != 0"},
		{"empty-layer-join", "edge", "find E in empty, B in boxes where E & B != 0"},
		{"nested-boxes", "edge", "find X in boxes, Y in boxes where X <= Y; X != Y"},
		{"duplicate-geometry", "edge", "find X in pins, Y in pins where X = Y"},
		{"all-in-universe", "edge", "find B in boxes given U where B <= U"},
		{"pins-outside-window", "edge", "find P in pins given W where P <= ~W"},
	}
}

// FixtureCases returns the cases of one fixture, in corpus order.
func FixtureCases(fixture string) []Case {
	var out []Case
	for _, c := range Cases() {
		if c.Fixture == fixture {
			out = append(out, c)
		}
	}
	return out
}

// BuildStore materializes a fixture on the given primary backend.
func BuildStore(f *Fixture, kind spatialdb.IndexKind) *spatialdb.Store {
	store := spatialdb.NewStore(f.Universe, kind)
	f.Populate(store)
	return store
}

// Canon renders one solution canonically: Var=object pairs in the
// query's retrieval order. Executors emit tuples in exactly that order
// regardless of the plan's internal step order (Plan.outPos), so a
// mismatch here catches output-permutation bugs too.
func Canon(q *query.Query, s query.Solution) string {
	parts := make([]string, len(s.Objects))
	for i, o := range s.Objects {
		parts[i] = q.Retrieve[i].Var + "=" + o.Name
	}
	return strings.Join(parts, " ")
}

// CanonSet renders a solution list as sorted canonical lines — the
// order-insensitive form golden files store and comparisons use.
func CanonSet(q *query.Query, sols []query.Solution) []string {
	out := make([]string, len(sols))
	for i, s := range sols {
		out[i] = Canon(q, s)
	}
	sort.Strings(out)
	return out
}
