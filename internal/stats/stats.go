// Package stats maintains per-layer data statistics for the adaptive
// planner: an object count, per-axis histograms of box edge coordinates,
// and a coarse grid-occupancy summary. The statistics are cheap to update
// incrementally (O(1) per mutation), are serialized into both snapshot
// codecs, and support estimating the number of stored boxes matching a
// bbox.RangeSpec — the planner's per-step selectivity oracle.
//
// The estimate decomposes the spec per axis using only the marginal
// distributions of box lower and upper edges:
//
//	overlap witness c:  P(x ⊓ c ≠ ∅) = 1 − P(Lo > c.Hi) − P(Hi < c.Lo)
//	                    (exact from the marginals: the two failure events
//	                    are disjoint on one axis)
//	x ⊑ Upper:          P(Lo ≥ U.Lo) · P(Hi ≤ U.Hi)   (independence approx)
//	Lower ⊑ x:          P(Lo ≤ L.Lo) · P(Hi ≥ L.Hi)   (independence approx)
//
// and multiplies the per-axis selectivities together and by the count.
// DESIGN.md §7 ("Adaptive planning") describes how the planner uses this.
package stats

import (
	"math"

	"repro/internal/bbox"
)

// DefaultBuckets is the per-histogram bucket count. 32 buckets × 2 edges
// × k axes keeps a layer's statistics a few KB while resolving the
// workload-scale skew the planner cares about.
const DefaultBuckets = 32

// clampSpan bounds the histogram domain when the store universe is
// unbounded on an axis: coordinates outside ±clampSpan land in the edge
// buckets.
const clampSpan = 1e6

// Histogram is an equi-width histogram over the fixed span [Lo, Hi].
// Values outside the span are clamped into the edge buckets, so the CDF
// is exact at and beyond the span boundaries. A degenerate span
// (Lo == Hi) behaves as a single point mass.
type Histogram struct {
	Lo, Hi float64
	N      uint64
	Counts []uint64
}

func newHistogram(lo, hi float64, buckets int) Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, buckets)}
}

func (h *Histogram) bucket(v float64) int {
	if math.IsNaN(v) || v <= h.Lo || h.Hi <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Counts) - 1
	}
	b := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.N++
	h.Counts[h.bucket(v)]++
}

// Remove un-records one value previously passed to Add. It is a no-op on
// an empty histogram, and tolerates a drained bucket (which can only
// happen on unpaired removes) rather than underflowing.
func (h *Histogram) Remove(v float64) {
	if h.N == 0 {
		return
	}
	b := h.bucket(v)
	if h.Counts[b] == 0 {
		return
	}
	h.N--
	h.Counts[b]--
}

// CDF returns P(V ≤ x) under linear interpolation within buckets. Exact
// at the span edges: x below the span → 0, x at or above it → 1.
func (h *Histogram) CDF(x float64) float64 {
	if h.N == 0 || math.IsNaN(x) {
		return 0
	}
	if x < h.Lo {
		return 0
	}
	if x >= h.Hi {
		return 1
	}
	pos := (x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts))
	b := int(pos)
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	var below uint64
	for i := 0; i < b; i++ {
		below += h.Counts[i]
	}
	frac := pos - float64(b)
	return (float64(below) + frac*float64(h.Counts[b])) / float64(h.N)
}

// CCDF returns P(V ≥ x), the closed-interval complement of CDF: x at or
// below the span → 1, x above it → 0. CDF and CCDF both count the point
// mass at x, so they are not complements at interior points; each caller
// picks the side whose boundary semantics match its constraint.
func (h *Histogram) CCDF(x float64) float64 {
	if h.N == 0 || math.IsNaN(x) {
		return 0
	}
	if x <= h.Lo {
		return 1
	}
	if x > h.Hi {
		return 0
	}
	pos := (x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts))
	b := int(pos)
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	var above uint64
	for i := b + 1; i < len(h.Counts); i++ {
		above += h.Counts[i]
	}
	frac := pos - float64(b)
	return (float64(above) + (1-frac)*float64(h.Counts[b])) / float64(h.N)
}

// Axis carries the marginal distributions of box edges along one axis.
type Axis struct {
	Lo, Hi       Histogram // distributions of box lower/upper edges
	SumLo, SumHi float64   // running sums for the mean box
}

// Grid is a coarse occupancy grid over the first one or two axes: each
// cell counts the stored boxes overlapping it. It summarizes clustering
// for the planner's backend choice and the /stats endpoint.
type Grid struct {
	Axes      int // 0 (disabled), 1 or 2
	Side      int
	Lo, Width []float64 // per grid axis; Width > 0
	Counts    []uint32  // Side^Axes cells, row-major
}

// GridSide is the per-axis cell count of the occupancy grid.
const GridSide = 16

func newGrid(universe bbox.Box) Grid {
	axes := universe.K
	if axes > 2 {
		axes = 2
	}
	if axes == 0 || universe.IsEmpty() {
		return Grid{}
	}
	g := Grid{Axes: axes, Side: GridSide}
	g.Lo = make([]float64, axes)
	g.Width = make([]float64, axes)
	cells := 1
	for a := 0; a < axes; a++ {
		lo, hi := clampCoord(universe.Lo[a]), clampCoord(universe.Hi[a])
		if hi <= lo {
			hi = lo + 1
		}
		g.Lo[a] = lo
		g.Width[a] = (hi - lo) / float64(g.Side)
		cells *= g.Side
	}
	g.Counts = make([]uint32, cells)
	return g
}

// cellRange returns the clamped cell interval covered by [lo, hi] on
// grid axis a.
func (g *Grid) cellRange(a int, lo, hi float64) (int, int) {
	c0 := int(math.Floor((lo - g.Lo[a]) / g.Width[a]))
	c1 := int(math.Floor((hi - g.Lo[a]) / g.Width[a]))
	if c0 < 0 {
		c0 = 0
	}
	if c1 >= g.Side {
		c1 = g.Side - 1
	}
	if c1 < c0 {
		c0, c1 = c1, c0
		if c0 < 0 {
			c0 = 0
		}
		if c1 >= g.Side {
			c1 = g.Side - 1
		}
	}
	return c0, c1
}

func (g *Grid) apply(b bbox.Box, delta int) {
	if g.Axes == 0 || b.IsEmpty() {
		return
	}
	x0, x1 := g.cellRange(0, b.Lo[0], b.Hi[0])
	if g.Axes == 1 {
		for x := x0; x <= x1; x++ {
			g.bump(x, delta)
		}
		return
	}
	y0, y1 := g.cellRange(1, b.Lo[1], b.Hi[1])
	for y := y0; y <= y1; y++ {
		row := y * g.Side
		for x := x0; x <= x1; x++ {
			g.bump(row+x, delta)
		}
	}
}

func (g *Grid) bump(cell, delta int) {
	if delta > 0 {
		g.Counts[cell]++
	} else if g.Counts[cell] > 0 {
		g.Counts[cell]--
	}
}

// Occupied returns the number of non-empty grid cells.
func (g *Grid) Occupied() int {
	n := 0
	for _, c := range g.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// MaxLoad returns the largest per-cell count.
func (g *Grid) MaxLoad() uint32 {
	var m uint32
	for _, c := range g.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Layer is the full statistics block for one spatial layer.
type Layer struct {
	k     int
	count uint64
	axes  []Axis
	grid  Grid
}

func clampCoord(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Min(math.Max(v, -clampSpan), clampSpan)
}

// NewLayer returns empty statistics for a layer with the given universe
// box (which fixes the dimensionality and the histogram spans; unbounded
// axes are clamped to ±1e6).
func NewLayer(universe bbox.Box) *Layer {
	k := universe.K
	s := &Layer{k: k, axes: make([]Axis, k), grid: newGrid(universe)}
	for a := 0; a < k; a++ {
		lo, hi := -clampSpan, clampSpan
		if !universe.IsEmpty() {
			lo, hi = clampCoord(universe.Lo[a]), clampCoord(universe.Hi[a])
		}
		s.axes[a].Lo = newHistogram(lo, hi, DefaultBuckets)
		s.axes[a].Hi = newHistogram(lo, hi, DefaultBuckets)
	}
	return s
}

// K returns the dimensionality.
func (s *Layer) K() int { return s.k }

// Count returns the number of boxes recorded.
func (s *Layer) Count() uint64 { return s.count }

// Grid returns the occupancy grid (read-only view).
func (s *Layer) Grid() *Grid { return &s.grid }

// Add records one stored box. Empty boxes are counted but contribute no
// edge mass (a layer object always has a nonempty bounding box in
// practice).
//
//boolq:statsink
func (s *Layer) Add(b bbox.Box) {
	s.count++
	if b.IsEmpty() || b.K != s.k {
		return
	}
	for a := 0; a < s.k; a++ {
		s.axes[a].Lo.Add(b.Lo[a])
		s.axes[a].Hi.Add(b.Hi[a])
		s.axes[a].SumLo += clampCoord(b.Lo[a])
		s.axes[a].SumHi += clampCoord(b.Hi[a])
	}
	s.grid.apply(b, +1)
}

// Remove un-records a box previously passed to Add.
//
//boolq:statsink
func (s *Layer) Remove(b bbox.Box) {
	if s.count == 0 {
		return
	}
	s.count--
	if b.IsEmpty() || b.K != s.k {
		return
	}
	for a := 0; a < s.k; a++ {
		s.axes[a].Lo.Remove(b.Lo[a])
		s.axes[a].Hi.Remove(b.Hi[a])
		s.axes[a].SumLo -= clampCoord(b.Lo[a])
		s.axes[a].SumHi -= clampCoord(b.Hi[a])
	}
	s.grid.apply(b, -1)
}

// MeanBox returns the average stored box (mean lower and upper corners),
// the planner's stand-in for "a typical object of this layer". Empty
// when no boxes are recorded.
func (s *Layer) MeanBox() bbox.Box {
	if s.count == 0 || s.k == 0 {
		return bbox.Empty(s.k)
	}
	lo := make([]float64, s.k)
	hi := make([]float64, s.k)
	n := float64(s.count)
	for a := 0; a < s.k; a++ {
		lo[a] = s.axes[a].SumLo / n
		hi[a] = s.axes[a].SumHi / n
		if lo[a] > hi[a] { // float drift on heavy add/remove churn
			mid := (lo[a] + hi[a]) / 2
			lo[a], hi[a] = mid, mid
		}
	}
	return bbox.Box{K: s.k, Lo: lo, Hi: hi}
}

// Selectivity returns EstimateSpec(spec) / Count(), in [0, 1] (0 for an
// empty layer).
func (s *Layer) Selectivity(spec bbox.RangeSpec) float64 {
	if s.count == 0 {
		return 0
	}
	return s.EstimateSpec(spec) / float64(s.count)
}

// EstimateSpec estimates how many recorded boxes match the spec. The
// result is always finite and within [0, Count()].
func (s *Layer) EstimateSpec(spec bbox.RangeSpec) float64 {
	if s.count == 0 {
		return 0
	}
	total := float64(s.count)
	if spec.K != s.k {
		return total // dimension mismatch: no information, assume all
	}
	if spec.Upper.IsEmpty() {
		return 0 // only the empty box fits inside ∅
	}
	sel := 1.0
	for a := 0; a < s.k; a++ {
		ax := &s.axes[a]
		// x ⊑ Upper (skip unbounded sides: they never reject).
		if !spec.Upper.IsUniv() {
			p := ax.Lo.CCDF(spec.Upper.Lo[a]) * ax.Hi.CDF(spec.Upper.Hi[a])
			sel *= clamp01(p)
		}
		// Lower ⊑ x.
		if !spec.Lower.IsEmpty() {
			p := ax.Lo.CDF(spec.Lower.Lo[a]) * ax.Hi.CCDF(spec.Lower.Hi[a])
			sel *= clamp01(p)
		}
		// Overlap witnesses: exact per axis from the marginals, since
		// "Lo > c.Hi" and "Hi < c.Lo" are disjoint failure events.
		for _, c := range spec.Overlaps {
			if c.IsEmpty() {
				return 0
			}
			p := ax.Lo.CDF(c.Hi[a]) + ax.Hi.CCDF(c.Lo[a]) - 1
			sel *= clamp01(p)
		}
		if sel == 0 {
			return 0
		}
	}
	est := sel * total
	if math.IsNaN(est) || est < 0 {
		return 0
	}
	if est > total {
		return total
	}
	return est
}

func clamp01(p float64) float64 {
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Equal reports whether two statistics blocks are identical (same
// geometry and same recorded mass). Used by tests to pin that recovery
// paths rebuild statistics exactly.
func (s *Layer) Equal(t *Layer) bool {
	if s == nil || t == nil {
		return s == t
	}
	if s.k != t.k || s.count != t.count || len(s.axes) != len(t.axes) {
		return false
	}
	for a := range s.axes {
		if !histEqual(&s.axes[a].Lo, &t.axes[a].Lo) || !histEqual(&s.axes[a].Hi, &t.axes[a].Hi) {
			return false
		}
		if s.axes[a].SumLo != t.axes[a].SumLo || s.axes[a].SumHi != t.axes[a].SumHi {
			return false
		}
	}
	return gridEqual(&s.grid, &t.grid)
}

func histEqual(a, b *Histogram) bool {
	if a.Lo != b.Lo || a.Hi != b.Hi || a.N != b.N || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

func gridEqual(a, b *Grid) bool {
	if a.Axes != b.Axes || a.Side != b.Side || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Width[i] != b.Width[i] {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}
