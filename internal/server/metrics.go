package server

import (
	"expvar"
	"sync"
)

// Metrics holds boolqd's service-level counters as expvar vars. The vars
// are created unpublished so tests can run many servers in one process;
// the first server constructed additionally publishes its map in the
// process-wide expvar registry under "boolqd", and every server serves
// its own map at GET /debug/vars.
type Metrics struct {
	QueriesTotal   expvar.Int
	QueryErrors    expvar.Int
	QueriesNaive   expvar.Int
	PlanCompiles   expvar.Int
	QueryTimeouts  expvar.Int // runs stopped by their execution deadline
	QueryCancelled expvar.Int // runs stopped by client disconnect/cancel
	QueryTruncated expvar.Int // runs capped by their solution limit
	// Adaptive-planner counters: compiles that went through
	// query.CompileAdaptive, how many changed the retrieval order, how
	// many were ranked by tuner feedback rather than the histogram
	// estimate alone, per-step backend overrides issued, and completed
	// runs recorded into the tuner.
	PlanAdaptive      expvar.Int
	PlanReordered     expvar.Int
	PlanFeedback      expvar.Int
	PlanOverrides     expvar.Int
	TunerObservations expvar.Int
	Inserts           expvar.Int
	Deletes           expvar.Int
	SnapshotSaves     expvar.Int
	SnapshotLoads     expvar.Int
	BulkBatches       expvar.Int // POST /layers/{layer}/objects:bulk requests
	BulkObjects       expvar.Int // objects inserted by bulk requests
	BatchRequests     expvar.Int // POST /query/batch requests
	BatchQueries      expvar.Int // individual queries run by batch requests
	Shed              expvar.Int // requests rejected by admission control (429)
}

var publishOnce sync.Once

// expvarMap assembles the published view: the raw counters plus live
// gauges (cache hits/misses/entries and the store epoch) computed from
// the server at read time.
func (s *Server) expvarMap() *expvar.Map {
	m := new(expvar.Map).Init()
	mt := s.metrics
	m.Set("queries_total", &mt.QueriesTotal)
	m.Set("query_errors", &mt.QueryErrors)
	m.Set("queries_naive", &mt.QueriesNaive)
	m.Set("plan_compiles", &mt.PlanCompiles)
	m.Set("query_timeouts", &mt.QueryTimeouts)
	m.Set("query_cancelled", &mt.QueryCancelled)
	m.Set("query_truncated", &mt.QueryTruncated)
	m.Set("inserts", &mt.Inserts)
	m.Set("deletes", &mt.Deletes)
	m.Set("snapshot_saves", &mt.SnapshotSaves)
	m.Set("snapshot_loads", &mt.SnapshotLoads)
	m.Set("bulk_batches", &mt.BulkBatches)
	m.Set("bulk_objects", &mt.BulkObjects)
	m.Set("batch_requests", &mt.BatchRequests)
	m.Set("batch_queries", &mt.BatchQueries)
	m.Set("shed_total", &mt.Shed)
	m.Set("plan_adaptive_compiles", &mt.PlanAdaptive)
	m.Set("plan_reordered", &mt.PlanReordered)
	m.Set("plan_feedback_used", &mt.PlanFeedback)
	m.Set("plan_backend_overrides", &mt.PlanOverrides)
	m.Set("tuner_observations", &mt.TunerObservations)
	m.Set("tuner_keys", expvar.Func(func() any { return s.tuner.Len() }))
	m.Set("plan_cache_hits", expvar.Func(func() any { return s.cache.Hits() }))
	m.Set("plan_cache_misses", expvar.Func(func() any { return s.cache.Misses() }))
	m.Set("plan_cache_entries", expvar.Func(func() any { return s.cache.Len() }))
	m.Set("store_epoch", expvar.Func(func() any { return s.Store().Epoch() }))
	if db := s.durable; db != nil {
		m.Set("wal_applied_lsn", expvar.Func(func() any { return db.Stats().AppliedLSN }))
		m.Set("wal_checkpoint_lsn", expvar.Func(func() any { return db.Stats().CheckpointLSN }))
		m.Set("wal_checkpoints", expvar.Func(func() any { return db.Stats().Checkpoints }))
		m.Set("wal_checkpoint_failures", expvar.Func(func() any { return db.Stats().CheckpointErr }))
		m.Set("wal_append_errors", expvar.Func(func() any { return db.Stats().SinkErrors }))
		m.Set("wal_appends", expvar.Func(func() any { return db.Stats().Log.Appends }))
		m.Set("wal_fsyncs", expvar.Func(func() any { return db.Stats().Log.Fsyncs }))
		m.Set("wal_segments", expvar.Func(func() any { return db.Stats().Log.Segments }))
		m.Set("wal_retries", expvar.Func(func() any { return db.Stats().WALRetries }))
		m.Set("wal_rearms", expvar.Func(func() any { return db.Stats().Log.Rearms }))
		m.Set("degraded", expvar.Func(func() any {
			if db.Degraded() {
				return 1
			}
			return 0
		}))
	}
	if rep := s.replica; rep != nil {
		m.Set("repl_applied_lsn", expvar.Func(func() any { return rep.AppliedLSN() }))
		m.Set("repl_durable_lsn", expvar.Func(func() any { return rep.DurableLSN() }))
		m.Set("repl_lag", expvar.Func(func() any { return rep.Lag() }))
		m.Set("repl_records_applied", expvar.Func(func() any { return rep.Stats().Records }))
		m.Set("repl_snapshots_fetched", expvar.Func(func() any { return rep.Stats().Snapshots }))
		m.Set("repl_stream_errors", expvar.Func(func() any { return rep.Stats().StreamErrors }))
		m.Set("repl_promoted", expvar.Func(func() any {
			if rep.Promoted() {
				return 1
			}
			return 0
		}))
	}
	return m
}
