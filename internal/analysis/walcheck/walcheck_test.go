package walcheck

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestWalcheck(t *testing.T) {
	atest.Run(t, Analyzer, "d")
}
