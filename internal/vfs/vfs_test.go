package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	f, err := OS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	r, err := OS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := r.Read(buf)
	r.Close()
	if string(buf[:n]) != "hello" {
		t.Fatalf("read %q", buf[:n])
	}
	if err := OS.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	fi, err := OS.Stat(path)
	if err != nil || fi.Size() != 2 {
		t.Fatalf("stat after truncate: %v %v", fi, err)
	}
	entries, err := OS.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("readdir: %v %v", entries, err)
	}
	if err := OS.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultNthWrite checks After/Count arithmetic: exactly the chosen
// writes fail, deterministically.
func TestFaultNthWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Fault{Op: OpWrite, After: 2, Count: 1}) // fail the 3rd write only
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		_, err := f.Write([]byte("x"))
		if i == 2 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: want injected error, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := in.FaultStats()
	if st.Injected != 1 || st.ByOp["write"] != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFaultTornWrite checks Partial: the leading bytes land, the rest
// do not.
func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Fault{Op: OpWrite, Partial: 3, Count: 1, Err: syscall.EIO})
	path := filepath.Join(dir, "torn")
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	f.Close()
	if n != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want (3, EIO), got (%d, %v)", n, err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "abc" {
		t.Fatalf("on disk: %q", b)
	}
}

// TestWriteBudget checks the ENOSPC model: bytes fit until the budget
// runs out, then every write fails having stored only what fit.
func TestWriteBudget(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.SetWriteBudget(5)
	path := filepath.Join(dir, "full")
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("defg")) // only 2 budget bytes left
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want (2, ENOSPC), got (%d, %v)", n, err)
	}
	if _, err := f.Write([]byte("h")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	in.Clear() // disk freed
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "abcdeok" {
		t.Fatalf("on disk: %q", b)
	}
}

// TestFaultSyncTransientVsPermanent: a Count-bounded sync fault clears
// itself, a Count ≤ 0 one fires forever.
func TestFaultSyncTransientVsPermanent(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Fault{Op: OpSync, Count: 2})
	f, err := in.OpenFile(filepath.Join(dir, "s"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 should recover: %v", err)
	}
	in.Add(Fault{Op: OpSync}) // permanent
	for i := 0; i < 4; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("permanent sync %d: %v", i, err)
		}
	}
}

// TestFaultPathMatchAndRename: path substrings scope faults to specific
// file families (segments vs snapshots).
func TestFaultPathMatchAndRename(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Fault{Op: OpRename, Path: "snap-"})
	wf, err := in.OpenFile(filepath.Join(dir, "wal-1.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	wf.Close()
	if err := in.Rename(filepath.Join(dir, "wal-1.log"), filepath.Join(dir, "wal-2.log")); err != nil {
		t.Fatalf("unscoped rename should pass: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "wal-2.log"), filepath.Join(dir, "snap-1.bqs")); !errors.Is(err, ErrInjected) {
		t.Fatalf("snap rename should fail: %v", err)
	}
}

// TestFaultReadCorruption: a CorruptBit fault flips one bit and the
// read still "succeeds" — the caller's checksum must catch it.
func TestFaultReadCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c")
	if err := os.WriteFile(path, []byte{0x10, 0x20}, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil)
	in.Add(Fault{Op: OpRead, CorruptBit: true, Count: 1})
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	n, err := f.Read(buf)
	if err != nil || n != 2 {
		t.Fatalf("read: %d %v", n, err)
	}
	if buf[0] != 0x11 || buf[1] != 0x20 {
		t.Fatalf("want bit flip in first byte, got %x", buf)
	}
}
