// Package rtree implements Guttman's R-tree [SIGMOD 1984], the dynamic
// spatial index the paper cites as a canonical provider of range queries
// over bounding boxes (§1, reference [6]).
//
// The tree stores (box, id) entries and answers the range-query primitives
// the compiled plans need: overlap search, containment search, and the
// combined RangeSpec search with subtree pruning. Insertion uses Guttman's
// least-enlargement descent; node splitting offers the quadratic (default)
// and linear algorithms from the original paper. Deletion condenses the
// tree and reinserts orphaned entries.
//
// DESIGN.md §2 ("Storage") places this package in the module map.
package rtree

import (
	"fmt"

	"repro/internal/bbox"
)

// SplitStrategy selects a node-splitting algorithm.
type SplitStrategy int

// Split strategies from Guttman's paper.
const (
	QuadraticSplit SplitStrategy = iota
	LinearSplit
)

// Entry is a stored (bounding box, identifier) pair.
type Entry struct {
	Box bbox.Box
	ID  int64
}

type node struct {
	leaf     bool
	box      bbox.Box // MBR of contents
	entries  []Entry  // leaf payload
	children []*node  // internal children
}

func (n *node) recomputeBox(k int) {
	n.box = bbox.Empty(k)
	if n.leaf {
		for _, e := range n.entries {
			n.box = n.box.Join(e.Box)
		}
		return
	}
	for _, c := range n.children {
		n.box = n.box.Join(c.box)
	}
}

// Tree is an R-tree over k-dimensional boxes. The zero value is unusable;
// call New.
type Tree struct {
	k        int
	min, max int
	split    SplitStrategy
	root     *node
	size     int
}

// Option configures a Tree.
type Option func(*Tree)

// WithBranching sets the minimum and maximum node fanout (Guttman's m and
// M); defaults are 2 and 8.
func WithBranching(min, max int) Option {
	return func(t *Tree) { t.min, t.max = min, max }
}

// WithSplit selects the split algorithm.
func WithSplit(s SplitStrategy) Option {
	return func(t *Tree) { t.split = s }
}

// New returns an empty R-tree over k-dimensional boxes.
func New(k int, opts ...Option) *Tree {
	t := &Tree{k: k, min: 2, max: 8, split: QuadraticSplit}
	for _, o := range opts {
		o(t)
	}
	if t.min < 1 || t.max < 2*t.min {
		panic(fmt.Sprintf("rtree: invalid branching m=%d M=%d (need M ≥ 2m)", t.min, t.max))
	}
	t.root = &node{leaf: true, box: bbox.Empty(k)}
	return t
}

// K returns the dimensionality.
func (t *Tree) K() int { return t.k }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// Insert adds an entry. Empty boxes are rejected: they match no range
// query and would poison MBRs.
func (t *Tree) Insert(box bbox.Box, id int64) error {
	if box.IsEmpty() {
		return fmt.Errorf("rtree: cannot index an empty box")
	}
	if box.K != t.k {
		return fmt.Errorf("rtree: box dimension %d, tree dimension %d", box.K, t.k)
	}
	path := t.chooseLeafPath(box)
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries, Entry{Box: box, ID: id})
	for _, n := range path {
		n.box = n.box.Join(box)
	}
	t.size++
	t.propagateSplits(path)
	return nil
}

// chooseLeafPath descends by least enlargement (ties by smaller volume)
// and returns the root-to-leaf path.
func (t *Tree) chooseLeafPath(box bbox.Box) []*node {
	path := []*node{t.root}
	n := t.root
	for !n.leaf {
		var best *node
		bestEnl, bestVol := 0.0, 0.0
		for _, c := range n.children {
			enl := c.box.Enlarge(box)
			vol := c.box.Volume()
			if best == nil || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
				best, bestEnl, bestVol = c, enl, vol
			}
		}
		n = best
		path = append(path, n)
	}
	return path
}

// propagateSplits splits overflowing nodes from the leaf upward along the
// recorded path, growing the root if needed.
func (t *Tree) propagateSplits(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		over := (n.leaf && len(n.entries) > t.max) ||
			(!n.leaf && len(n.children) > t.max)
		if !over {
			return
		}
		a, b := t.splitNode(n)
		if i == 0 {
			t.root = &node{box: a.box.Join(b.box), children: []*node{a, b}}
			return
		}
		parent := path[i-1]
		for j, c := range parent.children {
			if c == n {
				parent.children[j] = a
				break
			}
		}
		parent.children = append(parent.children, b)
		parent.recomputeBox(t.k)
	}
}

// Delete removes one entry with the given box and id, returning whether it
// was found. Underfull nodes are condensed: their surviving entries are
// reinserted, per Guttman's CondenseTree.
func (t *Tree) Delete(box bbox.Box, id int64) bool {
	var orphans []Entry
	removed := t.deleteRec(t.root, box, id, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Shrink a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	for _, e := range orphans {
		t.size-- // Insert will re-add
		if err := t.Insert(e.Box, e.ID); err != nil {
			panic(err) // orphans came from the tree; cannot be invalid
		}
	}
	return true
}

func (t *Tree) deleteRec(n *node, box bbox.Box, id int64, orphans *[]Entry) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.ID == id && e.Box.Equal(box) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recomputeBox(t.k)
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.box.Contains(box) {
			continue
		}
		if t.deleteRec(c, box, id, orphans) {
			underfull := (c.leaf && len(c.entries) < t.min) ||
				(!c.leaf && len(c.children) < t.min)
			if underfull {
				collectEntries(c, orphans)
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recomputeBox(t.k)
			return true
		}
	}
	return false
}

func collectEntries(n *node, out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// SearchOverlap visits every entry whose box overlaps q. The visitor
// returns false to stop early. It reports the number of tree nodes
// touched (the index-cost metric used by the experiments).
func (t *Tree) SearchOverlap(q bbox.Box, visit func(Entry) bool) int {
	touched := 0
	var rec func(n *node) bool
	rec = func(n *node) bool {
		touched++
		if !n.box.Overlaps(q) {
			return true
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.Box.Overlaps(q) {
					if !visit(e) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
	return touched
}

// SearchContained visits every entry whose box is contained in q.
func (t *Tree) SearchContained(q bbox.Box, visit func(Entry) bool) int {
	touched := 0
	var rec func(n *node) bool
	rec = func(n *node) bool {
		touched++
		if !n.box.Overlaps(q) {
			return true
		}
		if n.leaf {
			for _, e := range n.entries {
				if q.Contains(e.Box) {
					if !visit(e) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
	return touched
}

// SearchSpec visits every entry whose box satisfies the combined range
// spec (containment + overlap constraints), pruning subtrees by three
// sound MBR tests:
//
//   - an entry must contain spec.Lower, so its subtree MBR must too;
//   - an entry must lie inside spec.Upper, so its subtree MBR must
//     overlap spec.Upper;
//   - an entry must overlap each witness c, so its subtree MBR must too.
func (t *Tree) SearchSpec(spec bbox.RangeSpec, visit func(Entry) bool) int {
	touched := 0
	if spec.Unsatisfiable() {
		return 0
	}
	var rec func(n *node) bool
	rec = func(n *node) bool {
		touched++
		if !n.box.Contains(spec.Lower) {
			return true
		}
		if !spec.Upper.IsEmpty() && !n.box.Overlaps(spec.Upper) {
			return true
		}
		for _, c := range spec.Overlaps {
			if !n.box.Overlaps(c) {
				return true
			}
		}
		if n.leaf {
			for _, e := range n.entries {
				if spec.Matches(e.Box) {
					if !visit(e) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
	return touched
}

// All visits every entry.
func (t *Tree) All(visit func(Entry) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n.leaf {
			for _, e := range n.entries {
				if !visit(e) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
}

// checkInvariants verifies structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	var rec func(n *node, depth int) (int, error)
	rec = func(n *node, depth int) (int, error) {
		if n.leaf {
			for _, e := range n.entries {
				if !n.box.Contains(e.Box) {
					return 0, fmt.Errorf("leaf MBR %v misses entry %v", n.box, e.Box)
				}
			}
			return depth, nil
		}
		if len(n.children) == 0 {
			return 0, fmt.Errorf("internal node with no children")
		}
		first := -1
		for _, c := range n.children {
			if !n.box.Contains(c.box) {
				return 0, fmt.Errorf("node MBR %v misses child %v", n.box, c.box)
			}
			d, err := rec(c, depth+1)
			if err != nil {
				return 0, err
			}
			if first < 0 {
				first = d
			} else if d != first {
				return 0, fmt.Errorf("leaves at different depths: %d vs %d", first, d)
			}
		}
		return first, nil
	}
	_, err := rec(t.root, 0)
	return err
}

// splitNode divides an overflowing node into two per the configured
// strategy.
func (t *Tree) splitNode(n *node) (*node, *node) {
	if n.leaf {
		ga, gb := t.splitGroups(len(n.entries),
			func(i int) bbox.Box { return n.entries[i].Box })
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range ga {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range gb {
			b.entries = append(b.entries, n.entries[i])
		}
		a.recomputeBox(t.k)
		b.recomputeBox(t.k)
		return a, b
	}
	ga, gb := t.splitGroups(len(n.children),
		func(i int) bbox.Box { return n.children[i].box })
	a := &node{}
	b := &node{}
	for _, i := range ga {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range gb {
		b.children = append(b.children, n.children[i])
	}
	a.recomputeBox(t.k)
	b.recomputeBox(t.k)
	return a, b
}

// splitGroups partitions indices 0..n-1 into two groups using the chosen
// strategy, respecting the minimum fill.
func (t *Tree) splitGroups(n int, boxOf func(int) bbox.Box) ([]int, []int) {
	var seedA, seedB int
	if t.split == QuadraticSplit {
		seedA, seedB = quadraticSeeds(n, boxOf)
	} else {
		seedA, seedB = linearSeeds(n, boxOf)
	}
	ga, gb := []int{seedA}, []int{seedB}
	boxA, boxB := boxOf(seedA), boxOf(seedB)
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		assigned := len(ga) + len(gb)
		remaining := n - assigned - 1 // not counting i
		switch {
		case len(ga)+remaining+1 <= t.min:
			// Everything left must go to group A to reach minimum fill.
			ga = append(ga, i)
			boxA = boxA.Join(boxOf(i))
			continue
		case len(gb)+remaining+1 <= t.min:
			gb = append(gb, i)
			boxB = boxB.Join(boxOf(i))
			continue
		}
		dA := boxA.Enlarge(boxOf(i))
		dB := boxB.Enlarge(boxOf(i))
		if dA < dB || (dA == dB && boxA.Volume() <= boxB.Volume()) {
			ga = append(ga, i)
			boxA = boxA.Join(boxOf(i))
		} else {
			gb = append(gb, i)
			boxB = boxB.Join(boxOf(i))
		}
	}
	return ga, gb
}

// quadraticSeeds picks the pair wasting the most volume together
// (Guttman's quadratic PickSeeds).
func quadraticSeeds(n int, boxOf func(int) bbox.Box) (int, int) {
	sa, sb, worst := 0, 1, 0.0
	first := true
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			bi, bj := boxOf(i), boxOf(j)
			waste := bi.Join(bj).Volume() - bi.Volume() - bj.Volume()
			if first || waste > worst {
				sa, sb, worst = i, j, waste
				first = false
			}
		}
	}
	return sa, sb
}

// linearSeeds picks the pair with greatest normalized separation along any
// dimension (Guttman's linear PickSeeds).
func linearSeeds(n int, boxOf func(int) bbox.Box) (int, int) {
	k := boxOf(0).K
	bestSep := 0.0
	bestLo, bestHi := -1, -1
	for d := 0; d < k; d++ {
		hiLo, loHi := 0, 0
		minLo, maxHi := boxOf(0).Lo[d], boxOf(0).Hi[d]
		for i := 1; i < n; i++ {
			b := boxOf(i)
			if b.Lo[d] > boxOf(hiLo).Lo[d] {
				hiLo = i
			}
			if b.Hi[d] < boxOf(loHi).Hi[d] {
				loHi = i
			}
			if b.Lo[d] < minLo {
				minLo = b.Lo[d]
			}
			if b.Hi[d] > maxHi {
				maxHi = b.Hi[d]
			}
		}
		width := maxHi - minLo
		if width <= 0 {
			width = 1
		}
		sep := (boxOf(hiLo).Lo[d] - boxOf(loHi).Hi[d]) / width
		if hiLo != loHi && (bestLo < 0 || sep > bestSep) {
			bestSep = sep
			bestLo, bestHi = hiLo, loHi
		}
	}
	if bestLo < 0 || bestLo == bestHi {
		return 0, 1
	}
	return bestLo, bestHi
}
