package formula

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Term is a conjunction of literals over variables 0..63, encoded as two
// bitmasks: Pos holds the positive literals, Neg the complemented ones. The
// empty term (Pos = Neg = 0) denotes the constant 1. Terms are the currency
// of sum-of-products forms, the consensus method (internal/bcf) and the
// bounding-box approximations (internal/bbox).
type Term struct {
	Pos, Neg uint64
}

// TrueTerm is the empty conjunction, denoting 1.
var TrueTerm = Term{}

// ErrTooManyTerms is returned when a DNF expansion exceeds MaxDNFTerms.
var ErrTooManyTerms = errors.New("formula: DNF expansion too large")

// MaxDNFTerms bounds intermediate sum-of-products sizes. The paper notes
// the normal-form computations are exponential in the number of variables
// but run at compile time on small systems; this bound turns pathological
// inputs into errors instead of memory exhaustion.
const MaxDNFTerms = 1 << 17

// IsTrue reports whether t is the empty (constant-1) term.
func (t Term) IsTrue() bool { return t.Pos == 0 && t.Neg == 0 }

// Contradictory reports whether t contains x ∧ ¬x.
func (t Term) Contradictory() bool { return t.Pos&t.Neg != 0 }

// NumLiterals returns the number of literals in t.
func (t Term) NumLiterals() int { return popcount(t.Pos) + popcount(t.Neg) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// WithPos returns t extended with the positive literal v.
func (t Term) WithPos(v int) Term {
	t.Pos |= uint64(1) << uint(v)
	return t
}

// WithNeg returns t extended with the negative literal ¬v.
func (t Term) WithNeg(v int) Term {
	t.Neg |= uint64(1) << uint(v)
	return t
}

// Conj returns the conjunction t ∧ u and whether it is non-contradictory.
func (t Term) Conj(u Term) (Term, bool) {
	r := Term{Pos: t.Pos | u.Pos, Neg: t.Neg | u.Neg}
	return r, !r.Contradictory()
}

// Subsumes reports whether t's literals are a subset of u's, i.e. t ≥ u as
// Boolean functions (t absorbs u in a sum: t ∨ u = t). The paper calls the
// induced order on sums "syllogistic".
func (t Term) Subsumes(u Term) bool {
	return t.Pos&^u.Pos == 0 && t.Neg&^u.Neg == 0
}

// Uses reports whether variable v occurs (in either polarity) in t.
func (t Term) Uses(v int) bool {
	bit := uint64(1) << uint(v)
	return (t.Pos|t.Neg)&bit != 0
}

// Consensus returns the consensus of t and u, if it exists: when exactly
// one variable x occurs positively in one term and negatively in the other,
// the consensus is (t ∪ u) \ {x, ¬x}. Together with absorption this rewrite
// computes the Blake canonical form (§4, Algorithm 2 prerequisites).
func (t Term) Consensus(u Term) (Term, bool) {
	opp := (t.Pos & u.Neg) | (t.Neg & u.Pos)
	if opp == 0 || opp&(opp-1) != 0 {
		return Term{}, false // zero or more than one opposition
	}
	r := Term{
		Pos: (t.Pos | u.Pos) &^ opp,
		Neg: (t.Neg | u.Neg) &^ opp,
	}
	if r.Contradictory() {
		return Term{}, false
	}
	return r, true
}

// EvalBits evaluates the term on a two-valued assignment (bit v = value of
// variable v).
func (t Term) EvalBits(assign uint64) bool {
	return t.Pos&^assign == 0 && t.Neg&assign == 0
}

// Formula converts the term back to formula syntax.
func (t Term) Formula() *Formula {
	if t.Contradictory() {
		return Zero()
	}
	acc := One()
	for v := 0; v < 64; v++ {
		bit := uint64(1) << uint(v)
		if t.Pos&bit != 0 {
			acc = And(acc, Var(v))
		}
		if t.Neg&bit != 0 {
			acc = And(acc, Not(Var(v)))
		}
	}
	return acc
}

// Vars returns the sorted variable indices appearing in t.
func (t Term) Vars() []int {
	var out []int
	all := t.Pos | t.Neg
	for v := 0; v < 64; v++ {
		if all&(uint64(1)<<uint(v)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// String renders the term, e.g. "x0 & ~x2"; the empty term renders as "1".
func (t Term) String() string {
	return t.StringNamed(func(v int) string { return fmt.Sprintf("x%d", v) })
}

// StringNamed renders the term using name(v) for variables.
func (t Term) StringNamed(name func(int) string) string {
	if t.IsTrue() {
		return "1"
	}
	if t.Contradictory() {
		return "0"
	}
	var parts []string
	for _, v := range t.Vars() {
		bit := uint64(1) << uint(v)
		if t.Pos&bit != 0 {
			parts = append(parts, name(v))
		}
		if t.Neg&bit != 0 {
			parts = append(parts, "~"+name(v))
		}
	}
	return strings.Join(parts, " & ")
}

// SOP is a sum of products: a disjunction of terms. The empty SOP denotes 0.
type SOP []Term

// FormulaOf converts the SOP back to formula syntax.
func (s SOP) FormulaOf() *Formula {
	acc := Zero()
	for _, t := range s {
		acc = Or(acc, t.Formula())
	}
	return acc
}

// EvalBits evaluates the SOP on a two-valued assignment.
func (s SOP) EvalBits(assign uint64) bool {
	for _, t := range s {
		if t.EvalBits(assign) {
			return true
		}
	}
	return false
}

// Absorb removes every term subsumed by another term of the sum
// (p ∨ p∧q = p) and returns the reduced sum in deterministic order.
func (s SOP) Absorb() SOP {
	out := make(SOP, 0, len(s))
	for i, t := range s {
		if t.Contradictory() {
			continue
		}
		absorbed := false
		for j, u := range s {
			if i == j || u.Contradictory() {
				continue
			}
			if u.Subsumes(t) && (!t.Subsumes(u) || j < i) {
				// u strictly more general, or equal with smaller index:
				// t is redundant.
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, t)
		}
	}
	sortTerms(out)
	return out
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Pos != ts[j].Pos {
			return ts[i].Pos < ts[j].Pos
		}
		return ts[i].Neg < ts[j].Neg
	})
}

// DNF converts f to an absorbed sum-of-products form (not necessarily
// canonical; see bcf.BCF for the Blake canonical form). It returns
// ErrTooManyTerms if an intermediate sum exceeds MaxDNFTerms.
func DNF(f *Formula) (SOP, error) {
	s, err := dnf(f, false)
	if err != nil {
		return nil, err
	}
	return s.Absorb(), nil
}

// dnf computes the SOP of f (negated if neg is set), pushing complements
// inward De Morgan-style.
func dnf(f *Formula, neg bool) (SOP, error) {
	switch f.kind {
	case KindConst:
		if f.val != neg {
			return SOP{TrueTerm}, nil
		}
		return SOP{}, nil
	case KindVar:
		if neg {
			return SOP{Term{}.WithNeg(f.v)}, nil
		}
		return SOP{Term{}.WithPos(f.v)}, nil
	case KindNot:
		return dnf(f.l, !neg)
	case KindAnd, KindOr:
		isAnd := (f.kind == KindAnd) != neg // De Morgan under negation
		l, err := dnf(f.l, neg)
		if err != nil {
			return nil, err
		}
		r, err := dnf(f.r, neg)
		if err != nil {
			return nil, err
		}
		if isAnd {
			return distribute(l, r)
		}
		u := append(append(SOP{}, l...), r...)
		if len(u) > MaxDNFTerms {
			return nil, ErrTooManyTerms
		}
		return u.Absorb(), nil
	}
	return nil, fmt.Errorf("formula: unknown node kind %d", f.kind)
}

// distribute computes the product of two sums.
func distribute(l, r SOP) (SOP, error) {
	out := make(SOP, 0, len(l))
	for _, t := range l {
		for _, u := range r {
			if c, ok := t.Conj(u); ok {
				out = append(out, c)
				if len(out) > MaxDNFTerms {
					return nil, ErrTooManyTerms
				}
			}
		}
	}
	return out.Absorb(), nil
}
