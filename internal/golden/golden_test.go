package golden

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bbox"
	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

var update = flag.Bool("update", false,
	"rewrite testdata/golden from the naive reference executor")

var kinds = []spatialdb.IndexKind{
	spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
	spatialdb.Grid, spatialdb.ZOrderIdx,
}

// variant is one store the corpus runs against: a fixture on a primary
// backend, plus one extra RTree store with alternate indexes enabled so
// the adaptive planner's per-step backend overrides are exercised.
type variant struct {
	name  string
	store *spatialdb.Store
}

func buildVariants(f *Fixture) []variant {
	vs := make([]variant, 0, len(kinds)+1)
	for _, k := range kinds {
		vs = append(vs, variant{k.String(), BuildStore(f, k)})
	}
	alt := BuildStore(f, spatialdb.RTree)
	alt.EnableAltIndexes(spatialdb.Grid, spatialdb.ZOrderIdx)
	vs = append(vs, variant{"rtree+alts", alt})
	return vs
}

func goldenPath(c Case) string {
	return filepath.Join("testdata", "golden", c.Fixture, c.Name+".txt")
}

// readGolden loads a golden file: '#' lines are commentary, the rest are
// canonical solution lines (already sorted by the writer).
func readGolden(t *testing.T, c Case) []string {
	t.Helper()
	data, err := os.ReadFile(goldenPath(c))
	if err != nil {
		t.Fatalf("golden file missing (run `make golden-update`): %v", err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}

func writeGolden(t *testing.T, c Case, set []string) {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "# fixture: %s\n# query: %s\n# solutions: %d\n",
		c.Fixture, c.Query, len(set))
	for _, l := range set {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	path := goldenPath(c)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// diff summarizes a set mismatch for the failure message.
func diff(got, want []string) string {
	gotSet := map[string]bool{}
	for _, l := range got {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range want {
		wantSet[l] = true
	}
	var missing, extra []string
	for _, l := range want {
		if !gotSet[l] {
			missing = append(missing, l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			extra = append(extra, l)
		}
	}
	return fmt.Sprintf("got %d solutions, want %d; missing %v; extra %v",
		len(got), len(want), missing, extra)
}

func equalSets(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// executions runs the query on the store under every planner/executor
// combination and returns the canonical solution set of each, labeled.
func executions(t *testing.T, q *query.Query, store *spatialdb.Store, params map[string]*region.Region) map[string][]string {
	t.Helper()
	ctx := context.Background()
	static, err := query.Compile(q, store)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	adaptive, err := query.CompileAdaptive(q, store, query.AdaptiveOptions{Params: params})
	if err != nil {
		t.Fatalf("CompileAdaptive: %v", err)
	}

	out := map[string][]string{}
	run := func(label string, f func() (*query.Result, error)) {
		res, err := f()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		out[label] = CanonSet(q, res.Solutions)
	}
	run("static/serial", func() (*query.Result, error) {
		return static.RunCtx(ctx, store, params, query.DefaultOptions)
	})
	run("static/noindex", func() (*query.Result, error) {
		return static.RunCtx(ctx, store, params, query.Options{UseExact: true})
	})
	run("static/parallel", func() (*query.Result, error) {
		return static.RunParallelCtx(ctx, store, params, query.DefaultOptions, 4)
	})
	run("adaptive/serial", func() (*query.Result, error) {
		return adaptive.RunCtx(ctx, store, params, query.DefaultOptions)
	})
	run("adaptive/parallel", func() (*query.Result, error) {
		return adaptive.RunParallelCtx(ctx, store, params, query.DefaultOptions, 4)
	})
	// Streaming executor, solutions collected by the yield callback.
	var streamed []query.Solution
	if _, err := static.RunStream(ctx, store, params, query.DefaultOptions,
		func(s query.Solution) bool {
			streamed = append(streamed, s)
			return true
		}); err != nil {
		t.Fatalf("static/stream: %v", err)
	}
	out["static/stream"] = CanonSet(q, streamed)
	return out
}

// TestCorpus is the golden-result regression suite: every case's
// solution set, under every backend × executor × planner combination,
// must match the checked-in expectation (which `-update` regenerates
// from the naive cross-product oracle).
func TestCorpus(t *testing.T) {
	fixtures := map[string]*Fixture{}
	variants := map[string][]variant{}
	for _, f := range Fixtures() {
		fixtures[f.Name] = f
		variants[f.Name] = buildVariants(f)
	}

	for _, c := range Cases() {
		c := c
		t.Run(c.Fixture+"/"+c.Name, func(t *testing.T) {
			f := fixtures[c.Fixture]
			q, err := lang.Parse(c.Query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// The oracle: naive cross-product evaluation, which no
			// planner or index can influence. It runs on the scan store,
			// but any variant would do — naive ignores the index.
			naive, err := query.RunNaiveCtx(context.Background(), q,
				variants[c.Fixture][0].store, f.Params, query.Options{})
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			oracle := CanonSet(q, naive.Solutions)
			if *update {
				writeGolden(t, c, oracle)
			}
			want := readGolden(t, c)
			if !equalSets(oracle, want) {
				t.Fatalf("naive oracle drifted from golden file: %s", diff(oracle, want))
			}
			for _, v := range variants[c.Fixture] {
				for label, got := range executions(t, q, v.store, f.Params) {
					if !equalSets(got, want) {
						t.Errorf("%s/%s: %s", v.name, label, diff(got, want))
					}
				}
			}
		})
	}
}

// TestCorpusAfterWALRecovery ingests each fixture through the durable
// write path, checkpoints, appends a WAL tail, simulates a crash (no
// clean Close), recovers, and requires the recovered store to (a) carry
// layer statistics identical to the live store's and (b) reproduce the
// fixture's golden results under both planners.
func TestCorpusAfterWALRecovery(t *testing.T) {
	for _, f := range Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			dir := t.TempDir()
			opts := wal.DBOptions{
				Kind:               spatialdb.RTree,
				Universe:           f.Universe,
				CheckpointInterval: -1,
				CheckpointBytes:    -1,
			}
			db, err := wal.OpenDB(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			f.Populate(db.Store())
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Two mutations past the checkpoint — recovery must replay
			// them from the WAL, statistics included. Net data effect is
			// zero, so the golden files still apply.
			u := f.Universe
			marker := region.FromBox(bbox.Rect(u.Lo[0], u.Lo[1], u.Lo[0]+1, u.Lo[1]+1))
			db.Store().MustInsert(f.Layers[0], "wal-tail-marker", marker)
			if ok, err := db.Store().Remove(f.Layers[0], "wal-tail-marker"); !ok || err != nil {
				t.Fatalf("remove marker: ok=%v err=%v", ok, err)
			}

			// Crash: reopen the directory without closing db. The default
			// fsync policy is SyncAlways, so every acknowledged mutation
			// is already durable.
			rec, err := wal.OpenDB(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if rec.Replayed() < 2 {
				t.Errorf("replayed %d WAL records, want ≥ 2 (the post-checkpoint tail)", rec.Replayed())
			}
			for _, name := range f.Layers {
				live := db.Store().Layer(name).DataStats()
				got := rec.Store().Layer(name).DataStats()
				if !got.Equal(live) {
					t.Errorf("layer %q: recovered statistics differ from the live store's", name)
				}
			}

			for _, c := range FixtureCases(f.Name) {
				q, err := lang.Parse(c.Query)
				if err != nil {
					t.Fatalf("%s: parse: %v", c.Name, err)
				}
				want := readGolden(t, c)
				for label, got := range executions(t, q, rec.Store(), f.Params) {
					if !equalSets(got, want) {
						t.Errorf("%s/%s: %s", c.Name, label, diff(got, want))
					}
				}
			}
		})
	}
}
