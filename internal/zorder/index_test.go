package zorder

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bbox"
)

func TestIndexInsertValidation(t *testing.T) {
	ix := NewIndex(bbox.Rect(0, 0, 100, 100), 0)
	if err := ix.Insert(bbox.Empty(2), 1); err == nil {
		t.Errorf("empty box accepted")
	}
	if err := ix.Insert(bbox.Rect(90, 90, 110, 110), 1); err == nil {
		t.Errorf("out-of-universe box accepted")
	}
	if err := ix.Insert(bbox.Rect(1, 1, 2, 2), 1); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestIndexSearchMatchesScan(t *testing.T) {
	u := bbox.Rect(0, 0, 1000, 1000)
	ix := NewIndex(u, 16)
	rng := rand.New(rand.NewSource(4))
	var boxes []bbox.Box
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		b := bbox.Rect(x, y, x+rng.Float64()*40+1, y+rng.Float64()*40+1)
		b = b.Meet(u)
		boxes = append(boxes, b)
		if err := ix.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 25; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		q := bbox.Rect(x, y, x+rng.Float64()*80+1, y+rng.Float64()*80+1).Meet(u)
		var got []int64
		ix.SearchOverlap(q, func(id int64) bool {
			got = append(got, id)
			return true
		})
		var want []int64
		for i, b := range boxes {
			if b.Overlaps(q) {
				want = append(want, int64(i))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: id mismatch at %d", q, i)
			}
		}
	}
}

func TestIndexSearchEarlyStopAndOrder(t *testing.T) {
	ix := NewIndex(bbox.Rect(0, 0, 100, 100), 8)
	for i := 0; i < 20; i++ {
		_ = ix.Insert(bbox.Rect(float64(i), 0, float64(i)+1, 1), int64(i))
	}
	var got []int64
	ix.SearchOverlap(bbox.Rect(0, 0, 100, 1), func(id int64) bool {
		got = append(got, id)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("early stop / order wrong: %v", got)
	}
}

func TestIndexAll(t *testing.T) {
	ix := NewIndex(bbox.Rect(0, 0, 100, 100), 8)
	for i := 0; i < 10; i++ {
		_ = ix.Insert(bbox.Rect(float64(i), 0, float64(i)+1, 1), int64(i))
	}
	n := 0
	ix.All(func(id int64) bool {
		if id != int64(n) {
			t.Fatalf("All out of order: %d at position %d", id, n)
		}
		n++
		return true
	})
	if n != 10 {
		t.Errorf("All visited %d of 10", n)
	}
}

// Ancestor/descendant matching: a tiny stored box must be found by a huge
// query and vice versa.
func TestIndexPrefixRelations(t *testing.T) {
	u := bbox.Rect(0, 0, 1024, 1024)
	ix := NewIndex(u, 16)
	_ = ix.Insert(bbox.Rect(511, 511, 513, 513), 1) // straddles the center
	_ = ix.Insert(bbox.Rect(0.1, 0.1, 0.2, 0.2), 2) // one tiny leaf cell
	found := map[int64]bool{}
	ix.SearchOverlap(bbox.Rect(0, 0, 1024, 1024), func(id int64) bool {
		found[id] = true
		return true
	})
	if !found[1] || !found[2] {
		t.Errorf("universe query missed stored boxes: %v", found)
	}
	found = map[int64]bool{}
	ix.SearchOverlap(bbox.Rect(0.05, 0.05, 0.3, 0.3), func(id int64) bool {
		found[id] = true
		return true
	})
	if !found[2] || found[1] {
		t.Errorf("tiny query wrong: %v", found)
	}
}
