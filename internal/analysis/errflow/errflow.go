// Package errflow enforces the HTTP handlers' response discipline
// (PR 3's streaming-deadline contract):
//
//  1. After an error response is written — http.Error, a
//     //boolq:errwriter function (writeError), or a local closure
//     wrapping one — the handler must stop: the only thing allowed to
//     follow on that path is a return or branch. Anything else risks
//     appending a success body to an error status (an invalid response
//     the client may cache).
//  2. Errors from response writes must not be silently dropped: a bare
//     `enc.Encode(v)` / `w.Write(b)` expression statement discards the
//     error that tells the handler its consumer is gone — the exact
//     signal the streaming write deadline exists to produce. An
//     explicit `_ = enc.Encode(v)` is accepted as a documented
//     decision.
//
// The check applies to the packages in -errflow.pkgs (default: the
// HTTP server).
package errflow

import (
	"flag"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var flags = flag.NewFlagSet("errflow", flag.ContinueOnError)

// pkgs gates the check.
var pkgs = flags.String("pkgs", "repro/internal/server", "comma-separated import paths checked")

// Analyzer is the errflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "errflow",
	Doc:   "check HTTP handlers stop after error responses and never drop response-write errors",
	Flags: flags,
	Run:   run,
}

// errProneWrites are method names whose returned error must be looked at.
var errProneWrites = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Encode":      true,
	"Flush":       true,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, p := range strings.Split(*pkgs, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Path() {
			inScope = true
		}
	}

	dirs := analysis.CollectDirectives(pass.Fset, pass.Files)

	// Annotated error writers export facts even when the package is
	// otherwise out of scope, so a future second server package sees
	// them.
	writers := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := dirs.Func(fn, "errwriter"); !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				writers[obj] = true
				pass.ExportFact(analysis.FuncSymbol(obj))
			}
		}
	}
	if !inScope {
		return nil
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, writers: writers, closures: map[types.Object]bool{}}
			c.collectClosures(fn.Body)
			c.stmts(fn.Body.List, true)
			c.dropped(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	writers map[types.Object]bool
	// closures holds local variables bound to a func literal that calls
	// an error writer (the `fail := func(...)` idiom): calling one IS
	// writing an error response.
	closures map[types.Object]bool
}

func (c *checker) collectClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, r := range as.Rhs {
			lit, ok := r.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			callsWriter := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && c.isErrWriterCall(call) {
					callsWriter = true
					return false
				}
				return true
			})
			if !callsWriter {
				continue
			}
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.closures[obj] = true
			}
		}
		return true
	})
}

// isErrWriterCall reports whether call writes an error response.
func (c *checker) isErrWriterCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[fun]
		if obj == nil {
			return false
		}
		if c.writers[obj] || c.closures[obj] {
			return true
		}
		if fn, ok := obj.(*types.Func); ok && c.pass.HasFact(analysis.FuncSymbol(fn)) {
			return true
		}
	case *ast.SelectorExpr:
		obj := c.pass.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		if fn.FullName() == "net/http.Error" {
			return true
		}
		if c.writers[obj] || c.pass.HasFact(analysis.FuncSymbol(fn)) {
			return true
		}
	}
	return false
}

// stmts enforces rule 1 over a statement list. cont reports whether
// falling off the end of this list reaches only function exit (no
// further statements execute).
func (c *checker) stmts(list []ast.Stmt, cont bool) {
	for i, s := range list {
		restExit := exitOnly(list[i+1:], cont)
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && c.isErrWriterCall(call) && !restExit {
				c.pass.Reportf(call.Pos(), "statements follow this error response on the same path; return immediately after writing an error status")
			}
		}
		c.sub(s, restExit)
	}
}

// sub recurses into s's nested statement lists.
func (c *checker) sub(s ast.Stmt, restExit bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List, restExit)
	case *ast.IfStmt:
		c.stmts(s.Body.List, restExit)
		if s.Else != nil {
			c.sub(s.Else, restExit)
		}
	case *ast.ForStmt:
		c.stmts(s.Body.List, false) // the loop comes back around
	case *ast.RangeStmt:
		c.stmts(s.Body.List, false)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, restExit)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, restExit)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				c.stmts(cc.Body, restExit)
			}
		}
	case *ast.LabeledStmt:
		c.sub(s.Stmt, restExit)
	}
	// Function literals anywhere inside s: their bodies end at closure
	// exit, so their own trailing error write is fine.
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, true)
			return false
		}
		return true
	})
}

// exitOnly reports whether executing rest reaches only function/branch
// exit without running another statement.
func exitOnly(rest []ast.Stmt, cont bool) bool {
	if len(rest) == 0 {
		return cont
	}
	switch rest[0].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// dropped enforces rule 2: bare expression-statement calls that discard
// an error from a response write.
func (c *checker) dropped(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !errProneWrites[sel.Sel.Name] {
			return true
		}
		fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return true
		}
		c.pass.Reportf(call.Pos(), "%s error discarded; check it (a failed response write is the stalled-consumer signal) or discard explicitly with _ =", sel.Sel.Name)
		return true
	})
}

func returnsError(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}
