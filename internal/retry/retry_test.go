package retry

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestDelayEnvelope pins the deterministic schedule: attempt 0 is Base,
// each attempt doubles (default Factor), and Cap is a hard clamp. The
// wal.DB loops (append retry, probe, checkpoint) rely on exactly this
// envelope, so a change here is a change to their retry behaviour.
func TestDelayEnvelope(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond}
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		16 * time.Millisecond, 32 * time.Millisecond, 64 * time.Millisecond,
		128 * time.Millisecond, 250 * time.Millisecond, 250 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayFactor(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 3}
	want := []time.Duration{
		10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond,
		270 * time.Millisecond, 810 * time.Millisecond, time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayZeroBase(t *testing.T) {
	p := Policy{}
	for i := 0; i < 4; i++ {
		if got := p.Delay(i); got != 0 {
			t.Errorf("Delay(%d) = %v, want 0 for zero Base", i, got)
		}
	}
}

// TestDelayUncappedSaturates guards the overflow path: with no Cap a
// huge attempt count must saturate, not wrap negative.
func TestDelayUncappedSaturates(t *testing.T) {
	p := Policy{Base: time.Second}
	if got := p.Delay(500); got <= 0 {
		t.Fatalf("Delay(500) = %v, want positive saturated value", got)
	}
}

// TestJitteredEnvelope pins the jitter bounds: every jittered delay lies
// in [d·(1−Jitter), d], so Cap remains a hard upper bound no matter the
// randomness. The replica fetch loop depends on the upper bound to keep
// reconnect latency predictable.
func TestJitteredEnvelope(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 500 * time.Millisecond, Jitter: 0.5}
	rnd := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 10; attempt++ {
		d := p.Delay(attempt)
		lo := time.Duration(float64(d) * 0.5)
		sawBelow := false
		for i := 0; i < 200; i++ {
			j := p.Jittered(attempt, rnd)
			if j < lo || j > d {
				t.Fatalf("Jittered(%d) = %v outside [%v, %v]", attempt, j, lo, d)
			}
			if j < d {
				sawBelow = true
			}
		}
		if !sawBelow {
			t.Errorf("Jittered(%d) never varied below Delay=%v", attempt, d)
		}
	}
}

func TestJitteredZeroJitterIsDeterministic(t *testing.T) {
	p := Policy{Base: 7 * time.Millisecond, Cap: time.Second}
	rnd := rand.New(rand.NewSource(2))
	for attempt := 0; attempt < 5; attempt++ {
		if got, want := p.Jittered(attempt, rnd), p.Delay(attempt); got != want {
			t.Errorf("Jittered(%d) = %v, want %v with zero Jitter", attempt, got, want)
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	// A cancelled context beats even a zero delay.
	if err := Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep(ctx, 0) on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSleepReturnsAfterDelay(t *testing.T) {
	start := time.Now()
	if err := Sleep(context.Background(), 5*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 5ms", elapsed)
	}
}
