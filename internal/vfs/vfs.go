// Package vfs abstracts the filesystem operations the durable write path
// (internal/wal) performs, so every durability code path — segment
// appends, fsyncs, rotations, snapshot temp+rename checkpoints, recovery
// reads — can be exercised under injected faults (fault.go) exactly as it
// runs against the real filesystem in production.
//
// The interface is deliberately small: it covers what a write-ahead log
// and a snapshot checkpointer need, nothing more. OS is the default
// implementation; Injector wraps any FS with programmable failpoints.
package vfs

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the subset of *os.File the WAL and checkpointer use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// FS is a filesystem. Implementations must be safe for concurrent use by
// multiple goroutines (the WAL appends while the checkpointer snapshots).
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics: the last "*" in pattern is replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)
	// MkdirAll creates a directory path (os.MkdirAll semantics).
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes a file by path.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames, creations and removals
	// in it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir fsyncs the directory. EINVAL and ENOTSUP are tolerated: some
// filesystems reject fsync on directories, and on those the rename
// itself is the best available barrier.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
