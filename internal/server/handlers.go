package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// maxBodyBytes bounds request bodies (regions, queries, snapshots).
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return err
	}
	return nil
}

// ---- layer CRUD ----

// layerInfos snapshots every layer's name, kind and size under the
// store's read guard.
func layerInfos(store *spatialdb.Store) []layerInfo {
	names := store.LayerNames()
	infos := make([]layerInfo, 0, len(names))
	store.RLock()
	for _, name := range names {
		if l, ok := store.LayerIfExists(name); ok {
			infos = append(infos, layerInfo{Name: name, Kind: l.Kind().String(), Objects: l.Len()})
		}
	}
	store.RUnlock()
	return infos
}

// layerSizes is layerInfos reduced to name → object count.
func layerSizes(store *spatialdb.Store) map[string]int {
	infos := layerInfos(store)
	out := make(map[string]int, len(infos))
	for _, li := range infos {
		out[li.Name] = li.Objects
	}
	return out
}

func (s *Server) handleListLayers(w http.ResponseWriter, _ *http.Request) {
	store := s.Store()
	writeJSON(w, http.StatusOK, map[string]any{
		"layers": layerInfos(store),
		"epoch":  store.Epoch(),
	})
}

func (s *Server) handleCreateLayer(w http.ResponseWriter, r *http.Request) {
	store := s.Store()
	name := r.PathValue("layer")
	l, created := store.CreateLayer(name)
	store.RLock()
	info := layerInfo{Name: name, Kind: l.Kind().String(), Objects: l.Len()}
	store.RUnlock()
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, info)
}

func (s *Server) handlePutObject(w http.ResponseWriter, r *http.Request) {
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	var jr jsonRegion
	if decodeBody(w, r, &jr) != nil {
		return
	}
	reg, err := jr.toRegion(store.K())
	if err != nil {
		writeError(w, http.StatusBadRequest, "region: %v", err)
		return
	}
	if reg.IsEmpty() {
		// Upsert would reject this too, but with a less pointed message.
		writeError(w, http.StatusBadRequest, "region: empty (no boxes with positive volume)")
		return
	}
	if !store.Universe().Contains(reg.BoundingBox()) {
		// Enforced uniformly here: some index backends would reject this
		// themselves while others would accept it and then give the object
		// universe-relative complement semantics — backend-dependent query
		// answers either way.
		writeError(w, http.StatusBadRequest, "region: bounding box %v outside the store universe %v",
			reg.BoundingBox(), store.Universe())
		return
	}
	o, replaced, err := store.Upsert(layer, name, reg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "upserting %s/%s: %v", layer, name, err)
		return
	}
	s.metrics.Inserts.Add(1)
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, toObjectResponse(layer, o, store.Epoch(), false))
}

func (s *Server) handleGetObject(w http.ResponseWriter, r *http.Request) {
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	store.RLock()
	l, ok := store.LayerIfExists(layer)
	var o spatialdb.Object
	if ok {
		o, ok = l.GetByName(name)
	}
	var resp objectResponse
	if ok {
		resp = toObjectResponse(layer, o, store.Epoch(), true)
	}
	store.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no object %q in layer %q", name, layer)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request) {
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	ok, err := store.Remove(layer, name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "deleting %s/%s: %v", layer, name, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no object %q in layer %q", name, layer)
		return
	}
	s.metrics.Deletes.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"deleted": true,
		"epoch":   store.Epoch(),
	})
}

// ---- query execution ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.QueriesTotal.Add(1)
	var req queryRequest
	if decodeBody(w, r, &req) != nil {
		s.metrics.QueryErrors.Add(1)
		return
	}
	resp, status, err := s.runQuery(&req)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runQuery executes one request against the current store.
func (s *Server) runQuery(req *queryRequest) (*queryResponse, int, error) {
	store, gen := s.storeAndGen()
	return s.execQuery(store, gen, store.Epoch(), req)
}

// execQuery executes one request against a pinned (store, generation,
// epoch) snapshot. The batch handler captures the snapshot once so every
// query of a batch compiles and caches plans against the same plan
// generation; the single-query handler passes the current one.
func (s *Server) execQuery(store *spatialdb.Store, gen, epoch uint64, req *queryRequest) (*queryResponse, int, error) {
	normalized, err := lang.Normalize(req.Query)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	params := make(map[string]*region.Region, len(req.Params))
	for name, jr := range req.Params {
		reg, err := jr.toRegion(store.K())
		if err != nil {
			return nil, http.StatusBadRequest, errors.New("parameter " + name + ": " + err.Error())
		}
		params[name] = reg
	}
	start := time.Now()

	if req.Naive {
		s.metrics.QueriesNaive.Add(1)
		q, err := lang.Parse(normalized)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		res, err := query.RunNaive(q, store, params)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return buildQueryResponse(res, nil, req, false, store.Epoch(), start), http.StatusOK, nil
	}

	// The plan cache: hit ⇒ skip Parse/Compile entirely. The epoch was
	// read before the lookup; a mutation racing with this request at worst
	// recompiles on the next request, never serves wrong plans (compiled
	// plans are immutable and execution takes the store's read guard).
	plan, hit := s.cache.Get(normalized, gen, epoch)
	if !hit {
		q, err := lang.Parse(normalized)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if plan, err = query.Compile(q, store); err != nil {
			return nil, http.StatusBadRequest, err
		}
		s.metrics.PlanCompiles.Add(1)
		s.cache.Put(normalized, gen, epoch, plan)
	}

	opts := query.Options{UseIndex: !req.NoIndex, UseExact: !req.NoExact}
	workers := req.Workers
	if workers <= 0 {
		workers = s.workers
	}
	res, err := plan.RunParallel(store, params, opts, workers)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return buildQueryResponse(res, plan, req, hit, epoch, start), http.StatusOK, nil
}

func buildQueryResponse(res *query.Result, plan *query.Plan, req *queryRequest,
	cached bool, epoch uint64, start time.Time) *queryResponse {
	resp := &queryResponse{
		Solutions: []solutionJSON{},
		Count:     len(res.Solutions),
		Cached:    cached,
		Naive:     req.Naive,
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
		Stats:     res.Stats,
	}
	for _, sol := range res.Solutions {
		resp.Solutions = append(resp.Solutions, toSolutionJSON(sol))
	}
	if req.Explain && plan != nil {
		resp.Plan = plan.Explain()
	}
	return resp
}

// ---- stats, snapshots, metrics ----

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	store := s.Store()
	mt := s.metrics
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch:  store.Epoch(),
		Layers: layerSizes(store),
		Cache: cacheStats{
			Hits:     s.cache.Hits(),
			Misses:   s.cache.Misses(),
			Entries:  s.cache.Len(),
			Capacity: s.cache.Cap(),
		},
		Queries: counterGroup{
			Total:    mt.QueriesTotal.Value(),
			Errors:   mt.QueryErrors.Value(),
			Naive:    mt.QueriesNaive.Value(),
			Compiles: mt.PlanCompiles.Value(),
		},
		Batch: batchStats{
			Requests:   mt.BatchRequests.Value(),
			QueriesRun: mt.BatchQueries.Value(),
		},
		Mutations: mutationStats{Inserts: mt.Inserts.Value(), Deletes: mt.Deletes.Value()},
		Bulk:      bulkStats{Batches: mt.BulkBatches.Value(), Objects: mt.BulkObjects.Value()},
		Snapshots: snapshotStats{Saves: mt.SnapshotSaves.Value(), Loads: mt.SnapshotLoads.Value()},
		DB:        store.TotalStats(),
	})
}

func (s *Server) handleSnapshotSave(w http.ResponseWriter, _ *http.Request) {
	// Serialize into memory first: Save holds the store's read guard, and
	// streaming straight to a slow client would pin it (stalling every
	// writer, and behind the blocked writer every other reader).
	var buf bytes.Buffer
	if err := s.Store().Save(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "saving snapshot: %v", err)
		return
	}
	s.metrics.SnapshotSaves.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleSnapshotLoad(w http.ResponseWriter, r *http.Request) {
	old := s.Store()
	store, err := spatialdb.Load(http.MaxBytesReader(w, r.Body, maxBodyBytes), old.Kind())
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading snapshot: %v", err)
		return
	}
	s.swapStore(store)
	s.metrics.SnapshotLoads.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"loaded": true,
		"layers": layerSizes(store),
		"epoch":  store.Epoch(),
	})
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(s.vars.String()))
	_, _ = w.Write([]byte("\n"))
}
