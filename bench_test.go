package boolq

// The benchmark harness: one benchmark family per experiment of DESIGN.md
// §4 (E1–E11). Run with:
//
//	go test -bench=. -benchmem
//
// The absolute numbers depend on the machine; the shapes the paper
// predicts (naive ≫ optimized, exact-region filter ≫ bbox filter,
// compile-time growth with variable count, index ≪ scan) are asserted
// qualitatively by the tests in internal/experiments and reported in
// EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"repro/internal/bbox"
	"repro/internal/bcf"
	"repro/internal/constraint"
	"repro/internal/formula"
	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/zorder"
)

// ---- E1/E6: smuggler query, naive vs optimized, across map scales ----

func smugglerSetup(scale int) (*spatialdb.Store, map[string]*region.Region) {
	m := workload.GenMap(workload.MapConfig{
		Seed:  42,
		Towns: 12 * scale, Interior: 12 * scale, Roads: 30 * scale,
	})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	return store, map[string]*region.Region{"C": m.Country, "A": m.Area}
}

func BenchmarkE1SmugglerNaive(b *testing.B) {
	store, params := smugglerSetup(1)
	q := query.Smuggler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.RunNaive(q, store, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1SmugglerOptimized(b *testing.B) {
	store, params := smugglerSetup(1)
	plan, err := query.Compile(query.Smuggler(), store)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Pruning(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		store, params := smugglerSetup(scale)
		q := query.Smuggler()
		plan, err := query.Compile(q, store)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("naive/scale-%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.RunNaive(q, store, params); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("optimized/scale-%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: point-transform range query vs direct scan ----

func BenchmarkE5PointTransform(b *testing.B) {
	rng := workload.NewRNG(5)
	spec := bbox.RangeSpec{
		K: 2, Lower: bbox.Empty(2), Upper: bbox.Rect(100, 100, 400, 400),
		Overlaps: []bbox.Box{bbox.Rect(200, 200, 260, 260)},
	}
	for _, kind := range []spatialdb.IndexKind{spatialdb.Scan, spatialdb.PointRTree, spatialdb.Grid} {
		store := spatialdb.NewStore(bbox.Rect(0, 0, 1000, 1000), kind)
		for i := 0; i < 5000; i++ {
			x, y := rng.Range(0, 990), rng.Range(0, 990)
			store.MustInsert("objs", "", region.FromBox(bbox.Rect(x, y, x+5, y+5)))
		}
		layer := store.Layer("objs")
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				layer.Search(spec, func(spatialdb.Object) bool {
					n++
					return true
				})
			}
		})
	}
}

// ---- E8: exact region filtering vs bounding-box functions ----

func BenchmarkE8FilterExact(b *testing.B) {
	store, params := smugglerSetup(2)
	plan, err := query.Compile(query.Smuggler(), store)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(store, params, query.Options{UseIndex: false, UseExact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8FilterBBox(b *testing.B) {
	store, params := smugglerSetup(2)
	plan, err := query.Compile(query.Smuggler(), store)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(store, params, query.Options{UseIndex: true, UseExact: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E9: overlay join — pipeline vs z-order vs nested loop ----

func joinSetup(n int) (*spatialdb.Store, []zorder.Item, []zorder.Item, []*region.Region, []*region.Region) {
	rng := workload.NewRNG(9)
	store := spatialdb.NewStore(bbox.Rect(0, 0, 1024, 1024), spatialdb.RTree)
	var as, bs []zorder.Item
	var aR, bR []*region.Region
	for i := 0; i < n; i++ {
		x, y := rng.Range(0, 1000), rng.Range(0, 1000)
		r := region.FromBox(bbox.Rect(x, y, x+10, y+10))
		o := store.MustInsert("as", "", r)
		as = append(as, zorder.Item{ID: o.ID, Box: o.Box})
		aR = append(aR, r)
		x, y = rng.Range(0, 1000), rng.Range(0, 1000)
		r = region.FromBox(bbox.Rect(x, y, x+10, y+10))
		o = store.MustInsert("bs", "", r)
		bs = append(bs, zorder.Item{ID: o.ID, Box: o.Box})
		bR = append(bR, r)
	}
	return store, as, bs, aR, bR
}

func BenchmarkE9Join(b *testing.B) {
	store, as, bs, aR, bR := joinSetup(300)
	q := query.New()
	xa, xb := q.Sys.Var("x"), q.Sys.Var("y")
	q.Sys.Overlap(xa, xb)
	q.From("x", "as").From("y", "bs")
	plan, err := query.Compile(q, store)
	if err != nil {
		b.Fatal(err)
	}
	space := zorder.NewSpace(bbox.Rect(0, 0, 1024, 1024))

	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(store, nil, query.DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			space.Join(as, bs, 32)
		}
	})
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for x := range aR {
				for y := range bR {
					if aR[x].Overlaps(bR[y]) {
						n++
					}
				}
			}
		}
	})
}

// ---- E10: compile-time scaling with variable count ----

func BenchmarkE10Compile(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		s := constraint.NewSystem()
		vars := make([]*formula.Formula, n)
		for i := 0; i < n; i++ {
			vars[i] = s.Var(fmt.Sprintf("x%d", i))
		}
		c := s.Var("C")
		for i := 0; i+1 < n; i++ {
			s.Subset(vars[i], vars[i+1])
		}
		for i := 0; i < n; i++ {
			s.Overlap(vars[i], c)
		}
		s.Subset(vars[n-1], c)
		norm := s.Normalize()
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		b.Run(fmt.Sprintf("vars-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := triangular.Compile(norm, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E11: identical plan over the four index backends ----

func BenchmarkE11Indexes(b *testing.B) {
	for _, kind := range []spatialdb.IndexKind{spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid} {
		m := workload.GenMap(workload.MapConfig{Seed: 21, Roads: 60, Towns: 24, Interior: 24})
		store := spatialdb.NewStore(m.Config.Universe, kind)
		m.Populate(store)
		params := map[string]*region.Region{"C": m.Country, "A": m.Area}
		plan, err := query.Compile(query.Smuggler(), store)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Microbenchmarks of the core algorithms ----

func BenchmarkBCF(b *testing.B) {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	f := formula.OrN(
		formula.And(formula.Not(x), y),
		formula.And(x, y),
		formula.AndN(x, z, formula.Not(w)),
		formula.And(formula.Not(z), w),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcf.BCF(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProjection(b *testing.B) {
	x, y, z := formula.Var(0), formula.Var(1), formula.Var(2)
	n := constraint.Normal{
		F: formula.Or(formula.Diff(x, y), formula.Diff(y, z)),
		G: []*formula.Formula{formula.And(x, z), formula.And(formula.Not(x), y)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := triangular.Proj(n, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegionOps(b *testing.B) {
	rng := workload.NewRNG(3)
	u := bbox.Rect(0, 0, 100, 100)
	regs := make([]*region.Region, 32)
	for i := range regs {
		regs[i] = workload.RandRegion(rng, u, 4)
	}
	b.Run("intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			regs[i%32].Intersect(regs[(i+7)%32])
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			regs[i%32].Union(regs[(i+7)%32])
		}
	})
	b.Run("complement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			regs[i%32].ComplementIn(u)
		}
	})
	b.Run("bbox-meet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			regs[i%32].BoundingBox().Meet(regs[(i+7)%32].BoundingBox())
		}
	})
}

func BenchmarkRTree(b *testing.B) {
	rng := workload.NewRNG(11)
	boxes := make([]bbox.Box, 10000)
	for i := range boxes {
		x, y := rng.Range(0, 990), rng.Range(0, 990)
		boxes[i] = bbox.Rect(x, y, x+5, y+5)
	}
	b.Run("insert-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(2)
			for j, box := range boxes {
				if err := tr.Insert(box, int64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	tr := rtree.New(2)
	for j, box := range boxes {
		if err := tr.Insert(box, int64(j)); err != nil {
			b.Fatal(err)
		}
	}
	q := bbox.Rect(300, 300, 350, 350)
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.SearchOverlap(q, func(rtree.Entry) bool { return true })
		}
	})
}

func BenchmarkQueryCompile(b *testing.B) {
	store, _ := smugglerSetup(1)
	q := query.Smuggler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Compile(q, store); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E12/E14 and substrate extensions ----

func BenchmarkE12OrderPlanning(b *testing.B) {
	store, params := smugglerSetup(1)
	q := query.Smuggler()
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query.SuggestOrder(q, store)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.SuggestOrderSampled(q, store, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12AdaptiveExecution is the tracked adaptive-planning
// benchmark: the smuggler query executed under the best and worst static
// retrieval orders (found by measuring every permutation once), the
// static SuggestOrder heuristic, and the adaptive planner warmed with one
// observation per order. The acceptance shape: adaptive-warm matches the
// best order and beats the worst by well over 2×.
func BenchmarkE12AdaptiveExecution(b *testing.B) {
	store, params := smugglerSetup(4)
	base := query.Smuggler()
	epoch := store.Epoch()
	tuner := query.NewTuner(8)

	type ordered struct {
		plan       *query.Plan
		candidates int
	}
	var best, worst *ordered
	for _, p := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		q := &query.Query{Sys: base.Sys}
		for _, i := range p {
			q.Retrieve = append(q.Retrieve, base.Retrieve[i])
		}
		plan, err := query.Compile(q, store)
		if err != nil {
			b.Fatal(err)
		}
		res, err := plan.Run(store, params, query.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		tuner.Observe("smuggler", plan.OrderKey(), epoch, res.Stats)
		o := &ordered{plan: plan, candidates: res.Stats.Candidates}
		if best == nil || o.candidates < best.candidates {
			best = o
		}
		if worst == nil || o.candidates > worst.candidates {
			worst = o
		}
	}
	adaptive, err := query.CompileAdaptive(base, store, query.AdaptiveOptions{
		Params: params, Tuner: tuner, TunerKey: "smuggler", Epoch: epoch,
	})
	if err != nil {
		b.Fatal(err)
	}
	suggested, err := query.Compile(query.SuggestOrder(base, store), store)
	if err != nil {
		b.Fatal(err)
	}

	run := func(plan *query.Plan) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("best-order", run(best.plan))
	b.Run("worst-order", run(worst.plan))
	b.Run("suggested-order", run(suggested))
	b.Run("adaptive-warm", run(adaptive))
}

func BenchmarkE13RTreeBuild(b *testing.B) {
	rng := workload.NewRNG(31)
	entries := make([]rtree.Entry, 10000)
	for i := range entries {
		x, y := rng.Range(0, 990), rng.Range(0, 990)
		entries[i] = rtree.Entry{Box: bbox.Rect(x, y, x+5, y+5), ID: int64(i)}
	}
	b.Run("insert-quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(2, rtree.WithSplit(rtree.QuadraticSplit))
			for _, e := range entries {
				if err := tr.Insert(e.Box, e.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("insert-linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(2, rtree.WithSplit(rtree.LinearSplit))
			for _, e := range entries {
				if err := tr.Insert(e.Box, e.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("bulk-STR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtree.BulkLoad(2, entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE14Parallel(b *testing.B) {
	store, params := smugglerSetup(4)
	plan, err := query.Compile(query.Smuggler(), store)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.RunParallel(store, params, query.DefaultOptions, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkZOrderIndexSearch(b *testing.B) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 1000, 1000), spatialdb.ZOrderIdx)
	rng := workload.NewRNG(5)
	for i := 0; i < 5000; i++ {
		x, y := rng.Range(0, 990), rng.Range(0, 990)
		store.MustInsert("objs", "", region.FromBox(bbox.Rect(x, y, x+5, y+5)))
	}
	layer := store.Layer("objs")
	spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Rect(100, 100, 400, 400)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Search(spec, func(spatialdb.Object) bool { return true })
	}
}

// ---- boolqd serving layer: cold compile vs plan-cache hit ----
//
// The service benchmark pair isolates what the plan cache buys a serving
// workload: "cold" is the full per-request pipeline a cache miss pays
// (normalize → parse → compile → run), "cached" is the hit path
// (normalize → cache lookup → run). The difference is the entire §3/§4
// compilation cost, amortized away for repeated queries.

const smugglerSrc = `
find T in towns, R in roads, B in states
given C, A
where A <= C; B <= C; R <= A | B | T;
      R & A != 0; R & T != 0; T !<= C
`

func BenchmarkServiceQueryCold(b *testing.B) {
	store, params := smugglerSetup(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm, err := lang.Normalize(smugglerSrc)
		if err != nil {
			b.Fatal(err)
		}
		q, err := lang.Parse(norm)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := query.Compile(q, store)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceQueryCached(b *testing.B) {
	store, params := smugglerSetup(1)
	cache := server.NewPlanCache(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm, err := lang.Normalize(smugglerSrc)
		if err != nil {
			b.Fatal(err)
		}
		plan, ok := cache.Get(norm, 0, store.Epoch())
		if !ok {
			q, err := lang.Parse(norm)
			if err != nil {
				b.Fatal(err)
			}
			if plan, err = query.Compile(q, store); err != nil {
				b.Fatal(err)
			}
			cache.Put(norm, 0, store.Epoch(), plan)
		}
		if _, err := plan.Run(store, params, query.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
	if cache.Hits() < uint64(b.N-1) {
		b.Fatalf("expected ≥ %d cache hits, got %d", b.N-1, cache.Hits())
	}
}

// BenchmarkServiceCompileOnly is the cost the cache removes per hit.
func BenchmarkServiceCompileOnly(b *testing.B) {
	store, _ := smugglerSetup(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := lang.Parse(smugglerSrc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := query.Compile(q, store); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- bulk ingestion: Store.BulkInsert vs per-object Insert ----

// bulkBenchItems generates n disjoint-ish regions inside the default
// 1000×1000 universe.
func bulkBenchItems(n int) []spatialdb.BulkItem {
	rng := workload.NewRNG(77)
	items := make([]spatialdb.BulkItem, n)
	for i := range items {
		x, y := rng.Range(0, 980), rng.Range(0, 980)
		items[i] = spatialdb.BulkItem{
			Name: fmt.Sprintf("o%d", i),
			Reg:  region.FromBox(bbox.Rect(x, y, x+rng.Range(1, 10), y+rng.Range(1, 10))),
		}
	}
	return items
}

// BenchmarkBulkInsert contrasts loading an R-tree layer one object at a
// time (n write-lock acquisitions, n Guttman insertions with quadratic
// splits, n epoch bumps) against one Store.BulkInsert call (one lock
// acquisition, one STR-packed build, one epoch bump).
func BenchmarkBulkInsert(b *testing.B) {
	universe := bbox.Rect(0, 0, 1000, 1000)
	for _, n := range []int{1000, 10000} {
		items := bulkBenchItems(n)
		b.Run(fmt.Sprintf("looped-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := spatialdb.NewStore(universe, spatialdb.RTree)
				for _, it := range items {
					if _, err := store.Insert("objs", it.Name, it.Reg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("bulk-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := spatialdb.NewStore(universe, spatialdb.RTree)
				rep, err := store.BulkInsert("objs", items, spatialdb.BulkAtomic)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Inserted != n {
					b.Fatalf("inserted %d, want %d", rep.Inserted, n)
				}
			}
		})
	}
}

// ---- durable write path: WAL append cost per fsync policy ----

// BenchmarkWALAppend measures the append path of the write-ahead log
// under each fsync policy: "never" is the buffered frame+write alone,
// "interval" adds the background flusher's lock traffic, and "always"
// pays one fsync per record — the price of a durability guarantee on
// every acknowledged mutation.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 128)
	for _, policy := range []wal.Policy{wal.SyncNever, wal.SyncInterval, wal.SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALDurableInsert is the end-to-end mutation cost with the
// log attached: record encode + append (+ fsync under always) on top of
// the in-memory insert itself. Compare against BenchmarkBulkInsert's
// looped variant for the WAL-less baseline.
func BenchmarkWALDurableInsert(b *testing.B) {
	for _, policy := range []wal.Policy{wal.SyncNever, wal.SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			db, err := wal.OpenDB(b.TempDir(), wal.DBOptions{
				Kind:     spatialdb.RTree,
				Universe: bbox.Rect(0, 0, 1e6, 1e6),
				Log:      wal.Options{Policy: policy},
				// No background checkpoints: measure the append path only.
				CheckpointInterval: -1, CheckpointBytes: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			store := db.Store()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := float64(i % 999000)
				if _, err := store.Insert("bench", "", region.FromBox(bbox.Rect(x, 0, x+1, 1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
