package region

import (
	"testing"

	"repro/internal/boolalg"
	"repro/internal/formula"
)

func TestAlgebraImplementsLaws(t *testing.T) {
	alg := NewAlgebra(rect(0, 0, 16, 16))
	sample := []boolalg.Element{
		alg.Bottom(),
		alg.Top(),
		FromBox(rect(0, 0, 8, 8)),
		FromBox(rect(4, 4, 12, 12)),
		FromBoxes(2, rect(0, 0, 2, 16), rect(10, 0, 12, 16)),
		FromBox(rect(7, 7, 9, 9)),
	}
	if err := boolalg.CheckLaws(alg, sample); err != nil {
		t.Fatal(err)
	}
}

func TestAlgebraPanicsOnEmptyUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty universe should panic")
		}
	}()
	NewAlgebra(rect(1, 1, 1, 1).Meet(rect(2, 2, 3, 3)))
}

func TestAlgebraAccessors(t *testing.T) {
	u := rect(0, 0, 10, 10)
	alg := NewAlgebra(u)
	if alg.K() != 2 || !alg.Universe().Equal(u) {
		t.Errorf("accessors wrong")
	}
	r := FromBox(rect(2, 2, 4, 4))
	if alg.Region(r) != r {
		t.Errorf("Region cast wrong")
	}
	big := FromBox(rect(-5, -5, 5, 5))
	clipped := alg.Region(alg.Clip(big))
	if clipped.Measure() != 25 {
		t.Errorf("Clip measure = %g", clipped.Measure())
	}
}

// Evaluating constraint formulas over the region algebra: the bridge the
// query engine relies on.
func TestFormulaEvalOverRegions(t *testing.T) {
	alg := NewAlgebra(rect(0, 0, 10, 10))
	x, y := formula.Var(0), formula.Var(1)
	rx := FromBox(rect(0, 0, 6, 6))
	ry := FromBox(rect(4, 4, 10, 10))
	env := []boolalg.Element{rx, ry}

	inter := Eval2(t, alg, formula.And(x, y), env)
	if inter.Measure() != 4 {
		t.Errorf("x∧y measure = %g", inter.Measure())
	}
	diff := Eval2(t, alg, formula.Diff(x, y), env)
	if diff.Measure() != 36-4 {
		t.Errorf("x\\y measure = %g", diff.Measure())
	}
	// x ⊑ (x ∨ y) must hold: (x ∧ ¬(x∨y)) = 0.
	leq := formula.Diff(x, formula.Or(x, y))
	if !alg.IsBottom(formula.Eval(leq, alg, env)) {
		t.Errorf("x ⊑ x∨y violated")
	}
}

// Eval2 evaluates and casts, failing the test on panic.
func Eval2(t *testing.T, alg *Algebra, f *formula.Formula, env []boolalg.Element) *Region {
	t.Helper()
	return alg.Region(formula.Eval(f, alg, env))
}

// Atomless behaviour: every nonempty region splits properly, and a family
// of disjoint nonempty subregions of any region can be carved out — the
// property Theorem 5's witness construction needs.
func TestAtomlessWitnessConstruction(t *testing.T) {
	r := FromBox(rect(0, 0, 8, 8))
	parts := make([]*Region, 0, 4)
	rest := r
	for i := 0; i < 4; i++ {
		half := rest.Split()
		parts = append(parts, half)
		rest = rest.Difference(half)
		if rest.IsEmpty() {
			t.Fatalf("ran out of region after %d splits", i+1)
		}
	}
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Overlaps(parts[j]) {
				t.Errorf("parts %d and %d overlap", i, j)
			}
		}
		if !parts[i].Leq(r) {
			t.Errorf("part %d escapes the region", i)
		}
	}
}
