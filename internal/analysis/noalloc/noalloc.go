// Package noalloc is the compile-time backstop to the AllocsPerRun
// regression tests (PR 4): a function annotated //boolq:noalloc must
// contain no allocating construct. Flagged inside an annotated body:
//
//   - make/new calls, composite literals, function literals, go
//     statements
//   - append (amortized-growth appends carry a line-level
//     //boolq:allowalloc <reason>)
//   - string concatenation
//   - arguments boxed into interface parameters (non-pointer concrete
//     values escaping into any/interface params)
//   - conversions between strings and byte/rune slices
//   - calls into deny-listed formatting packages (fmt, errors)
//   - calls to same-package functions not themselves //boolq:noalloc,
//     and cross-package calls without an exported noalloc fact
//
// Arguments of panic(...) are exempt: a violated precondition may
// format its message, the price is paid only on the way down. The
// annotation is exported as a fact, so `bbox.Program.Eval` being
// noalloc is checkable from the query executor's package.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check //boolq:noalloc functions contain no allocating constructs",
	Run:  run,
}

// denyPkgs always allocate (or may): calling them in a hot path is a
// bug even if this call happens to stay on the stack.
var denyPkgs = map[string]bool{"fmt": true, "errors": true}

// allowPkgs hold pure leaf functions that never allocate.
var allowPkgs = map[string]bool{"math": true, "math/bits": true}

func run(pass *analysis.Pass) error {
	dirs := analysis.CollectDirectives(pass.Fset, pass.Files)

	// First pass: find the annotated set and export facts so importing
	// packages can call these functions from their own noalloc bodies.
	annotated := map[*ast.FuncDecl]bool{}
	local := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := dirs.Func(fn, "noalloc"); !ok {
				continue
			}
			annotated[fn] = true
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				local[obj] = true
				pass.ExportFact(analysis.FuncSymbol(obj))
			}
		}
	}

	for fn := range annotated {
		if fn.Body != nil {
			check(pass, dirs, local, fn)
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	dirs  *analysis.Directives
	local map[types.Object]bool
	fn    *ast.FuncDecl
}

func check(pass *analysis.Pass, dirs *analysis.Directives, local map[types.Object]bool, fn *ast.FuncDecl) {
	c := &checker{pass: pass, dirs: dirs, local: local, fn: fn}
	c.walk(fn.Body)
}

// report flags pos unless the line carries //boolq:allowalloc.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.dirs.OnLine(pos, "allowalloc") {
		return
	}
	c.pass.Reportf(pos, "//boolq:noalloc %s: "+format, append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.DeferStmt:
			// A non-open-coded defer may allocate; the annotated hot
			// paths have none, so flag them all.
			c.report(n.Pos(), "defer may allocate")
			return false
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.CompositeLit:
			c.report(n.Pos(), "composite literal allocates")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isString(n.X) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			return c.call(n)
		}
		return true
	})
}

func (c *checker) isString(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// call inspects one call expression; returns whether Inspect should
// descend into the children.
func (c *checker) call(call *ast.CallExpr) bool {
	// Builtins and conversions first.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			// The panic path is allowed to allocate its message.
			return false
		case "make":
			c.report(call.Pos(), "make allocates")
			return false
		case "new":
			c.report(call.Pos(), "new allocates")
			return false
		case "append":
			c.report(call.Pos(), "append may grow its backing array")
			// fall through to visit the arguments
			return true
		case "len", "cap", "copy", "delete", "min", "max", "clear", "print", "println", "recover":
			return true
		}
	}
	if c.isConversion(call) {
		c.convCheck(call)
		return true
	}
	c.calleeCheck(call)
	c.boxingCheck(call)
	return true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (c *checker) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// convCheck flags string<->slice conversions, which copy.
func (c *checker) convCheck(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to, okTo := c.pass.TypesInfo.Types[call.Fun]
	from, okFrom := c.pass.TypesInfo.Types[call.Args[0]]
	if !okTo || !okFrom {
		return
	}
	toStr := isStringType(to.Type)
	fromStr := isStringType(from.Type)
	if toStr != fromStr {
		c.report(call.Pos(), "string/slice conversion copies")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// calleeCheck requires every called function to be provably
// non-allocating: same-package noalloc annotation, cross-package
// noalloc fact, or an allow-listed pure package.
func (c *checker) calleeCheck(call *ast.CallExpr) {
	callee := typeutilCallee(c.pass.TypesInfo, call)
	if callee == nil {
		// Dynamic call through a function value or interface: nothing
		// to verify against, and the call itself may not allocate — the
		// closure creation was flagged where it happened.
		return
	}
	if pkg := callee.Pkg(); pkg != nil && pkg != c.pass.Pkg {
		switch {
		case denyPkgs[pkg.Path()]:
			c.report(call.Pos(), "call into %s allocates", pkg.Path())
		case allowPkgs[pkg.Path()]:
			// pure leaf package
		case c.pass.HasFact(analysis.FuncSymbol(callee)):
			// proven noalloc by its own package's pass
		default:
			c.report(call.Pos(), "call to %s has no noalloc guarantee", callee.FullName())
		}
		return
	}
	if !c.local[callee] {
		c.report(call.Pos(), "call to %s, which is not //boolq:noalloc", callee.Name())
	}
}

// boxingCheck flags arguments converted to interface parameters: boxing
// a non-pointer value escapes it to the heap.
func (c *checker) boxingCheck(call *ast.CallExpr) {
	callee := typeutilCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if pkg := callee.Pkg(); pkg != nil && denyPkgs[pkg.Path()] {
		return // the call itself was already flagged; don't pile on per argument
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := c.pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || isPointerLike(at.Type) || at.Value != nil {
			continue // already boxed, pointer-shaped, or a constant the compiler can intern
		}
		c.report(arg.Pos(), "argument boxed into interface parameter %s", params.At(pi).Name())
	}
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UntypedNil
	}
	return false
}

// typeutilCallee resolves the static *types.Func a call targets, or nil
// for dynamic calls (the x/tools typeutil.StaticCallee equivalent).
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified identifier pkg.F
		}
	}
	return nil
}
