package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/bbox"
	"repro/internal/formula"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// randSystem builds a random constraint system over two retrieval
// variables (x, y) and one parameter (C) from a seeded RNG. It returns the
// query with retrieval bindings attached.
func randSystem(rng *workload.RNG) *Query {
	q := New()
	x := q.Sys.Var("x")
	y := q.Sys.Var("y")
	c := q.Sys.Var("C")
	atoms := []*formula.Formula{x, y, c, formula.One()}

	randFormula := func() *formula.Formula {
		f := atoms[rng.IntN(len(atoms))]
		for i := 0; i < rng.IntN(3); i++ {
			g := atoms[rng.IntN(len(atoms))]
			switch rng.IntN(3) {
			case 0:
				f = formula.And(f, g)
			case 1:
				f = formula.Or(f, g)
			default:
				f = formula.And(f, formula.Not(g))
			}
		}
		return f
	}

	ncons := 1 + rng.IntN(4)
	for i := 0; i < ncons; i++ {
		f, g := randFormula(), randFormula()
		switch rng.IntN(5) {
		case 0:
			q.Sys.Subset(f, g)
		case 1:
			q.Sys.NotSubset(f, g)
		case 2:
			q.Sys.Overlap(f, g)
		case 3:
			q.Sys.Disjoint(f, g)
		default:
			q.Sys.NonEmpty(f)
		}
	}
	// Make sure both retrieval variables appear somewhere.
	q.Sys.Overlap(x, formula.One())
	q.Sys.Overlap(y, formula.One())
	return q.From("x", "xs").From("y", "ys")
}

// TestFuzzOptimizedAgainstNaive is the end-to-end differential test: for
// random constraint systems over random stores, every optimizer
// configuration must return exactly the naive cross product's solutions.
// This exercises normalization, projection, solved forms, bounding-box
// approximation, the indexes and the executor together.
func TestFuzzOptimizedAgainstNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	universe := bbox.Rect(0, 0, 64, 64)
	for trial := 0; trial < 40; trial++ {
		rng := workload.NewRNG(uint64(trial) + 1000)
		q := randSystem(rng)

		kind := []spatialdb.IndexKind{
			spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid,
		}[trial%4]
		store := spatialdb.NewStore(universe, kind)
		for i := 0; i < 6; i++ {
			store.MustInsert("xs", fmt.Sprintf("x%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("ys", fmt.Sprintf("y%d", i), workload.RandRegion(rng, universe, 2))
		}
		params := map[string]*region.Region{"C": workload.RandRegion(rng, universe, 2)}

		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		plan, err := Compile(q, store)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsystem:\n%s", trial, err, q.Sys)
		}
		for _, opts := range []Options{
			{UseIndex: false, UseExact: false},
			{UseIndex: false, UseExact: true},
			{UseIndex: true, UseExact: false},
			{UseIndex: true, UseExact: true},
		} {
			res, err := plan.Run(store, params, opts)
			if err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			if res.Stats.Solutions != naive.Stats.Solutions {
				t.Fatalf("trial %d (%v, opts %+v): optimized %d solutions, naive %d\nsystem:\n%s\nplan:\n%s",
					trial, kind, opts, res.Stats.Solutions, naive.Stats.Solutions,
					q.Sys, plan.Explain())
			}
		}
	}
}

// TestFuzzAdaptiveAgainstNaive extends the differential fuzz to the
// adaptive pipeline: whatever order and backends CompileAdaptive picks,
// the solutions must equal the naive cross product's, and the selectivity
// estimates it is built on must be finite, non-negative and bounded by
// the layer population — including on empty layers, empty and degenerate
// boxes, and randomly shaped specs.
func TestFuzzAdaptiveAgainstNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	universe := bbox.Rect(0, 0, 64, 64)
	for trial := 0; trial < 40; trial++ {
		rng := workload.NewRNG(uint64(trial) + 9000)
		q := randSystem(rng)

		kind := []spatialdb.IndexKind{
			spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid,
		}[trial%4]
		store := spatialdb.NewStore(universe, kind)
		if trial%4 == 0 {
			store.EnableAltIndexes(spatialdb.RTree, spatialdb.Grid)
		}
		// xs is sometimes left empty: estimation and execution must both
		// handle a zero-population layer.
		nx := 6
		if trial%5 == 0 {
			nx = 0
			store.Layer("xs") // exists, holds nothing
		}
		for i := 0; i < nx; i++ {
			store.MustInsert("xs", fmt.Sprintf("x%d", i), workload.RandRegion(rng, universe, 2))
		}
		for i := 0; i < 6; i++ {
			store.MustInsert("ys", fmt.Sprintf("y%d", i), workload.RandRegion(rng, universe, 2))
		}
		params := map[string]*region.Region{"C": workload.RandRegion(rng, universe, 2)}

		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		plan, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params})
		if err != nil {
			t.Fatalf("trial %d: adaptive compile: %v\nsystem:\n%s", trial, err, q.Sys)
		}
		res, err := plan.Run(store, params, DefaultOptions)
		if err != nil {
			t.Fatalf("trial %d: adaptive run: %v", trial, err)
		}
		staticPlan, err := Compile(SuggestOrder(q, store), store)
		if err != nil {
			t.Fatalf("trial %d: static compile: %v\nsystem:\n%s", trial, err, q.Sys)
		}
		staticRes, err := staticPlan.Run(store, params, DefaultOptions)
		if err != nil {
			t.Fatalf("trial %d: static run: %v", trial, err)
		}
		want := canonSolutions(q.Retrieve, naive.Solutions)
		if got := canonSolutions(plan.Bindings(), res.Solutions); !sameSolutionSet(got, want) {
			t.Fatalf("trial %d (%v, order %s): adaptive solutions %v, naive %v\nsystem:\n%s\nplan:\n%s",
				trial, kind, plan.OrderKey(), got, want, q.Sys, plan.Explain())
		}
		if got := canonSolutions(staticPlan.Bindings(), staticRes.Solutions); !sameSolutionSet(got, want) {
			t.Fatalf("trial %d (%v): static plan solutions %v, naive %v\nsystem:\n%s",
				trial, kind, got, want, q.Sys)
		}

		// Estimator invariants over the plan's own specs plus random ones.
		cost, fracs := estimatePlanCost(plan, store, paramBoxes(plan.Query, store, params))
		if math.IsNaN(cost) || cost < 0 {
			t.Fatalf("trial %d: plan cost = %v", trial, cost)
		}
		for i, f := range fracs {
			if math.IsNaN(f) || f < 0 || f > 1 {
				t.Fatalf("trial %d: step %d match fraction = %v", trial, i, f)
			}
		}
		for _, layer := range []string{"xs", "ys"} {
			l, ok := store.LayerIfExists(layer)
			if !ok {
				continue
			}
			ds := l.DataStats()
			for probe := 0; probe < 20; probe++ {
				spec := bbox.RangeSpec{K: 2, Lower: randFuzzBox(rng, universe), Upper: randFuzzBox(rng, universe)}
				if probe%3 == 0 {
					spec.Overlaps = append(spec.Overlaps, randFuzzBox(rng, universe))
				}
				est := ds.EstimateSpec(spec)
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 || est > float64(ds.Count()) {
					t.Fatalf("trial %d: layer %q estimate %v outside [0, %d] for spec %+v",
						trial, layer, est, ds.Count(), spec)
				}
			}
		}
	}
}

// canonSolutions keys a solution list by sorted Var=object pairs — the
// order-insensitive, binding-order-insensitive form the differential
// checks compare. Bindings must be the plan's output bindings
// (Plan.Bindings(), or Query.Retrieve for the naive executor).
func canonSolutions(bindings []Binding, sols []Solution) map[string]int {
	out := map[string]int{}
	for _, s := range sols {
		pairs := make([]string, len(s.Objects))
		for i, o := range s.Objects {
			pairs[i] = bindings[i].Var + "=" + o.Name
		}
		sort.Strings(pairs)
		out[strings.Join(pairs, ",")]++
	}
	return out
}

func sameSolutionSet(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// randFuzzBox produces boxes biased toward the estimator's edge cases:
// empty, degenerate (zero-width), universe-sized and ordinary random
// boxes.
func randFuzzBox(rng *workload.RNG, universe bbox.Box) bbox.Box {
	switch rng.IntN(5) {
	case 0:
		return bbox.Empty(2)
	case 1:
		return universe
	case 2:
		x := float64(rng.IntN(64))
		y := float64(rng.IntN(64))
		return bbox.Rect(x, y, x, y) // degenerate point box
	default:
		return workload.RandRegion(rng, universe, 1).BoundingBox()
	}
}

// TestFuzzThreeVariableChains stresses deeper retrieval chains (3 steps)
// where projections compose: again optimized must equal naive.
func TestFuzzThreeVariableChains(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	universe := bbox.Rect(0, 0, 64, 64)
	for trial := 0; trial < 15; trial++ {
		rng := workload.NewRNG(uint64(trial) + 5000)
		q := New()
		x := q.Sys.Var("x")
		y := q.Sys.Var("y")
		z := q.Sys.Var("z")
		c := q.Sys.Var("C")
		// Chain-shaped system with a random twist per trial.
		q.Sys.Subset(x, formula.Or(y, c))
		q.Sys.Overlap(y, z)
		switch trial % 3 {
		case 0:
			q.Sys.NotSubset(z, c)
		case 1:
			q.Sys.Disjoint(x, formula.Not(c))
		default:
			q.Sys.NonEmpty(formula.And(y, c))
		}
		q.From("x", "xs").From("y", "ys").From("z", "zs")

		store := spatialdb.NewStore(universe, spatialdb.RTree)
		for i := 0; i < 5; i++ {
			store.MustInsert("xs", fmt.Sprintf("x%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("ys", fmt.Sprintf("y%d", i), workload.RandRegion(rng, universe, 2))
			store.MustInsert("zs", fmt.Sprintf("z%d", i), workload.RandRegion(rng, universe, 2))
		}
		params := map[string]*region.Region{"C": workload.RandRegion(rng, universe, 2)}

		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileAndRun(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Solutions != naive.Stats.Solutions {
			t.Fatalf("trial %d: optimized %d, naive %d\nsystem:\n%s",
				trial, res.Stats.Solutions, naive.Stats.Solutions, q.Sys)
		}
	}
}
