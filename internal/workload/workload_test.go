package workload

import (
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range out of range: %g", v)
		}
		n := r.IntN(7)
		if n < 0 || n >= 7 {
			t.Fatalf("IntN out of range: %d", n)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) should panic")
		}
	}()
	NewRNG(1).IntN(0)
}

func TestGenMapStructure(t *testing.T) {
	m := GenMap(MapConfig{Seed: 1})
	cfg := m.Config
	if len(m.States) != cfg.StatesX*cfg.StatesY {
		t.Fatalf("states = %d", len(m.States))
	}
	if len(m.Towns) != cfg.Towns || len(m.Decoys) != cfg.Interior || len(m.Roads) != cfg.Roads {
		t.Fatalf("counts wrong: %d towns, %d decoys, %d roads",
			len(m.Towns), len(m.Decoys), len(m.Roads))
	}
	// States tile the country exactly (up to null sets).
	tiled := region.Empty(2)
	for i, s := range m.States {
		if !s.Leq(m.Country) {
			t.Errorf("state %d escapes the country", i)
		}
		for j := i + 1; j < len(m.States); j++ {
			if s.Overlaps(m.States[j]) {
				t.Errorf("states %d and %d overlap", i, j)
			}
		}
		tiled = tiled.Union(s)
	}
	if !tiled.Equal(m.Country) {
		t.Errorf("states do not tile the country: %g vs %g",
			tiled.Measure(), m.Country.Measure())
	}
	// Border towns straddle the frontier: inside ∩ C ≠ ∅ and ∩ ¬C ≠ ∅.
	universe := cfg.Universe
	for i, town := range m.Towns {
		if !town.Overlaps(m.Country) {
			t.Errorf("border town %d misses the country", i)
		}
		if town.Difference(m.Country).IsEmpty() {
			t.Errorf("border town %d entirely inside the country", i)
		}
		if !town.Leq(region.FromBox(universe)) {
			t.Errorf("border town %d escapes the universe", i)
		}
	}
	// Decoys are entirely inside.
	for i, d := range m.Decoys {
		if !d.Leq(m.Country) {
			t.Errorf("decoy %d not inside the country", i)
		}
	}
	// The destination area is inside the country.
	if !m.Area.Leq(m.Country) {
		t.Errorf("area escapes the country")
	}
	// Roads are nonempty L-shapes.
	for i, r := range m.Roads {
		if r.IsEmpty() {
			t.Errorf("road %d empty", i)
		}
	}
}

func TestGenMapDeterminism(t *testing.T) {
	a := GenMap(MapConfig{Seed: 5})
	b := GenMap(MapConfig{Seed: 5})
	if !a.Area.Equal(b.Area) || !a.Towns[0].Equal(b.Towns[0]) || !a.Roads[0].Equal(b.Roads[0]) {
		t.Errorf("same seed produced different maps")
	}
	c := GenMap(MapConfig{Seed: 6})
	if a.Area.Equal(c.Area) && a.Towns[0].Equal(c.Towns[0]) {
		t.Errorf("different seeds produced identical maps")
	}
}

func TestMapPopulate(t *testing.T) {
	m := GenMap(MapConfig{Seed: 2})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	if store.Layer("towns").Len() != m.Config.Towns+m.Config.Interior {
		t.Errorf("towns layer = %d", store.Layer("towns").Len())
	}
	if store.Layer("roads").Len() != m.Config.Roads {
		t.Errorf("roads layer = %d", store.Layer("roads").Len())
	}
	if store.Layer("states").Len() != m.Config.StatesX*m.Config.StatesY {
		t.Errorf("states layer = %d", store.Layer("states").Len())
	}
}

func TestGenVLSIStructure(t *testing.T) {
	v := GenVLSI(VLSIConfig{Seed: 3})
	cfg := v.Config
	if len(v.Metal1) != cfg.Metal1 || len(v.Metal2) != cfg.Metal2 || len(v.Vias) != cfg.Vias {
		t.Fatalf("counts wrong")
	}
	u := region.FromBox(cfg.Universe)
	for i, r := range v.Metal1 {
		if r.IsEmpty() || !r.Leq(u) {
			t.Errorf("m1 wire %d invalid", i)
		}
	}
	for i, r := range v.Vias {
		if r.IsEmpty() {
			t.Errorf("via %d empty", i)
		}
	}
	// Some vias must actually connect a crossing (generated at 2/3 rate).
	connected := 0
	for _, via := range v.Vias {
		for _, m1 := range v.Metal1 {
			if !via.Overlaps(m1) {
				continue
			}
			for _, m2 := range v.Metal2 {
				if via.Overlaps(m2) {
					connected++
					break
				}
			}
			break
		}
	}
	if connected == 0 {
		t.Errorf("no via connects any crossing")
	}
	store := spatialdb.NewStore(cfg.Universe, spatialdb.Scan)
	v.Populate(store)
	if store.Layer("vias").Len() != cfg.Vias {
		t.Errorf("vias layer = %d", store.Layer("vias").Len())
	}
}

func TestRandRegion(t *testing.T) {
	rng := NewRNG(9)
	u := bbox.Rect(0, 0, 100, 100)
	for i := 0; i < 50; i++ {
		r := RandRegion(rng, u, 4)
		if r.IsEmpty() {
			t.Fatalf("empty random region")
		}
		if !r.Leq(region.FromBox(u)) {
			t.Fatalf("random region escapes the universe")
		}
		if r.NumBoxes() > 16 {
			t.Fatalf("random region too complex: %d boxes", r.NumBoxes())
		}
	}
}
