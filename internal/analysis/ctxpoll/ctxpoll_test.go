package ctxpoll

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestCtxpoll(t *testing.T) {
	atest.Run(t, Analyzer, "b")
}

// TestPkgsGate checks the -pkgs flag pulls a whole package into scope
// without annotations.
func TestPkgsGate(t *testing.T) {
	if err := Analyzer.Flags.Set("pkgs", "b"); err != nil {
		t.Fatal(err)
	}
	defer Analyzer.Flags.Set("pkgs", "repro/internal/query")
	pkg := atest.Load(t, "b")
	results := atest.Apply(t, Analyzer, pkg)
	// The three annotated findings plus the unannotated function at the
	// fixture's tail, now in scope.
	if len(results) != 4 {
		t.Errorf("with -pkgs=b want 4 findings (unannotated loop included), got %d: %v", len(results), results)
	}
}
