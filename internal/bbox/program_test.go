package bbox

import (
	"math/rand"
	"testing"
)

// randProgBox returns an empty, universe, or random proper box in k dims.
func randProgBox(r *rand.Rand, k int) Box {
	switch r.Intn(5) {
	case 0:
		return Empty(k)
	case 1:
		return Univ(k)
	default:
		lo, hi := make([]float64, k), make([]float64, k)
		for i := range lo {
			a, b := r.Float64()*100, r.Float64()*100
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		return Box{K: k, Lo: lo, Hi: hi}
	}
}

// randProgFunc builds a raw function tree covering every node kind, bypassing
// the constructors' unit folding so FEmpty/FUniv appear as inner operands
// too.
func randProgFunc(r *rand.Rand, depth, nvars, k int) *Func {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &Func{kind: FEmpty}
		case 1:
			return &Func{kind: FUniv}
		case 2:
			return &Func{kind: FVar, v: r.Intn(nvars)}
		default:
			return &Func{kind: FConst, c: randProgBox(r, k)}
		}
	}
	kind := FMeet
	if r.Intn(2) == 0 {
		kind = FJoin
	}
	return &Func{kind: kind, l: randProgFunc(r, depth-1, nvars, k), r: randProgFunc(r, depth-1, nvars, k)}
}

// TestProgramEquivalentToFuncEval is the randomized property test: for
// random trees over all node kinds and random environments, the compiled
// program computes exactly what the tree walk computes.
func TestProgramEquivalentToFuncEval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var scr Scratch
	for trial := 0; trial < 2000; trial++ {
		k := 1 + r.Intn(3)
		nvars := 1 + r.Intn(5)
		f := randProgFunc(r, 1+r.Intn(4), nvars, k)
		env := make([]Box, nvars)
		for v := range env {
			env[v] = randProgBox(r, k)
		}
		want := f.Eval(k, env)
		got := f.Compile().Eval(k, env, &scr)
		if !got.Equal(want) {
			t.Fatalf("trial %d: Program.Eval = %v, Func.Eval = %v for %v over %v",
				trial, got, want, f, env)
		}
	}
}

func TestProgramEvalReusedScratch(t *testing.T) {
	// Two programs sharing one scratch must not corrupt each other, and a
	// result must survive until the next Eval.
	a := MeetFunc(VarFunc(0), VarFunc(1)).Compile()
	b := JoinFunc(VarFunc(0), ConstFunc(Rect(0, 0, 1, 1))).Compile()
	env := []Box{Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)}
	var scr Scratch
	for i := 0; i < 3; i++ {
		got := a.Eval(2, env, &scr)
		if !got.Equal(Rect(2, 2, 4, 4)) {
			t.Fatalf("meet program = %v", got)
		}
		got = b.Eval(2, env, &scr)
		if !got.Equal(Rect(0, 0, 4, 4)) {
			t.Fatalf("join program = %v", got)
		}
	}
}

func TestProgramEvalCopyOwnsResult(t *testing.T) {
	p := MeetFunc(VarFunc(0), VarFunc(1)).Compile()
	env := []Box{Rect(0, 0, 4, 4), Rect(1, 1, 6, 6)}
	var scr Scratch
	out := p.EvalCopy(2, env, &scr)
	// Overwrite the scratch with a different evaluation; out must not move.
	p.Eval(2, []Box{Rect(7, 7, 9, 9), Rect(8, 8, 9, 9)}, &scr)
	if !out.Equal(Rect(1, 1, 4, 4)) {
		t.Fatalf("EvalCopy result mutated by later Eval: %v", out)
	}
}

func TestProgramUnboundVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbound variable")
		}
	}()
	var scr Scratch
	VarFunc(3).Compile().Eval(2, make([]Box, 2), &scr)
}

// TestProgramEvalAllocFree pins the tentpole invariant: a warm scratch
// makes Eval allocate nothing, whatever mix of empty/universe/proper boxes
// flows through the stack.
func TestProgramEvalAllocFree(t *testing.T) {
	f := JoinFunc(
		MeetFunc(VarFunc(0), MeetFunc(VarFunc(1), ConstFunc(Rect(0, 0, 50, 50)))),
		MeetFunc(VarFunc(2), JoinFunc(VarFunc(3), EmptyFunc())),
	)
	p := f.Compile()
	env := []Box{Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(1, 1, 3, 3), Empty(2)}
	var scr Scratch
	p.Eval(2, env, &scr) // warm-up: grow the scratch once
	allocs := testing.AllocsPerRun(200, func() {
		p.Eval(2, env, &scr)
	})
	if allocs != 0 {
		t.Fatalf("Program.Eval allocates %v per run with a warm scratch, want 0", allocs)
	}
}

func BenchmarkProgramEval(b *testing.B) {
	f := JoinFunc(
		MeetFunc(VarFunc(0), MeetFunc(VarFunc(1), ConstFunc(Rect(0, 0, 50, 50)))),
		MeetFunc(VarFunc(2), VarFunc(3)),
	)
	env := []Box{Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(1, 1, 3, 3), Rect(0, 0, 9, 9)}
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Eval(2, env)
		}
	})
	b.Run("program", func(b *testing.B) {
		p := f.Compile()
		var scr Scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Eval(2, env, &scr)
		}
	})
}
