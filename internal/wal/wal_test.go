package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect replays the whole log into a slice of (lsn, payload) pairs.
func collect(t *testing.T, l *Log, after uint64) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	if err := l.Replay(after, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, bytes.Clone(payload))
		return nil
	}); err != nil {
		t.Fatalf("Replay(%d): %v", after, err)
	}
	return lsns, payloads
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("x", i*7)))
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d returned lsn %d", i, lsn)
		}
		want = append(want, p)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	lsns, payloads := collect(t, l, 0)
	if len(lsns) != 20 || lsns[0] != 1 || lsns[19] != 20 {
		t.Fatalf("replayed lsns %v", lsns)
	}
	for i := range want {
		if !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	// Replay(after) starts strictly past after.
	lsns, _ = collect(t, l, 15)
	if len(lsns) != 5 || lsns[0] != 16 {
		t.Fatalf("Replay(15) lsns %v", lsns)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: positions survive, appending continues where it stopped.
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 20 {
		t.Fatalf("LastLSN after reopen = %d", got)
	}
	if lsn, err := l2.Append([]byte("resumed")); err != nil || lsn != 21 {
		t.Fatalf("Append after reopen = %d, %v", lsn, err)
	}
}

func TestLogRotationAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record fits, two don't.
	l, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 40)
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 5 {
		t.Fatalf("only %d segments after %d oversized records", st.Segments, n)
	}
	if st.Rotations == 0 {
		t.Fatal("no rotations recorded")
	}
	lsns, _ := collect(t, l, 0)
	if len(lsns) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(lsns), n)
	}

	// Truncation drops sealed segments entirely covered by a checkpoint
	// at LSN 5 but never the active one; the survivors still replay.
	removed, err := l.TruncateBelow(5)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBelow(5) removed nothing")
	}
	lsns, _ = collect(t, l, 5)
	if len(lsns) != n-5 || lsns[0] != 6 {
		t.Fatalf("post-truncation Replay(5) lsns %v", lsns)
	}
	if _, err := l.TruncateBelow(uint64(n)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 1 {
		t.Fatal("active segment was truncated away")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The survivors recover.
	l2, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != n {
		t.Fatalf("LastLSN after truncation+reopen = %d, want %d", got, n)
	}
}

func TestLogTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, 1, segSuffix))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way into the final record: a crash between write and sync.
	if err := os.WriteFile(seg, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Stats().TornTail {
		t.Error("torn tail not reported")
	}
	if got := l2.LastLSN(); got != 4 {
		t.Fatalf("LastLSN after torn tail = %d, want 4", got)
	}
	// The LSN of the lost record is reused by the next append.
	lsn, err := l2.Append([]byte("replacement"))
	if err != nil || lsn != 5 {
		t.Fatalf("Append after torn tail = %d, %v", lsn, err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	lsns, payloads := collect(t, l2, 0)
	if len(lsns) != 5 || string(payloads[4]) != "replacement" {
		t.Fatalf("replay after torn-tail repair: %d records, last %q", len(lsns), payloads[len(payloads)-1])
	}
}

func TestLogCorruptSealedSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(bytes.Repeat([]byte("q"), 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST (sealed) segment: replay must fail
	// loudly — mid-log corruption is data loss, not a torn tail.
	seg := filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, 1, segSuffix))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeaderBytes+2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 32, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("replay accepted a corrupt sealed segment")
	}
}

func TestLogSyncPolicies(t *testing.T) {
	always, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer always.Close()
	for i := 0; i < 3; i++ {
		if _, err := always.Append([]byte("fsync-me")); err != nil {
			t.Fatal(err)
		}
	}
	if got := always.Stats().Fsyncs; got < 3 {
		t.Errorf("SyncAlways issued %d fsyncs for 3 appends", got)
	}

	never, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := never.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	if got := never.Stats().Fsyncs; got != 0 {
		t.Errorf("SyncNever issued %d fsyncs on append", got)
	}
	// Close seals: flush + fsync regardless of policy.
	if err := never.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("atomic contents"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "atomic contents" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// A failing writer must leave neither the target nor temp litter.
	bad := filepath.Join(dir, "bad.bin")
	if err := WriteFileAtomic(bad, func(io.Writer) error {
		return fmt.Errorf("serialization exploded")
	}); err == nil {
		t.Fatal("WriteFileAtomic swallowed the writer error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.bin" {
			t.Errorf("leftover file %q", e.Name())
		}
	}
}

// recordEnds parses a raw segment file into the byte offsets at which
// each record ends — the framing is <u32 len><u32 crc><payload>.
func recordEnds(t *testing.T, raw []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(raw) {
		if off+recordHeaderBytes > len(raw) {
			t.Fatalf("segment ends mid-header at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		off += recordHeaderBytes + n
		if off > len(raw) {
			t.Fatalf("segment ends mid-record at %d", off)
		}
		ends = append(ends, off)
	}
	return ends
}
