// Package constraint implements the paper's high-level query language:
// systems of positive and negative Boolean constraints over set-valued
// variables.
//
// A positive constraint has the form f ⊑ g (containment of Boolean
// formulas); a negative constraint has the form f ⋢ g. These suffice to
// express equality, disequality, disjointness, overlap and strict
// containment (§1):
//
//	x = y   ⇔  x ⊑ y ∧ y ⊑ x
//	x ≠ y   ⇔  x ⋢ y ∨ y ⋢ x          (we use the symmetric-difference form)
//	x ⊂ y   ⇔  x ⊑ y ∧ x ≠ y
//
// Theorem 1 (after Boole): every system rewrites to the normal form
//
//	f = 0  ∧  g₁ ≠ 0  ∧ … ∧  gₘ ≠ 0
//
// with f ⊑ g ⇝ f∧¬g contributing to the single equation and f ⋢ g ⇝
// f∧¬g ≠ 0 one disequation. The normal form is the input to Algorithm 1
// (internal/triangular).
//
// DESIGN.md §2 ("Compilation") places this package in the module map; §1 sketches the pipeline stage it implements.
package constraint

import (
	"fmt"
	"strings"

	"repro/internal/boolalg"
	"repro/internal/formula"
)

// Constraint is a single positive (f ⊑ g) or negative (f ⋢ g) constraint.
type Constraint struct {
	Lhs, Rhs *formula.Formula
	Negative bool
}

// String renders the constraint with the paper's operators spelled "<=" and
// "!<=".
func (c Constraint) String() string {
	return c.StringNamed(func(v int) string { return fmt.Sprintf("x%d", v) })
}

// StringNamed renders the constraint using name(v) for variables.
func (c Constraint) StringNamed(name func(int) string) string {
	op := "<="
	if c.Negative {
		op = "!<="
	}
	return fmt.Sprintf("%s %s %s", c.Lhs.StringNamed(name), op, c.Rhs.StringNamed(name))
}

// System is a conjunction of constraints over a shared variable table.
// Variables are declared through Var; the zero System is not usable — call
// NewSystem.
type System struct {
	Vars *formula.Vars
	Cons []Constraint
}

// NewSystem returns an empty system with a fresh variable table.
func NewSystem() *System {
	return &System{Vars: formula.NewVars()}
}

// Var declares (or looks up) a named variable and returns its formula.
func (s *System) Var(name string) *formula.Formula {
	return formula.Var(s.Vars.ID(name))
}

// Subset adds the positive constraint f ⊑ g.
func (s *System) Subset(f, g *formula.Formula) *System {
	s.Cons = append(s.Cons, Constraint{Lhs: f, Rhs: g})
	return s
}

// NotSubset adds the negative constraint f ⋢ g.
func (s *System) NotSubset(f, g *formula.Formula) *System {
	s.Cons = append(s.Cons, Constraint{Lhs: f, Rhs: g, Negative: true})
	return s
}

// Equal adds f = g (two containments).
func (s *System) Equal(f, g *formula.Formula) *System {
	return s.Subset(f, g).Subset(g, f)
}

// NotEqual adds f ≠ g, expressed as the single negative constraint
// (f∧¬g) ∨ (¬f∧g) ⋢ 0 on the symmetric difference.
func (s *System) NotEqual(f, g *formula.Formula) *System {
	return s.NotSubset(formula.Xor(f, g), formula.Zero())
}

// Disjoint adds f ∧ g = 0.
func (s *System) Disjoint(f, g *formula.Formula) *System {
	return s.Subset(formula.And(f, g), formula.Zero())
}

// Overlap adds f ∧ g ≠ 0.
func (s *System) Overlap(f, g *formula.Formula) *System {
	return s.NotSubset(formula.And(f, g), formula.Zero())
}

// NonEmpty adds f ≠ 0.
func (s *System) NonEmpty(f *formula.Formula) *System {
	return s.NotSubset(f, formula.Zero())
}

// StrictSubset adds f ⊂ g (containment plus disequality).
func (s *System) StrictSubset(f, g *formula.Formula) *System {
	return s.Subset(f, g).NotEqual(f, g)
}

// String renders the whole system, one constraint per line.
func (s *System) String() string {
	var b strings.Builder
	for i, c := range s.Cons {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(c.StringNamed(s.Vars.Name))
	}
	return b.String()
}

// Normal is the Theorem-1 normal form: F = 0 ∧ ⋀ᵢ G[i] ≠ 0.
type Normal struct {
	F *formula.Formula
	G []*formula.Formula
}

// Normalize rewrites the system into normal form. Disequations that are
// two-valued tautologies (g ≡ 1 never vanishes in a nontrivial algebra)
// are dropped; syntactic duplicates are merged.
func (s *System) Normalize() Normal {
	f := formula.Zero()
	var gs []*formula.Formula
	for _, c := range s.Cons {
		body := formula.Diff(c.Lhs, c.Rhs)
		if c.Negative {
			if formula.TautologyOne(body) {
				continue // always ≠ 0 in a nontrivial algebra
			}
			dup := false
			for _, g := range gs {
				if g.Same(body) {
					dup = true
					break
				}
			}
			if !dup {
				gs = append(gs, body)
			}
		} else {
			f = formula.Or(f, body)
		}
	}
	return Normal{F: f, G: gs}
}

// TriviallyUnsat reports a sound (not complete) static unsatisfiability
// check: the equation forces 1 = 0, or some disequation is identically 0.
func (n Normal) TriviallyUnsat() bool {
	if formula.TautologyOne(n.F) {
		return true
	}
	for _, g := range n.G {
		if formula.TautologyZero(g) {
			return true
		}
		// g ≠ 0 together with f = 0 requires g ⋢ f's forced-zero part; the
		// cheap version: if g ≤ F then g must be 0 and nonzero at once.
		if formula.Implies2(g, n.F) {
			return true
		}
	}
	return false
}

// Satisfied evaluates the normal form over an algebra with all variables
// bound.
func (n Normal) Satisfied(alg boolalg.Algebra, env []boolalg.Element) bool {
	if !alg.IsBottom(formula.Eval(n.F, alg, env)) {
		return false
	}
	for _, g := range n.G {
		if alg.IsBottom(formula.Eval(g, alg, env)) {
			return false
		}
	}
	return true
}

// Satisfied evaluates every constraint of the system over an algebra with
// all variables bound (the exact, unoptimized semantics — the oracle the
// optimized pipeline is validated against).
func (s *System) Satisfied(alg boolalg.Algebra, env []boolalg.Element) bool {
	for _, c := range s.Cons {
		val := formula.Eval(formula.Diff(c.Lhs, c.Rhs), alg, env)
		if c.Negative == alg.IsBottom(val) {
			return false
		}
	}
	return true
}
