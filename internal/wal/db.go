package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bbox"
	"repro/internal/retry"
	"repro/internal/spatialdb"
	"repro/internal/vfs"
)

// DB binds a spatialdb.Store to a Log: the durable store boolqd serves
// when started with -data-dir.
//
// Lifecycle. OpenDB recovers the store — load the newest intact binary
// snapshot, replay every WAL record past it, tolerate a torn final
// record — then installs itself as the store's mutation sink, so every
// acknowledged mutation is appended (and, under fsync=always, fsynced)
// before the mutating call returns. A background checkpointer
// periodically writes a fresh snapshot and deletes the sealed segments
// it covers, bounding both recovery time and disk usage. Close seals the
// log; a clean shutdown therefore loses nothing regardless of policy.
//
// Checkpoint protocol (crash-safe at every step):
//
//  1. Serialize the store under its read guard, reading the last logged
//     LSN inside the same critical section (SaveBinaryMark) — writers
//     append under the write lock, so the boundary is exact.
//  2. Write the snapshot atomically: temp file, fsync, rename to
//     snap-<lsn>.bqs, directory fsync.
//  3. Rotate the log if the active segment holds covered records, then
//     delete sealed segments entirely ≤ lsn and snapshots older than the
//     retained set. A crash between any two steps leaves a directory
//     that still recovers: the snapshot only becomes visible complete,
//     and segments are only deleted after it is.
type DB struct {
	dir   string
	fs    vfs.FS
	log   *Log
	store *spatialdb.Store

	appliedLSN    atomic.Uint64 // last LSN both applied and logged
	checkpointLSN atomic.Uint64 // boundary of the newest snapshot
	ckptBytes     atomic.Int64  // log bytes at the last checkpoint

	checkpoints  atomic.Int64
	checkpointMu sync.Mutex // serializes Checkpoint
	ckptErrs     atomic.Int64
	ckptRetries  atomic.Int64
	sinkErrs     atomic.Int64
	walRetries   atomic.Int64 // in-place Append retries after a sink failure

	// Durability state machine (DESIGN.md §9): healthy ↔ degraded.
	// Entering degraded flips the store read-only (mutations are rejected
	// before they touch memory) and wakes probeLoop, which re-arms the log,
	// reconciles memory and disk with a forced checkpoint, and exits
	// degradation.
	degraded      atomic.Bool
	degradedAt    atomic.Int64 // UnixNano of the transition
	degradeCause  atomic.Value // string: the error that exhausted retries
	transitions   atomic.Int64 // times the DB entered degraded mode
	probes        atomic.Int64 // recovery attempts by probeLoop
	retryMax      int
	retryBackoff  time.Duration
	probeInterval time.Duration
	probeKick     chan struct{}

	replayed    int64 // records replayed at boot
	recoveryDur time.Duration
	snapLoaded  uint64 // LSN of the snapshot recovery started from (0: none)
	orphanTemps int64  // orphan temp files pruned at boot
	keep        int    // snapshot generations to retain

	// Snapshot pins: a replica fetching snap-<lsn>.bqs holds a reference
	// so pruneSnapshots never deletes the file mid-stream. pinMu also
	// serializes AcquireSnapshot's scan-then-pin against the prune's
	// scan-then-delete; the map is lazily allocated.
	pinMu sync.Mutex
	pins  map[uint64]int

	encBuf []byte // sink scratch; the store's write lock serializes access

	stopc     chan struct{}
	donec     chan struct{}
	probeDone chan struct{}
	once      sync.Once
}

// DBOptions configures OpenDB.
type DBOptions struct {
	// Log configures the underlying record log (segment size, fsync
	// policy).
	Log Options
	// Kind is the index backend for the recovered store.
	Kind spatialdb.IndexKind
	// Universe is the store universe when the directory holds no
	// snapshot yet (a recovered snapshot's universe always wins).
	Universe bbox.Box
	// CheckpointInterval is how often the background checkpointer wakes
	// (≤ 0: DefaultCheckpointInterval; set to a negative value AND
	// CheckpointBytes < 0 to disable it — tests drive Checkpoint
	// directly).
	CheckpointInterval time.Duration
	// CheckpointBytes triggers a checkpoint once this many WAL bytes
	// accumulated past the last one (≤ 0: the segment size).
	CheckpointBytes int64
	// KeepSnapshots is how many snapshot generations to retain (≤ 0: 2 —
	// the newest plus one fallback).
	KeepSnapshots int
	// RetryMax is how many times a failed WAL append is retried in place
	// (rearm + re-append, capped exponential backoff) before the store
	// degrades to read-only (0: DefaultRetryMax; < 0: no in-place retries
	// — the first failure degrades immediately).
	RetryMax int
	// RetryBackoff is the first retry's sleep; it doubles per attempt up
	// to maxRetryBackoff (≤ 0: DefaultRetryBackoff).
	RetryBackoff time.Duration
	// ProbeInterval is how often the background probe attempts recovery
	// while degraded; it backs off exponentially up to maxProbeBackoff
	// (≤ 0: DefaultProbeInterval).
	ProbeInterval time.Duration
}

// Defaults for DBOptions.
const (
	DefaultCheckpointInterval = time.Minute
	DefaultKeepSnapshots      = 2
	DefaultRetryMax           = 3
	DefaultRetryBackoff       = 2 * time.Millisecond
	DefaultProbeInterval      = 500 * time.Millisecond
)

// Backoff caps for retries and probes.
const (
	maxRetryBackoff = 250 * time.Millisecond
	maxProbeBackoff = 15 * time.Second
	// checkpointRetryMax bounds in-tick retries of a failed background
	// checkpoint before giving up until the next interval.
	checkpointRetryMax     = 3
	checkpointRetryBackoff = 250 * time.Millisecond
	maxCheckpointBackoff   = 5 * time.Second
)

// DBStats is the durability section of /stats.
type DBStats struct {
	Dir            string `json:"dir"`
	Policy         string `json:"fsync"`
	AppliedLSN     uint64 `json:"applied_lsn"`
	CheckpointLSN  uint64 `json:"checkpoint_lsn"`
	Checkpoints    int64  `json:"checkpoints"`
	CheckpointErr  int64  `json:"checkpoint_failures"`
	CheckpointRtry int64  `json:"checkpoint_retries"`
	SinkErrors     int64  `json:"append_errors"`
	WALRetries     int64  `json:"wal_retries"`  // in-place append retries
	Replayed       int64  `json:"replayed"`     // records replayed at boot
	RecoveredFrom  uint64 `json:"snapshot_lsn"` // snapshot recovery started from
	RecoveryMS     int64  `json:"recovery_ms"`
	OrphanTemps    int64  `json:"orphan_temps_pruned"` // stale temp files removed at boot

	// Degradation state (DESIGN.md §9).
	Degraded        bool   `json:"degraded"`
	DegradedForMS   int64  `json:"degraded_for_ms,omitempty"` // time spent in the current episode
	DegradeCause    string `json:"degrade_cause,omitempty"`
	DegradedEntered int64  `json:"degraded_entered"` // lifetime transitions into degraded
	Probes          int64  `json:"probes"`           // recovery attempts while degraded

	Log    Stats           `json:"log"`
	Faults *vfs.FaultStats `json:"faults,omitempty"` // set when the FS injects faults (tests)
}

// OpenDB opens (creating if needed) a durable store in dir and recovers
// it to the last acknowledged state.
func OpenDB(dir string, opts DBOptions) (*DB, error) {
	start := time.Now()
	if opts.Universe.IsEmpty() {
		return nil, errors.New("wal: OpenDB needs a non-empty universe")
	}
	log, err := Open(dir, opts.Log)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, fs: log.fs, log: log}
	ok := false
	defer func() {
		if !ok {
			log.Close()
		}
	}()

	// Recovery step 0: prune temp files a crashed (or fault-aborted)
	// checkpoint left behind. They are invisible to recovery — only the
	// rename publishes a snapshot — but they cost disk forever if kept.
	if n, err := pruneOrphanTemps(db.fs, dir); err != nil {
		return nil, err
	} else {
		db.orphanTemps = n
	}

	// Recovery step 1: newest intact snapshot.
	store, snapLSN, err := loadBestSnapshot(db.fs, dir, opts.Kind)
	if err != nil {
		return nil, err
	}
	if store == nil {
		store = spatialdb.NewStore(opts.Universe, opts.Kind)
	}
	db.store = store
	db.snapLoaded = snapLSN

	// Recovery step 2: if segments were lost (or removed by hand) the
	// snapshot can be ahead of the log; never reuse its LSNs.
	if log.LastLSN() < snapLSN {
		if err := log.SkipTo(snapLSN + 1); err != nil {
			return nil, err
		}
	}

	// Recovery step 3: replay the tail.
	if err := log.Replay(snapLSN, func(lsn uint64, payload []byte) error {
		m, err := spatialdb.DecodeMutation(payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		if err := store.ApplyMutation(m); err != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		db.replayed++
		return nil
	}); err != nil {
		return nil, err
	}

	db.appliedLSN.Store(log.LastLSN())
	db.checkpointLSN.Store(snapLSN)
	db.ckptBytes.Store(log.Stats().AppendedBytes)
	db.recoveryDur = time.Since(start)

	// Go live: from here on every mutation is logged before it is
	// acknowledged.
	store.SetMutationSink(db.logMutation)

	interval := opts.CheckpointInterval
	if interval == 0 {
		interval = DefaultCheckpointInterval
	}
	bytes := opts.CheckpointBytes
	if bytes == 0 {
		bytes = log.opts.SegmentBytes
	}
	keep := opts.KeepSnapshots
	if keep <= 0 {
		keep = DefaultKeepSnapshots
	}
	db.keep = keep
	switch {
	case opts.RetryMax < 0:
		db.retryMax = 0
	case opts.RetryMax == 0:
		db.retryMax = DefaultRetryMax
	default:
		db.retryMax = opts.RetryMax
	}
	db.retryBackoff = opts.RetryBackoff
	if db.retryBackoff <= 0 {
		db.retryBackoff = DefaultRetryBackoff
	}
	db.probeInterval = opts.ProbeInterval
	if db.probeInterval <= 0 {
		db.probeInterval = DefaultProbeInterval
	}
	db.stopc = make(chan struct{})
	db.donec = make(chan struct{})
	db.probeDone = make(chan struct{})
	db.probeKick = make(chan struct{}, 1)
	go db.probeLoop()
	if interval > 0 {
		go db.checkpointLoop(interval, bytes)
	} else {
		close(db.donec)
	}
	ok = true
	return db, nil
}

// pruneOrphanTemps removes checkpoint temp files (snap-*.tmp*) that a
// crash or an aborted checkpoint stranded, returning how many went.
func pruneOrphanTemps(fs vfs.FS, dir string) (int64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	var pruned int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.Contains(name, tmpSuffix) ||
			strings.HasSuffix(name, snapSuffix) {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return pruned, fmt.Errorf("wal: pruning orphan temp %s: %w", name, err)
		}
		pruned++
	}
	if pruned > 0 {
		if err := syncDir(fs, dir); err != nil {
			return pruned, err
		}
	}
	return pruned, nil
}

// Store returns the recovered store. Mutations through it are logged;
// do not swap it out from under the DB.
func (db *DB) Store() *spatialdb.Store { return db.store }

// Log returns the underlying record log.
func (db *DB) Log() *Log { return db.log }

// Replayed returns how many WAL records boot-time recovery replayed.
func (db *DB) Replayed() int64 { return db.replayed }

// Stats returns the durability counters.
func (db *DB) Stats() DBStats {
	st := DBStats{
		Dir:             db.dir,
		Policy:          db.log.Policy().String(),
		AppliedLSN:      db.appliedLSN.Load(),
		CheckpointLSN:   db.checkpointLSN.Load(),
		Checkpoints:     db.checkpoints.Load(),
		CheckpointErr:   db.ckptErrs.Load(),
		CheckpointRtry:  db.ckptRetries.Load(),
		SinkErrors:      db.sinkErrs.Load(),
		WALRetries:      db.walRetries.Load(),
		Replayed:        db.replayed,
		RecoveredFrom:   db.snapLoaded,
		RecoveryMS:      db.recoveryDur.Milliseconds(),
		OrphanTemps:     db.orphanTemps,
		Degraded:        db.degraded.Load(),
		DegradedEntered: db.transitions.Load(),
		Probes:          db.probes.Load(),
		Log:             db.log.Stats(),
	}
	if st.Degraded {
		st.DegradedForMS = time.Since(time.Unix(0, db.degradedAt.Load())).Milliseconds()
		if cause, ok := db.degradeCause.Load().(string); ok {
			st.DegradeCause = cause
		}
	}
	if faulty, ok := db.fs.(vfs.Faulty); ok {
		fst := faulty.FaultStats()
		st.Faults = &fst
	}
	return st
}

// Degraded reports whether the DB is in degraded read-only mode.
func (db *DB) Degraded() bool { return db.degraded.Load() }

// DegradeCause returns the error message that triggered the current
// degraded episode ("" when healthy).
func (db *DB) DegradeCause() string {
	if !db.degraded.Load() {
		return ""
	}
	cause, _ := db.degradeCause.Load().(string)
	return cause
}

// logMutation is the store's mutation sink: encode, append, remember the
// position. It runs under the store's write lock, so encBuf needs no
// further guard and records are appended in exactly apply order.
//
// A failed append is retried in place with capped exponential backoff:
// each attempt re-arms the log (repairing torn bytes or a missing active
// segment) and either detects that the record actually landed — a write
// that reached the disk before only its fsync failed keeps its LSN, and
// re-appending it would replay the mutation twice — or appends again.
// Exhausted retries degrade the store to read-only (ErrDegraded) and
// hand recovery to probeLoop; the mutation is applied in memory but NOT
// durable, which the probe's forced checkpoint reconciles before any new
// mutation is admitted.
func (db *DB) logMutation(m *spatialdb.Mutation) error {
	db.encBuf = spatialdb.AppendMutation(db.encBuf[:0], m)
	want := db.log.NextLSN()
	lsn, err := db.log.Append(db.encBuf)
	if err == nil {
		db.appliedLSN.Store(lsn)
		return nil
	}
	db.sinkErrs.Add(1)
	pol := retry.Policy{Base: db.retryBackoff, Cap: maxRetryBackoff}
	for attempt := 0; attempt < db.retryMax; attempt++ {
		time.Sleep(pol.Delay(attempt))
		db.walRetries.Add(1)
		if rerr := db.log.Rearm(); rerr != nil {
			err = rerr
			continue
		}
		if last := db.log.LastLSN(); last >= want {
			// The failed append reached the disk after all (e.g. the write
			// landed and only the fsync failed); Rearm's probe fsync made
			// it durable, so acknowledge it rather than duplicate it.
			db.appliedLSN.Store(last)
			return nil
		}
		if lsn, err = db.log.Append(db.encBuf); err == nil {
			db.appliedLSN.Store(lsn)
			return nil
		}
		db.sinkErrs.Add(1)
	}
	db.enterDegraded(err)
	return fmt.Errorf("%w: %v", spatialdb.ErrDegraded, err)
}

// enterDegraded flips the store into degraded read-only mode and wakes
// the recovery probe. Idempotent: only the first caller transitions.
func (db *DB) enterDegraded(cause error) {
	if db.degraded.CompareAndSwap(false, true) {
		db.transitions.Add(1)
		db.degradedAt.Store(time.Now().UnixNano())
		db.degradeCause.Store(cause.Error())
		db.store.SetDegraded(true)
		select {
		case db.probeKick <- struct{}{}:
		default:
		}
	}
}

// probeLoop waits for degraded episodes and repeatedly attempts recovery
// with exponential backoff until the log accepts writes again.
func (db *DB) probeLoop() {
	defer close(db.probeDone)
	for {
		select {
		case <-db.stopc:
			return
		case <-db.probeKick:
		}
		pol := retry.Policy{Base: db.probeInterval, Cap: maxProbeBackoff}
		for attempt := 0; db.degraded.Load(); attempt++ {
			select {
			case <-db.stopc:
				return
			case <-time.After(pol.Delay(attempt)):
			}
			db.probes.Add(1)
			if db.tryRecover() {
				break
			}
		}
	}
}

// tryRecover is one probe attempt: re-arm the log, reconcile memory and
// disk, and exit degraded mode. The in-memory store can be ahead of the
// log — the mutation that exhausted retries was applied but never
// logged, and acknowledged-but-buffered records may have been lost under
// the interval policy — so a forced checkpoint snapshots the full memory
// state at a fresh boundary before mutations are admitted again: the
// next recovery lands on exactly what the process was serving.
func (db *DB) tryRecover() bool {
	if err := db.log.Rearm(); err != nil {
		return false
	}
	db.appliedLSN.Store(db.log.LastLSN())
	if _, err := db.checkpoint(true); err != nil {
		return false
	}
	db.degraded.Store(false)
	db.store.SetDegraded(false)
	return true
}

// Checkpoint writes a snapshot of the current state, seals and deletes
// the WAL segments it covers, and prunes old snapshots. It returns the
// snapshot's boundary LSN. Concurrent calls serialize; mutations proceed
// concurrently except during the state serialization itself (which holds
// the store's read guard).
func (db *DB) Checkpoint() (uint64, error) { return db.checkpoint(false) }

// checkpoint implements Checkpoint. force writes a snapshot even when no
// new LSN was logged since the last one — the degradation-exit path needs
// that, because it snapshots in-memory state the log never captured.
func (db *DB) checkpoint(force bool) (uint64, error) {
	db.checkpointMu.Lock()
	defer db.checkpointMu.Unlock()
	// Serialize through a temp file in the same directory; the boundary
	// LSN — and with it the final name — is only known once the store's
	// read guard is held, so the atomic write is spelled out here rather
	// than through writeFileAtomic.
	var lsn uint64
	tmp, err := db.fs.CreateTemp(db.dir, snapPrefix+"*"+tmpSuffix)
	if err != nil {
		db.ckptErrs.Add(1)
		return 0, fmt.Errorf("wal: %w", err)
	}
	cleanup := func(err error) (uint64, error) {
		tmp.Close()
		db.fs.Remove(tmp.Name())
		db.ckptErrs.Add(1)
		return 0, err
	}
	if err := db.store.SaveBinaryMark(tmp, func() { lsn = db.appliedLSN.Load() }); err != nil {
		return cleanup(err)
	}
	if lsn == db.checkpointLSN.Load() && !force {
		// Nothing was logged since the last checkpoint; discard quietly.
		tmp.Close()
		db.fs.Remove(tmp.Name())
		return lsn, nil
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	final := filepath.Join(db.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
	if err := db.fs.Rename(tmp.Name(), final); err != nil {
		db.fs.Remove(tmp.Name())
		db.ckptErrs.Add(1)
		return 0, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(db.fs, db.dir); err != nil {
		db.ckptErrs.Add(1)
		return 0, err
	}
	db.checkpointLSN.Store(lsn)
	db.ckptBytes.Store(db.log.Stats().AppendedBytes)
	db.checkpoints.Add(1)

	// Seal the covered boundary, then drop what the snapshot made
	// redundant. Failures here cost disk, not correctness.
	if db.log.SegmentStart() <= lsn {
		if err := db.log.Rotate(); err != nil {
			db.ckptErrs.Add(1)
			return lsn, err
		}
	}
	if _, err := db.log.TruncateBelow(lsn); err != nil {
		db.ckptErrs.Add(1)
		return lsn, err
	}
	if err := db.pruneSnapshots(); err != nil {
		db.ckptErrs.Add(1)
		return lsn, err
	}
	return lsn, nil
}

// pruneSnapshots deletes all but the newest keep snapshots, skipping any
// that a replica fetch currently pins (they go on a later pass, once the
// stream finishes). Holding pinMu across the scan-and-delete serializes
// against AcquireSnapshot's scan-and-pin, so a snapshot can never be
// deleted between a replica choosing it and pinning it.
func (db *DB) pruneSnapshots() error {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	lsns, err := scanSnapshots(db.fs, db.dir)
	if err != nil {
		return err
	}
	if len(lsns) <= db.keep {
		return nil
	}
	removed := false
	for _, lsn := range lsns[:len(lsns)-db.keep] {
		if db.pins[lsn] > 0 {
			continue
		}
		name := filepath.Join(db.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
		if err := db.fs.Remove(name); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	if !removed {
		return nil
	}
	return syncDir(db.fs, db.dir)
}

// ErrNoSnapshot is returned by AcquireSnapshot when the directory holds
// no checkpoint yet; a replica then bootstraps from an empty store and
// tails the WAL from LSN 0.
var ErrNoSnapshot = errors.New("wal: no snapshot available")

// AcquireSnapshot opens the newest snapshot for streaming and pins it
// against pruning until release is called. The returned LSN is the
// snapshot's boundary: every mutation at an LSN > lsn must be replayed
// on top of it. release is safe to call exactly once.
func (db *DB) AcquireSnapshot() (lsn uint64, r io.ReadCloser, release func(), err error) {
	db.pinMu.Lock()
	lsns, err := scanSnapshots(db.fs, db.dir)
	if err != nil {
		db.pinMu.Unlock()
		return 0, nil, nil, err
	}
	if len(lsns) == 0 {
		db.pinMu.Unlock()
		return 0, nil, nil, ErrNoSnapshot
	}
	lsn = lsns[len(lsns)-1]
	if db.pins == nil {
		db.pins = make(map[uint64]int)
	}
	db.pins[lsn]++
	db.pinMu.Unlock()

	release = func() {
		db.pinMu.Lock()
		if db.pins[lsn] > 1 {
			db.pins[lsn]--
		} else {
			delete(db.pins, lsn)
		}
		db.pinMu.Unlock()
	}
	name := filepath.Join(db.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
	f, err := db.fs.Open(name)
	if err != nil {
		release()
		return 0, nil, nil, fmt.Errorf("wal: %w", err)
	}
	return lsn, f, release, nil
}

// DurableLSN is the newest LSN both applied in memory and appended to
// the log: the position replicas measure their lag against.
func (db *DB) DurableLSN() uint64 { return db.appliedLSN.Load() }

// checkpointLoop wakes every interval and checkpoints when enough WAL
// bytes accumulated since the last snapshot. A failed checkpoint is
// retried a few times with capped backoff inside the tick — a full disk
// or a transient fault should not silently push the recovery bound a
// whole interval into the future — then left for the next interval.
func (db *DB) checkpointLoop(interval time.Duration, bytes int64) {
	defer close(db.donec)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if db.degraded.Load() {
				continue // probeLoop owns recovery (and its exit checkpoint)
			}
			if db.appliedLSN.Load() <= db.checkpointLSN.Load() {
				continue
			}
			if bytes > 0 && db.log.Stats().AppendedBytes-db.ckptBytes.Load() < bytes {
				continue
			}
			pol := retry.Policy{Base: checkpointRetryBackoff, Cap: maxCheckpointBackoff}
			for attempt := 0; ; attempt++ {
				_, err := db.Checkpoint() // failures are counted in ckptErrs
				if err == nil || attempt >= checkpointRetryMax {
					break
				}
				db.ckptRetries.Add(1)
				select {
				case <-db.stopc:
					return
				case <-time.After(pol.Delay(attempt)):
				}
			}
		case <-db.stopc:
			return
		}
	}
}

// Close stops the checkpointer and seals the log: buffered records are
// flushed and fsynced regardless of policy, so a graceful shutdown
// (SIGTERM) loses nothing. The store stays readable but further
// mutations will fail their durability hook.
func (db *DB) Close() error {
	var err error
	db.once.Do(func() {
		close(db.stopc)
		<-db.donec
		<-db.probeDone
		err = db.log.Close()
	})
	return err
}

// ---- snapshot discovery ----

// scanSnapshots lists snapshot boundary LSNs in dir, ascending.
func scanSnapshots(fs vfs.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		lsn, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognized snapshot file %q", name)
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// loadBestSnapshot loads the newest snapshot that passes its checksum,
// falling back to older ones (a torn checkpoint cannot happen — renames
// are atomic — but a corrupted disk block can). Returns (nil, 0, nil)
// when no loadable snapshot exists.
func loadBestSnapshot(fs vfs.FS, dir string, kind spatialdb.IndexKind) (*spatialdb.Store, uint64, error) {
	lsns, err := scanSnapshots(fs, dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		name := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsns[i], snapSuffix))
		f, err := fs.Open(name)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		store, err := spatialdb.LoadBinary(f, kind)
		f.Close()
		if err == nil {
			return store, lsns[i], nil
		}
		// Corrupt: set it aside so the next boot does not retry it, and
		// fall back to the previous generation.
		_ = fs.Rename(name, name+".corrupt")
	}
	return nil, 0, nil
}
