# Developer entry points; CI runs the same commands.

.PHONY: build test race bench vet golden golden-update

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# bench runs the tracked benchmark harness with -benchmem and refreshes
# BENCH_PR7.json (see scripts/bench.sh for the BENCH/BENCHTIME/COUNT/OUT
# knobs and docs/API.md + DESIGN.md §5 for what the numbers mean).
bench:
	./scripts/bench.sh

# golden diffs every corpus query's result set against the recorded
# expectations in internal/golden/testdata/golden (uncached, so CI and
# local runs always re-execute); golden-update re-records them from the
# naive reference executor after an intentional semantic change.
golden:
	go test ./internal/golden/... -count=1

golden-update:
	go test ./internal/golden -run TestCorpus -update -count=1
