package query

import (
	"testing"

	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func TestRunParallelMatchesSerial(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42, Roads: 60, Towns: 24, Interior: 24})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plan.RunParallel(store, params, DefaultOptions, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := plan.RunParallel(store, params, DefaultOptions, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !equalKeys(solutionKeys(par), solutionKeys(serial)) {
			t.Fatalf("%d workers: %d solutions, serial %d",
				workers, len(par.Solutions), len(serial.Solutions))
		}
		// Work counters are schedule-independent.
		if par.Stats.Candidates != serial.Stats.Candidates ||
			par.Stats.Extended != serial.Stats.Extended ||
			par.Stats.FinalChecked != serial.Stats.FinalChecked {
			t.Errorf("%d workers: stats differ: %+v vs %+v",
				workers, par.Stats, serial.Stats)
		}
		// Canonical solution order regardless of scheduling.
		for i := range par.Solutions {
			for j, o := range par.Solutions[i].Objects {
				if o.ID != serial.Solutions[i].Objects[j].ID {
					t.Fatalf("%d workers: solution order differs at %d", workers, i)
				}
			}
		}
	}
}

func TestRunParallelGroundFailure(t *testing.T) {
	store, _ := smugglerFixture(t, spatialdb.Scan, workload.MapConfig{Seed: 1})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.GenMap(workload.MapConfig{Seed: 1})
	// Swapping area and country makes the ground constraint A ⊑ C fail.
	bad := map[string]*region.Region{"C": m.Area, "A": m.Country}
	res, err := plan.RunParallel(store, bad, DefaultOptions, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.GroundFailed || len(res.Solutions) != 0 {
		t.Errorf("ground failure not detected in parallel mode")
	}
}

// Run the race detector over concurrent execution paths (go test -race).
func TestRunParallelStressAllBackends(t *testing.T) {
	for _, kind := range []spatialdb.IndexKind{spatialdb.RTree, spatialdb.Grid, spatialdb.ZOrderIdx} {
		store, params := smugglerFixture(t, kind, workload.MapConfig{Seed: 9})
		plan, err := Compile(Smuggler(), store)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			if _, err := plan.RunParallel(store, params, DefaultOptions, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
}
