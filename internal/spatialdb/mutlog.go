package spatialdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bbox"
	"repro/internal/region"
)

// This file is the store side of the durable write path (DESIGN.md §6):
// every mutating entry point (Insert, Upsert, Remove, CreateLayer,
// BulkInsert) already funnels through one epoch-bumping critical section,
// and here each of them also emits a Mutation — a self-contained,
// replayable description of what changed, carrying the assigned object
// ids — to an optional sink. internal/wal appends the encoded records to
// an append-only log and feeds them back through ApplyMutation on
// recovery; the same record stream is the epoch-shipping feed a read
// replica would consume.

// MutOp identifies a mutation record type.
type MutOp uint8

// Mutation record types. The numeric values are the on-disk encoding;
// never renumber them.
const (
	OpCreateLayer MutOp = 1 // layer created (no objects)
	OpInsert      MutOp = 2 // one object inserted
	OpUpsert      MutOp = 3 // one object replacing any same-named one
	OpRemove      MutOp = 4 // one object removed, by id
	OpBulkInsert  MutOp = 5 // a batch of objects inserted atomically
)

// String returns the record type name.
func (op MutOp) String() string {
	switch op {
	case OpCreateLayer:
		return "create_layer"
	case OpInsert:
		return "insert"
	case OpUpsert:
		return "upsert"
	case OpRemove:
		return "remove"
	case OpBulkInsert:
		return "bulk_insert"
	default:
		return fmt.Sprintf("MutOp(%d)", uint8(op))
	}
}

// MutObject is one object of a mutation record: the id the store
// assigned, the name, and the region as its disjoint box list.
type MutObject struct {
	ID    int64
	Name  string
	Boxes []bbox.Box
}

// Mutation is one replayable store mutation. Objects is the single
// affected object for OpInsert/OpUpsert and the inserted batch (only the
// objects that were actually inserted, in batch order) for OpBulkInsert;
// RemoveID identifies the object for OpRemove.
type Mutation struct {
	Op       MutOp
	Layer    string
	Objects  []MutObject
	RemoveID int64
}

// ErrDurability wraps sink failures: the mutation was applied in memory
// but could not be durably logged. Callers should surface it as a server
// error, not a client error; the in-memory state stays ahead of the log
// until the next successful append or checkpoint.
var ErrDurability = errors.New("spatialdb: mutation not durably logged")

// ErrDegraded marks degraded read-only mode: the durable write path is
// down and being repaired in the background, so mutations are rejected —
// before touching memory — while reads keep serving. Callers should
// surface it as 503 + Retry-After, distinct from ErrDurability's 500: the
// condition is expected to clear without operator action. The sink wraps
// ErrDegraded into the error of the mutation that triggered the
// transition, so that one (which WAS applied in memory) matches both
// ErrDurability and ErrDegraded.
var ErrDegraded = errors.New("spatialdb: store is degraded to read-only")

// ErrReplica marks replica mode: the store applies its primary's record
// stream and nothing else, so local mutations are rejected before they
// touch memory. Callers should surface it as 503 plus the primary's
// address (the client's write belongs there), distinct from ErrDegraded:
// a replica is healthy, it is just not the writer.
var ErrReplica = errors.New("spatialdb: store is a read-only replica")

// SetDegraded flips the store's degraded read-only gate. The durable
// write path (internal/wal) raises it when WAL retries are exhausted and
// lowers it after its recovery probe has re-armed the log and
// reconciled state; while raised, every mutating entry point fails with
// ErrDegraded without applying anything, so no further memory/log
// divergence accrues.
func (s *Store) SetDegraded(on bool) { s.degraded.Store(on) }

// Degraded reports whether the degraded read-only gate is raised.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// SetReplica raises the replica gate: local mutating entry points fail
// with ErrReplica while shipped records keep applying through
// ApplyReplicated. internal/repl raises it on a store built from the
// primary's snapshot and lowers it on promotion.
func (s *Store) SetReplica(on bool) { s.replica.Store(on) }

// IsReplica reports whether the replica gate is raised.
func (s *Store) IsReplica() bool { return s.replica.Load() }

// admitMutationLocked is the admission gate every LOCAL mutating entry
// point passes before changing state: a replica rejects the write
// outright (it belongs on the primary), and while the store is degraded
// the mutation is rejected up front, keeping memory and log convergent
// during repair. The replicated-apply path (ApplyReplicated) must NOT
// pass this gate — shipped records keep applying in both modes. The
// caller must hold the write lock (the gate must be ordered against the
// SetDegraded(true) a failing sink call triggers under that lock).
//
//boolq:locked mu
func (s *Store) admitMutationLocked() error {
	if s.replica.Load() {
		return ErrReplica
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	return nil
}

// SetMutationSink installs fn as the store's mutation sink. fn is invoked
// inside the mutating critical section (the store's write lock), after
// the mutation has been applied and the epoch bumped, so the sink
// observes mutations in exactly apply order and may safely keep
// single-threaded state (e.g. an encode buffer). A non-nil error from fn
// is wrapped in ErrDurability and returned to the mutating caller.
// Passing nil detaches the sink.
func (s *Store) SetMutationSink(fn func(*Mutation) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = fn
}

// logMutation hands m to the sink, if any. The caller must hold the
// write lock.
//
//boolq:locked mu
func (s *Store) logMutation(m *Mutation) error {
	if s.sink == nil {
		return nil
	}
	if err := s.sink(m); err != nil {
		// %w twice: a sink failure that degraded the store must keep
		// matching ErrDegraded through the ErrDurability wrap.
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// mutObject converts a stored object to its record form.
func mutObject(o Object) MutObject {
	return MutObject{ID: o.ID, Name: o.Name, Boxes: o.Reg.Boxes()}
}

// ---- replay ----

// ApplyMutation applies a previously logged mutation to the store without
// re-logging it: the recovery path (internal/wal) replays the WAL tail
// through it, and a replica would apply its leader's record stream the
// same way. Object ids are restored exactly as recorded and the id
// counter advances past them, so ids stay stable across restarts and
// later records (OpRemove, OpUpsert) resolve against the same objects
// they were logged against.
//
// Replay is deterministic: applied to the same store state the mutation
// was logged against, it reproduces the original effect. A mutation that
// does not fit the store (wrong dimensionality, duplicate id, missing
// remove target) reports an error and leaves the store unchanged.
func (s *Store) ApplyMutation(m *Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyMutationLocked(m)
}

// ApplyReplicated applies one record of the primary's WAL stream to a
// replica store. It is the same replay as ApplyMutation under the same
// write lock, as a separate entry point because its admission rules are
// inverted: it bypasses admitMutationLocked — the gate exists to turn
// LOCAL writes away, while shipped records must keep applying in replica
// mode — and it must never re-log, because the record is already durable
// on the primary and the replica owns no WAL.
//
//boolq:mutation replica
func (s *Store) ApplyReplicated(m *Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyMutationLocked(m)
}

// applyMutationLocked is the shared replay body. The caller must hold
// the write lock.
//
//boolq:locked mu
func (s *Store) applyMutationLocked(m *Mutation) error {
	switch m.Op {
	case OpCreateLayer:
		if _, ok := s.layers[m.Layer]; !ok {
			s.ensureLayerLocked(m.Layer)
			s.epoch.Add(1)
		}
		return nil
	case OpInsert, OpUpsert, OpBulkInsert:
		objs := make([]Object, 0, len(m.Objects))
		for _, mo := range m.Objects {
			o, err := s.restoredObject(mo)
			if err != nil {
				return fmt.Errorf("spatialdb: replay %s %q/%q: %w", m.Op, m.Layer, mo.Name, err)
			}
			objs = append(objs, o)
		}
		l := s.ensureLayerLocked(m.Layer)
		if m.Op == OpUpsert {
			// The logged upsert replaced whatever object held the name at
			// that point; replaying against the same prefix state finds the
			// same object (or none, when the upsert was a plain insert).
			for _, o := range objs {
				if prev, ok := l.GetByName(o.Name); ok {
					if err := l.remove(prev.ID); err != nil {
						return fmt.Errorf("spatialdb: replay upsert %q/%q: %w", m.Layer, o.Name, err)
					}
				}
			}
		}
		if _, err := l.bulkInsert(objs, true); err != nil {
			return fmt.Errorf("spatialdb: replay %s into %q: %w", m.Op, m.Layer, err)
		}
		for _, o := range objs {
			if o.ID > s.nextID {
				s.nextID = o.ID
			}
		}
		s.epoch.Add(1)
		return nil
	case OpRemove:
		l, ok := s.layers[m.Layer]
		if !ok {
			return fmt.Errorf("spatialdb: replay remove: no layer %q", m.Layer)
		}
		if err := l.remove(m.RemoveID); err != nil {
			return fmt.Errorf("spatialdb: replay remove: %w", err)
		}
		if m.RemoveID > s.nextID {
			s.nextID = m.RemoveID
		}
		s.epoch.Add(1)
		return nil
	default:
		return fmt.Errorf("spatialdb: replay: unknown mutation op %d", m.Op)
	}
}

// restoredObject validates a record object against the store and rebuilds
// it. The caller must hold the write lock.
func (s *Store) restoredObject(mo MutObject) (Object, error) {
	if mo.ID <= 0 {
		return Object{}, fmt.Errorf("invalid object id %d", mo.ID)
	}
	for _, b := range mo.Boxes {
		if b.K != s.universe.K {
			return Object{}, fmt.Errorf("box dimensionality %d in a %d-dimensional store", b.K, s.universe.K)
		}
	}
	reg := region.FromBoxes(s.universe.K, mo.Boxes...)
	if reg.IsEmpty() {
		return Object{}, errors.New("empty region")
	}
	return Object{ID: mo.ID, Name: mo.Name, Reg: reg, Box: reg.BoundingBox()}, nil
}

// NextID returns the id the store would assign to the next inserted
// object plus nothing — i.e. the highest id handed out so far. Snapshots
// persist it so ids never repeat across restarts.
func (s *Store) NextID() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// ---- binary record codec ----
//
// A mutation encodes as:
//
//	op        uint8
//	layer     string        (uvarint length + bytes)
//	payload   op-dependent:
//	  create_layer              (nothing)
//	  insert | upsert           one object
//	  bulk_insert               uvarint count, then objects
//	  remove                    uvarint id
//
// and an object as:
//
//	id        uvarint
//	name      string
//	boxes     uvarint count, then per box:
//	            k     uvarint
//	            lo,hi 2·k little-endian float64 bit patterns
//
// The framing (length prefix, CRC) is the WAL's job; this codec only
// defines the payload. Decode rejects trailing bytes, so a corrupted
// record cannot silently drop its tail.

// AppendMutation appends the binary encoding of m to dst and returns the
// extended slice.
func AppendMutation(dst []byte, m *Mutation) []byte {
	dst = append(dst, byte(m.Op))
	dst = appendString(dst, m.Layer)
	switch m.Op {
	case OpCreateLayer:
	case OpInsert, OpUpsert:
		dst = appendMutObject(dst, m.Objects[0])
	case OpBulkInsert:
		dst = binary.AppendUvarint(dst, uint64(len(m.Objects)))
		for _, mo := range m.Objects {
			dst = appendMutObject(dst, mo)
		}
	case OpRemove:
		dst = binary.AppendUvarint(dst, uint64(m.RemoveID))
	}
	return dst
}

// DecodeMutation parses one encoded mutation. It is strict: unknown ops,
// malformed varints, impossible counts and trailing bytes are all errors
// (the WAL's CRC has already vouched for the bytes; a decode failure
// means a format bug or version skew, not disk corruption).
func DecodeMutation(data []byte) (*Mutation, error) {
	d := &mutDecoder{buf: data}
	m := &Mutation{}
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	m.Op = MutOp(op)
	if m.Layer, err = d.string(); err != nil {
		return nil, err
	}
	switch m.Op {
	case OpCreateLayer:
	case OpInsert, OpUpsert:
		mo, err := d.object()
		if err != nil {
			return nil, err
		}
		m.Objects = []MutObject{mo}
	case OpBulkInsert:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.buf)) { // each object takes ≥ 1 byte
			return nil, fmt.Errorf("spatialdb: mutation record: impossible object count %d", n)
		}
		m.Objects = make([]MutObject, 0, n)
		for i := uint64(0); i < n; i++ {
			mo, err := d.object()
			if err != nil {
				return nil, err
			}
			m.Objects = append(m.Objects, mo)
		}
	case OpRemove:
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		m.RemoveID = int64(id)
	default:
		return nil, fmt.Errorf("spatialdb: mutation record: unknown op %d", op)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("spatialdb: mutation record: %d trailing bytes", len(d.buf))
	}
	return m, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendMutObject(dst []byte, mo MutObject) []byte {
	dst = binary.AppendUvarint(dst, uint64(mo.ID))
	dst = appendString(dst, mo.Name)
	dst = binary.AppendUvarint(dst, uint64(len(mo.Boxes)))
	for _, b := range mo.Boxes {
		dst = binary.AppendUvarint(dst, uint64(b.K))
		for _, v := range b.Lo {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		for _, v := range b.Hi {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// mutDecoder is a cursor over an encoded record.
type mutDecoder struct{ buf []byte }

var errShortRecord = errors.New("spatialdb: mutation record: truncated")

func (d *mutDecoder) byte() (byte, error) {
	if len(d.buf) < 1 {
		return 0, errShortRecord
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *mutDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errShortRecord
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *mutDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)) {
		return "", errShortRecord
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *mutDecoder) object() (MutObject, error) {
	var mo MutObject
	id, err := d.uvarint()
	if err != nil {
		return mo, err
	}
	mo.ID = int64(id)
	if mo.Name, err = d.string(); err != nil {
		return mo, err
	}
	nb, err := d.uvarint()
	if err != nil {
		return mo, err
	}
	if nb > uint64(len(d.buf)) {
		return mo, fmt.Errorf("spatialdb: mutation record: impossible box count %d", nb)
	}
	mo.Boxes = make([]bbox.Box, 0, nb)
	for i := uint64(0); i < nb; i++ {
		k, err := d.uvarint()
		if err != nil {
			return mo, err
		}
		if need := 16 * k; need > uint64(len(d.buf)) {
			return mo, errShortRecord
		}
		lo := make([]float64, k)
		hi := make([]float64, k)
		for j := range lo {
			lo[j] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
			d.buf = d.buf[8:]
		}
		for j := range hi {
			hi[j] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
			d.buf = d.buf[8:]
		}
		b, err := bbox.Make(lo, hi)
		if err != nil {
			return mo, fmt.Errorf("spatialdb: mutation record: %w", err)
		}
		mo.Boxes = append(mo.Boxes, b)
	}
	return mo, nil
}
