package experiments

import (
	"fmt"
	"time"

	"repro/internal/bbox"
	"repro/internal/bcf"
	"repro/internal/constraint"
	"repro/internal/formula"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
	"repro/internal/workload"
)

// E1Smuggler reproduces the §2 worked example end to end: the compiled
// plan's shape next to the paper's derivation, and the execution outcome
// of every optimizer configuration against the naive baseline.
func E1Smuggler() Table {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}

	q := query.Smuggler()
	plan, err := query.Compile(q, store)
	if err != nil {
		panic(err)
	}

	t := Table{
		ID:    "E1",
		Title: "smuggler query: plan shape and execution",
		Paper: "triangular form + bbox system of §2; optimized evaluation prunes early",
		Header: []string{"configuration", "solutions", "candidates", "exact-rejects",
			"db-scanned", "time-ms"},
	}
	run := func(name string, f func() (*query.Result, error)) *query.Result {
		start := time.Now()
		res, err := f()
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			name, itoa(res.Stats.Solutions), itoa(res.Stats.Candidates),
			itoa(res.Stats.ExactRejects), itoa(res.Stats.DB.Scanned),
			msString(time.Since(start)),
		})
		return res
	}
	naive := run("naive nested loop", func() (*query.Result, error) {
		return query.RunNaive(q, store, params)
	})
	run("triangular, no index", func() (*query.Result, error) {
		return plan.Run(store, params, query.Options{UseIndex: false, UseExact: true})
	})
	run("bbox index only", func() (*query.Result, error) {
		return plan.Run(store, params, query.Options{UseIndex: true, UseExact: false})
	})
	full := run("full pipeline", func() (*query.Result, error) {
		return plan.Run(store, params, query.DefaultOptions)
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("plan (cf. paper's bbox system): R upper bound = %s, B upper bound = %s",
			plan.Steps[1].Upper.StringNamed(q.Sys.Vars.Name),
			plan.Steps[2].Upper.StringNamed(q.Sys.Vars.Name)),
		fmt.Sprintf("candidate reduction naive→full: %dx",
			naive.Stats.Candidates/maxInt(full.Stats.Candidates, 1)),
	)
	return t
}

// E2Projection reproduces §3 Example 1: proj({x∧y≠0, ¬x∧y≠0}, x) = (y≠0).
func E2Projection() Table {
	x, y := formula.Var(0), formula.Var(1)
	n := constraint.Normal{
		F: formula.Zero(),
		G: []*formula.Formula{
			formula.And(x, y),
			formula.And(formula.Not(x), y),
		},
	}
	p, err := triangular.Proj(n, 0)
	if err != nil {
		panic(err)
	}
	name := func(v int) string { return []string{"x", "y"}[v] }
	t := Table{
		ID:     "E2",
		Title:  "projection of {x&y != 0, ~x&y != 0} on x",
		Paper:  "proj(S,x) = (y != 0), the best approximation of ∃x.S (Example 1)",
		Header: []string{"component", "computed", "matches paper"},
	}
	t.Rows = append(t.Rows, []string{"equation", p.F.StringNamed(name) + " = 0",
		fmt.Sprintf("%v", p.F.IsConst(false))})
	for _, g := range p.G {
		t.Rows = append(t.Rows, []string{"disequation", g.StringNamed(name) + " != 0",
			fmt.Sprintf("%v", formula.Equivalent(g, y))})
	}
	return t
}

// E3BCF reproduces §4 Example 2: BCF(~x&y ∨ x&y ∨ x&z&~w) = y ∨ x&z&~w.
func E3BCF() Table {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	f := formula.OrN(
		formula.And(formula.Not(x), y),
		formula.And(x, y),
		formula.AndN(x, z, formula.Not(w)),
	)
	s, err := bcf.BCF(f)
	if err != nil {
		panic(err)
	}
	name := func(v int) string { return []string{"x", "y", "z", "w"}[v] }
	t := Table{
		ID:     "E3",
		Title:  "Blake canonical form by consensus/absorption",
		Paper:  "BCF(f) = y ∨ x&z&~w (Example 2)",
		Header: []string{"input", "BCF term"},
	}
	for i, tm := range s {
		in := ""
		if i == 0 {
			in = f.StringNamed(name)
		}
		t.Rows = append(t.Rows, []string{in, tm.StringNamed(name)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("equivalent to input: %v",
		formula.Equivalent(s.FormulaOf(), f)))
	return t
}

// E4Bounds reproduces §4 Example 3: L_f = ⌈y⌉ and U_f = ⌈y⌉ ⊔ (⌈x⌉⊓⌈z⌉)
// for the Example-2 function.
func E4Bounds() Table {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	f := formula.OrN(
		formula.And(formula.Not(x), y),
		formula.And(x, y),
		formula.AndN(x, z, formula.Not(w)),
	)
	a, err := bbox.Approximate(f)
	if err != nil {
		panic(err)
	}
	name := func(v int) string { return []string{"x", "y", "z", "w"}[v] }
	t := Table{
		ID:     "E4",
		Title:  "optimal bounding-box approximations (Algorithm 2)",
		Paper:  "L_f = [y]; U_f = [y] v ([x] ^ [z]) (Example 3)",
		Header: []string{"bound", "computed", "matches paper"},
	}
	wantU := bbox.JoinFunc(bbox.VarFunc(1), bbox.MeetFunc(bbox.VarFunc(0), bbox.VarFunc(2)))
	t.Rows = append(t.Rows,
		[]string{"L_f", a.L.StringNamed(name), fmt.Sprintf("%v", a.L.Same(bbox.VarFunc(1)))},
		[]string{"U_f", a.U.StringNamed(name), fmt.Sprintf("%v", a.U.Same(wantU))},
	)
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
