package spatialdb

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bbox"
	"repro/internal/stats"
)

// The JSON snapshot format: a versioned document with the universe and
// every layer's objects as disjoint box lists. It is the debug and
// interchange codec — human-readable and diff-able; the production write
// path persists the binary codec in binsnap.go instead. Indexes are
// rebuilt on load (they are derived state), so snapshots are portable
// across index backends.
//
// Version 2 carries object ids and the store's id counter, so a reloaded
// store resolves WAL records (Remove/Upsert by id) exactly as the saver
// did. Version 1 documents (no ids) still load, with ids assigned afresh.
// Version 3 adds the per-layer planner statistics (internal/stats); a
// loader installs them when their geometry matches what it would compute
// itself, and otherwise keeps the statistics it recomputed during the
// restore, so older documents and parameter changes degrade gracefully.

type snapshot struct {
	Version  int         `json:"version"`
	NextID   int64       `json:"next_id,omitempty"` // v2: highest id handed out
	Universe snapBox     `json:"universe"`
	Layers   []snapLayer `json:"layers"`
}

type snapLayer struct {
	Name    string          `json:"name"`
	Objects []snapObject    `json:"objects"`
	Stats   *stats.Snapshot `json:"stats,omitempty"` // v3: planner statistics
}

type snapObject struct {
	ID    int64     `json:"id,omitempty"` // v2: stable object id
	Name  string    `json:"name,omitempty"`
	Boxes []snapBox `json:"boxes"`
}

type snapBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

const snapshotVersion = 3

// Save writes the store's contents as JSON (format version 3: object ids,
// the id counter and the per-layer planner statistics are preserved
// across a reload). Save holds the store's read guard, so it snapshots a
// consistent state even while writers are active.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{
		Version:  snapshotVersion,
		NextID:   s.nextID,
		Universe: toSnapBox(s.universe),
	}
	for _, name := range s.names {
		layer := s.layers[name]
		sl := snapLayer{Name: name}
		for _, o := range layer.Objects() {
			so := snapObject{ID: o.ID, Name: o.Name}
			for _, b := range o.Reg.Boxes() {
				so.Boxes = append(so.Boxes, toSnapBox(b))
			}
			sl.Objects = append(sl.Objects, so)
		}
		st := layer.data.Snapshot()
		sl.Stats = &st
		snap.Layers = append(snap.Layers, sl)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load reads a snapshot written by Save into a fresh store with the given
// index backend. Version 2 snapshots restore object ids and the id
// counter; version 1 snapshots (written before ids were persisted) load
// with ids assigned afresh in insertion order.
func Load(r io.Reader, kind IndexKind) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("spatialdb: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("spatialdb: unsupported snapshot version %d", snap.Version)
	}
	universe, err := fromSnapBox(snap.Universe)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: universe: %w", err)
	}
	if universe.IsEmpty() {
		return nil, fmt.Errorf("spatialdb: snapshot has an empty universe")
	}
	store := NewStore(universe, kind)
	seen := make(map[int64]bool)
	for _, sl := range snap.Layers {
		objs := make([]Object, 0, len(sl.Objects))
		for _, so := range sl.Objects {
			boxes := make([]bbox.Box, 0, len(so.Boxes))
			for _, sb := range so.Boxes {
				b, err := fromSnapBox(sb)
				if err != nil {
					return nil, fmt.Errorf("spatialdb: layer %q object %q: %w", sl.Name, so.Name, err)
				}
				boxes = append(boxes, b)
			}
			id := so.ID
			if snap.Version == 1 {
				// v1 carries no ids; assign the next free one.
				id = store.NextID() + int64(len(objs)) + 1
			}
			o, err := restoredSnapObject(store, id, so.Name, boxes, seen)
			if err != nil {
				return nil, fmt.Errorf("spatialdb: layer %q object %q: %w", sl.Name, so.Name, err)
			}
			objs = append(objs, o)
		}
		if err := store.restoreLayer(sl.Name, objs); err != nil {
			return nil, fmt.Errorf("spatialdb: layer %q: %w", sl.Name, err)
		}
		if sl.Stats != nil {
			store.restoreLayerStats(sl.Name, *sl.Stats)
		}
	}
	store.restoreNextID(snap.NextID)
	return store, nil
}

// restoreLayerStats installs recorded planner statistics into a restored
// layer. The restore re-ingested every object through the normal commit
// path, so the layer already holds freshly recomputed statistics; the
// recorded block replaces them only when its geometry matches (same
// spans, bucket counts and grid shape), keeping snapshots portable
// across statistics-parameter changes.
func (s *Store) restoreLayerStats(name string, snap stats.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.layers[name]; ok {
		l.data.Restore(snap)
	}
}

func toSnapBox(b bbox.Box) snapBox {
	return snapBox{
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

func fromSnapBox(sb snapBox) (bbox.Box, error) {
	return bbox.Make(sb.Lo, sb.Hi)
}
