package bbox

import (
	"math"
	"testing"
	"testing/quick"
)

func spec2(lower, upper Box, overlaps ...Box) RangeSpec {
	return RangeSpec{K: 2, Lower: lower, Upper: upper, Overlaps: overlaps}
}

func TestRangeSpecMatches(t *testing.T) {
	s := spec2(Rect(4, 4, 5, 5), Rect(0, 0, 10, 10), Rect(8, 0, 12, 2))
	good := Rect(3, 0, 9, 6) // contains lower, inside upper, overlaps witness
	if !s.Matches(good) {
		t.Errorf("good box rejected")
	}
	if s.Matches(Rect(4, 4, 6, 6)) {
		t.Errorf("box missing the overlap witness accepted")
	}
	if s.Matches(Rect(3, 0, 11, 6)) {
		t.Errorf("box outside upper accepted")
	}
	if s.Matches(Rect(4.5, 4.5, 9, 6)) {
		t.Errorf("box not containing lower accepted")
	}
}

func TestAllSpecMatchesEverything(t *testing.T) {
	s := AllSpec(2)
	for _, b := range []Box{Rect(0, 0, 1, 1), Rect(-100, -100, 100, 100), Univ(2)} {
		if !s.Matches(b) {
			t.Errorf("AllSpec rejected %v", b)
		}
	}
	if s.Unsatisfiable() {
		t.Errorf("AllSpec unsatisfiable")
	}
}

func TestRangeSpecUnsatisfiable(t *testing.T) {
	// Lower outside upper.
	s := spec2(Rect(20, 20, 21, 21), Rect(0, 0, 10, 10))
	if !s.Unsatisfiable() {
		t.Errorf("lower⋢upper not detected")
	}
	// Empty overlap witness.
	s = spec2(Empty(2), Univ(2), Empty(2))
	if !s.Unsatisfiable() {
		t.Errorf("empty overlap witness not detected")
	}
	// Overlap witness outside upper bound.
	s = spec2(Empty(2), Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
	if !s.Unsatisfiable() {
		t.Errorf("unreachable overlap witness not detected")
	}
	// Satisfiable case.
	s = spec2(Rect(1, 1, 2, 2), Rect(0, 0, 10, 10), Rect(0, 0, 3, 3))
	if s.Unsatisfiable() {
		t.Errorf("satisfiable spec reported unsatisfiable")
	}
}

func TestPointTransform(t *testing.T) {
	b := Rect(1, 2, 3, 4)
	p := PointTransform(b)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PointTransform = %v", p)
		}
	}
}

// TestE5Figure3 verifies the Figure 3 reduction: a box matches the
// RangeSpec iff its 2k-dim point lies in the compiled PointQuery box.
func TestE5Figure3(t *testing.T) {
	s := spec2(Rect(4, 4, 5, 5), Rect(0, 0, 10, 10), Rect(8, 0, 12, 2))
	q, ok := s.PointQuery()
	if !ok {
		t.Fatalf("PointQuery unsatisfiable for a satisfiable spec")
	}
	if q.K != 4 {
		t.Fatalf("PointQuery dimension = %d", q.K)
	}
	boxes := []Box{
		Rect(3, 0, 9, 6),
		Rect(4, 4, 6, 6),
		Rect(3, 0, 11, 6),
		Rect(4.5, 4.5, 9, 6),
		Rect(0, 0, 10, 10),
		Rect(4, 0, 8, 5),
		Rect(2, 1, 8.5, 5.5),
	}
	for _, b := range boxes {
		want := s.Matches(b)
		got := q.ContainsPoint(PointTransform(b))
		if got != want {
			t.Errorf("box %v: point-in-query %v, direct match %v", b, got, want)
		}
	}
}

// Property version of Figure 3 over random boxes and specs.
func TestQuickFigure3Equivalence(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 50)
	}
	mk := func(a, b, c, d float64) Box {
		a, b, c, d = clamp(a), clamp(b), clamp(c), clamp(d)
		return Rect(math.Min(a, b), math.Min(c, d), math.Max(a, b), math.Max(c, d))
	}
	check := func(v [16]float64) bool {
		lower := mk(v[0], v[1], v[2], v[3])
		upper := mk(v[4], v[5], v[6], v[7]).Join(lower) // ensure lower ⊑ upper
		witness := mk(v[8], v[9], v[10], v[11])
		x := mk(v[12], v[13], v[14], v[15])
		s := spec2(lower, upper, witness)
		q, ok := s.PointQuery()
		if !ok {
			// Statically unsatisfiable: the direct check must agree.
			return !s.Matches(x)
		}
		return q.ContainsPoint(PointTransform(x)) == s.Matches(x)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPointQueryWithNoConstraints(t *testing.T) {
	q, ok := AllSpec(2).PointQuery()
	if !ok {
		t.Fatalf("AllSpec point query unsatisfiable")
	}
	if !q.ContainsPoint(PointTransform(Rect(-5, -5, 5, 5))) {
		t.Errorf("unconstrained query rejects a box")
	}
}

func TestPointQueryEmptyUpper(t *testing.T) {
	s := RangeSpec{K: 2, Lower: Empty(2), Upper: Empty(2)}
	if _, ok := s.PointQuery(); ok {
		t.Errorf("empty upper bound should have no point query")
	}
}
