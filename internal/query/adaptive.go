package query

import (
	"math"
	"strings"
	"sync"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// Statistics-driven adaptive planning. Where SuggestOrder ranks retrieval
// orders by layer size alone and SuggestOrderSampled probes the real
// indexes, CompileAdaptive costs every order against the per-layer
// statistics maintained at ingest (internal/stats): each candidate order
// is compiled, its per-step range-query templates are evaluated over a
// representative environment, and the histograms turn each template into
// an expected fanout. The cost model is the one SuggestOrderSampled uses —
// the expected number of candidates the executor visits,
//
//	cost(order) = f1 + f1·f2 + f1·f2·f3 + …
//
// — but no index is touched: estimation is pure arithmetic over the
// histograms, so it is safe and cheap to run per query. Observed run
// costs, when a Tuner holds a fresh observation for an order, override the
// estimate, so repeated queries converge on measured rather than modeled
// behavior. Finally, when the store exposes alternate index backends, the
// planner routes individual steps to the backend the estimate favors
// (scan for unselective steps, a structured index for selective ones on a
// scan-primary store).

// maxAdaptivePermute bounds the permutation enumeration; above it the
// planner falls back to the static greedy order (matching
// SuggestOrderSampled's bound).
const maxAdaptivePermute = 5

// DefaultStaleEpochs is how many store epochs (mutations) a Tuner
// observation stays trustworthy. Past the bound the data may have shifted
// under the measured cost, and the planner reverts to the histogram
// estimate until a fresh run is observed.
const DefaultStaleEpochs = 512

// Backend-override thresholds, as estimated match fractions of the
// layer's population. A range query expected to match most of a layer
// gains nothing from index traversal — a scan visits the same objects
// without the structural overhead. A highly selective query on a
// scan-primary layer is the mirror case: a structured alternate prunes
// where the scan cannot.
const (
	scanFraction = 0.3
	altFraction  = 0.02
)

// Observation is one measured execution cost for a (query, order) pair.
type Observation struct {
	Epoch      uint64 // store epoch when the run was observed
	Candidates int    // candidates the executor visited
	Solutions  int    // solutions it emitted
}

// Tuner accumulates observed run costs keyed by query and retrieval
// order, the feedback half of the adaptive planner. It is safe for
// concurrent use; the query-key population is bounded FIFO so a stream of
// distinct queries cannot grow it without bound.
type Tuner struct {
	mu    sync.Mutex
	cap   int
	keys  []string // insertion order, for FIFO eviction
	byKey map[string]map[string]Observation
}

// NewTuner returns a tuner tracking at most capacity distinct query keys
// (≤ 0 selects a default of 256).
func NewTuner(capacity int) *Tuner {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tuner{cap: capacity, byKey: make(map[string]map[string]Observation)}
}

// Observe records one finished run's cost for the query key under the
// order it executed with, reporting whether it was recorded. Truncated,
// cancelled and ground-failed runs are skipped: their candidate counts
// measure the interruption, not the order.
func (t *Tuner) Observe(key, order string, epoch uint64, st Stats) bool {
	if key == "" || order == "" || st.Truncated || st.Cancelled || st.GroundFailed {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.byKey[key]
	if !ok {
		if len(t.keys) >= t.cap {
			delete(t.byKey, t.keys[0])
			t.keys = t.keys[1:]
		}
		m = make(map[string]Observation)
		t.byKey[key] = m
		t.keys = append(t.keys, key)
	}
	m[order] = Observation{Epoch: epoch, Candidates: st.Candidates, Solutions: st.Solutions}
	return true
}

// Lookup returns a copy of the observations recorded for the query key
// (nil when none).
func (t *Tuner) Lookup(key string) map[string]Observation {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.byKey[key]
	if !ok {
		return nil
	}
	out := make(map[string]Observation, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Len reports how many query keys currently hold observations.
func (t *Tuner) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byKey)
}

// AdaptiveOptions configures CompileAdaptive. The zero value is valid:
// orders are ranked by histogram estimate alone, with backend overrides
// enabled.
type AdaptiveOptions struct {
	// Params are the query's bound parameter regions, when the caller has
	// them at plan time. Estimation uses their bounding boxes; parameters
	// not present plan against the universe box (sound — the box operators
	// are monotone — just less selective).
	Params map[string]*region.Region

	// Tuner and TunerKey connect the feedback loop: orders with a fresh
	// observation under TunerKey are costed by their measured candidate
	// count instead of the estimate.
	Tuner    *Tuner
	TunerKey string

	// Epoch is the store epoch to judge observation freshness against
	// (0 reads the store's current epoch). StaleEpochs overrides
	// DefaultStaleEpochs when positive.
	Epoch       uint64
	StaleEpochs uint64

	// NoBackendPick disables the per-step backend overrides, leaving
	// every step on its layer's primary index (for A/B comparisons).
	NoBackendPick bool
}

// AdaptiveInfo records how CompileAdaptive chose the plan it returned.
type AdaptiveInfo struct {
	Order            string  // chosen retrieval order, "T→R→B"
	Reordered        bool    // the chosen order differs from the query's
	EstCost          float64 // cost of the chosen order under the model used
	FeedbackUsed     int     // orders costed from a fresh Tuner observation
	BackendOverrides int     // steps routed to a non-primary backend
	Static           bool    // fell back to the static heuristic order
}

// outPositions maps the reordered query's step index back to the
// original query's binding position (by variable name, which is unique
// per binding).
func outPositions(orig, reordered *Query) []int {
	pos := make(map[string]int, len(orig.Retrieve))
	for i, b := range orig.Retrieve {
		pos[b.Var] = i
	}
	out := make([]int, len(reordered.Retrieve))
	for j, b := range reordered.Retrieve {
		out[j] = pos[b.Var]
	}
	return out
}

// orderKey renders a query's retrieval order as "T→R→B".
func orderKey(q *Query) string {
	names := make([]string, len(q.Retrieve))
	for i, b := range q.Retrieve {
		names[i] = b.Var
	}
	return strings.Join(names, "→")
}

// CompileAdaptive compiles the query with the retrieval order (and, per
// step, the index backend) the layer statistics favor. Results are
// identical to Compile for any order — only cost changes. Queries with
// more than maxAdaptivePermute retrieval variables fall back to the
// static SuggestOrder ranking; everything else enumerates the n! ≤ 120
// orders, compiles each (per-order compile failures are skipped) and
// keeps the cheapest under the histogram estimate, with fresh Tuner
// observations overriding estimates where available. Ties go to the
// earliest-enumerated order, so the query's own order wins when nothing
// separates the candidates.
func CompileAdaptive(q *Query, store *spatialdb.Store, opts AdaptiveOptions) (*Plan, error) {
	n := len(q.Retrieve)
	if n > maxAdaptivePermute {
		plan, err := Compile(SuggestOrder(q, store), store)
		if err != nil {
			return nil, err
		}
		plan.outPos = outPositions(q, plan.Query)
		plan.Adaptive = &AdaptiveInfo{
			Order:     plan.OrderKey(),
			Reordered: plan.OrderKey() != orderKey(q),
			Static:    true,
		}
		if !opts.NoBackendPick {
			plan.Adaptive.BackendOverrides = chooseBackends(plan, store, paramBoxes(q, store, opts.Params))
		}
		return plan, nil
	}

	epoch := opts.Epoch
	if epoch == 0 {
		epoch = store.Epoch()
	}
	stale := opts.StaleEpochs
	if stale == 0 {
		stale = DefaultStaleEpochs
	}
	var observed map[string]Observation
	if opts.Tuner != nil && opts.TunerKey != "" {
		observed = opts.Tuner.Lookup(opts.TunerKey)
	}

	paramBox := paramBoxes(q, store, opts.Params)
	var (
		best         *Plan
		bestCost     = math.Inf(1)
		feedbackUsed int
		firstErr     error
	)
	// Compile never runs under the store's read guard here: it re-enters
	// RLock through validate, and a recursive RLock deadlocks against a
	// pending writer. Estimation takes the guard internally per candidate.
	for _, perm := range permutations(n) {
		cand := &Query{Sys: q.Sys}
		for _, i := range perm {
			cand.Retrieve = append(cand.Retrieve, q.Retrieve[i])
		}
		plan, err := Compile(cand, store)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Step j retrieves the original query's binding perm[j]; emit
		// solutions back in the caller's order.
		plan.outPos = append([]int(nil), perm...)
		cost, _ := estimatePlanCost(plan, store, paramBox)
		if o, ok := observed[plan.OrderKey()]; ok && epoch >= o.Epoch && epoch-o.Epoch <= stale {
			cost = float64(o.Candidates)
			feedbackUsed++
		}
		if cost < bestCost {
			best, bestCost = plan, cost
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return Compile(q, store) // n == 0: surface Compile's own diagnostics
	}
	best.Adaptive = &AdaptiveInfo{
		Order:        best.OrderKey(),
		Reordered:    best.OrderKey() != orderKey(q),
		EstCost:      bestCost,
		FeedbackUsed: feedbackUsed,
	}
	if !opts.NoBackendPick {
		best.Adaptive.BackendOverrides = chooseBackends(best, store, paramBox)
	}
	return best, nil
}

// paramBoxes builds the representative environment estimation evaluates
// box programs over: every parameter is bound to its region's bounding
// box (clipped to the universe), or to the universe box when the caller
// did not supply it. Retrieval variables start unbound; estimatePlanCost
// fills them in step order with representative boxes.
func paramBoxes(q *Query, store *spatialdb.Store, params map[string]*region.Region) []bbox.Box {
	envBox := make([]bbox.Box, q.Sys.Vars.Len())
	uni := store.Universe()
	for _, v := range paramIDs(q) {
		envBox[v] = uni
		name := q.Sys.Vars.Name(v)
		if r, ok := params[name]; ok && r != nil && !r.IsEmpty() {
			if b := r.BoundingBox().Meet(uni); !b.IsEmpty() {
				envBox[v] = b
			}
		}
	}
	return envBox
}

// estimatePlanCost walks the plan's steps once, instantiating each range
// template over the representative environment and asking the layer's
// histograms for the expected match count. Returns the cumulative-width
// cost and the per-step estimated match fractions (used by
// chooseBackends). A missing layer costs +inf — it can only fail at run
// time, so no order that reaches it early should ever win.
func estimatePlanCost(plan *Plan, store *spatialdb.Store, paramBox []bbox.Box) (float64, []float64) {
	store.RLock()
	defer store.RUnlock()
	return estimateStepsLocked(plan, store, paramBox, nil)
}

// estimateStepsLocked is the shared walk under the store's read guard.
// When pick is non-nil it is called per step with the estimated match
// fraction and the layer, and may set a backend override on the step.
func estimateStepsLocked(plan *Plan, store *spatialdb.Store, paramBox []bbox.Box, pick func(sp *StepBoxPlan, l *spatialdb.Layer, frac float64)) (float64, []float64) {
	k := store.K()
	envBox := append([]bbox.Box(nil), paramBox...)
	fracs := make([]float64, len(plan.Steps))
	cost, width := 0.0, 1.0
	for i := range plan.Steps {
		sp := &plan.Steps[i]
		l, ok := store.LayerIfExists(sp.Layer)
		if !ok {
			return math.Inf(1), fracs
		}
		ds := l.DataStats()
		count := float64(ds.Count())
		spec, satisfiable := sp.Spec(k, envBox)
		if !satisfiable {
			return cost, fracs // statically dead prefix: deeper steps never run
		}
		est := ds.EstimateSpec(spec)
		if count > 0 {
			fracs[i] = est / count
		}
		if pick != nil {
			pick(sp, l, fracs[i])
		}
		if est == 0 {
			return cost, fracs // estimated dead end: deeper steps cost ~nothing
		}
		width *= est
		cost += width

		// Representative box for this variable at deeper steps: the mean
		// stored box, narrowed to the step's upper bound when they meet
		// (survivors of the range query are contained in Upper).
		rep := ds.MeanBox()
		if !spec.Upper.IsEmpty() && !spec.Upper.IsUniv() {
			if m := rep.Meet(spec.Upper); !m.IsEmpty() {
				rep = m
			} else {
				rep = spec.Upper
			}
		}
		envBox[sp.Var] = rep
	}
	return cost, fracs
}

// chooseBackends routes individual steps of the chosen plan to the index
// backend the estimate favors, returning how many steps were overridden.
// Overrides only ever select from the layer's live backends; an override
// that turns out unavailable at run time falls back to the primary inside
// the layer, so a stale choice degrades cost, never correctness.
func chooseBackends(plan *Plan, store *spatialdb.Store, paramBox []bbox.Box) int {
	overrides := 0
	store.RLock()
	defer store.RUnlock()
	estimateStepsLocked(plan, store, paramBox, func(sp *StepBoxPlan, l *spatialdb.Layer, frac float64) {
		if l.DataStats().Count() == 0 {
			return
		}
		primary := l.Kind()
		choice := primary
		if primary != spatialdb.Scan && frac >= scanFraction {
			choice = spatialdb.Scan
		} else if primary == spatialdb.Scan && frac <= altFraction {
			for _, kind := range l.AvailableKinds() {
				if kind != spatialdb.Scan {
					choice = kind
					break
				}
			}
		}
		if choice != primary {
			sp.Backend = choice
			sp.HasBackend = true
			overrides++
		}
	})
	return overrides
}
