package formula

import "fmt"

// Vars is a symbol table mapping variable names to the integer indices used
// inside formulas. A single Vars instance is shared by a constraint system,
// its compiled plans and its runtime environments, so an index means the
// same variable everywhere.
type Vars struct {
	names []string
	index map[string]int
}

// NewVars returns an empty symbol table.
func NewVars() *Vars {
	return &Vars{index: map[string]int{}}
}

// ID returns the index of name, allocating a fresh one on first use.
// At most 64 variables are supported (term bitmask width).
func (vs *Vars) ID(name string) int {
	if i, ok := vs.index[name]; ok {
		return i
	}
	i := len(vs.names)
	if i >= 64 {
		panic("formula: more than 64 variables in one system")
	}
	vs.names = append(vs.names, name)
	vs.index[name] = i
	return i
}

// Lookup returns the index of name without allocating.
func (vs *Vars) Lookup(name string) (int, bool) {
	i, ok := vs.index[name]
	return i, ok
}

// Name returns the name of variable i.
func (vs *Vars) Name(i int) string {
	if i < 0 || i >= len(vs.names) {
		return fmt.Sprintf("x%d", i)
	}
	return vs.names[i]
}

// Len returns the number of declared variables.
func (vs *Vars) Len() int { return len(vs.names) }

// Names returns a copy of the declared names in index order.
func (vs *Vars) Names() []string {
	out := make([]string, len(vs.names))
	copy(out, vs.names)
	return out
}
