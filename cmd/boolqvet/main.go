// Command boolqvet runs the engine's invariant analyzers (lockguard,
// ctxpoll, noalloc, walcheck, errflow — see internal/analysis and
// DESIGN.md §8) over Go packages.
//
// Standalone:
//
//	boolqvet ./...                # analyze packages in the current module
//	boolqvet -list                # print the analyzers
//	boolqvet -ctxpoll.pkgs=...    # per-analyzer configuration
//
// As a vet tool (the unitchecker protocol — cmd/go drives one process
// per package and threads facts through .vetx files):
//
//	go vet -vettool=$(pwd)/bin/boolqvet ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	// The unitchecker protocol greets the tool with single-purpose
	// invocations before feeding it package config files.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]") // analyzer flags are not exposed through go vet; defaults apply
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitCheck(args[0]))
		}
	}

	analyzers := suite.Analyzers()
	list := flag.Bool("list", false, "list analyzers and exit")
	for _, a := range analyzers {
		if a.Flags == nil {
			continue
		}
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boolqvet:", err)
		os.Exit(2)
	}
	results, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boolqvet:", err)
		os.Exit(2)
	}
	for _, r := range results {
		fmt.Fprintln(os.Stderr, r)
	}
	if len(results) > 0 {
		os.Exit(1)
	}
}
