package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/repl"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

// maxBodyBytes bounds request bodies (regions, queries, snapshots).
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return err
	}
	return nil
}

// ---- layer CRUD ----

// layerInfos snapshots every layer's name, kind and size under the
// store's read guard.
func layerInfos(store *spatialdb.Store) []layerInfo {
	names := store.LayerNames()
	infos := make([]layerInfo, 0, len(names))
	store.RLock()
	for _, name := range names {
		if l, ok := store.LayerIfExists(name); ok {
			infos = append(infos, layerInfo{Name: name, Kind: l.Kind().String(), Objects: l.Len()})
		}
	}
	store.RUnlock()
	return infos
}

// layerSizes is layerInfos reduced to name → object count.
func layerSizes(store *spatialdb.Store) map[string]int {
	infos := layerInfos(store)
	out := make(map[string]int, len(infos))
	for _, li := range infos {
		out[li.Name] = li.Objects
	}
	return out
}

func (s *Server) handleListLayers(w http.ResponseWriter, _ *http.Request) {
	store := s.Store()
	writeJSON(w, http.StatusOK, map[string]any{
		"layers": layerInfos(store),
		"epoch":  store.Epoch(),
	})
}

func (s *Server) handleCreateLayer(w http.ResponseWriter, r *http.Request) {
	release, aerr := s.mutGate.acquire(r.Context())
	if aerr != nil {
		s.shedReject(w, aerr)
		return
	}
	defer release()
	store := s.Store()
	name := r.PathValue("layer")
	l, created, err := store.CreateLayer(name)
	if err != nil {
		s.writeMutationError(w, err, "creating layer %q: %v", name, err)
		return
	}
	store.RLock()
	info := layerInfo{Name: name, Kind: l.Kind().String(), Objects: l.Len()}
	store.RUnlock()
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, info)
}

func (s *Server) handlePutObject(w http.ResponseWriter, r *http.Request) {
	release, aerr := s.mutGate.acquire(r.Context())
	if aerr != nil {
		s.shedReject(w, aerr)
		return
	}
	defer release()
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	var jr jsonRegion
	if decodeBody(w, r, &jr) != nil {
		return
	}
	reg, err := jr.toRegion(store.K())
	if err != nil {
		writeError(w, http.StatusBadRequest, "region: %v", err)
		return
	}
	if reg.IsEmpty() {
		// Upsert would reject this too, but with a less pointed message.
		writeError(w, http.StatusBadRequest, "region: empty (no boxes with positive volume)")
		return
	}
	if !store.Universe().Contains(reg.BoundingBox()) {
		// Enforced uniformly here: some index backends would reject this
		// themselves while others would accept it and then give the object
		// universe-relative complement semantics — backend-dependent query
		// answers either way.
		writeError(w, http.StatusBadRequest, "region: bounding box %v outside the store universe %v",
			reg.BoundingBox(), store.Universe())
		return
	}
	o, replaced, err := store.Upsert(layer, name, reg)
	if err != nil {
		s.writeMutationError(w, err, "upserting %s/%s: %v", layer, name, err)
		return
	}
	s.metrics.Inserts.Add(1)
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, toObjectResponse(layer, o, store.Epoch(), false))
}

func (s *Server) handleGetObject(w http.ResponseWriter, r *http.Request) {
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	store.RLock()
	l, ok := store.LayerIfExists(layer)
	var o spatialdb.Object
	if ok {
		o, ok = l.GetByName(name)
	}
	var resp objectResponse
	if ok {
		resp = toObjectResponse(layer, o, store.Epoch(), true)
	}
	store.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no object %q in layer %q", name, layer)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request) {
	release, aerr := s.mutGate.acquire(r.Context())
	if aerr != nil {
		s.shedReject(w, aerr)
		return
	}
	defer release()
	store := s.Store()
	layer, name := r.PathValue("layer"), r.PathValue("name")
	ok, err := store.Remove(layer, name)
	if err != nil {
		s.writeMutationError(w, err, "deleting %s/%s: %v", layer, name, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no object %q in layer %q", name, layer)
		return
	}
	s.metrics.Deletes.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"deleted": true,
		"epoch":   store.Epoch(),
	})
}

// ---- query execution ----

// MaxQueryWorkers caps the per-request workers override (mirroring
// MaxBatchConcurrency for batches): a request must not be able to make
// the server spawn an unbounded number of goroutines.
const MaxQueryWorkers = 64

// DefaultQueryTimeout is the server-side execution bound applied when
// Options.QueryTimeout is unset. Requests can tighten it per query via
// timeout_ms but never extend it.
const DefaultQueryTimeout = 30 * time.Second

// clampWorkers resolves the per-request parallelism: ≤ 0 falls back to
// the server default, anything above MaxQueryWorkers is clamped.
func (s *Server) clampWorkers(requested int) int {
	w := requested
	if w <= 0 {
		w = s.workers
	}
	if w > MaxQueryWorkers {
		w = MaxQueryWorkers
	}
	return w
}

// queryContext derives one run's execution context: the request context
// (a client disconnect cancels it) bounded by the server-side default
// timeout, tightened further by the request's own timeout_ms.
func (s *Server) queryContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.queryTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(parent, d)
}

// countOutcome bumps the bounded-execution counters for one finished
// run: expiry of the derived deadline counts as a timeout, any other
// cancellation (client disconnect, parent cancel) as cancelled.
func (s *Server) countOutcome(ctx context.Context, st query.Stats) {
	if st.Truncated {
		s.metrics.QueryTruncated.Add(1)
	}
	if st.Cancelled {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.metrics.QueryTimeouts.Add(1)
		} else {
			s.metrics.QueryCancelled.Add(1)
		}
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Admission first: a shed request must cost nothing — not a body
	// decode, and certainly never the store's read guard.
	release, aerr := s.readGate.acquire(r.Context())
	if aerr != nil {
		s.shedReject(w, aerr)
		return
	}
	defer release()
	if s.rejectStaleRead(w) {
		return
	}
	s.metrics.QueriesTotal.Add(1)
	var req queryRequest
	if decodeBody(w, r, &req) != nil {
		s.metrics.QueryErrors.Add(1)
		return
	}
	if streamRequested(r) {
		s.handleQueryStream(w, r, &req)
		return
	}
	resp, status, err := s.runQuery(r.Context(), &req)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, resp)
}

// streamRequested reports whether ?stream=1 (or =true) was given.
func streamRequested(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

// runQuery executes one request against the current store.
func (s *Server) runQuery(ctx context.Context, req *queryRequest) (*queryResponse, int, error) {
	store, gen := s.storeAndGen()
	return s.execQuery(ctx, store, gen, store.Epoch(), req)
}

// decodeParams converts the request's wire regions against the store's
// dimensionality.
func decodeParams(store *spatialdb.Store, req *queryRequest) (map[string]*region.Region, error) {
	params := make(map[string]*region.Region, len(req.Params))
	for name, jr := range req.Params {
		reg, err := jr.toRegion(store.K())
		if err != nil {
			return nil, errors.New("parameter " + name + ": " + err.Error())
		}
		params[name] = reg
	}
	return params, nil
}

// lookupPlan resolves the compiled plan for a normalized query through
// the plan cache: hit ⇒ skip Parse/Compile entirely. On a miss the plan
// compiles adaptively by default — the retrieval order (and per-step
// index backend) are picked from the layer statistics plus any run costs
// the tuner has observed for this query — so the cached plan embeds
// data-dependent choices; the cache already invalidates on every store
// epoch, which bounds how stale those choices can get. The epoch was read
// before the lookup; a mutation racing with this request at worst
// recompiles on the next request, never serves wrong plans (compiled
// plans are immutable and execution takes the store's read guard).
func (s *Server) lookupPlan(store *spatialdb.Store, gen, epoch uint64, normalized string, params map[string]*region.Region) (*query.Plan, bool, error) {
	plan, hit := s.cache.Get(normalized, gen, epoch)
	if hit {
		return plan, true, nil
	}
	q, err := lang.Parse(normalized)
	if err != nil {
		return nil, false, err
	}
	if s.staticPlan {
		if plan, err = query.Compile(q, store); err != nil {
			return nil, false, err
		}
	} else {
		plan, err = query.CompileAdaptive(q, store, query.AdaptiveOptions{
			Params:   params,
			Tuner:    s.tuner,
			TunerKey: normalized,
			Epoch:    epoch,
		})
		if err != nil {
			return nil, false, err
		}
		s.metrics.PlanAdaptive.Add(1)
		if info := plan.Adaptive; info != nil {
			if info.Reordered {
				s.metrics.PlanReordered.Add(1)
			}
			if info.FeedbackUsed > 0 {
				s.metrics.PlanFeedback.Add(1)
			}
			s.metrics.PlanOverrides.Add(int64(info.BackendOverrides))
		}
	}
	s.metrics.PlanCompiles.Add(1)
	s.cache.Put(normalized, gen, epoch, plan)
	return plan, false, nil
}

// observeRun feeds one finished optimized run's cost back to the tuner,
// closing the adaptive loop: the next compile of this query at a new
// epoch ranks its executed order by this measured cost instead of the
// histogram estimate.
func (s *Server) observeRun(normalized string, plan *query.Plan, epoch uint64, st query.Stats) {
	if s.staticPlan || plan == nil {
		return
	}
	if s.tuner.Observe(normalized, plan.OrderKey(), epoch, st) {
		s.metrics.TunerObservations.Add(1)
	}
}

// execQuery executes one request against a pinned (store, generation,
// epoch) snapshot. The batch handler captures the snapshot once so every
// query of a batch compiles and caches plans against the same plan
// generation; the single-query handler passes the current one. The run
// is bounded by the derived query context; an expired or disconnected
// run returns its partial result with status 408 and the cancelled flag
// rather than an error.
func (s *Server) execQuery(ctx context.Context, store *spatialdb.Store, gen, epoch uint64, req *queryRequest) (*queryResponse, int, error) {
	normalized, err := lang.Normalize(req.Query)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	params, err := decodeParams(store, req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	start := time.Now()
	qctx, cancel := s.queryContext(ctx, req.TimeoutMS)
	defer cancel()
	opts := query.Options{UseIndex: !req.NoIndex, UseExact: !req.NoExact, Limit: req.Limit}

	var res *query.Result
	var plan *query.Plan
	hit := false
	if req.Naive {
		s.metrics.QueriesNaive.Add(1)
		q, err := lang.Parse(normalized)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if res, err = query.RunNaiveCtx(qctx, q, store, params, opts); err != nil {
			return nil, http.StatusBadRequest, err
		}
	} else {
		if plan, hit, err = s.lookupPlan(store, gen, epoch, normalized, params); err != nil {
			return nil, http.StatusBadRequest, err
		}
		if res, err = plan.RunParallelCtx(qctx, store, params, opts, s.clampWorkers(req.Workers)); err != nil {
			return nil, http.StatusBadRequest, err
		}
		s.observeRun(normalized, plan, epoch, res.Stats)
	}
	s.countOutcome(qctx, res.Stats)
	status := http.StatusOK
	if res.Stats.Cancelled {
		status = http.StatusRequestTimeout
	}
	return buildQueryResponse(res, plan, req, hit, epoch, start), status, nil
}

func buildQueryResponse(res *query.Result, plan *query.Plan, req *queryRequest,
	cached bool, epoch uint64, start time.Time) *queryResponse {
	resp := &queryResponse{
		Solutions: []solutionJSON{},
		Count:     len(res.Solutions),
		Cached:    cached,
		Naive:     req.Naive,
		Truncated: res.Stats.Truncated,
		Cancelled: res.Stats.Cancelled,
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
		Stats:     res.Stats,
	}
	for _, sol := range res.Solutions {
		resp.Solutions = append(resp.Solutions, toSolutionJSON(sol))
	}
	if plan != nil {
		resp.Order = plan.OrderKey()
	}
	if req.Explain && plan != nil {
		resp.Plan = plan.Explain()
	}
	return resp
}

// handleQueryStream is POST /query?stream=1: each solution leaves as
// its own NDJSON line the moment the executor finds it, followed by one
// summary line — wide result sets never buffer server-side. The store's
// read guard is held while lines are written, so a slow client pins it;
// the run context (server timeout ∧ timeout_ms ∧ client disconnect)
// bounds for how long. The HTTP status is decided by the first line:
// errors detectable before execution (parse, compile, bad params) still
// get a clean 400.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request, req *queryRequest) {
	fail := func(status int, err error) {
		s.metrics.QueryErrors.Add(1)
		writeError(w, status, "%v", err)
	}
	if req.Naive {
		fail(http.StatusBadRequest, errors.New("stream=1 does not support naive execution"))
		return
	}
	store, gen := s.storeAndGen()
	epoch := store.Epoch()
	normalized, err := lang.Normalize(req.Query)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	params, err := decodeParams(store, req)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	plan, hit, err := s.lookupPlan(store, gen, epoch, normalized, params)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	qctx, cancel := s.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	opts := query.Options{UseIndex: !req.NoIndex, UseExact: !req.NoExact, Limit: req.Limit}

	// Each response write carries the run's deadline as a connection
	// write deadline: the executor holds the store's read guard while
	// emitting, and without it a client that stops reading (TCP window
	// full, not disconnected) would block enc.Encode forever — the
	// executor's cancellation polls never run inside a stuck write, so
	// the guard would be pinned indefinitely. With it the write errors
	// out at the deadline, the yield returns false, and the run unwinds.
	// (SetWriteDeadline is unsupported on some ResponseWriters, e.g.
	// httptest recorders — then the context bound alone applies.)
	rc := http.NewResponseController(w)
	deadline, hasDeadline := qctx.Deadline()
	enc := json.NewEncoder(w) // no indent: one value per line
	headerOut := false
	writeFailed := false
	status := http.StatusOK
	emit := func(v any) bool {
		if writeFailed {
			return false
		}
		if hasDeadline {
			_ = rc.SetWriteDeadline(deadline)
		}
		if !headerOut {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(status)
			headerOut = true
		}
		if err := enc.Encode(v); err != nil {
			writeFailed = true
			return false
		}
		if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			writeFailed = true
			return false
		}
		return true
	}
	count := 0
	stats, err := plan.RunStream(qctx, store, params, opts, func(sol query.Solution) bool {
		count++
		return emit(streamSolutionLine{Solution: toSolutionJSON(sol)})
	})
	if err != nil {
		// Unbound parameter, or a layer dropped since compile. Before the
		// first solution this is still a clean 400; afterwards the stream
		// has started and the error becomes its closing line.
		if !headerOut {
			fail(http.StatusBadRequest, err)
		} else {
			s.metrics.QueryErrors.Add(1)
			emit(errorResponse{Error: err.Error()})
		}
		return
	}
	s.observeRun(normalized, plan, epoch, stats)
	s.countOutcome(qctx, stats)
	if stats.Cancelled {
		// Only effective when no solution line has been written yet; an
		// in-flight stream keeps its 200 and flags the summary instead.
		status = http.StatusRequestTimeout
	}
	emit(streamSummary{
		Done:      true,
		Count:     count,
		Cached:    hit,
		Truncated: stats.Truncated,
		Cancelled: stats.Cancelled,
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
		Stats:     stats,
	})
}

// ---- stats, snapshots, metrics ----

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	store := s.Store()
	mt := s.metrics
	var walStats *wal.DBStats
	var degStats *degradedStats
	if s.durable != nil {
		st := s.durable.Stats()
		walStats = &st
		degStats = &degradedStats{
			Degraded:    st.Degraded,
			ForMS:       st.DegradedForMS,
			Cause:       st.DegradeCause,
			Transitions: st.DegradedEntered,
			Probes:      st.Probes,
			WALRetries:  st.WALRetries,
			Rearms:      st.Log.Rearms,
		}
	}
	var replStats *repl.Stats
	if s.replica != nil {
		st := s.replica.Stats()
		replStats = &st
	}
	var shed *shedStats
	if s.readGate != nil || s.mutGate != nil {
		shed = &shedStats{
			Reads:     s.readGate.poolStats(),
			Mutations: s.mutGate.poolStats(),
			Total:     mt.Shed.Value(),
		}
	}
	mode := "adaptive"
	if s.staticPlan {
		mode = "static"
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch:  store.Epoch(),
		Layers: layerSizes(store),
		Cache: cacheStats{
			Hits:     s.cache.Hits(),
			Misses:   s.cache.Misses(),
			Entries:  s.cache.Len(),
			Capacity: s.cache.Cap(),
		},
		Planner: plannerStats{
			Mode:             mode,
			AdaptiveCompiles: mt.PlanAdaptive.Value(),
			Reordered:        mt.PlanReordered.Value(),
			FeedbackUsed:     mt.PlanFeedback.Value(),
			BackendOverrides: mt.PlanOverrides.Value(),
			Observations:     mt.TunerObservations.Value(),
			TunerKeys:        s.tuner.Len(),
		},
		Queries: counterGroup{
			Total:     mt.QueriesTotal.Value(),
			Errors:    mt.QueryErrors.Value(),
			Naive:     mt.QueriesNaive.Value(),
			Compiles:  mt.PlanCompiles.Value(),
			Timeouts:  mt.QueryTimeouts.Value(),
			Cancelled: mt.QueryCancelled.Value(),
			Truncated: mt.QueryTruncated.Value(),
		},
		Batch: batchStats{
			Requests:   mt.BatchRequests.Value(),
			QueriesRun: mt.BatchQueries.Value(),
		},
		Mutations:   mutationStats{Inserts: mt.Inserts.Value(), Deletes: mt.Deletes.Value()},
		Bulk:        bulkStats{Batches: mt.BulkBatches.Value(), Objects: mt.BulkObjects.Value()},
		Snapshots:   snapshotStats{Saves: mt.SnapshotSaves.Value(), Loads: mt.SnapshotLoads.Value()},
		DB:          store.TotalStats(),
		WAL:         walStats,
		Degraded:    degStats,
		Shed:        shed,
		Replication: replStats,
	})
}

func (s *Server) handleSnapshotSave(w http.ResponseWriter, _ *http.Request) {
	// Serialize into memory first: Save holds the store's read guard, and
	// streaming straight to a slow client would pin it (stalling every
	// writer, and behind the blocked writer every other reader).
	var buf bytes.Buffer
	if err := s.Store().Save(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "saving snapshot: %v", err)
		return
	}
	s.metrics.SnapshotSaves.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleSnapshotLoad(w http.ResponseWriter, r *http.Request) {
	if rp := s.replica; rp != nil && !rp.Promoted() {
		// Swapping a replica's store breaks the invariant that it is an
		// exact prefix of the primary; the next bootstrap would clobber the
		// load anyway.
		s.writeMutationError(w, spatialdb.ErrReplica, "")
		return
	}
	if s.durable != nil {
		// Swapping the store out would disconnect it from the write-ahead
		// log: the new store has no mutation sink, so nothing after the
		// swap would survive a restart. Ingest through the logged mutation
		// endpoints instead.
		writeError(w, http.StatusConflict,
			"snapshot load is disabled in durable mode; ingest via objects:bulk instead")
		return
	}
	old := s.Store()
	store, err := spatialdb.Load(http.MaxBytesReader(w, r.Body, maxBodyBytes), old.Kind())
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading snapshot: %v", err)
		return
	}
	s.swapStore(store)
	s.metrics.SnapshotLoads.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"loaded": true,
		"layers": layerSizes(store),
		"epoch":  store.Epoch(),
	})
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(s.vars.String()))
	_, _ = w.Write([]byte("\n"))
}
