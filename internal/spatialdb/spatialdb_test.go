package spatialdb

import (
	"math/rand"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

func rect(x0, y0, x1, y1 float64) bbox.Box { return bbox.Rect(x0, y0, x1, y1) }

var allKinds = []IndexKind{Scan, RTree, PointRTree, Grid, ZOrderIdx}

func TestIndexKindString(t *testing.T) {
	for _, k := range allKinds {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
	}
	if IndexKind(99).String() == "" {
		t.Errorf("unknown kind renders empty")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), Scan)
	if s.K() != 2 {
		t.Fatalf("K = %d", s.K())
	}
	l := s.Layer("towns")
	if !s.HasLayer("towns") || s.HasLayer("roads") {
		t.Errorf("HasLayer wrong")
	}
	o := s.MustInsert("towns", "t1", region.FromBox(rect(1, 1, 2, 2)))
	if o.ID == 0 || l.Len() != 1 {
		t.Errorf("insert failed: %+v", o)
	}
	got, ok := l.Get(o.ID)
	if !ok || got.Name != "t1" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	if _, ok := l.Get(999); ok {
		t.Errorf("Get of missing id succeeded")
	}
	names := s.LayerNames()
	if len(names) != 1 || names[0] != "towns" {
		t.Errorf("LayerNames = %v", names)
	}
	if len(l.Objects()) != 1 {
		t.Errorf("Objects len wrong")
	}
}

func TestInsertEmptyRegionFails(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), Scan)
	if _, err := s.Insert("x", "bad", region.Empty(2)); err == nil {
		t.Errorf("empty region accepted")
	}
}

func TestNewStorePanicsOnEmptyUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty universe should panic")
		}
	}()
	NewStore(bbox.Empty(2), Scan)
}

// populate fills a layer with deterministic random boxes and returns them.
func populate(s *Store, layer string, n int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Object, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		w, h := rng.Float64()*8+0.5, rng.Float64()*8+0.5
		out[i] = s.MustInsert(layer, "", region.FromBox(rect(x, y, x+w, y+h)))
	}
	return out
}

// All four backends must return identical results for identical specs —
// the E11 invariant.
func TestE11AllBackendsAgree(t *testing.T) {
	specs := []bbox.RangeSpec{
		{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 50, 50)},
		{K: 2, Lower: rect(30, 30, 32, 32), Upper: bbox.Univ(2)},
		{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2),
			Overlaps: []bbox.Box{rect(20, 20, 40, 40)}},
		{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 80, 80),
			Overlaps: []bbox.Box{rect(10, 10, 30, 30), rect(20, 20, 50, 50)}},
		{K: 2, Lower: rect(99, 99, 100, 100), Upper: rect(0, 0, 1, 1)}, // unsat
	}
	var results [][]int64
	for _, kind := range allKinds {
		s := NewStore(rect(0, 0, 100, 100), kind)
		populate(s, "objs", 500, 11)
		var perSpec []int64
		for _, spec := range specs {
			var ids []int64
			s.Layer("objs").Search(spec, func(o Object) bool {
				ids = append(ids, o.ID)
				return true
			})
			perSpec = append(perSpec, int64(len(ids)))
			for i := 1; i < len(ids); i++ {
				if ids[i-1] >= ids[i] {
					t.Fatalf("%v: results not in id order", kind)
				}
			}
		}
		results = append(results, perSpec)
	}
	for i := 1; i < len(results); i++ {
		for j := range specs {
			if results[i][j] != results[0][j] {
				t.Errorf("backend %v disagrees with scan on spec %d: %d vs %d",
					allKinds[i], j, results[i][j], results[0][j])
			}
		}
	}
}

func TestSearchAgainstDirectFilter(t *testing.T) {
	for _, kind := range allKinds {
		s := NewStore(rect(0, 0, 100, 100), kind)
		objs := populate(s, "objs", 300, 23)
		spec := bbox.RangeSpec{
			K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 60, 60),
			Overlaps: []bbox.Box{rect(10, 10, 30, 30)},
		}
		want := 0
		for _, o := range objs {
			if spec.Matches(o.Box) {
				want++
			}
		}
		got := 0
		s.Layer("objs").Search(spec, func(Object) bool {
			got++
			return true
		})
		if got != want {
			t.Errorf("%v: Search returned %d, direct filter %d", kind, got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), RTree)
	populate(s, "objs", 100, 3)
	n := 0
	s.Layer("objs").Search(bbox.AllSpec(2), func(Object) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), RTree)
	populate(s, "objs", 200, 5)
	l := s.Layer("objs")
	l.ResetStats()
	spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 30, 30)}
	count := 0
	l.Search(spec, func(Object) bool {
		count++
		return true
	})
	st := l.Stats()
	if st.Queries != 1 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.Returned != count {
		t.Errorf("Returned = %d, visited %d", st.Returned, count)
	}
	if st.Touched == 0 {
		t.Errorf("Touched = 0")
	}
	total := s.TotalStats()
	if total.Queries != 1 {
		t.Errorf("TotalStats.Queries = %d", total.Queries)
	}
	s.ResetStats()
	if s.TotalStats().Queries != 0 {
		t.Errorf("ResetStats did not clear")
	}
}

// The point-transform backends must prune: a selective query should scan
// far fewer candidates than the layer size.
func TestPointBackendsPrune(t *testing.T) {
	for _, kind := range []IndexKind{PointRTree, Grid} {
		s := NewStore(rect(0, 0, 1000, 1000), kind)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 2000; i++ {
			x, y := rng.Float64()*990, rng.Float64()*990
			s.MustInsert("objs", "", region.FromBox(rect(x, y, x+2, y+2)))
		}
		l := s.Layer("objs")
		l.ResetStats()
		spec := bbox.RangeSpec{
			K: 2, Lower: bbox.Empty(2), Upper: rect(100, 100, 130, 130),
		}
		l.Search(spec, func(Object) bool { return true })
		st := l.Stats()
		if st.Scanned*4 > l.Len() {
			t.Errorf("%v: scanned %d of %d objects — no pruning", kind, st.Scanned, l.Len())
		}
	}
}

func TestAllVisitsInOrder(t *testing.T) {
	s := NewStore(rect(0, 0, 10, 10), Scan)
	a := s.MustInsert("l", "a", region.FromBox(rect(0, 0, 1, 1)))
	b := s.MustInsert("l", "b", region.FromBox(rect(1, 1, 2, 2)))
	var ids []int64
	s.Layer("l").All(func(o Object) bool {
		ids = append(ids, o.ID)
		return true
	})
	if len(ids) != 2 || ids[0] != a.ID || ids[1] != b.ID {
		t.Errorf("All order = %v", ids)
	}
}
