package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns package patterns into type-checked syntax without
// golang.org/x/tools: `go list -deps -export` builds (or reuses from the
// build cache) gc export data for every dependency, and the target
// packages are then parsed and type-checked from source with
// go/importer resolving imports through those export files. This is the
// same substrate x/tools' unitchecker runs on; we just drive it
// directly.

// Package is one loaded, type-checked target package.
type Package struct {
	Path    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Imports []string // import paths, unfiltered
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
}

// goList runs `go list -deps -export -json` in dir over patterns.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Imports,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over listed packages.
func exportLookup(pkgs []*listedPkg) func(path string) (io.ReadCloser, error) {
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Packages vendored into the standard library appear with a
		// "vendor/" prefix; map the unprefixed spelling too so either
		// form found in export data resolves.
		for from, to := range p.ImportMap {
			if ex, ok := exports[to]; ok && exports[from] == "" {
				exports[from] = ex
			}
		}
	}
	return func(path string) (io.ReadCloser, error) {
		ex, ok := exports[path]
		if !ok {
			ex, ok = exports["vendor/"+path]
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ex)
	}
}

// LoadPackages loads and type-checks the packages matched by patterns
// (their dependencies are consumed as export data only), returned in
// dependency order so fact-producing analyzers see callees before
// callers.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	byPath := map[string]*listedPkg{}
	var targets []*listedPkg
	for _, p := range listed {
		byPath[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sortByDeps(targets, byPath)

	var out []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// sortByDeps orders targets so every package follows its in-target
// dependencies (stable on the input order within a level).
func sortByDeps(targets []*listedPkg, byPath map[string]*listedPkg) {
	inTarget := map[string]bool{}
	for _, t := range targets {
		inTarget[t.ImportPath] = true
	}
	depth := map[string]int{}
	var rank func(path string, seen map[string]bool) int
	rank = func(path string, seen map[string]bool) int {
		if d, ok := depth[path]; ok {
			return d
		}
		if seen[path] {
			return 0 // import cycle: the compiler will complain, not us
		}
		seen[path] = true
		d := 0
		for _, imp := range byPath[path].Imports {
			if inTarget[imp] {
				if r := rank(imp, seen) + 1; r > d {
					d = r
				}
			}
		}
		depth[path] = d
		return d
	}
	for _, t := range targets {
		rank(t.ImportPath, map[string]bool{})
	}
	sort.SliceStable(targets, func(i, j int) bool {
		return depth[targets[i].ImportPath] < depth[targets[j].ImportPath]
	})
}

// typeCheck parses and type-checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:    lp.ImportPath,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		Imports: lp.Imports,
	}, nil
}

// CheckFixture type-checks an already-parsed fixture package (see
// package atest) whose imports — standard library only — are resolved
// through `go list -export` build-cache export data.
func CheckFixture(fset *token.FileSet, path string, files []*ast.File, imports []string) (*Package, error) {
	var imp types.Importer
	if len(imports) > 0 {
		listed, err := goList(".", imports)
		if err != nil {
			return nil, err
		}
		imp = importer.ForCompiler(fset, "gc", exportLookup(listed))
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewTypesInfo allocates the Info maps every analyzer relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// RunResult is one analyzer finding with its resolved position.
type RunResult struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (r RunResult) String() string {
	return fmt.Sprintf("%s: %s (%s)", r.Position, r.Message, r.Analyzer)
}

// RunAnalyzers applies every analyzer to every package (packages must be
// in dependency order, as LoadPackages returns them), threading one fact
// store through the run and filtering //lint:ignore-suppressed findings.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]RunResult, error) {
	facts := NewFactStore()
	var out []RunResult
	for _, pkg := range pkgs {
		results, err := RunOnPackage(pkg, analyzers, facts)
		if err != nil {
			return out, err
		}
		out = append(out, results...)
	}
	return out, nil
}

// RunOnPackage applies the analyzers to one loaded package against a
// shared fact store, filtering suppressed findings.
func RunOnPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]RunResult, error) {
	sup := CollectSuppressions(pkg.Fset, pkg.Files)
	var out []RunResult
	for _, a := range analyzers {
		pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, facts)
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range pass.Diagnostics() {
			if sup.Suppressed(pkg.Fset, a.Name, d.Pos) {
				continue
			}
			out = append(out, RunResult{
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Analyzer: a.Name,
			})
		}
	}
	return out, nil
}
