package constraint

import (
	"strings"
	"testing"

	"repro/internal/boolalg"
	"repro/internal/formula"
)

func TestBuildersAndString(t *testing.T) {
	s := NewSystem()
	x, y := s.Var("x"), s.Var("y")
	s.Subset(x, y).NotSubset(x, formula.Zero())
	if len(s.Cons) != 2 {
		t.Fatalf("Cons = %d", len(s.Cons))
	}
	str := s.String()
	if !strings.Contains(str, "x <= y") || !strings.Contains(str, "x !<= 0") {
		t.Errorf("String = %q", str)
	}
}

func TestVarIsStable(t *testing.T) {
	s := NewSystem()
	a := s.Var("A")
	b := s.Var("A")
	if !a.Same(b) {
		t.Errorf("repeated Var not stable")
	}
}

// Each derived form must mean what the paper says, checked by evaluating
// over a finite algebra on exhaustive assignments.
func TestDerivedFormsSemantics(t *testing.T) {
	alg := boolalg.NewBitset(3)
	elems := []uint64{0, 1, 2, 3, 4, 5, 6, 7}

	type variant struct {
		name  string
		build func(s *System, x, y *formula.Formula)
		want  func(a, b uint64) bool
	}
	variants := []variant{
		{"Subset", func(s *System, x, y *formula.Formula) { s.Subset(x, y) },
			func(a, b uint64) bool { return a&^b == 0 }},
		{"NotSubset", func(s *System, x, y *formula.Formula) { s.NotSubset(x, y) },
			func(a, b uint64) bool { return a&^b != 0 }},
		{"Equal", func(s *System, x, y *formula.Formula) { s.Equal(x, y) },
			func(a, b uint64) bool { return a == b }},
		{"NotEqual", func(s *System, x, y *formula.Formula) { s.NotEqual(x, y) },
			func(a, b uint64) bool { return a != b }},
		{"Disjoint", func(s *System, x, y *formula.Formula) { s.Disjoint(x, y) },
			func(a, b uint64) bool { return a&b == 0 }},
		{"Overlap", func(s *System, x, y *formula.Formula) { s.Overlap(x, y) },
			func(a, b uint64) bool { return a&b != 0 }},
		{"StrictSubset", func(s *System, x, y *formula.Formula) { s.StrictSubset(x, y) },
			func(a, b uint64) bool { return a&^b == 0 && a != b }},
		{"NonEmpty", func(s *System, x, y *formula.Formula) { s.NonEmpty(x) },
			func(a, b uint64) bool { return a != 0 }},
	}
	for _, v := range variants {
		s := NewSystem()
		x, y := s.Var("x"), s.Var("y")
		v.build(s, x, y)
		n := s.Normalize()
		for _, a := range elems {
			for _, b := range elems {
				env := []boolalg.Element{a, b}
				want := v.want(a, b)
				if got := s.Satisfied(alg, env); got != want {
					t.Errorf("%s: Satisfied(%#b,%#b) = %v, want %v", v.name, a, b, got, want)
				}
				if got := n.Satisfied(alg, env); got != want {
					t.Errorf("%s: Normal.Satisfied(%#b,%#b) = %v, want %v", v.name, a, b, got, want)
				}
			}
		}
	}
}

func TestNormalizeMergesPositives(t *testing.T) {
	s := NewSystem()
	x, y, z := s.Var("x"), s.Var("y"), s.Var("z")
	s.Subset(x, y).Subset(y, z)
	n := s.Normalize()
	if len(n.G) != 0 {
		t.Errorf("no disequations expected, got %d", len(n.G))
	}
	// F = x∧¬y ∨ y∧¬z
	want := formula.Or(formula.Diff(x, y), formula.Diff(y, z))
	if !formula.Equivalent(n.F, want) {
		t.Errorf("F = %v", n.F)
	}
}

func TestNormalizeDropsTautologicalDiseq(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	s.NotSubset(formula.One(), formula.Zero()) // 1 ≠ 0: trivially true
	s.NotSubset(x, formula.Zero())
	n := s.Normalize()
	if len(n.G) != 1 {
		t.Errorf("tautological disequation not dropped: %d", len(n.G))
	}
}

func TestNormalizeDeduplicatesDiseqs(t *testing.T) {
	s := NewSystem()
	x := s.Var("x")
	s.NonEmpty(x).NonEmpty(x)
	n := s.Normalize()
	if len(n.G) != 1 {
		t.Errorf("duplicate disequations kept: %d", len(n.G))
	}
}

func TestTriviallyUnsat(t *testing.T) {
	// 1 ⊑ 0 forces F ≡ 1.
	s := NewSystem()
	s.Subset(formula.One(), formula.Zero())
	if !s.Normalize().TriviallyUnsat() {
		t.Errorf("1 ⊑ 0 not detected")
	}
	// x ≠ x is g ≡ 0.
	s = NewSystem()
	x := s.Var("x")
	s.NotEqual(x, x)
	if !s.Normalize().TriviallyUnsat() {
		t.Errorf("x ≠ x not detected")
	}
	// x = 0 ∧ x ≠ 0: g ≤ F.
	s = NewSystem()
	x = s.Var("x")
	s.Subset(x, formula.Zero()).NonEmpty(x)
	if !s.Normalize().TriviallyUnsat() {
		t.Errorf("x=0 ∧ x≠0 not detected")
	}
	// A satisfiable system.
	s = NewSystem()
	x, y := s.Var("x"), s.Var("y")
	s.Subset(x, y).NonEmpty(x)
	if s.Normalize().TriviallyUnsat() {
		t.Errorf("satisfiable system flagged unsat")
	}
}

// The negative-constraint expressiveness claim (§1): over general algebras
// x ≠ y is NOT expressible positively, and our NotEqual indeed
// distinguishes elements that all positive constraints over {x,y} confuse.
func TestNegativeConstraintsAddPower(t *testing.T) {
	alg := boolalg.NewBitset(2)
	s := NewSystem()
	x, y := s.Var("x"), s.Var("y")
	s.NotEqual(x, y)
	// x={atom0}, y={atom1}: different → satisfied.
	if !s.Satisfied(alg, []boolalg.Element{uint64(1), uint64(2)}) {
		t.Errorf("distinct elements rejected")
	}
	if s.Satisfied(alg, []boolalg.Element{uint64(1), uint64(1)}) {
		t.Errorf("equal elements accepted")
	}
}

// In the two-valued algebra, negative constraints reduce to positive ones:
// x ⋢ y ⇔ x ⊑ ¬y ∧ x ≠ 0 … the paper's remark that negatives add no power
// there. We check the concrete equivalence x ⋢ 0 ⇔ 1 ⊑ x for |atoms|=1.
func TestTwoValuedNegativeReduction(t *testing.T) {
	alg := boolalg.Two()
	neg := NewSystem()
	x := neg.Var("x")
	neg.NonEmpty(x)
	pos := NewSystem()
	x2 := pos.Var("x")
	pos.Subset(formula.One(), x2)
	for _, v := range []uint64{0, 1} {
		env := []boolalg.Element{v}
		if neg.Satisfied(alg, env) != pos.Satisfied(alg, env) {
			t.Errorf("two-valued reduction fails at x=%d", v)
		}
	}
}
