package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// rawRequest sends a request with an arbitrary body/content type and
// returns the recorder.
func rawRequest(s *Server, method, path, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// bulkBodyJSON renders n disjoint objects as a JSON array.
func bulkBodyJSON(n int) string {
	var objs []bulkObject
	for i := 0; i < n; i++ {
		x := float64(i%30) * 10
		y := float64(i/30) * 10
		objs = append(objs, bulkObject{
			Name:  fmt.Sprintf("b%d", i),
			Boxes: []jsonBox{{Lo: []float64{x, y}, Hi: []float64{x + 5, y + 5}}},
		})
	}
	b, _ := json.Marshal(objs)
	return string(b)
}

func TestBulkInsertJSONArray(t *testing.T) {
	store := spatialdb.NewStore(workload.GenMap(workload.MapConfig{Seed: 1}).Config.Universe, spatialdb.RTree)
	s := New(store, Options{})
	w := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk", "application/json", bulkBodyJSON(90))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp bulkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 90 || resp.Failed != 0 || resp.Received != 90 {
		t.Fatalf("response %+v", resp)
	}
	if store.Layer("towns").Len() != 90 {
		t.Fatalf("layer has %d objects", store.Layer("towns").Len())
	}
	// Objects are reachable through the single-object API.
	var obj objectResponse
	if w := do(t, s, http.MethodGet, "/layers/towns/objects/b42", nil, &obj); w.Code != http.StatusOK {
		t.Fatalf("GET after bulk: status %d", w.Code)
	}
	// One epoch bump for the whole batch (plus one for layer creation —
	// the demo store starts without the layer).
	if resp.Epoch == 0 {
		t.Error("epoch missing from response")
	}
}

func TestBulkInsertNDJSON(t *testing.T) {
	store := spatialdb.NewStore(workload.GenMap(workload.MapConfig{Seed: 1}).Config.Universe, spatialdb.RTree)
	s := New(store, Options{})
	var sb strings.Builder
	for i := 0; i < 25; i++ {
		line, _ := json.Marshal(bulkObject{
			Name:  fmt.Sprintf("n%d", i),
			Boxes: []jsonBox{{Lo: []float64{float64(i) * 10, 0}, Hi: []float64{float64(i)*10 + 5, 5}}},
		})
		_, _ = sb.Write(line) // strings.Builder never returns an error
		sb.WriteByte('\n')
	}
	w := rawRequest(s, http.MethodPost, "/layers/pts/objects:bulk", "application/x-ndjson", sb.String())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp bulkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 25 {
		t.Fatalf("inserted %d, want 25: %+v", resp.Inserted, resp)
	}
}

func TestBulkInsertAtomicFailure(t *testing.T) {
	s, _ := newTestServer(t)
	before := s.Store().Layer("towns").Len()
	// Object 1 is outside the generated map's universe.
	body := `[
	  {"name": "ok", "boxes": [{"lo": [10, 10], "hi": [20, 20]}]},
	  {"name": "outside", "boxes": [{"lo": [10, 10], "hi": [99999, 99999]}]}
	]`
	w := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk", "application/json", body)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	var resp bulkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 0 || len(resp.Errors) != 1 || resp.Errors[0].Index != 1 || resp.Errors[0].Name != "outside" {
		t.Fatalf("response %+v", resp)
	}
	if got := s.Store().Layer("towns").Len(); got != before {
		t.Fatalf("atomic failure inserted objects: %d -> %d", before, got)
	}
}

func TestBulkInsertBestEffort(t *testing.T) {
	s, _ := newTestServer(t)
	before := s.Store().Layer("towns").Len()
	body := `[
	  {"name": "ok1", "boxes": [{"lo": [10, 10], "hi": [20, 20]}]},
	  {"name": "outside", "boxes": [{"lo": [10, 10], "hi": [99999, 99999]}]},
	  {"name": "empty", "boxes": []},
	  {"name": "ok2", "boxes": [{"lo": [30, 30], "hi": [40, 40]}]}
	]`
	w := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk?mode=best_effort", "application/json", body)
	if w.Code != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207: %s", w.Code, w.Body.String())
	}
	var resp bulkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 2 || resp.Failed != 2 || len(resp.Errors) != 2 {
		t.Fatalf("response %+v", resp)
	}
	if got := s.Store().Layer("towns").Len(); got != before+2 {
		t.Fatalf("layer grew by %d, want 2", got-before)
	}
}

func TestBulkInsertBadMode(t *testing.T) {
	s, _ := newTestServer(t)
	w := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk?mode=yolo", "application/json", "[]")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}

func TestBulkInsertMalformedBody(t *testing.T) {
	s, _ := newTestServer(t)
	w := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk", "application/json", `[{"name": "x", `)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}

// ndjsonLines decodes every line of an NDJSON body into maps.
func ndjsonLines(t *testing.T, body string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestQueryBatchStreamsNDJSON(t *testing.T) {
	s, m := newTestServer(t)
	good := smugglerRequest(m)
	req := batchQueryRequest{
		// Two identical queries plus a malformed one: with a single worker
		// the queries run in input order, so the second must hit the plan
		// cache compiled by the first, and the parse error must not stop
		// the batch.
		Queries:     []queryRequest{good, good, {Query: "find ??? wat"}},
		Concurrency: 1,
	}
	body, _ := json.Marshal(req)
	w := rawRequest(s, http.MethodPost, "/query/batch", "application/json", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("Content-Type %q", ct)
	}
	lines := ndjsonLines(t, w.Body.String())
	if len(lines) != 4 { // 3 results + summary
		t.Fatalf("got %d lines, want 4: %s", len(lines), w.Body.String())
	}
	byIndex := map[int]map[string]any{}
	var summary map[string]any
	for _, l := range lines {
		if done, ok := l["done"]; ok && done == true {
			summary = l
			continue
		}
		byIndex[int(l["index"].(float64))] = l
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary["queries"].(float64) != 3 || summary["errors"].(float64) != 1 {
		t.Errorf("summary %+v", summary)
	}
	if byIndex[0]["count"].(float64) == 0 {
		t.Errorf("query 0 found no solutions: %+v", byIndex[0])
	}
	if byIndex[0]["cached"].(bool) {
		t.Errorf("first run reported cached")
	}
	if !byIndex[1]["cached"].(bool) {
		t.Errorf("second identical query missed the plan cache: %+v", byIndex[1])
	}
	if _, hasErr := byIndex[2]["error"]; !hasErr {
		t.Errorf("malformed query did not produce an error line: %+v", byIndex[2])
	}
	if _, hasCount := byIndex[2]["count"]; hasCount {
		t.Errorf("error line carries result fields: %+v", byIndex[2])
	}
}

func TestQueryBatchConcurrent(t *testing.T) {
	s, m := newTestServer(t)
	good := smugglerRequest(m)
	var queries []queryRequest
	for i := 0; i < 12; i++ {
		queries = append(queries, good)
	}
	body, _ := json.Marshal(batchQueryRequest{Queries: queries, Concurrency: 4})
	w := rawRequest(s, http.MethodPost, "/query/batch", "application/json", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines := ndjsonLines(t, w.Body.String())
	if len(lines) != 13 {
		t.Fatalf("got %d lines, want 13", len(lines))
	}
	seen := map[int]bool{}
	var count float64 = -1
	for _, l := range lines {
		if _, ok := l["done"]; ok {
			continue
		}
		i := int(l["index"].(float64))
		if seen[i] {
			t.Fatalf("index %d reported twice", i)
		}
		seen[i] = true
		if count < 0 {
			count = l["count"].(float64)
		} else if l["count"].(float64) != count {
			t.Fatalf("inconsistent counts across identical queries")
		}
	}
	if len(seen) != 12 {
		t.Fatalf("saw %d result lines, want 12", len(seen))
	}
}

func TestBatchAndBulkStats(t *testing.T) {
	s, m := newTestServer(t)
	rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk", "application/json",
		`[{"name": "s1", "boxes": [{"lo": [5, 5], "hi": [6, 6]}]}]`)
	body, _ := json.Marshal(batchQueryRequest{Queries: []queryRequest{smugglerRequest(m)}})
	rawRequest(s, http.MethodPost, "/query/batch", "application/json", string(body))
	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Bulk.Batches != 1 || stats.Bulk.Objects != 1 {
		t.Errorf("bulk stats %+v", stats.Bulk)
	}
	if stats.Batch.Requests != 1 || stats.Batch.QueriesRun != 1 {
		t.Errorf("batch stats %+v", stats.Batch)
	}
}
