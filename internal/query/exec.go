package query

import (
	"context"
	"fmt"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
)

// resolveLayers looks the step layers up without creating them. The
// caller must hold the store's read guard. Per-run DB statistics are
// accumulated from each SearchStats return value, so a run reports
// exactly the index work it caused even when concurrent runs share a
// layer (a shared-counter delta would mix their costs).
func resolveLayers(store *spatialdb.Store, names []string) ([]*spatialdb.Layer, error) {
	layers := make([]*spatialdb.Layer, len(names))
	for i, name := range names {
		l, ok := store.LayerIfExists(name)
		if !ok {
			return nil, fmt.Errorf("query: layer %q does not exist", name)
		}
		layers[i] = l
	}
	return layers, nil
}

func stepLayerNames(p *Plan) []string {
	names := make([]string, len(p.Steps))
	for i, sp := range p.Steps {
		names[i] = sp.Layer
	}
	return names
}

// execFrame is the per-goroutine state of one bounded execution: the
// serial executor owns a single frame, each parallel worker owns its
// own, and all frames of a run share one execCtl (cancellation and the
// solution limit are run-wide, statistics and buffers are frame-local).
//
// The frame owns all hot-path scratch — one specScratch per step for the
// compiled box programs, the environment and tuple buffers — so the
// per-candidate work allocates nothing in steady state. Workers never
// share a frame; DESIGN.md §"Execution cost model" spells the ownership
// out.
type execFrame struct {
	p       *Plan
	ctl     *execCtl
	opts    Options
	alg     *region.Algebra
	layers  []*spatialdb.Layer
	k       int
	env     []boolalg.Element
	envBox  []bbox.Box
	tuple   []spatialdb.Object
	spec    []specScratch // per-step scratch; step i's spec must outlive the recursion below it
	stats   *Stats
	emit    func(Solution) bool // false stops this frame's search
	stopped bool                // the emit callback asked to stop
}

func newExecFrame(p *Plan, ctl *execCtl, opts Options, alg *region.Algebra, layers []*spatialdb.Layer, k int, env []boolalg.Element, envBox []bbox.Box, stats *Stats, emit func(Solution) bool) *execFrame {
	return &execFrame{
		p: p, ctl: ctl, opts: opts, alg: alg, layers: layers, k: k,
		env: env, envBox: envBox,
		tuple: make([]spatialdb.Object, len(p.Steps)),
		spec:  make([]specScratch, len(p.Steps)),
		stats: stats, emit: emit,
	}
}

func (f *execFrame) halted() bool { return f.stopped || f.ctl.halted() }

// run is the incremental recursion from step i: evaluate the step's box
// functions against the bound prefix, issue ONE range query, filter and
// extend. The exact filter's formula values depend only on the prefix, so
// they are evaluated once here and each candidate pays only the
// containment/overlap predicates. Cancellation is polled every
// cancelCheckEvery candidates and unwinds the whole recursion via the
// visit callbacks' return value.
func (f *execFrame) run(i int) {
	if i == len(f.p.Steps) {
		f.final()
		return
	}
	sp := &f.p.Steps[i]
	step := &f.p.Form.Steps[i]

	// exact is assigned after the spec prune below — a statically
	// unsatisfiable prefix must not pay the formula evaluation — but is
	// declared here so the closure sees the assignment.
	var exact triangular.StepValues
	consider := func(o spatialdb.Object) bool {
		f.stats.Candidates++
		if f.stats.Candidates%cancelCheckEvery == 0 {
			f.ctl.poll()
		}
		if f.halted() {
			return false
		}
		if f.opts.UseExact && !step.SatisfiedWith(f.alg, exact, o.Reg) {
			f.stats.ExactRejects++
			return true
		}
		f.stats.Extended++
		f.tuple[i] = o
		f.env[sp.Var] = o.Reg
		f.envBox[sp.Var] = o.Box
		f.run(i + 1)
		f.env[sp.Var] = nil
		f.envBox[sp.Var] = bbox.Box{}
		return !f.halted()
	}

	if f.opts.UseIndex {
		spec, ok := sp.SpecInto(f.k, f.envBox, &f.spec[i])
		if !ok {
			return // this prefix admits no extension
		}
		if f.opts.UseExact {
			exact = step.Values(f.alg, f.env)
		}
		f.stats.DB.Add(sp.search(f.layers[i], spec, consider))
	} else {
		if f.opts.UseExact {
			exact = step.Values(f.alg, f.env)
		}
		f.layers[i].All(consider)
	}
}

// final verifies a complete tuple against the original system and emits
// it if a solution slot is still available under the limit. It polls
// cancellation unconditionally — the poll is free next to the exact
// verification, and it guarantees a context cancelled from inside a
// RunStream yield is honored before the next solution is emitted.
func (f *execFrame) final() {
	if f.ctl.poll() {
		return
	}
	f.stats.FinalChecked++
	if !f.p.Query.Sys.Satisfied(f.alg, f.env) {
		f.stats.FinalRejected++
		return
	}
	if !f.ctl.reserve() {
		return
	}
	f.stats.Solutions++
	objs := append([]spatialdb.Object(nil), f.tuple...)
	if f.p.outPos != nil {
		for i, o := range f.tuple {
			objs[f.p.outPos[i]] = o
		}
	}
	if !f.emit(Solution{Objects: objs}) {
		f.stopped = true
	}
}

// Run executes the compiled plan: parameters are bound, the ground
// (parameter-only) residual is checked once, then solution tuples are
// built incrementally with per-step range queries and filters per opts.
// Every complete tuple is verified against the original system in the
// exact region algebra regardless of opts, so all configurations return
// the same solutions.
//
// Run holds the store's read guard for the whole execution, so it is safe
// to call from many goroutines while writers mutate the store through
// Insert/Remove; a plan is immutable after Compile and may be reused (and
// cached) across any number of concurrent Runs.
func (p *Plan) Run(store *spatialdb.Store, params map[string]*region.Region, opts Options) (*Result, error) {
	return p.RunCtx(context.Background(), store, params, opts)
}

// RunCtx is Run bounded by a context: cancellation (or deadline expiry)
// stops the recursion within cancelCheckEvery candidates, releases the
// store's read guard, and returns the solutions found so far with
// Stats.Cancelled set — a partial result, not an error. Options.Limit
// likewise stops the search at the given number of solutions, flagging
// Stats.Truncated.
func (p *Plan) RunCtx(ctx context.Context, store *spatialdb.Store, params map[string]*region.Region, opts Options) (*Result, error) {
	res := &Result{}
	stats, err := p.RunStream(ctx, store, params, opts, func(s Solution) bool {
		res.Solutions = append(res.Solutions, s)
		return true
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// RunStream executes like RunCtx but hands each solution to yield as it
// is found instead of buffering the result set — the executor needs
// O(steps) memory regardless of how many tuples match. Returning false
// from yield stops the search early (without flagging the run truncated
// or cancelled). The callback is invoked while the store's read guard is
// held, so a yield that blocks indefinitely pins the store against
// writers; bound it with the context.
func (p *Plan) RunStream(ctx context.Context, store *spatialdb.Store, params map[string]*region.Region, opts Options, yield func(Solution) bool) (Stats, error) {
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(p.Query, alg, params)
	if err != nil {
		return Stats{}, err
	}
	var stats Stats
	ctl := newExecCtl(ctx, opts.Limit)
	if ctl.poll() { // already cancelled: don't touch the read guard
		ctl.finish(&stats)
		return stats, nil
	}
	store.RLock()
	defer store.RUnlock()
	layers, err := resolveLayers(store, stepLayerNames(p))
	if err != nil {
		ctl.finish(&stats)
		return stats, err
	}

	if p.Form.Unsat || !p.Form.Ground.Satisfied(alg, env) {
		stats.GroundFailed = true
		ctl.finish(&stats)
		return stats, nil
	}

	k := store.K()
	envBox := make([]bbox.Box, p.Query.Sys.Vars.Len())
	for v := range envBox {
		if env[v] != nil {
			envBox[v] = env[v].(*region.Region).BoundingBox()
		}
	}
	f := newExecFrame(p, ctl, opts, alg, layers, k, env, envBox, &stats, yield)
	f.run(0)
	ctl.finish(&stats)
	return stats, nil
}

// CompileAndRun is the one-call convenience: compile with Compile, execute
// with DefaultOptions.
func CompileAndRun(q *Query, store *spatialdb.Store, params map[string]*region.Region) (*Result, error) {
	plan, err := Compile(q, store)
	if err != nil {
		return nil, err
	}
	return plan.Run(store, params, DefaultOptions)
}
