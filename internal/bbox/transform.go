package bbox

import "math"

// RangeSpec is the univariate range query of §4/Figure 3: the conjunction
//
//	Lower ⊑ ⌈x⌉  ∧  ⌈x⌉ ⊑ Upper  ∧  ⌈x⌉ ⊓ c ≠ ∅ for every c in Overlaps.
//
// This is exactly the query class "current spatial databases" support; the
// compiler emits one RangeSpec per retrieval step.
type RangeSpec struct {
	K        int
	Lower    Box   // b ⊑ ⌈x⌉; empty box means no lower-bound constraint
	Upper    Box   // ⌈x⌉ ⊑ a; Univ(k) means no upper-bound constraint
	Overlaps []Box // ⌈x⌉ ⊓ c ≠ ∅ for each c
}

// AllSpec returns the unconstrained spec (matches every box).
func AllSpec(k int) RangeSpec {
	return RangeSpec{K: k, Lower: Empty(k), Upper: Univ(k)}
}

// Matches reports whether box x satisfies the spec.
//
//boolq:noalloc
func (s RangeSpec) Matches(x Box) bool {
	if !x.Contains(s.Lower) {
		return false
	}
	if !s.Upper.Contains(x) {
		return false
	}
	for _, c := range s.Overlaps {
		if !x.Overlaps(c) {
			return false
		}
	}
	return true
}

// Unsatisfiable reports a cheap static check: the spec can match no box at
// all (e.g. required lower bound outside the upper bound, or an overlap
// witness that is empty).
//
//boolq:noalloc
func (s RangeSpec) Unsatisfiable() bool {
	if !s.Upper.Contains(s.Lower) {
		return true
	}
	for _, c := range s.Overlaps {
		if c.IsEmpty() {
			return true
		}
		// Every matching x lies inside Upper; if Upper misses c entirely no
		// x can overlap c.
		if s.Upper.IsEmpty() || !s.Upper.Overlaps(c) {
			return true
		}
	}
	return false
}

// PointTransform maps a k-dim box to the 2k-dim point
// (Lo₁,…,Lo_k, Hi₁,…,Hi_k) — the representation of rectangles as points
// used by Figure 3. Empty boxes have no point representation; callers must
// check IsEmpty first.
func PointTransform(b Box) []float64 {
	p := make([]float64, 2*b.K)
	copy(p, b.Lo)
	copy(p[b.K:], b.Hi)
	return p
}

// PointQuery compiles the spec to a single 2k-dimensional box such that a
// box x matches the spec iff PointTransform(x) lies inside it — Figure 3's
// reduction of the combined containment/overlap constraints to one range
// query on the point space. The second result is false when the spec is
// statically unsatisfiable.
//
// Derivation per dimension i (x = [lo,hi]):
//
//	x ⊑ Upper:      Upper.Lo[i] ≤ lo        and hi ≤ Upper.Hi[i]
//	Lower ⊑ x:      lo ≤ Lower.Lo[i]        and Lower.Hi[i] ≤ hi
//	x ⊓ c ≠ ∅:      lo ≤ c.Hi[i]            and c.Lo[i] ≤ hi
//
// so lo ranges over [Upper.Lo[i], min(Lower.Lo[i], min_c c.Hi[i])] and
// hi over [max(Lower.Hi[i], max_c c.Lo[i]), Upper.Hi[i]].
func (s RangeSpec) PointQuery() (Box, bool) {
	k := s.K
	lo := make([]float64, 2*k)
	hi := make([]float64, 2*k)
	up := s.Upper
	if up.IsEmpty() {
		return Box{}, false // only the empty box ⊑ ∅, and it has no point
	}
	for i := 0; i < k; i++ {
		loMin, loMax := up.Lo[i], math.Inf(1)
		hiMin, hiMax := math.Inf(-1), up.Hi[i]
		if !s.Lower.IsEmpty() {
			loMax = math.Min(loMax, s.Lower.Lo[i])
			hiMin = math.Max(hiMin, s.Lower.Hi[i])
		}
		for _, c := range s.Overlaps {
			if c.IsEmpty() {
				return Box{}, false
			}
			loMax = math.Min(loMax, c.Hi[i])
			hiMin = math.Max(hiMin, c.Lo[i])
		}
		if loMin > loMax || hiMin > hiMax {
			return Box{}, false
		}
		lo[i], hi[i] = loMin, loMax
		lo[k+i], hi[k+i] = hiMin, hiMax
	}
	return Box{K: 2 * k, Lo: lo, Hi: hi}, true
}
