package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file extends the PR 9 fault-injection pattern (vfs.Injector) from
// the disk to the replication link: a FaultTransport wraps any Transport
// with programmable failpoints so the chaos harness can inject
// disconnects, torn streams, corrupted records, stale-snapshot delays
// and slow links with the same deterministic, call-ordered matching the
// filesystem injector pins.

// Op classifies a transport operation for fault matching.
type Op uint8

// Operations a FaultTransport can fail.
const (
	OpSnapshot Op = iota // Transport.FetchSnapshot
	OpOpen               // Transport.OpenWAL
	OpNext               // RecordStream.Next
	opCount
)

// String returns the op name.
func (op Op) String() string {
	switch op {
	case OpSnapshot:
		return "snapshot"
	case OpOpen:
		return "open"
	case OpNext:
		return "next"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// ErrInjected is the default error an armed fault returns.
var ErrInjected = errors.New("repl: injected fault")

// Fault is one programmable transport failpoint. A fault matches an
// operation when the op kinds are equal; among matching operations the
// first After are let through, then the fault fires Count times
// (Count ≤ 0: forever), then it is spent — exactly vfs.Fault's
// semantics, so a fixed workload plus a fixed schedule always fails at
// the same operation.
type Fault struct {
	// Op is the operation kind to fail.
	Op Op
	// After lets this many matching operations through before firing.
	After int
	// Count is how many times to fire (≤ 0: forever).
	Count int
	// Err is the injected error (nil: ErrInjected). OpNext faults model a
	// disconnect mid-stream; OpOpen/OpSnapshot model a partition.
	Err error
	// Cut applies to OpNext: instead of Err, the stream ends with
	// io.ErrUnexpectedEOF — a torn stream, the primary vanishing without
	// a clean close.
	Cut bool
	// Corrupt applies to OpNext: the operation succeeds but one bit of
	// the record payload is flipped, so the replica's CRC check — not the
	// transport — must catch it.
	Corrupt bool
	// Delay is injected latency before the operation proceeds (a slow
	// link or a stale, slowly-served snapshot). It applies whether or not
	// the fault also injects an error.
	Delay time.Duration
}

type armedFault struct {
	Fault
	seen  int // matching ops observed
	fired int // times this fault injected
}

// spent reports whether the fault has fired its full Count.
func (f *armedFault) spent() bool {
	return f.Count > 0 && f.fired >= f.Count
}

func (f *armedFault) err() error {
	if f.Cut {
		return io.ErrUnexpectedEOF
	}
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// FaultStats summarizes a FaultTransport's activity.
type FaultStats struct {
	Ops      int64            `json:"ops"`
	Injected int64            `json:"injected"`
	ByOp     map[string]int64 `json:"by_op,omitempty"`
}

// FaultTransport wraps a Transport with programmable failpoints. Fault
// evaluation is deterministic: operations are matched in call order
// under one lock.
type FaultTransport struct {
	base Transport

	mu       sync.Mutex
	faults   []*armedFault
	ops      int64
	injected int64
	byOp     [opCount]int64
}

// NewFaultTransport wraps base with an empty fault schedule.
func NewFaultTransport(base Transport) *FaultTransport {
	return &FaultTransport{base: base}
}

// Add arms a fault. Faults are evaluated in Add order; the first armed
// match fires.
func (t *FaultTransport) Add(f Fault) *FaultTransport {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = append(t.faults, &armedFault{Fault: f})
	return t
}

// Clear disarms every fault (spent or not).
func (t *FaultTransport) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = nil
}

// FaultStats returns the observed/injected counters.
func (t *FaultTransport) FaultStats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := FaultStats{Ops: t.ops, Injected: t.injected, ByOp: map[string]int64{}}
	for op, n := range t.byOp {
		if n > 0 {
			st.ByOp[Op(op).String()] = n
		}
	}
	return st
}

// check records one operation and returns the injected delay, whether to
// corrupt the payload, and the injected error (nil: proceed).
func (t *FaultTransport) check(op Op) (delay time.Duration, corrupt bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	t.byOp[op]++
	for _, f := range t.faults {
		if f.Op != op {
			continue
		}
		f.seen++ // this op is the f.seen-th match for this fault
		if f.seen <= f.After || f.spent() {
			continue
		}
		f.fired++
		t.injected++
		if f.Corrupt {
			return f.Delay, true, nil
		}
		if f.Err == nil && !f.Cut && f.Delay > 0 {
			return f.Delay, false, nil // pure slow-link fault
		}
		return f.Delay, false, f.err()
	}
	return 0, false, nil
}

// sleep waits out an injected delay, honoring ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FetchSnapshot implements Transport.
func (t *FaultTransport) FetchSnapshot(ctx context.Context) (*Snapshot, error) {
	delay, _, ferr := t.check(OpSnapshot)
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return t.base.FetchSnapshot(ctx)
}

// OpenWAL implements Transport.
func (t *FaultTransport) OpenWAL(ctx context.Context, after uint64) (RecordStream, error) {
	delay, _, ferr := t.check(OpOpen)
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	s, err := t.base.OpenWAL(ctx, after)
	if err != nil {
		return nil, err
	}
	return &faultStream{base: s, t: t}, nil
}

type faultStream struct {
	base RecordStream
	t    *FaultTransport
}

func (s *faultStream) Next() (WireRecord, error) {
	delay, corrupt, ferr := s.t.check(OpNext)
	if delay > 0 {
		time.Sleep(delay)
	}
	if ferr != nil {
		return WireRecord{}, ferr
	}
	rec, err := s.base.Next()
	if err == nil && corrupt && len(rec.Data) > 0 {
		// Copy before flipping: the decoder may alias an internal buffer.
		data := append([]byte(nil), rec.Data...)
		data[0] ^= 0x40
		rec.Data = data
	}
	return rec, err
}

func (s *faultStream) Close() error { return s.base.Close() }
