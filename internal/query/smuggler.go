package query

import "repro/internal/formula"

// Smuggler builds the paper's §2/Figure 1 example query:
//
//	A ⊑ C                      the destination area is in the country
//	B ⊑ C                      the state is in the country
//	R ⊑ A ∨ B ∨ T              the road stays within area/state/town
//	R ∧ A ≠ 0                  the road reaches the area
//	R ∧ T ≠ 0                  the road starts at the town
//	T ⋢ C                      the town straddles the border
//
// with retrieval order T (towns), R (roads), B (states) and parameters
// C (country) and A (destination area). This is experiment E1's query; it
// is also used by the quickstart example and the benchmarks.
func Smuggler() *Query {
	q := New()
	s := q.Sys
	C := s.Var("C")
	A := s.Var("A")
	T := s.Var("T")
	R := s.Var("R")
	B := s.Var("B")
	s.Subset(A, C)
	s.Subset(B, C)
	s.Subset(R, formula.OrN(A, B, T))
	s.Overlap(R, A)
	s.Overlap(R, T)
	s.NotSubset(T, C)
	return q.From("T", "towns").From("R", "roads").From("B", "states")
}
