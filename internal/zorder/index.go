package zorder

import (
	"fmt"
	"sort"

	"repro/internal/bbox"
)

// Index is a z-order spatial index: each stored box is decomposed into
// z-elements kept in one sorted list, and an overlap query decomposes its
// filter box the same way and reports every stored element whose
// z-interval intersects the filter's — descendants by binary search over
// the code range, ancestors by probing the filter cells' prefixes.
//
// This realizes the paper's concluding remark that the constraint-
// compilation approach "can be extended to make use of z-ordering
// methods": internal/spatialdb plugs this index in as a fifth backend for
// the same compiled range-query plans.
type Index struct {
	space  *Space
	budget int
	elems  []indexElem
	sorted bool
	boxes  map[int64]bbox.Box
}

type indexElem struct {
	code  uint64
	level int
	id    int64
}

// NewIndex returns an empty z-order index over the universe. budget caps
// the number of z-elements per stored box (0 = default 16).
func NewIndex(universe bbox.Box, budget int) *Index {
	if budget <= 0 {
		budget = 16
	}
	return &Index{
		space:  NewSpace(universe),
		budget: budget,
		boxes:  map[int64]bbox.Box{},
	}
}

// Len returns the number of indexed boxes.
func (ix *Index) Len() int { return len(ix.boxes) }

// BulkLoad builds an index over all boxes at once. Inserts already defer
// sorting (the element list is sorted lazily on first search), so the
// batch path costs the same as an insert loop; what BulkLoad adds is
// all-or-nothing construction — any box outside the universe fails the
// whole build, leaving no partially filled index — and a single upfront
// sort so the first search pays no hidden cost. boxes and ids are
// parallel slices.
func BulkLoad(universe bbox.Box, budget int, boxes []bbox.Box, ids []int64) (*Index, error) {
	if len(boxes) != len(ids) {
		return nil, fmt.Errorf("zorder: %d boxes but %d ids", len(boxes), len(ids))
	}
	ix := NewIndex(universe, budget)
	for i, b := range boxes {
		if err := ix.Insert(b, ids[i]); err != nil {
			return nil, err
		}
	}
	ix.ensureSorted()
	return ix, nil
}

// Insert adds a box. The box must lie inside the universe: z-codes only
// cover the gridded space, so outside parts would be silently unsearchable.
func (ix *Index) Insert(b bbox.Box, id int64) error {
	if b.IsEmpty() {
		return fmt.Errorf("zorder: cannot index an empty box")
	}
	if !ix.space.universe.Contains(b) {
		return fmt.Errorf("zorder: box %v outside the universe %v", b, ix.space.universe)
	}
	for _, e := range ix.space.Decompose(b, ix.budget) {
		ix.elems = append(ix.elems, indexElem{code: e.Code, level: e.Level, id: id})
	}
	ix.boxes[id] = b
	ix.sorted = false
	return nil
}

func (ix *Index) ensureSorted() {
	if ix.sorted {
		return
	}
	sort.Slice(ix.elems, func(i, j int) bool {
		if ix.elems[i].code != ix.elems[j].code {
			return ix.elems[i].code < ix.elems[j].code
		}
		return ix.elems[i].level < ix.elems[j].level
	})
	ix.sorted = true
}

// SearchOverlap visits the id of every stored box that overlaps the filter
// box (each id once, ascending). It returns the number of z-elements
// touched — the index cost metric.
func (ix *Index) SearchOverlap(filter bbox.Box, visit func(id int64) bool) int {
	ix.ensureSorted()
	touched := 0
	cover := ix.space.Decompose(filter, ix.budget)
	cand := map[int64]bool{}
	for _, f := range cover {
		// Descendants and equals: stored codes in [f.Code, f.End()).
		lo := sort.Search(len(ix.elems), func(i int) bool {
			return ix.elems[i].code >= f.Code
		})
		for i := lo; i < len(ix.elems) && ix.elems[i].code < f.End(); i++ {
			touched++
			if f.ContainsElem(Element{Code: ix.elems[i].code, Level: ix.elems[i].level}) {
				cand[ix.elems[i].id] = true
			}
		}
		// Ancestors: the prefix cells of f at every coarser level.
		for level := f.Level - 1; level >= 0; level-- {
			size := Element{Level: level}.Size()
			anc := f.Code - f.Code%size
			lo := sort.Search(len(ix.elems), func(i int) bool {
				return ix.elems[i].code >= anc
			})
			for i := lo; i < len(ix.elems) && ix.elems[i].code == anc; i++ {
				touched++
				if ix.elems[i].level == level {
					cand[ix.elems[i].id] = true
				}
			}
		}
	}
	// Exact filter and deterministic order.
	ids := make([]int64, 0, len(cand))
	for id := range cand {
		if ix.boxes[id].Overlaps(filter) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !visit(id) {
			break
		}
	}
	return touched
}

// All visits every stored id in ascending order.
func (ix *Index) All(visit func(id int64) bool) {
	ids := make([]int64, 0, len(ix.boxes))
	for id := range ix.boxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !visit(id) {
			return
		}
	}
}
