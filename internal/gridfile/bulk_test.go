package gridfile

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bbox"
)

func randomPoints(n int, seed int64) ([][]float64, []int64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	ids := make([]int64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		ids[i] = int64(i)
	}
	return pts, ids
}

func collect(g *Grid, q bbox.Box) []int64 {
	var out []int64
	g.Search(q, func(_ []float64, id int64) bool {
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestBulkLoadMatchesLooped: a bulk-loaded grid answers searches exactly
// like an insert-built one, with far fewer directory-rehashing splits.
func TestBulkLoadMatchesLooped(t *testing.T) {
	pts, ids := randomPoints(2000, 8)
	looped := New(2, 8)
	for i, p := range pts {
		if err := looped.Insert(p, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(2, 8, pts, ids)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != looped.Len() {
		t.Fatalf("Len = %d, want %d", bulk.Len(), looped.Len())
	}
	for _, q := range []bbox.Box{
		bbox.Rect(0, 0, 100, 100), bbox.Rect(10, 10, 30, 30), bbox.Rect(55.5, 0, 60, 90),
	} {
		got, want := collect(bulk, q), collect(looped, q)
		if len(got) != len(want) {
			t.Fatalf("query %v: %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: ids differ at %d", q, i)
			}
		}
	}
	if bulk.Splits() >= looped.Splits() {
		t.Errorf("bulk load split %d times, looped %d — pre-seeded scales should split less",
			bulk.Splits(), looped.Splits())
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(2, 8, [][]float64{{1, 2}}, nil); err == nil {
		t.Error("mismatched points/ids accepted")
	}
	if _, err := BulkLoad(2, 8, [][]float64{{1}}, []int64{1}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
}
