package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// TestConcurrentQueriesAndInserts drives readers and writers through the
// HTTP layer against one store: query goroutines POST the smuggler query
// (mixing cached and freshly compiled plans) while writer goroutines
// upsert and delete towns. Run under -race this exercises the store's
// readers–writer guard end to end. Each goroutine asserts that the epochs
// it observes never decrease, and that no request fails.
func TestConcurrentQueriesAndInserts(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 7})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	s := New(store, Options{Workers: 2})

	const (
		readers       = 4
		writers       = 3
		opsPerWorker  = 25
		queriesPerRdr = 15
	)
	queryBody, err := json.Marshal(smugglerRequest(m))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < queriesPerRdr; i++ {
				req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(queryBody))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("query: status %d: %s", w.Code, w.Body.String())
					return
				}
				var resp queryResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.Epoch < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", resp.Epoch, lastEpoch)
					return
				}
				lastEpoch = resp.Epoch
				if resp.Count == 0 {
					errs <- fmt.Errorf("query %d found no solutions", i)
					return
				}
			}
		}()
	}

	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < opsPerWorker; i++ {
				// Towns far outside the country: they never change the
				// smuggler answer, so readers can assert Count > 0.
				name := fmt.Sprintf("w%d-town-%d", wr, i)
				x := 950 + float64(wr)
				y := 950 - float64(i%20)
				reg := jsonRegion{Boxes: []jsonBox{{Lo: []float64{x, y}, Hi: []float64{x + 2, y + 2}}}}
				body, _ := json.Marshal(reg)
				req := httptest.NewRequest(http.MethodPut,
					"/layers/towns/objects/"+name, bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code/100 != 2 {
					errs <- fmt.Errorf("put: status %d: %s", w.Code, w.Body.String())
					return
				}
				var obj objectResponse
				if err := json.Unmarshal(w.Body.Bytes(), &obj); err != nil {
					errs <- err
					return
				}
				if obj.Epoch <= lastEpoch {
					errs <- fmt.Errorf("writer epoch not monotone: %d after %d", obj.Epoch, lastEpoch)
					return
				}
				lastEpoch = obj.Epoch
				if i%5 == 4 {
					req := httptest.NewRequest(http.MethodDelete,
						"/layers/towns/objects/"+name, nil)
					w := httptest.NewRecorder()
					s.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						errs <- fmt.Errorf("delete: status %d: %s", w.Code, w.Body.String())
						return
					}
				}
			}
		}(wr)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The writers performed readers-visible mutations: the final epoch
	// reflects at least one bump per insert and delete.
	if got := s.Store().Epoch(); got < writers*opsPerWorker {
		t.Errorf("final epoch %d, want ≥ %d", got, writers*opsPerWorker)
	}
}

// TestConcurrentBulkAndBatch drives the batch-shaped endpoints
// concurrently: bulk inserters load disjoint object batches (mixed
// atomic/best-effort) while batch-query clients stream NDJSON results.
// Under -race this exercises the single-write-lock bulk path against the
// pinned-generation batch executor.
func TestConcurrentBulkAndBatch(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 7})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	s := New(store, Options{Workers: 2, BatchWorkers: 3})

	const (
		bulkWriters  = 3
		batchReaders = 3
		batches      = 8
		objsPerBatch = 20
	)
	queryBody, err := json.Marshal(batchQueryRequest{
		Queries:     []queryRequest{smugglerRequest(m), smugglerRequest(m), smugglerRequest(m)},
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, bulkWriters+batchReaders)

	for wr := 0; wr < bulkWriters; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var objs []bulkObject
				for i := 0; i < objsPerBatch; i++ {
					// Far corner of the map: never changes the smuggler answer.
					x := 900 + float64(wr)*30 + float64(i)
					y := 960 + float64(b%4)*8
					objs = append(objs, bulkObject{
						Name:  fmt.Sprintf("blk-%d-%d-%d", wr, b, i),
						Boxes: []jsonBox{{Lo: []float64{x, y}, Hi: []float64{x + 0.5, y + 0.5}}},
					})
				}
				body, _ := json.Marshal(objs)
				mode := ""
				if b%2 == 1 {
					mode = "?mode=best_effort"
				}
				req := httptest.NewRequest(http.MethodPost,
					"/layers/cargo/objects:bulk"+mode, bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("bulk: status %d: %s", w.Code, w.Body.String())
					return
				}
				var resp bulkResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.Inserted != objsPerBatch {
					errs <- fmt.Errorf("bulk inserted %d, want %d", resp.Inserted, objsPerBatch)
					return
				}
			}
		}(wr)
	}

	for r := 0; r < batchReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := httptest.NewRequest(http.MethodPost, "/query/batch", bytes.NewReader(queryBody))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("batch: status %d: %s", w.Code, w.Body.String())
					return
				}
				for _, line := range bytes.Split(bytes.TrimSpace(w.Body.Bytes()), []byte("\n")) {
					var m map[string]any
					if err := json.Unmarshal(line, &m); err != nil {
						errs <- fmt.Errorf("batch: bad NDJSON line %q: %v", line, err)
						return
					}
					if e, ok := m["error"]; ok {
						errs <- fmt.Errorf("batch: query error: %v", e)
						return
					}
					if c, ok := m["count"]; ok && c.(float64) == 0 {
						errs <- fmt.Errorf("batch: query found no solutions")
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Store().Layer("cargo").Len(); got != bulkWriters*batches*objsPerBatch {
		t.Errorf("cargo layer has %d objects, want %d", got, bulkWriters*batches*objsPerBatch)
	}
}
