package query

import (
	"math"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// SuggestOrder reorders the query's retrieval bindings with a greedy
// selectivity heuristic and returns the reordered copy. The paper picks
// its retrieval order "arbitrarily" (§2); the order strongly affects how
// early the triangular form can prune, so this planner prefers, at each
// position, the variable that is
//
//  1. most connected to what is already bound (parameters and earlier
//     variables) — more binding constraints mean a tighter range query —
//     and among equally connected variables,
//  2. drawn from the smallest layer (fewer candidates to extend).
//
// The heuristic needs only the store's layer sizes, no data statistics.
// Experiment E12 measures its effect against all permutations.
func SuggestOrder(q *Query, store *spatialdb.Store) *Query {
	if len(q.Retrieve) < 2 {
		return q
	}
	// Variable ids per binding and the parameter set.
	ids := make([]int, len(q.Retrieve))
	for i, b := range q.Retrieve {
		ids[i], _ = q.Sys.Vars.Lookup(b.Var)
	}
	bound := map[int]bool{}
	for _, p := range paramIDs(q) {
		bound[p] = true
	}

	// Layer sizes, read once under the guard (and without store.Layer,
	// which would create layers the query merely names). A missing layer
	// must plan as infinitely large, not zero: size 0 would make it
	// maximally attractive to the greedy order, silently front-loading a
	// step that can only fail. Compile rejects the query anyway; until
	// then the order keeps the existing layers' ranking intact.
	sizes := make([]int, len(q.Retrieve))
	store.RLock()
	for i, b := range q.Retrieve {
		if l, ok := store.LayerIfExists(b.Layer); ok {
			sizes[i] = l.Len()
		} else {
			sizes[i] = math.MaxInt
		}
	}
	store.RUnlock()

	remaining := make([]int, len(ids)) // indices into q.Retrieve
	for i := range remaining {
		remaining[i] = i
	}
	var orderIdx []int
	for len(remaining) > 0 {
		bestPos, bestConn, bestSize := -1, -1, 0
		for pos, ri := range remaining {
			v := ids[ri]
			conn := connectivity(q, v, bound)
			size := sizes[ri]
			better := conn > bestConn ||
				(conn == bestConn && size < bestSize) ||
				(conn == bestConn && size == bestSize && bestPos > pos)
			if bestPos < 0 || better {
				bestPos, bestConn, bestSize = pos, conn, size
			}
		}
		ri := remaining[bestPos]
		orderIdx = append(orderIdx, ri)
		bound[ids[ri]] = true
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}

	out := &Query{Sys: q.Sys}
	for _, ri := range orderIdx {
		out.Retrieve = append(out.Retrieve, q.Retrieve[ri])
	}
	return out
}

// connectivity counts constraints that mention v and otherwise only bound
// variables — the constraints that become range-query content when v is
// retrieved next.
func connectivity(q *Query, v int, bound map[int]bool) int {
	n := 0
	for _, c := range q.Sys.Cons {
		usesV := c.Lhs.Uses(v) || c.Rhs.Uses(v)
		if !usesV {
			continue
		}
		grounded := true
		for _, fv := range append(c.Lhs.FreeVars(), c.Rhs.FreeVars()...) {
			if fv != v && !bound[fv] {
				grounded = false
				break
			}
		}
		if grounded {
			n++
		}
	}
	return n
}

// SuggestOrderSampled chooses the retrieval order with the bound
// parameter values in hand: it enumerates the permutations of the
// retrieval variables (the paper expects few variables, so n! stays tiny),
// estimates each order's cost by sampling per-level fanouts against the
// real layers, and returns the cheapest. The cost model is the expected
// number of candidates the executor examines:
//
//	cost(order) = f1 + f1*f2 + f1*f2*f3 + …
//
// where fi is the average number of survivors of level i's range query
// plus exact filter, measured on a small sample of bound prefixes. Falls
// back to the static SuggestOrder above 5 retrieval variables.
func SuggestOrderSampled(q *Query, store *spatialdb.Store, params map[string]*region.Region) (*Query, error) {
	n := len(q.Retrieve)
	if n < 2 {
		return q, nil
	}
	if n > 5 {
		return SuggestOrder(q, store), nil
	}
	alg := region.NewAlgebra(store.Universe())
	baseEnv, err := bindParams(q, alg, params)
	if err != nil {
		return nil, err
	}

	var best *Query
	bestCost := 0.0
	for _, perm := range permutations(n) {
		cand := &Query{Sys: q.Sys}
		for _, i := range perm {
			cand.Retrieve = append(cand.Retrieve, q.Retrieve[i])
		}
		cost, err := estimateCost(cand, store, alg, baseEnv)
		if err != nil {
			return nil, err
		}
		if best == nil || cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best, nil
}

// estimateCost samples per-level fanouts for one candidate order.
// sampleCap bounds the prefixes carried between levels so the estimate
// stays cheap on large layers.
const sampleCap = 4

// sampleScanCap bounds how many candidates one sampling range query may
// visit. Estimation runs at plan time under the store's read guard with
// no execCtl to poll, so the scan must be finite by construction — an
// unbounded Search over a huge layer would pin the guard and stall
// writers for the whole scan.
const sampleScanCap = 1024

func estimateCost(q *Query, store *spatialdb.Store, alg *region.Algebra, baseEnv []boolalg.Element) (float64, error) {
	plan, err := Compile(q, store)
	if err != nil {
		return 0, err
	}
	if plan.Form.Unsat || !plan.Form.Ground.Satisfied(alg, baseEnv) {
		return 0, nil
	}
	// Sample under the read guard so concurrent writers cannot interleave
	// with the fanout measurements.
	store.RLock()
	defer store.RUnlock()
	layers, err := resolveLayers(store, stepLayerNames(plan))
	if err != nil {
		return 0, err
	}
	k := store.K()

	type prefix struct {
		env    []boolalg.Element
		envBox []bbox.Box
	}
	mkBoxes := func(env []boolalg.Element) []bbox.Box {
		out := make([]bbox.Box, len(env))
		for v := range env {
			if env[v] != nil {
				out[v] = env[v].(*region.Region).BoundingBox()
			}
		}
		return out
	}
	sample := []prefix{{env: baseEnv, envBox: mkBoxes(baseEnv)}}
	cost, width := 0.0, 1.0
	for i, sp := range plan.Steps {
		step := plan.Form.Steps[i]
		total, next := 0, []prefix{}
		for _, pre := range sample {
			spec, ok := sp.Spec(k, pre.envBox)
			if !ok {
				continue
			}
			scanned := 0
			//lint:ignore ctxpoll bounded by sampleScanCap candidates per prefix; plan-time estimation has no execCtl to poll
			layers[i].Search(spec, func(o spatialdb.Object) bool {
				scanned++
				if scanned > sampleScanCap {
					return false
				}
				if !step.Satisfied(alg, pre.env, o.Reg) {
					return true
				}
				total++
				if len(next) < sampleCap {
					env := append([]boolalg.Element(nil), pre.env...)
					env[sp.Var] = o.Reg
					envBox := append([]bbox.Box(nil), pre.envBox...)
					envBox[sp.Var] = o.Box
					next = append(next, prefix{env: env, envBox: envBox})
				}
				return true
			})
		}
		if len(sample) == 0 || total == 0 {
			return cost, nil // dead end: remaining levels cost nothing
		}
		fanout := float64(total) / float64(len(sample))
		width *= fanout
		cost += width
		sample = next
	}
	return cost, nil
}

// permutations returns all permutations of 0..n-1 (n ≤ 5 here).
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}
