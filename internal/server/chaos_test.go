// Server-level chaos tests: disk faults and overload, observed through
// the HTTP surface. The WAL-level properties live in internal/wal's
// chaos tests; here the assertions are about what clients and operators
// see — status codes, Retry-After hints, /healthz vs /readyz, and the
// degraded/shed sections of /stats. `make chaos` runs these under -race.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bbox"
	"repro/internal/spatialdb"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// newFaultyServer is newDurableServer over a fault-injecting filesystem,
// with millisecond retry/probe timings so degraded episodes start and
// end inside a test.
func newFaultyServer(t *testing.T, dir string) (*Server, *wal.DB, *vfs.Injector) {
	t.Helper()
	inj := vfs.NewInjector(nil)
	db, err := wal.OpenDB(dir, wal.DBOptions{
		Kind:               spatialdb.RTree,
		Universe:           bbox.Rect(0, 0, 1000, 1000),
		Log:                wal.Options{Policy: wal.SyncAlways, FS: inj},
		CheckpointInterval: -1, CheckpointBytes: -1,
		RetryMax: 1, RetryBackoff: time.Millisecond,
		ProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inj.Clear(); db.Close() })
	return New(db.Store(), Options{Durable: db}), db, inj
}

// degradedQuery is a valid query against the towns layer, used to prove
// plan execution keeps working while mutations are rejected.
var degradedQuery = queryRequest{
	Query: "find T in towns given C where T !<= C",
	Params: map[string]jsonRegion{
		"C": {Boxes: []jsonBox{{Lo: []float64{500, 500}, Hi: []float64{600, 600}}}},
	},
}

func TestServerTransientFsyncIsAbsorbedInline(t *testing.T) {
	s, db, inj := newFaultyServer(t, t.TempDir())
	putTestObject(t, s, "towns", "a")

	// One fsync fails; the in-line rearm+retry must absorb it: the client
	// sees its write acknowledged, never a 500, and no degraded episode.
	inj.Add(vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: 1, Err: syscall.EIO})
	putTestObject(t, s, "towns", "b")

	if db.Degraded() {
		t.Fatal("transient fsync fault degraded the store")
	}
	var health map[string]any
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", w.Code)
	}
	if health["state"] != "healthy" {
		t.Fatalf("/healthz state = %v, want healthy", health["state"])
	}
	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Degraded == nil || stats.Degraded.Degraded {
		t.Fatalf("degraded stats = %+v", stats.Degraded)
	}
	if stats.Degraded.WALRetries == 0 || stats.Degraded.Rearms == 0 {
		t.Fatalf("retry counters missing from /stats: %+v", stats.Degraded)
	}
	if stats.WAL == nil || stats.WAL.Faults == nil || stats.WAL.Faults.Injected == 0 {
		t.Fatal("injected faults not surfaced in /stats wal section")
	}
}

func TestServerDegradedModeLifecycle(t *testing.T) {
	s, db, inj := newFaultyServer(t, t.TempDir())
	putTestObject(t, s, "towns", "a")

	// Total write outage: the next mutation exhausts its retries, the
	// store degrades, and the client gets a retryable 503 — not a 500.
	inj.Add(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO})
	body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	w := do(t, s, http.MethodPut, "/layers/towns/objects/b", body, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("PUT during outage: %d %s, want 503", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if !db.Degraded() {
		t.Fatal("store not degraded after exhausted retries")
	}

	// Subsequent mutations are rejected the same way, across every verb.
	if w := do(t, s, http.MethodPut, "/layers/towns/objects/c", body, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second PUT: %d, want 503", w.Code)
	}
	if w := do(t, s, http.MethodDelete, "/layers/towns/objects/a", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("DELETE: %d, want 503", w.Code)
	}
	if w := do(t, s, http.MethodPut, "/layers/fresh", nil, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("create layer: %d, want 503", w.Code)
	}
	wb := rawRequest(s, http.MethodPost, "/layers/towns/objects:bulk", "application/json",
		`[{"name": "bk", "boxes": [{"lo": [1, 1], "hi": [2, 2]}]}]`)
	if wb.Code != http.StatusServiceUnavailable || wb.Header().Get("Retry-After") == "" {
		t.Fatalf("bulk insert: %d (Retry-After %q), want 503 with Retry-After",
			wb.Code, wb.Header().Get("Retry-After"))
	}

	// Reads keep serving: point gets and plan execution.
	if w := do(t, s, http.MethodGet, "/layers/towns/objects/a", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("GET while degraded: %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/query", degradedQuery, nil); w.Code != http.StatusOK {
		t.Fatalf("query while degraded: %d %s", w.Code, w.Body.String())
	}

	// /healthz: alive (200) but reporting the state, with Retry-After so
	// both probes steer pollers the same way. /readyz: not ready.
	var health map[string]any
	wh := do(t, s, http.MethodGet, "/healthz", nil, &health)
	if wh.Code != http.StatusOK {
		t.Fatalf("/healthz while degraded: %d, want 200", wh.Code)
	}
	if health["state"] != "degraded" || health["degraded"] != true || health["cause"] == "" {
		t.Fatalf("/healthz = %v", health)
	}
	if wh.Header().Get("Retry-After") == "" {
		t.Fatal("degraded /healthz carries no Retry-After")
	}
	wr := do(t, s, http.MethodGet, "/readyz", nil, nil)
	if wr.Code != http.StatusServiceUnavailable || wr.Header().Get("Retry-After") == "" {
		t.Fatalf("/readyz while degraded: %d (Retry-After %q), want 503 with Retry-After",
			wr.Code, wr.Header().Get("Retry-After"))
	}
	var ready map[string]any
	if err := json.Unmarshal(wr.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready["ready"] != false || ready["state"] != "degraded" {
		t.Fatalf("/readyz body = %v", ready)
	}
	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Degraded == nil || !stats.Degraded.Degraded || stats.Degraded.Cause == "" ||
		stats.Degraded.Transitions != 1 {
		t.Fatalf("degraded /stats section = %+v", stats.Degraded)
	}

	// The disk heals; the probe recovers the store with no restart.
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for db.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never exited degraded mode after the fault cleared")
		}
		time.Sleep(time.Millisecond)
	}
	if w := do(t, s, http.MethodGet, "/readyz", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("/readyz after heal: %d %s", w.Code, w.Body.String())
	}
	// The PUT that triggered degradation was applied in memory and the
	// probe's exit checkpoint made it durable, so the client's retry is a
	// replace (200), not a create — retrying a 503'd upsert is idempotent.
	if w := do(t, s, http.MethodPut, "/layers/towns/objects/b", body, nil); w.Code != http.StatusOK {
		t.Fatalf("retried PUT after heal: %d %s", w.Code, w.Body.String())
	}
	do(t, s, http.MethodGet, "/healthz", nil, &health)
	if health["state"] != "healthy" {
		t.Fatalf("/healthz after heal = %v", health)
	}
}

// newShedServer is a demo-map server with admission control enabled:
// one slot per pool, no queue, and a tiny queue-wait cap.
func newShedServer(t *testing.T) *Server {
	t.Helper()
	s, _ := newTestServer(t)
	// Rebuild with admission options over the same store shape.
	srv := New(s.Store(), Options{MaxInflight: 1, ShedQueue: 0, MaxQueueWait: 5 * time.Millisecond})
	return srv
}

func TestServerShedsReadsWith429(t *testing.T) {
	s := newShedServer(t)
	m := map[string]jsonRegion{}
	_ = m

	// Occupy the only read slot; every arriving query must shed.
	release, err := s.readGate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := queryRequest{Query: "find T in towns given C where T !<= C",
		Params: map[string]jsonRegion{"C": {Boxes: []jsonBox{{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}}}}
	w := do(t, s, http.MethodPost, "/query", req, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("query with pool full: %d %s, want 429", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A shed request must not have touched the store: its write lock is
	// immediately available, so a mutation (separate pool) sails through.
	putTestObject(t, s, "towns", "shed-proof")

	release()
	if w := do(t, s, http.MethodPost, "/query", req, nil); w.Code != http.StatusOK {
		t.Fatalf("query after release: %d %s", w.Code, w.Body.String())
	}

	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Shed == nil || stats.Shed.Reads == nil {
		t.Fatalf("shed /stats section missing: %+v", stats.Shed)
	}
	if stats.Shed.Reads.ShedFull == 0 || stats.Shed.Total == 0 {
		t.Fatalf("shed counters = %+v", stats.Shed)
	}
	if stats.Shed.Reads.MaxInflight != 1 {
		t.Fatalf("reads pool = %+v", stats.Shed.Reads)
	}
}

func TestServerShedsMutationsWith429(t *testing.T) {
	s := newShedServer(t)
	release, err := s.mutGate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	w := do(t, s, http.MethodPut, "/layers/towns/objects/x", body, nil)
	if w.Code != http.StatusTooManyRequests || w.Header().Get("Retry-After") == "" {
		t.Fatalf("PUT with pool full: %d (Retry-After %q), want 429", w.Code, w.Header().Get("Retry-After"))
	}
	// Reads are a separate pool: queries still run.
	req := queryRequest{Query: "find T in towns given C where T !<= C",
		Params: map[string]jsonRegion{"C": {Boxes: []jsonBox{{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}}}}
	if w := do(t, s, http.MethodPost, "/query", req, nil); w.Code != http.StatusOK {
		t.Fatalf("query while mutations shed: %d", w.Code)
	}
	release()
	putTestObject(t, s, "towns", "x2")
}

func TestServerBatchShedsPerQuery(t *testing.T) {
	s := newShedServer(t)
	release, err := s.readGate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	q := queryRequest{Query: "find T in towns given C where T !<= C",
		Params: map[string]jsonRegion{"C": {Boxes: []jsonBox{{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}}}}
	body, _ := json.Marshal(batchQueryRequest{Queries: []queryRequest{q, q, q}, Concurrency: 2})
	w := rawRequest(s, http.MethodPost, "/query/batch", "application/json", string(body))
	if w.Code != http.StatusOK { // the stream itself is fine; sheds are per line
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	lines := ndjsonLines(t, w.Body.String())
	var shedLines int
	var summary map[string]any
	for _, l := range lines {
		if l["done"] == true {
			summary = l
			continue
		}
		if l["shed"] == true {
			if errmsg, _ := l["error"].(string); !strings.Contains(errmsg, "overloaded") {
				t.Fatalf("shed line error = %v", l["error"])
			}
			shedLines++
		}
	}
	if shedLines != 3 {
		t.Fatalf("%d shed lines, want 3: %s", shedLines, w.Body.String())
	}
	if summary == nil || summary["shed"] != float64(3) || summary["errors"] != float64(3) {
		t.Fatalf("batch summary = %v", summary)
	}
}

// TestAdmissionPoolSemantics unit-tests the pool itself: fast-path
// admit, queue-full shed, deadline shed, release reuse, and the nil
// (disabled) pool.
func TestAdmissionPoolSemantics(t *testing.T) {
	a := newAdmission(1, 1, 20*time.Millisecond)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue and sheds on its deadline.
	waiter := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		_, err := a.acquire(context.Background())
		waiter <- err
	}()
	<-entered
	time.Sleep(2 * time.Millisecond) // let the waiter claim the queue token

	// The queue is now full: the next arrival sheds immediately.
	if _, err := a.acquire(context.Background()); !errIsShed(err) {
		t.Fatalf("queue-full acquire: %v, want shed", err)
	}
	if err := <-waiter; !errIsShed(err) {
		t.Fatalf("queued acquire after deadline: %v, want shed", err)
	}

	// Releasing frees the slot for the next acquire.
	r1()
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()

	// A cancelled context sheds a queued request promptly.
	r3, _ := a.acquire(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.acquire(ctx); !errIsShed(err) {
		t.Fatalf("cancelled-context acquire: %v, want shed", err)
	}
	r3()

	st := a.poolStats()
	if st.Admitted != 3 || st.ShedFull == 0 || st.ShedWait == 0 {
		t.Fatalf("pool stats = %+v", st)
	}

	// nil pool: admission control off, everything admitted.
	var off *admission
	rel, err := off.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if off.poolStats() != nil || off.shedTotal() != 0 {
		t.Fatal("nil pool must report no stats")
	}
}
