package query

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/bbox"
	"repro/internal/formula"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// smugglerFixture builds a populated store plus parameter map for the §2
// scenario.
func smugglerFixture(t *testing.T, kind spatialdb.IndexKind, cfg workload.MapConfig) (*spatialdb.Store, map[string]*region.Region) {
	t.Helper()
	m := workload.GenMap(cfg)
	store := spatialdb.NewStore(m.Config.Universe, kind)
	m.Populate(store)
	params := map[string]*region.Region{
		"C": m.Country,
		"A": m.Area,
	}
	return store, params
}

// solutionKey renders a solution set canonically for comparison.
func solutionKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		keys = append(keys, strings.Join(s.Names(), "|"))
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestE1SmugglerAllModesAgree is the core E1 soundness check: the naive
// nested loop and every optimized configuration return the same solution
// set, and the optimized executor examines far fewer candidates.
func TestE1SmugglerAllModesAgree(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42})
	q := Smuggler()

	naive, err := RunNaive(q, store, params)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stats.Solutions == 0 {
		t.Fatalf("scenario has no solutions — workload broken")
	}
	want := solutionKeys(naive)

	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Options{
		{UseIndex: false, UseExact: false},
		{UseIndex: false, UseExact: true},
		{UseIndex: true, UseExact: false},
		{UseIndex: true, UseExact: true},
	}
	for _, opts := range configs {
		res, err := plan.Run(store, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := solutionKeys(res); !equalKeys(got, want) {
			t.Errorf("opts %+v: %d solutions, naive %d", opts, len(got), len(want))
		}
	}

	full, err := plan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Candidates*2 > naive.Stats.Candidates {
		t.Errorf("full pipeline examined %d candidates, naive %d — no pruning win",
			full.Stats.Candidates, naive.Stats.Candidates)
	}
}

// TestE1SolutionSemantics spot-checks the meaning of each solution: the
// town straddles the border, the road overlaps town and area, and the road
// stays within area ∪ state ∪ town.
func TestE1SolutionSemantics(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}

	res, err := CompileAndRun(Smuggler(), store, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range res.Solutions {
		town, road, state := sol.Objects[0].Reg, sol.Objects[1].Reg, sol.Objects[2].Reg
		if town.Difference(m.Country).IsEmpty() {
			t.Errorf("town %s does not straddle the border", sol.Objects[0].Name)
		}
		if !road.Overlaps(town) {
			t.Errorf("road %s misses town %s", sol.Objects[1].Name, sol.Objects[0].Name)
		}
		if !road.Overlaps(m.Area) {
			t.Errorf("road %s misses the area", sol.Objects[1].Name)
		}
		cover := m.Area.Union(state).Union(town)
		if !road.Leq(cover) {
			t.Errorf("road %s leaves area ∪ state ∪ town", sol.Objects[1].Name)
		}
		if !state.Leq(m.Country) {
			t.Errorf("state %s outside the country", sol.Objects[2].Name)
		}
		// No solution may use an interior decoy town.
		if strings.HasPrefix(sol.Objects[0].Name, "town-") {
			t.Errorf("interior town %s in a solution", sol.Objects[0].Name)
		}
	}
}

// TestE1PlanShape asserts the bounding-box plan the paper derives in §2:
// T is unconstrained at the box level, R gets upper bound ⌈C⌉⊔⌈T⌉ plus
// overlap witnesses ⌈A⌉ and ⌈T⌉, and B gets upper bound ⌈C⌉.
func TestE1PlanShape(t *testing.T) {
	store, _ := smugglerFixture(t, spatialdb.Scan, workload.MapConfig{Seed: 1})
	q := Smuggler()
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	vars := q.Sys.Vars
	idOf := func(name string) int {
		v, ok := vars.Lookup(name)
		if !ok {
			t.Fatalf("variable %s missing", name)
		}
		return v
	}
	k := 2
	// Sample boxes to compare box functions semantically.
	envBox := make([]bbox.Box, vars.Len())
	envBox[idOf("C")] = bbox.Rect(10, 10, 90, 90)
	envBox[idOf("A")] = bbox.Rect(30, 30, 50, 50)
	envBox[idOf("T")] = bbox.Rect(5, 40, 15, 50)

	// Step 1 (T): trivial bounds — lower empty, upper universe, and any
	// overlap witnesses must be trivial too (the paper's ⌈T⌉ ⊑ 1 line).
	st := plan.Steps[0]
	if !st.Lower.Eval(k, envBox).IsEmpty() {
		t.Errorf("T lower bound = %v, want empty", st.Lower)
	}
	if !st.Upper.Eval(k, envBox).Equal(bbox.Univ(k)) {
		t.Errorf("T upper bound = %v, want universe", st.Upper)
	}
	spec, ok := st.Spec(k, envBox)
	if !ok {
		t.Fatalf("T spec unsatisfiable")
	}
	if len(spec.Overlaps) != 0 {
		t.Errorf("T spec has overlap constraints %v — paper derives none", spec.Overlaps)
	}

	// Step 2 (R): upper bound ⌈C⌉ ⊔ ⌈T⌉, overlaps {⌈A⌉, ⌈T⌉}.
	st = plan.Steps[1]
	wantUpper := envBox[idOf("C")].Join(envBox[idOf("T")])
	if got := st.Upper.Eval(k, envBox); !got.Equal(wantUpper) {
		t.Errorf("R upper bound = %v, want ⌈C⌉⊔⌈T⌉ = %v (func %v)", got, wantUpper, st.Upper)
	}
	spec, ok = st.Spec(k, envBox)
	if !ok {
		t.Fatalf("R spec unsatisfiable")
	}
	wantOverlaps := map[string]bool{
		envBox[idOf("A")].String(): true,
		envBox[idOf("T")].String(): true,
	}
	if len(spec.Overlaps) != 2 {
		t.Fatalf("R spec overlaps = %v, want ⌈A⌉ and ⌈T⌉", spec.Overlaps)
	}
	for _, o := range spec.Overlaps {
		if !wantOverlaps[o.String()] {
			t.Errorf("unexpected R overlap witness %v", o)
		}
	}

	// Step 3 (B): upper bound ⌈C⌉.
	st = plan.Steps[2]
	if got := st.Upper.Eval(k, envBox); !got.Equal(envBox[idOf("C")]) {
		t.Errorf("B upper bound = %v, want ⌈C⌉ (func %v)", got, st.Upper)
	}

	// Explain must mention every step.
	exp := plan.Explain()
	for _, want := range []string{"step 1", "step 2", "step 3", "towns", "roads", "states"} {
		if !strings.Contains(exp, want) {
			t.Errorf("Explain missing %q:\n%s", want, exp)
		}
	}
}

// All four index backends must produce identical solutions (E11 at the
// query level).
func TestAllBackendsProduceSameSolutions(t *testing.T) {
	var want []string
	kinds := []spatialdb.IndexKind{spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree, spatialdb.Grid, spatialdb.ZOrderIdx}
	for i, kind := range kinds {
		store, params := smugglerFixture(t, kind, workload.MapConfig{Seed: 7})
		res, err := CompileAndRun(Smuggler(), store, params)
		if err != nil {
			t.Fatal(err)
		}
		keys := solutionKeys(res)
		if i == 0 {
			want = keys
			if len(want) == 0 {
				t.Fatalf("no solutions on seed 7")
			}
			continue
		}
		if !equalKeys(keys, want) {
			t.Errorf("backend %v: %d solutions, scan %d", kind, len(keys), len(want))
		}
	}
}

func TestValidationErrors(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 10, 10), spatialdb.Scan)
	store.MustInsert("towns", "t", region.FromBox(bbox.Rect(0, 0, 1, 1)))

	// No retrieval variables.
	q := New()
	q.Sys.Var("x")
	if _, err := Compile(q, store); err == nil {
		t.Errorf("empty retrieval accepted")
	}
	// Unknown variable.
	q = New().From("nosuch", "towns")
	if _, err := Compile(q, store); err == nil {
		t.Errorf("unknown retrieval variable accepted")
	}
	// Unknown layer.
	q = New()
	x := q.Sys.Var("x")
	q.Sys.NonEmpty(x)
	q.From("x", "nolayer")
	if _, err := Compile(q, store); err == nil {
		t.Errorf("unknown layer accepted")
	}
	// Duplicate retrieval.
	q = New()
	x = q.Sys.Var("x")
	q.Sys.NonEmpty(x)
	q.From("x", "towns").From("x", "towns")
	if _, err := Compile(q, store); err == nil {
		t.Errorf("duplicate retrieval accepted")
	}
}

func TestUnboundParameter(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 10, 10), spatialdb.Scan)
	store.MustInsert("towns", "t", region.FromBox(bbox.Rect(0, 0, 1, 1)))
	q := New()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "towns")
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(store, nil, DefaultOptions); err == nil {
		t.Errorf("run with unbound parameter succeeded")
	}
	if _, err := RunNaive(q, store, nil); err == nil {
		t.Errorf("naive run with unbound parameter succeeded")
	}
}

func TestGroundUnsatShortCircuits(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.Scan)
	store.MustInsert("objs", "o", region.FromBox(bbox.Rect(0, 0, 5, 5)))
	q := New()
	x, a, c := q.Sys.Var("x"), q.Sys.Var("A"), q.Sys.Var("C")
	q.Sys.Subset(a, c).Subset(x, c)
	q.From("x", "objs")
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	// A ⋢ C: ground constraint fails.
	params := map[string]*region.Region{
		"A": region.FromBox(bbox.Rect(0, 0, 50, 50)),
		"C": region.FromBox(bbox.Rect(60, 60, 70, 70)),
	}
	res, err := plan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.GroundFailed || len(res.Solutions) != 0 {
		t.Errorf("ground failure not detected: %+v", res.Stats)
	}
	if res.Stats.Candidates != 0 {
		t.Errorf("candidates examined despite ground failure")
	}
}

func TestStaticallyUnsatisfiableQuery(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.Scan)
	store.MustInsert("objs", "o", region.FromBox(bbox.Rect(0, 0, 5, 5)))
	q := New()
	x := q.Sys.Var("x")
	q.Sys.Subset(x, formula.Zero()).NonEmpty(x)
	q.From("x", "objs")
	plan, err := Compile(q, store)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(store, nil, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 || !res.Stats.GroundFailed {
		t.Errorf("unsatisfiable query returned solutions")
	}
}

// TestSingleVariableContainmentQuery exercises the simplest pipeline: find
// objects inside a parameter region.
func TestSingleVariableContainmentQuery(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	in := store.MustInsert("objs", "in", region.FromBox(bbox.Rect(10, 10, 20, 20)))
	store.MustInsert("objs", "out", region.FromBox(bbox.Rect(80, 80, 90, 90)))
	store.MustInsert("objs", "half", region.FromBox(bbox.Rect(25, 25, 45, 45)))

	q := New()
	x, c := q.Sys.Var("x"), q.Sys.Var("C")
	q.Sys.Subset(x, c)
	q.From("x", "objs")
	params := map[string]*region.Region{"C": region.FromBox(bbox.Rect(0, 0, 30, 30))}

	res, err := CompileAndRun(q, store, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0].Objects[0].ID != in.ID {
		t.Errorf("containment query = %v", solutionKeys(res))
	}
}

// TestOverlapJoinQuery is the binary spatial join: pairs of overlapping
// objects across two layers (the query class Orenstein–Manola support).
func TestOverlapJoinQuery(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	rng := workload.NewRNG(3)
	var aObjs, bObjs []spatialdb.Object
	for i := 0; i < 40; i++ {
		x, y := rng.Range(0, 90), rng.Range(0, 90)
		aObjs = append(aObjs, store.MustInsert("as", "", region.FromBox(bbox.Rect(x, y, x+8, y+8))))
		x, y = rng.Range(0, 90), rng.Range(0, 90)
		bObjs = append(bObjs, store.MustInsert("bs", "", region.FromBox(bbox.Rect(x, y, x+8, y+8))))
	}
	q := New()
	xa, xb := q.Sys.Var("x"), q.Sys.Var("y")
	q.Sys.Overlap(xa, xb)
	q.From("x", "as").From("y", "bs")

	res, err := CompileAndRun(q, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range aObjs {
		for _, b := range bObjs {
			if a.Reg.Overlaps(b.Reg) {
				want++
			}
		}
	}
	if res.Stats.Solutions != want {
		t.Errorf("join found %d pairs, brute force %d", res.Stats.Solutions, want)
	}
}

// Stats consistency: extensions + rejects == candidates, and solutions +
// final rejects == final checks.
func TestStatsConsistency(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 9})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Candidates != st.ExactRejects+st.Extended {
		t.Errorf("candidates %d ≠ rejects %d + extended %d",
			st.Candidates, st.ExactRejects, st.Extended)
	}
	if st.FinalChecked != st.Solutions+st.FinalRejected {
		t.Errorf("final checks inconsistent: %+v", st)
	}
	if st.DB.Queries == 0 {
		t.Errorf("no DB queries recorded")
	}
}

// With the exact filter on, bbox-induced false positives at intermediate
// steps are rejected before extension; the final verification then never
// fires negative for single-disequation-per-level systems (Theorem 4
// exactness). The smuggler system has at most one disequation per level
// after projection folding — verify FinalRejected is zero in exact mode.
func TestExactModeFinalRejections(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 11})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(store, params, Options{UseIndex: true, UseExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalRejected != 0 {
		t.Errorf("exact mode rejected %d tuples at final verification (of %d)",
			res.Stats.FinalRejected, res.Stats.FinalChecked)
	}
}
