package spatialdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/stats"
)

// The compact binary snapshot format — the production counterpart of the
// JSON codec in persist.go (which stays as the debug/interchange format).
// Unlike JSON it preserves object ids and the id counter exactly, so a
// store restored from it resolves WAL records (Remove/Upsert by id)
// identically to the store that wrote it. Layout (all integers
// little-endian or uvarint, floats as IEEE-754 bit patterns):
//
//	magic    "BQSN"                      4 bytes
//	version  uint16                      currently 2
//	k        uint16                      dimensionality
//	nextID   uint64                      highest object id handed out
//	universe 2·k float64                 lo then hi
//	layers   uvarint count, per layer:
//	  name    string (uvarint len + bytes)
//	  objects uvarint count, per object (insertion order):
//	    id     uvarint
//	    name   string
//	    boxes  uvarint count, 2·k float64 each (lo then hi)
//	  stats   uvarint len + stats.Snapshot binary blob   (v2 only)
//	crc32    uint32 (IEEE) of every preceding byte
//
// Indexes are derived state and are rebuilt on load through the packed
// bulk path, so binary snapshots are portable across index backends.
// Version 2 adds the per-layer planner statistics; version 1 snapshots
// (no stats blob) still load, with statistics recomputed from the
// objects. As in the JSON codec, a recorded block whose geometry no
// longer matches the current parameters is ignored in favor of the
// recomputed one.

var binSnapMagic = [4]byte{'B', 'Q', 'S', 'N'}

const binSnapVersion = 2

// SaveBinary writes the store as a binary snapshot under the store's
// read guard, so it captures a consistent state even while writers are
// active.
func (s *Store) SaveBinary(w io.Writer) error {
	return s.SaveBinaryMark(w, nil)
}

// SaveBinaryMark is SaveBinary with a hook: if mark is non-nil it runs
// inside the same read-guard critical section that serializes the state.
// Mutations append their WAL records under the write lock, so the WAL
// checkpointer uses mark to read the last logged position and gets a
// snapshot↔log boundary that is exact, not approximate.
func (s *Store) SaveBinaryMark(w io.Writer, mark func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if mark != nil {
		mark()
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	var scratch [8]byte
	writeU16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		bw.Write(scratch[:2])
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		bw.Write(scratch[:8])
	}
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		bw.WriteString(s)
	}
	writeFloats := func(vs []float64) {
		for _, v := range vs {
			writeU64(math.Float64bits(v))
		}
	}

	bw.Write(binSnapMagic[:])
	writeU16(binSnapVersion)
	writeU16(uint16(s.universe.K))
	writeU64(uint64(s.nextID))
	writeFloats(s.universe.Lo)
	writeFloats(s.universe.Hi)
	writeUvarint(uint64(len(s.names)))
	for _, name := range s.names {
		l := s.layers[name]
		writeString(name)
		writeUvarint(uint64(len(l.order)))
		for _, id := range l.order {
			o := l.objs[id]
			writeUvarint(uint64(o.ID))
			writeString(o.Name)
			boxes := o.Reg.Boxes()
			writeUvarint(uint64(len(boxes)))
			for _, b := range boxes {
				writeFloats(b.Lo)
				writeFloats(b.Hi)
			}
		}
		blob, err := l.data.Snapshot().MarshalBinary()
		if err != nil {
			return fmt.Errorf("spatialdb: encoding layer %q statistics: %w", name, err)
		}
		writeUvarint(uint64(len(blob)))
		bw.Write(blob)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("spatialdb: writing binary snapshot: %w", err)
	}
	// The checksum trails everything it covers; write it to w alone.
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := w.Write(scratch[:4]); err != nil {
		return fmt.Errorf("spatialdb: writing binary snapshot: %w", err)
	}
	return nil
}

// LoadBinary reads a snapshot written by SaveBinary into a fresh store
// with the given index backend, verifying the trailing checksum before
// trusting any of the content.
func LoadBinary(r io.Reader, kind IndexKind) (*Store, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: reading binary snapshot: %w", err)
	}
	if len(raw) < len(binSnapMagic)+4 {
		return nil, errors.New("spatialdb: binary snapshot: too short")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("spatialdb: binary snapshot: checksum mismatch (%08x != %08x)", got, want)
	}
	d := &mutDecoder{buf: body}
	var magic [4]byte
	for i := range magic {
		if magic[i], err = d.byte(); err != nil {
			return nil, errors.New("spatialdb: binary snapshot: truncated header")
		}
	}
	if magic != binSnapMagic {
		return nil, fmt.Errorf("spatialdb: binary snapshot: bad magic %q", magic[:])
	}
	version, err := d.u16()
	if err != nil {
		return nil, err
	}
	if version < 1 || version > binSnapVersion {
		return nil, fmt.Errorf("spatialdb: binary snapshot: unsupported version %d", version)
	}
	k16, err := d.u16()
	if err != nil {
		return nil, err
	}
	k := int(k16)
	if k == 0 {
		return nil, errors.New("spatialdb: binary snapshot: zero dimensionality")
	}
	nextID, err := d.u64()
	if err != nil {
		return nil, err
	}
	lo, err := d.floats(k)
	if err != nil {
		return nil, err
	}
	hi, err := d.floats(k)
	if err != nil {
		return nil, err
	}
	universe, err := bbox.Make(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: binary snapshot: universe: %w", err)
	}
	if universe.IsEmpty() {
		return nil, errors.New("spatialdb: binary snapshot: empty universe")
	}
	store := NewStore(universe, kind)
	numLayers, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	seen := make(map[int64]bool)
	for li := uint64(0); li < numLayers; li++ {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		numObjs, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if numObjs > uint64(len(d.buf)) {
			return nil, fmt.Errorf("spatialdb: binary snapshot: impossible object count %d", numObjs)
		}
		objs := make([]Object, 0, numObjs)
		for oi := uint64(0); oi < numObjs; oi++ {
			id, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			oname, err := d.string()
			if err != nil {
				return nil, err
			}
			numBoxes, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if numBoxes > uint64(len(d.buf)) {
				return nil, fmt.Errorf("spatialdb: binary snapshot: impossible box count %d", numBoxes)
			}
			boxes := make([]bbox.Box, 0, numBoxes)
			for bi := uint64(0); bi < numBoxes; bi++ {
				blo, err := d.floats(k)
				if err != nil {
					return nil, err
				}
				bhi, err := d.floats(k)
				if err != nil {
					return nil, err
				}
				b, err := bbox.Make(blo, bhi)
				if err != nil {
					return nil, fmt.Errorf("spatialdb: binary snapshot: layer %q object %q: %w", name, oname, err)
				}
				boxes = append(boxes, b)
			}
			o, err := restoredSnapObject(store, int64(id), oname, boxes, seen)
			if err != nil {
				return nil, fmt.Errorf("spatialdb: binary snapshot: layer %q object %q: %w", name, oname, err)
			}
			objs = append(objs, o)
		}
		if err := store.restoreLayer(name, objs); err != nil {
			return nil, fmt.Errorf("spatialdb: binary snapshot: layer %q: %w", name, err)
		}
		if version >= 2 {
			blobLen, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if blobLen > uint64(len(d.buf)) {
				return nil, fmt.Errorf("spatialdb: binary snapshot: impossible stats length %d", blobLen)
			}
			var snap stats.Snapshot
			if err := snap.UnmarshalBinary(d.buf[:blobLen]); err != nil {
				return nil, fmt.Errorf("spatialdb: binary snapshot: layer %q statistics: %w", name, err)
			}
			d.buf = d.buf[blobLen:]
			store.restoreLayerStats(name, snap)
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("spatialdb: binary snapshot: %d trailing bytes", len(d.buf))
	}
	store.restoreNextID(int64(nextID))
	return store, nil
}

// restoredSnapObject validates one snapshot object (either codec) and
// rebuilds it, enforcing id uniqueness across the whole snapshot.
func restoredSnapObject(store *Store, id int64, name string, boxes []bbox.Box, seen map[int64]bool) (Object, error) {
	if id <= 0 {
		return Object{}, fmt.Errorf("invalid object id %d", id)
	}
	if seen[id] {
		return Object{}, fmt.Errorf("duplicate object id %d", id)
	}
	seen[id] = true
	reg := region.FromBoxes(store.K(), boxes...)
	if reg.IsEmpty() {
		return Object{}, errors.New("empty region")
	}
	return Object{ID: id, Name: name, Reg: reg, Box: reg.BoundingBox()}, nil
}

// restoreLayer installs a layer and its objects (recorded ids intact)
// through the packed bulk path, advancing the id counter past them. Used
// by the snapshot loaders, which own their fresh store exclusively.
func (s *Store) restoreLayer(name string, objs []Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.ensureLayerLocked(name)
	if _, err := l.bulkInsert(objs, true); err != nil {
		return err
	}
	for _, o := range objs {
		if o.ID > s.nextID {
			s.nextID = o.ID
		}
	}
	s.epoch.Add(1)
	return nil
}

// restoreNextID raises the id counter to at least id (snapshots persist
// the counter so ids of deleted objects are never reissued).
func (s *Store) restoreNextID(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id > s.nextID {
		s.nextID = id
	}
}

// ---- little decoder extensions for the fixed-width snapshot fields ----

func (d *mutDecoder) u16() (uint16, error) {
	if len(d.buf) < 2 {
		return 0, errShortRecord
	}
	v := binary.LittleEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v, nil
}

func (d *mutDecoder) u64() (uint64, error) {
	if len(d.buf) < 8 {
		return 0, errShortRecord
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v, nil
}

func (d *mutDecoder) floats(k int) ([]float64, error) {
	if len(d.buf) < 8*k {
		return nil, errShortRecord
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
		d.buf = d.buf[8:]
	}
	return out, nil
}
