package formula

import (
	"testing"
	"testing/quick"

	"repro/internal/boolalg"
)

func TestEvalOverBitset(t *testing.T) {
	alg := boolalg.NewBitset(8)
	x, y := Var(0), Var(1)
	env := []boolalg.Element{alg.Elem(0b00001111), alg.Elem(0b00111100)}
	f := And(x, y)
	if got := Eval(f, alg, env).(uint64); got != 0b00001100 {
		t.Errorf("Eval(x&y) = %#b", got)
	}
	g := Or(Not(x), y)
	if got := Eval(g, alg, env).(uint64); got != 0b11111100 {
		t.Errorf("Eval(~x|y) = %#b", got)
	}
	if got := Eval(One(), alg, nil).(uint64); got != alg.Univ() {
		t.Errorf("Eval(1) = %#x", got)
	}
	if got := Eval(Zero(), alg, nil).(uint64); got != 0 {
		t.Errorf("Eval(0) = %#x", got)
	}
}

func TestEvalPanicsOnUnbound(t *testing.T) {
	alg := boolalg.NewBitset(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with unbound variable should panic")
		}
	}()
	Eval(Var(3), alg, []boolalg.Element{alg.Top()})
}

func TestEvalBits(t *testing.T) {
	x, y := Var(0), Var(1)
	f := Xor(x, y)
	cases := []struct {
		assign uint64
		want   bool
	}{
		{0b00, false}, {0b01, true}, {0b10, true}, {0b11, false},
	}
	for _, c := range cases {
		if got := EvalBits(f, c.assign); got != c.want {
			t.Errorf("EvalBits(x^y, %#b) = %v", c.assign, got)
		}
	}
}

func TestEquivalent(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	if !Equivalent(And(x, Or(y, z)), Or(And(x, y), And(x, z))) {
		t.Errorf("distributivity not recognized")
	}
	if Equivalent(And(x, y), Or(x, y)) {
		t.Errorf("x&y ≡ x|y accepted")
	}
	if !Equivalent(Not(And(x, y)), Or(Not(x), Not(y))) {
		t.Errorf("De Morgan not recognized")
	}
	// Formulas over disjoint variable sets.
	if Equivalent(x, y) {
		t.Errorf("x ≡ y accepted")
	}
}

func TestTautologies(t *testing.T) {
	x, y := Var(0), Var(1)
	if !TautologyOne(Or(x, Not(x))) {
		t.Errorf("excluded middle not a tautology")
	}
	if !TautologyZero(And(x, Not(x))) {
		t.Errorf("contradiction not zero")
	}
	if TautologyZero(And(x, y)) {
		t.Errorf("satisfiable formula reported zero")
	}
	if !Implies2(And(x, y), x) {
		t.Errorf("x&y ⇒ x not recognized")
	}
	if Implies2(x, And(x, y)) {
		t.Errorf("x ⇒ x&y accepted")
	}
}

// Property: Eval over the two-valued Bitset agrees with EvalBits.
func TestQuickEvalAgreesWithEvalBits(t *testing.T) {
	alg := boolalg.Two()
	x, y, z := Var(0), Var(1), Var(2)
	f := Or(And(x, Not(y)), Xor(y, z))
	check := func(assign uint64) bool {
		assign &= 0b111
		env := make([]boolalg.Element, 3)
		for i := 0; i < 3; i++ {
			if assign&(uint64(1)<<uint(i)) != 0 {
				env[i] = alg.Top()
			} else {
				env[i] = alg.Bottom()
			}
		}
		got := !alg.IsBottom(Eval(f, alg, env))
		return got == EvalBits(f, assign)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is a homomorphism — Eval(f∧g) = Eval(f) ∧ Eval(g).
func TestQuickEvalHomomorphism(t *testing.T) {
	alg := boolalg.NewBitset(16)
	x, y := Var(0), Var(1)
	f := Or(x, Not(y))
	g := And(Not(x), y)
	check := func(a, b uint64) bool {
		env := []boolalg.Element{alg.Elem(a), alg.Elem(b)}
		lhs := Eval(And(f, g), alg, env)
		rhs := alg.Meet(Eval(f, alg, env), Eval(g, alg, env))
		return alg.Equal(lhs, rhs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
