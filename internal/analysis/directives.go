package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The analyzers are configured by comment directives in the checked
// source, all under one namespace:
//
//	//boolq:guardedby mu        on a struct field: accesses require the
//	                            sibling mutex field mu to be held
//	//boolq:locked mu           on a func: callers guarantee mu of the
//	                            receiver/first param is write-held at entry
//	//boolq:rlocked mu          same, read-held
//	//boolq:noalloc             the function must not allocate
//	//boolq:allowalloc <why>    line-level escape inside a noalloc func
//	                            (e.g. one-time scratch growth)
//	//boolq:mutation [nostats]  a store mutation entry point: write lock,
//	                            epoch bump, WAL log after apply with the
//	                            error propagated, stats maintenance
//	//boolq:statsink            marks a statistics-maintenance func that
//	                            mutation entry points must reach
//	//boolq:errwriter           marks an HTTP error-response writer:
//	                            calls must be followed by return
//	//boolq:cancelloop          opt a function into ctxpoll outside the
//	                            default packages
//
// Findings are suppressed, one per line and with a mandatory reason, by
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it.

// Directive is one parsed //boolq: comment.
type Directive struct {
	Name string // e.g. "guardedby"
	Args []string
	Pos  token.Pos
}

// Directives indexes every //boolq: directive of one package by the
// declaration it is attached to.
type Directives struct {
	fset  *token.FileSet
	funcs map[*ast.FuncDecl][]Directive
	field map[*ast.Field][]Directive
	// lines holds line-anchored directives (allowalloc, lint:ignore) as
	// filename:line → directives on that line.
	lines map[string][]Directive
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "boolq:") {
		return Directive{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "boolq:"))
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

func groupDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// CollectDirectives scans the pass's files once.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	ds := &Directives{
		fset:  fset,
		funcs: map[*ast.FuncDecl][]Directive{},
		field: map[*ast.Field][]Directive{},
		lines: map[string][]Directive{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c); ok {
					ds.lines[lineKey(fset, c.Pos())] = append(ds.lines[lineKey(fset, c.Pos())], d)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if d := groupDirectives(n.Doc); len(d) > 0 {
					ds.funcs[n] = d
				}
			case *ast.Field:
				var d []Directive
				d = append(d, groupDirectives(n.Doc)...)
				d = append(d, groupDirectives(n.Comment)...)
				if len(d) > 0 {
					ds.field[n] = d
				}
			}
			return true
		})
	}
	return ds
}

func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Func returns the named directive on fn, if any.
func (ds *Directives) Func(fn *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range ds.funcs[fn] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Field returns the named directive on a struct field, if any.
func (ds *Directives) Field(f *ast.Field, name string) (Directive, bool) {
	for _, d := range ds.field[f] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// OnLine reports whether the named directive appears on the line of pos.
func (ds *Directives) OnLine(pos token.Pos, name string) bool {
	for _, d := range ds.lines[lineKey(ds.fset, pos)] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// ---- suppression (//lint:ignore) ----

// Suppressions maps filename:line → the analyzer names suppressed there.
type Suppressions map[string]map[string]bool

// CollectSuppressions scans files for //lint:ignore comments. The
// directive requires both an analyzer name and a reason; a bare
// //lint:ignore suppresses nothing (a silent escape hatch would defeat
// the suite).
func CollectSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
				if len(fields) < 2 {
					continue // no reason given: not honored
				}
				key := lineKey(fset, c.Pos())
				if sup[key] == nil {
					sup[key] = map[string]bool{}
				}
				sup[key][fields[0]] = true
			}
		}
	}
	return sup
}

// Suppressed reports whether a diagnostic from analyzer at pos is covered
// by a //lint:ignore on its line or the line above.
func (s Suppressions) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		if m := s[p.Filename+":"+itoa(line)]; m[analyzer] || m["all"] {
			return true
		}
	}
	return false
}
