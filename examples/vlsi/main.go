// VLSI design-rule checking: one of the application domains the paper's
// introduction cites (Ullman's "Computational aspects of VLSI").
//
// Two rules over a generated two-metal-layer layout:
//
//  1. connected vias: find (via, m1, m2) with via ⊑ m1 and via ⊑ m2 —
//     a three-variable containment join;
//  2. dangling vias: vias overlapping NO metal1 wire, found by running
//     rule 1's first step and complementing.
//
// Run with:
//
//	go run ./examples/vlsi
package main

import (
	"fmt"
	"log"

	boolq "repro"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func main() {
	layout := workload.GenVLSI(workload.VLSIConfig{Seed: 7, Metal1: 40, Metal2: 40, Vias: 50})
	store := spatialdb.NewStore(layout.Config.Universe, spatialdb.PointRTree)
	layout.Populate(store)
	fmt.Printf("layout: %d m1 wires, %d m2 wires, %d vias\n\n",
		store.Layer("metal1").Len(), store.Layer("metal2").Len(), store.Layer("vias").Len())

	// Rule 1: a via must land on both layers it connects.
	q, err := boolq.ParseQuery(`
		find V in vias, M1 in metal1, M2 in metal2
		where V <= M1; V <= M2`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := boolq.Compile(q, store)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.Run(store, nil, boolq.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	connected := map[string]bool{}
	for _, sol := range res.Solutions {
		connected[sol.Objects[0].Name] = true
	}
	fmt.Printf("rule 1 (connected vias): %d connections across %d vias\n",
		len(res.Solutions), len(connected))
	fmt.Printf("  pipeline stats: %d candidates, %d db objects scanned\n\n",
		res.Stats.Candidates, res.Stats.DB.Scanned)

	// Rule 2: vias touching no metal1 wire at all are dangling.
	q2, err := boolq.ParseQuery(`
		find V in vias, M1 in metal1
		where V & M1 != 0`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := boolq.CompileAndRun(q2, store, nil)
	if err != nil {
		log.Fatal(err)
	}
	touching := map[string]bool{}
	for _, sol := range res2.Solutions {
		touching[sol.Objects[0].Name] = true
	}
	dangling := 0
	store.Layer("vias").All(func(o spatialdb.Object) bool {
		if !touching[o.Name] {
			dangling++
			if dangling <= 5 {
				fmt.Printf("rule 2 violation: %s touches no metal1 wire\n", o.Name)
			}
		}
		return true
	})
	fmt.Printf("rule 2 (dangling vias): %d violations\n", dangling)
}
