// JSON wire types for boolqd. Boxes travel as {"lo": [...], "hi": [...]}
// (the same shape persist.go snapshots use), regions as box unions, and
// query results as name/id tuples plus the executor statistics, so a
// client can check the paper's pruning claims over the wire.
package server

import (
	"fmt"

	"repro/internal/bbox"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

type jsonBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

func toJSONBox(b bbox.Box) jsonBox {
	return jsonBox{
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

// jsonRegion is a rectilinear region as a union of boxes.
type jsonRegion struct {
	Boxes []jsonBox `json:"boxes"`
}

func toJSONRegion(r *region.Region) jsonRegion {
	jr := jsonRegion{Boxes: []jsonBox{}}
	for _, b := range r.Boxes() {
		jr.Boxes = append(jr.Boxes, toJSONBox(b))
	}
	return jr
}

// toRegion validates and converts a wire region of dimensionality k.
func (jr jsonRegion) toRegion(k int) (*region.Region, error) {
	boxes := make([]bbox.Box, 0, len(jr.Boxes))
	for i, jb := range jr.Boxes {
		if len(jb.Lo) != k || len(jb.Hi) != k {
			return nil, fmt.Errorf("box %d: want %d-dimensional lo/hi, got %d/%d",
				i, k, len(jb.Lo), len(jb.Hi))
		}
		b, err := bbox.Make(jb.Lo, jb.Hi)
		if err != nil {
			return nil, fmt.Errorf("box %d: %w", i, err)
		}
		boxes = append(boxes, b)
	}
	return region.FromBoxes(k, boxes...), nil
}

// objectResponse is the GET/PUT representation of one stored object.
type objectResponse struct {
	Layer string    `json:"layer"`
	Name  string    `json:"name"`
	ID    int64     `json:"id"`
	Boxes []jsonBox `json:"boxes,omitempty"`
	Box   jsonBox   `json:"box"`
	Epoch uint64    `json:"epoch"`
}

func toObjectResponse(layer string, o spatialdb.Object, epoch uint64, withBoxes bool) objectResponse {
	resp := objectResponse{
		Layer: layer,
		Name:  o.Name,
		ID:    o.ID,
		Box:   toJSONBox(o.Box),
		Epoch: epoch,
	}
	if withBoxes {
		resp.Boxes = toJSONRegion(o.Reg).Boxes
	}
	return resp
}

// layerInfo is one row of the GET /layers listing.
type layerInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Objects int    `json:"objects"`
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query   string                `json:"query"`
	Params  map[string]jsonRegion `json:"params,omitempty"`
	Workers int                   `json:"workers,omitempty"`
	Naive   bool                  `json:"naive,omitempty"`   // run the unoptimized baseline instead
	Explain bool                  `json:"explain,omitempty"` // include the compiled plan text
	NoIndex bool                  `json:"no_index,omitempty"`
	NoExact bool                  `json:"no_exact,omitempty"`
}

// solutionJSON is one result tuple, in retrieval order.
type solutionJSON struct {
	Names []string `json:"names"`
	IDs   []int64  `json:"ids"`
}

func toSolutionJSON(s query.Solution) solutionJSON {
	out := solutionJSON{}
	for _, o := range s.Objects {
		out.Names = append(out.Names, o.Name)
		out.IDs = append(out.IDs, o.ID)
	}
	return out
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Solutions []solutionJSON `json:"solutions"`
	Count     int            `json:"count"`
	Cached    bool           `json:"cached"` // answered from the plan cache
	Naive     bool           `json:"naive,omitempty"`
	Epoch     uint64         `json:"epoch"`
	ElapsedUS int64          `json:"elapsed_us"`
	Stats     query.Stats    `json:"stats"`
	Plan      string         `json:"plan,omitempty"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Epoch     uint64          `json:"epoch"`
	Layers    map[string]int  `json:"layers"`
	Cache     cacheStats      `json:"cache"`
	Queries   counterGroup    `json:"queries"`
	Mutations mutationStats   `json:"mutations"`
	Snapshots snapshotStats   `json:"snapshots"`
	DB        spatialdb.Stats `json:"db"`
}

type cacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

type counterGroup struct {
	Total    int64 `json:"total"`
	Errors   int64 `json:"errors"`
	Naive    int64 `json:"naive"`
	Compiles int64 `json:"compiles"`
}

type mutationStats struct {
	Inserts int64 `json:"inserts"`
	Deletes int64 `json:"deletes"`
}

type snapshotStats struct {
	Saves int64 `json:"saves"`
	Loads int64 `json:"loads"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
