package query

import (
	"fmt"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// resolveLayers looks the step layers up without creating them. The
// caller must hold the store's read guard. Per-run DB statistics are
// accumulated from each SearchStats return value, so a run reports
// exactly the index work it caused even when concurrent runs share a
// layer (a shared-counter delta would mix their costs).
func resolveLayers(store *spatialdb.Store, names []string) ([]*spatialdb.Layer, error) {
	layers := make([]*spatialdb.Layer, len(names))
	for i, name := range names {
		l, ok := store.LayerIfExists(name)
		if !ok {
			return nil, fmt.Errorf("query: layer %q does not exist", name)
		}
		layers[i] = l
	}
	return layers, nil
}

func stepLayerNames(p *Plan) []string {
	names := make([]string, len(p.Steps))
	for i, sp := range p.Steps {
		names[i] = sp.Layer
	}
	return names
}

// Run executes the compiled plan: parameters are bound, the ground
// (parameter-only) residual is checked once, then solution tuples are
// built incrementally with per-step range queries and filters per opts.
// Every complete tuple is verified against the original system in the
// exact region algebra regardless of opts, so all configurations return
// the same solutions.
//
// Run holds the store's read guard for the whole execution, so it is safe
// to call from many goroutines while writers mutate the store through
// Insert/Remove; a plan is immutable after Compile and may be reused (and
// cached) across any number of concurrent Runs.
func (p *Plan) Run(store *spatialdb.Store, params map[string]*region.Region, opts Options) (*Result, error) {
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(p.Query, alg, params)
	if err != nil {
		return nil, err
	}
	store.RLock()
	defer store.RUnlock()
	layers, err := resolveLayers(store, stepLayerNames(p))
	if err != nil {
		return nil, err
	}
	res := &Result{}

	if p.Form.Unsat {
		res.Stats.GroundFailed = true
		return res, nil
	}
	if !p.Form.Ground.Satisfied(alg, env) {
		res.Stats.GroundFailed = true
		return res, nil
	}

	k := store.K()
	envBox := make([]bbox.Box, p.Query.Sys.Vars.Len())
	for v := range envBox {
		if env[v] != nil {
			envBox[v] = env[v].(*region.Region).BoundingBox()
		}
	}
	tuple := make([]spatialdb.Object, len(p.Steps))

	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Steps) {
			res.Stats.FinalChecked++
			if p.Query.Sys.Satisfied(alg, env) {
				res.Stats.Solutions++
				objs := append([]spatialdb.Object(nil), tuple...)
				res.Solutions = append(res.Solutions, Solution{Objects: objs})
			} else {
				res.Stats.FinalRejected++
			}
			return
		}
		sp := p.Steps[i]
		step := p.Form.Steps[i]
		layer := layers[i]

		consider := func(o spatialdb.Object) bool {
			res.Stats.Candidates++
			if opts.UseExact && !step.Satisfied(alg, env, o.Reg) {
				res.Stats.ExactRejects++
				return true
			}
			res.Stats.Extended++
			tuple[i] = o
			env[sp.Var] = o.Reg
			envBox[sp.Var] = o.Box
			rec(i + 1)
			env[sp.Var] = nil
			envBox[sp.Var] = bbox.Box{}
			return true
		}

		if opts.UseIndex {
			spec, ok := sp.Spec(k, envBox)
			if !ok {
				return // this prefix admits no extension
			}
			res.Stats.DB.Add(layer.SearchStats(spec, consider))
		} else {
			layer.All(consider)
		}
	}
	rec(0)
	return res, nil
}

// CompileAndRun is the one-call convenience: compile with Compile, execute
// with DefaultOptions.
func CompileAndRun(q *Query, store *spatialdb.Store, params map[string]*region.Region) (*Result, error) {
	plan, err := Compile(q, store)
	if err != nil {
		return nil, err
	}
	return plan.Run(store, params, DefaultOptions)
}
