package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// ErrTruncated is returned by ReadFrom when the requested position
// precedes the oldest retained record: a checkpoint has deleted the
// segments that held it. The caller must restart from a snapshot.
var ErrTruncated = errors.New("wal: requested records have been truncated by a checkpoint")

// ReadFrom streams records with LSN > after, in order, to fn — at most
// max records per call (max ≤ 0: unlimited) — and returns how many were
// delivered. Unlike Replay it is safe to run concurrently with Append:
// it snapshots the segment layout and the next LSN under the log's lock
// (flushing buffered bytes so they are visible in the files), then reads
// without holding it, never going past the captured boundary. Records
// are CRC-verified before delivery; the payload slice is only valid
// during the callback.
//
// This is the replication read path: the primary's /repl/wal handler
// calls it in a loop with the replica's applied LSN as the cursor. Each
// call rescans from the start of the segment containing after+1 — O(the
// containing segment), not O(log) — which keeps the reader stateless
// across checkpoint truncations and rotations at the cost of re-reading
// skipped prefixes; segment size bounds that cost.
//
// Corruption in a sealed segment is a hard error, as in Replay. In the
// active segment a short or garbled tail just ends the batch quietly: it
// is the in-flight remnant of a concurrent append (or of a poisoned
// log's partial write) and the next call will see past it once the
// append completes or Rearm repairs the tail.
func (l *Log) ReadFrom(after uint64, max int, fn func(lsn uint64, payload []byte) error) (int, error) {
	l.mu.Lock()
	if !l.closed && l.err == nil && l.w != nil && l.dirty {
		// Make buffered appends readable. No fsync: replication shipping a
		// record does not change its local durability class.
		if err := l.w.Flush(); err != nil {
			perr := l.poisonLocked(err)
			l.mu.Unlock()
			return 0, perr
		}
	}
	starts := append([]uint64(nil), l.starts...)
	next := l.next
	l.mu.Unlock()

	if len(starts) > 0 && after+1 < starts[0] {
		return 0, fmt.Errorf("%w (oldest retained LSN %d, requested from %d)",
			ErrTruncated, starts[0], after+1)
	}
	delivered := 0
	for i, start := range starts {
		var end uint64 // first LSN beyond this segment
		if i+1 < len(starts) {
			end = starts[i+1]
		} else {
			end = next
		}
		if end <= after+1 { // segment entirely ≤ after (or empty)
			continue
		}
		sealed := i+1 < len(starts)
		n, err := l.readSegment(l.segPath(start), start, end, sealed, after, max, &delivered, fn)
		if err != nil {
			return delivered, err
		}
		if !n { // batch limit hit, or active tail ended early
			break
		}
	}
	return delivered, nil
}

// readSegment reads one segment, delivering records in (after, end) up
// to the shared batch budget. It returns false when iteration should
// stop (budget exhausted or a tolerated active-segment truncation).
func (l *Log) readSegment(path string, start, end uint64, sealed bool, after uint64, max int, delivered *int, fn func(uint64, []byte) error) (bool, error) {
	f, err := l.fs.Open(path)
	if err != nil {
		if sealed {
			// A concurrent checkpoint pruned it: the records are covered by
			// a newer snapshot, so the cursor is behind retention.
			return false, fmt.Errorf("%w (segment %s pruned mid-read)", ErrTruncated, filepath.Base(path))
		}
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	lsn := start
	var hdr [recordHeaderBytes]byte
	var buf []byte
	for lsn < end {
		if max > 0 && *delivered >= max {
			return false, nil
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if !sealed {
				return false, nil // in-flight tail; try again next call
			}
			return false, fmt.Errorf("wal: %s: record %d: truncated header: %w", filepath.Base(path), lsn, err)
		}
		n := getU32(hdr[0:4])
		if n > maxRecordBytes {
			if !sealed {
				return false, nil
			}
			return false, fmt.Errorf("wal: %s: record %d: impossible length %d", filepath.Base(path), lsn, n)
		}
		if lsn <= after {
			// Skip without verifying: delivery is what carries the CRC
			// guarantee, and the skipped prefix was verified when shipped.
			if _, err := br.Discard(int(n)); err != nil {
				if !sealed {
					return false, nil
				}
				return false, fmt.Errorf("wal: %s: record %d: truncated payload: %w", filepath.Base(path), lsn, err)
			}
			lsn++
			continue
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			if !sealed {
				return false, nil
			}
			return false, fmt.Errorf("wal: %s: record %d: truncated payload: %w", filepath.Base(path), lsn, err)
		}
		if crc32.ChecksumIEEE(buf) != getU32(hdr[4:8]) {
			if !sealed {
				return false, nil
			}
			return false, fmt.Errorf("wal: %s: record %d: checksum mismatch", filepath.Base(path), lsn)
		}
		if err := fn(lsn, buf); err != nil {
			return false, err
		}
		*delivered++
		lsn++
	}
	return true, nil
}
