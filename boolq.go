// Package boolq is a constraint-based query optimizer for spatial
// databases: a Go reproduction of Helm, Marriott & Odersky,
// "Constraint-Based Query Optimization for Spatial Databases" (PODS 1991).
//
// It converts systems of multivariate Boolean constraints over regions
// (containment, overlap, disjointness, equality and their negations) into
// sequences of univariate bounding-box range queries answered by a spatial
// index, pruning useless partial solution tuples as early as possible.
//
// The pipeline: Theorem-1 normalization → Algorithm-1 triangular solved
// form (projection/quantifier elimination) → Algorithm-2 bounding-box
// approximation via the Blake canonical form → incremental execution with
// per-step range queries.
//
// This root package re-exports the public API; the implementation lives in
// internal packages (see DESIGN.md for the module map):
//
//	store := boolq.NewStore(boolq.Rect(0, 0, 1000, 1000), boolq.RTree)
//	store.MustInsert("towns", "t1", boolq.RegionFromBox(boolq.Rect(95, 400, 105, 412)))
//	q, _ := boolq.ParseQuery(`find T in towns given C where T !<= C`)
//	plan, _ := boolq.Compile(q, store)
//	res, _ := plan.Run(store, map[string]*boolq.Region{"C": country}, boolq.DefaultOptions)
package boolq

import (
	"context"

	"repro/internal/bbox"
	"repro/internal/constraint"
	"repro/internal/formula"
	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// Core spatial types.
type (
	// Box is an axis-parallel bounding box in k dimensions.
	Box = bbox.Box
	// RangeSpec is the univariate range query of §4 (containment plus
	// overlap constraints on bounding boxes).
	RangeSpec = bbox.RangeSpec
	// Region is a rectilinear region: the spatial value type.
	Region = region.Region
	// Store is the spatial database: named layers of regions.
	Store = spatialdb.Store
	// Object is a stored region with identity.
	Object = spatialdb.Object
	// IndexKind selects a layer index backend.
	IndexKind = spatialdb.IndexKind
)

// Query machinery.
type (
	// Query is a constraint system plus retrieval order.
	Query = query.Query
	// Plan is a compiled query (triangular form + box plans).
	Plan = query.Plan
	// Options selects executor filters.
	Options = query.Options
	// Result is an execution outcome.
	Result = query.Result
	// Solution is one tuple of objects.
	Solution = query.Solution
	// Stats counts executor work.
	Stats = query.Stats
	// System is a raw constraint system (for programmatic construction).
	System = constraint.System
	// Formula is a Boolean formula over region variables.
	Formula = formula.Formula
)

// Index backends.
const (
	Scan       = spatialdb.Scan
	RTree      = spatialdb.RTree
	PointRTree = spatialdb.PointRTree
	Grid       = spatialdb.Grid
	ZOrderIdx  = spatialdb.ZOrderIdx
)

// DefaultOptions enables the full optimization pipeline.
var DefaultOptions = query.DefaultOptions

// NewStore returns an empty spatial store over the universe box.
func NewStore(universe Box, kind IndexKind) *Store {
	return spatialdb.NewStore(universe, kind)
}

// Rect is the 2-D box constructor.
func Rect(x0, y0, x1, y1 float64) Box { return bbox.Rect(x0, y0, x1, y1) }

// RegionFromBox returns the region consisting of one box.
func RegionFromBox(b Box) *Region { return region.FromBox(b) }

// RegionFromBoxes returns the union of the given boxes as a region.
func RegionFromBoxes(k int, boxes ...Box) *Region {
	return region.FromBoxes(k, boxes...)
}

// NewQuery returns an empty query for programmatic construction.
func NewQuery() *Query { return query.New() }

// ParseQuery parses the textual query language (see internal/lang).
func ParseQuery(src string) (*Query, error) { return lang.Parse(src) }

// Compile runs the full optimization pipeline on a query.
func Compile(q *Query, store *Store) (*Plan, error) { return query.Compile(q, store) }

// CompileAndRun compiles and executes with DefaultOptions.
func CompileAndRun(q *Query, store *Store, params map[string]*Region) (*Result, error) {
	return query.CompileAndRun(q, store, params)
}

// RunNaive executes a query by brute force (the unoptimized baseline).
func RunNaive(q *Query, store *Store, params map[string]*Region) (*Result, error) {
	return query.RunNaive(q, store, params)
}

// RunNaiveCtx is RunNaive bounded by a context and Options.Limit: the
// search stops on cancellation or at the limit and returns the partial
// result flagged Stats.Cancelled/Stats.Truncated. The optimized
// executors' bounded variants are methods on Plan (RunCtx,
// RunParallelCtx, and the per-solution streaming RunStream).
func RunNaiveCtx(ctx context.Context, q *Query, store *Store, params map[string]*Region, opts Options) (*Result, error) {
	return query.RunNaiveCtx(ctx, q, store, params, opts)
}

// Smuggler returns the paper's §2 example query.
func Smuggler() *Query { return query.Smuggler() }

// SuggestOrder reorders a query's retrieval bindings with the static
// structure-based heuristic (no data statistics needed).
func SuggestOrder(q *Query, store *Store) *Query {
	return query.SuggestOrder(q, store)
}

// SuggestOrderSampled reorders a query's retrieval bindings by enumerating
// permutations and sampling per-level fanouts against the store with the
// given parameter values — the informed planner.
func SuggestOrderSampled(q *Query, store *Store, params map[string]*Region) (*Query, error) {
	return query.SuggestOrderSampled(q, store, params)
}
