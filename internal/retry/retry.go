// Package retry is the one place backoff envelopes are computed. PR 9
// grew three hand-rolled capped-exponential loops (the WAL append retry,
// the degraded-mode recovery probe, the checkpoint retry) and replication
// adds a fourth (the replica fetch loop); each loop keeps its own domain
// logic — what to attempt, when to give up — but the delay schedule they
// sleep on comes from a Policy here, so the cap and growth behaviour is
// specified, tested and tuned once.
//
// A Policy is pure data and its Delay function is deterministic, which is
// what the callers inside locked regions (wal.DB.logMutation runs under
// the store's write lock) and the chaos tests need. Jitter is explicit
// and opt-in via Jittered: loops that hammer a shared peer (a replica
// reconnecting to its primary) spread their wakeups; loops retrying a
// local disk do not need to.
package retry

import (
	"context"
	"math/rand"
	"time"
)

// Policy is a capped exponential backoff schedule.
type Policy struct {
	// Base is the first delay. A zero or negative Base makes every delay
	// zero (retry immediately) — callers wanting a default must set one.
	Base time.Duration
	// Cap bounds every delay (≤ 0: uncapped).
	Cap time.Duration
	// Factor is the per-attempt growth (≤ 1: 2, the conventional
	// doubling).
	Factor float64
	// Jitter is the fraction of each delay that Jittered randomizes away,
	// in [0, 1]: a jittered delay is uniform in [d·(1−Jitter), d]. Delay
	// ignores it. Values outside [0, 1] are clamped.
	Jitter float64
}

// Delay returns the deterministic delay for attempt (0-based):
// min(Base·Factor^attempt, Cap), with no jitter applied. Overflow
// saturates at Cap (or at a very large duration when uncapped).
func (p Policy) Delay(attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	f := p.Factor
	if f <= 1 {
		f = 2
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= f
		if p.Cap > 0 && d >= float64(p.Cap) {
			return p.Cap
		}
	}
	if p.Cap > 0 && d > float64(p.Cap) {
		return p.Cap
	}
	if d > float64(1<<62) {
		d = float64(1 << 62)
	}
	return time.Duration(d)
}

// Jittered returns Delay(attempt) with the policy's jitter applied:
// uniform in [d·(1−Jitter), d]. rnd supplies the randomness (nil: the
// global math/rand source); tests pass a seeded *rand.Rand for
// reproducible schedules.
func (p Policy) Jittered(attempt int, rnd *rand.Rand) time.Duration {
	d := p.Delay(attempt)
	j := p.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	var u float64
	if rnd != nil {
		u = rnd.Float64()
	} else {
		u = rand.Float64()
	}
	// Uniform in [d·(1−j), d]: the cap stays a hard upper bound.
	return time.Duration(float64(d) * (1 - j*u))
}

// Sleep waits d or until ctx is done, whichever comes first, returning
// ctx.Err() when the context won. A non-positive d returns immediately
// (after a ctx check, so a cancelled context never reports success).
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
