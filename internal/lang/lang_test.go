package lang

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("find T in towns where T !<= C; R & A != 0")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokFind, TokIdent, TokIn, TokIdent, TokWhere,
		TokIdent, TokNLeq, TokIdent, TokSemi,
		TokIdent, TokAnd, TokIdent, TokNeq, TokZero, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("x # a comment\n<= y")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // x, <=, y, EOF
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x < y", "x ! y", "x @ y"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) accepted", src)
		}
	}
}

const smugglerSrc = `
find T in towns, R in roads, B in states
given C, A
where
  A <= C;
  B <= C;
  R <= A | B | T;
  R & A != 0;
  R & T != 0;
  T !<= C;
`

func TestParseSmugglerProgram(t *testing.T) {
	q, err := Parse(smugglerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Retrieve) != 3 {
		t.Fatalf("Retrieve = %v", q.Retrieve)
	}
	wantBindings := []query.Binding{
		{Var: "T", Layer: "towns"},
		{Var: "R", Layer: "roads"},
		{Var: "B", Layer: "states"},
	}
	for i, b := range wantBindings {
		if q.Retrieve[i] != b {
			t.Errorf("binding %d = %+v, want %+v", i, q.Retrieve[i], b)
		}
	}
	if len(q.Sys.Cons) != 6 {
		t.Errorf("constraints = %d, want 6", len(q.Sys.Cons))
	}
}

// The parsed smuggler program must behave exactly like the hand-built
// query.Smuggler() on a real store.
func TestParsedProgramMatchesHandBuilt(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}

	parsed, err := Parse(smugglerSrc)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := query.CompileAndRun(parsed, store, params)
	if err != nil {
		t.Fatal(err)
	}
	resH, err := query.CompileAndRun(query.Smuggler(), store, params)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(r *query.Result) []string {
		var out []string
		for _, s := range r.Solutions {
			out = append(out, strings.Join(s.Names(), "|"))
		}
		sort.Strings(out)
		return out
	}
	kp, kh := keys(resP), keys(resH)
	if len(kp) != len(kh) || len(kp) == 0 {
		t.Fatalf("parsed %d solutions, hand-built %d", len(kp), len(kh))
	}
	for i := range kp {
		if kp[i] != kh[i] {
			t.Fatalf("solution %d differs: %s vs %s", i, kp[i], kh[i])
		}
	}
}

func TestParseSugarForms(t *testing.T) {
	q, err := Parse("find x in objs where disjoint(x, C); overlaps(x, A); x = A & C")
	if err != nil {
		t.Fatal(err)
	}
	// disjoint → 1 positive; overlaps → 1 negative; = → 2 positives.
	if len(q.Sys.Cons) != 4 {
		t.Errorf("constraints = %d, want 4", len(q.Sys.Cons))
	}
	neg := 0
	for _, c := range q.Sys.Cons {
		if c.Negative {
			neg++
		}
	}
	if neg != 1 {
		t.Errorf("negative constraints = %d, want 1", neg)
	}
}

func TestParsePrecedence(t *testing.T) {
	q, err := Parse("find x in l where x <= a | b & c")
	if err != nil {
		t.Fatal(err)
	}
	// & binds tighter than |: rhs = a | (b & c).
	rhs := q.Sys.Cons[0].Rhs
	got := rhs.StringNamed(q.Sys.Vars.Name)
	if got != "a | b & c" {
		t.Errorf("rhs = %q", got)
	}
	// And parenthesized grouping works.
	q2, err := Parse("find x in l where x <= (a | b) & c")
	if err != nil {
		t.Fatal(err)
	}
	got2 := q2.Sys.Cons[0].Rhs.StringNamed(q2.Sys.Vars.Name)
	if got2 != "(a | b) & c" {
		t.Errorf("rhs = %q", got2)
	}
}

func TestParseComplementAndConstants(t *testing.T) {
	q, err := Parse("find x in l where ~x & 1 != 0; x <= ~(a | b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Sys.Cons) != 2 {
		t.Fatalf("constraints = %d", len(q.Sys.Cons))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                  // no find
		"find",                              // no variable
		"find x",                            // no in
		"find x in",                         // no layer
		"find x in l",                       // no where
		"find x in l where",                 // no constraint
		"find x in l where x",               // no operator
		"find x in l where x <=",            // no rhs
		"find x in l where x <= y extra",    // trailing garbage
		"find x in l where (x <= y",         // unbalanced paren in formula
		"find x in l where disjoint(x)",     // arity
		"find x in l where overlaps(x, y",   // unclosed
		"find x in l given where x <= y",    // given without names
		"find x in l where x <= y; ; x = y", // empty constraint
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseConstraintsOnly(t *testing.T) {
	q := query.New()
	q.Sys.Var("x")
	if err := ParseConstraints("x != 0; x <= C", q); err != nil {
		t.Fatal(err)
	}
	if len(q.Sys.Cons) != 2 {
		t.Errorf("constraints = %d", len(q.Sys.Cons))
	}
	if err := ParseConstraints("x <", q); err == nil {
		t.Errorf("bad constraint text accepted")
	}
}
