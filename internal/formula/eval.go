package formula

import (
	"fmt"

	"repro/internal/boolalg"
)

// Eval evaluates f over the given Boolean algebra with env supplying the
// value of each variable by index. It panics if a variable in f has no
// binding (env too short or nil entry); the query compiler guarantees
// bindings for every free variable before evaluation.
func Eval(f *Formula, alg boolalg.Algebra, env []boolalg.Element) boolalg.Element {
	memo := map[*Formula]boolalg.Element{}
	var walk func(n *Formula) boolalg.Element
	walk = func(n *Formula) boolalg.Element {
		if r, ok := memo[n]; ok {
			return r
		}
		var out boolalg.Element
		switch n.kind {
		case KindConst:
			if n.val {
				out = alg.Top()
			} else {
				out = alg.Bottom()
			}
		case KindVar:
			if n.v >= len(env) || env[n.v] == nil {
				panic(fmt.Sprintf("formula: unbound variable x%d in evaluation", n.v))
			}
			out = env[n.v]
		case KindNot:
			out = alg.Complement(walk(n.l))
		case KindAnd:
			out = alg.Meet(walk(n.l), walk(n.r))
		case KindOr:
			out = alg.Join(walk(n.l), walk(n.r))
		}
		memo[n] = out
		return out
	}
	return walk(f)
}

// EvalBits evaluates f in the two-valued algebra where variable v is true
// iff bit v of assign is set. Variables must have index < 64.
func EvalBits(f *Formula, assign uint64) bool {
	switch f.kind {
	case KindConst:
		return f.val
	case KindVar:
		return assign&(uint64(1)<<uint(f.v)) != 0
	case KindNot:
		return !EvalBits(f.l, assign)
	case KindAnd:
		return EvalBits(f.l, assign) && EvalBits(f.r, assign)
	default: // KindOr
		return EvalBits(f.l, assign) || EvalBits(f.r, assign)
	}
}

// Equivalent reports whether f and g denote the same Boolean function.
// By Boole/Stone, an identity of Boolean functions holds in every Boolean
// algebra iff it holds two-valued, so an exhaustive check over the free
// variables decides it. The check is exponential in the number of distinct
// free variables (the paper's compile-time caveat); it panics above 24
// variables to keep accidental blowups loud.
func Equivalent(f, g *Formula) bool {
	return TautologyZero(Xor(f, g))
}

// TautologyZero reports whether f ≡ 0 as a Boolean function.
func TautologyZero(f *Formula) bool {
	if f.IsConst(false) {
		return true
	}
	vars := f.FreeVars()
	if len(vars) > 24 {
		panic(fmt.Sprintf("formula: equivalence check over %d variables", len(vars)))
	}
	n := uint(len(vars))
	for m := uint64(0); m < uint64(1)<<n; m++ {
		var assign uint64
		for i, v := range vars {
			if m&(uint64(1)<<uint(i)) != 0 {
				assign |= uint64(1) << uint(v)
			}
		}
		if EvalBits(f, assign) {
			return false
		}
	}
	return true
}

// TautologyOne reports whether f ≡ 1 as a Boolean function.
func TautologyOne(f *Formula) bool { return TautologyZero(Not(f)) }

// Implies2 reports whether f ≤ g holds for Boolean functions
// (equivalently f ∧ ¬g ≡ 0).
func Implies2(f, g *Formula) bool { return TautologyZero(Diff(f, g)) }
