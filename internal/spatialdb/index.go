package spatialdb

import (
	"repro/internal/bbox"
	"repro/internal/gridfile"
	"repro/internal/rtree"
	"repro/internal/zorder"
)

// layerIndex is the index backend behind one layer. insert adds a single
// object; search emits the ids of every object whose bounding box matches
// the spec (the layer applies the exact defense-in-depth filter and
// ordering) and returns the backend cost counters: index nodes/cells
// touched and candidate objects examined.
type layerIndex interface {
	insert(o Object) error
	search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int)
}

// BulkLoader is the optional batch-ingestion path of an index backend:
// BulkLoad replaces the index contents with exactly the given objects in
// one packed build (the R-tree backends use Sort-Tile-Recursive packing,
// the grid file pre-seeds its scales from the full point set, the z-order
// index sorts its element list once). Store.BulkInsert and index rebuilds
// use it when available and fall back to looped inserts otherwise.
//
// Contract: on error the live index must be left unchanged — adapters
// build a fresh structure and swap it in only on success — so a failed
// bulk load can always fall back to per-object insertion for exact error
// attribution.
type BulkLoader interface {
	BulkLoad(objs []Object) error
}

// Per-backend tuning shared by the incremental and bulk constructors.
const (
	gridBucketCap = 16 // grid-file bucket capacity
	zorderBudget  = 16 // max z-elements per stored box
)

// newLayerIndex returns the backend for a layer's kind. The scan backend
// reads the layer's object table directly; the others own a structure.
func newLayerIndex(l *Layer) layerIndex { return newLayerIndexKind(l, l.kind) }

// newLayerIndexKind builds an index of an explicit kind over the layer —
// the primary (kind == l.kind) or an alternate (EnableAltIndexes).
func newLayerIndexKind(l *Layer, kind IndexKind) layerIndex {
	switch kind {
	case RTree:
		return &rtreeIndex{t: rtree.New(l.k), k: l.k}
	case PointRTree:
		return &pointIndex{t: rtree.New(2 * l.k), k: l.k}
	case Grid:
		return &gridIndex{g: gridfile.New(2*l.k, gridBucketCap), k: l.k}
	case ZOrderIdx:
		return &zorderIndex{zx: zorder.NewIndex(l.universe, zorderBudget), universe: l.universe}
	default:
		return scanIndex{l: l}
	}
}

// ---- scan ----

// scanIndex is the no-structure baseline: search examines every object in
// insertion order. It has no BulkLoad — the looped fallback is already
// optimal when there is nothing to build.
type scanIndex struct{ l *Layer }

func (ix scanIndex) insert(Object) error { return nil }

func (ix scanIndex) search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int) {
	for _, id := range ix.l.order {
		scanned++
		if spec.Matches(ix.l.objs[id].Box) {
			emit(id)
		}
	}
	return len(ix.l.order), scanned
}

// ---- R-tree over native boxes ----

// rtreeIndex is a Guttman R-tree over the objects' k-dim bounding boxes,
// answering compiled RangeSpecs with subtree pruning.
type rtreeIndex struct {
	t *rtree.Tree
	k int
}

func (ix *rtreeIndex) insert(o Object) error { return ix.t.Insert(o.Box, o.ID) }

func (ix *rtreeIndex) search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int) {
	touched = ix.t.SearchSpec(spec, func(e rtree.Entry) bool {
		scanned++
		emit(e.ID)
		return true
	})
	return touched, scanned
}

// BulkLoad rebuilds the tree with STR packing (experiment E13: packed
// trees answer queries markedly cheaper than insertion-built ones).
func (ix *rtreeIndex) BulkLoad(objs []Object) error {
	entries := make([]rtree.Entry, len(objs))
	for i, o := range objs {
		entries[i] = rtree.Entry{Box: o.Box, ID: o.ID}
	}
	t, err := rtree.BulkLoad(ix.k, entries)
	if err != nil {
		return err
	}
	ix.t = t
	return nil
}

// ---- R-tree over point-transformed boxes ----

// pointIndex is an R-tree over the 2k-dim point transform of each box
// (Figure 3): every compiled spec becomes ONE overlap query.
type pointIndex struct {
	t *rtree.Tree
	k int // store dimensionality; the tree is 2k-dimensional
}

func (ix *pointIndex) insert(o Object) error {
	p := bbox.PointTransform(o.Box)
	return ix.t.Insert(bbox.New(p, p), o.ID)
}

func (ix *pointIndex) search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int) {
	q, ok := spec.PointQuery()
	if !ok {
		return 0, 0
	}
	touched = ix.t.SearchOverlap(q, func(e rtree.Entry) bool {
		scanned++
		emit(e.ID)
		return true
	})
	return touched, scanned
}

// BulkLoad rebuilds the point tree with STR packing over the transformed
// boxes.
func (ix *pointIndex) BulkLoad(objs []Object) error {
	entries := make([]rtree.Entry, len(objs))
	for i, o := range objs {
		p := bbox.PointTransform(o.Box)
		entries[i] = rtree.Entry{Box: bbox.New(p, p), ID: o.ID}
	}
	t, err := rtree.BulkLoad(2*ix.k, entries)
	if err != nil {
		return err
	}
	ix.t = t
	return nil
}

// ---- grid file ----

// gridIndex is a grid file over the 2k-dim point transform, same
// single-query property as pointIndex.
type gridIndex struct {
	g *gridfile.Grid
	k int
}

func (ix *gridIndex) insert(o Object) error {
	return ix.g.Insert(bbox.PointTransform(o.Box), o.ID)
}

func (ix *gridIndex) search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int) {
	q, ok := spec.PointQuery()
	if !ok {
		return 0, 0
	}
	touched = ix.g.Search(q, func(_ []float64, id int64) bool {
		scanned++
		emit(id)
		return true
	})
	return touched, scanned
}

// BulkLoad rebuilds the grid with scales pre-seeded from the full point
// set, avoiding the per-overflow directory rehashes of an insert loop.
func (ix *gridIndex) BulkLoad(objs []Object) error {
	points := make([][]float64, len(objs))
	ids := make([]int64, len(objs))
	for i, o := range objs {
		points[i] = bbox.PointTransform(o.Box)
		ids[i] = o.ID
	}
	g, err := gridfile.BulkLoad(2*ix.k, gridBucketCap, points, ids)
	if err != nil {
		return err
	}
	ix.g = g
	return nil
}

// ---- z-order ----

// zorderIndex decomposes each box into z-elements in one sorted list —
// the z-ordering extension the paper's conclusion sketches. Stored boxes
// must lie inside the universe.
type zorderIndex struct {
	zx       *zorder.Index
	universe bbox.Box
}

func (ix *zorderIndex) insert(o Object) error { return ix.zx.Insert(o.Box, o.ID) }

func (ix *zorderIndex) search(spec bbox.RangeSpec, emit func(id int64)) (touched, scanned int) {
	if spec.Unsatisfiable() {
		return 0, 0
	}
	touched = ix.zx.SearchOverlap(zorderFilter(spec), func(id int64) bool {
		scanned++
		emit(id)
		return true
	})
	return touched, scanned
}

// BulkLoad rebuilds the element list in one validated pass and sorts it
// once. An out-of-universe box fails the whole build (the caller falls
// back to looped inserts to attribute the error).
func (ix *zorderIndex) BulkLoad(objs []Object) error {
	boxes := make([]bbox.Box, len(objs))
	ids := make([]int64, len(objs))
	for i, o := range objs {
		boxes[i] = o.Box
		ids[i] = o.ID
	}
	zx, err := zorder.BulkLoad(ix.universe, zorderBudget, boxes, ids)
	if err != nil {
		return err
	}
	ix.zx = zx
	return nil
}
