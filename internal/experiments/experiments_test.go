package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses an integer table cell.
func cell(t *testing.T, tab Table, row, col int) int {
	t.Helper()
	v, err := strconv.Atoi(tab.Rows[row][col])
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not an int", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, r := range All() {
		tab := r.Run()
		if tab.ID != r.ID {
			t.Errorf("%s: table ID %q", r.ID, tab.ID)
		}
		out := tab.String()
		if !strings.Contains(out, tab.Title) || len(tab.Rows) == 0 {
			t.Errorf("%s: rendering broken or empty:\n%s", r.ID, out)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d, header %d", r.ID, len(row), len(tab.Header))
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e6"); !ok {
		t.Errorf("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Errorf("unknown ID found")
	}
}

// E1: every configuration finds the same solutions and the full pipeline
// examines fewer candidates than naive.
func TestE1Shape(t *testing.T) {
	tab := E1Smuggler()
	sol := cell(t, tab, 0, 1)
	for i := range tab.Rows {
		if got := cell(t, tab, i, 1); got != sol {
			t.Errorf("row %d solutions %d, want %d", i, got, sol)
		}
	}
	naiveCand := cell(t, tab, 0, 2)
	fullCand := cell(t, tab, 3, 2)
	if fullCand*2 > naiveCand {
		t.Errorf("full pipeline candidates %d vs naive %d: no win", fullCand, naiveCand)
	}
}

// E2/E3/E4: the worked examples must match the paper exactly.
func TestPaperExamplesMatch(t *testing.T) {
	for _, tab := range []Table{E2Projection(), E4Bounds()} {
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s: %v does not match the paper", tab.ID, row)
			}
		}
	}
	e3 := E3BCF()
	if len(e3.Rows) != 2 {
		t.Errorf("E3: BCF has %d prime implicants, paper has 2", len(e3.Rows))
	}
}

// E5: the point transform agrees with scanning on every query and prunes.
func TestE5Shape(t *testing.T) {
	tab := E5PointTransform()
	for i, row := range tab.Rows {
		if row[2] != "true" {
			t.Errorf("query %q disagrees with scan", row[0])
		}
		scanned := cell(t, tab, i, 3)
		total := cell(t, tab, i, 4)
		if row[0] != "overlap" && scanned*2 > total {
			t.Errorf("query %q scanned %d of %d — no pruning", row[0], scanned, total)
		}
	}
}

// E6: optimized tuples must shrink relative to naive as size grows, and
// solutions agree.
func TestE6Shape(t *testing.T) {
	tab := E6Pruning()
	for i, row := range tab.Rows {
		naive := cell(t, tab, i, 1)
		opt := cell(t, tab, i, 2)
		if opt*2 > naive {
			t.Errorf("scale %s: opt %d vs naive %d — reduction below 2x", row[0], opt, naive)
		}
		if row[6] != "true" {
			t.Errorf("scale %s: solutions disagree", row[0])
		}
	}
	// Reduction grows with scale (paper's asymptotic claim).
	first := float64(cell(t, tab, 0, 1)) / float64(cell(t, tab, 0, 2))
	last := float64(cell(t, tab, len(tab.Rows)-1, 1)) / float64(cell(t, tab, len(tab.Rows)-1, 2))
	if last <= first {
		t.Errorf("reduction does not grow with database size: %.1f → %.1f", first, last)
	}
}

// E7: atomless exact, atomic inexact.
func TestE7Shape(t *testing.T) {
	tab := E7Atomless()
	if tab.Rows[0][4] != "true" {
		t.Errorf("region algebra not exact: %v", tab.Rows[0])
	}
	if tab.Rows[1][4] != "false" {
		t.Errorf("atomic algebra unexpectedly exact (gap missing): %v", tab.Rows[1])
	}
}

// E8: all filters agree on solutions; the bbox row shows false positives
// cleaned at the end.
func TestE8Shape(t *testing.T) {
	tab := E8FilterCost()
	sol := tab.Rows[0][4]
	for _, row := range tab.Rows {
		if row[4] != sol {
			t.Errorf("filters disagree on solutions: %v", tab.Rows)
		}
	}
}

// E9: all three methods agree on the join result.
func TestE9Shape(t *testing.T) {
	tab := E9ZOrder()
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("join disagreement at n=%s", row[0])
		}
	}
}

// E10: compiles succeed and no system is reported unsat.
func TestE10Shape(t *testing.T) {
	tab := E10CompileScaling()
	if len(tab.Rows) < 5 {
		t.Fatalf("too few scaling points")
	}
	for _, row := range tab.Rows {
		if row[4] != "false" {
			t.Errorf("satisfiable chain system reported unsat at n=%s", row[0])
		}
	}
}

// E11: identical solutions across backends.
func TestE11Shape(t *testing.T) {
	tab := E11Indexes()
	sol := tab.Rows[0][1]
	for _, row := range tab.Rows {
		if row[1] != sol {
			t.Errorf("backend %s returned %s solutions, scan %s", row[0], row[1], sol)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "MISMATCH") {
			t.Errorf("note reports mismatch: %s", n)
		}
	}
}

// E12: all orders agree on solutions; the sampled planner's order is not
// the worst one.
func TestE12Shape(t *testing.T) {
	tab := E12Ordering()
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 6 permutations, got %d", len(tab.Rows))
	}
	sols := tab.Rows[0][2]
	worst, worstIdx := -1, -1
	sampledIdx := -1
	for i, row := range tab.Rows {
		if row[2] != sols {
			t.Errorf("order %s changed the solution set", row[0])
		}
		c := cell(t, tab, i, 1)
		if c > worst {
			worst, worstIdx = c, i
		}
		if strings.Contains(row[4], "sampled") {
			sampledIdx = i
		}
	}
	if sampledIdx < 0 {
		t.Fatalf("sampled planner's order not among the permutations")
	}
	if sampledIdx == worstIdx {
		t.Errorf("sampling planner picked the worst order")
	}
}

// E13: all construction strategies answer queries identically; STR touches
// no more nodes than incremental quadratic.
func TestE13Shape(t *testing.T) {
	tab := E13RTreeConstruction()
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Errorf("construction %s changed query results", row[0])
		}
	}
	quad := parseFloatCell(t, tab, 0, 3)
	str := parseFloatCell(t, tab, 2, 3)
	if str > quad {
		t.Errorf("STR touched %.1f nodes/query, quadratic %.1f — packing did not help", str, quad)
	}
}

// E14: all worker counts find the same solutions.
func TestE14Shape(t *testing.T) {
	tab := E14Parallel()
	sols := tab.Rows[0][3]
	for _, row := range tab.Rows {
		if row[3] != sols {
			t.Errorf("workers=%s changed solutions", row[0])
		}
	}
}

func parseFloatCell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not a float", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}
