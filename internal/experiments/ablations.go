package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bbox"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/rtree"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// E12Ordering ablates the retrieval order the paper picks "arbitrarily"
// (§2): every permutation of the smuggler query's variables is executed,
// alongside the two planner heuristics (static structure-based, and
// sampling-based with parameter values).
func E12Ordering() Table {
	m := workload.GenMap(workload.MapConfig{Seed: 42})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}
	base := query.Smuggler()

	t := Table{
		ID:     "E12",
		Title:  "retrieval-order ablation (smuggler query)",
		Paper:  "the paper picks the order arbitrarily; this measures how much it matters",
		Header: []string{"order", "candidates", "solutions", "time-ms", "chosen-by"},
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	run := func(q *query.Query) (string, int, int, time.Duration) {
		plan, err := query.Compile(q, store)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := plan.Run(store, params, query.DefaultOptions)
		if err != nil {
			panic(err)
		}
		var names []string
		for _, b := range q.Retrieve {
			names = append(names, b.Var)
		}
		return strings.Join(names, "→"), res.Stats.Candidates, res.Stats.Solutions, time.Since(start)
	}

	staticQ := query.SuggestOrder(base, store)
	sampledQ, err := query.SuggestOrderSampled(base, store, params)
	if err != nil {
		panic(err)
	}
	staticName := orderName(staticQ)
	sampledName := orderName(sampledQ)

	for _, p := range perms {
		q := &query.Query{Sys: base.Sys}
		for _, i := range p {
			q.Retrieve = append(q.Retrieve, base.Retrieve[i])
		}
		name, cand, sols, el := run(q)
		chosen := ""
		if name == staticName {
			chosen += "static "
		}
		if name == sampledName {
			chosen += "sampled"
		}
		t.Rows = append(t.Rows, []string{name, itoa(cand), itoa(sols), msString(el),
			strings.TrimSpace(chosen)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("static planner picked %s; sampling planner picked %s", staticName, sampledName))
	return t
}

func orderName(q *query.Query) string {
	var names []string
	for _, b := range q.Retrieve {
		names = append(names, b.Var)
	}
	return strings.Join(names, "→")
}

// E13RTreeConstruction ablates the R-tree build strategies: incremental
// insertion with quadratic vs linear splits vs STR bulk loading — build
// time and query cost (nodes touched).
func E13RTreeConstruction() Table {
	rng := workload.NewRNG(31)
	n := 20000
	entries := make([]rtree.Entry, n)
	for i := 0; i < n; i++ {
		x, y := rng.Range(0, 990), rng.Range(0, 990)
		entries[i] = rtree.Entry{Box: bbox.Rect(x, y, x+rng.Range(1, 8), y+rng.Range(1, 8)), ID: int64(i)}
	}
	queries := make([]bbox.Box, 50)
	for i := range queries {
		x, y := rng.Range(0, 900), rng.Range(0, 900)
		queries[i] = bbox.Rect(x, y, x+50, y+50)
	}

	t := Table{
		ID:     "E13",
		Title:  "R-tree construction ablation (20k boxes, 50 window queries)",
		Paper:  "Guttman splits [6] vs STR packing — substrate design choice",
		Header: []string{"construction", "build-ms", "height", "avg-nodes-touched", "results-agree"},
	}
	type variant struct {
		name  string
		build func() *rtree.Tree
	}
	variants := []variant{
		{"insert/quadratic", func() *rtree.Tree {
			tr := rtree.New(2, rtree.WithSplit(rtree.QuadraticSplit))
			for _, e := range entries {
				if err := tr.Insert(e.Box, e.ID); err != nil {
					panic(err)
				}
			}
			return tr
		}},
		{"insert/linear", func() *rtree.Tree {
			tr := rtree.New(2, rtree.WithSplit(rtree.LinearSplit))
			for _, e := range entries {
				if err := tr.Insert(e.Box, e.ID); err != nil {
					panic(err)
				}
			}
			return tr
		}},
		{"bulk/STR", func() *rtree.Tree {
			tr, err := rtree.BulkLoad(2, entries)
			if err != nil {
				panic(err)
			}
			return tr
		}},
	}
	baseline := -1
	for _, v := range variants {
		start := time.Now()
		tr := v.build()
		buildT := time.Since(start)
		touched, results := 0, 0
		for _, q := range queries {
			touched += tr.SearchOverlap(q, func(rtree.Entry) bool {
				results++
				return true
			})
		}
		if baseline < 0 {
			baseline = results
		}
		t.Rows = append(t.Rows, []string{
			v.name, msString(buildT), itoa(tr.Height()),
			fmt.Sprintf("%.1f", float64(touched)/float64(len(queries))),
			fmt.Sprintf("%v", results == baseline),
		})
	}
	return t
}

// E14Parallel measures the parallel executor's speedup on a scaled
// smuggler workload — an engineering extension beyond the paper.
func E14Parallel() Table {
	store, params := parallelFixture()
	plan, err := query.Compile(query.Smuggler(), store)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:     "E14",
		Title:  "parallel execution speedup (extension)",
		Paper:  "not in the paper; first-step fan-out over goroutines",
		Header: []string{"workers", "time-ms", "speedup", "solutions"},
	}
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := plan.RunParallel(store, params, query.DefaultOptions, w)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		if w == 1 {
			base = el
		}
		t.Rows = append(t.Rows, []string{
			itoa(w), msString(el),
			fmt.Sprintf("%.2fx", float64(base)/float64(el)),
			itoa(res.Stats.Solutions),
		})
	}
	return t
}

func parallelFixture() (*spatialdb.Store, map[string]*region.Region) {
	m := workload.GenMap(workload.MapConfig{Seed: 42, Towns: 48, Interior: 48, Roads: 120})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	return store, map[string]*region.Region{"C": m.Country, "A": m.Area}
}
