package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bbox"
	"repro/internal/spatialdb"
)

// DB binds a spatialdb.Store to a Log: the durable store boolqd serves
// when started with -data-dir.
//
// Lifecycle. OpenDB recovers the store — load the newest intact binary
// snapshot, replay every WAL record past it, tolerate a torn final
// record — then installs itself as the store's mutation sink, so every
// acknowledged mutation is appended (and, under fsync=always, fsynced)
// before the mutating call returns. A background checkpointer
// periodically writes a fresh snapshot and deletes the sealed segments
// it covers, bounding both recovery time and disk usage. Close seals the
// log; a clean shutdown therefore loses nothing regardless of policy.
//
// Checkpoint protocol (crash-safe at every step):
//
//  1. Serialize the store under its read guard, reading the last logged
//     LSN inside the same critical section (SaveBinaryMark) — writers
//     append under the write lock, so the boundary is exact.
//  2. Write the snapshot atomically: temp file, fsync, rename to
//     snap-<lsn>.bqs, directory fsync.
//  3. Rotate the log if the active segment holds covered records, then
//     delete sealed segments entirely ≤ lsn and snapshots older than the
//     retained set. A crash between any two steps leaves a directory
//     that still recovers: the snapshot only becomes visible complete,
//     and segments are only deleted after it is.
type DB struct {
	dir   string
	log   *Log
	store *spatialdb.Store

	appliedLSN    atomic.Uint64 // last LSN both applied and logged
	checkpointLSN atomic.Uint64 // boundary of the newest snapshot
	ckptBytes     atomic.Int64  // log bytes at the last checkpoint

	checkpoints  atomic.Int64
	checkpointMu sync.Mutex // serializes Checkpoint
	ckptErrs     atomic.Int64
	sinkErrs     atomic.Int64

	replayed    int64 // records replayed at boot
	recoveryDur time.Duration
	snapLoaded  uint64 // LSN of the snapshot recovery started from (0: none)
	keep        int    // snapshot generations to retain

	encBuf []byte // sink scratch; the store's write lock serializes access

	stopc chan struct{}
	donec chan struct{}
	once  sync.Once
}

// DBOptions configures OpenDB.
type DBOptions struct {
	// Log configures the underlying record log (segment size, fsync
	// policy).
	Log Options
	// Kind is the index backend for the recovered store.
	Kind spatialdb.IndexKind
	// Universe is the store universe when the directory holds no
	// snapshot yet (a recovered snapshot's universe always wins).
	Universe bbox.Box
	// CheckpointInterval is how often the background checkpointer wakes
	// (≤ 0: DefaultCheckpointInterval; set to a negative value AND
	// CheckpointBytes < 0 to disable it — tests drive Checkpoint
	// directly).
	CheckpointInterval time.Duration
	// CheckpointBytes triggers a checkpoint once this many WAL bytes
	// accumulated past the last one (≤ 0: the segment size).
	CheckpointBytes int64
	// KeepSnapshots is how many snapshot generations to retain (≤ 0: 2 —
	// the newest plus one fallback).
	KeepSnapshots int
}

// Defaults for DBOptions.
const (
	DefaultCheckpointInterval = time.Minute
	DefaultKeepSnapshots      = 2
)

// DBStats is the durability section of /stats.
type DBStats struct {
	Dir           string `json:"dir"`
	Policy        string `json:"fsync"`
	AppliedLSN    uint64 `json:"applied_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	Checkpoints   int64  `json:"checkpoints"`
	CheckpointErr int64  `json:"checkpoint_errors"`
	SinkErrors    int64  `json:"append_errors"`
	Replayed      int64  `json:"replayed"`     // records replayed at boot
	RecoveredFrom uint64 `json:"snapshot_lsn"` // snapshot recovery started from
	RecoveryMS    int64  `json:"recovery_ms"`
	Log           Stats  `json:"log"`
}

// OpenDB opens (creating if needed) a durable store in dir and recovers
// it to the last acknowledged state.
func OpenDB(dir string, opts DBOptions) (*DB, error) {
	start := time.Now()
	if opts.Universe.IsEmpty() {
		return nil, errors.New("wal: OpenDB needs a non-empty universe")
	}
	log, err := Open(dir, opts.Log)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, log: log}
	ok := false
	defer func() {
		if !ok {
			log.Close()
		}
	}()

	// Recovery step 1: newest intact snapshot.
	store, snapLSN, err := loadBestSnapshot(dir, opts.Kind)
	if err != nil {
		return nil, err
	}
	if store == nil {
		store = spatialdb.NewStore(opts.Universe, opts.Kind)
	}
	db.store = store
	db.snapLoaded = snapLSN

	// Recovery step 2: if segments were lost (or removed by hand) the
	// snapshot can be ahead of the log; never reuse its LSNs.
	if log.LastLSN() < snapLSN {
		if err := log.SkipTo(snapLSN + 1); err != nil {
			return nil, err
		}
	}

	// Recovery step 3: replay the tail.
	if err := log.Replay(snapLSN, func(lsn uint64, payload []byte) error {
		m, err := spatialdb.DecodeMutation(payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		if err := store.ApplyMutation(m); err != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		db.replayed++
		return nil
	}); err != nil {
		return nil, err
	}

	db.appliedLSN.Store(log.LastLSN())
	db.checkpointLSN.Store(snapLSN)
	db.ckptBytes.Store(log.Stats().AppendedBytes)
	db.recoveryDur = time.Since(start)

	// Go live: from here on every mutation is logged before it is
	// acknowledged.
	store.SetMutationSink(db.logMutation)

	interval := opts.CheckpointInterval
	if interval == 0 {
		interval = DefaultCheckpointInterval
	}
	bytes := opts.CheckpointBytes
	if bytes == 0 {
		bytes = log.opts.SegmentBytes
	}
	keep := opts.KeepSnapshots
	if keep <= 0 {
		keep = DefaultKeepSnapshots
	}
	db.keep = keep
	db.stopc = make(chan struct{})
	db.donec = make(chan struct{})
	if interval > 0 {
		go db.checkpointLoop(interval, bytes)
	} else {
		close(db.donec)
	}
	ok = true
	return db, nil
}

// Store returns the recovered store. Mutations through it are logged;
// do not swap it out from under the DB.
func (db *DB) Store() *spatialdb.Store { return db.store }

// Log returns the underlying record log.
func (db *DB) Log() *Log { return db.log }

// Replayed returns how many WAL records boot-time recovery replayed.
func (db *DB) Replayed() int64 { return db.replayed }

// Stats returns the durability counters.
func (db *DB) Stats() DBStats {
	return DBStats{
		Dir:           db.dir,
		Policy:        db.log.Policy().String(),
		AppliedLSN:    db.appliedLSN.Load(),
		CheckpointLSN: db.checkpointLSN.Load(),
		Checkpoints:   db.checkpoints.Load(),
		CheckpointErr: db.ckptErrs.Load(),
		SinkErrors:    db.sinkErrs.Load(),
		Replayed:      db.replayed,
		RecoveredFrom: db.snapLoaded,
		RecoveryMS:    db.recoveryDur.Milliseconds(),
		Log:           db.log.Stats(),
	}
}

// logMutation is the store's mutation sink: encode, append, remember the
// position. It runs under the store's write lock, so encBuf needs no
// further guard and records are appended in exactly apply order.
func (db *DB) logMutation(m *spatialdb.Mutation) error {
	db.encBuf = spatialdb.AppendMutation(db.encBuf[:0], m)
	lsn, err := db.log.Append(db.encBuf)
	if err != nil {
		db.sinkErrs.Add(1)
		return err
	}
	db.appliedLSN.Store(lsn)
	return nil
}

// Checkpoint writes a snapshot of the current state, seals and deletes
// the WAL segments it covers, and prunes old snapshots. It returns the
// snapshot's boundary LSN. Concurrent calls serialize; mutations proceed
// concurrently except during the state serialization itself (which holds
// the store's read guard).
func (db *DB) Checkpoint() (uint64, error) {
	db.checkpointMu.Lock()
	defer db.checkpointMu.Unlock()
	// Serialize through a temp file in the same directory; the boundary
	// LSN — and with it the final name — is only known once the store's
	// read guard is held, so the atomic write is spelled out here rather
	// than through WriteFileAtomic.
	var lsn uint64
	tmp, err := os.CreateTemp(db.dir, snapPrefix+"*"+tmpSuffix)
	if err != nil {
		db.ckptErrs.Add(1)
		return 0, fmt.Errorf("wal: %w", err)
	}
	cleanup := func(err error) (uint64, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		db.ckptErrs.Add(1)
		return 0, err
	}
	if err := db.store.SaveBinaryMark(tmp, func() { lsn = db.appliedLSN.Load() }); err != nil {
		return cleanup(err)
	}
	if lsn == db.checkpointLSN.Load() {
		// Nothing was logged since the last checkpoint; discard quietly.
		tmp.Close()
		os.Remove(tmp.Name())
		return lsn, nil
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	final := filepath.Join(db.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		db.ckptErrs.Add(1)
		return 0, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(db.dir); err != nil {
		db.ckptErrs.Add(1)
		return 0, err
	}
	db.checkpointLSN.Store(lsn)
	db.ckptBytes.Store(db.log.Stats().AppendedBytes)
	db.checkpoints.Add(1)

	// Seal the covered boundary, then drop what the snapshot made
	// redundant. Failures here cost disk, not correctness.
	if db.log.SegmentStart() <= lsn {
		if err := db.log.Rotate(); err != nil {
			db.ckptErrs.Add(1)
			return lsn, err
		}
	}
	if _, err := db.log.TruncateBelow(lsn); err != nil {
		db.ckptErrs.Add(1)
		return lsn, err
	}
	if err := db.pruneSnapshots(); err != nil {
		db.ckptErrs.Add(1)
		return lsn, err
	}
	return lsn, nil
}

// pruneSnapshots deletes all but the newest keep snapshots.
func (db *DB) pruneSnapshots() error {
	lsns, err := scanSnapshots(db.dir)
	if err != nil {
		return err
	}
	if len(lsns) <= db.keep {
		return nil
	}
	for _, lsn := range lsns[:len(lsns)-db.keep] {
		name := filepath.Join(db.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
		if err := os.Remove(name); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return syncDir(db.dir)
}

// checkpointLoop wakes every interval and checkpoints when enough WAL
// bytes accumulated since the last snapshot.
func (db *DB) checkpointLoop(interval time.Duration, bytes int64) {
	defer close(db.donec)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if db.appliedLSN.Load() <= db.checkpointLSN.Load() {
				continue
			}
			if bytes > 0 && db.log.Stats().AppendedBytes-db.ckptBytes.Load() < bytes {
				continue
			}
			_, _ = db.Checkpoint() // failures are counted in ckptErrs
		case <-db.stopc:
			return
		}
	}
}

// Close stops the checkpointer and seals the log: buffered records are
// flushed and fsynced regardless of policy, so a graceful shutdown
// (SIGTERM) loses nothing. The store stays readable but further
// mutations will fail their durability hook.
func (db *DB) Close() error {
	var err error
	db.once.Do(func() {
		close(db.stopc)
		<-db.donec
		err = db.log.Close()
	})
	return err
}

// ---- snapshot discovery ----

// scanSnapshots lists snapshot boundary LSNs in dir, ascending.
func scanSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		lsn, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognized snapshot file %q", name)
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// loadBestSnapshot loads the newest snapshot that passes its checksum,
// falling back to older ones (a torn checkpoint cannot happen — renames
// are atomic — but a corrupted disk block can). Returns (nil, 0, nil)
// when no loadable snapshot exists.
func loadBestSnapshot(dir string, kind spatialdb.IndexKind) (*spatialdb.Store, uint64, error) {
	lsns, err := scanSnapshots(dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		name := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsns[i], snapSuffix))
		f, err := os.Open(name)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		store, err := spatialdb.LoadBinary(f, kind)
		f.Close()
		if err == nil {
			return store, lsns[i], nil
		}
		// Corrupt: set it aside so the next boot does not retry it, and
		// fall back to the previous generation.
		_ = os.Rename(name, name+".corrupt")
	}
	return nil, 0, nil
}
