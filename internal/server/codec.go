// JSON wire types for boolqd. Boxes travel as {"lo": [...], "hi": [...]}
// (the same shape persist.go snapshots use), regions as box unions, and
// query results as name/id tuples plus the executor statistics, so a
// client can check the paper's pruning claims over the wire.
package server

import (
	"fmt"

	"repro/internal/bbox"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/repl"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

type jsonBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

func toJSONBox(b bbox.Box) jsonBox {
	return jsonBox{
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

// jsonRegion is a rectilinear region as a union of boxes.
type jsonRegion struct {
	Boxes []jsonBox `json:"boxes"`
}

func toJSONRegion(r *region.Region) jsonRegion {
	jr := jsonRegion{Boxes: []jsonBox{}}
	for _, b := range r.Boxes() {
		jr.Boxes = append(jr.Boxes, toJSONBox(b))
	}
	return jr
}

// toRegion validates and converts a wire region of dimensionality k.
func (jr jsonRegion) toRegion(k int) (*region.Region, error) {
	boxes := make([]bbox.Box, 0, len(jr.Boxes))
	for i, jb := range jr.Boxes {
		if len(jb.Lo) != k || len(jb.Hi) != k {
			return nil, fmt.Errorf("box %d: want %d-dimensional lo/hi, got %d/%d",
				i, k, len(jb.Lo), len(jb.Hi))
		}
		b, err := bbox.Make(jb.Lo, jb.Hi)
		if err != nil {
			return nil, fmt.Errorf("box %d: %w", i, err)
		}
		boxes = append(boxes, b)
	}
	return region.FromBoxes(k, boxes...), nil
}

// objectResponse is the GET/PUT representation of one stored object.
type objectResponse struct {
	Layer string    `json:"layer"`
	Name  string    `json:"name"`
	ID    int64     `json:"id"`
	Boxes []jsonBox `json:"boxes,omitempty"`
	Box   jsonBox   `json:"box"`
	Epoch uint64    `json:"epoch"`
}

func toObjectResponse(layer string, o spatialdb.Object, epoch uint64, withBoxes bool) objectResponse {
	resp := objectResponse{
		Layer: layer,
		Name:  o.Name,
		ID:    o.ID,
		Box:   toJSONBox(o.Box),
		Epoch: epoch,
	}
	if withBoxes {
		resp.Boxes = toJSONRegion(o.Reg).Boxes
	}
	return resp
}

// layerInfo is one row of the GET /layers listing.
type layerInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Objects int    `json:"objects"`
}

// queryRequest is the POST /query body (also one element of a
// /query/batch request, so every bound below applies per batch query).
type queryRequest struct {
	Query   string                `json:"query"`
	Params  map[string]jsonRegion `json:"params,omitempty"`
	Workers int                   `json:"workers,omitempty"` // clamped to [1, MaxQueryWorkers] server-side
	Naive   bool                  `json:"naive,omitempty"`   // run the unoptimized baseline instead
	Explain bool                  `json:"explain,omitempty"` // include the compiled plan text
	NoIndex bool                  `json:"no_index,omitempty"`
	NoExact bool                  `json:"no_exact,omitempty"`
	// Limit stops the search after this many solutions (≤ 0: unlimited);
	// a capped run reports "truncated": true.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS bounds this query's execution. It can only tighten the
	// server-side default (Options.QueryTimeout), never extend it; an
	// expired query returns its partial result with 408 and
	// "cancelled": true.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// solutionJSON is one result tuple, in retrieval order.
type solutionJSON struct {
	Names []string `json:"names"`
	IDs   []int64  `json:"ids"`
}

func toSolutionJSON(s query.Solution) solutionJSON {
	out := solutionJSON{}
	for _, o := range s.Objects {
		out.Names = append(out.Names, o.Name)
		out.IDs = append(out.IDs, o.ID)
	}
	return out
}

// bulkObject is one object of a POST /layers/{layer}/objects:bulk body
// (an element of the JSON array, or one NDJSON line).
type bulkObject struct {
	Name  string    `json:"name"`
	Boxes []jsonBox `json:"boxes"`
}

// bulkError reports one failed object of a bulk insert.
type bulkError struct {
	Index int    `json:"index"` // position in the uploaded batch
	Name  string `json:"name,omitempty"`
	Error string `json:"error"`
}

// bulkResponse is the POST /layers/{layer}/objects:bulk reply.
type bulkResponse struct {
	Layer    string      `json:"layer"`
	Mode     string      `json:"mode"`
	Received int         `json:"received"`
	Inserted int         `json:"inserted"`
	Failed   int         `json:"failed"`
	Epoch    uint64      `json:"epoch"`
	Errors   []bulkError `json:"errors,omitempty"`
	// Error is the batch-level failure (durability loss, degraded mode) as
	// opposed to the per-object Errors above.
	Error string `json:"error,omitempty"`
}

// batchQueryRequest is the POST /query/batch body.
type batchQueryRequest struct {
	Queries []queryRequest `json:"queries"`
	// Concurrency bounds the worker pool draining the batch (≤ 0 uses the
	// server default; capped at MaxBatchConcurrency).
	Concurrency int `json:"concurrency,omitempty"`
}

// batchResultLine is one NDJSON line of the POST /query/batch reply: the
// per-query result (or error) tagged with the query's position in the
// batch. Lines are streamed in completion order, so clients must match
// results by index, not by line number.
type batchResultLine struct {
	Index int    `json:"index"`
	Error string `json:"error,omitempty"`
	// Shed marks an error line produced by admission control (the query
	// never executed); the client may retry just this sub-query.
	Shed           bool `json:"shed,omitempty"`
	*queryResponse      // nil on error lines
}

// batchSummary is the final NDJSON line of a POST /query/batch reply.
type batchSummary struct {
	Done      bool   `json:"done"`
	Queries   int    `json:"queries"`
	Errors    int    `json:"errors"`
	Shed      int    `json:"shed,omitempty"` // errors that were admission sheds
	Epoch     uint64 `json:"epoch"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Solutions []solutionJSON `json:"solutions"`
	Count     int            `json:"count"`
	Cached    bool           `json:"cached"` // answered from the plan cache
	Naive     bool           `json:"naive,omitempty"`
	Truncated bool           `json:"truncated,omitempty"` // limit stopped the search; solutions are partial
	Cancelled bool           `json:"cancelled,omitempty"` // timeout/disconnect stopped it; solutions are partial
	Epoch     uint64         `json:"epoch"`
	ElapsedUS int64          `json:"elapsed_us"`
	Stats     query.Stats    `json:"stats"`
	Plan      string         `json:"plan,omitempty"`
	// Order is the retrieval order the plan executed with ("T→R→B") —
	// under adaptive planning it may differ from the query text's order.
	Order string `json:"order,omitempty"`
}

// streamSolutionLine is one NDJSON line of a POST /query?stream=1
// response: a solution tagged so clients can tell it from the summary.
type streamSolutionLine struct {
	Solution solutionJSON `json:"solution"`
}

// streamSummary is the final NDJSON line of a POST /query?stream=1
// response.
type streamSummary struct {
	Done      bool        `json:"done"`
	Count     int         `json:"count"`
	Cached    bool        `json:"cached"`
	Truncated bool        `json:"truncated,omitempty"`
	Cancelled bool        `json:"cancelled,omitempty"`
	Epoch     uint64      `json:"epoch"`
	ElapsedUS int64       `json:"elapsed_us"`
	Stats     query.Stats `json:"stats"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Epoch     uint64          `json:"epoch"`
	Layers    map[string]int  `json:"layers"`
	Cache     cacheStats      `json:"cache"`
	Planner   plannerStats    `json:"planner"`
	Queries   counterGroup    `json:"queries"`
	Batch     batchStats      `json:"batch"`
	Mutations mutationStats   `json:"mutations"`
	Bulk      bulkStats       `json:"bulk"`
	Snapshots snapshotStats   `json:"snapshots"`
	DB        spatialdb.Stats `json:"db"`
	// WAL is present only in durable mode (-data-dir): the write-ahead
	// log's position, checkpoint and fsync counters.
	WAL *wal.DBStats `json:"wal,omitempty"`
	// Degraded is present only in durable mode: the durability state
	// machine — whether mutations are currently rejected, why, and how the
	// retry/probe machinery has behaved over the server's lifetime.
	Degraded *degradedStats `json:"degraded,omitempty"`
	// Shed is present only with admission control on (-max-inflight): the
	// read and mutate pools plus the lifetime shed total.
	Shed *shedStats `json:"shed,omitempty"`
	// Replication is present only on a replica (-replica-of): stream
	// position, lag against the primary, and fetch-loop counters.
	Replication *repl.Stats `json:"replication,omitempty"`
}

// degradedStats summarizes the durability state machine for /stats.
type degradedStats struct {
	Degraded    bool   `json:"degraded"`
	ForMS       int64  `json:"for_ms,omitempty"` // time spent degraded so far
	Cause       string `json:"cause,omitempty"`
	Transitions int64  `json:"transitions"` // healthy→degraded entries, lifetime
	Probes      int64  `json:"probes"`      // background recovery attempts
	WALRetries  int64  `json:"wal_retries"` // in-line append retries
	Rearms      int64  `json:"rearms"`      // successful log repairs
}

// shedPool snapshots one admission pool for /stats.
type shedPool struct {
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	InFlight    int   `json:"in_flight"`
	Admitted    int64 `json:"admitted"`
	Queued      int64 `json:"queued"`
	ShedFull    int64 `json:"shed_queue_full"`
	ShedWait    int64 `json:"shed_deadline"`
}

// shedStats is the admission-control section of /stats.
type shedStats struct {
	Reads     *shedPool `json:"reads,omitempty"`
	Mutations *shedPool `json:"mutations,omitempty"`
	Total     int64     `json:"total"` // all requests shed, both pools
}

// plannerStats describes the adaptive planner's activity: how plans were
// chosen on cache misses and how much run-cost feedback has accumulated.
type plannerStats struct {
	Mode             string `json:"mode"`              // "adaptive" or "static"
	AdaptiveCompiles int64  `json:"adaptive_compiles"` // compiles through CompileAdaptive
	Reordered        int64  `json:"reordered"`         // compiles that changed the retrieval order
	FeedbackUsed     int64  `json:"feedback_used"`     // compiles ranked by observed run costs
	BackendOverrides int64  `json:"backend_overrides"` // per-step index overrides issued
	Observations     int64  `json:"observations"`      // completed runs recorded into the tuner
	TunerKeys        int    `json:"tuner_keys"`        // distinct queries with feedback
}

type cacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

type counterGroup struct {
	Total    int64 `json:"total"`
	Errors   int64 `json:"errors"`
	Naive    int64 `json:"naive"`
	Compiles int64 `json:"compiles"`
	// Bounded-execution outcomes: runs stopped by their deadline, by
	// client disconnect, and by their solution limit.
	Timeouts  int64 `json:"timeouts"`
	Cancelled int64 `json:"cancelled"`
	Truncated int64 `json:"truncated"`
}

type mutationStats struct {
	Inserts int64 `json:"inserts"`
	Deletes int64 `json:"deletes"`
}

// bulkStats counts POST /layers/{layer}/objects:bulk traffic.
type bulkStats struct {
	Batches int64 `json:"batches"` // bulk requests handled
	Objects int64 `json:"objects"` // objects inserted by them
}

// batchStats counts POST /query/batch traffic.
type batchStats struct {
	Requests   int64 `json:"requests"`    // batch requests handled
	QueriesRun int64 `json:"queries_run"` // individual queries they executed
}

type snapshotStats struct {
	Saves int64 `json:"saves"`
	Loads int64 `json:"loads"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
