package server

import (
	"testing"

	"repro/internal/query"
)

// TestPlanCacheStaleReaderDoesNotThrash models a batch request pinned to
// a pre-mutation epoch racing fresh single-query traffic: the stale
// reader must neither evict nor overwrite the entry compiled at the
// newer epoch, or the two would recompile the same text on every
// request.
func TestPlanCacheStaleReaderDoesNotThrash(t *testing.T) {
	c := NewPlanCache(8)
	fresh, stale := &query.Plan{}, &query.Plan{}
	c.Put("q", 1, 10, fresh)

	// A reader pinned at epoch 9 misses but leaves the epoch-10 entry.
	if _, hit := c.Get("q", 1, 9); hit {
		t.Fatal("stale epoch served a fresh plan")
	}
	if got, hit := c.Get("q", 1, 10); !hit || got != fresh {
		t.Fatal("stale reader evicted the fresh entry")
	}

	// The stale reader's recompiled plan must not clobber the fresh one.
	c.Put("q", 1, 9, stale)
	if got, hit := c.Get("q", 1, 10); !hit || got != fresh {
		t.Fatal("stale Put overwrote the fresh entry")
	}

	// An OLDER cached epoch is still evicted on lookup (the normal
	// mutation-invalidates-plans path)...
	if _, hit := c.Get("q", 1, 11); hit {
		t.Fatal("newer epoch served an old plan")
	}
	if c.Len() != 0 {
		t.Fatal("older entry not evicted")
	}

	// ...and a generation change always evicts, in either direction.
	c.Put("q", 1, 10, fresh)
	if _, hit := c.Get("q", 2, 10); hit {
		t.Fatal("other generation served a plan")
	}
	if c.Len() != 0 {
		t.Fatal("cross-generation entry not evicted")
	}
}
