// Chaos property tests (DESIGN.md §9): seeded random workloads run
// against a fault-injecting filesystem, asserting the durability state
// machine's contract under disk failure:
//
//   - safety: every acknowledged mutation is present after recovery, and
//     a clean shutdown recovers to exactly the state the process served
//   - degraded mode never acknowledges an unlogged mutation — rejected
//     writes leave memory untouched
//   - reads stay available throughout a degraded episode
//   - liveness: once the disk heals, the background probe re-arms the
//     log and the store accepts writes again without a restart
//
// Fault evaluation in vfs.Injector is deterministic, so a fixed seed
// replays the identical failure schedule. `make chaos` runs these (and
// the server-level chaos tests) under -race.
package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/vfs"
)

// chaosOpts are DBOptions tuned for fault tests: fsync on every ack (so
// "acknowledged" means "on disk"), tiny segments (so rotation happens
// mid-test), and millisecond retry/probe timings.
func chaosOpts(kind spatialdb.IndexKind, fs vfs.FS) DBOptions {
	return DBOptions{
		Kind: kind, Universe: testUniverse,
		Log:                Options{Policy: SyncAlways, SegmentBytes: 1 << 10, FS: fs},
		CheckpointInterval: -1, CheckpointBytes: -1,
		RetryMax: 2, RetryBackoff: time.Millisecond,
		ProbeInterval: 2 * time.Millisecond,
	}
}

// waitHealthy polls until the DB exits degraded mode.
func waitHealthy(t *testing.T, db *DB, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for db.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("still degraded after %v (cause: %s)", within, db.DegradeCause())
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosBox derives a deterministic small box from an op index.
func chaosBox(i int) bbox.Box {
	x := float64((i * 37) % 900)
	y := float64((i * 53) % 900)
	return bbox.Rect(x, y, x+3, y+3)
}

// armRandomFault adds one failpoint drawn from the chaos menu. Every
// fault is finite (bounded Count) so the injected outage always ends,
// letting the liveness half of the property hold without an explicit
// Clear.
func armRandomFault(rng *rand.Rand, inj *vfs.Injector) {
	switch rng.Intn(5) {
	case 0: // transient fsync failure on the active segment
		inj.Add(vfs.Fault{Op: vfs.OpSync, Path: segPrefix, Count: 1 + rng.Intn(3), Err: syscall.EIO})
	case 1: // torn write: a prefix lands, then the disk errors
		inj.Add(vfs.Fault{Op: vfs.OpWrite, Path: segPrefix, Count: 1, Partial: rng.Intn(8), Err: syscall.EIO})
	case 2: // rotation failure: the next segment cannot be created
		inj.Add(vfs.Fault{Op: vfs.OpCreate, Path: segPrefix, Count: 1, Err: syscall.ENOSPC})
	case 3: // checkpoint rename failure
		inj.Add(vfs.Fault{Op: vfs.OpRename, Path: snapPrefix, Count: 1, Err: syscall.EIO})
	default: // a burst of write errors, enough to exhaust the retry budget
		inj.Add(vfs.Fault{Op: vfs.OpWrite, Path: segPrefix, Count: 3 + rng.Intn(4), Err: syscall.EIO})
	}
}

// TestChaosRecoveryAcrossBackends is the chaos property harness: a
// seeded random mutate/read/checkpoint workload runs over a seeded
// random fault schedule, for every index backend. Throughout the run,
// reads must keep working and failed mutations must fail degraded; at
// the end the disk heals, the probe must bring the store back, and a
// reopen from disk must reproduce exactly the state the process served.
func TestChaosRecoveryAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is not -short")
	}
	const ops = 160
	for _, kind := range allKinds {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				inj := vfs.NewInjector(nil)
				dir := t.TempDir()
				db := mustOpenDB(t, dir, chaosOpts(kind, inj))
				store := db.Store()
				if _, _, err := store.CreateLayer("chaos"); err != nil {
					t.Fatal(err)
				}

				acked := map[string]bool{} // names acknowledged live
				for i := 0; i < ops; i++ {
					if rng.Intn(12) == 0 {
						armRandomFault(rng, inj)
					}
					switch {
					case rng.Intn(10) == 0: // checkpoint; may fail on a broken disk
						_, _ = db.Checkpoint()
					case rng.Intn(10) == 0: // read: must work no matter what
						if got := store.Layer("chaos").Len(); got < len(acked) {
							t.Fatalf("op %d: read %d objects, fewer than the %d acked", i, got, len(acked))
						}
					case len(acked) > 0 && rng.Intn(8) == 0: // remove an acked object
						var victim string
						for name := range acked {
							victim = name
							break
						}
						if _, err := store.Remove("chaos", victim); err != nil && !errors.Is(err, spatialdb.ErrDegraded) {
							t.Fatalf("op %d: remove failed un-degraded: %v", i, err)
						}
						// Acked or not, the object is no longer promised: a
						// remove that *triggered* degradation applied in memory
						// without being acknowledged, so its state is
						// indeterminate either way.
						delete(acked, victim)
					default: // insert a unique object
						name := fmt.Sprintf("c%d", i)
						if _, err := store.Insert("chaos", name, region.FromBox(chaosBox(i))); err != nil {
							if !errors.Is(err, spatialdb.ErrDegraded) {
								t.Fatalf("op %d: insert failed un-degraded: %v", i, err)
							}
						} else {
							acked[name] = true
						}
					}
				}

				// The disk heals; the probe must bring the store back.
				inj.Clear()
				waitHealthy(t, db, 5*time.Second)
				if _, err := store.Insert("chaos", "after-heal", region.FromBox(chaosBox(ops))); err != nil {
					t.Fatalf("insert after heal: %v", err)
				}
				acked["after-heal"] = true

				// Every acked object is in memory (nothing acked was lost).
				have := map[string]bool{}
				for _, o := range store.Layer("chaos").Objects() {
					have[o.Name] = true
				}
				for name := range acked {
					if !have[name] {
						t.Fatalf("acked object %q missing from the live store", name)
					}
				}

				if err := db.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
				// Reopen from disk alone: recovery must land on exactly the
				// state the process was serving (the probe's forced checkpoint
				// reconciled anything memory was ahead by).
				db2 := mustOpenDB(t, dir, chaosOpts(kind, nil))
				defer db2.Close()
				assertStoresEqual(t, db2.Store(), store, "chaos reopen")
				if st := db2.Stats(); st.Degraded {
					t.Fatal("recovered DB started degraded")
				}
			})
		}
	}
}

// TestChaosDegradedModeContract pins the state machine's edges with a
// deterministic schedule: a write outage long enough to exhaust the
// retry budget must (1) degrade instead of poisoning the log forever,
// (2) reject — not silently drop, not apply — every mutation while
// degraded, (3) keep serving reads, and (4) recover on its own once the
// fault passes, observable in the stats counters.
func TestChaosDegradedModeContract(t *testing.T) {
	inj := vfs.NewInjector(nil)
	dir := t.TempDir()
	db := mustOpenDB(t, dir, chaosOpts(spatialdb.RTree, inj))
	store := db.Store()
	if _, err := store.Insert("towns", "pre", region.FromBox(chaosBox(0))); err != nil {
		t.Fatal(err)
	}

	// Outage: every segment write fails until the injector is cleared.
	inj.Add(vfs.Fault{Op: vfs.OpWrite, Path: segPrefix, Err: syscall.EIO})

	_, err := store.Insert("towns", "trigger", region.FromBox(chaosBox(1)))
	if !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("insert during outage: %v, want ErrDegraded", err)
	}
	if !db.Degraded() {
		t.Fatal("DB not degraded after exhausted retries")
	}
	lenAt := store.Layer("towns").Len()

	// Rejected while degraded, before touching memory.
	if _, err := store.Insert("towns", "rejected", region.FromBox(chaosBox(2))); !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("insert while degraded: %v, want ErrDegraded", err)
	}
	if _, _, err := store.Upsert("towns", "rejected", region.FromBox(chaosBox(2))); !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("upsert while degraded: %v, want ErrDegraded", err)
	}
	if _, err := store.Remove("towns", "pre"); !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("remove while degraded: %v, want ErrDegraded", err)
	}
	if _, err := store.BulkInsert("towns", []spatialdb.BulkItem{
		{Name: "bulk-rejected", Reg: region.FromBox(chaosBox(3))},
	}, spatialdb.BulkAtomic); !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("bulk insert while degraded: %v, want ErrDegraded", err)
	}
	if got := store.Layer("towns").Len(); got != lenAt {
		t.Fatalf("degraded mutations changed memory: %d objects, want %d", got, lenAt)
	}
	// Reads keep serving.
	if _, ok := store.LayerIfExists("towns"); !ok {
		t.Fatal("read unavailable while degraded")
	}
	st := db.Stats()
	if !st.Degraded || st.DegradedEntered != 1 || st.DegradeCause == "" {
		t.Fatalf("degraded stats = %+v", st)
	}
	if st.WALRetries == 0 {
		t.Fatalf("no in-line retries recorded before degrading: %+v", st)
	}

	// The disk heals; the probe re-arms and exits degradation by itself.
	inj.Clear()
	waitHealthy(t, db, 5*time.Second)
	if st := db.Stats(); st.Probes == 0 {
		t.Fatalf("recovered without a probe? %+v", st)
	}
	if _, err := store.Insert("towns", "post", region.FromBox(chaosBox(4))); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDB(t, dir, chaosOpts(spatialdb.RTree, nil))
	defer db2.Close()
	assertStoresEqual(t, db2.Store(), store, "reopen after degraded episode")
}

// TestChaosTransientFsyncRetriesInPlace is the regression test for the
// old sticky-poisoning behavior: a fsync hiccup must be absorbed by the
// in-line retry (rearm + re-append or landed-record detection) with the
// mutation acknowledged, no degradation, and no duplicate record.
func TestChaosTransientFsyncRetriesInPlace(t *testing.T) {
	inj := vfs.NewInjector(nil)
	dir := t.TempDir()
	db := mustOpenDB(t, dir, chaosOpts(spatialdb.Grid, inj))
	store := db.Store()
	if _, err := store.Insert("towns", "a", region.FromBox(chaosBox(0))); err != nil {
		t.Fatal(err)
	}

	inj.Add(vfs.Fault{Op: vfs.OpSync, Path: segPrefix, Count: 1, Err: syscall.EIO})
	if _, err := store.Insert("towns", "b", region.FromBox(chaosBox(1))); err != nil {
		t.Fatalf("insert across a transient fsync fault: %v", err)
	}
	if db.Degraded() {
		t.Fatal("transient fsync fault degraded the store")
	}
	st := db.Stats()
	if st.WALRetries == 0 || st.Log.Rearms == 0 {
		t.Fatalf("expected an in-line rearm+retry, got %+v", st)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDB(t, dir, chaosOpts(spatialdb.Grid, nil))
	defer db2.Close()
	// Both objects, each exactly once: the landed-record check must not
	// have duplicated the record whose write survived its failed fsync.
	assertStoresEqual(t, db2.Store(), store, "reopen after transient fsync")
}

// TestChaosENOSPCDuringRotation covers the failed-rotation edge: the log
// advances its bookkeeping to the next segment but the segment file
// cannot be created. The in-line rearm must recreate it once space
// returns and acknowledge the write; a full outage must degrade and
// recover like any other.
func TestChaosENOSPCDuringRotation(t *testing.T) {
	inj := vfs.NewInjector(nil)
	dir := t.TempDir()
	opts := chaosOpts(spatialdb.RTree, inj)
	opts.Log.SegmentBytes = 128 // rotate every couple of records
	db := mustOpenDB(t, dir, opts)
	store := db.Store()

	// Fill most of the first segment, then fail the next segment create
	// once: the rotating append must retry through it.
	for i := 0; i < 3; i++ {
		if _, err := store.Insert("towns", fmt.Sprintf("t%d", i), region.FromBox(chaosBox(i))); err != nil {
			t.Fatal(err)
		}
	}
	inj.Add(vfs.Fault{Op: vfs.OpCreate, Path: segPrefix, Count: 1, Err: syscall.ENOSPC})
	for i := 3; i < 10; i++ {
		if _, err := store.Insert("towns", fmt.Sprintf("t%d", i), region.FromBox(chaosBox(i))); err != nil {
			t.Fatalf("insert %d across rotation ENOSPC: %v", i, err)
		}
	}
	if db.Degraded() {
		t.Fatal("one failed rotation degraded the store")
	}
	if st := db.Stats(); st.WALRetries == 0 {
		t.Fatalf("rotation failure was not retried: %+v", st)
	}

	// Now the disk is genuinely full: writes store what fits and fail.
	inj.SetWriteBudget(4)
	_, err := store.Insert("towns", "nospace", region.FromBox(chaosBox(10)))
	if !errors.Is(err, spatialdb.ErrDegraded) {
		t.Fatalf("insert on a full disk: %v, want ErrDegraded", err)
	}
	inj.SetWriteBudget(-1) // space freed
	waitHealthy(t, db, 5*time.Second)
	if _, err := store.Insert("towns", "freed", region.FromBox(chaosBox(11))); err != nil {
		t.Fatalf("insert after space freed: %v", err)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDB(t, dir, chaosOpts(spatialdb.RTree, nil))
	defer db2.Close()
	assertStoresEqual(t, db2.Store(), store, "reopen after ENOSPC episode")
}

// TestChaosCheckpointFaults covers the snapshot path: a checkpoint whose
// rename fails must clean up its temp file and count a failure; a temp
// file stranded by a crash mid-checkpoint must be pruned at the next
// boot; and the background checkpointer must retry a failed checkpoint
// within its tick.
func TestChaosCheckpointFaults(t *testing.T) {
	inj := vfs.NewInjector(nil)
	dir := t.TempDir()
	db := mustOpenDB(t, dir, chaosOpts(spatialdb.Scan, inj))
	store := db.Store()
	for i := 0; i < 4; i++ {
		if _, err := store.Insert("towns", fmt.Sprintf("t%d", i), region.FromBox(chaosBox(i))); err != nil {
			t.Fatal(err)
		}
	}

	// Rename fails once: the checkpoint errors, counts, and leaves no temp.
	inj.Add(vfs.Fault{Op: vfs.OpRename, Path: snapPrefix, Count: 1, Err: syscall.EIO})
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded through a failed rename")
	}
	if st := db.Stats(); st.CheckpointErr != 1 {
		t.Fatalf("checkpoint_failures = %d, want 1", st.CheckpointErr)
	}
	assertNoTempFiles(t, dir)
	// The fault is spent; the same checkpoint succeeds now.
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after spent fault: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-checkpoint strands a temp file (the rename never ran);
	// recovery prunes it and reports it.
	orphan := filepath.Join(dir, snapPrefix+"31337"+tmpSuffix)
	if err := os.WriteFile(orphan, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDB(t, dir, chaosOpts(spatialdb.Scan, nil))
	defer db2.Close()
	if got := db2.Stats().OrphanTemps; got != 1 {
		t.Fatalf("orphan_temps_pruned = %d, want 1", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp still present: %v", err)
	}
	assertStoresEqual(t, db2.Store(), store, "reopen after orphan prune")
}

// TestChaosBackgroundCheckpointRetries drives the checkpointLoop against
// a once-failing rename: the in-tick retry must land the snapshot and
// count both the failure and the retry.
func TestChaosBackgroundCheckpointRetries(t *testing.T) {
	inj := vfs.NewInjector(nil)
	dir := t.TempDir()
	opts := chaosOpts(spatialdb.RTree, inj)
	opts.CheckpointInterval = 5 * time.Millisecond
	opts.CheckpointBytes = 1 // any logged byte triggers the next tick
	db := mustOpenDB(t, dir, opts)
	defer db.Close()

	inj.Add(vfs.Fault{Op: vfs.OpRename, Path: snapPrefix, Count: 1, Err: syscall.EIO})
	if _, err := db.Store().Insert("towns", "a", region.FromBox(chaosBox(0))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := db.Stats()
		if st.Checkpoints >= 1 && st.CheckpointErr >= 1 && st.CheckpointRtry >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never retried through the fault: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertNoTempFiles fails if dir holds any checkpoint temp file.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), tmpSuffix) {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}
