# Multi-stage build: compile a static boolqd, ship it in a distroless
# runtime image (no shell, no package manager, runs as nonroot).
#
#   docker build -t boolqd .
#   docker run --rm -p 8080:8080 boolqd
#
# See the README's "Running in a container" section.

FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/boolqd ./cmd/boolqd

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/boolqd /boolqd
EXPOSE 8080
ENTRYPOINT ["/boolqd"]
# Serve the generated §2 demo map by default; override with e.g.
#   docker run boolqd -snapshot /data/db.json
CMD ["-demo"]
