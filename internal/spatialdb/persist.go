package spatialdb

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bbox"
	"repro/internal/region"
)

// The on-disk snapshot format: a versioned JSON document with the universe
// and every layer's objects as disjoint box lists. Indexes are rebuilt on
// load (they are derived state), so snapshots are portable across index
// backends.

type snapshot struct {
	Version  int         `json:"version"`
	Universe snapBox     `json:"universe"`
	Layers   []snapLayer `json:"layers"`
}

type snapLayer struct {
	Name    string       `json:"name"`
	Objects []snapObject `json:"objects"`
}

type snapObject struct {
	Name  string    `json:"name,omitempty"`
	Boxes []snapBox `json:"boxes"`
}

type snapBox struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

const snapshotVersion = 1

// Save writes the store's contents as JSON. Object ids are not preserved
// (they are assigned afresh on load); insertion order and names are.
// Save holds the store's read guard, so it snapshots a consistent state
// even while writers are active.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{
		Version:  snapshotVersion,
		Universe: toSnapBox(s.universe),
	}
	for _, name := range s.names {
		layer := s.layers[name]
		sl := snapLayer{Name: name}
		for _, o := range layer.Objects() {
			so := snapObject{Name: o.Name}
			for _, b := range o.Reg.Boxes() {
				so.Boxes = append(so.Boxes, toSnapBox(b))
			}
			sl.Objects = append(sl.Objects, so)
		}
		snap.Layers = append(snap.Layers, sl)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load reads a snapshot written by Save into a fresh store with the given
// index backend.
func Load(r io.Reader, kind IndexKind) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("spatialdb: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("spatialdb: unsupported snapshot version %d", snap.Version)
	}
	universe, err := fromSnapBox(snap.Universe)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: universe: %w", err)
	}
	if universe.IsEmpty() {
		return nil, fmt.Errorf("spatialdb: snapshot has an empty universe")
	}
	store := NewStore(universe, kind)
	for _, sl := range snap.Layers {
		store.Layer(sl.Name) // create even if empty
		for _, so := range sl.Objects {
			boxes := make([]bbox.Box, 0, len(so.Boxes))
			for _, sb := range so.Boxes {
				b, err := fromSnapBox(sb)
				if err != nil {
					return nil, fmt.Errorf("spatialdb: layer %q object %q: %w", sl.Name, so.Name, err)
				}
				boxes = append(boxes, b)
			}
			reg := region.FromBoxes(universe.K, boxes...)
			if _, err := store.Insert(sl.Name, so.Name, reg); err != nil {
				return nil, fmt.Errorf("spatialdb: layer %q object %q: %w", sl.Name, so.Name, err)
			}
		}
	}
	return store, nil
}

func toSnapBox(b bbox.Box) snapBox {
	return snapBox{
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

func fromSnapBox(sb snapBox) (bbox.Box, error) {
	return bbox.Make(sb.Lo, sb.Hi)
}
