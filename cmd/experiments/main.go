// Command experiments regenerates the paper's figures, worked examples and
// empirical claims as tables on stdout. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded outcomes.
//
// Usage:
//
//	experiments            # run everything
//	experiments -list      # list experiment IDs
//	experiments -run E6    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment by ID (e.g. E6)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if *run != "" {
		r, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		fmt.Println(r.Run().String())
		return
	}
	for _, r := range experiments.All() {
		fmt.Println(r.Run().String())
	}
}
