// Package repl is WAL-shipping replication: a primary-side log stream
// (served by internal/server's /repl endpoints) and a replica-side apply
// loop that bootstraps from the newest checkpoint snapshot and then
// tails the primary's WAL, applying each record through the store's
// replay path. DESIGN.md §10 describes the topology and the invariants;
// the short form is that a replica is always an exact prefix of the
// primary — snapshot state plus records 1..applied_lsn — so replaying
// the remaining suffix reconverges it from any interruption point.
package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/wal"
)

// WireRecord is one NDJSON line of the /repl/wal stream. Exactly one of
// the three shapes is populated:
//
//   - a data record: LSN, CRC (crc32-IEEE of Data, carried end to end so
//     the replica re-verifies the payload it received, not just the
//     payload the primary read), Data, DurableLSN;
//   - a heartbeat: Heartbeat plus DurableLSN — sent while the log is
//     idle so replicas can measure lag and liveness without traffic;
//   - a stream end: End plus DurableLSN — the primary is draining; the
//     replica should reconnect (the next accept may be a new primary).
//
// Error is set on a mid-stream failure the primary could not map to an
// HTTP status because the response had already started.
type WireRecord struct {
	LSN        uint64 `json:"lsn,omitempty"`
	CRC        uint32 `json:"crc,omitempty"`
	Data       []byte `json:"data,omitempty"` // base64 via encoding/json
	Heartbeat  bool   `json:"heartbeat,omitempty"`
	DurableLSN uint64 `json:"durable_lsn"`
	End        bool   `json:"end,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Snapshot is a checkpoint being streamed from the primary: the boundary
// LSN plus the raw .bqs body. The caller owns Body.
type Snapshot struct {
	LSN  uint64
	Body io.ReadCloser
}

// RecordStream is an open /repl/wal stream. Next blocks until a record,
// heartbeat, or stream end arrives; it returns io.EOF when the primary
// closed the stream cleanly. Close releases the connection and unblocks
// a pending Next.
type RecordStream interface {
	Next() (WireRecord, error)
	Close() error
}

// Transport is the replica's view of its primary. The two errors that
// carry protocol meaning are wal.ErrNoSnapshot from FetchSnapshot (the
// primary has no checkpoint yet; bootstrap empty and tail from LSN 0)
// and wal.ErrTruncated from OpenWAL (the cursor is behind the primary's
// retention; re-bootstrap from a snapshot). Everything else is a
// transient fault the fetch loop retries with backoff. Implementations:
// HTTPTransport for real links, FaultTransport (fault.go) wrapping any
// Transport for the chaos harness.
type Transport interface {
	// FetchSnapshot opens the primary's newest checkpoint.
	FetchSnapshot(ctx context.Context) (*Snapshot, error)
	// OpenWAL opens the record stream for LSNs > after.
	OpenWAL(ctx context.Context, after uint64) (RecordStream, error)
}

// SnapshotLSNHeader carries the snapshot's boundary LSN on GET
// /repl/snapshot responses. The server handler sets it; FetchSnapshot
// requires it.
const SnapshotLSNHeader = "X-Boolq-Snapshot-Lsn"

// HTTPTransport speaks the /repl/* endpoints of a boolqd primary.
type HTTPTransport struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// Client is the HTTP client (nil: http.DefaultClient). Streams are
	// long-polls, so the client must not carry a short overall timeout;
	// cancellation comes from the context.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) base() string { return strings.TrimRight(t.Base, "/") }

// FetchSnapshot implements Transport.
func (t *HTTPTransport) FetchSnapshot(ctx context.Context) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base()+"/repl/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, wal.ErrNoSnapshot
	default:
		err := httpError("snapshot", resp)
		resp.Body.Close()
		return nil, err
	}
	lsn, err := strconv.ParseUint(resp.Header.Get(SnapshotLSNHeader), 10, 64)
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("repl: snapshot response carries no %s header: %w", SnapshotLSNHeader, err)
	}
	return &Snapshot{LSN: lsn, Body: resp.Body}, nil
}

// OpenWAL implements Transport.
func (t *HTTPTransport) OpenWAL(ctx context.Context, after uint64) (RecordStream, error) {
	url := fmt.Sprintf("%s/repl/wal?from=%d", t.base(), after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		resp.Body.Close()
		return nil, fmt.Errorf("%w (primary pruned past LSN %d)", wal.ErrTruncated, after)
	default:
		err := httpError("wal", resp)
		resp.Body.Close()
		return nil, err
	}
	return &httpStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// httpError summarizes a non-OK response, including a clipped body (the
// server's JSON error) for the log line.
func httpError(what string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("repl: %s fetch: %s: %s", what, resp.Status, strings.TrimSpace(string(body)))
}

type httpStream struct {
	body io.ReadCloser
	dec  *json.Decoder
}

func (s *httpStream) Next() (WireRecord, error) {
	var rec WireRecord
	if err := s.dec.Decode(&rec); err != nil {
		if errors.Is(err, io.EOF) {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("repl: stream decode: %w", err)
	}
	return rec, nil
}

func (s *httpStream) Close() error { return s.body.Close() }
