package bbox

import (
	"fmt"
	"sort"
	"strings"
)

// FuncKind discriminates bounding-box function nodes.
type FuncKind uint8

// Bounding-box function node kinds.
const (
	FEmpty FuncKind = iota // the constant ∅ (bounding box of 0)
	FUniv                  // the constant universe (bounding box of 1)
	FVar                   // ⌈x_v⌉, the bounding box of variable v's value
	FConst                 // a fixed box (bound parameter)
	FMeet                  // ⊓
	FJoin                  // ⊔
)

// Func is a bounding-box function: a term over ⊓, ⊔, variables ⌈x⌉ and
// constants, as produced by Algorithm 2. The query executor evaluates these
// per retrieved tuple instead of computing exact region intersections and
// unions — the paper's "much cheaper" compile-time substitution (§4).
type Func struct {
	kind FuncKind
	v    int
	c    Box
	l, r *Func
}

// EmptyFunc returns the constant-∅ function.
func EmptyFunc() *Func { return &Func{kind: FEmpty} }

// UnivFunc returns the constant-universe function.
func UnivFunc() *Func { return &Func{kind: FUniv} }

// VarFunc returns the function ⌈x_v⌉.
func VarFunc(v int) *Func {
	if v < 0 {
		panic(fmt.Sprintf("bbox: negative variable index %d", v))
	}
	return &Func{kind: FVar, v: v}
}

// ConstFunc returns the constant function b.
func ConstFunc(b Box) *Func { return &Func{kind: FConst, c: b} }

// MeetFunc returns l ⊓ r with unit folding.
func MeetFunc(l, r *Func) *Func {
	switch {
	case l.kind == FEmpty || r.kind == FEmpty:
		return EmptyFunc()
	case l.kind == FUniv:
		return r
	case r.kind == FUniv:
		return l
	case l.Same(r):
		return l
	}
	return &Func{kind: FMeet, l: l, r: r}
}

// JoinFunc returns l ⊔ r with unit folding.
func JoinFunc(l, r *Func) *Func {
	switch {
	case l.kind == FUniv || r.kind == FUniv:
		return UnivFunc()
	case l.kind == FEmpty:
		return r
	case r.kind == FEmpty:
		return l
	case l.Same(r):
		return l
	}
	return &Func{kind: FJoin, l: l, r: r}
}

// Kind returns the node kind.
func (f *Func) Kind() FuncKind { return f.kind }

// Same reports structural equality.
func (f *Func) Same(g *Func) bool {
	if f == g {
		return true
	}
	if f == nil || g == nil || f.kind != g.kind {
		return false
	}
	switch f.kind {
	case FEmpty, FUniv:
		return true
	case FVar:
		return f.v == g.v
	case FConst:
		return f.c.Equal(g.c)
	default:
		return f.l.Same(g.l) && f.r.Same(g.r)
	}
}

// Eval evaluates the function in k dimensions with env supplying the
// bounding box of each variable by index. Unbound variables panic (the
// compiler guarantees bindings).
func (f *Func) Eval(k int, env []Box) Box {
	switch f.kind {
	case FEmpty:
		return Empty(k)
	case FUniv:
		return Univ(k)
	case FVar:
		if f.v >= len(env) {
			panic(fmt.Sprintf("bbox: unbound variable x%d in box function", f.v))
		}
		return env[f.v]
	case FConst:
		return f.c
	case FMeet:
		return f.l.Eval(k, env).Meet(f.r.Eval(k, env))
	default:
		return f.l.Eval(k, env).Join(f.r.Eval(k, env))
	}
}

// FreeVars returns the sorted variable indices used by f. There is no cap
// on the index range: plans with more than 64 variables report every free
// variable.
func (f *Func) FreeVars() []int {
	seen := map[int]bool{}
	f.collect(seen)
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (f *Func) collect(seen map[int]bool) {
	switch f.kind {
	case FVar:
		seen[f.v] = true
	case FMeet, FJoin:
		f.l.collect(seen)
		f.r.collect(seen)
	}
}

// Bind replaces every variable that has a non-nil entry in subs by that
// function (used to substitute parameter boxes at plan-bind time).
func (f *Func) Bind(subs []*Func) *Func {
	switch f.kind {
	case FVar:
		if f.v < len(subs) && subs[f.v] != nil {
			return subs[f.v]
		}
		return f
	case FMeet:
		return MeetFunc(f.l.Bind(subs), f.r.Bind(subs))
	case FJoin:
		return JoinFunc(f.l.Bind(subs), f.r.Bind(subs))
	default:
		return f
	}
}

// String renders the function with ⊓ as "^" and ⊔ as "v".
func (f *Func) String() string {
	return f.StringNamed(func(v int) string { return fmt.Sprintf("x%d", v) })
}

// StringNamed renders the function using name(v) for variables.
func (f *Func) StringNamed(name func(int) string) string {
	var b strings.Builder
	f.render(&b, name, 0)
	return b.String()
}

// precedence: Join=1, Meet=2, atoms=3
func (f *Func) render(b *strings.Builder, name func(int) string, parent int) {
	switch f.kind {
	case FEmpty:
		b.WriteString("∅")
	case FUniv:
		b.WriteString("U")
	case FVar:
		fmt.Fprintf(b, "[%s]", name(f.v))
	case FConst:
		b.WriteString(f.c.String())
	case FMeet:
		if parent > 2 {
			b.WriteString("(")
		}
		f.l.render(b, name, 2)
		b.WriteString(" ^ ")
		f.r.render(b, name, 2)
		if parent > 2 {
			b.WriteString(")")
		}
	case FJoin:
		if parent > 1 {
			b.WriteString("(")
		}
		f.l.render(b, name, 1)
		b.WriteString(" v ")
		f.r.render(b, name, 1)
		if parent > 1 {
			b.WriteString(")")
		}
	}
}
