package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

// PlanCache is an LRU cache of compiled query plans keyed by the
// normalized query text (lang.Normalize), validated against the store
// epoch the plan was compiled at. A hit skips Parse and Compile — the
// whole §3/§4 pipeline — and goes straight to Plan.Run.
//
// Epoch handling: each entry remembers the store generation (bumped when
// the server swaps its store on snapshot load — epochs of different
// stores are not comparable) and the epoch it was compiled at. A lookup
// with a different generation or epoch deletes the entry and reports a
// miss, so a store mutation invalidates every cached plan lazily, without
// a sweep, and an in-flight Put racing a store swap can never be served
// against the new store. (Compilation today depends only on the store
// schema, but cached plans may embed data-dependent choices — e.g.
// sampled retrieval orders — so the cache is conservative and keys on
// every mutation.)
type PlanCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	text  string
	gen   uint64
	epoch uint64
	plan  *query.Plan
}

// DefaultCacheSize is the plan capacity used when Options.CacheSize ≤ 0.
const DefaultCacheSize = 128

// NewPlanCache returns an empty cache holding up to capacity plans.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &PlanCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// Get returns the plan cached for the normalized text if it was compiled
// at the given store generation and epoch. An entry from another
// generation or an older epoch is evicted and counts as a miss. An entry
// from a NEWER epoch also misses but is left in place: it happens when a
// batch request pinned to a pre-mutation epoch races fresh single-query
// traffic, and evicting would let the stale reader thrash entries the
// live traffic keeps rebuilding.
func (c *PlanCache) Get(text string, gen, epoch uint64) (*query.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[text]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent := e.Value.(*cacheEntry)
	if ent.gen != gen || ent.epoch != epoch {
		if ent.gen != gen || ent.epoch < epoch {
			c.ll.Remove(e)
			delete(c.m, text)
		}
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits.Add(1)
	return ent.plan, true
}

// Put stores a plan compiled at the given store generation and epoch,
// evicting the least recently used entry when full. A plan compiled at
// an older epoch than the entry already cached is dropped (the
// stale-pinned batch case; see Get).
func (c *PlanCache) Put(text string, gen, epoch uint64, plan *query.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[text]; ok {
		ent := e.Value.(*cacheEntry)
		if ent.gen == gen && ent.epoch > epoch {
			return
		}
		ent.gen, ent.epoch, ent.plan = gen, epoch, plan
		c.ll.MoveToFront(e)
		return
	}
	c.m[text] = c.ll.PushFront(&cacheEntry{text: text, gen: gen, epoch: epoch, plan: plan})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).text)
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the capacity.
func (c *PlanCache) Cap() int { return c.cap }

// Clear drops all entries (used when the backing store is swapped by a
// snapshot load, since epochs are only comparable within one store).
func (c *PlanCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = map[string]*list.Element{}
}

// Hits returns the number of cache hits served.
func (c *PlanCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that required a compile.
func (c *PlanCache) Misses() uint64 { return c.misses.Load() }
