package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test working directory")
		}
		dir = parent
	}
}

// TestRepoIsVetClean is the meta-check: the suite must report nothing on
// the repository itself. Every true positive boolqvet ever finds is
// either fixed or carries a reasoned //lint:ignore, so a finding here is
// a regression — a new bug, or a new false-positive class to fix in the
// analyzer before it lands.
func TestRepoIsVetClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	results, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, r := range results {
		t.Errorf("%s", r)
	}
}

// TestVettoolProtocol builds the binary and runs it under go vet, which
// exercises the unitchecker protocol (-V=full handshake, .cfg units,
// .vetx fact files) that the in-process path above does not touch.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and re-vets the tree; skipped in -short")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "boolqvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/boolqvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool reported findings: %v\n%s", err, out)
	}
}
