package bbox

import (
	"repro/internal/bcf"
	"repro/internal/formula"
)

// Lower computes L_f, the best lower bounding-box approximation of the
// Boolean function f (Theorem 14 / Algorithm 2 step 2): the ⊔ of ⌈x⌉ over
// every atom x with x ≤ f, i.e. over the single-positive-literal terms of
// BCF(f). L_f satisfies L_f(⌈x₁⌉,…) ⊑ ⌈f(x₁,…)⌉ for all region values, and
// is the greatest box function with that property.
func Lower(f *formula.Formula) (*Func, error) {
	s, err := bcf.BCF(f)
	if err != nil {
		return nil, err
	}
	return LowerFromBCF(s), nil
}

// LowerFromBCF is Lower for a precomputed Blake canonical form.
func LowerFromBCF(s formula.SOP) *Func {
	acc := EmptyFunc()
	for _, t := range s {
		if t.IsTrue() {
			// f ≡ 1: its bounding box is the whole space.
			return UnivFunc()
		}
	}
	for _, v := range bcf.AtomicTerms(s) {
		acc = JoinFunc(acc, VarFunc(v))
	}
	return acc
}

// Upper computes U_f, the best upper bounding-box approximation of f
// (Theorem 15 / Algorithm 2 step 3): drop all negative literals from the
// Blake canonical form, replace ∧ by ⊓ and ∨ by ⊔, and simplify. U_f
// satisfies ⌈f(x₁,…)⌉ ⊑ U_f(⌈x₁⌉,…) for all region values, and is the least
// box function with that property.
func Upper(f *formula.Formula) (*Func, error) {
	s, err := bcf.BCF(f)
	if err != nil {
		return nil, err
	}
	return UpperFromBCF(s), nil
}

// UpperFromBCF is Upper for a precomputed Blake canonical form.
func UpperFromBCF(s formula.SOP) *Func {
	// Drop negative literals per term; a term with only negative literals
	// (or the empty term) upper-approximates to the universe.
	type boxTerm struct {
		vars uint64 // set of positive literals; meet of their boxes
	}
	var terms []boxTerm
	for _, t := range s {
		if t.Pos == 0 {
			return UnivFunc()
		}
		terms = append(terms, boxTerm{vars: t.Pos})
	}
	// Simplify: a term whose variable set is a superset of another's is
	// absorbed (meet of more boxes is smaller, so it adds nothing to ⊔).
	var kept []boxTerm
	for i, t := range terms {
		absorbed := false
		for j, u := range terms {
			if i == j {
				continue
			}
			if u.vars&^t.vars == 0 && (u.vars != t.vars || j < i) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, t)
		}
	}
	acc := EmptyFunc()
	for _, t := range kept {
		term := UnivFunc()
		for v := 0; v < 64; v++ {
			if t.vars&(uint64(1)<<uint(v)) != 0 {
				term = MeetFunc(term, VarFunc(v))
			}
		}
		acc = JoinFunc(acc, term)
	}
	return acc
}

// Approx bundles the two approximations of one Boolean function.
type Approx struct {
	L, U *Func
}

// Approximate computes both L_f and U_f sharing one BCF computation.
func Approximate(f *formula.Formula) (Approx, error) {
	s, err := bcf.BCF(f)
	if err != nil {
		return Approx{}, err
	}
	return Approx{L: LowerFromBCF(s), U: UpperFromBCF(s)}, nil
}
