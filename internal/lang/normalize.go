package lang

import "strings"

// Normalize returns the canonical rendering of a query program: the token
// stream re-serialized with uniform spacing, comments and line breaks
// stripped. Two programs that lex to the same tokens normalize to the
// same string, which makes the result a stable key for compiled-plan
// caches (boolqd's plan cache keys on Normalize(src) plus the store
// epoch). The input is not parsed beyond lexing, so a normalized key can
// be computed even for programs that fail semantic checks; Parse errors
// then surface on the cache miss path.
func Normalize(src string) (string, error) {
	toks, err := Lex(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	prev := Token{Kind: TokEOF}
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 && spaceBetween(prev, t) {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
		prev = t
	}
	return b.String(), nil
}

// spaceBetween decides whether the canonical form separates two adjacent
// tokens: punctuation hugs its operand (no space before , ; ) or after
// ( ~, and a call-style ident( pair stays glued), everything else is
// space-separated.
func spaceBetween(prev, cur Token) bool {
	switch cur.Kind {
	case TokComma, TokSemi, TokRParen:
		return false
	}
	switch prev.Kind {
	case TokLParen, TokNot:
		return false
	}
	if cur.Kind == TokLParen && prev.Kind == TokIdent {
		return false
	}
	return true
}
