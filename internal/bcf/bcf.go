// Package bcf computes the Blake canonical form (BCF) of a Boolean
// function: the disjunction of all its prime implicants.
//
// The paper (§4) uses the BCF as the bridge between semantic and syntactic
// reasoning: Blake's theorem states that for a sum-of-products g and any
// formula f, g ≤ f holds semantically iff g is *syllogistically* below
// BCF(f) — every term of g has a subsuming term in BCF(f). Algorithm 2
// reads the optimal lower and upper bounding-box approximations of f
// directly off BCF(f) (see internal/bbox).
//
// BCF is computed by the classical consensus/absorption method [Blake 1937;
// Brown, Boolean Reasoning]: start from any sum-of-products form, repeatedly
// add the consensus of pairs of terms and delete absorbed terms, until
// fixpoint.
//
// DESIGN.md §2 ("Foundations") places this package in the module map; §1 sketches the compilation pipeline it serves.
package bcf

import (
	"repro/internal/formula"
)

// BCF returns the Blake canonical form of f as an absorbed sum of its prime
// implicants, in deterministic order. It returns formula.ErrTooManyTerms if
// the intermediate sums explode (compile-time guard; the paper notes the
// method is exponential in the number of variables).
func BCF(f *formula.Formula) (formula.SOP, error) {
	sop, err := formula.DNF(f)
	if err != nil {
		return nil, err
	}
	return Close(sop)
}

// Close computes the consensus/absorption closure of an arbitrary sum of
// products, yielding the Blake canonical form of the function it denotes.
func Close(sop formula.SOP) (formula.SOP, error) {
	terms := sop.Absorb()
	for {
		var added []formula.Term
		for i := 0; i < len(terms); i++ {
			for j := i + 1; j < len(terms); j++ {
				c, ok := terms[i].Consensus(terms[j])
				if !ok {
					continue
				}
				if subsumedBy(c, terms) || subsumedBy(c, added) {
					continue
				}
				added = append(added, c)
				if len(terms)+len(added) > formula.MaxDNFTerms {
					return nil, formula.ErrTooManyTerms
				}
			}
		}
		if len(added) == 0 {
			return terms, nil
		}
		terms = append(terms, added...)
		terms = terms.Absorb()
	}
}

// subsumedBy reports whether some term of ts subsumes c (making c
// redundant).
func subsumedBy(c formula.Term, ts []formula.Term) bool {
	for _, t := range ts {
		if t.Subsumes(c) {
			return true
		}
	}
	return false
}

// PrimeImplicants returns the prime implicants of f (the terms of its BCF).
func PrimeImplicants(f *formula.Formula) ([]formula.Term, error) {
	return BCF(f)
}

// IsImplicant reports whether the term t implies f (t ≤ f as Boolean
// functions).
func IsImplicant(t formula.Term, f *formula.Formula) bool {
	return formula.Implies2(t.Formula(), f)
}

// IsPrimeImplicant reports whether t is an implicant of f such that no
// proper sub-term (t with one literal removed) is still an implicant.
func IsPrimeImplicant(t formula.Term, f *formula.Formula) bool {
	if t.Contradictory() || !IsImplicant(t, f) {
		return false
	}
	for _, v := range t.Vars() {
		bit := uint64(1) << uint(v)
		weaker := t
		if t.Pos&bit != 0 {
			weaker.Pos &^= bit
		} else {
			weaker.Neg &^= bit
		}
		if IsImplicant(weaker, f) {
			return false
		}
	}
	return true
}

// SyllogisticallyLeq reports whether every term of g has a subsuming term
// in h — the syntactic order "g ≼ h" of Theorem 12. When h is a Blake
// canonical form this coincides with semantic implication g ≤ h
// (Blake's theorem, Thm 13).
func SyllogisticallyLeq(g, h formula.SOP) bool {
	for _, t := range g {
		if !subsumedBy(t, h) {
			return false
		}
	}
	return true
}

// AtomicTerms returns the single-positive-literal terms of the sum — the
// "atoms x with x ≤ f" that Theorem 14 reads off the BCF to build the best
// lower bounding-box approximation.
func AtomicTerms(sop formula.SOP) []int {
	var vars []int
	for _, t := range sop {
		if t.Neg == 0 && popcount1(t.Pos) {
			vars = append(vars, t.Vars()[0])
		}
	}
	return vars
}

func popcount1(x uint64) bool { return x != 0 && x&(x-1) == 0 }
