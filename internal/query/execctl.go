package query

import (
	"context"
	"sync/atomic"
)

// cancelCheckEvery is how many candidates an executor examines between
// context polls: frequent enough that a pathological query notices
// cancellation within microseconds of work, rare enough that the poll
// (one atomic load on the fast path) costs nothing measurable.
const cancelCheckEvery = 256

// execCtl coordinates bounded, cancellable execution: one per run,
// shared by every goroutine of that run. Cancellation is detected by
// polling the context's done channel and latched into an atomic flag so
// all workers see it on their next check; the solution limit is
// enforced with an atomic reservation counter so parallel workers never
// over-emit, whatever the interleaving.
type execCtl struct {
	done      <-chan struct{} // nil when the context cannot be cancelled
	limit     int64           // max solutions to emit; ≤ 0 means unlimited
	emitted   atomic.Int64
	cancelled atomic.Bool
	truncated atomic.Bool
}

func newExecCtl(ctx context.Context, limit int) *execCtl {
	c := &execCtl{limit: int64(limit)}
	if ctx != nil {
		c.done = ctx.Done()
	}
	return c
}

// poll samples the context. Once cancelled the flag latches, so every
// goroutine of the run halts on its next halted() check even if it
// never polls the channel itself.
func (c *execCtl) poll() bool {
	if c.cancelled.Load() {
		return true
	}
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		c.cancelled.Store(true)
		return true
	default:
		return false
	}
}

// reserve claims one solution slot. False means the limit was already
// exhausted: the caller must drop its solution and unwind.
func (c *execCtl) reserve() bool {
	if c.limit <= 0 {
		return true
	}
	if c.emitted.Add(1) > c.limit {
		c.truncated.Store(true)
		return false
	}
	return true
}

// halted reports whether execution should unwind: the context was
// cancelled or the solution limit has been reached. Reaching the limit
// marks the run truncated — the search stops before exhausting the
// space (a run whose solution count happens to equal the limit exactly
// may therefore also be flagged).
func (c *execCtl) halted() bool {
	if c.cancelled.Load() {
		return true
	}
	if c.limit > 0 && c.emitted.Load() >= c.limit {
		c.truncated.Store(true)
		return true
	}
	return false
}

// finish copies the run's outcome flags into its stats.
func (c *execCtl) finish(stats *Stats) {
	stats.Cancelled = c.cancelled.Load()
	stats.Truncated = c.truncated.Load()
}
