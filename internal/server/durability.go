// Durability endpoints. When boolqd runs with -data-dir the server is
// constructed over a wal.DB (Options.Durable): every mutation handler's
// store call appends a WAL record before acknowledging, /stats and
// /debug/vars grow durability counters, and two probe endpoints become
// meaningful:
//
//	GET  /healthz     liveness + durability state — always 200 while the
//	                  process serves, with "state" healthy|degraded|replica
//	GET  /readyz      readiness — 200 only when this node should receive
//	                  traffic; 503 while degraded, draining, or (on a
//	                  replica) before catch-up (and the bootstrap handler
//	                  in cmd/boolqd answers 503 "recovering" while
//	                  recovery is still running)
//	POST /checkpoint  force a snapshot + WAL truncation now
//
// Both probes attach Retry-After whenever they report a transient state:
// degraded and replica-lagging conditions clear on their own, and the
// header tells pollers when to come back. /healthz stays 200 through all
// of them — degraded read-only mode is a state to report, not a reason
// to be restarted.
//
// POST /snapshot is refused in durable mode: swapping the store out from
// under the DB would disconnect it from the log. GET /snapshot (save)
// still works — it only reads. Replica mode (Options.Replica) rejects
// every local mutation with 503 plus the primary's address in the
// X-Boolq-Primary header; repl_handlers.go has the primary-side stream.
package server

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/spatialdb"
)

// PrimaryHeader names the primary on replica mutation rejections, so a
// client that wrote to the wrong node learns where to go without parsing
// the error string.
const PrimaryHeader = "X-Boolq-Primary"

// retryAfterLagging is the Retry-After for replica-lagging 503s: catch-up
// is usually a stream flush away, so it is the short value.
const retryAfterLagging = 1

// mutationStatus maps a mutation error to an HTTP status. Degraded
// read-only mode (the WAL is down, a background probe is repairing it)
// and the replica gate (writes belong on the primary) are both 503 —
// retryable somewhere, if not here; a plain durability failure (the WAL
// append failed and the write must not be treated as acknowledged) is a
// server-side 500; anything else is the caller's 400.
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, spatialdb.ErrDegraded), errors.Is(err, spatialdb.ErrReplica):
		return http.StatusServiceUnavailable
	case errors.Is(err, spatialdb.ErrDurability):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// writeMutationError reports a failed mutation, attaching Retry-After
// when the failure is the retryable degraded-mode rejection and the
// primary's address when it is the replica gate.
//
//boolq:errwriter
func (s *Server) writeMutationError(w http.ResponseWriter, err error, format string, args ...any) {
	if errors.Is(err, spatialdb.ErrReplica) {
		primary := ""
		if s.replica != nil {
			primary = s.replica.Primary()
		}
		if primary != "" {
			w.Header().Set(PrimaryHeader, primary)
			writeRetryError(w, http.StatusServiceUnavailable, retryAfterDegraded,
				"store is a read-only replica; write to the primary at %s", primary)
			return
		}
		writeRetryError(w, http.StatusServiceUnavailable, retryAfterDegraded,
			"store is a read-only replica")
		return
	}
	status := mutationStatus(err)
	if status == http.StatusServiceUnavailable {
		writeRetryError(w, status, retryAfterDegraded, format, args...)
		return
	}
	writeError(w, status, format, args...)
}

// writeProbe writes a probe response, attaching Retry-After whenever
// retryAfter > 0 — the one place /healthz and /readyz share, so the two
// probes can never again disagree about which transient states carry the
// header (PR 9 shipped a degraded /healthz without one while /readyz set
// it by hand).
func writeProbe(w http.ResponseWriter, status, retryAfter int, v any) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, v)
}

// durabilityState classifies the durable layer for the probe endpoints:
// "healthy", "degraded", or "" when the server is not durable.
func (s *Server) durabilityState() string {
	if s.durable == nil {
		return ""
	}
	if s.durable.Degraded() {
		return "degraded"
	}
	return "healthy"
}

// handleHealth is GET /healthz: liveness plus durability state. It
// always answers 200 while the process can serve at all — degraded
// read-only mode is a state to report, not a reason to be restarted —
// so orchestrators must key restarts on liveness and traffic on /readyz.
// Transient states still attach Retry-After so pollers that only watch
// this endpoint know when the state is worth re-reading.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ok": true, "state": "healthy"}
	retryAfter := 0
	if st := s.durabilityState(); st != "" {
		resp["state"] = st
		if st == "degraded" {
			resp["degraded"] = true
			resp["cause"] = s.durable.DegradeCause()
			retryAfter = retryAfterDegraded
		}
	}
	if rep := s.replica; rep != nil && !rep.Promoted() {
		resp["state"] = "replica"
		resp["primary"] = rep.Primary()
		resp["applied_lsn"] = rep.AppliedLSN()
		resp["lag"] = rep.Lag()
		if ready, reason := rep.Ready(); !ready {
			resp["lagging"] = true
			resp["reason"] = reason
			retryAfter = retryAfterLagging
		}
	}
	writeProbe(w, http.StatusOK, retryAfter, resp)
}

// handleReady is GET /readyz. The Server only exists after recovery
// (OpenDB is synchronous), so the bootstrap 503 ("recovering", answered
// by cmd/boolqd before the swap) never reaches this handler. A live
// server is unready while draining (BeginDrain has run; the listener is
// about to close), while degraded (mutations would 503, so load
// balancers can drain writes while reads continue), and on a replica
// that has not caught up — not bootstrapped, out of contact with the
// primary, or lagging past the staleness bound. Every 503 carries
// Retry-After.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ready": true, "durable": s.durable != nil}
	if s.draining.Load() {
		resp["ready"] = false
		resp["state"] = "draining"
		writeProbe(w, http.StatusServiceUnavailable, retryAfterDegraded, resp)
		return
	}
	if rep := s.replica; rep != nil {
		resp["replica"] = !rep.Promoted()
		resp["primary"] = rep.Primary()
		resp["applied_lsn"] = rep.AppliedLSN()
		resp["durable_lsn"] = rep.DurableLSN()
		resp["lag"] = rep.Lag()
		if ready, reason := rep.Ready(); !ready {
			resp["ready"] = false
			resp["state"] = "catching-up"
			resp["reason"] = reason
			writeProbe(w, http.StatusServiceUnavailable, retryAfterLagging, resp)
			return
		}
		resp["state"] = "ok"
		writeProbe(w, http.StatusOK, 0, resp)
		return
	}
	if s.durable != nil {
		st := s.durable.Stats()
		resp["replayed"] = st.Replayed
		resp["recovery_ms"] = st.RecoveryMS
		resp["applied_lsn"] = st.AppliedLSN
		if st.Degraded {
			resp["ready"] = false
			resp["state"] = "degraded"
			resp["cause"] = st.DegradeCause
			writeProbe(w, http.StatusServiceUnavailable, retryAfterDegraded, resp)
			return
		}
		resp["state"] = "healthy"
	}
	writeProbe(w, http.StatusOK, 0, resp)
}

// handleCheckpoint is POST /checkpoint: write a snapshot of the current
// state and truncate the WAL segments it covers.
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.durable == nil {
		writeError(w, http.StatusConflict, "not running in durable mode (start boolqd with -data-dir)")
		return
	}
	lsn, err := s.durable.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": true, "lsn": lsn})
}
