# Developer entry points; CI runs the same commands.

.PHONY: build test race bench vet

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# bench runs the tracked benchmark harness with -benchmem and refreshes
# BENCH_PR6.json (see scripts/bench.sh for the BENCH/BENCHTIME/COUNT/OUT
# knobs and docs/API.md + DESIGN.md §5 for what the numbers mean).
bench:
	./scripts/bench.sh
