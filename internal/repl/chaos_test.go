// Two-node chaos matrix: a real primary (wal.DB + server over httptest)
// and a tailing Replica joined by a FaultTransport, driven through the
// fault schedules ISSUE 10 pins — disconnects, torn streams, corrupted
// records, partitions across checkpoint truncation, primary crash plus
// promotion, and staleness-gated readiness. Every scenario asserts exact
// state equality through the public store API, and the convergence
// scenario runs across all five index backends.
package repl_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/repl"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

var (
	testUniverse = bbox.Rect(0, 0, 1000, 1000)
	allKinds     = []spatialdb.IndexKind{
		spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
		spatialdb.Grid, spatialdb.ZOrderIdx,
	}
)

// fastRetry keeps reconnect latency far below the wait deadlines.
var fastRetry = retry.Policy{Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond, Jitter: 0.5}

// scriptOp applies the i-th operation of the deterministic mutation
// script (the same shape internal/wal's recovery tests pin): every op
// succeeds and logs exactly one WAL record, so applying the first n ops
// to a fresh store reproduces the state records 1..n replicate to.
func scriptOp(i int, s *spatialdb.Store) error {
	x := float64((i * 37) % 900)
	y := float64((i * 53) % 900)
	box := bbox.Rect(x, y, x+5, y+5)
	switch i % 6 {
	case 0:
		_, _, err := s.CreateLayer(fmt.Sprintf("layer-%d", i))
		return err
	case 1:
		_, err := s.Insert("towns", fmt.Sprintf("t%d", i), region.FromBox(box))
		return err
	case 2:
		_, _, err := s.Upsert("towns", fmt.Sprintf("u%d", i%4),
			region.FromBoxes(2, box, bbox.Rect(x, y+20, x+5, y+25)))
		return err
	case 3:
		_, err := s.Insert("roads", "", region.FromBox(box))
		return err
	case 4:
		_, err := s.BulkInsert("roads", []spatialdb.BulkItem{
			{Name: fmt.Sprintf("r%d-a", i), Reg: region.FromBox(box)},
			{Name: fmt.Sprintf("r%d-b", i), Reg: region.FromBox(bbox.Rect(x, y+40, x+5, y+45))},
		}, spatialdb.BulkAtomic)
		return err
	default: // i%6 == 5: remove the insert from step i-4 (i-4 ≡ 1 mod 6)
		ok, err := s.Remove("towns", fmt.Sprintf("t%d", i-4))
		if err == nil && !ok {
			return fmt.Errorf("op %d: remove target t%d missing", i, i-4)
		}
		return err
	}
}

func runScript(t *testing.T, s *spatialdb.Store, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := scriptOp(i, s); err != nil {
			t.Fatalf("script op %d: %v", i, err)
		}
	}
}

// scriptState is the expected store after the first n script ops.
func scriptState(t *testing.T, kind spatialdb.IndexKind, n int) *spatialdb.Store {
	t.Helper()
	s := spatialdb.NewStore(testUniverse, kind)
	runScript(t, s, 0, n)
	return s
}

// assertStoresEqual compares two stores through the public API: layer
// order, per-layer objects in insertion order (id, name, region), and
// the id counter.
func assertStoresEqual(t *testing.T, got, want *spatialdb.Store, label string) {
	t.Helper()
	if !got.Universe().Equal(want.Universe()) {
		t.Fatalf("%s: universe %v, want %v", label, got.Universe(), want.Universe())
	}
	gn, wn := got.LayerNames(), want.LayerNames()
	if len(gn) != len(wn) {
		t.Fatalf("%s: layers %v, want %v", label, gn, wn)
	}
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("%s: layers %v, want %v", label, gn, wn)
		}
	}
	for _, name := range wn {
		gobjs, wobjs := got.Layer(name).Objects(), want.Layer(name).Objects()
		if len(gobjs) != len(wobjs) {
			t.Fatalf("%s: layer %q: %d objects, want %d", label, name, len(gobjs), len(wobjs))
		}
		for i := range wobjs {
			g, w := gobjs[i], wobjs[i]
			if g.ID != w.ID || g.Name != w.Name || !g.Reg.Equal(w.Reg) {
				t.Fatalf("%s: layer %q object %d: (%d,%q), want (%d,%q)",
					label, name, i, g.ID, g.Name, w.ID, w.Name)
			}
		}
	}
	if got.NextID() != want.NextID() {
		t.Fatalf("%s: NextID %d, want %d", label, got.NextID(), want.NextID())
	}
}

// primaryNode is one in-process primary: a durable store behind a real
// HTTP listener serving the /repl endpoints.
type primaryNode struct {
	db  *wal.DB
	srv *server.Server
	ts  *httptest.Server
}

// newPrimary starts a durable primary. Checkpoints are disabled; tests
// that exercise truncation call Checkpoint themselves.
func newPrimary(t *testing.T, kind spatialdb.IndexKind, keepSnapshots int) *primaryNode {
	t.Helper()
	db, err := wal.OpenDB(t.TempDir(), wal.DBOptions{
		Kind:     kind,
		Universe: testUniverse,
		Log:      wal.Options{Policy: wal.SyncAlways, SegmentBytes: 512},
		// Tests drive Checkpoint directly for deterministic truncation.
		CheckpointInterval: -1, CheckpointBytes: -1,
		KeepSnapshots: keepSnapshots,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db.Store(), server.Options{Durable: db})
	ts := httptest.NewServer(srv.Handler())
	p := &primaryNode{db: db, srv: srv, ts: ts}
	t.Cleanup(func() {
		p.ts.Close()
		p.db.Close()
	})
	return p
}

// newReplica builds (but does not start) a replica of p. Every replica
// goes through a FaultTransport; tests arm faults on the returned
// transport before or after Start.
func newReplica(t *testing.T, p *primaryNode, kind spatialdb.IndexKind, maxStaleness uint64) (*repl.Replica, *repl.FaultTransport) {
	t.Helper()
	ft := repl.NewFaultTransport(&repl.HTTPTransport{Base: p.ts.URL})
	rep, err := repl.New(repl.Options{
		Primary:      p.ts.URL,
		Transport:    ft,
		Kind:         kind,
		Universe:     testUniverse,
		MaxStaleness: maxStaleness,
		Retry:        fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	return rep, ft
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitCaughtUp waits until the replica has applied everything the
// primary durably acknowledged.
func waitCaughtUp(t *testing.T, rep *repl.Replica, p *primaryNode) {
	t.Helper()
	want := p.db.DurableLSN()
	waitFor(t, 10*time.Second, fmt.Sprintf("replica to reach LSN %d", want), func() bool {
		return rep.AppliedLSN() >= want
	})
}

// TestChaosReplicationConvergesAllKinds runs the full fault schedule —
// a corrupted record (caught by the replica's CRC check), a mid-stream
// disconnect, and a torn stream — against every index backend, with
// writes continuing while the replica tails, and asserts exact state
// equality at the end.
func TestChaosReplicationConvergesAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			p := newPrimary(t, kind, 2)
			runScript(t, p.db.Store(), 0, 12)

			rep, ft := newReplica(t, p, kind, 0)
			ft.Add(repl.Fault{Op: repl.OpNext, After: 2, Count: 1, Corrupt: true}).
				Add(repl.Fault{Op: repl.OpNext, After: 6, Count: 1}).
				Add(repl.Fault{Op: repl.OpNext, After: 9, Count: 1, Cut: true})
			rep.Start()

			// Keep writing while the replica fights through the schedule.
			runScript(t, p.db.Store(), 12, 24)
			waitCaughtUp(t, rep, p)

			assertStoresEqual(t, rep.Store(), scriptState(t, kind, 24), kind.String())
			st := rep.Stats()
			if st.CRCErrors == 0 {
				t.Errorf("corrupt fault never tripped the CRC check: %+v", st)
			}
			if st.StreamErrors < 3 {
				t.Errorf("stream_errors = %d, want ≥ 3 (corrupt + disconnect + cut)", st.StreamErrors)
			}
			if fs := ft.FaultStats(); fs.Injected != 3 {
				t.Errorf("injected = %d, want 3", fs.Injected)
			}
			if !rep.Store().IsReplica() {
				t.Error("replica store lost its replica gate")
			}
		})
	}
}

// TestChaosReplicaKillRestartMidStream stops the replica mid-catch-up,
// keeps writing on the primary, then restarts it: the fetch loop resumes
// from the applied LSN and reconverges without a new snapshot.
func TestChaosReplicaKillRestartMidStream(t *testing.T) {
	p := newPrimary(t, spatialdb.RTree, 2)
	runScript(t, p.db.Store(), 0, 10)

	rep, _ := newReplica(t, p, spatialdb.RTree, 0)
	rep.Start()
	waitFor(t, 10*time.Second, "first records to apply", func() bool {
		return rep.AppliedLSN() >= 5
	})
	rep.Stop() // kill mid-stream

	runScript(t, p.db.Store(), 10, 30) // primary moves on while the replica is down
	applied := rep.AppliedLSN()
	snapshotsBefore := rep.Stats().Snapshots

	rep.Start()
	waitCaughtUp(t, rep, p)
	assertStoresEqual(t, rep.Store(), scriptState(t, spatialdb.RTree, 30), "after restart")
	if rep.AppliedLSN() < applied {
		t.Fatalf("applied LSN went backwards: %d < %d", rep.AppliedLSN(), applied)
	}
	if got := rep.Stats().Snapshots; got != snapshotsBefore {
		t.Fatalf("restart fetched %d new snapshots; resume should tail from the cursor", got-snapshotsBefore)
	}
}

// TestChaosPartitionAcrossTruncationResnapshots partitions the replica,
// lets the primary checkpoint and truncate the WAL past the replica's
// cursor, then heals the link: OpenWAL comes back 410 Gone and the
// replica must re-bootstrap from the snapshot to reconverge.
func TestChaosPartitionAcrossTruncationResnapshots(t *testing.T) {
	p := newPrimary(t, spatialdb.Grid, 1)
	runScript(t, p.db.Store(), 0, 10)

	rep, ft := newReplica(t, p, spatialdb.Grid, 0)
	rep.Start()
	waitCaughtUp(t, rep, p)

	// Partition: the live stream tears, and every reconnect fails.
	ft.Add(repl.Fault{Op: repl.OpNext, Cut: true}).
		Add(repl.Fault{Op: repl.OpOpen, Err: fmt.Errorf("injected partition")}).
		Add(repl.Fault{Op: repl.OpSnapshot, Err: fmt.Errorf("injected partition")})

	// While partitioned the primary moves on and checkpoints: records
	// 1..30 are truncated, putting the replica's cursor (10) behind
	// retention.
	runScript(t, p.db.Store(), 10, 30)
	if _, err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runScript(t, p.db.Store(), 30, 36)

	ft.Clear() // heal
	waitCaughtUp(t, rep, p)
	assertStoresEqual(t, rep.Store(), scriptState(t, spatialdb.Grid, 36), "after re-snapshot")
	if st := rep.Stats(); st.Snapshots < 1 {
		t.Fatalf("replica never re-bootstrapped from a snapshot: %+v", st)
	}
}

// TestChaosPrimaryCrashPromote kills the primary outright after the
// replica caught up, promotes the replica through its own HTTP surface,
// and verifies every write the primary acknowledged at durable_lsn is
// visible on the promoted node — which then accepts new writes.
func TestChaosPrimaryCrashPromote(t *testing.T) {
	p := newPrimary(t, spatialdb.ZOrderIdx, 2)
	runScript(t, p.db.Store(), 0, 17)
	acked := p.db.DurableLSN()

	rep, _ := newReplica(t, p, spatialdb.ZOrderIdx, 0)
	repSrv := server.New(rep.Store(), server.Options{Replica: rep})
	rep.Start()
	waitCaughtUp(t, rep, p)

	// Writes on the replica are refused with 503 + the primary's address.
	body := `{"boxes":[{"lo":[1,1],"hi":[2,2]}]}`
	w := httptest.NewRecorder()
	repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodPut, "/layers/towns/objects/local",
		strings.NewReader(body)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("replica write: %d, want 503 (%s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Boolq-Primary"); got != p.ts.URL {
		t.Fatalf("X-Boolq-Primary = %q, want %q", got, p.ts.URL)
	}

	// Primary crash: no drain, no goodbye.
	p.ts.CloseClientConnections()
	p.ts.Close()
	p.db.Close()

	// Promotion over the replica's own HTTP surface.
	w = httptest.NewRecorder()
	repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/repl/promote", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", w.Code, w.Body.String())
	}
	if !rep.Promoted() {
		t.Fatal("replica not promoted after POST /repl/promote")
	}
	if rep.AppliedLSN() != acked {
		t.Fatalf("promoted at LSN %d, want the primary's durable %d", rep.AppliedLSN(), acked)
	}

	// Every acknowledged write is visible; the node now takes writes.
	assertStoresEqual(t, rep.Store(), scriptState(t, spatialdb.ZOrderIdx, 17), "promoted node")
	w = httptest.NewRecorder()
	repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("promoted /readyz: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodPut, "/layers/towns/objects/after-promote",
		strings.NewReader(body)))
	if w.Code != http.StatusCreated {
		t.Fatalf("post-promotion write: %d %s", w.Code, w.Body.String())
	}
}

// TestChaosPromoteRefusesLaggingReplica pins the failover safety rule:
// a replica that has not applied everything the primary durably
// acknowledged refuses promotion and keeps replicating.
func TestChaosPromoteRefusesLaggingReplica(t *testing.T) {
	p := newPrimary(t, spatialdb.RTree, 2)
	runScript(t, p.db.Store(), 0, 12)

	// Slow every record down so the replica is mid-catch-up for a while.
	rep, ft := newReplica(t, p, spatialdb.RTree, 0)
	ft.Add(repl.Fault{Op: repl.OpNext, Delay: 20 * time.Millisecond})
	rep.Start()

	// Wait until it knows the stream end but is still well short of it
	// (≥ 3 records ≈ 60ms of margin before it could catch up).
	waitFor(t, 10*time.Second, "replica to be mid-catch-up", func() bool {
		return rep.DurableLSN() > 0 && rep.AppliedLSN()+3 <= rep.DurableLSN()
	})
	if _, err := rep.Promote(); err == nil {
		t.Fatal("promotion of a lagging replica succeeded; want refusal")
	}
	if rep.Promoted() {
		t.Fatal("replica marked promoted after refused promotion")
	}
	// Replication must have survived the refusal.
	ft.Clear()
	waitCaughtUp(t, rep, p)
	if _, err := rep.Promote(); err != nil {
		t.Fatalf("promotion after catch-up: %v", err)
	}
}

// TestChaosStalenessGatesReadyz pins the bounded-staleness contract: a
// replica outside -max-staleness answers 503 on /readyz (with
// Retry-After), flipping to 200 once it catches back up.
func TestChaosStalenessGatesReadyz(t *testing.T) {
	p := newPrimary(t, spatialdb.Scan, 2)
	runScript(t, p.db.Store(), 0, 24)

	// Trickle records: 24 pending, 10ms each, staleness bound 2.
	rep, ft := newReplica(t, p, spatialdb.Scan, 2)
	ft.Add(repl.Fault{Op: repl.OpNext, Delay: 10 * time.Millisecond, Count: 20})
	repSrv := server.New(rep.Store(), server.Options{Replica: rep, RejectStaleReads: true})
	rep.Start()

	readyz := func() (*httptest.ResponseRecorder, int) {
		w := httptest.NewRecorder()
		repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return w, w.Code
	}
	var lagging *httptest.ResponseRecorder
	waitFor(t, 10*time.Second, "readyz to report lagging", func() bool {
		w, code := readyz()
		if code == http.StatusServiceUnavailable {
			lagging = w
			return true
		}
		return false
	})
	if ra := lagging.Header().Get("Retry-After"); ra == "" {
		t.Fatal("lagging /readyz carries no Retry-After")
	}
	// The stale-read gate rejects queries with the same shape.
	w := httptest.NewRecorder()
	repSrv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"query":"find T in towns"}`)))
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("stale read: %d (Retry-After %q), want 503 with Retry-After",
			w.Code, w.Header().Get("Retry-After"))
	}

	waitCaughtUp(t, rep, p)
	waitFor(t, 10*time.Second, "readyz to recover", func() bool {
		_, code := readyz()
		return code == http.StatusOK
	})
}

// TestChaosPrimaryDrainSealsStream starts a graceful drain on the
// primary and verifies the replica's stream ends cleanly (an end record,
// not an error) while the primary's /readyz flips to 503.
func TestChaosPrimaryDrainSealsStream(t *testing.T) {
	p := newPrimary(t, spatialdb.PointRTree, 2)
	runScript(t, p.db.Store(), 0, 8)

	rep, _ := newReplica(t, p, spatialdb.PointRTree, 0)
	rep.Start()
	waitCaughtUp(t, rep, p)
	opensBefore := rep.Stats().StreamOpens

	p.srv.BeginDrain()
	w := httptest.NewRecorder()
	p.srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("draining /readyz carries no Retry-After")
	}
	// The sealed stream ends cleanly; the replica reconnects (the drained
	// primary keeps answering until the listener closes, so opens climb)
	// without counting stream errors.
	errsBefore := rep.Stats().StreamErrors
	waitFor(t, 10*time.Second, "replica to cycle after drain", func() bool {
		return rep.Stats().StreamOpens > opensBefore
	})
	if got := rep.Stats().StreamErrors; got != errsBefore {
		t.Fatalf("drain produced %d stream errors; want a clean end record", got-errsBefore)
	}
	assertStoresEqual(t, rep.Store(), scriptState(t, spatialdb.PointRTree, 8), "after drain")
}
