// Fixture for errflow: handlers must stop after writing an error
// response, and response-write errors must be looked at (or discarded
// explicitly).
package e

import (
	"encoding/json"
	"net/http"
)

//boolq:errwriter
func writeError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method")
		return
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]int{"ok": 1}); err != nil {
		return
	}
}

// badContinue falls out of the error branch and appends a success body
// to an error status.
func badContinue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method") // want `statements follow this error response`
	}
	_, _ = w.Write([]byte("ok"))
}

func badHTTPError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad", http.StatusBadRequest) // want `statements follow this error response`
	_, _ = w.Write([]byte("ok"))
}

func badDrop(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w)
	enc.Encode(map[string]int{"ok": 1}) // want `Encode error discarded`
}

// goodExplicitDiscard is the near miss: an explicit blank assignment is
// a documented decision, not an oversight.
func goodExplicitDiscard(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]int{"ok": 1})
}

// goodTrailing writes the error as the handler's last action: nothing
// can follow.
func goodTrailing(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusInternalServerError, "late")
}

// The fail-closure idiom from the streaming handler: calling the
// closure is writing an error response.
func badClosure(w http.ResponseWriter, r *http.Request) {
	fail := func(code int, msg string) { writeError(w, code, msg) }
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "method") // want `statements follow this error response`
	}
	_, _ = w.Write([]byte("ok"))
}

func goodClosure(w http.ResponseWriter, r *http.Request) {
	fail := func(code int, msg string) { writeError(w, code, msg) }
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "method")
		return
	}
	_, _ = w.Write([]byte("ok"))
}
