package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

const smugglerText = `
find T in towns, R in roads, B in states
given C, A
where A <= C; B <= C; R <= A | B | T;
      R & A != 0; R & T != 0; T !<= C
`

// newTestServer serves the generated §2 map.
func newTestServer(t *testing.T) (*Server, *workload.Map) {
	t.Helper()
	m := workload.GenMap(workload.MapConfig{Seed: 1991})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	return New(store, Options{}), m
}

// do runs one request through the handler and decodes the JSON reply.
func do(t *testing.T, s *Server, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil && w.Code/100 == 2 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func smugglerRequest(m *workload.Map) queryRequest {
	return queryRequest{
		Query: smugglerText,
		Params: map[string]jsonRegion{
			"C": toJSONRegion(m.Country),
			"A": toJSONRegion(m.Area),
		},
	}
}

func solutionKeys(sols []solutionJSON) []string {
	keys := make([]string, len(sols))
	for i, s := range sols {
		keys[i] = strings.Join(s.Names, "/")
	}
	sort.Strings(keys)
	return keys
}

func TestLayerCRUDRoundTrip(t *testing.T) {
	s, _ := newTestServer(t)
	obj := jsonRegion{Boxes: []jsonBox{
		{Lo: []float64{10, 10}, Hi: []float64{20, 20}},
		{Lo: []float64{20, 10}, Hi: []float64{30, 15}},
	}}

	if w := do(t, s, http.MethodPut, "/layers/harbors/objects/h1", obj, nil); w.Code != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", w.Code, w.Body.String())
	}
	var got objectResponse
	if w := do(t, s, http.MethodGet, "/layers/harbors/objects/h1", nil, &got); w.Code != http.StatusOK {
		t.Fatalf("GET: status %d: %s", w.Code, w.Body.String())
	}
	if got.Name != "h1" || got.Layer != "harbors" {
		t.Errorf("GET returned %+v", got)
	}
	// The stored region is the normalized union of the uploaded boxes;
	// its bounding box must cover both.
	if got.Box.Lo[0] != 10 || got.Box.Hi[0] != 30 || got.Box.Hi[1] != 20 {
		t.Errorf("bounding box %+v", got.Box)
	}
	if len(got.Boxes) == 0 {
		t.Error("GET returned no boxes")
	}

	// Upsert replaces: the new region should be returned afterwards.
	obj2 := jsonRegion{Boxes: []jsonBox{{Lo: []float64{50, 50}, Hi: []float64{60, 60}}}}
	if w := do(t, s, http.MethodPut, "/layers/harbors/objects/h1", obj2, nil); w.Code != http.StatusOK {
		t.Fatalf("re-PUT: status %d: %s", w.Code, w.Body.String())
	}
	if do(t, s, http.MethodGet, "/layers/harbors/objects/h1", nil, &got); got.Box.Lo[0] != 50 {
		t.Errorf("upsert did not replace: %+v", got.Box)
	}

	var listing struct {
		Layers []layerInfo `json:"layers"`
	}
	do(t, s, http.MethodGet, "/layers", nil, &listing)
	found := false
	for _, li := range listing.Layers {
		if li.Name == "harbors" && li.Objects == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("layer listing missing harbors: %+v", listing.Layers)
	}

	if w := do(t, s, http.MethodDelete, "/layers/harbors/objects/h1", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, http.MethodGet, "/layers/harbors/objects/h1", nil, nil); w.Code != http.StatusNotFound {
		t.Errorf("GET after DELETE: status %d", w.Code)
	}
	if w := do(t, s, http.MethodDelete, "/layers/harbors/objects/h1", nil, nil); w.Code != http.StatusNotFound {
		t.Errorf("double DELETE: status %d", w.Code)
	}
}

func TestFailedUpsertKeepsOldObject(t *testing.T) {
	s, _ := newTestServer(t)
	obj := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	do(t, s, http.MethodPut, "/layers/harbors/objects/h1", obj, nil)
	// An empty region (and a degenerate zero-volume one) must be rejected
	// without touching the stored object.
	for _, bad := range []jsonRegion{
		{Boxes: []jsonBox{}},
		{Boxes: []jsonBox{{Lo: []float64{5, 5}, Hi: []float64{5, 9}}}},
		// Outside the universe: rejected uniformly, whatever the backend.
		{Boxes: []jsonBox{{Lo: []float64{900, 900}, Hi: []float64{2000, 2000}}}},
	} {
		if w := do(t, s, http.MethodPut, "/layers/harbors/objects/h1", bad, nil); w.Code != http.StatusBadRequest {
			t.Fatalf("bad upsert: status %d: %s", w.Code, w.Body.String())
		}
		var got objectResponse
		if w := do(t, s, http.MethodGet, "/layers/harbors/objects/h1", nil, &got); w.Code != http.StatusOK {
			t.Fatalf("failed upsert destroyed the object: %d", w.Code)
		}
		if got.Box.Lo[0] != 10 {
			t.Errorf("object mutated by failed upsert: %+v", got.Box)
		}
	}
}

func TestSmugglerQueryOverHTTP(t *testing.T) {
	s, m := newTestServer(t)

	// Reference answer straight from the library.
	q := query.Smuggler()
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}
	want, err := query.CompileAndRun(q, s.Store(), params)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := make([]string, 0, len(want.Solutions))
	for _, sol := range want.Solutions {
		wantKeys = append(wantKeys, strings.Join(sol.Names(), "/"))
	}
	sort.Strings(wantKeys)
	if len(wantKeys) == 0 {
		t.Fatal("reference run found no solutions; broken fixture")
	}

	var resp queryResponse
	if w := do(t, s, http.MethodPost, "/query", smugglerRequest(m), &resp); w.Code != http.StatusOK {
		t.Fatalf("POST /query: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Cached {
		t.Error("first query claims a cache hit")
	}
	gotKeys := solutionKeys(resp.Solutions)
	if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
		t.Errorf("HTTP solutions %v, library %v", gotKeys, wantKeys)
	}
	if resp.Stats.Solutions != len(wantKeys) {
		t.Errorf("stats.Solutions = %d, want %d", resp.Stats.Solutions, len(wantKeys))
	}

	// The naive baseline over HTTP agrees too.
	naiveReq := smugglerRequest(m)
	naiveReq.Naive = true
	var naive queryResponse
	do(t, s, http.MethodPost, "/query", naiveReq, &naive)
	if fmt.Sprint(solutionKeys(naive.Solutions)) != fmt.Sprint(wantKeys) {
		t.Errorf("naive solutions %v, want %v", solutionKeys(naive.Solutions), wantKeys)
	}
}

func TestPlanCacheHitAndEpochInvalidation(t *testing.T) {
	s, m := newTestServer(t)
	req := smugglerRequest(m)

	var first, second, third queryResponse
	do(t, s, http.MethodPost, "/query", req, &first)
	if first.Cached {
		t.Error("first query: cached = true")
	}
	do(t, s, http.MethodPost, "/query", req, &second)
	if !second.Cached {
		t.Error("second identical query missed the plan cache")
	}
	if fmt.Sprint(solutionKeys(second.Solutions)) != fmt.Sprint(solutionKeys(first.Solutions)) {
		t.Error("cached run returned different solutions")
	}

	// Whitespace/comment variations normalize to the same cache key.
	variant := req
	variant.Query = "find T in towns,R in roads,B in states given C,A where A<=C;B<=C;R<=A|B|T;R&A!=0;R&T!=0;T!<=C # v"
	var varResp queryResponse
	do(t, s, http.MethodPost, "/query", variant, &varResp)
	if !varResp.Cached {
		t.Error("normalized variant missed the plan cache")
	}

	var st statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &st)
	if st.Cache.Hits < 2 {
		t.Errorf("stats: cache hits = %d, want ≥ 2", st.Cache.Hits)
	}

	// A mutation bumps the epoch; the cached plan must not be served.
	epochBefore := st.Epoch
	town := jsonRegion{Boxes: []jsonBox{{Lo: []float64{95, 495}, Hi: []float64{105, 505}}}}
	do(t, s, http.MethodPut, "/layers/towns/objects/epoch-town", town, nil)
	do(t, s, http.MethodPost, "/query", req, &third)
	if third.Cached {
		t.Error("query after insert still served from cache")
	}
	if third.Epoch <= epochBefore {
		t.Errorf("epoch did not advance: %d -> %d", epochBefore, third.Epoch)
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	s, m := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/snapshot", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /snapshot: %d", w.Code)
	}

	// A second, empty server restores the snapshot and answers the same.
	s2 := New(spatialdb.NewStore(m.Config.Universe, spatialdb.Grid), Options{})
	load := httptest.NewRequest(http.MethodPost, "/snapshot", bytes.NewReader(w.Body.Bytes()))
	lw := httptest.NewRecorder()
	s2.ServeHTTP(lw, load)
	if lw.Code != http.StatusOK {
		t.Fatalf("POST /snapshot: %d: %s", lw.Code, lw.Body.String())
	}
	var a, b queryResponse
	do(t, s, http.MethodPost, "/query", smugglerRequest(m), &a)
	do(t, s2, http.MethodPost, "/query", smugglerRequest(m), &b)
	if fmt.Sprint(solutionKeys(a.Solutions)) != fmt.Sprint(solutionKeys(b.Solutions)) {
		t.Errorf("restored server answers differ: %v vs %v",
			solutionKeys(a.Solutions), solutionKeys(b.Solutions))
	}
}

func TestQueryErrors(t *testing.T) {
	s, m := newTestServer(t)
	cases := []struct {
		name string
		req  queryRequest
	}{
		{"lex error", queryRequest{Query: "find T in towns where T $ C"}},
		{"parse error", queryRequest{Query: "find T where"}},
		{"unknown layer", queryRequest{Query: "find T in nowhere given C where T <= C"}},
		{"unbound parameter", smugglerRequestWithoutParams(m)},
		{"bad box dims", queryRequest{
			Query:  smugglerText,
			Params: map[string]jsonRegion{"C": {Boxes: []jsonBox{{Lo: []float64{1}, Hi: []float64{2}}}}},
		}},
	}
	for _, tc := range cases {
		if w := do(t, s, http.MethodPost, "/query", tc.req, nil); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
	var st statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &st)
	if st.Queries.Errors != int64(len(cases)) {
		t.Errorf("error counter = %d, want %d", st.Queries.Errors, len(cases))
	}
}

func smugglerRequestWithoutParams(m *workload.Map) queryRequest {
	req := smugglerRequest(m)
	req.Params = map[string]jsonRegion{"C": toJSONRegion(m.Country)}
	return req
}

func TestExpvarEndpoint(t *testing.T) {
	s, m := newTestServer(t)
	do(t, s, http.MethodPost, "/query", smugglerRequest(m), nil)
	var vars map[string]any
	if w := do(t, s, http.MethodGet, "/debug/vars", nil, &vars); w.Code != http.StatusOK {
		t.Fatalf("GET /debug/vars: %d", w.Code)
	}
	for _, key := range []string{"queries_total", "plan_cache_hits", "plan_cache_misses", "store_epoch", "plan_compiles"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("expvar missing %q: %v", key, vars)
		}
	}
	if vars["queries_total"].(float64) < 1 {
		t.Errorf("queries_total = %v", vars["queries_total"])
	}
}

func TestPlanCacheLRUAndStaleEviction(t *testing.T) {
	c := NewPlanCache(2)
	mkPlan := func() *query.Plan { return &query.Plan{} }
	pa, pb, pc := mkPlan(), mkPlan(), mkPlan()

	c.Put("a", 0, 1, pa)
	c.Put("b", 0, 1, pb)
	if got, ok := c.Get("a", 0, 1); !ok || got != pa {
		t.Fatal("miss on fresh entry a")
	}
	// Capacity 2: inserting c evicts the LRU entry, which is now b.
	c.Put("c", 0, 1, pc)
	if _, ok := c.Get("b", 0, 1); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.Get("a", 0, 1); !ok {
		t.Error("recently used a was evicted")
	}
	// Stale epoch: the entry is dropped, not served.
	if _, ok := c.Get("a", 0, 2); ok {
		t.Error("stale entry served")
	}
	if _, ok := c.Get("a", 0, 1); ok {
		t.Error("stale entry not evicted")
	}
	if c.Hits() != 2 || c.Misses() != 3 {
		t.Errorf("hits/misses = %d/%d, want 2/3", c.Hits(), c.Misses())
	}
	// Stale store generation: same epoch, older generation — a Put racing
	// a store swap must never be served against the successor store.
	c.Put("d", 0, 7, pa)
	if _, ok := c.Get("d", 1, 7); ok {
		t.Error("entry from an old store generation served")
	}
}
