// Primary-side replication endpoints. A durable boolqd (Options.Durable)
// serves two streams replicas consume — GET /repl/snapshot (the newest
// checkpoint, pinned against pruning while it streams) and GET /repl/wal
// (a long-poll NDJSON tail of the write-ahead log) — and one admin verb,
// POST /repl/promote, which is meaningful only on a replica. The wire
// protocol lives in internal/repl (WireRecord, HTTPTransport); DESIGN.md
// §10 describes the invariants.
package server

import (
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
)

// Stream tunables for GET /repl/wal.
const (
	// replBatchRecords caps how many records one ReadFrom pass delivers
	// before the handler flushes and re-checks for cancellation.
	replBatchRecords = 256
	// replHeartbeatInterval is how often an idle stream emits a heartbeat
	// so replicas can measure lag and liveness without traffic.
	replHeartbeatInterval = 500 * time.Millisecond
)

// handleReplSnapshot is GET /repl/snapshot: stream the newest checkpoint
// with its boundary LSN in the X-Boolq-Snapshot-Lsn header. The snapshot
// is pinned for the duration of the copy, so a concurrent checkpoint's
// prune pass defers deleting it (wal.DB.AcquireSnapshot); 404 means the
// primary has no checkpoint yet and the replica should tail from LSN 0.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.durable == nil {
		writeError(w, http.StatusConflict, "not a durable primary (start boolqd with -data-dir)")
		return
	}
	lsn, body, release, err := s.durable.AcquireSnapshot()
	if errors.Is(err, wal.ErrNoSnapshot) {
		writeError(w, http.StatusNotFound, "no checkpoint snapshot yet; tail the WAL from LSN 0")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening snapshot: %v", err)
		return
	}
	defer release()
	defer body.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(repl.SnapshotLSNHeader, strconv.FormatUint(lsn, 10))
	_, _ = io.Copy(w, body) // headers are out; a torn copy is the client's retry
}

// handleReplWAL is GET /repl/wal?from=N: a long-poll NDJSON stream of
// WAL records with LSN > from. Each line is a repl.WireRecord — data
// records carry the payload plus its crc32 so the replica verifies what
// it received, idle periods carry heartbeats with the primary's durable
// LSN, and a drain (BeginDrain) seals the stream with an end record.
// 410 Gone means from is behind the primary's retention and the replica
// must re-bootstrap from a snapshot. The notify-then-drain loop never
// misses an append: the wakeup channel is grabbed before the read pass,
// so a record landing between them re-arms the select immediately.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		writeError(w, http.StatusConflict, "not a durable primary (start boolqd with -data-dir)")
		return
	}
	cursor := uint64(0)
	if from := r.URL.Query().Get("from"); from != "" {
		v, err := strconv.ParseUint(from, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from parameter %q: %v", from, err)
			return
		}
		cursor = v
	}
	log := s.durable.Log()
	enc := json.NewEncoder(w) // no indent: one record per line
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	started := false
	fail := func(status int, err error) {
		if !started {
			if status == http.StatusGone {
				writeRetryError(w, status, retryAfterDegraded,
					"LSN %d has been truncated by a checkpoint; re-bootstrap from /repl/snapshot (%v)", cursor, err)
				return
			}
			writeError(w, status, "wal stream: %v", err)
			return
		}
		// Headers are out; the best we can do is an in-band error line.
		_ = enc.Encode(repl.WireRecord{Error: err.Error(), DurableLSN: s.durable.DurableLSN()})
		flush()
	}
	heartbeat := time.NewTicker(replHeartbeatInterval)
	defer heartbeat.Stop()
	for {
		// Grab the wakeup channel BEFORE draining: an append that lands
		// during the read pass closes this channel, so the idle select
		// below returns immediately instead of waiting a heartbeat.
		notify := log.AppendNotify()
		for {
			wrote := false
			n, err := log.ReadFrom(cursor, replBatchRecords, func(lsn uint64, payload []byte) error {
				if !started {
					w.Header().Set("Content-Type", "application/x-ndjson")
					started = true
				}
				rec := repl.WireRecord{
					LSN:        lsn,
					CRC:        crc32.ChecksumIEEE(payload),
					Data:       payload,
					DurableLSN: s.durable.DurableLSN(),
				}
				cursor = lsn
				wrote = true
				return enc.Encode(rec)
			})
			if err != nil {
				if errors.Is(err, wal.ErrTruncated) {
					fail(http.StatusGone, err)
				} else {
					fail(http.StatusInternalServerError, err)
				}
				return
			}
			if wrote {
				flush()
			}
			if r.Context().Err() != nil {
				return
			}
			if n < replBatchRecords {
				break // drained; go idle
			}
		}
		if !started {
			// Commit the stream before idling so the replica's OpenWAL
			// returns and liveness heartbeats flow even on an empty log.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			flush()
			started = true
		}
		select {
		case <-notify:
			// New records (or the log closed — the next ReadFrom surfaces
			// whichever it was).
		case <-heartbeat.C:
			if enc.Encode(repl.WireRecord{Heartbeat: true, DurableLSN: s.durable.DurableLSN()}) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-s.drainc:
			_ = enc.Encode(repl.WireRecord{End: true, DurableLSN: s.durable.DurableLSN()})
			flush()
			return
		}
	}
}

// rejectStaleRead 503s a read on a lagging replica when the operator
// opted into bounded-staleness reads (-reject-stale-reads): a replica
// outside its staleness bound serves no queries rather than stale ones.
// Reports whether the request was rejected.
//
//boolq:errwriter
func (s *Server) rejectStaleRead(w http.ResponseWriter) bool {
	rep := s.replica
	if rep == nil || !s.rejectStale || rep.Promoted() {
		return false
	}
	if ready, reason := rep.Ready(); !ready {
		writeRetryError(w, http.StatusServiceUnavailable, retryAfterLagging,
			"replica outside its staleness bound: %s", reason)
		return true
	}
	return false
}

// handleReplPromote is POST /repl/promote: stop replicating and re-arm
// this node as a writable primary. Refused (409) unless this server is a
// replica that has applied every record the primary durably acknowledged
// — promoting a lagging replica would silently drop the suffix.
func (s *Server) handleReplPromote(w http.ResponseWriter, _ *http.Request) {
	if s.replica == nil {
		writeError(w, http.StatusConflict, "not a replica (start boolqd with -replica-of)")
		return
	}
	lsn, err := s.replica.Promote()
	if err != nil {
		writeError(w, http.StatusConflict, "promote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "applied_lsn": lsn})
}
