package bbox

import (
	"testing"
)

func TestFuncConstructorsFold(t *testing.T) {
	x, y := VarFunc(0), VarFunc(1)
	cases := []struct {
		name string
		got  *Func
		want *Func
	}{
		{"meet-empty", MeetFunc(EmptyFunc(), x), EmptyFunc()},
		{"meet-univ", MeetFunc(UnivFunc(), x), x},
		{"meet-idem", MeetFunc(x, x), x},
		{"join-univ", JoinFunc(UnivFunc(), x), UnivFunc()},
		{"join-empty", JoinFunc(EmptyFunc(), x), x},
		{"join-idem", JoinFunc(x, x), x},
	}
	for _, c := range cases {
		if !c.got.Same(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	_ = y
}

func TestVarFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VarFunc(-1) should panic")
		}
	}()
	VarFunc(-1)
}

func TestFuncEval(t *testing.T) {
	env := []Box{Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)}
	f := MeetFunc(VarFunc(0), VarFunc(1))
	if got := f.Eval(2, env); !got.Equal(Rect(2, 2, 4, 4)) {
		t.Errorf("Eval meet = %v", got)
	}
	g := JoinFunc(VarFunc(0), ConstFunc(Rect(10, 10, 11, 11)))
	if got := g.Eval(2, env); !got.Equal(Rect(0, 0, 11, 11)) {
		t.Errorf("Eval join = %v", got)
	}
	if got := EmptyFunc().Eval(2, env); !got.IsEmpty() {
		t.Errorf("Eval empty = %v", got)
	}
	if got := UnivFunc().Eval(2, env); !got.Equal(Univ(2)) {
		t.Errorf("Eval univ = %v", got)
	}
}

func TestFuncEvalPanicsOnUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound var should panic")
		}
	}()
	VarFunc(5).Eval(2, []Box{Rect(0, 0, 1, 1)})
}

func TestFuncFreeVarsAndBind(t *testing.T) {
	f := JoinFunc(MeetFunc(VarFunc(0), VarFunc(2)), VarFunc(4))
	vars := f.FreeVars()
	if len(vars) != 3 || vars[0] != 0 || vars[1] != 2 || vars[2] != 4 {
		t.Errorf("FreeVars = %v", vars)
	}
	subs := make([]*Func, 5)
	subs[0] = ConstFunc(Rect(0, 0, 1, 1))
	g := f.Bind(subs)
	gv := g.FreeVars()
	if len(gv) != 2 || gv[0] != 2 || gv[1] != 4 {
		t.Errorf("Bind left FreeVars = %v", gv)
	}
}

// TestFuncFreeVarsBeyond64 guards the removed 64-variable cap: plans with
// larger variable indices must not silently drop free variables.
func TestFuncFreeVarsBeyond64(t *testing.T) {
	f := JoinFunc(MeetFunc(VarFunc(3), VarFunc(200)), VarFunc(64))
	vars := f.FreeVars()
	if len(vars) != 3 || vars[0] != 3 || vars[1] != 64 || vars[2] != 200 {
		t.Errorf("FreeVars = %v, want [3 64 200]", vars)
	}
}

func TestFuncString(t *testing.T) {
	f := JoinFunc(VarFunc(1), MeetFunc(VarFunc(0), VarFunc(2)))
	if got := f.String(); got != "[x1] v [x0] ^ [x2]" {
		t.Errorf("String = %q", got)
	}
	g := MeetFunc(JoinFunc(VarFunc(0), VarFunc(1)), VarFunc(2))
	if got := g.String(); got != "([x0] v [x1]) ^ [x2]" {
		t.Errorf("String = %q", got)
	}
	if EmptyFunc().String() != "∅" || UnivFunc().String() != "U" {
		t.Errorf("constant rendering wrong")
	}
}

func TestFuncSame(t *testing.T) {
	a := MeetFunc(VarFunc(0), VarFunc(1))
	b := MeetFunc(VarFunc(0), VarFunc(1))
	if !a.Same(b) {
		t.Errorf("structurally equal funcs differ")
	}
	if a.Same(MeetFunc(VarFunc(1), VarFunc(0))) {
		t.Errorf("Same should be structural, not semantic")
	}
	if a.Same(nil) {
		t.Errorf("Same(nil) should be false")
	}
	c1 := ConstFunc(Rect(0, 0, 1, 1))
	c2 := ConstFunc(Rect(0, 0, 1, 1))
	if !c1.Same(c2) {
		t.Errorf("equal consts differ")
	}
}
