package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot is the serialized form of a Layer, shared by the JSON
// snapshot (as a plain struct) and the binary snapshot (via
// MarshalBinary/UnmarshalBinary). Loaders install a recorded snapshot
// only when its geometry matches what the current build would produce
// (same spans, bucket counts and grid shape); otherwise the recomputed
// statistics win, which keeps snapshot files forward-compatible across
// parameter changes.
type Snapshot struct {
	K     int            `json:"k"`
	Count uint64         `json:"count"`
	Axes  []AxisSnapshot `json:"axes,omitempty"`
	Grid  *GridSnapshot  `json:"grid,omitempty"`
}

// AxisSnapshot mirrors Axis.
type AxisSnapshot struct {
	Lo    HistogramSnapshot `json:"lo"`
	Hi    HistogramSnapshot `json:"hi"`
	SumLo float64           `json:"sum_lo"`
	SumHi float64           `json:"sum_hi"`
}

// HistogramSnapshot mirrors Histogram.
type HistogramSnapshot struct {
	Lo     float64  `json:"lo"`
	Hi     float64  `json:"hi"`
	N      uint64   `json:"n"`
	Counts []uint64 `json:"counts"`
}

// GridSnapshot mirrors Grid.
type GridSnapshot struct {
	Axes   int       `json:"axes"`
	Side   int       `json:"side"`
	Lo     []float64 `json:"lo"`
	Width  []float64 `json:"width"`
	Counts []uint32  `json:"counts"`
}

// Snapshot returns the serializable form of s.
func (s *Layer) Snapshot() Snapshot {
	snap := Snapshot{K: s.k, Count: s.count, Axes: make([]AxisSnapshot, len(s.axes))}
	for a := range s.axes {
		snap.Axes[a] = AxisSnapshot{
			Lo:    histSnap(&s.axes[a].Lo),
			Hi:    histSnap(&s.axes[a].Hi),
			SumLo: s.axes[a].SumLo,
			SumHi: s.axes[a].SumHi,
		}
	}
	if s.grid.Axes > 0 {
		g := s.grid
		snap.Grid = &GridSnapshot{
			Axes:   g.Axes,
			Side:   g.Side,
			Lo:     append([]float64(nil), g.Lo...),
			Width:  append([]float64(nil), g.Width...),
			Counts: append([]uint32(nil), g.Counts...),
		}
	}
	return snap
}

func histSnap(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{Lo: h.Lo, Hi: h.Hi, N: h.N, Counts: append([]uint64(nil), h.Counts...)}
}

// Restore overwrites s with the recorded snapshot, if the snapshot's
// geometry is compatible with s (same dimensionality, histogram spans
// and bucket counts, and grid shape). It reports whether the install
// happened; on false, s is left unchanged.
func (s *Layer) Restore(snap Snapshot) bool {
	if snap.K != s.k || len(snap.Axes) != len(s.axes) {
		return false
	}
	for a := range s.axes {
		if !histCompatible(&s.axes[a].Lo, snap.Axes[a].Lo) || !histCompatible(&s.axes[a].Hi, snap.Axes[a].Hi) {
			return false
		}
	}
	if !gridCompatible(&s.grid, snap.Grid) {
		return false
	}
	s.count = snap.Count
	for a := range s.axes {
		histRestore(&s.axes[a].Lo, snap.Axes[a].Lo)
		histRestore(&s.axes[a].Hi, snap.Axes[a].Hi)
		s.axes[a].SumLo = snap.Axes[a].SumLo
		s.axes[a].SumHi = snap.Axes[a].SumHi
	}
	if snap.Grid != nil {
		copy(s.grid.Counts, snap.Grid.Counts)
	}
	return true
}

func histCompatible(h *Histogram, snap HistogramSnapshot) bool {
	return snap.Lo == h.Lo && snap.Hi == h.Hi && len(snap.Counts) == len(h.Counts)
}

func histRestore(h *Histogram, snap HistogramSnapshot) {
	h.N = snap.N
	copy(h.Counts, snap.Counts)
}

func gridCompatible(g *Grid, snap *GridSnapshot) bool {
	if snap == nil {
		return g.Axes == 0
	}
	if snap.Axes != g.Axes || snap.Side != g.Side || len(snap.Counts) != len(g.Counts) {
		return false
	}
	for i := range g.Lo {
		if snap.Lo[i] != g.Lo[i] || snap.Width[i] != g.Width[i] {
			return false
		}
	}
	return true
}

// Binary codec. Layout (all integers uvarint unless noted, floats as
// IEEE-754 bits in uvarint-framed little-endian u64):
//
//	k count nAxes { lo hi n nCounts counts... ×2  sumLo sumHi } ×nAxes
//	gridAxes [side {lo width}×axes nCounts counts...]
//
// The blob is self-delimiting; the enclosing snapshot frames it with a
// length prefix anyway.

// MarshalBinary encodes the snapshot.
func (snap Snapshot) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(snap.K))
	buf = binary.AppendUvarint(buf, snap.Count)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Axes)))
	for _, ax := range snap.Axes {
		for _, h := range []HistogramSnapshot{ax.Lo, ax.Hi} {
			buf = appendF64(buf, h.Lo)
			buf = appendF64(buf, h.Hi)
			buf = binary.AppendUvarint(buf, h.N)
			buf = binary.AppendUvarint(buf, uint64(len(h.Counts)))
			for _, c := range h.Counts {
				buf = binary.AppendUvarint(buf, c)
			}
		}
		buf = appendF64(buf, ax.SumLo)
		buf = appendF64(buf, ax.SumHi)
	}
	if snap.Grid == nil {
		buf = binary.AppendUvarint(buf, 0)
		return buf, nil
	}
	g := snap.Grid
	buf = binary.AppendUvarint(buf, uint64(g.Axes))
	buf = binary.AppendUvarint(buf, uint64(g.Side))
	for i := 0; i < g.Axes; i++ {
		buf = appendF64(buf, g.Lo[i])
		buf = appendF64(buf, g.Width[i])
	}
	buf = binary.AppendUvarint(buf, uint64(len(g.Counts)))
	for _, c := range g.Counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf, nil
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary.
func (snap *Snapshot) UnmarshalBinary(data []byte) error {
	d := &bindec{buf: data}
	snap.K = int(d.uvarint())
	snap.Count = d.uvarint()
	nAxes := d.uvarint()
	if nAxes > 1<<16 {
		return fmt.Errorf("stats: implausible axis count %d", nAxes)
	}
	snap.Axes = make([]AxisSnapshot, nAxes)
	for a := range snap.Axes {
		for _, h := range []*HistogramSnapshot{&snap.Axes[a].Lo, &snap.Axes[a].Hi} {
			h.Lo = d.f64()
			h.Hi = d.f64()
			h.N = d.uvarint()
			n := d.uvarint()
			if n > 1<<20 {
				return fmt.Errorf("stats: implausible bucket count %d", n)
			}
			h.Counts = make([]uint64, n)
			for i := range h.Counts {
				h.Counts[i] = d.uvarint()
			}
		}
		snap.Axes[a].SumLo = d.f64()
		snap.Axes[a].SumHi = d.f64()
	}
	gridAxes := int(d.uvarint())
	if gridAxes == 0 {
		snap.Grid = nil
		return d.err
	}
	g := &GridSnapshot{Axes: gridAxes}
	g.Side = int(d.uvarint())
	if gridAxes > 8 || g.Side > 1<<12 {
		return fmt.Errorf("stats: implausible grid shape %d×%d", gridAxes, g.Side)
	}
	g.Lo = make([]float64, gridAxes)
	g.Width = make([]float64, gridAxes)
	for i := 0; i < gridAxes; i++ {
		g.Lo[i] = d.f64()
		g.Width[i] = d.f64()
	}
	n := d.uvarint()
	if n > 1<<24 {
		return fmt.Errorf("stats: implausible grid cell count %d", n)
	}
	g.Counts = make([]uint32, n)
	for i := range g.Counts {
		g.Counts[i] = uint32(d.uvarint())
	}
	snap.Grid = g
	return d.err
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

type bindec struct {
	buf []byte
	err error
}

func (d *bindec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("stats: truncated snapshot")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *bindec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("stats: truncated snapshot")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}
