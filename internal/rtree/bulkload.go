package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bbox"
)

// BulkLoad builds an R-tree from a static entry set with Sort-Tile-
// Recursive (STR) packing: entries are sorted by the first center
// coordinate, cut into vertical slabs of ~√(n/M) leaves each, each slab
// sorted by the next coordinate, and so on, producing fully packed leaves
// with low overlap. Upper levels are packed the same way over the leaf
// MBRs. Loading n entries is O(n log n) and yields markedly cheaper
// queries than one-at-a-time insertion (experiment E13); the tree remains
// fully dynamic afterwards.
func BulkLoad(k int, entries []Entry, opts ...Option) (*Tree, error) {
	t := New(k, opts...)
	for _, e := range entries {
		if e.Box.IsEmpty() {
			return nil, fmt.Errorf("rtree: cannot bulk-load an empty box")
		}
		if e.Box.K != k {
			return nil, fmt.Errorf("rtree: box dimension %d, tree dimension %d", e.Box.K, k)
		}
	}
	if len(entries) == 0 {
		return t, nil
	}
	// Build leaves.
	leafEntries := append([]Entry(nil), entries...)
	leaves := packLeaves(t, leafEntries)
	// Pack upward until a single root remains.
	level := leaves
	for len(level) > 1 {
		level = packNodes(t, level)
	}
	t.root = level[0]
	t.size = len(entries)
	return t, nil
}

// Entries returns every stored (box, id) entry in an unspecified order.
// The returned boxes are shared with the tree and must not be modified.
// Feeding the slice back into BulkLoad re-packs the tree's current
// contents with STR.
func (t *Tree) Entries() []Entry {
	out := make([]Entry, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// packLeaves tiles the entries into fully packed leaf nodes.
func packLeaves(t *Tree, entries []Entry) []*node {
	boxes := make([]bbox.Box, len(entries))
	for i, e := range entries {
		boxes[i] = e.Box
	}
	groups := strTile(boxes, t.max, t.k, 0)
	leaves := make([]*node, 0, len(groups))
	for _, g := range groups {
		n := &node{leaf: true}
		for _, i := range g {
			n.entries = append(n.entries, entries[i])
		}
		n.recomputeBox(t.k)
		leaves = append(leaves, n)
	}
	return leaves
}

// packNodes tiles child nodes into parent nodes.
func packNodes(t *Tree, children []*node) []*node {
	boxes := make([]bbox.Box, len(children))
	for i, c := range children {
		boxes[i] = c.box
	}
	groups := strTile(boxes, t.max, t.k, 0)
	parents := make([]*node, 0, len(groups))
	for _, g := range groups {
		n := &node{}
		for _, i := range g {
			n.children = append(n.children, children[i])
		}
		n.recomputeBox(t.k)
		parents = append(parents, n)
	}
	return parents
}

// strTile recursively partitions indices into groups of ≤ cap by sorting
// on successive center coordinates and slicing into slabs.
func strTile(boxes []bbox.Box, cap, k, dim int) [][]int {
	n := len(boxes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var rec func(ids []int, dim int) [][]int
	rec = func(ids []int, dim int) [][]int {
		if len(ids) <= cap {
			return [][]int{ids}
		}
		sort.Slice(ids, func(a, b int) bool {
			ca := boxes[ids[a]].Center()[dim]
			cb := boxes[ids[b]].Center()[dim]
			if ca != cb {
				return ca < cb
			}
			return ids[a] < ids[b]
		})
		numLeaves := int(math.Ceil(float64(len(ids)) / float64(cap)))
		if dim == k-1 {
			// Last dimension: slice straight into leaves.
			out := make([][]int, 0, numLeaves)
			for i := 0; i < len(ids); i += cap {
				end := i + cap
				if end > len(ids) {
					end = len(ids)
				}
				out = append(out, append([]int(nil), ids[i:end]...))
			}
			return out
		}
		// Slabs of ~√numLeaves leaves each.
		slabLeaves := int(math.Ceil(math.Sqrt(float64(numLeaves))))
		slabSize := slabLeaves * cap
		var out [][]int
		for i := 0; i < len(ids); i += slabSize {
			end := i + slabSize
			if end > len(ids) {
				end = len(ids)
			}
			out = append(out, rec(append([]int(nil), ids[i:end]...), dim+1)...)
		}
		return out
	}
	return rec(idx, dim)
}
