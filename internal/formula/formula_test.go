package formula

import (
	"strings"
	"testing"
)

func TestConstructorsFold(t *testing.T) {
	x, y := Var(0), Var(1)
	cases := []struct {
		name string
		got  *Formula
		want *Formula
	}{
		{"and-zero-l", And(Zero(), x), Zero()},
		{"and-zero-r", And(x, Zero()), Zero()},
		{"and-one-l", And(One(), x), x},
		{"and-one-r", And(x, One()), x},
		{"and-idem", And(x, x), x},
		{"and-compl", And(x, Not(x)), Zero()},
		{"and-compl-rev", And(Not(x), x), Zero()},
		{"or-one-l", Or(One(), x), One()},
		{"or-one-r", Or(x, One()), One()},
		{"or-zero-l", Or(Zero(), x), x},
		{"or-zero-r", Or(x, Zero()), x},
		{"or-idem", Or(x, x), x},
		{"or-compl", Or(x, Not(x)), One()},
		{"not-zero", Not(Zero()), One()},
		{"not-one", Not(One()), Zero()},
		{"not-not", Not(Not(And(x, y))), And(x, y)},
	}
	for _, c := range cases {
		if !c.got.Same(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestVarPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Var(-1) should panic")
		}
	}()
	Var(-1)
}

func TestSame(t *testing.T) {
	x, y := Var(0), Var(1)
	f := And(x, Or(y, Not(x)))
	g := And(Var(0), Or(Var(1), Not(Var(0))))
	if !f.Same(g) {
		t.Errorf("structurally equal formulas compare unequal")
	}
	if f.Same(And(x, y)) {
		t.Errorf("distinct formulas compare equal")
	}
	if f.Same(nil) {
		t.Errorf("non-nil Same(nil) should be false")
	}
}

func TestFreeVarsAndUses(t *testing.T) {
	f := Or(And(Var(3), Not(Var(1))), Var(5))
	got := f.FreeVars()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
	if !f.Uses(3) || !f.Uses(1) || !f.Uses(5) {
		t.Errorf("Uses should report free variables")
	}
	if f.Uses(0) || f.Uses(2) {
		t.Errorf("Uses reports absent variables")
	}
	if One().Uses(0) {
		t.Errorf("constant uses no variable")
	}
}

func TestStringRendering(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	f := Or(And(x, Not(y)), z)
	s := f.String()
	if s != "x0 & ~x1 | x2" {
		t.Errorf("String() = %q", s)
	}
	g := And(Or(x, y), z)
	if got := g.String(); got != "(x0 | x1) & x2" {
		t.Errorf("String() = %q", got)
	}
	if got := Not(And(x, y)).String(); got != "~(x0 & x1)" {
		t.Errorf("String() = %q", got)
	}
	if Zero().String() != "0" || One().String() != "1" {
		t.Errorf("constant rendering wrong")
	}
}

func TestStringNamed(t *testing.T) {
	vs := NewVars()
	a, b := vs.ID("A"), vs.ID("B")
	f := And(Var(a), Not(Var(b)))
	got := f.StringNamed(vs.Name)
	if got != "A & ~B" {
		t.Errorf("StringNamed = %q", got)
	}
}

func TestSize(t *testing.T) {
	x := Var(0)
	f := And(x, Or(x, Var(1)))
	// nodes: x, x1, Or, And — x shared
	if n := f.Size(); n != 4 {
		t.Errorf("Size = %d, want 4", n)
	}
}

func TestCofactor(t *testing.T) {
	x, y := Var(0), Var(1)
	f := Or(And(x, y), And(Not(x), Not(y)))
	if got := Cofactor(f, 0, true); !got.Same(y) {
		t.Errorf("f[x↦1] = %v, want y", got)
	}
	if got := Cofactor(f, 0, false); !got.Same(Not(y)) {
		t.Errorf("f[x↦0] = %v, want ~y", got)
	}
}

func TestExpansionIsBoole(t *testing.T) {
	// f ≡ (x ∧ f1) ∨ (¬x ∧ f0) for a handful of formulas.
	x, y, z := Var(0), Var(1), Var(2)
	formulas := []*Formula{
		Or(And(x, y), z),
		Xor(x, Xor(y, z)),
		Not(Or(x, And(y, Not(z)))),
		And(Implies(x, y), Implies(y, z)),
	}
	for _, f := range formulas {
		pos, neg := Expansion(f, 0)
		expanded := Or(And(x, pos), And(Not(x), neg))
		if !Equivalent(f, expanded) {
			t.Errorf("Boole expansion failed for %v", f)
		}
		if pos.Uses(0) || neg.Uses(0) {
			t.Errorf("cofactors still mention the expanded variable")
		}
	}
}

func TestSubstitute(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	f := Or(x, And(y, x))
	g := Substitute(f, 0, And(y, z))
	want := Or(And(y, z), And(y, And(y, z)))
	if !Equivalent(g, want) {
		t.Errorf("Substitute = %v", g)
	}
	if g.Uses(0) {
		t.Errorf("substituted variable still present")
	}
}

func TestSubstituteAll(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	f := Or(And(x, y), z)
	got := SubstituteAll(f, []*Formula{z, nil, Not(x)})
	// x ↦ z, z ↦ ¬x, y untouched; simultaneous, so the substituted z is not
	// re-substituted.
	want := Or(And(z, y), Not(x))
	if !got.Same(want) {
		t.Errorf("SubstituteAll = %v, want %v", got, want)
	}
}

func TestDerivedOps(t *testing.T) {
	x, y := Var(0), Var(1)
	if !Equivalent(Diff(x, y), And(x, Not(y))) {
		t.Errorf("Diff wrong")
	}
	if !Equivalent(Xor(x, y), Or(And(x, Not(y)), And(Not(x), y))) {
		t.Errorf("Xor wrong")
	}
	if !Equivalent(Implies(x, y), Or(Not(x), y)) {
		t.Errorf("Implies wrong")
	}
	if !Equivalent(AndN(x, y, One()), And(x, y)) {
		t.Errorf("AndN wrong")
	}
	if !Equivalent(OrN(), Zero()) || !Equivalent(AndN(), One()) {
		t.Errorf("empty folds wrong")
	}
}

func TestRenderParenthesization(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	f := Not(Or(x, y))
	if got := f.String(); !strings.Contains(got, "(") {
		t.Errorf("negated disjunction must parenthesize: %q", got)
	}
	g := And(x, And(y, z))
	if got := g.String(); strings.Contains(got, "(") {
		t.Errorf("nested conjunction needs no parens: %q", got)
	}
}
