package spatialdb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

func TestEpochBumpsOnEveryMutation(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 100, 100), RTree)
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", s.Epoch())
	}
	s.Layer("a") // creation is a mutation
	e1 := s.Epoch()
	if e1 == 0 {
		t.Error("layer creation did not bump the epoch")
	}
	s.Layer("a") // already exists: no bump
	if s.Epoch() != e1 {
		t.Error("re-fetching a layer bumped the epoch")
	}
	s.MustInsert("a", "x", region.FromBox(bbox.Rect(1, 1, 2, 2)))
	e2 := s.Epoch()
	if e2 <= e1 {
		t.Error("insert did not bump the epoch")
	}
	if ok, err := s.Remove("a", "x"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if s.Epoch() <= e2 {
		t.Error("remove did not bump the epoch")
	}
	if ok, _ := s.Remove("a", "x"); ok {
		t.Error("second Remove reported success")
	}
}

func TestRemoveRebuildsEveryIndexBackend(t *testing.T) {
	for _, kind := range []IndexKind{Scan, RTree, PointRTree, Grid, ZOrderIdx} {
		t.Run(kind.String(), func(t *testing.T) {
			s := NewStore(bbox.Rect(0, 0, 100, 100), kind)
			for i := 0; i < 8; i++ {
				x := float64(i * 10)
				s.MustInsert("objs", fmt.Sprintf("o%d", i),
					region.FromBox(bbox.Rect(x, 0, x+5, 5)))
			}
			if ok, err := s.Remove("objs", "o3"); err != nil || !ok {
				t.Fatalf("Remove = %v, %v", ok, err)
			}
			l := s.Layer("objs")
			if l.Len() != 7 {
				t.Errorf("Len = %d after remove", l.Len())
			}
			if _, ok := l.GetByName("o3"); ok {
				t.Error("GetByName still finds the removed object")
			}
			// The rebuilt index must neither return the removed object nor
			// lose any survivor.
			spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2)}
			var names []string
			l.Search(spec, func(o Object) bool {
				names = append(names, o.Name)
				return true
			})
			if len(names) != 7 {
				t.Errorf("Search returned %d objects: %v", len(names), names)
			}
			for _, n := range names {
				if n == "o3" {
					t.Error("Search returned the removed object")
				}
			}
		})
	}
}

func TestUpsertByNameReplaces(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 100, 100), RTree)
	s.MustInsert("a", "x", region.FromBox(bbox.Rect(1, 1, 2, 2)))
	o, replaced, err := s.Upsert("a", "x", region.FromBox(bbox.Rect(50, 50, 60, 60)))
	if err != nil || !replaced {
		t.Fatalf("Upsert = %v, replaced=%v", err, replaced)
	}
	got, ok := s.Layer("a").GetByName("x")
	if !ok || got.ID != o.ID || got.Box.Lo[0] != 50 {
		t.Errorf("GetByName after upsert = %+v, %v", got, ok)
	}
	if s.Layer("a").Len() != 1 {
		t.Errorf("Len = %d", s.Layer("a").Len())
	}
	if _, _, err := s.Upsert("a", "x", region.Empty(2)); err == nil {
		t.Error("Upsert accepted an empty region")
	}
	if s.Layer("a").Len() != 1 {
		t.Error("failed upsert mutated the layer")
	}
}

func TestUpsertRollsBackOnIndexRejection(t *testing.T) {
	// The z-order index rejects boxes outside the universe; a failed
	// replacement must restore the old object and leave the epoch alone.
	s := NewStore(bbox.Rect(0, 0, 100, 100), ZOrderIdx)
	s.MustInsert("a", "x", region.FromBox(bbox.Rect(1, 1, 2, 2)))
	epoch := s.Epoch()
	if _, _, err := s.Upsert("a", "x", region.FromBox(bbox.Rect(90, 90, 200, 200))); err == nil {
		t.Fatal("Upsert accepted an out-of-universe box on zorder")
	}
	if s.Epoch() != epoch {
		t.Errorf("failed upsert bumped the epoch: %d -> %d", epoch, s.Epoch())
	}
	o, ok := s.Layer("a").GetByName("x")
	if !ok || o.Box.Lo[0] != 1 {
		t.Fatalf("old object lost by failed upsert: %+v, %v", o, ok)
	}
	// The restored object must still be indexed.
	spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2)}
	found := 0
	s.Layer("a").Search(spec, func(Object) bool { found++; return true })
	if found != 1 {
		t.Errorf("restored object not searchable: found %d", found)
	}
}

func TestConcurrentUpsertsLeaveOneObject(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 100, 100), RTree)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				x := float64(w*10 + i%10)
				if _, _, err := s.Upsert("a", "x",
					region.FromBox(bbox.Rect(x, x, x+1, x+1))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Layer("a").Len(); got != 1 {
		t.Errorf("Len = %d after concurrent upserts of one name, want 1", got)
	}
}

func TestRemoveRepointsToOlderDuplicateName(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 100, 100), RTree)
	old := s.MustInsert("a", "x", region.FromBox(bbox.Rect(1, 1, 2, 2)))
	s.MustInsert("a", "x", region.FromBox(bbox.Rect(50, 50, 60, 60)))
	if ok, err := s.Remove("a", "x"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	// The older duplicate must remain reachable (and removable) by name.
	got, ok := s.Layer("a").GetByName("x")
	if !ok || got.ID != old.ID {
		t.Fatalf("GetByName after removing newest duplicate = %+v, %v", got, ok)
	}
	if ok, err := s.Remove("a", "x"); err != nil || !ok {
		t.Errorf("second Remove = %v, %v", ok, err)
	}
	if s.Layer("a").Len() != 0 {
		t.Errorf("Len = %d", s.Layer("a").Len())
	}
}

// TestConcurrentInsertAndGuardedRead exercises the store-level guard
// directly (without the HTTP layer): writers insert while readers hold
// RLock and walk the layers. Meaningful under -race.
func TestConcurrentInsertAndGuardedRead(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 1000, 1000), RTree)
	s.Layer("objs")
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				x := float64((w*50 + i) % 990)
				s.MustInsert("objs", fmt.Sprintf("w%d-%d", w, i),
					region.FromBox(bbox.Rect(x, x, x+5, x+5)))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.RLock()
				l, ok := s.LayerIfExists("objs")
				if !ok {
					s.RUnlock()
					t.Error("layer vanished")
					return
				}
				n := 0
				l.All(func(Object) bool { n++; return true })
				s.RUnlock()
				if n > 150 {
					t.Errorf("saw %d objects, more than ever inserted", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Layer("objs").Len(); got != 150 {
		t.Errorf("final Len = %d, want 150", got)
	}
	// 1 layer creation + 150 inserts.
	if got := s.Epoch(); got != 151 {
		t.Errorf("final epoch = %d, want 151", got)
	}
}
