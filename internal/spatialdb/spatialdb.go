// Package spatialdb provides the spatial database layer the compiled query
// plans run against: named layers of region-valued objects, answering the
// univariate range queries of §1/§4
//
//	x ∈ [a,b]   and   x ⊓ c ≠ ∅
//
// over the objects' bounding boxes, through a pluggable index. Five
// backends are provided, substantiating the paper's claim that the
// optimization "does not require a special purpose data structure":
//
//   - Scan: linear scan with direct RangeSpec filtering (the baseline);
//   - RTree: Guttman R-tree over the k-dim boxes with subtree pruning;
//   - PointRTree: R-tree over the 2k-dim point transform of each box,
//     answering every compiled spec with ONE range query (Figure 3);
//   - Grid: grid file over the 2k-dim points, same single-query property;
//   - ZOrderIdx: z-element decomposition in one sorted list — the
//     z-ordering extension the paper's conclusion sketches.
//
// All backends return exactly the objects whose bounding box matches the
// spec; they differ only in cost, which Stats exposes to the experiments.
// Backends sit behind the layerIndex interface (index.go); those that
// also implement BulkLoader get the packed build path of Store.BulkInsert
// (bulk.go) and of index rebuilds after deletions.
//
// DESIGN.md §2 ("Storage") places this package in the module map; §3
// describes the locking and epoch protocol the store enforces.
package spatialdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/stats"
)

// IndexKind selects a layer's index backend.
type IndexKind int

// Available index backends.
const (
	Scan IndexKind = iota
	RTree
	PointRTree
	Grid
	// ZOrderIdx indexes boxes by their z-element decomposition — the
	// extension the paper's conclusion sketches ("it seems possible to
	// extend our approach to make use of z-ordering methods"). Stored
	// boxes must lie inside the store universe.
	ZOrderIdx
)

// String returns the backend name.
func (k IndexKind) String() string {
	switch k {
	case Scan:
		return "scan"
	case RTree:
		return "rtree"
	case PointRTree:
		return "point-rtree"
	case Grid:
		return "gridfile"
	case ZOrderIdx:
		return "zorder"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Object is a stored spatial object: a region plus its cached bounding
// box.
type Object struct {
	ID   int64
	Name string
	Reg  *region.Region
	Box  bbox.Box
}

// Stats accumulates index cost counters for one layer.
type Stats struct {
	Queries  int // range queries executed
	Touched  int // index nodes/cells touched
	Scanned  int // candidate objects examined by the index
	Returned int // objects actually matching the spec
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Queries += s2.Queries
	s.Touched += s2.Touched
	s.Scanned += s2.Scanned
	s.Returned += s2.Returned
}

// Layer is a named collection of objects with an index.
type Layer struct {
	name     string
	kind     IndexKind
	k        int
	universe bbox.Box
	objs     map[int64]Object
	byName   map[string]int64 // latest object id per name, for CRUD by name
	order    []int64          // insertion order, for deterministic scans
	idx      layerIndex       // the backend behind kind; see index.go
	data     *stats.Layer     // planner statistics, maintained by commit/remove

	// alts holds optional alternate index backends (EnableAltIndexes) kept
	// live alongside the primary so the adaptive planner can route a range
	// query per step. Alternates are best-effort: one that rejects an
	// object the primary accepted is dropped, never failing the mutation.
	// Scan never appears here — it reads the object table directly and is
	// always available.
	alts map[IndexKind]layerIndex

	mu    sync.Mutex // guards stats: Search may run concurrently
	stats Stats
}

func newLayer(name string, k int, kind IndexKind, universe bbox.Box, altKinds []IndexKind) *Layer {
	l := &Layer{name: name, kind: kind, k: k, universe: universe,
		objs: map[int64]Object{}, byName: map[string]int64{},
		data: stats.NewLayer(universe)}
	l.resetIndex()
	for _, ak := range altKinds {
		if ak == l.kind || ak == Scan {
			continue
		}
		if l.alts == nil {
			l.alts = map[IndexKind]layerIndex{}
		}
		l.alts[ak] = newLayerIndexKind(l, ak)
	}
	return l
}

// resetIndex discards and recreates the layer's index structure.
func (l *Layer) resetIndex() {
	l.idx = newLayerIndex(l)
}

// rebuildIndex recreates the index from the surviving objects in
// insertion order, through the backend's packed bulk path when it has
// one. Alternate indexes are rebuilt alongside (best-effort: a failing
// alternate is dropped).
func (l *Layer) rebuildIndex() error {
	l.resetIndex()
	objs := make([]Object, 0, len(l.order))
	for _, id := range l.order {
		objs = append(objs, l.objs[id])
	}
	l.rebuildAlts(objs)
	if bl, ok := l.idx.(BulkLoader); ok {
		if err := bl.BulkLoad(objs); err == nil {
			return nil
		}
		l.resetIndex() // bulk failed: fall back to looped inserts
	}
	for _, o := range objs {
		if err := l.idx.insert(o); err != nil {
			return err
		}
	}
	return nil
}

// rebuildAlts recreates every alternate index from objs, dropping any
// alternate that rejects an object. The caller must hold the store's
// write lock.
func (l *Layer) rebuildAlts(objs []Object) {
	for kind := range l.alts {
		ix := newLayerIndexKind(l, kind)
		ok := true
		if bl, isBulk := ix.(BulkLoader); isBulk {
			ok = bl.BulkLoad(objs) == nil
		} else {
			for _, o := range objs {
				if ix.insert(o) != nil {
					ok = false
					break
				}
			}
		}
		if ok {
			l.alts[kind] = ix
		} else {
			delete(l.alts, kind)
		}
	}
}

// Name returns the layer name.
func (l *Layer) Name() string { return l.name }

// Kind returns the index backend.
func (l *Layer) Kind() IndexKind { return l.kind }

// Len returns the number of stored objects.
func (l *Layer) Len() int { return len(l.objs) }

// DataStats returns the layer's planner statistics (counts, per-axis
// edge histograms, grid occupancy). The returned object is the live one,
// mutated under the store's write lock; readers must hold the store's
// read guard, exactly as for Search.
func (l *Layer) DataStats() *stats.Layer { return l.data }

// AvailableKinds returns the index backends this layer can serve a range
// query from: the primary, the always-available scan path, and any live
// alternates, in that order.
func (l *Layer) AvailableKinds() []IndexKind {
	kinds := []IndexKind{l.kind}
	if l.kind != Scan {
		kinds = append(kinds, Scan)
	}
	for k := Scan; k <= ZOrderIdx; k++ {
		if _, ok := l.alts[k]; ok {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// Stats returns the accumulated cost counters.
func (l *Layer) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats clears the counters.
func (l *Layer) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// insert adds an object (id already assigned by the store). The lookup
// maps are committed only after the index accepts the object, so a
// failed insert (e.g. a box outside a z-order index's universe) leaves
// the layer unchanged.
func (l *Layer) insert(o Object) error {
	if o.Reg.IsEmpty() {
		return fmt.Errorf("spatialdb: object %q has an empty region", o.Name)
	}
	if err := l.idx.insert(o); err != nil {
		return err
	}
	l.commit(o)
	return nil
}

// commit records an object in the lookup maps after the index accepted
// it. Every path that adds an object — Insert, Upsert, BulkInsert (both
// the packed and looped variants), snapshot restore and WAL replay —
// funnels through here, so the planner statistics and the alternate
// indexes stay consistent with the primary without per-path hooks. An
// alternate that rejects the object is dropped (the primary already
// accepted it; the mutation must not fail).
func (l *Layer) commit(o Object) {
	l.objs[o.ID] = o
	l.byName[o.Name] = o.ID
	l.order = append(l.order, o.ID)
	l.data.Add(o.Box)
	for kind, ix := range l.alts {
		if ix.insert(o) != nil {
			delete(l.alts, kind)
		}
	}
}

// remove deletes an object by id and rebuilds the index from the
// survivors (the index backends have no dynamic delete; at serving scale
// a rebuild per mutation is the simple, always-correct choice).
func (l *Layer) remove(id int64) error {
	o, ok := l.objs[id]
	if !ok {
		return fmt.Errorf("spatialdb: no object with id %d in layer %q", id, l.name)
	}
	delete(l.objs, id)
	l.data.Remove(o.Box)
	for i, oid := range l.order {
		if oid == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	if l.byName[o.Name] == id {
		delete(l.byName, o.Name)
		// Inserts allow duplicate names; repoint to the newest survivor
		// with this name so it stays reachable (and removable) by name.
		for i := len(l.order) - 1; i >= 0; i-- {
			if surv := l.objs[l.order[i]]; surv.Name == o.Name {
				l.byName[o.Name] = surv.ID
				break
			}
		}
	}
	return l.rebuildIndex()
}

// Get returns an object by id.
func (l *Layer) Get(id int64) (Object, bool) {
	o, ok := l.objs[id]
	return o, ok
}

// GetByName returns the most recently inserted object with the given
// name.
func (l *Layer) GetByName(name string) (Object, bool) {
	id, ok := l.byName[name]
	if !ok {
		return Object{}, false
	}
	return l.Get(id)
}

// All visits all objects in insertion order.
func (l *Layer) All(visit func(Object) bool) {
	for _, id := range l.order {
		if !visit(l.objs[id]) {
			return
		}
	}
}

// Objects returns all objects in insertion order.
func (l *Layer) Objects() []Object {
	out := make([]Object, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.objs[id])
	}
	return out
}

// Search visits every object whose bounding box matches the spec, in
// ascending id order, updating the layer's cost counters. Search is safe
// for concurrent use (the parallel executor issues range queries from
// several goroutines).
func (l *Layer) Search(spec bbox.RangeSpec, visit func(Object) bool) {
	l.SearchStats(spec, visit)
}

// SearchStats is Search returning the cost of this one call (which is
// also accumulated into the layer counters). The executors use it to
// attribute index work to the requesting run exactly, even when many
// runs share a layer concurrently — a shared-counter delta would mix
// their costs.
func (l *Layer) SearchStats(spec bbox.RangeSpec, visit func(Object) bool) Stats {
	return l.searchVia(l.idx, spec, visit)
}

// SearchStatsKind is SearchStats through a chosen backend: the primary,
// the always-available scan path, or a live alternate (EnableAltIndexes).
// An unavailable kind falls back to the primary — the choice can change
// only cost, never the result set.
func (l *Layer) SearchStatsKind(spec bbox.RangeSpec, kind IndexKind, visit func(Object) bool) Stats {
	ix := l.idx
	switch {
	case kind == l.kind:
	case kind == Scan:
		ix = scanIndex{l: l}
	default:
		if alt, ok := l.alts[kind]; ok {
			ix = alt
		}
	}
	return l.searchVia(ix, spec, visit)
}

func (l *Layer) searchVia(ix layerIndex, spec bbox.RangeSpec, visit func(Object) bool) Stats {
	var ids []int64
	touched, scanned := ix.search(spec, func(id int64) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Defense in depth: every backend must return exact matches; the
	// filter also protects against floating-point edge cases in the point
	// transform.
	matched := ids[:0]
	for _, id := range ids {
		if spec.Matches(l.objs[id].Box) {
			matched = append(matched, id)
		}
	}
	s := Stats{Queries: 1, Touched: touched, Scanned: scanned, Returned: len(matched)}
	l.addStats(s)
	for _, id := range matched {
		if !visit(l.objs[id]) {
			break
		}
	}
	return s
}

func (l *Layer) addStats(s Stats) {
	l.mu.Lock()
	l.stats.Add(s)
	l.mu.Unlock()
}

// Store is a collection of layers over a shared universe.
//
// Concurrency: the store carries a readers–writer guard so that many
// goroutines can execute compiled plans while others mutate layers. The
// mutating entry points (Insert, BulkInsert, Upsert, Remove, layer
// creation, snapshot load) take the write lock internally; plan
// execution in internal/query holds
// the read lock for the whole run via RLock/RUnlock, giving each query a
// consistent view of the data. Every mutation bumps a monotone epoch
// counter, which cache layers use to invalidate compiled plans.
type Store struct {
	universe bbox.Box
	kind     IndexKind

	mu       sync.RWMutex // guards layers, names, nextID, sink, altKinds
	epoch    atomic.Uint64
	degraded atomic.Bool       // read-only gate; see SetDegraded (mutlog.go)
	replica  atomic.Bool       // replica gate; see SetReplica (mutlog.go)
	layers   map[string]*Layer //boolq:guardedby mu
	names    []string          //boolq:guardedby mu
	nextID   int64             //boolq:guardedby mu

	// altKinds holds the alternate backends new layers are created with.
	altKinds []IndexKind //boolq:guardedby mu

	// sink, when set, receives every mutation inside the critical section
	// that applied it — the durable write path's hook point (mutlog.go).
	sink func(*Mutation) error //boolq:guardedby mu
}

// NewStore returns an empty store; layers created through it use the given
// index backend.
func NewStore(universe bbox.Box, kind IndexKind) *Store {
	if universe.IsEmpty() {
		panic("spatialdb: empty universe")
	}
	return &Store{universe: universe, kind: kind, layers: map[string]*Layer{}}
}

// Universe returns the store's universe box.
func (s *Store) Universe() bbox.Box { return s.universe }

// K returns the dimensionality.
func (s *Store) K() int { return s.universe.K }

// Kind returns the index backend layers are created with.
func (s *Store) Kind() IndexKind { return s.kind }

// Epoch returns the store's mutation counter. It increases monotonically
// on every Insert, Remove and layer creation — and once per BulkInsert
// batch — so compiled-plan caches key on it to drop plans built against
// an older state.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// RLock acquires the store's read guard. Plan execution holds it for the
// whole run so that concurrent mutations cannot interleave with a query's
// range queries; any direct use of LayerIfExists or Layer.Search from
// multiple goroutines must do the same.
func (s *Store) RLock() { s.mu.RLock() }

// RUnlock releases the read guard.
func (s *Store) RUnlock() { s.mu.RUnlock() }

// Layer returns (creating if needed) the named layer. Creation counts as
// a mutation: it takes the write lock and bumps the epoch.
func (s *Store) Layer(name string) *Layer {
	s.mu.RLock()
	l, ok := s.layers[name]
	s.mu.RUnlock()
	if ok {
		return l
	}
	l, _, _ = s.CreateLayer(name)
	return l
}

// CreateLayer ensures the named layer exists and reports whether this
// call created it — atomically under the write lock, unlike a
// HasLayer/Layer pair, so concurrent creators agree on who created it.
// A non-nil error is always an ErrDurability: the layer exists in memory
// but its creation record could not be logged.
//
//boolq:mutation nostats
func (s *Store) CreateLayer(name string) (*Layer, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.layers[name]; ok {
		return l, false, nil
	}
	if err := s.admitMutationLocked(); err != nil {
		return nil, false, err
	}
	l := s.ensureLayerLocked(name)
	s.epoch.Add(1)
	err := s.logMutation(&Mutation{Op: OpCreateLayer, Layer: name})
	return l, true, err
}

// LayerIfExists returns the named layer without creating it. Unlike the
// other accessors it does not take the store lock: it is meant for use
// under an explicit RLock (the query executors resolve their step layers
// through it while holding the read guard).
//
//boolq:rlocked mu
func (s *Store) LayerIfExists(name string) (*Layer, bool) {
	l, ok := s.layers[name]
	return l, ok
}

// HasLayer reports whether the named layer exists.
func (s *Store) HasLayer(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.layers[name]
	return ok
}

// LayerNames returns layer names in creation order.
func (s *Store) LayerNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.names...)
}

// ensureLayerLocked returns the named layer, creating it if needed. The
// caller must hold the write lock.
func (s *Store) ensureLayerLocked(name string) *Layer {
	l, ok := s.layers[name]
	if !ok {
		l = newLayer(name, s.universe.K, s.kind, s.universe, s.altKinds)
		s.layers[name] = l
		s.names = append(s.names, name)
	}
	return l
}

// EnableAltIndexes keeps the given backends live alongside every layer's
// primary index, so the adaptive planner can pick the cheapest backend
// per retrieval step. Existing layers build their alternates now; layers
// created later get them at creation. Alternates are best-effort — one
// that cannot hold a layer's objects is silently dropped for that layer
// (the scan path needs no structure and is always available without
// being enabled here). The epoch is bumped so cached plans re-plan
// against the new backend set.
func (s *Store) EnableAltIndexes(kinds ...IndexKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range kinds {
		if k == Scan || containsKind(s.altKinds, k) {
			continue
		}
		s.altKinds = append(s.altKinds, k)
	}
	for _, name := range s.names {
		l := s.layers[name]
		for _, k := range s.altKinds {
			if k == l.kind {
				continue
			}
			if l.alts == nil {
				l.alts = map[IndexKind]layerIndex{}
			}
			if _, ok := l.alts[k]; !ok {
				l.alts[k] = newLayerIndexKind(l, k)
			}
		}
		l.rebuildAlts(l.Objects())
	}
	s.epoch.Add(1)
}

func containsKind(ks []IndexKind, k IndexKind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// Insert adds a named region to a layer and returns its object. It is
// safe for concurrent use; the epoch is bumped after the object is in
// place. An ErrDurability means the object was inserted (and is
// returned) but its record could not be logged.
//
//boolq:mutation
func (s *Store) Insert(layer, name string, r *region.Region) (Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return Object{}, err
	}
	l := s.ensureLayerLocked(layer)
	s.nextID++
	o := Object{ID: s.nextID, Name: name, Reg: r, Box: r.BoundingBox()}
	if err := l.insert(o); err != nil {
		return Object{}, err
	}
	s.epoch.Add(1)
	err := s.logMutation(&Mutation{Op: OpInsert, Layer: layer, Objects: []MutObject{mutObject(o)}})
	return o, err
}

// Upsert atomically replaces the named object in a layer: any existing
// object with that name is removed and the new region inserted under one
// write-lock acquisition, so concurrent upserts of the same name can
// never leave duplicates and concurrent readers never observe the name
// missing. The region is validated first — a failed upsert leaves the
// old object untouched.
//
//boolq:mutation
func (s *Store) Upsert(layer, name string, r *region.Region) (Object, bool, error) {
	if r.IsEmpty() {
		return Object{}, false, fmt.Errorf("spatialdb: object %q has an empty region", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return Object{}, false, err
	}
	l := s.ensureLayerLocked(layer)
	replaced := false
	var old Object
	if prev, ok := l.GetByName(name); ok {
		if err := l.remove(prev.ID); err != nil {
			return Object{}, false, err
		}
		old, replaced = prev, true
	}
	s.nextID++
	o := Object{ID: s.nextID, Name: name, Reg: r, Box: r.BoundingBox()}
	if err := l.insert(o); err != nil {
		if replaced {
			// Roll the removal back; reinserting an object the index held
			// a moment ago cannot fail.
			_ = l.insert(old)
		}
		return Object{}, false, err
	}
	s.epoch.Add(1)
	err := s.logMutation(&Mutation{Op: OpUpsert, Layer: layer, Objects: []MutObject{mutObject(o)}})
	return o, replaced, err
}

// Remove deletes the named object from a layer. It reports whether an
// object with that name existed; removal bumps the epoch.
//
//boolq:mutation
func (s *Store) Remove(layer, name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return false, err
	}
	l, ok := s.layers[layer]
	if !ok {
		return false, nil
	}
	o, ok := l.GetByName(name)
	if !ok {
		return false, nil
	}
	if err := l.remove(o.ID); err != nil {
		return false, err
	}
	s.epoch.Add(1)
	err := s.logMutation(&Mutation{Op: OpRemove, Layer: layer, RemoveID: o.ID})
	return true, err
}

// MustInsert is Insert that panics on error; for tests and generators
// whose regions are nonempty by construction.
func (s *Store) MustInsert(layer, name string, r *region.Region) Object {
	o, err := s.Insert(layer, name, r)
	if err != nil {
		panic(err)
	}
	return o
}

// TotalStats sums the counters over all layers.
func (s *Store) TotalStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t Stats
	for _, name := range s.names {
		t.Add(s.layers[name].Stats())
	}
	return t
}

// ResetStats clears all layers' counters.
func (s *Store) ResetStats() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, name := range s.names {
		s.layers[name].ResetStats()
	}
}

// zorderFilter picks the single overlap filter a z-order search can use:
// every box matching the spec must overlap it. Preference order: the
// required lower bound (a match contains it, hence overlaps it), then the
// most selective witness meet the upper bound (a match inside Upper
// overlapping w also overlaps w ⊓ Upper), then the upper bound itself.
func zorderFilter(spec bbox.RangeSpec) bbox.Box {
	if !spec.Lower.IsEmpty() {
		return spec.Lower
	}
	if len(spec.Overlaps) > 0 {
		best := spec.Overlaps[0]
		for _, w := range spec.Overlaps[1:] {
			if w.Volume() < best.Volume() {
				best = w
			}
		}
		return best.Meet(spec.Upper)
	}
	return spec.Upper
}
