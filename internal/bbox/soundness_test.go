package bbox_test

import (
	"testing"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/formula"
	"repro/internal/region"
	"repro/internal/workload"
)

// TestApproximationSoundnessOverRegions is the semantic contract of
// Algorithm 2, checked against the real region algebra: for random Boolean
// functions f and random region values,
//
//	L_f(⌈x₁⌉,…) ⊑ ⌈f(x₁,…)⌉ ⊑ U_f(⌈x₁⌉,…).
//
// This is the property that makes bounding-box filtering sound in the
// executor (Definition of ≼/≽ approximation in §4).
func TestApproximationSoundnessOverRegions(t *testing.T) {
	universe := bbox.Rect(0, 0, 100, 100)
	alg := region.NewAlgebra(universe)
	rng := workload.NewRNG(99)

	x, y, z := formula.Var(0), formula.Var(1), formula.Var(2)
	formulas := []*formula.Formula{
		x,
		formula.And(x, y),
		formula.Or(x, y),
		formula.Diff(x, y),
		formula.Xor(x, y),
		formula.OrN(formula.And(x, y), formula.And(y, z), formula.And(z, x)),
		formula.And(formula.Or(x, y), formula.Or(x, formula.Not(z))),
		formula.Not(formula.Or(x, y)),
		formula.OrN(formula.And(formula.Not(x), y), formula.And(x, y),
			formula.AndN(x, z)),
		formula.Implies(x, formula.And(y, z)),
	}
	for fi, f := range formulas {
		a, err := bbox.Approximate(f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			regs := []boolalg.Element{
				workload.RandRegion(rng, universe, 3),
				workload.RandRegion(rng, universe, 3),
				workload.RandRegion(rng, universe, 3),
			}
			boxes := make([]bbox.Box, 3)
			for i, r := range regs {
				boxes[i] = r.(*region.Region).BoundingBox()
			}
			val := formula.Eval(f, alg, regs).(*region.Region)
			exact := val.BoundingBox()
			lower := a.L.Eval(2, boxes)
			upper := a.U.Eval(2, boxes)
			// Complement-heavy functions reach the universe box; clip the
			// exact box comparison to the universe where needed.
			if !exact.Contains(lower.Meet(universe)) {
				t.Fatalf("formula %d trial %d: L_f = %v ⋢ ⌈f⌉ = %v", fi, trial, lower, exact)
			}
			if !upper.Contains(exact) {
				t.Fatalf("formula %d trial %d: ⌈f⌉ = %v ⋢ U_f = %v", fi, trial, exact, upper)
			}
		}
	}
}

// The bounds must also be *attained* in simple cases: for f = x ∨ y both
// bounds coincide with the exact bounding box.
func TestBoundsTightOnDisjunction(t *testing.T) {
	universe := bbox.Rect(0, 0, 100, 100)
	rng := workload.NewRNG(5)
	f := formula.Or(formula.Var(0), formula.Var(1))
	a, err := bbox.Approximate(f)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rx := workload.RandRegion(rng, universe, 2)
		ry := workload.RandRegion(rng, universe, 2)
		exact := rx.Union(ry).BoundingBox()
		boxes := []bbox.Box{rx.BoundingBox(), ry.BoundingBox()}
		if !a.L.Eval(2, boxes).Equal(exact) || !a.U.Eval(2, boxes).Equal(exact) {
			t.Fatalf("bounds not tight on x∨y: L=%v U=%v exact=%v",
				a.L.Eval(2, boxes), a.U.Eval(2, boxes), exact)
		}
	}
}
