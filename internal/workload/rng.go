// Package workload generates the deterministic synthetic datasets the
// experiments run on: the smuggler/GIS map of §2 (country, states, border
// towns, roads), VLSI-style rectangle layouts, and random regions for
// property tests. All generation is driven by a splitmix64 RNG so every
// experiment is reproducible from its seed.
//
// DESIGN.md §2 ("Harness") places this package in the module map.
package workload

// RNG is a splitmix64 pseudo-random generator — tiny, fast and
// deterministic across platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// IntN returns a uniform integer in [0,n).
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("workload: IntN with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}
