// Service: the §2 smuggler example end to end over HTTP against boolqd.
//
// The program starts an in-process boolqd server on a loopback socket,
// uploads the generated smuggler map through the snapshot endpoint, and
// then acts as a plain HTTP client: it POSTs the paper's query twice —
// the first request parses and compiles, the second hits the plan cache —
// verifies both answers against the in-process boolq.CompileAndRun, adds
// a town through the CRUD API (which bumps the store epoch and
// invalidates the cached plan), bulk-loads a batch of towns through
// objects:bulk as NDJSON (one write-lock acquisition, one epoch bump for
// the whole batch), fans three queries through the streaming /query/batch
// endpoint, demonstrates bounded execution (a limit that truncates the
// result set, and the per-solution ?stream=1 NDJSON mode), and prints
// the /stats counters at the end. Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	boolq "repro"
	"repro/internal/server"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

const queryText = `
find T in towns, R in roads, B in states
given C, A
where A <= C; B <= C; R <= A | B | T;
      R & A != 0; R & T != 0; T !<= C
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The server side: an empty store behind boolqd on a loopback port.
	m := workload.GenMap(workload.MapConfig{Seed: 1991})
	empty := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	srv := server.New(empty, server.Options{Workers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("boolqd serving on %s\n\n", base)

	// Load the map through the snapshot endpoint, exactly as an operator
	// would restore a saved store.
	seed := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(seed)
	var snap bytes.Buffer
	if err := seed.Save(&snap); err != nil {
		return err
	}
	var loaded struct {
		Layers map[string]int `json:"layers"`
	}
	if err := post(base+"/snapshot", snap.Bytes(), &loaded); err != nil {
		return err
	}
	fmt.Printf("snapshot loaded: %v\n\n", loaded.Layers)

	// The query, twice: cold then cached.
	params := map[string]any{
		"C": regionJSON(m.Country),
		"A": regionJSON(m.Area),
	}
	req, _ := json.Marshal(map[string]any{"query": queryText, "params": params})
	var first, second queryResult
	if err := post(base+"/query", req, &first); err != nil {
		return err
	}
	fmt.Printf("first POST /query:  %d solutions, cached=%v, %dµs\n",
		first.Count, first.Cached, first.ElapsedUS)
	for i, s := range first.Solutions {
		fmt.Printf("  %d. enter at %s, drive %s, staying inside %s\n",
			i+1, s.Names[0], s.Names[1], s.Names[2])
	}
	if err := post(base+"/query", req, &second); err != nil {
		return err
	}
	fmt.Printf("second POST /query: %d solutions, cached=%v, %dµs\n\n",
		second.Count, second.Cached, second.ElapsedUS)

	// Cross-check against the in-process library.
	q, err := boolq.ParseQuery(queryText)
	if err != nil {
		return err
	}
	local, err := boolq.CompileAndRun(q, srv.Store(),
		map[string]*boolq.Region{"C": m.Country, "A": m.Area})
	if err != nil {
		return err
	}
	if len(local.Solutions) != first.Count || first.Count != second.Count {
		return fmt.Errorf("HTTP and library disagree: %d vs %d vs %d",
			first.Count, second.Count, len(local.Solutions))
	}
	fmt.Printf("library cross-check: %d solutions ✓\n", len(local.Solutions))

	// A mutation through the CRUD API invalidates the cached plan.
	town := map[string]any{"boxes": []any{
		map[string]any{"lo": []float64{95, 495}, "hi": []float64{105, 505}},
	}}
	townBody, _ := json.Marshal(town)
	putReq, _ := http.NewRequest(http.MethodPut,
		base+"/layers/towns/objects/new-border-town", bytes.NewReader(townBody))
	resp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var third queryResult
	if err := post(base+"/query", req, &third); err != nil {
		return err
	}
	fmt.Printf("after PUT town:     %d solutions, cached=%v (epoch bumped)\n\n",
		third.Count, third.Cached)

	// Bulk ingestion: a batch of far-corner towns as NDJSON. The store
	// takes its write lock once and bumps the epoch once for the batch.
	var nd bytes.Buffer
	for i := 0; i < 40; i++ {
		x, y := 900+float64(i%8)*10, 905+float64(i/8)*15
		line, _ := json.Marshal(map[string]any{
			"name":  fmt.Sprintf("outpost-%d", i),
			"boxes": []any{map[string]any{"lo": []float64{x, y}, "hi": []float64{x + 4, y + 4}}},
		})
		nd.Write(line)
		nd.WriteByte('\n')
	}
	resp, err = http.Post(base+"/layers/towns/objects:bulk", "application/x-ndjson", &nd)
	if err != nil {
		return err
	}
	var bulk struct {
		Inserted int    `json:"inserted"`
		Failed   int    `json:"failed"`
		Epoch    uint64 `json:"epoch"`
	}
	if err := decode(base+"/layers/towns/objects:bulk", resp, &bulk); err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("bulk NDJSON upload:  %d towns inserted, %d failed, epoch %d\n\n",
		bulk.Inserted, bulk.Failed, bulk.Epoch)

	// Batch execution: three queries through one request, results
	// streamed back as NDJSON in completion order.
	batchBody, _ := json.Marshal(map[string]any{
		"queries": []any{
			map[string]any{"query": queryText, "params": params},
			map[string]any{"query": "find T in towns given C where T !<= C",
				"params": map[string]any{"C": params["C"]}},
			map[string]any{"query": "find R in roads given A where R & A != 0",
				"params": map[string]any{"A": params["A"]}},
		},
	})
	resp, err = http.Post(base+"/query/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		return err
	}
	fmt.Println("POST /query/batch (NDJSON stream):")
	sc := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Index  int    `json:"index"`
			Count  int    `json:"count"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
			Done   bool   `json:"done"`
			Errors int    `json:"errors"`
		}
		if err := sc.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			resp.Body.Close()
			return err
		}
		if line.Done {
			fmt.Printf("  summary: %d errors\n\n", line.Errors)
			break
		}
		if line.Error != "" {
			fmt.Printf("  query %d: error: %s\n", line.Index, line.Error)
			continue
		}
		fmt.Printf("  query %d: %d solutions (cached=%v)\n", line.Index, line.Count, line.Cached)
	}
	resp.Body.Close()

	// Bounded execution: a solution limit caps the result set (the
	// response is flagged "truncated"), and timeout_ms bounds the run —
	// both essential once queries come from untrusted clients.
	limReq, _ := json.Marshal(map[string]any{
		"query": queryText, "params": params, "limit": 1, "timeout_ms": 5000,
	})
	var limited queryResult
	if err := post(base+"/query", limReq, &limited); err != nil {
		return err
	}
	fmt.Printf("limit=1 query:      %d of %d solutions, truncated=%v\n\n",
		limited.Count, first.Count, limited.Truncated)

	// Streaming mode: each solution leaves as its own NDJSON line the
	// moment the executor finds it; the final line summarizes the run.
	resp, err = http.Post(base+"/query?stream=1", "application/json", bytes.NewReader(req))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return fmt.Errorf("stream query: %s: %s", resp.Status, msg)
	}
	fmt.Println("POST /query?stream=1 (NDJSON stream):")
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Solution *struct {
				Names []string `json:"names"`
			} `json:"solution"`
			Error     string `json:"error"`
			Done      bool   `json:"done"`
			Count     int    `json:"count"`
			Truncated bool   `json:"truncated"`
		}
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			resp.Body.Close()
			return err
		}
		if line.Error != "" {
			resp.Body.Close()
			return fmt.Errorf("stream query: %s", line.Error)
		}
		if line.Done {
			fmt.Printf("  summary: %d solutions, truncated=%v\n\n", line.Count, line.Truncated)
			break
		}
		if line.Solution != nil {
			fmt.Printf("  solution: %v\n", line.Solution.Names)
		}
	}
	resp.Body.Close()

	var stats struct {
		Epoch uint64 `json:"epoch"`
		Cache struct {
			Hits, Misses uint64
		} `json:"cache"`
		Bulk struct {
			Batches, Objects int64
		} `json:"bulk"`
		Queries struct {
			Timeouts, Truncated int64
		} `json:"queries"`
	}
	if err := get(base+"/stats", &stats); err != nil {
		return err
	}
	fmt.Println(strings.Repeat("-", 50))
	fmt.Printf("epoch %d, plan cache: %d hits / %d misses, bulk: %d objects in %d batches, "+
		"bounded runs: %d timeouts / %d truncated\n",
		stats.Epoch, stats.Cache.Hits, stats.Cache.Misses, stats.Bulk.Objects, stats.Bulk.Batches,
		stats.Queries.Timeouts, stats.Queries.Truncated)
	return nil
}

type queryResult struct {
	Count     int  `json:"count"`
	Cached    bool `json:"cached"`
	Truncated bool `json:"truncated"`
	ElapsedUS int  `json:"elapsed_us"`
	Solutions []struct {
		Names []string `json:"names"`
	} `json:"solutions"`
}

func regionJSON(r *boolq.Region) any {
	boxes := []any{}
	for _, b := range r.Boxes() {
		boxes = append(boxes, map[string]any{"lo": b.Lo, "hi": b.Hi})
	}
	return map[string]any{"boxes": boxes}
}

func post(url string, body []byte, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(url, resp, out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(url, resp, out)
}

func decode(url string, resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
