// Durability endpoints. When boolqd runs with -data-dir the server is
// constructed over a wal.DB (Options.Durable): every mutation handler's
// store call appends a WAL record before acknowledging, /stats and
// /debug/vars grow durability counters, and two probe endpoints become
// meaningful:
//
//	GET  /healthz     liveness + durability state — always 200 while the
//	                  process serves, with "state" healthy|degraded
//	GET  /readyz      readiness — 200 only when the store accepts
//	                  mutations; 503 while degraded (and the bootstrap
//	                  handler in cmd/boolqd answers 503 "recovering"
//	                  while recovery is still running)
//	POST /checkpoint  force a snapshot + WAL truncation now
//
// POST /snapshot is refused in durable mode: swapping the store out from
// under the DB would disconnect it from the log. GET /snapshot (save)
// still works — it only reads.
package server

import (
	"errors"
	"net/http"

	"repro/internal/spatialdb"
)

// mutationStatus maps a mutation error to an HTTP status. Degraded
// read-only mode (the WAL is down, a background probe is repairing it)
// is 503 — retryable, expected to clear on its own; a plain durability
// failure (the WAL append failed and the write must not be treated as
// acknowledged) is a server-side 500; anything else is the caller's 400.
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, spatialdb.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, spatialdb.ErrDurability):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// writeMutationError reports a failed mutation, attaching Retry-After
// when the failure is the retryable degraded-mode rejection.
//
//boolq:errwriter
func writeMutationError(w http.ResponseWriter, err error, format string, args ...any) {
	status := mutationStatus(err)
	if status == http.StatusServiceUnavailable {
		writeRetryError(w, status, retryAfterDegraded, format, args...)
		return
	}
	writeError(w, status, format, args...)
}

// durabilityState classifies the durable layer for the probe endpoints:
// "healthy", "degraded", or "" when the server is not durable.
func (s *Server) durabilityState() string {
	if s.durable == nil {
		return ""
	}
	if s.durable.Degraded() {
		return "degraded"
	}
	return "healthy"
}

// handleHealth is GET /healthz: liveness plus durability state. It
// always answers 200 while the process can serve at all — degraded
// read-only mode is a state to report, not a reason to be restarted —
// so orchestrators must key restarts on liveness and traffic on /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ok": true, "state": "healthy"}
	if st := s.durabilityState(); st != "" {
		resp["state"] = st
		if st == "degraded" {
			resp["degraded"] = true
			resp["cause"] = s.durable.DegradeCause()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReady is GET /readyz. The Server only exists after recovery
// (OpenDB is synchronous), so the bootstrap 503 ("recovering", answered
// by cmd/boolqd before the swap) never reaches this handler. What can
// still make a live server unready is degraded read-only mode: mutations
// would 503, so readiness reports it distinctly — state "degraded" with
// its cause — and load balancers can drain writes while reads continue.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ready": true, "durable": s.durable != nil}
	if s.durable != nil {
		st := s.durable.Stats()
		resp["replayed"] = st.Replayed
		resp["recovery_ms"] = st.RecoveryMS
		resp["applied_lsn"] = st.AppliedLSN
		if st.Degraded {
			resp["ready"] = false
			resp["state"] = "degraded"
			resp["cause"] = st.DegradeCause
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		resp["state"] = "healthy"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint is POST /checkpoint: write a snapshot of the current
// state and truncate the WAL segments it covers.
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.durable == nil {
		writeError(w, http.StatusConflict, "not running in durable mode (start boolqd with -data-dir)")
		return
	}
	lsn, err := s.durable.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": true, "lsn": lsn})
}
