package spatialdb

import (
	"bytes"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

func statsRect(x0, y0, x1, y1 float64) *region.Region {
	return region.FromBoxes(2, bbox.Rect(x0, y0, x1, y1))
}

// rebuildStatsFrom recomputes a layer's statistics from scratch out of
// its live objects — the oracle every mutation path must agree with.
func rebuildStatsFrom(t *testing.T, s *Store, layer string) bool {
	t.Helper()
	fresh := NewStore(s.Universe(), s.Kind())
	l, ok := s.LayerIfExists(layer)
	if !ok {
		t.Fatalf("layer %q missing", layer)
	}
	for _, o := range l.Objects() {
		fresh.MustInsert(layer, o.Name, o.Reg)
	}
	fl, _ := fresh.LayerIfExists(layer)
	return l.DataStats().Equal(fl.DataStats())
}

func TestDataStatsTrackMutations(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 1000, 1000), RTree)
	s.MustInsert("towns", "a", statsRect(10, 10, 20, 20))
	s.MustInsert("towns", "b", statsRect(100, 100, 150, 150))
	if _, _, err := s.Upsert("towns", "a", statsRect(30, 30, 40, 40)); err != nil {
		t.Fatal(err)
	}
	items := []BulkItem{
		{Name: "c", Reg: statsRect(500, 500, 600, 600)},
		{Name: "d", Reg: statsRect(700, 700, 800, 800)},
	}
	if _, err := s.BulkInsert("towns", items, BulkAtomic); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Remove("towns", "b"); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	l, _ := s.LayerIfExists("towns")
	if got, want := l.DataStats().Count(), uint64(3); got != want {
		t.Fatalf("stats count = %d, want %d", got, want)
	}
	if !rebuildStatsFrom(t, s, "towns") {
		t.Fatal("incrementally maintained stats differ from a from-scratch rebuild")
	}
}

func TestSnapshotsCarryStats(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 1000, 1000), Grid)
	for i, r := range []*region.Region{
		statsRect(10, 10, 20, 20),
		statsRect(300, 300, 350, 360),
		statsRect(40, 900, 80, 950),
	} {
		s.MustInsert("roads", string(rune('a'+i)), r)
	}
	want, _ := s.LayerIfExists("roads")

	var jsonBuf bytes.Buffer
	if err := s.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(&jsonBuf, Grid)
	if err != nil {
		t.Fatal(err)
	}
	jl, _ := fromJSON.LayerIfExists("roads")
	if !jl.DataStats().Equal(want.DataStats()) {
		t.Error("JSON snapshot did not restore identical statistics")
	}

	var binBuf bytes.Buffer
	if err := s.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadBinary(&binBuf, RTree) // backend change: stats are portable
	if err != nil {
		t.Fatal(err)
	}
	bl, _ := fromBin.LayerIfExists("roads")
	if !bl.DataStats().Equal(want.DataStats()) {
		t.Error("binary snapshot did not restore identical statistics")
	}
}

func TestAltIndexesServeIdenticalResults(t *testing.T) {
	uni := bbox.Rect(0, 0, 1000, 1000)
	s := NewStore(uni, Scan)
	for i := 0; i < 40; i++ {
		x := float64(i * 20)
		s.MustInsert("towns", "t", statsRect(x, x, x+15, x+15))
	}
	s.EnableAltIndexes(PointRTree, Grid, ZOrderIdx)
	// More objects after enabling: alternates must track commits.
	for i := 0; i < 10; i++ {
		x := float64(i * 50)
		s.MustInsert("towns", "u", statsRect(x, 500, x+30, 540))
	}
	l, _ := s.LayerIfExists("towns")
	kinds := l.AvailableKinds()
	if len(kinds) != 4 { // scan primary + 3 alternates (Scan not duplicated)
		t.Fatalf("AvailableKinds = %v, want 4 entries", kinds)
	}
	spec := bbox.RangeSpec{
		K:     2,
		Lower: bbox.Empty(2),
		Upper: bbox.Rect(0, 0, 600, 600),
	}
	collect := func(kind IndexKind) []int64 {
		var ids []int64
		l.SearchStatsKind(spec, kind, func(o Object) bool {
			ids = append(ids, o.ID)
			return true
		})
		return ids
	}
	want := collect(Scan)
	if len(want) == 0 {
		t.Fatal("test spec matched nothing")
	}
	for _, kind := range []IndexKind{PointRTree, Grid, ZOrderIdx, RTree /* unavailable → primary */} {
		got := collect(kind)
		if len(got) != len(want) {
			t.Fatalf("kind %v returned %d ids, scan returned %d", kind, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("kind %v result %d = id %d, scan has %d", kind, i, got[i], want[i])
			}
		}
	}
	// Removal rebuilds alternates; results must stay aligned.
	if ok, err := s.Remove("towns", "u"); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	want = collect(Scan)
	for _, kind := range []IndexKind{PointRTree, Grid, ZOrderIdx} {
		got := collect(kind)
		if len(got) != len(want) {
			t.Fatalf("after remove, kind %v returned %d ids, scan returned %d", kind, len(got), len(want))
		}
	}
}

// An alternate that cannot hold an object (z-order requires boxes inside
// the universe) is dropped without failing the primary insert.
func TestAltIndexDroppedOnRejection(t *testing.T) {
	s := NewStore(bbox.Rect(0, 0, 100, 100), RTree)
	s.EnableAltIndexes(ZOrderIdx)
	s.MustInsert("a", "in", statsRect(10, 10, 20, 20))
	l, _ := s.LayerIfExists("a")
	if len(l.AvailableKinds()) != 3 {
		t.Fatalf("AvailableKinds = %v, want rtree+scan+zorder", l.AvailableKinds())
	}
	// Outside the universe: the R-tree primary accepts it, z-order cannot.
	if _, err := s.Insert("a", "out", statsRect(150, 150, 200, 200)); err != nil {
		t.Fatalf("primary insert must not fail when an alternate rejects: %v", err)
	}
	if got := l.AvailableKinds(); len(got) != 2 {
		t.Fatalf("AvailableKinds after rejection = %v, want zorder dropped", got)
	}
	// Queries through the dropped kind fall back to the primary.
	var n int
	l.SearchStatsKind(bbox.AllSpec(2), ZOrderIdx, func(Object) bool { n++; return true })
	if n != 2 {
		t.Fatalf("fallback search saw %d objects, want 2", n)
	}
}
