package bbox

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxConstructors(t *testing.T) {
	b := Rect(0, 0, 2, 3)
	if b.K != 2 || b.IsEmpty() {
		t.Fatalf("Rect wrong: %v", b)
	}
	if b.Volume() != 6 {
		t.Errorf("Volume = %g", b.Volume())
	}
	if b.Margin() != 5 {
		t.Errorf("Margin = %g", b.Margin())
	}
	if _, err := Make([]float64{1}, []float64{0}); err == nil {
		t.Errorf("inverted interval accepted")
	}
	if _, err := Make([]float64{1}, []float64{0, 1}); err == nil {
		t.Errorf("dim mismatch accepted")
	}
	e := Empty(2)
	if !e.IsEmpty() || e.Volume() != 0 {
		t.Errorf("Empty wrong: %v", e)
	}
	u := Univ(2)
	if u.IsEmpty() || !math.IsInf(u.Volume(), 1) {
		t.Errorf("Univ wrong: %v", u)
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with inverted interval should panic")
		}
	}()
	New([]float64{2}, []float64{1})
}

func TestMeetJoin(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	m := a.Meet(b)
	if !m.Equal(Rect(2, 2, 4, 4)) {
		t.Errorf("Meet = %v", m)
	}
	j := a.Join(b)
	if !j.Equal(Rect(0, 0, 6, 6)) {
		t.Errorf("Join = %v", j)
	}
	// Disjoint boxes meet to empty.
	c := Rect(10, 10, 11, 11)
	if !a.Meet(c).IsEmpty() {
		t.Errorf("disjoint Meet not empty")
	}
	// Empty is identity for Join, absorbing for Meet.
	e := Empty(2)
	if !a.Join(e).Equal(a) || !e.Join(a).Equal(a) {
		t.Errorf("Join with empty wrong")
	}
	if !a.Meet(e).IsEmpty() || !e.Meet(a).IsEmpty() {
		t.Errorf("Meet with empty wrong")
	}
	// Univ is identity for Meet.
	if !a.Meet(Univ(2)).Equal(a) {
		t.Errorf("Meet with Univ wrong")
	}
}

func TestContainsOverlaps(t *testing.T) {
	a := Rect(0, 0, 10, 10)
	b := Rect(2, 2, 3, 3)
	if !a.Contains(b) || b.Contains(a) {
		t.Errorf("Contains wrong")
	}
	if !a.Contains(a) {
		t.Errorf("Contains not reflexive")
	}
	if !a.Contains(Empty(2)) {
		t.Errorf("every box contains empty")
	}
	if Empty(2).Contains(a) {
		t.Errorf("empty contains nonempty")
	}
	if !a.Overlaps(Rect(9, 9, 12, 12)) {
		t.Errorf("touching overlap missed")
	}
	if a.Overlaps(Rect(11, 0, 12, 1)) {
		t.Errorf("disjoint overlap reported")
	}
	// Boundary touching counts as overlap (closed boxes).
	if !Rect(0, 0, 1, 1).Overlaps(Rect(1, 0, 2, 1)) {
		t.Errorf("edge-touching boxes should overlap")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	Rect(0, 0, 1, 1).Meet(New([]float64{0}, []float64{1}))
}

func TestCenterAndContainsPoint(t *testing.T) {
	b := Rect(0, 0, 4, 2)
	c := b.Center()
	if c[0] != 2 || c[1] != 1 {
		t.Errorf("Center = %v", c)
	}
	if !b.ContainsPoint([]float64{2, 1}) || b.ContainsPoint([]float64{5, 1}) {
		t.Errorf("ContainsPoint wrong")
	}
	if b.ContainsPoint([]float64{2}) {
		t.Errorf("wrong-dimension point accepted")
	}
	if Empty(2).ContainsPoint([]float64{0, 0}) {
		t.Errorf("empty box contains a point")
	}
}

func TestEnlarge(t *testing.T) {
	a := Rect(0, 0, 2, 2)
	if got := a.Enlarge(Rect(0, 0, 1, 1)); got != 0 {
		t.Errorf("Enlarge contained = %g", got)
	}
	if got := a.Enlarge(Rect(0, 0, 4, 2)); got != 4 {
		t.Errorf("Enlarge = %g", got)
	}
}

func TestEqualAndString(t *testing.T) {
	a := Rect(0, 0, 1, 1)
	if !a.Equal(Rect(0, 0, 1, 1)) || a.Equal(Rect(0, 0, 1, 2)) {
		t.Errorf("Equal wrong")
	}
	if a.Equal(New([]float64{0}, []float64{1})) {
		t.Errorf("different dims equal")
	}
	if !Empty(2).Equal(Empty(2)) || Empty(2).Equal(a) {
		t.Errorf("empty equality wrong")
	}
	if Empty(2).String() != "∅" {
		t.Errorf("empty String = %q", Empty(2).String())
	}
	if a.String() != "[0,1]x[0,1]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestJoinAll(t *testing.T) {
	j := JoinAll(2, Rect(0, 0, 1, 1), Rect(5, 5, 6, 6), Empty(2))
	if !j.Equal(Rect(0, 0, 6, 6)) {
		t.Errorf("JoinAll = %v", j)
	}
	if !JoinAll(2).IsEmpty() {
		t.Errorf("JoinAll() not empty")
	}
}

func randBox(a, b, c, d float64) Box {
	x0, x1 := math.Min(a, b), math.Max(a, b)
	y0, y1 := math.Min(c, d), math.Max(c, d)
	return Rect(x0, y0, x1, y1)
}

// Property: boxes form a lattice — Meet is the greatest lower bound and
// Join the least upper bound w.r.t. Contains.
func TestInPlaceOps(t *testing.T) {
	a, b := Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)
	var dst Box
	a.MeetInto(b, &dst)
	if !dst.Equal(a.Meet(b)) {
		t.Errorf("MeetInto = %v, want %v", dst, a.Meet(b))
	}
	a.JoinInto(b, &dst)
	if !dst.Equal(a.Join(b)) {
		t.Errorf("JoinInto = %v, want %v", dst, a.Join(b))
	}
	// Disjoint meet empties the destination but keeps its buffers.
	far := Rect(50, 50, 60, 60)
	a.MeetInto(far, &dst)
	if !dst.IsEmpty() {
		t.Errorf("disjoint MeetInto = %v, want empty", dst)
	}
	// The emptied destination is reusable without reallocation.
	a.JoinInto(far, &dst)
	if !dst.Equal(Rect(0, 0, 60, 60)) {
		t.Errorf("JoinInto after empty = %v", dst)
	}
	// Joins against the empty box copy the other operand.
	Empty(2).JoinInto(b, &dst)
	if !dst.Equal(b) {
		t.Errorf("JoinInto with empty lhs = %v, want %v", dst, b)
	}
	b.CopyInto(&dst)
	dst.Lo[0] = -99
	if b.Lo[0] == -99 {
		t.Error("CopyInto shares backing arrays with the source")
	}
	dst.SetUniv(2)
	if !dst.IsUniv() || !dst.Equal(Univ(2)) {
		t.Errorf("SetUniv = %v", dst)
	}
	dst.SetEmpty(2)
	if !dst.IsEmpty() || dst.K != 2 {
		t.Errorf("SetEmpty = %v", dst)
	}
	if Univ(2).IsEmpty() || !Univ(2).IsUniv() || Rect(0, 0, 1, 1).IsUniv() || Empty(2).IsUniv() {
		t.Error("IsUniv misclassifies")
	}
}

// TestInPlaceOpsAliasing checks the documented aliasing contract: the
// destination may be one of the operands.
func TestInPlaceOpsAliasing(t *testing.T) {
	acc := Rect(0, 0, 4, 4)
	acc.MeetInto(Rect(2, 2, 6, 6), &acc)
	if !acc.Equal(Rect(2, 2, 4, 4)) {
		t.Errorf("self MeetInto = %v", acc)
	}
	acc.JoinInto(Rect(10, 10, 12, 12), &acc)
	if !acc.Equal(Rect(2, 2, 12, 12)) {
		t.Errorf("self JoinInto = %v", acc)
	}
}

func TestQuickBoxLattice(t *testing.T) {
	check := func(a, b, c, d, e, f, g, h float64) bool {
		x := randBox(a, b, c, d)
		y := randBox(e, f, g, h)
		m := x.Meet(y)
		j := x.Join(y)
		return x.Contains(m) && y.Contains(m) &&
			j.Contains(x) && j.Contains(y) &&
			m.Equal(y.Meet(x)) && j.Equal(y.Join(x))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ⊔ distributivity inequality f⊓g ⊔ f⊓h ⊑ f ⊓ (g⊔h) (Lemma 6).
func TestQuickLemma6(t *testing.T) {
	check := func(vals [12]float64) bool {
		f := randBox(vals[0], vals[1], vals[2], vals[3])
		g := randBox(vals[4], vals[5], vals[6], vals[7])
		h := randBox(vals[8], vals[9], vals[10], vals[11])
		lhs := f.Meet(g).Join(f.Meet(h))
		rhs := f.Meet(g.Join(h))
		return rhs.Contains(lhs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
