package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// heavyTestServer serves a map whose unfiltered cross product takes far
// longer than the query timeouts the tests use.
func heavyTestServer(t *testing.T, opts Options) (*Server, *workload.Map) {
	t.Helper()
	m := workload.GenMap(workload.MapConfig{Seed: 7, Towns: 60, Interior: 40, Roads: 150})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	return New(store, opts), m
}

// slowRequest disables both filters: the pathological workload the
// execution bounds exist for.
func slowRequest(m *workload.Map) queryRequest {
	req := smugglerRequest(m)
	req.NoIndex = true
	req.NoExact = true
	return req
}

func TestWorkersClamped(t *testing.T) {
	s, m := newTestServer(t)
	for requested, want := range map[int]int{
		-1:                  s.workers,
		0:                   s.workers,
		4:                   4,
		MaxQueryWorkers + 1: MaxQueryWorkers,
		100000000:           MaxQueryWorkers,
	} {
		if got := s.clampWorkers(requested); got != want {
			t.Errorf("clampWorkers(%d) = %d, want %d", requested, got, want)
		}
	}
	// The regression itself: a request demanding 100M goroutines is
	// served normally instead of spawning them.
	req := smugglerRequest(m)
	req.Workers = 100000000
	var resp queryResponse
	w := do(t, s, http.MethodPost, "/query", req, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("workers=1e8 query: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Count == 0 {
		t.Fatal("workers=1e8 query returned no solutions")
	}
}

func TestQueryLimitTruncates(t *testing.T) {
	s, m := newTestServer(t)
	full := smugglerRequest(m)
	var unbounded queryResponse
	do(t, s, http.MethodPost, "/query", full, &unbounded)
	if unbounded.Count < 2 {
		t.Fatalf("fixture has %d solutions, need ≥ 2", unbounded.Count)
	}

	limited := full
	limited.Limit = 1
	var resp queryResponse
	w := do(t, s, http.MethodPost, "/query", limited, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("limited query: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Count != 1 || len(resp.Solutions) != 1 {
		t.Errorf("limit 1 returned count %d (%d solutions)", resp.Count, len(resp.Solutions))
	}
	if !resp.Truncated || !resp.Stats.Truncated {
		t.Errorf("truncated flag not set: %+v", resp)
	}
	if resp.Cancelled {
		t.Errorf("cancelled flag set on a limit-capped run")
	}
	if s.metrics.QueryTruncated.Value() != 1 {
		t.Errorf("QueryTruncated = %d, want 1", s.metrics.QueryTruncated.Value())
	}

	// Naive executor honors the same per-request limit.
	naive := limited
	naive.Naive = true
	var nresp queryResponse
	do(t, s, http.MethodPost, "/query", naive, &nresp)
	if nresp.Count != 1 || !nresp.Truncated {
		t.Errorf("naive limit 1 → count %d, truncated=%v", nresp.Count, nresp.Truncated)
	}
}

func TestQueryTimeoutReturns408(t *testing.T) {
	s, m := heavyTestServer(t, Options{QueryTimeout: 20 * time.Millisecond})
	req := slowRequest(m)
	start := time.Now()
	var resp queryResponse
	w := do(t, s, http.MethodPost, "/query", req, nil)
	elapsed := time.Since(start)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("408 body is not a query response: %v", err)
	}
	if !resp.Cancelled || !resp.Stats.Cancelled {
		t.Errorf("cancelled flag not set on 408 body: %+v", resp)
	}
	if elapsed > 5*time.Second {
		t.Errorf("timeout-bounded query took %v", elapsed)
	}
	if s.metrics.QueryTimeouts.Value() != 1 {
		t.Errorf("QueryTimeouts = %d, want 1", s.metrics.QueryTimeouts.Value())
	}

	// The store is not wedged: a write right after the timeout succeeds
	// promptly.
	done := make(chan struct{})
	go func() {
		s.Store().MustInsert("towns", "after-timeout", region.FromBox(s.Store().Universe()))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked after query timeout: read guard not freed")
	}

	// timeout_ms can tighten the server bound per request too.
	s2, m2 := heavyTestServer(t, Options{}) // default 30s server bound
	req2 := slowRequest(m2)
	req2.TimeoutMS = 20
	w = do(t, s2, http.MethodPost, "/query", req2, nil)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("timeout_ms query: status %d, want 408", w.Code)
	}
}

// TestQueryTimeoutFreesGuardForConcurrentWriter drives the acceptance
// scenario over HTTP: a writer blocked mid-flight behind a pathological
// query proceeds once the query's deadline expires.
func TestQueryTimeoutFreesGuardForConcurrentWriter(t *testing.T) {
	s, m := heavyTestServer(t, Options{QueryTimeout: 30 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		w := do(t, s, http.MethodPost, "/query", slowRequest(m), nil)
		code = w.Code
	}()
	time.Sleep(5 * time.Millisecond) // let the query take the read guard
	writerDone := make(chan int, 1)
	go func() {
		body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{1, 1}, Hi: []float64{2, 2}}}}
		w := do(t, s, http.MethodPut, "/layers/towns/objects/blocked-writer", body, nil)
		writerDone <- w.Code
	}()
	select {
	case c := <-writerDone:
		if c != http.StatusCreated {
			t.Errorf("writer status %d", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer still blocked 10s after the query deadline")
	}
	wg.Wait()
	if code != http.StatusRequestTimeout {
		t.Errorf("pathological query status %d, want 408", code)
	}
}

func TestQueryStreamNDJSON(t *testing.T) {
	s, m := newTestServer(t)
	req := smugglerRequest(m)
	var buffered queryResponse
	do(t, s, http.MethodPost, "/query", req, &buffered)
	if buffered.Count == 0 {
		t.Fatal("fixture has no solutions")
	}

	body, _ := json.Marshal(req)
	hr := httptest.NewRequest(http.MethodPost, "/query?stream=1", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, hr)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type %q", ct)
	}
	var sols []solutionJSON
	var summary streamSummary
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"done"`) {
			if err := json.Unmarshal([]byte(line), &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var sl streamSolutionLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		sols = append(sols, sl.Solution)
	}
	if !summary.Done {
		t.Fatal("stream did not end with a summary line")
	}
	if len(sols) != buffered.Count || summary.Count != buffered.Count {
		t.Errorf("stream yielded %d solutions (summary %d), buffered %d",
			len(sols), summary.Count, buffered.Count)
	}
	got := solutionKeys(sols)
	want := solutionKeys(buffered.Solutions)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream solution set differs: %v vs %v", got, want)
		}
	}

	// Limit rides along and flags the summary.
	req.Limit = 1
	body, _ = json.Marshal(req)
	hr = httptest.NewRequest(http.MethodPost, "/query?stream=1", bytes.NewReader(body))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, hr)
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("limit 1 stream wrote %d lines, want solution + summary", len(lines))
	}
	if err := json.Unmarshal([]byte(lines[1]), &summary); err != nil {
		t.Fatal(err)
	}
	if !summary.Truncated || summary.Count != 1 {
		t.Errorf("limit 1 stream summary: %+v", summary)
	}

	// Pre-execution errors still get a clean 400, not a broken stream.
	bad := queryRequest{Query: "find T in towns given C where T !<= C"} // C unbound
	body, _ = json.Marshal(bad)
	hr = httptest.NewRequest(http.MethodPost, "/query?stream=1", bytes.NewReader(body))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, hr)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unbound-parameter stream: status %d, want 400", w.Code)
	}

	// naive+stream is rejected up front.
	nv := smugglerRequest(m)
	nv.Naive = true
	body, _ = json.Marshal(nv)
	hr = httptest.NewRequest(http.MethodPost, "/query?stream=1", bytes.NewReader(body))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, hr)
	if w.Code != http.StatusBadRequest {
		t.Errorf("naive stream: status %d, want 400", w.Code)
	}
}

// TestBatchNaivePinnedEpoch is the pinned-epoch regression: a naive
// query executed against a pinned batch snapshot must report the pinned
// epoch even when the store has mutated since the pin was taken, so all
// queries of one batch agree on the state they ran at.
func TestBatchNaivePinnedEpoch(t *testing.T) {
	s, m := newTestServer(t)
	store, gen := s.storeAndGen()
	pinned := store.Epoch()

	// Mutate after pinning: the live epoch moves past the pin.
	store.MustInsert("towns", "mid-batch", region.FromBox(store.Universe()))
	if store.Epoch() == pinned {
		t.Fatal("mutation did not bump the epoch")
	}

	req := smugglerRequest(m)
	req.Naive = true
	resp, status, err := s.execQuery(context.Background(), store, gen, pinned, &req)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Epoch != pinned {
		t.Errorf("naive batch query reported epoch %d, want pinned %d (live %d)",
			resp.Epoch, pinned, store.Epoch())
	}
}

// TestBatchEpochStableUnderConcurrentMutation runs a batch (naive and
// optimized queries) over HTTP while writers mutate the store
// mid-stream: every result line must report the same pinned epoch.
func TestBatchEpochStableUnderConcurrentMutation(t *testing.T) {
	s, m := newTestServer(t)
	base := smugglerRequest(m)
	naive := base
	naive.Naive = true
	queries := []queryRequest{base, naive, base, naive, base, naive}
	batch := batchQueryRequest{Queries: queries, Concurrency: 3}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{1, 1}, Hi: []float64{2, 2}}}}
			do(t, s, http.MethodPut, "/layers/towns/objects/churn", body, nil)
			time.Sleep(time.Millisecond)
		}
	}()

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(batch); err != nil {
		t.Fatal(err)
	}
	hr := httptest.NewRequest(http.MethodPost, "/query/batch", &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, hr)
	close(stop)
	wg.Wait()
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}

	var epochs []uint64
	var summaryEpoch uint64
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
			Epoch uint64 `json:"epoch"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("batch query error: %s", line.Error)
		}
		if line.Done {
			summaryEpoch = line.Epoch
			continue
		}
		epochs = append(epochs, line.Epoch)
	}
	if len(epochs) != len(queries) {
		t.Fatalf("got %d result lines, want %d", len(epochs), len(queries))
	}
	for i, e := range epochs {
		if e != summaryEpoch {
			t.Errorf("result %d reports epoch %d, summary (pinned) %d — batch not pinned", i, e, summaryEpoch)
		}
	}
}

// TestStatsExposesBoundCounters: the /stats and /debug/vars surfaces
// carry the new outcome counters.
func TestStatsExposesBoundCounters(t *testing.T) {
	s, m := heavyTestServer(t, Options{QueryTimeout: 20 * time.Millisecond})
	req := smugglerRequest(m)
	req.Limit = 1
	do(t, s, http.MethodPost, "/query", req, nil)            // truncated
	do(t, s, http.MethodPost, "/query", slowRequest(m), nil) // timeout

	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Queries.Truncated != 1 {
		t.Errorf("stats truncated = %d, want 1", stats.Queries.Truncated)
	}
	if stats.Queries.Timeouts != 1 {
		t.Errorf("stats timeouts = %d, want 1", stats.Queries.Timeouts)
	}
	if stats.Queries.Cancelled != 0 {
		t.Errorf("stats cancelled = %d, want 0", stats.Queries.Cancelled)
	}

	w := do(t, s, http.MethodGet, "/debug/vars", nil, nil)
	for _, key := range []string{"query_timeouts", "query_cancelled", "query_truncated"} {
		if !strings.Contains(w.Body.String(), key) {
			t.Errorf("expvar missing %q", key)
		}
	}
}
