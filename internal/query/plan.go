package query

import (
	"fmt"
	"strings"

	"repro/internal/bbox"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
)

// DiseqBoxPlan holds the compiled bounding-box approximations of one
// solved disequation x∧P ∨ ¬x∧Q ≠ 0. Both functions approximate from
// above. At run time, when U_Q evaluates to the empty box the disequation
// forces x∧P ≠ 0, which the plan turns into the range-query overlap
// constraint ⌈x⌉ ⊓ U_P ≠ ∅ (§4's conditional approximation).
type DiseqBoxPlan struct {
	P, Q *bbox.Func
}

// StepBoxPlan is the compiled per-variable range-query template.
type StepBoxPlan struct {
	Var    int
	Layer  string
	Lower  *bbox.Func // approximates the solved lower bound s from below
	Upper  *bbox.Func // approximates the solved upper bound t from above
	Diseqs []DiseqBoxPlan
}

// Spec instantiates the range query for a concrete prefix (envBox binds
// the bounding boxes of parameters and earlier variables). The second
// result is false when the step is statically unsatisfiable for this
// prefix — the whole prefix can be pruned.
func (sp StepBoxPlan) Spec(k int, envBox []bbox.Box) (bbox.RangeSpec, bool) {
	spec := bbox.RangeSpec{
		K:     k,
		Lower: sp.Lower.Eval(k, envBox),
		Upper: sp.Upper.Eval(k, envBox),
	}
	for _, d := range sp.Diseqs {
		if !d.Q.Eval(k, envBox).IsEmpty() {
			// ¬x∧Q can witness the disequation for any x: no box
			// constraint derivable (the paper's "trivial constraint true"
			// case).
			continue
		}
		p := d.P.Eval(k, envBox)
		if p.IsEmpty() {
			// Both branches empty: the disequation cannot hold.
			return bbox.RangeSpec{}, false
		}
		if p.Equal(bbox.Univ(k)) {
			// ⌈x⌉ ⊓ universe ≠ ∅ holds for every stored object: trivial.
			continue
		}
		spec.Overlaps = append(spec.Overlaps, p)
	}
	if spec.Unsatisfiable() {
		return bbox.RangeSpec{}, false
	}
	return spec, true
}

// Plan is a compiled query: the triangular solved form plus one range-query
// template per retrieval step.
type Plan struct {
	Query *Query
	Form  *triangular.Form
	Steps []StepBoxPlan
}

// Compile runs the full §3+§4 pipeline on the query against the given
// store's schema.
func Compile(q *Query, store *spatialdb.Store) (*Plan, error) {
	if err := validate(q, store); err != nil {
		return nil, err
	}
	order := make([]int, len(q.Retrieve))
	for i, b := range q.Retrieve {
		order[i], _ = q.Sys.Vars.Lookup(b.Var)
	}
	form, err := triangular.Compile(q.Sys.Normalize(), order)
	if err != nil {
		return nil, fmt.Errorf("query: triangularization failed: %w", err)
	}
	plan := &Plan{Query: q, Form: form}
	for i, st := range form.Steps {
		sp := StepBoxPlan{Var: st.Var, Layer: q.Retrieve[i].Layer}
		if sp.Lower, err = bbox.Lower(st.Lower); err != nil {
			return nil, fmt.Errorf("query: lower approximation for %s: %w", q.Retrieve[i].Var, err)
		}
		if sp.Upper, err = bbox.Upper(st.Upper); err != nil {
			return nil, fmt.Errorf("query: upper approximation for %s: %w", q.Retrieve[i].Var, err)
		}
		for _, d := range st.Diseqs {
			var dp DiseqBoxPlan
			if dp.P, err = bbox.Upper(d.P); err != nil {
				return nil, fmt.Errorf("query: disequation approximation: %w", err)
			}
			if dp.Q, err = bbox.Upper(d.Q); err != nil {
				return nil, fmt.Errorf("query: disequation approximation: %w", err)
			}
			sp.Diseqs = append(sp.Diseqs, dp)
		}
		plan.Steps = append(plan.Steps, sp)
	}
	return plan, nil
}

// Explain renders the plan: the triangular solved form followed by the
// per-step range-query templates, in the paper's notation.
func (p *Plan) Explain() string {
	name := p.Query.Sys.Vars.Name
	var b strings.Builder
	b.WriteString("triangular solved form:\n")
	b.WriteString(indent(p.Form.StringNamed(name)))
	b.WriteString("\nrange-query plan:\n")
	for i, sp := range p.Steps {
		fmt.Fprintf(&b, "  step %d: retrieve %s from layer %q\n",
			i+1, name(sp.Var), sp.Layer)
		fmt.Fprintf(&b, "    %s <= [%s] <= %s\n",
			sp.Lower.StringNamed(name), name(sp.Var), sp.Upper.StringNamed(name))
		for _, d := range sp.Diseqs {
			fmt.Fprintf(&b, "    [%s] ^ %s != ∅   (when %s = ∅)\n",
				name(sp.Var), d.P.StringNamed(name), d.Q.StringNamed(name))
		}
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
