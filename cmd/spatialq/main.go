// Command spatialq runs constraint queries against a generated spatial
// database. It demonstrates the full pipeline on the paper's scenarios:
//
//	spatialq                         # smuggler query on the default map
//	spatialq -explain                # also print the compiled plan
//	spatialq -index gridfile -seed 7 # choose index backend and map seed
//	spatialq -query q.bq             # run a query from a file
//	spatialq -naive                  # run the unoptimized baseline too
//
// Query files use the textual language (see internal/lang):
//
//	find T in towns, R in roads, B in states
//	given C, A
//	where A <= C; B <= C; R <= A | B | T;
//	      R & A != 0; R & T != 0; T !<= C
//
// The generated map provides layers "towns", "roads", "states" and the
// parameters C (country) and A (destination area).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialq:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Uint64("seed", 42, "map generator seed")
		scale     = flag.Int("scale", 1, "map size multiplier")
		indexName = flag.String("index", "rtree", "index backend: scan|rtree|point-rtree|gridfile")
		queryFile = flag.String("query", "", "query file (default: built-in smuggler query)")
		explain   = flag.Bool("explain", false, "print the compiled plan")
		naive     = flag.Bool("naive", false, "also run the naive baseline for comparison")
		noIndex   = flag.Bool("no-index", false, "disable per-step range queries")
		noExact   = flag.Bool("no-exact", false, "disable the exact solved-form filter")
	)
	flag.Parse()

	kind, err := parseIndex(*indexName)
	if err != nil {
		return err
	}

	cfg := workload.MapConfig{
		Seed:     *seed,
		Towns:    12 * *scale,
		Interior: 12 * *scale,
		Roads:    30 * *scale,
	}
	m := workload.GenMap(cfg)
	store := spatialdb.NewStore(m.Config.Universe, kind)
	m.Populate(store)
	params := map[string]*region.Region{"C": m.Country, "A": m.Area}
	fmt.Printf("map: %d towns, %d roads, %d states (seed %d, index %s)\n",
		store.Layer("towns").Len(), store.Layer("roads").Len(),
		store.Layer("states").Len(), *seed, kind)

	var q *query.Query
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		if q, err = lang.Parse(string(src)); err != nil {
			return err
		}
	} else {
		q = query.Smuggler()
	}

	plan, err := query.Compile(q, store)
	if err != nil {
		return err
	}
	if *explain {
		fmt.Println()
		fmt.Println(plan.Explain())
	}

	opts := query.Options{UseIndex: !*noIndex, UseExact: !*noExact}
	res, err := plan.Run(store, params, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d solution(s):\n", len(res.Solutions))
	for i, sol := range res.Solutions {
		parts := make([]string, len(sol.Objects))
		for j, o := range sol.Objects {
			parts[j] = fmt.Sprintf("%s=%s", q.Retrieve[j].Var, o.Name)
		}
		fmt.Printf("  %2d. %s\n", i+1, strings.Join(parts, ", "))
	}
	st := res.Stats
	fmt.Printf("\nstats: %d candidates, %d exact rejects, %d final checks, %d db objects scanned\n",
		st.Candidates, st.ExactRejects, st.FinalChecked, st.DB.Scanned)

	if *naive {
		nres, err := query.RunNaive(q, store, params)
		if err != nil {
			return err
		}
		fmt.Printf("naive: %d solutions from %d tuples examined (%.1fx more work)\n",
			nres.Stats.Solutions, nres.Stats.Candidates,
			float64(nres.Stats.Candidates)/float64(max(1, st.Candidates)))
		if nres.Stats.Solutions != st.Solutions {
			return fmt.Errorf("BUG: naive and optimized disagree (%d vs %d)",
				nres.Stats.Solutions, st.Solutions)
		}
	}
	return nil
}

func parseIndex(name string) (spatialdb.IndexKind, error) {
	switch name {
	case "scan":
		return spatialdb.Scan, nil
	case "rtree":
		return spatialdb.RTree, nil
	case "point-rtree":
		return spatialdb.PointRTree, nil
	case "gridfile":
		return spatialdb.Grid, nil
	default:
		return 0, fmt.Errorf("unknown index %q", name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
