// Smuggler: the paper's §2 worked example, end to end on a generated map.
//
// Find a border town T, a road R from T into the destination area A that
// never crosses a state boundary (stays within a single state B). The
// program prints the compiled triangular form and bounding-box plan — the
// same derivation the paper walks through — then the solutions and the
// pruning statistics against the naive nested loop. Run with:
//
//	go run ./examples/smuggler
package main

import (
	"fmt"
	"log"
	"strings"

	boolq "repro"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func main() {
	// Generate the scenario: a country tiled by 3x3 states, towns on and
	// inside the border, and roads (a few of which are genuine smuggling
	// routes).
	m := workload.GenMap(workload.MapConfig{Seed: 1991})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	params := map[string]*boolq.Region{"C": m.Country, "A": m.Area}

	q := boolq.Smuggler()
	plan, err := boolq.Compile(q, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The paper's Figure 1 system, compiled:")
	fmt.Println(plan.Explain())

	res, err := plan.Run(store, params, boolq.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smuggling plans found: %d\n", len(res.Solutions))
	for i, sol := range res.Solutions {
		fmt.Printf("  %d. enter at %s, drive %s, staying inside %s\n",
			i+1, sol.Objects[0].Name, sol.Objects[1].Name, sol.Objects[2].Name)
	}

	naive, err := boolq.RunNaive(q, store, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("optimized: %6d tuples considered\n", res.Stats.Candidates)
	fmt.Printf("naive:     %6d tuples considered (%.1fx more)\n",
		naive.Stats.Candidates,
		float64(naive.Stats.Candidates)/float64(res.Stats.Candidates))
	if naive.Stats.Solutions != res.Stats.Solutions {
		log.Fatalf("BUG: solution counts disagree (%d vs %d)",
			naive.Stats.Solutions, res.Stats.Solutions)
	}
	fmt.Println("solution sets agree ✓")
}
