package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/bbox"
)

func univ2(x0, y0, x1, y1 float64) bbox.Box {
	return bbox.New([]float64{x0, y0}, []float64{x1, y1})
}

func TestHistogramEdges(t *testing.T) {
	h := newHistogram(0, 100, 10)
	for _, v := range []float64{-5, 0, 10, 55, 100, 250} {
		h.Add(v) // out-of-span values clamp into edge buckets
	}
	if h.N != 6 {
		t.Fatalf("N = %d, want 6", h.N)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF below span = %v, want 0", got)
	}
	if got := h.CDF(100); got != 1 {
		t.Errorf("CDF at top = %v, want 1", got)
	}
	if got := h.CCDF(0); got != 1 {
		t.Errorf("CCDF at bottom = %v, want 1", got)
	}
	if got := h.CCDF(101); got != 0 {
		t.Errorf("CCDF above span = %v, want 0", got)
	}
	for _, v := range []float64{-5, 0, 10, 55, 100, 250} {
		h.Remove(v)
	}
	if h.N != 0 {
		t.Fatalf("after paired removes N = %d, want 0", h.N)
	}
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatalf("after paired removes counts = %v, want all zero", h.Counts)
		}
	}
	h.Remove(3) // removing from empty must not underflow
	if h.N != 0 {
		t.Fatalf("remove on empty changed N to %d", h.N)
	}
}

func TestHistogramDegenerateSpan(t *testing.T) {
	h := newHistogram(7, 7, 10) // every value is the point 7
	h.Add(7)
	h.Add(7)
	if got := h.CDF(7); got != 1 {
		t.Errorf("degenerate CDF(7) = %v, want 1", got)
	}
	if got := h.CCDF(7); got != 1 {
		t.Errorf("degenerate CCDF(7) = %v, want 1", got)
	}
	if got := h.CDF(6.9); got != 0 {
		t.Errorf("degenerate CDF(6.9) = %v, want 0", got)
	}
	if got := h.CCDF(7.1); got != 0 {
		t.Errorf("degenerate CCDF(7.1) = %v, want 0", got)
	}
}

// On one axis the estimate uses the exact marginal decomposition; the
// only error sources are within-bucket interpolation and boundary point
// mass, each bounded by one bucket's worth of objects per constraint. A
// 1-D layer with one constraint must therefore track brute force within
// ±(count/buckets) per histogram consulted.
func TestEstimateSpecNearExact1D(t *testing.T) {
	uni := bbox.New([]float64{0}, []float64{320}) // bucket width 10
	s := NewLayer(uni)
	var boxes []bbox.Box
	for i := 0; i < 16; i++ {
		x := float64(i * 20)
		b := bbox.New([]float64{x}, []float64{x + 10})
		boxes = append(boxes, b)
		s.Add(b)
	}
	iv := func(lo, hi float64) bbox.Box { return bbox.New([]float64{lo}, []float64{hi}) }
	specs := []struct {
		spec bbox.RangeSpec
		tol  float64 // in objects; count/buckets = 0.5 per histogram read
	}{
		{bbox.RangeSpec{K: 1, Lower: bbox.Empty(1), Upper: iv(0, 105)}, 1},
		{bbox.RangeSpec{K: 1, Lower: iv(40, 50), Upper: bbox.Univ(1)}, 1},
		{bbox.RangeSpec{K: 1, Lower: bbox.Empty(1), Upper: bbox.Univ(1), Overlaps: []bbox.Box{iv(95, 205)}}, 2},
	}
	for i, tc := range specs {
		want := 0
		for _, b := range boxes {
			if tc.spec.Matches(b) {
				want++
			}
		}
		got := s.EstimateSpec(tc.spec)
		if math.Abs(got-float64(want)) > tc.tol {
			t.Errorf("spec %d: estimate %v, want %d ± %v", i, got, want, tc.tol)
		}
	}
	// A witness beyond every stored box must estimate exactly zero.
	miss := bbox.RangeSpec{K: 1, Lower: bbox.Empty(1), Upper: bbox.Univ(1), Overlaps: []bbox.Box{iv(500, 600)}}
	if got := s.EstimateSpec(miss); got != 0 {
		t.Errorf("disjoint witness estimate = %v, want 0", got)
	}
}

// Across axes the estimator assumes independence; for correlated data it
// must still stay finite, bounded by the count, and monotone in the
// constraint (a looser Upper can only admit more).
func TestEstimateSpecBoundedAndMonotone2D(t *testing.T) {
	s := NewLayer(univ2(0, 0, 320, 320))
	for i := 0; i < 16; i++ {
		x := float64(i * 20)
		s.Add(univ2(x, x, x+10, x+10)) // perfectly correlated diagonal
	}
	prev := -1.0
	for _, hi := range []float64{50, 100, 200, 320} {
		got := s.EstimateSpec(bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: univ2(0, 0, hi, hi)})
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > float64(s.Count()) {
			t.Fatalf("Upper [0,%g]: estimate %v out of [0,%d]", hi, got, s.Count())
		}
		if got < prev {
			t.Errorf("estimate not monotone: Upper [0,%g] → %v < previous %v", hi, got, prev)
		}
		prev = got
	}
	if prev != float64(s.Count()) {
		t.Errorf("estimate under whole-universe Upper = %v, want full count %d", prev, s.Count())
	}
}

func TestEstimateSpecDegenerateInputs(t *testing.T) {
	empty := NewLayer(univ2(0, 0, 100, 100))
	if got := empty.EstimateSpec(bbox.AllSpec(2)); got != 0 {
		t.Errorf("empty layer estimate = %v, want 0", got)
	}
	s := NewLayer(bbox.Univ(2)) // unbounded universe → clamped spans
	s.Add(univ2(1, 1, 2, 2))
	if got := s.EstimateSpec(bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Empty(2)}); got != 0 {
		t.Errorf("empty-Upper estimate = %v, want 0", got)
	}
	spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2), Overlaps: []bbox.Box{bbox.Empty(2)}}
	if got := s.EstimateSpec(spec); got != 0 {
		t.Errorf("empty-witness estimate = %v, want 0", got)
	}
	if got := s.EstimateSpec(bbox.AllSpec(2)); got != 1 {
		t.Errorf("AllSpec estimate = %v, want 1", got)
	}
	// Identical boxes on a degenerate (zero-width) universe span: the
	// point-mass histograms must report the exact hit and the exact miss.
	pt := NewLayer(univ2(3, 3, 4, 4))
	for i := 0; i < 5; i++ {
		pt.Add(univ2(3, 3, 4, 4))
	}
	hit := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: univ2(3, 3, 4, 4)}
	if got := pt.EstimateSpec(hit); math.Abs(got-5) > 1e-9 {
		t.Errorf("identical-box containment estimate = %v, want 5", got)
	}
	miss := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: bbox.Univ(2), Overlaps: []bbox.Box{univ2(5, 5, 6, 6)}}
	if got := pt.EstimateSpec(miss); got != 0 {
		t.Errorf("identical-box disjoint-witness estimate = %v, want 0", got)
	}
}

func TestMeanBoxAndGrid(t *testing.T) {
	s := NewLayer(univ2(0, 0, 160, 160))
	s.Add(univ2(0, 0, 10, 10))
	s.Add(univ2(20, 20, 30, 30))
	mean := s.MeanBox()
	want := univ2(10, 10, 20, 20)
	if !mean.Equal(want) {
		t.Errorf("mean box = %v, want %v", mean, want)
	}
	g := s.Grid()
	// cell width 10: first box covers cells (0,0)-(1,1), second (2,2)-(3,3).
	if occ := g.Occupied(); occ != 8 {
		t.Errorf("occupied cells = %d, want 8", occ)
	}
	if ml := g.MaxLoad(); ml != 1 {
		t.Errorf("max load = %d, want 1", ml)
	}
	s.Remove(univ2(20, 20, 30, 30))
	if occ := s.Grid().Occupied(); occ != 4 {
		t.Errorf("occupied after remove = %d, want 4", occ)
	}
	if s.Count() != 1 {
		t.Errorf("count after remove = %d, want 1", s.Count())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	uni := univ2(0, 0, 100, 100)
	s := NewLayer(uni)
	s.Add(univ2(1, 2, 3, 4))
	s.Add(univ2(50, 60, 70, 80))
	s.Add(univ2(10, 10, 90, 90))
	snap := s.Snapshot()

	// JSON round trip.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON Snapshot
	if err := json.Unmarshal(raw, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, fromJSON) {
		t.Fatal("JSON round trip changed the snapshot")
	}

	// Binary round trip.
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var fromBin Snapshot
	if err := fromBin.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, fromBin) {
		t.Fatal("binary round trip changed the snapshot")
	}

	// Restore into a fresh layer with the same universe reproduces s.
	fresh := NewLayer(uni)
	if !fresh.Restore(fromBin) {
		t.Fatal("compatible snapshot refused")
	}
	if !fresh.Equal(s) {
		t.Fatal("restored layer differs from original")
	}

	// Incompatible geometry (different universe span) is refused and
	// leaves the target unchanged.
	other := NewLayer(univ2(0, 0, 999, 999))
	other.Add(univ2(5, 5, 6, 6))
	before := other.Snapshot()
	if other.Restore(fromBin) {
		t.Fatal("incompatible snapshot accepted")
	}
	if !reflect.DeepEqual(before, other.Snapshot()) {
		t.Fatal("refused restore mutated the target")
	}

	// Truncated binary input errors rather than panicking.
	for cut := 0; cut < len(blob); cut += 7 {
		var junk Snapshot
		if err := junk.UnmarshalBinary(blob[:cut]); err == nil && cut < len(blob)-1 {
			// Short prefixes may decode only if they happen to be
			// self-consistent; the requirement is no panic.
			_ = junk
		}
	}
}
