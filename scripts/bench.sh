#!/usr/bin/env bash
# bench.sh — the tracked benchmark harness (`make bench`).
#
# Runs the trajectory benchmark set with -benchmem and writes the results
# as JSON (default BENCH_PR7.json) via scripts/benchjson, so every PR can
# compare ns/op, B/op and allocs/op against the committed baseline. The CI
# bench job runs this same script on the PR head and on main and prints a
# benchstat-style comparison.
#
# Environment knobs:
#   BENCH      benchmark regex        (default: the tracked E-set)
#   BENCHTIME  go test -benchtime     (default: 300ms)
#   COUNT      go test -count         (default: 3)
#   OUT        output JSON path       (default: BENCH_PR6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=${BENCH:-'BenchmarkE1Smuggler|BenchmarkE6Pruning|BenchmarkE12AdaptiveExecution|BenchmarkE9Join|BenchmarkE14Parallel|BenchmarkRegionOps|BenchmarkServiceQueryCached|BenchmarkWALAppend'}
BENCHTIME=${BENCHTIME:-300ms}
COUNT=${COUNT:-3}
OUT=${OUT:-BENCH_PR7.json}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
go run ./scripts/benchjson -go "$(go env GOVERSION)" -out "$OUT" < "$RAW"
echo "wrote $OUT"
