package lang

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/query"
)

// Parse parses a full query program:
//
//	find <var> in <layer> {, <var> in <layer>}
//	[given <var> {, <var>}]
//	where <constraint> {; <constraint>} [;]
//
// The result is a ready-to-compile query; the `given` clause declares the
// parameters the caller must bind at run time (it is also implicit: any
// variable used in constraints but not retrieved is a parameter).
func Parse(src string) (*query.Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, q: query.New()}
	if err := p.program(); err != nil {
		return nil, err
	}
	return p.q, nil
}

// ParseConstraints parses just a `;`-separated constraint list into the
// query's system (no find/given/where header). Useful for embedding.
func ParseConstraints(src string, q *query.Query) error {
	toks, err := Lex(src)
	if err != nil {
		return err
	}
	p := &parser{toks: toks, q: q}
	if err := p.constraints(); err != nil {
		return err
	}
	return p.expect(TokEOF)
}

type parser struct {
	toks []Token
	pos  int
	q    *query.Query
}

// cur and next clamp at the trailing EOF token so that error paths on
// truncated input never index past the stream.
func (p *parser) cur() Token { return p.at(p.pos) }

func (p *parser) at(i int) Token {
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind TokenKind) error {
	if p.cur().Kind != kind {
		return fmt.Errorf("lang: offset %d: unexpected %s", p.cur().Pos, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) program() error {
	if err := p.expect(TokFind); err != nil {
		return fmt.Errorf("lang: program must start with 'find': %w", err)
	}
	for {
		if p.cur().Kind != TokIdent {
			return fmt.Errorf("lang: offset %d: expected variable name, got %s", p.cur().Pos, p.cur())
		}
		v := p.next().Text
		if err := p.expect(TokIn); err != nil {
			return err
		}
		if p.cur().Kind != TokIdent {
			return fmt.Errorf("lang: offset %d: expected layer name, got %s", p.cur().Pos, p.cur())
		}
		layer := p.next().Text
		p.q.Sys.Var(v) // declare in retrieval order
		p.q.From(v, layer)
		if p.cur().Kind != TokComma {
			break
		}
		p.pos++
	}
	if p.cur().Kind == TokGiven {
		p.pos++
		for {
			if p.cur().Kind != TokIdent {
				return fmt.Errorf("lang: offset %d: expected parameter name, got %s", p.cur().Pos, p.cur())
			}
			p.q.Sys.Var(p.next().Text)
			if p.cur().Kind != TokComma {
				break
			}
			p.pos++
		}
	}
	if err := p.expect(TokWhere); err != nil {
		return fmt.Errorf("lang: missing 'where' clause: %w", err)
	}
	if err := p.constraints(); err != nil {
		return err
	}
	return p.expect(TokEOF)
}

// constraints parses `constraint {; constraint} [;]`.
func (p *parser) constraints() error {
	for {
		if err := p.constraint(); err != nil {
			return err
		}
		if p.cur().Kind != TokSemi {
			return nil
		}
		p.pos++
		if p.cur().Kind == TokEOF {
			return nil // trailing semicolon
		}
	}
}

// constraint := disjoint(f,g) | overlaps(f,g) | expr (<=|!<=|=|!=) expr
func (p *parser) constraint() error {
	if p.cur().Kind == TokIdent && (p.cur().Text == "disjoint" || p.cur().Text == "overlaps") &&
		p.at(p.pos+1).Kind == TokLParen {
		name := p.next().Text
		p.pos++ // (
		f, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(TokComma); err != nil {
			return err
		}
		g, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(TokRParen); err != nil {
			return err
		}
		if name == "disjoint" {
			p.q.Sys.Disjoint(f, g)
		} else {
			p.q.Sys.Overlap(f, g)
		}
		return nil
	}
	lhs, err := p.expr()
	if err != nil {
		return err
	}
	op := p.next()
	rhs, err := p.expr()
	if err != nil {
		return err
	}
	switch op.Kind {
	case TokLeq:
		p.q.Sys.Subset(lhs, rhs)
	case TokNLeq:
		p.q.Sys.NotSubset(lhs, rhs)
	case TokEq:
		p.q.Sys.Equal(lhs, rhs)
	case TokNeq:
		p.q.Sys.NotEqual(lhs, rhs)
	default:
		return fmt.Errorf("lang: offset %d: expected constraint operator, got %s", op.Pos, op)
	}
	return nil
}

// expr := term {'|' term}
func (p *parser) expr() (*formula.Formula, error) {
	f, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		p.pos++
		g, err := p.term()
		if err != nil {
			return nil, err
		}
		f = formula.Or(f, g)
	}
	return f, nil
}

// term := factor {'&' factor}
func (p *parser) term() (*formula.Formula, error) {
	f, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		p.pos++
		g, err := p.factor()
		if err != nil {
			return nil, err
		}
		f = formula.And(f, g)
	}
	return f, nil
}

// factor := '~' factor | '(' expr ')' | ident | 0 | 1
func (p *parser) factor() (*formula.Formula, error) {
	switch t := p.next(); t.Kind {
	case TokNot:
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		return formula.Not(f), nil
	case TokLParen:
		f, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case TokIdent:
		return p.q.Sys.Var(t.Text), nil
	case TokZero:
		return formula.Zero(), nil
	case TokOne:
		return formula.One(), nil
	default:
		return nil, fmt.Errorf("lang: offset %d: expected formula, got %s", t.Pos, t)
	}
}
