// Package walcheck enforces the durable-write protocol (PR 6) and the
// stats-maintenance contract (PR 7) on store mutation entry points. A
// function annotated //boolq:mutation must:
//
//  1. call the WAL append (default s.logMutation) at least once,
//  2. use its error — assigning to blank or dropping the result
//     silently discards ErrDurability,
//  3. log while a write lock is held (WAL order must equal apply
//     order; logging after unlock races concurrent mutators),
//  4. log after the epoch bump (the log entry describes an applied
//     mutation),
//  5. reach statistics maintenance — a call to a //boolq:statsink
//     function (internal/stats Add/Remove), directly or through
//     same-package helpers — unless annotated `//boolq:mutation
//     nostats` (layer creation has no per-object stats to touch),
//  6. pass the degraded-mode admission gate (default
//     s.admitMutationLocked, PR 9) before the WAL call — a degraded
//     store must reject the mutation before anything is applied, or
//     memory diverges from the log during repair,
//  7. never invoke the mutation sink field directly — the sink belongs
//     to logMutation, whose wrapper is what routes failures through
//     the retry/degrade machinery instead of raw ErrDurability.
//
// Replay paths (ApplyMutation) are deliberately not annotated: relogging
// during recovery would duplicate the tail.
//
// Replica-apply entry points — functions applying a primary's shipped
// records on a read replica (PR 10) — are annotated `//boolq:mutation
// replica` and carry an inverted contract: the record is already durable
// on the primary and the local admission gate exists to turn local
// writes away, so a replica-apply must NOT call the WAL append, NOT
// invoke the sink, and NOT pass the admission gate (it would reject
// every record once the replica gate is raised). It must still apply
// through the shared replay body (default applyMutationLocked) under a
// write lock, and still reach statistics maintenance unless `nostats`.
package walcheck

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var flags = flag.NewFlagSet("walcheck", flag.ContinueOnError)

// logFn is the method name that appends to the WAL sink.
var logFn = flags.String("logfn", "logMutation", "method name of the WAL append")

// guardFn is the degraded-mode admission gate every mutation must pass
// before its WAL call.
var guardFn = flags.String("guardfn", "admitMutationLocked", "method name of the degraded-mode admission gate")

// sinkField is the mutation-sink field only logFn may invoke.
var sinkField = flags.String("sinkfield", "sink", "field name of the raw mutation sink")

// applyFn is the shared replay body a `//boolq:mutation replica` entry
// point must invoke under the write lock.
var applyFn = flags.String("applyfn", "applyMutationLocked", "method name of the shared replay body replica applies go through")

// Analyzer is the walcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "walcheck",
	Doc:   "check //boolq:mutation entry points log to the WAL under the write lock, propagate the error, and maintain stats",
	Flags: flags,
	Run:   run,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.CollectDirectives(pass.Fset, pass.Files)

	// Export statsink facts (and collect the local set) first, so both
	// same-package and importing mutation entry points can prove their
	// stats call.
	sinks := map[types.Object]bool{}
	decls := map[string][]*ast.FuncDecl{} // name → decls (methods may collide; all are candidates)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[fn.Name.Name] = append(decls[fn.Name.Name], fn)
			if _, ok := dirs.Func(fn, "statsink"); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					sinks[obj] = true
					pass.ExportFact(analysis.FuncSymbol(obj))
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			dir, ok := dirs.Func(fn, "mutation")
			if !ok {
				continue
			}
			nostats, replica := false, false
			for _, a := range dir.Args {
				switch a {
				case "nostats":
					nostats = true
				case "replica":
					replica = true
				}
			}
			if replica {
				checkReplicaMutation(pass, decls, sinks, fn, nostats)
			} else {
				checkMutation(pass, decls, sinks, fn, nostats)
			}
		}
	}
	return nil
}

func checkMutation(pass *analysis.Pass, decls map[string][]*ast.FuncDecl, sinks map[types.Object]bool, fn *ast.FuncDecl, nostats bool) {
	var (
		logCalls []logCall
		epochPos = token.NoPos
		guardPos = token.NoPos
	)

	// Walk with lock tracking so each WAL call knows the lock state at
	// its site.
	h := analysis.LockHandler{
		Call: func(call *ast.CallExpr, st *analysis.LockState) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case *logFn:
				logCalls = append(logCalls, logCall{call: call, writeLocked: anyWriteHeld(st)})
			case *guardFn:
				if guardPos == token.NoPos || call.Pos() < guardPos {
					guardPos = call.Pos()
				}
			case *sinkField:
				// A direct s.sink(m) call bypasses logMutation's wrapper —
				// the layer that turns raw sink failures into the
				// retry/degrade protocol.
				pass.Reportf(call.Pos(), "mutation sink %s invoked directly; route through %s so failures go through retry/degrade instead of raw ErrDurability", *sinkField, *logFn)
			case "Add":
				// epoch bump: <recv>.epoch.Add(1)
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "epoch" {
					if epochPos == token.NoPos || call.Pos() < epochPos {
						epochPos = call.Pos()
					}
				}
			}
		},
	}
	lits := analysis.WalkLocks(fn.Body, analysis.NewLockState(), h)
	for i := 0; i < len(lits); i++ {
		lits = append(lits, analysis.WalkLocks(lits[i].Body, analysis.NewLockState(), h)...)
	}

	if len(logCalls) == 0 {
		pass.Reportf(fn.Name.Pos(), "//boolq:mutation %s never calls %s: the mutation would not survive a crash", fn.Name.Name, *logFn)
		return
	}
	if guardPos == token.NoPos {
		pass.Reportf(fn.Name.Pos(), "//boolq:mutation %s never calls %s: a degraded store must reject the mutation before anything is applied", fn.Name.Name, *guardFn)
	}
	for _, lc := range logCalls {
		if guardPos != token.NoPos && lc.call.Pos() < guardPos {
			pass.Reportf(lc.call.Pos(), "%s called before the %s gate; degraded mode must be checked before the mutation is logged", *logFn, *guardFn)
		}
		if !lc.writeLocked {
			pass.Reportf(lc.call.Pos(), "%s called without holding a write lock; WAL order may diverge from apply order", *logFn)
		}
		if epochPos == token.NoPos || lc.call.Pos() < epochPos {
			pass.Reportf(lc.call.Pos(), "%s called before the epoch bump; log after the mutation is applied", *logFn)
		}
		if !errorUsed(fn.Body, lc.call) {
			pass.Reportf(lc.call.Pos(), "%s error discarded; ErrDurability must propagate to the caller", *logFn)
		}
	}

	if !nostats && !reachesSink(pass, decls, sinks, fn, map[*ast.FuncDecl]bool{}, 0) {
		pass.Reportf(fn.Name.Pos(), "//boolq:mutation %s never reaches a //boolq:statsink call; planner statistics would go stale (use `//boolq:mutation nostats` only if no per-object stats change)", fn.Name.Name)
	}
}

// checkReplicaMutation enforces the inverted contract of a
// `//boolq:mutation replica` entry point: no WAL append (the record is
// already durable on the primary), no direct sink use, no local
// admission gate (it would reject every shipped record once the replica
// gate is raised), and at least one call to the shared replay body under
// a write lock. Stats reachability is shared with the local contract:
// replica applies feed the same planner statistics.
func checkReplicaMutation(pass *analysis.Pass, decls map[string][]*ast.FuncDecl, sinks map[types.Object]bool, fn *ast.FuncDecl, nostats bool) {
	applies := 0
	h := analysis.LockHandler{
		Call: func(call *ast.CallExpr, st *analysis.LockState) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case *logFn:
				pass.Reportf(call.Pos(), "replica apply %s calls %s; shipped records are already durable on the primary and relogging them would duplicate the stream", fn.Name.Name, *logFn)
			case *sinkField:
				pass.Reportf(call.Pos(), "replica apply %s invokes the mutation sink %s; a replica owns no WAL", fn.Name.Name, *sinkField)
			case *guardFn:
				pass.Reportf(call.Pos(), "replica apply %s passes the %s gate; the gate rejects local writes and would turn away every shipped record in replica mode", fn.Name.Name, *guardFn)
			case *applyFn:
				applies++
				if !anyWriteHeld(st) {
					pass.Reportf(call.Pos(), "%s called without holding a write lock; replica applies must not interleave with readers", *applyFn)
				}
			}
		},
	}
	lits := analysis.WalkLocks(fn.Body, analysis.NewLockState(), h)
	for i := 0; i < len(lits); i++ {
		lits = append(lits, analysis.WalkLocks(lits[i].Body, analysis.NewLockState(), h)...)
	}
	if applies == 0 {
		pass.Reportf(fn.Name.Pos(), "//boolq:mutation replica %s never calls %s: shipped records must go through the shared replay body", fn.Name.Name, *applyFn)
	}
	if !nostats && !reachesSink(pass, decls, sinks, fn, map[*ast.FuncDecl]bool{}, 0) {
		pass.Reportf(fn.Name.Pos(), "//boolq:mutation %s never reaches a //boolq:statsink call; planner statistics would go stale (use `//boolq:mutation nostats` only if no per-object stats change)", fn.Name.Name)
	}
}

type logCall struct {
	call        *ast.CallExpr
	writeLocked bool
}

func anyWriteHeld(st *analysis.LockState) bool {
	return st.AnyWriteHeld()
}

// errorUsed reports whether call's result is consumed: anything but a
// bare expression statement or an all-blank assignment counts.
func errorUsed(body *ast.BlockStmt, call *ast.CallExpr) bool {
	used := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if n.X == call {
				used = false
				return false
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if r != call {
					continue
				}
				// Single-value assignment to blank(s) is a discard.
				allBlank := true
				if len(n.Rhs) == 1 {
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
							allBlank = false
						}
					}
				} else if id, ok := n.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
				if allBlank {
					used = false
				}
				return false
			}
		}
		return true
	})
	return used
}

// reachesSink reports whether fn (or a same-package callee, through a
// shallow call graph) calls a statsink function — locally annotated or
// exported as a fact by another package (internal/stats). visiting
// guards against cycles; depth bounds one exploration path (name-based
// resolution fans out over same-named methods, so the bound is per
// path, not a global budget).
func reachesSink(pass *analysis.Pass, decls map[string][]*ast.FuncDecl, sinks map[types.Object]bool, fn *ast.FuncDecl, visiting map[*ast.FuncDecl]bool, depth int) bool {
	if visiting[fn] || depth > 6 {
		return false
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pass.TypesInfo, call)
		if callee != nil {
			if sinks[callee] || pass.HasFact(analysis.FuncSymbol(callee)) {
				found = true
				return false
			}
		}
		// Same-package recursion by name (methods included).
		name := calleeName(call)
		for _, cand := range decls[name] {
			if cand.Body == nil {
				continue
			}
			if reachesSink(pass, decls, sinks, cand, visiting, depth+1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
