// Command boolqd serves constraint queries over HTTP: the boolq pipeline
// (normalize → triangularize → bounding-box plans → incremental
// execution) behind a concurrent JSON API with a compiled-plan cache.
//
//	boolqd -demo                          # serve the generated smuggler map
//	boolqd -snapshot db.json              # serve a saved store
//	boolqd -addr :9000 -index gridfile -workers 8
//
// Try it:
//
//	curl localhost:8080/layers
//	curl -X POST localhost:8080/query -d '{
//	  "query": "find T in towns given C where T !<= C",
//	  "params": {"C": {"boxes": [{"lo": [100,100], "hi": [900,900]}]}}
//	}'
//	curl -X POST localhost:8080/layers/towns/objects:bulk -d '[
//	  {"name": "t1", "boxes": [{"lo": [10,10], "hi": [20,20]}]},
//	  {"name": "t2", "boxes": [{"lo": [30,30], "hi": [40,40]}]}
//	]'
//	curl localhost:8080/stats
//
// See docs/API.md for the full endpoint reference (including the bulk
// ingestion and streaming batch-query endpoints), internal/server for
// the implementation, and DESIGN.md for how the service layers over the
// library.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bbox"
	"repro/internal/server"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "boolqd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		indexName = flag.String("index", "rtree", "index backend: scan|rtree|point-rtree|gridfile|zorder")
		snapshot  = flag.String("snapshot", "", "store snapshot to load at startup (JSON, see /snapshot)")
		universe  = flag.String("universe", "0,0,1000,1000", "universe box x0,y0,x1,y1 when starting empty")
		workers   = flag.Int("workers", 0, "default query parallelism (requests may override)")
		batchWork = flag.Int("batch-workers", server.DefaultBatchWorkers,
			"default /query/batch worker-pool size (requests may override)")
		cacheSize    = flag.Int("cache-size", server.DefaultCacheSize, "plan cache capacity")
		queryTimeout = flag.Duration("query-timeout", server.DefaultQueryTimeout,
			"server-side bound on each query execution (requests may tighten it via timeout_ms)")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second,
			"http.Server.ReadHeaderTimeout: max time to receive request headers (slowloris guard)")
		readTimeout = flag.Duration("read-timeout", 2*time.Minute,
			"http.Server.ReadTimeout: max time to receive a full request including its body")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute,
			"http.Server.IdleTimeout: max keep-alive idle time between requests")
		demo  = flag.Bool("demo", false, "populate the generated §2 smuggler map instead of starting empty")
		seed  = flag.Uint64("seed", 42, "demo map seed")
		scale = flag.Int("scale", 1, "demo map size multiplier")
	)
	flag.Parse()

	kind, err := parseIndex(*indexName)
	if err != nil {
		return err
	}
	store, err := openStore(*snapshot, *universe, kind, *demo, *seed, *scale)
	if err != nil {
		return err
	}
	for _, name := range store.LayerNames() {
		l := store.Layer(name)
		log.Printf("layer %q: %d objects (%s)", name, l.Len(), l.Kind())
	}

	srv := server.New(store, server.Options{
		CacheSize: *cacheSize, Workers: *workers, BatchWorkers: *batchWork,
		QueryTimeout: *queryTimeout,
	})
	// No WriteTimeout: /query/batch and /query?stream=1 responses are
	// long-lived streams; execution time is bounded per query by
	// -query-timeout instead, and dead clients are detected through the
	// request context.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("boolqd listening on %s (index %s, plan cache %d, workers %d)",
			*addr, kind, *cacheSize, *workers)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

func openStore(snapshot, universe string, kind spatialdb.IndexKind, demo bool, seed uint64, scale int) (*spatialdb.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		store, err := spatialdb.Load(f, kind)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s", snapshot)
		return store, nil
	}
	if demo {
		m := workload.GenMap(workload.MapConfig{
			Seed:  seed,
			Towns: 12 * scale, Interior: 12 * scale, Roads: 30 * scale,
		})
		store := spatialdb.NewStore(m.Config.Universe, kind)
		m.Populate(store)
		log.Printf("generated demo map (seed %d, scale %d); parameters C=%v A=%v",
			seed, scale, m.Country.BoundingBox(), m.Area.BoundingBox())
		return store, nil
	}
	u, err := parseUniverse(universe)
	if err != nil {
		return nil, err
	}
	return spatialdb.NewStore(u, kind), nil
}

func parseUniverse(s string) (bbox.Box, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return bbox.Box{}, fmt.Errorf("universe: want x0,y0,x1,y1, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return bbox.Box{}, fmt.Errorf("universe: %w", err)
		}
		vals[i] = v
	}
	u := bbox.Rect(vals[0], vals[1], vals[2], vals[3])
	if u.IsEmpty() {
		return bbox.Box{}, fmt.Errorf("universe: empty box %q", s)
	}
	return u, nil
}

func parseIndex(name string) (spatialdb.IndexKind, error) {
	for _, k := range []spatialdb.IndexKind{
		spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
		spatialdb.Grid, spatialdb.ZOrderIdx,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index backend %q", name)
}
