package errflow

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestErrflow(t *testing.T) {
	if err := Analyzer.Flags.Set("pkgs", "e"); err != nil {
		t.Fatal(err)
	}
	defer Analyzer.Flags.Set("pkgs", "repro/internal/server")
	atest.Run(t, Analyzer, "e")
}
