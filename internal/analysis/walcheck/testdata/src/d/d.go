// Fixture for walcheck: a //boolq:mutation entry point must pass the
// degraded-mode admission gate, log to the WAL under the write lock,
// after the epoch bump, with the error used, must reach a
// //boolq:statsink call, and must never invoke the raw sink directly.
package d

import (
	"sync"
	"sync/atomic"
)

type stats struct{ n int }

//boolq:statsink
func (st *stats) Add(n int) { st.n += n }

//boolq:statsink
func (st *stats) Remove(n int) { st.n -= n }

type store struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
	data  *stats
	objs  map[int]int
	sink  func(int) error
}

func (s *store) logMutation(op int) error { return nil }

func (s *store) admitMutationLocked() error { return nil }

// GoodInsert is the shape every mutation should have.
//
//boolq:mutation
func (s *store) GoodInsert(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return err
	}
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
	return s.logMutation(k)
}

//boolq:mutation
func (s *store) BadNoLog(k, v int) { // want `BadNoLog never calls logMutation`
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.admitMutationLocked()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
}

//boolq:mutation
func (s *store) BadDropError(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.admitMutationLocked()
	s.data.Add(1)
	s.epoch.Add(1)
	_ = s.logMutation(k) // want `logMutation error discarded`
}

//boolq:mutation
func (s *store) BadOutsideLock(k int) error {
	s.mu.Lock()
	_ = s.admitMutationLocked()
	s.data.Add(1)
	s.epoch.Add(1)
	s.mu.Unlock()
	return s.logMutation(k) // want `logMutation called without holding a write lock`
}

//boolq:mutation
func (s *store) BadBeforeEpoch(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.admitMutationLocked()
	s.data.Add(1)
	err := s.logMutation(k) // want `logMutation called before the epoch bump`
	s.epoch.Add(1)
	return err
}

//boolq:mutation
func (s *store) BadNoStats(k, v int) error { // want `BadNoStats never reaches a //boolq:statsink call`
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.admitMutationLocked()
	s.objs[k] = v
	s.epoch.Add(1)
	return s.logMutation(k)
}

// BadNoGuard applies and logs without ever consulting the degraded
// gate: while the WAL is being repaired, this path would keep mutating
// memory the log cannot capture.
//
//boolq:mutation
func (s *store) BadNoGuard(k, v int) error { // want `BadNoGuard never calls admitMutationLocked`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
	return s.logMutation(k)
}

// BadGuardAfterLog checks the gate only after the record is already
// appended — too late for a degraded store to reject the mutation.
//
//boolq:mutation
func (s *store) BadGuardAfterLog(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
	err := s.logMutation(k) // want `logMutation called before the admitMutationLocked gate`
	if err == nil {
		err = s.admitMutationLocked()
	}
	return err
}

// BadDirectSink bypasses logMutation's wrapper, so a sink failure
// surfaces as raw ErrDurability instead of entering retry/degrade.
//
//boolq:mutation
func (s *store) BadDirectSink(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return err
	}
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
	if err := s.logMutation(k); err != nil {
		return err
	}
	return s.sink(k) // want `mutation sink sink invoked directly`
}

// GoodCreate is the near miss: nostats waives the stats rule for
// mutations with no per-object statistics to touch.
//
//boolq:mutation nostats
func (s *store) GoodCreate(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return err
	}
	s.epoch.Add(1)
	return s.logMutation(k)
}

// GoodViaHelper reaches the sink through a same-package helper, and
// its log call sits in an if-init — both shapes the real store uses.
//
//boolq:mutation
func (s *store) GoodViaHelper(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil {
		return err
	}
	s.commit(k, v)
	s.epoch.Add(1)
	if err := s.logMutation(k); err != nil {
		return err
	}
	return nil
}

func (s *store) commit(k, v int) {
	s.objs[k] = v
	s.data.Add(1)
}

// Replay entry points are deliberately unannotated: relogging during
// recovery would duplicate the WAL tail. The sink ban and the guard
// rule do not apply here either — replay happens while the normal
// mutation path is closed.
func (s *store) ApplyMutation(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
}

// applyMutationLocked is the shared replay body replica applies must go
// through; it reaches the statsink via commit.
func (s *store) applyMutationLocked(k, v int) error {
	s.commit(k, v)
	s.epoch.Add(1)
	return nil
}

// GoodReplicaApply is the shape a replica-apply entry point should
// have: write lock, shared replay body, no logging, no gate.
//
//boolq:mutation replica
func (s *store) GoodReplicaApply(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyMutationLocked(k, v)
}

// BadReplicaRelog ships the record back into the local WAL: the stream
// would be duplicated on every hop.
//
//boolq:mutation replica
func (s *store) BadReplicaRelog(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyMutationLocked(k, v); err != nil {
		return err
	}
	return s.logMutation(k) // want `replica apply BadReplicaRelog calls logMutation`
}

// BadReplicaGate passes the local admission gate, which rejects every
// mutation once the replica gate is raised — the stream would stall.
//
//boolq:mutation replica
func (s *store) BadReplicaGate(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitMutationLocked(); err != nil { // want `replica apply BadReplicaGate passes the admitMutationLocked gate`
		return err
	}
	return s.applyMutationLocked(k, v)
}

// BadReplicaNoLock applies outside the write lock, interleaving with
// readers.
//
//boolq:mutation replica
func (s *store) BadReplicaNoLock(k, v int) error {
	return s.applyMutationLocked(k, v) // want `applyMutationLocked called without holding a write lock`
}

// BadReplicaNoApply mutates by hand instead of going through the shared
// replay body.
//
//boolq:mutation replica
func (s *store) BadReplicaNoApply(k, v int) { // want `BadReplicaNoApply never calls applyMutationLocked`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[k] = v
	s.data.Add(1)
	s.epoch.Add(1)
}

// BadReplicaSink invokes the raw sink from the replica path.
//
//boolq:mutation replica
func (s *store) BadReplicaSink(k, v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyMutationLocked(k, v); err != nil {
		return err
	}
	return s.sink(k) // want `replica apply BadReplicaSink invokes the mutation sink sink`
}
