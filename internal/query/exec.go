package query

import (
	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// Run executes the compiled plan: parameters are bound, the ground
// (parameter-only) residual is checked once, then solution tuples are
// built incrementally with per-step range queries and filters per opts.
// Every complete tuple is verified against the original system in the
// exact region algebra regardless of opts, so all configurations return
// the same solutions.
func (p *Plan) Run(store *spatialdb.Store, params map[string]*region.Region, opts Options) (*Result, error) {
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(p.Query, alg, params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	store.ResetStats()
	defer func() { res.Stats.DB = store.TotalStats() }()

	if p.Form.Unsat {
		res.Stats.GroundFailed = true
		return res, nil
	}
	if !p.Form.Ground.Satisfied(alg, env) {
		res.Stats.GroundFailed = true
		return res, nil
	}

	k := store.K()
	envBox := make([]bbox.Box, p.Query.Sys.Vars.Len())
	for v := range envBox {
		if env[v] != nil {
			envBox[v] = env[v].(*region.Region).BoundingBox()
		}
	}
	tuple := make([]spatialdb.Object, len(p.Steps))

	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Steps) {
			res.Stats.FinalChecked++
			if p.Query.Sys.Satisfied(alg, env) {
				res.Stats.Solutions++
				objs := append([]spatialdb.Object(nil), tuple...)
				res.Solutions = append(res.Solutions, Solution{Objects: objs})
			} else {
				res.Stats.FinalRejected++
			}
			return
		}
		sp := p.Steps[i]
		step := p.Form.Steps[i]
		layer := store.Layer(sp.Layer)

		consider := func(o spatialdb.Object) bool {
			res.Stats.Candidates++
			if opts.UseExact && !step.Satisfied(alg, env, o.Reg) {
				res.Stats.ExactRejects++
				return true
			}
			res.Stats.Extended++
			tuple[i] = o
			env[sp.Var] = o.Reg
			envBox[sp.Var] = o.Box
			rec(i + 1)
			env[sp.Var] = nil
			envBox[sp.Var] = bbox.Box{}
			return true
		}

		if opts.UseIndex {
			spec, ok := sp.Spec(k, envBox)
			if !ok {
				return // this prefix admits no extension
			}
			layer.Search(spec, consider)
		} else {
			layer.All(consider)
		}
	}
	rec(0)
	return res, nil
}

// CompileAndRun is the one-call convenience: compile with Compile, execute
// with DefaultOptions.
func CompileAndRun(q *Query, store *spatialdb.Store, params map[string]*region.Region) (*Result, error) {
	plan, err := Compile(q, store)
	if err != nil {
		return nil, err
	}
	return plan.Run(store, params, DefaultOptions)
}
