// Package region implements a rectilinear region algebra over R^k: regions
// are finite unions of axis-parallel boxes, identified up to null sets.
//
// This is the paper's spatial data model: the Boolean algebra of measurable
// subsets of R^k modulo "equal almost everywhere" (§3), which is *atomless*
// — every nonempty region has a proper nonempty subregion — and therefore
// admits exact quantifier elimination for constraint systems (Theorems 5–6).
// Restricting to rectilinear regions keeps every operation exact and
// decidable while preserving atomlessness in every way the engine relies
// on: regions can always be split (Split), and emptiness means zero
// measure, so lower-dimensional artifacts of the closed-box representation
// (shared faces, degenerate slivers) do not count.
//
// The invariant throughout: a Region's boxes are pairwise interior-disjoint
// and all have positive volume, so Measure is a plain sum.
//
// DESIGN.md §2 ("Foundations") places this package in the module map.
package region

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bbox"
)

// Region is a finite union of interior-disjoint positive-volume boxes.
// The zero value is the empty region in 0 dimensions; use Empty(k) for a
// typed empty region.
type Region struct {
	k     int
	boxes []bbox.Box
}

// Empty returns the empty region in k dimensions.
func Empty(k int) *Region { return &Region{k: k} }

// FromBox returns the region consisting of a single box (empty if the box
// is empty or degenerate).
func FromBox(b bbox.Box) *Region {
	r := &Region{k: b.K}
	if positiveVolume(b) {
		r.boxes = []bbox.Box{b}
	}
	return r
}

// FromBoxes returns the union of the given (possibly overlapping) boxes.
func FromBoxes(k int, boxes ...bbox.Box) *Region {
	r := Empty(k)
	for _, b := range boxes {
		r = r.Union(FromBox(b))
	}
	return r
}

// K returns the dimensionality.
func (r *Region) K() int { return r.k }

// Boxes returns a copy of the disjoint box decomposition.
func (r *Region) Boxes() []bbox.Box {
	return append([]bbox.Box(nil), r.boxes...)
}

// NumBoxes returns the size of the decomposition (a complexity measure).
func (r *Region) NumBoxes() int { return len(r.boxes) }

// IsEmpty reports whether the region has measure zero.
func (r *Region) IsEmpty() bool { return len(r.boxes) == 0 }

// Measure returns the k-dimensional volume.
func (r *Region) Measure() float64 {
	m := 0.0
	for _, b := range r.boxes {
		m += b.Volume()
	}
	return m
}

// BoundingBox returns ⌈r⌉, the minimal enclosing box.
func (r *Region) BoundingBox() bbox.Box {
	return bbox.JoinAll(r.k, r.boxes...)
}

// positiveVolume reports whether b has strictly positive volume (nonempty
// interior).
//
//boolq:noalloc
func positiveVolume(b bbox.Box) bool {
	if b.IsEmpty() {
		return false
	}
	for i := 0; i < b.K; i++ {
		if b.Hi[i] <= b.Lo[i] {
			return false
		}
	}
	return true
}

// subtractBox returns the interior-disjoint decomposition of a \ b as up
// to 2k boxes (the classical slab split).
func subtractBox(a, b bbox.Box) []bbox.Box {
	return appendSubtractBox(nil, a, b)
}

// appendSubtractBox appends the decomposition of a \ b to dst and returns
// it — the executor-facing form of subtractBox, allocating only for the
// emitted slabs (and, for a untouched by b, not even that: a itself is
// appended). The per-call working bounds live on the stack for k ≤ 4.
//
//boolq:noalloc
func appendSubtractBox(dst []bbox.Box, a, b bbox.Box) []bbox.Box {
	if !positiveVolume(a) {
		return dst
	}
	// Compute the interior overlap of a and b without materializing it.
	overlap := positiveVolume(b)
	if overlap {
		for i := 0; i < a.K; i++ {
			if math.Max(a.Lo[i], b.Lo[i]) >= math.Min(a.Hi[i], b.Hi[i]) {
				overlap = false
				break
			}
		}
	}
	if !overlap {
		return append(dst, a) //boolq:allowalloc emitted result: dst is the caller's reusable buffer
	}
	// cur tracks the shrinking remainder of a; stack-allocated up to 4-D.
	var loArr, hiArr [4]float64
	var curLo, curHi []float64
	if a.K <= len(loArr) {
		curLo, curHi = loArr[:a.K], hiArr[:a.K]
	} else {
		curLo, curHi = make([]float64, a.K), make([]float64, a.K) //boolq:allowalloc k > 4 falls off the stack-array fast path
	}
	copy(curLo, a.Lo)
	copy(curHi, a.Hi)
	for i := 0; i < a.K; i++ {
		ilo := math.Max(a.Lo[i], b.Lo[i])
		ihi := math.Min(a.Hi[i], b.Hi[i])
		if ilo > curLo[i] {
			dst = appendSlab(dst, curLo, curHi, i, curLo[i], ilo)
			curLo[i] = ilo
		}
		if ihi < curHi[i] {
			dst = appendSlab(dst, curLo, curHi, i, ihi, curHi[i])
			curHi[i] = ihi
		}
	}
	return dst
}

// appendSlab appends the box (curLo, curHi) with dimension i replaced by
// [lo, hi], skipping degenerate slabs.
//
//boolq:noalloc
func appendSlab(dst []bbox.Box, curLo, curHi []float64, i int, lo, hi float64) []bbox.Box {
	if hi <= lo {
		return dst
	}
	for d := range curLo {
		if d != i && curHi[d] <= curLo[d] {
			return dst
		}
	}
	slab := bbox.Box{ //boolq:allowalloc emitted slab: the decomposition output the caller keeps
		K:  len(curLo),
		Lo: append([]float64(nil), curLo...), //boolq:allowalloc emitted slab owns its bounds
		Hi: append([]float64(nil), curHi...), //boolq:allowalloc emitted slab owns its bounds
	}
	slab.Lo[i], slab.Hi[i] = lo, hi
	return append(dst, slab) //boolq:allowalloc emitted result: dst is the caller's reusable buffer
}

func cloneBox(b bbox.Box) bbox.Box {
	return bbox.Box{
		K:  b.K,
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

// Difference returns r \ s. Subtrahend boxes that touch no box of the
// running remainder are skipped outright, and the remainder ping-pongs
// between two buffers instead of allocating a fresh slice per subtrahend
// box — regions untouched by s come back as r itself, allocation-free.
func (r *Region) Difference(s *Region) *Region {
	r.checkDim(s)
	if r.IsEmpty() || s.IsEmpty() {
		return r
	}
	cur := r.boxes
	changed := false
	var bufA, bufB []bbox.Box
	useA := true
	for _, sb := range s.boxes {
		if !overlapsAny(sb, cur) {
			continue
		}
		out := bufB[:0]
		if useA {
			out = bufA[:0]
		}
		for _, rb := range cur {
			out = appendSubtractBox(out, rb, sb)
		}
		if useA {
			bufA = out
		} else {
			bufB = out
		}
		useA = !useA
		cur, changed = out, true
		if len(cur) == 0 {
			break
		}
	}
	if !changed {
		return r
	}
	out := &Region{k: r.k, boxes: cur}
	out.compact()
	return out
}

// interiorOverlaps reports that a ⊓ b has positive volume, allocating
// nothing.
func interiorOverlaps(a, b bbox.Box) bool {
	for i := 0; i < a.K; i++ {
		if a.Lo[i] >= b.Hi[i] || b.Lo[i] >= a.Hi[i] {
			return false
		}
	}
	return true
}

// overlapsAny reports whether b's interior meets any box in boxes.
func overlapsAny(b bbox.Box, boxes []bbox.Box) bool {
	for _, rb := range boxes {
		if interiorOverlaps(b, rb) {
			return true
		}
	}
	return false
}

// Union returns r ∪ s.
func (r *Region) Union(s *Region) *Region {
	r.checkDim(s)
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	diff := s.Difference(r)
	out := &Region{k: r.k, boxes: append(append([]bbox.Box(nil), r.boxes...), diff.boxes...)}
	out.compact()
	return out
}

// Intersect returns r ∩ s. Box pairs without interior overlap are skipped
// before any allocation happens.
func (r *Region) Intersect(s *Region) *Region {
	r.checkDim(s)
	var out []bbox.Box
	for _, rb := range r.boxes {
		for _, sb := range s.boxes {
			if !interiorOverlaps(rb, sb) {
				continue
			}
			out = append(out, rb.Meet(sb))
		}
	}
	res := &Region{k: r.k, boxes: out}
	res.compact()
	return res
}

// ComplementIn returns universe \ r.
func (r *Region) ComplementIn(universe bbox.Box) *Region {
	return FromBox(universe).Difference(r)
}

// Equal reports equality up to null sets.
func (r *Region) Equal(s *Region) bool {
	return r.Difference(s).IsEmpty() && s.Difference(r).IsEmpty()
}

// Leq reports r ⊑ s up to null sets. A box of r that misses every box of
// s refutes containment immediately, without materializing the difference
// — the common case for the executor's per-candidate exact filter.
func (r *Region) Leq(s *Region) bool {
	r.checkDim(s)
	if r.IsEmpty() {
		return true
	}
	for _, rb := range r.boxes {
		if !overlapsAny(rb, s.boxes) {
			return false
		}
	}
	return r.Difference(s).IsEmpty()
}

// LeqIn reports r ⊑ s relative to the universe box u: (r \ s) ∩ u has
// measure zero. This is containment as the region *algebra* sees it —
// elements live inside the universe, and any excess outside it is a null
// set there (the generic boolalg.Leq computes a ∧ ¬b with ¬ relative to
// the universe, which clips the same way). A box of r inside u that
// misses every box of s refutes containment immediately.
func (r *Region) LeqIn(u bbox.Box, s *Region) bool {
	r.checkDim(s)
	if r.IsEmpty() {
		return true
	}
	for _, rb := range r.boxes {
		if interiorOverlaps(rb, u) && !overlapsAny(rb, s.boxes) {
			return false
		}
	}
	diff := r.Difference(s)
	if diff.IsEmpty() {
		return true
	}
	return !overlapsAny(u, diff.boxes)
}

// Overlaps reports that r ∩ s has positive measure, without materializing
// the intersection.
func (r *Region) Overlaps(s *Region) bool {
	r.checkDim(s)
	for _, rb := range r.boxes {
		if overlapsAny(rb, s.boxes) {
			return true
		}
	}
	return false
}

// ContainsPoint reports whether p lies in (the closure of) the region.
func (r *Region) ContainsPoint(p []float64) bool {
	for _, b := range r.boxes {
		if b.ContainsPoint(p) {
			return true
		}
	}
	return false
}

// Split returns a proper nonempty subregion of r (half of its first box,
// cut along the box's longest axis). It panics on the empty region. This
// witnesses atomlessness: no region is an atom.
func (r *Region) Split() *Region {
	if r.IsEmpty() {
		panic("region: Split of empty region")
	}
	b := r.boxes[0]
	axis, best := 0, math.Inf(-1)
	for i := 0; i < b.K; i++ {
		if w := b.Hi[i] - b.Lo[i]; w > best {
			axis, best = i, w
		}
	}
	half := cloneBox(b)
	half.Hi[axis] = (b.Lo[axis] + b.Hi[axis]) / 2
	return FromBox(half)
}

// compact merges pairs of boxes that tile a larger box (equal in all
// dimensions but one, adjacent in that one). This keeps decompositions
// small under repeated complement/union without affecting semantics.
//
// Instead of the quadratic scan-all-pairs-and-restart loop this sweeps one
// axis at a time: boxes are sorted so that boxes sharing their projection
// on every *other* axis are contiguous and ordered along the merge axis,
// then a single pass fuses adjacent runs. The sweep repeats over the axes
// until a full round merges nothing (a merge along one axis can enable one
// along another), which is the same fixpoint the old loop reached —
// O(rounds · k · n log n) instead of O(merges · n²).
func (r *Region) compact() {
	if len(r.boxes) < 2 {
		return
	}
	for changed := true; changed; {
		changed = false
		for d := 0; d < r.k && len(r.boxes) > 1; d++ {
			if r.mergeAxis(d) {
				changed = true
			}
		}
	}
	sort.Slice(r.boxes, func(i, j int) bool { return boxLess(r.boxes[i], r.boxes[j]) })
}

// mergeAxis fuses boxes adjacent along axis d in one sorted pass. Equal
// boxes (which tile trivially) are deduplicated as the old pairwise merge
// did. A fused box gets fresh backing arrays — the inputs may share theirs
// with other regions — but a run of fusions clones only once.
func (r *Region) mergeAxis(d int) bool {
	boxes := r.boxes
	sort.Slice(boxes, func(i, j int) bool { return profileLess(boxes[i], boxes[j], d) })
	out := boxes[:0]
	merged := false
	lastOwned := false
	for _, b := range boxes {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if sameProfile(*last, b, d) {
				if last.Lo[d] == b.Lo[d] && last.Hi[d] == b.Hi[d] {
					merged = true // duplicate box: drop it
					continue
				}
				if last.Hi[d] == b.Lo[d] {
					if !lastOwned {
						*last = cloneBox(*last)
						lastOwned = true
					}
					last.Hi[d] = b.Hi[d]
					merged = true
					continue
				}
			}
		}
		out = append(out, b)
		lastOwned = false
	}
	r.boxes = out
	return merged
}

// profileLess orders boxes lexicographically by their intervals on every
// axis except d, then by their Lo on d — putting merge candidates for axis
// d next to each other.
func profileLess(a, b bbox.Box, d int) bool {
	for i := 0; i < a.K; i++ {
		if i == d {
			continue
		}
		if a.Lo[i] != b.Lo[i] {
			return a.Lo[i] < b.Lo[i]
		}
		if a.Hi[i] != b.Hi[i] {
			return a.Hi[i] < b.Hi[i]
		}
	}
	return a.Lo[d] < b.Lo[d]
}

// sameProfile reports that a and b agree on every axis except d.
func sameProfile(a, b bbox.Box, d int) bool {
	for i := 0; i < a.K; i++ {
		if i == d {
			continue
		}
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}

func boxLess(a, b bbox.Box) bool {
	for i := 0; i < a.K; i++ {
		if a.Lo[i] != b.Lo[i] {
			return a.Lo[i] < b.Lo[i]
		}
		if a.Hi[i] != b.Hi[i] {
			return a.Hi[i] < b.Hi[i]
		}
	}
	return false
}

func (r *Region) checkDim(s *Region) {
	if r.k != s.k {
		panic(fmt.Sprintf("region: dimension mismatch %d vs %d", r.k, s.k))
	}
}

// String renders the region as its box decomposition.
func (r *Region) String() string {
	if r.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(r.boxes))
	for i, b := range r.boxes {
		parts[i] = b.String()
	}
	return strings.Join(parts, " ∪ ")
}
