package query

import (
	"sort"
	"sync"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// RunParallel executes the plan like Run but fans the first retrieval
// step's candidates out over the given number of worker goroutines, each
// continuing the remaining steps independently. Results and statistics are
// identical to the serial executor (solutions are returned in a canonical
// order sorted by object ids); only wall-clock time changes. Workers ≤ 1
// falls back to Run.
//
// Safe because all shared state is read-only during execution: the plan,
// the store's layers (Search is concurrency-safe) and the parameter
// regions. Each worker owns its environment and tuple buffers. Like Run,
// RunParallel holds the store's read guard for the whole execution, so
// concurrent writers cannot interleave with its range queries.
func (p *Plan) RunParallel(store *spatialdb.Store, params map[string]*region.Region, opts Options, workers int) (*Result, error) {
	if workers <= 1 || len(p.Steps) == 0 {
		res, err := p.Run(store, params, opts)
		if err != nil {
			return nil, err
		}
		sortSolutions(res.Solutions)
		return res, nil
	}
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(p.Query, alg, params)
	if err != nil {
		return nil, err
	}
	store.RLock()
	defer store.RUnlock()
	layers, err := resolveLayers(store, stepLayerNames(p))
	if err != nil {
		return nil, err
	}
	res := &Result{}

	if p.Form.Unsat || !p.Form.Ground.Satisfied(alg, env) {
		res.Stats.GroundFailed = true
		return res, nil
	}

	k := store.K()
	envBox := make([]bbox.Box, p.Query.Sys.Vars.Len())
	for v := range envBox {
		if env[v] != nil {
			envBox[v] = env[v].(*region.Region).BoundingBox()
		}
	}

	// Stage 1: gather the first step's candidates serially (one range
	// query), applying the same filters the serial executor would.
	sp := p.Steps[0]
	step := p.Form.Steps[0]
	var firsts []spatialdb.Object
	firstStats := Stats{}
	gather := func(o spatialdb.Object) bool {
		firstStats.Candidates++
		if opts.UseExact && !step.Satisfied(alg, env, o.Reg) {
			firstStats.ExactRejects++
			return true
		}
		firstStats.Extended++
		firsts = append(firsts, o)
		return true
	}
	if opts.UseIndex {
		spec, ok := sp.Spec(k, envBox)
		if !ok {
			return res, nil
		}
		firstStats.DB.Add(layers[0].SearchStats(spec, gather))
	} else {
		layers[0].All(gather)
	}

	// Stage 2: workers drain the candidate list.
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
	)
	res.Stats = firstStats
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wenv := append([]boolalg.Element(nil), env...)
			wbox := append([]bbox.Box(nil), envBox...)
			tuple := make([]spatialdb.Object, len(p.Steps))
			var wstats Stats
			var wsols []Solution
			for {
				mu.Lock()
				if next >= len(firsts) {
					mu.Unlock()
					break
				}
				o := firsts[next]
				next++
				mu.Unlock()

				tuple[0] = o
				wenv[sp.Var] = o.Reg
				wbox[sp.Var] = o.Box
				p.runFrom(1, k, layers, alg, wenv, wbox, tuple, opts, &wstats, &wsols)
				wenv[sp.Var] = nil
				wbox[sp.Var] = bbox.Box{}
			}
			mu.Lock()
			mergeStats(&res.Stats, wstats)
			res.Solutions = append(res.Solutions, wsols...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sortSolutions(res.Solutions)
	return res, nil
}

// runFrom is the serial recursion from step i, writing into caller-owned
// buffers (shared-nothing between workers). The caller holds the store's
// read guard; layers carries the pre-resolved step layers.
func (p *Plan) runFrom(i, k int, layers []*spatialdb.Layer, alg *region.Algebra,
	env []boolalg.Element, envBox []bbox.Box, tuple []spatialdb.Object,
	opts Options, stats *Stats, sols *[]Solution) {
	if i == len(p.Steps) {
		stats.FinalChecked++
		if p.Query.Sys.Satisfied(alg, env) {
			stats.Solutions++
			objs := append([]spatialdb.Object(nil), tuple...)
			*sols = append(*sols, Solution{Objects: objs})
		} else {
			stats.FinalRejected++
		}
		return
	}
	sp := p.Steps[i]
	step := p.Form.Steps[i]
	consider := func(o spatialdb.Object) bool {
		stats.Candidates++
		if opts.UseExact && !step.Satisfied(alg, env, o.Reg) {
			stats.ExactRejects++
			return true
		}
		stats.Extended++
		tuple[i] = o
		env[sp.Var] = o.Reg
		envBox[sp.Var] = o.Box
		p.runFrom(i+1, k, layers, alg, env, envBox, tuple, opts, stats, sols)
		env[sp.Var] = nil
		envBox[sp.Var] = bbox.Box{}
		return true
	}
	if opts.UseIndex {
		spec, ok := sp.Spec(k, envBox)
		if !ok {
			return
		}
		stats.DB.Add(layers[i].SearchStats(spec, consider))
	} else {
		layers[i].All(consider)
	}
}

func mergeStats(dst *Stats, src Stats) {
	dst.Candidates += src.Candidates
	dst.ExactRejects += src.ExactRejects
	dst.Extended += src.Extended
	dst.FinalChecked += src.FinalChecked
	dst.FinalRejected += src.FinalRejected
	dst.Solutions += src.Solutions
	dst.DB.Add(src.DB)
}

// sortSolutions orders tuples by their object ids, a canonical order
// independent of worker scheduling.
func sortSolutions(sols []Solution) {
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i].Objects, sols[j].Objects
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].ID != b[k].ID {
				return a[k].ID < b[k].ID
			}
		}
		return len(a) < len(b)
	})
}
