// Package triangular implements the paper's central optimization,
// Algorithm 1: transforming a normalized system of Boolean constraints into
// *triangular solved form*
//
//	C₁(x₁)
//	C₂(x₁,x₂)
//	…
//	Cₙ(x₁,…,xₙ)
//
// where each Cᵢ is the strongest necessary condition on a prefix
// x₁,…,xᵢ of the retrieval order, in solved form
//
//	s(x₁,…,xᵢ₋₁) ⊑ xᵢ ⊑ t(x₁,…,xᵢ₋₁)   ∧   ⋀ⱼ (xᵢ∧pⱼ ∨ ¬xᵢ∧qⱼ ≠ 0).
//
// The range constraint comes from Schröder's theorem
// (f = 0 ⇔ f[x↦0] ⊑ x ⊑ ¬f[x↦1], Theorem 9) and the disequations from
// Boole's expansion (Theorem 10). Variables are eliminated from the back of
// the retrieval order with the projection operator Proj, the best
// unquantified approximation to ∃x.S (Theorems 4–8):
//
//	∃x (f = 0 ∧ ⋀ᵢ gᵢ ≠ 0)   ⇝   f₁∧f₀ = 0  ∧  ⋀ᵢ (¬f₁∧gᵢ₁ ∨ ¬f₀∧gᵢ₀) ≠ 0
//
// with h₁ = h[x↦1], h₀ = h[x↦0]. The approximation is exact for a single
// disequation in every Boolean algebra (Theorem 4) and exact for any number
// of disequations in atomless algebras — in particular the measurable
// regions of R^k (Theorems 5–6).
//
// DESIGN.md §2 ("Compilation") places this package in the module map; §1 sketches the pipeline stage it implements.
package triangular

import (
	"fmt"
	"strings"

	"repro/internal/bcf"
	"repro/internal/boolalg"
	"repro/internal/constraint"
	"repro/internal/formula"
)

// Diseq is one solved disequation  x∧P ∨ ¬x∧Q ≠ 0  on the step's variable.
type Diseq struct {
	P, Q *formula.Formula // over parameters and earlier variables
}

// Step is the solved constraint Cᵢ for one retrieval variable.
type Step struct {
	Var    int              // the variable xᵢ this step retrieves
	Lower  *formula.Formula // s = f[x↦0]:  s ⊑ x
	Upper  *formula.Formula // t = ¬f[x↦1]: x ⊑ t
	Diseqs []Diseq          // disequations mentioning x, in solved form
}

// Form is the triangular solved form of a system.
type Form struct {
	Order  []int             // retrieval order; Steps[i] constrains Order[i]
	Steps  []Step            // Steps[i] mentions only params and Order[:i]
	Ground constraint.Normal // residual constraints over parameters only
	// Unsat is set when projection produced a statically unsatisfiable
	// residual (sound: the original system then has no solutions).
	Unsat bool
}

// Compile runs Algorithm 1 on the normal form n with the given retrieval
// order (variable indices; all other variables are treated as parameters).
// Formulas are re-normalized through their Blake canonical form at each
// level to keep growth in check; this preserves the denoted function
// exactly. The error is non-nil only if an intermediate normal form
// explodes past formula.MaxDNFTerms.
func Compile(n constraint.Normal, order []int) (*Form, error) {
	form := &Form{Order: append([]int(nil), order...), Steps: make([]Step, len(order))}
	f := n.F
	gs := append([]*formula.Formula(nil), n.G...)

	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		f1, f0 := formula.Expansion(f, v)
		f1, err := simplify(f1)
		if err != nil {
			return nil, err
		}
		f0, err = simplify(f0)
		if err != nil {
			return nil, err
		}
		step := Step{Var: v, Lower: f0, Upper: formula.Not(f1)}

		var rest []*formula.Formula
		for _, g := range gs {
			if !g.Uses(v) {
				rest = append(rest, g)
				continue
			}
			g1, g0 := formula.Expansion(g, v)
			step.Diseqs = append(step.Diseqs, Diseq{P: g1, Q: g0})
			// Projection of this disequation: ¬f₁∧g₁ ∨ ¬f₀∧g₀ ≠ 0.
			proj := formula.Or(
				formula.And(formula.Not(f1), g1),
				formula.And(formula.Not(f0), g0),
			)
			proj, err := simplify(proj)
			if err != nil {
				return nil, err
			}
			switch {
			case proj.IsConst(false):
				form.Unsat = true
			case formula.TautologyOne(proj):
				// Trivially nonzero in a nontrivial algebra: drop.
			default:
				dup := false
				for _, r := range rest {
					if r.Same(proj) {
						dup = true
						break
					}
				}
				if !dup {
					rest = append(rest, proj)
				}
			}
		}
		form.Steps[i] = step

		f, err = simplify(formula.And(f1, f0))
		if err != nil {
			return nil, err
		}
		gs = rest
	}
	form.Ground = constraint.Normal{F: f, G: gs}
	if form.Ground.TriviallyUnsat() {
		form.Unsat = true
	}
	return form, nil
}

// Proj computes the projection of a normal form on variable v: the best
// unquantified approximation to ∃x_v.n (Definition after Theorem 4).
// Exported for the quantifier-elimination experiments (E2, E7).
func Proj(n constraint.Normal, v int) (constraint.Normal, error) {
	f1, f0 := formula.Expansion(n.F, v)
	f, err := simplify(formula.And(f1, f0))
	if err != nil {
		return constraint.Normal{}, err
	}
	out := constraint.Normal{F: f}
	for _, g := range n.G {
		g1, g0 := formula.Expansion(g, v)
		proj := formula.Or(
			formula.And(formula.Not(f1), g1),
			formula.And(formula.Not(f0), g0),
		)
		proj, err := simplify(proj)
		if err != nil {
			return constraint.Normal{}, err
		}
		if formula.TautologyOne(proj) {
			continue
		}
		out.G = append(out.G, proj)
	}
	return out, nil
}

// simplify re-normalizes a formula through its Blake canonical form,
// yielding an absorbed sum of prime implicants. Semantically the identity;
// syntactically it removes the redundancy projection tends to build up.
func simplify(f *formula.Formula) (*formula.Formula, error) {
	s, err := bcf.BCF(f)
	if err != nil {
		return nil, err
	}
	return s.FormulaOf(), nil
}

// StepValues holds the step's formula values evaluated for a fixed prefix
// (parameters and earlier variables). The step's formulas never mention
// the step's own variable, so an executor evaluates them ONCE per prefix
// with Values and then filters every candidate with SatisfiedWith — moving
// the whole formula evaluation out of the per-candidate loop.
type StepValues struct {
	Lower, Upper boolalg.Element
	P, Q         []boolalg.Element // per-disequation values, same index
}

// Values evaluates the step's formulas against env: the prefix-constant
// part of the exact filter.
func (st Step) Values(alg boolalg.Algebra, env []boolalg.Element) StepValues {
	v := StepValues{
		Lower: formula.Eval(st.Lower, alg, env),
		Upper: formula.Eval(st.Upper, alg, env),
	}
	if len(st.Diseqs) > 0 {
		v.P = make([]boolalg.Element, len(st.Diseqs))
		v.Q = make([]boolalg.Element, len(st.Diseqs))
		for i, d := range st.Diseqs {
			v.P[i] = formula.Eval(d.P, alg, env)
			v.Q[i] = formula.Eval(d.Q, alg, env)
		}
	}
	return v
}

// SatisfiedWith checks the solved constraint against precomputed prefix
// values. The disequation x∧P ∨ ¬x∧Q ≠ 0 holds iff x meets P or Q ⋢ x,
// which needs no complement and lets the algebra's fast-path predicates
// (boolalg.Leqer/Overlapper) answer without materializing any element.
func (st Step) SatisfiedWith(alg boolalg.Algebra, v StepValues, cand boolalg.Element) bool {
	if !boolalg.Leq(alg, v.Lower, cand) {
		return false
	}
	if !boolalg.Leq(alg, cand, v.Upper) {
		return false
	}
	for i := range v.P {
		if !boolalg.Overlaps(alg, cand, v.P[i]) && boolalg.Leq(alg, v.Q[i], cand) {
			return false
		}
	}
	return true
}

// Satisfied checks the solved constraint exactly over an algebra: env must
// bind all parameters and earlier variables, cand is the value proposed
// for the step's variable. This is the executor's precise filter (as
// opposed to the bounding-box filter compiled by internal/bbox); hot loops
// should hoist Values out of the candidate scan and call SatisfiedWith.
func (st Step) Satisfied(alg boolalg.Algebra, env []boolalg.Element, cand boolalg.Element) bool {
	return st.SatisfiedWith(alg, st.Values(alg, env), cand)
}

// Vars returns every variable mentioned by the step's formulas (parameters
// and earlier retrieval variables).
func (st Step) Vars() []int {
	seen := map[int]bool{}
	add := func(f *formula.Formula) {
		for _, v := range f.FreeVars() {
			seen[v] = true
		}
	}
	add(st.Lower)
	add(st.Upper)
	for _, d := range st.Diseqs {
		add(d.P)
		add(d.Q)
	}
	var out []int
	for v := 0; v < 64; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the form, one step per line, using name(v) for variables.
func (f *Form) String() string {
	return f.StringNamed(func(v int) string { return fmt.Sprintf("x%d", v) })
}

// StringNamed renders the form with named variables.
func (f *Form) StringNamed(name func(int) string) string {
	var b strings.Builder
	for i, st := range f.Steps {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s <= %s <= %s",
			st.Lower.StringNamed(name), name(st.Var), st.Upper.StringNamed(name))
		for _, d := range st.Diseqs {
			fmt.Fprintf(&b, " ; %s&%s | ~%s&%s != 0",
				name(st.Var), parenNamed(d.P, name), name(st.Var), parenNamed(d.Q, name))
		}
	}
	if !f.Ground.F.IsConst(false) || len(f.Ground.G) > 0 {
		fmt.Fprintf(&b, "\nground: %s = 0", f.Ground.F.StringNamed(name))
		for _, g := range f.Ground.G {
			fmt.Fprintf(&b, " ; %s != 0", g.StringNamed(name))
		}
	}
	if f.Unsat {
		b.WriteString("\nUNSATISFIABLE")
	}
	return b.String()
}

func parenNamed(f *formula.Formula, name func(int) string) string {
	s := f.StringNamed(name)
	if strings.ContainsAny(s, "&|") {
		return "(" + s + ")"
	}
	return s
}
