// Fixture for noalloc: every allocating construct inside a
// //boolq:noalloc body is flagged, with //boolq:allowalloc line escapes
// and the panic-path exemption as the sanctioned outs.
package c

import "fmt"

type scratch struct {
	buf []float64
}

// grow is the amortized cold-growth idiom: allowed explicitly, once,
// with a reason.
//
//boolq:noalloc
func (s *scratch) grow(n int) {
	if cap(s.buf) < n {
		s.buf = append(s.buf, make([]float64, n-len(s.buf))...) //boolq:allowalloc one-time scratch growth
	}
	s.buf = s.buf[:n]
}

// eval is the near miss: indexed writes into caller-owned scratch, a
// checked same-package callee, and a panic path that formats — all
// clean.
//
//boolq:noalloc
func eval(s *scratch, xs []float64) float64 {
	if len(xs) == 0 {
		panic(fmt.Sprintf("eval: empty input %d", len(xs)))
	}
	s.grow(len(xs))
	acc := 0.0
	for i, x := range xs {
		s.buf[i] = x
		acc += x
	}
	return acc
}

//boolq:noalloc
func badMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//boolq:noalloc
func badAppend(xs []int, x int) []int {
	return append(xs, x) // want `append may grow its backing array`
}

//boolq:noalloc
func badLiteral() scratch {
	return scratch{buf: nil} // want `composite literal allocates`
}

//boolq:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want `function literal allocates a closure`
}

//boolq:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//boolq:noalloc
func badFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `call into fmt allocates`
}

func helper(s *scratch) {}

//boolq:noalloc
func badCallee(s *scratch) {
	helper(s) // want `call to helper, which is not //boolq:noalloc`
}

//boolq:noalloc
func sink(v any) {}

//boolq:noalloc
func badBoxing(x int) {
	sink(x) // want `argument boxed into interface parameter v`
}

//boolq:noalloc
func goodPointerArg(s *scratch) {
	sink(s) // pointers don't box a copy onto the heap
}

//boolq:noalloc
func badConversion(b []byte) string {
	return string(b) // want `string/slice conversion copies`
}

// Unannotated functions may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
