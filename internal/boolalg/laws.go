package boolalg

import "fmt"

// LawViolation describes a Boolean-algebra axiom that failed on specific
// elements. It is returned by CheckLaws so tests of new Algebra
// implementations (the region algebra, in particular) can report exactly
// which identity broke.
type LawViolation struct {
	Law string
}

// Error formats the violated law.
func (v *LawViolation) Error() string {
	return fmt.Sprintf("boolalg: law violated: %s", v.Law)
}

// CheckLaws verifies the Boolean-algebra axioms on the sample elements,
// returning the first violation (nil if all hold). It checks all pairs and
// triples drawn from the sample, so keep samples small (≤ ~12 elements).
func CheckLaws(alg Algebra, sample []Element) error {
	fail := func(law string) error { return &LawViolation{Law: law} }
	zero, one := alg.Bottom(), alg.Top()

	if !alg.IsBottom(zero) {
		return fail("IsBottom(0)")
	}
	if alg.IsBottom(one) && !alg.Equal(zero, one) {
		return fail("IsBottom(1) on a nontrivial algebra")
	}
	for _, a := range sample {
		if !alg.Equal(alg.Join(a, zero), a) {
			return fail("a ∨ 0 = a")
		}
		if !alg.Equal(alg.Meet(a, one), a) {
			return fail("a ∧ 1 = a")
		}
		if !alg.Equal(alg.Meet(a, zero), zero) {
			return fail("a ∧ 0 = 0")
		}
		if !alg.Equal(alg.Join(a, one), one) {
			return fail("a ∨ 1 = 1")
		}
		if !alg.Equal(alg.Join(a, alg.Complement(a)), one) {
			return fail("a ∨ ¬a = 1")
		}
		if !alg.Equal(alg.Meet(a, alg.Complement(a)), zero) {
			return fail("a ∧ ¬a = 0")
		}
		if !alg.Equal(alg.Complement(alg.Complement(a)), a) {
			return fail("¬¬a = a")
		}
		if !alg.Equal(alg.Meet(a, a), a) {
			return fail("a ∧ a = a")
		}
		if !alg.Equal(alg.Join(a, a), a) {
			return fail("a ∨ a = a")
		}
		if !Leq(alg, zero, a) || !Leq(alg, a, one) {
			return fail("0 ≤ a ≤ 1")
		}
	}
	for _, a := range sample {
		for _, b := range sample {
			if !alg.Equal(alg.Meet(a, b), alg.Meet(b, a)) {
				return fail("∧ commutative")
			}
			if !alg.Equal(alg.Join(a, b), alg.Join(b, a)) {
				return fail("∨ commutative")
			}
			if !alg.Equal(alg.Complement(alg.Meet(a, b)),
				alg.Join(alg.Complement(a), alg.Complement(b))) {
				return fail("De Morgan ¬(a∧b) = ¬a ∨ ¬b")
			}
			if !alg.Equal(alg.Complement(alg.Join(a, b)),
				alg.Meet(alg.Complement(a), alg.Complement(b))) {
				return fail("De Morgan ¬(a∨b) = ¬a ∧ ¬b")
			}
			// absorption
			if !alg.Equal(alg.Join(a, alg.Meet(a, b)), a) {
				return fail("absorption a ∨ (a∧b) = a")
			}
			if !alg.Equal(alg.Meet(a, alg.Join(a, b)), a) {
				return fail("absorption a ∧ (a∨b) = a")
			}
			// Leq consistency
			if Leq(alg, a, b) != alg.Equal(alg.Meet(a, b), a) {
				return fail("a ≤ b ⇔ a∧b = a")
			}
		}
	}
	for _, a := range sample {
		for _, b := range sample {
			for _, c := range sample {
				if !alg.Equal(alg.Meet(a, alg.Meet(b, c)), alg.Meet(alg.Meet(a, b), c)) {
					return fail("∧ associative")
				}
				if !alg.Equal(alg.Join(a, alg.Join(b, c)), alg.Join(alg.Join(a, b), c)) {
					return fail("∨ associative")
				}
				if !alg.Equal(alg.Meet(a, alg.Join(b, c)),
					alg.Join(alg.Meet(a, b), alg.Meet(a, c))) {
					return fail("∧ distributes over ∨")
				}
				if !alg.Equal(alg.Join(a, alg.Meet(b, c)),
					alg.Meet(alg.Join(a, b), alg.Join(a, c))) {
					return fail("∨ distributes over ∧")
				}
			}
		}
	}
	return nil
}
