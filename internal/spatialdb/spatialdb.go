// Package spatialdb provides the spatial database layer the compiled query
// plans run against: named layers of region-valued objects, answering the
// univariate range queries of §1/§4
//
//	x ∈ [a,b]   and   x ⊓ c ≠ ∅
//
// over the objects' bounding boxes, through a pluggable index. Five
// backends are provided, substantiating the paper's claim that the
// optimization "does not require a special purpose data structure":
//
//   - Scan: linear scan with direct RangeSpec filtering (the baseline);
//   - RTree: Guttman R-tree over the k-dim boxes with subtree pruning;
//   - PointRTree: R-tree over the 2k-dim point transform of each box,
//     answering every compiled spec with ONE range query (Figure 3);
//   - Grid: grid file over the 2k-dim points, same single-query property;
//   - ZOrderIdx: z-element decomposition in one sorted list — the
//     z-ordering extension the paper's conclusion sketches.
//
// All backends return exactly the objects whose bounding box matches the
// spec; they differ only in cost, which Stats exposes to the experiments.
package spatialdb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bbox"
	"repro/internal/gridfile"
	"repro/internal/region"
	"repro/internal/rtree"
	"repro/internal/zorder"
)

// IndexKind selects a layer's index backend.
type IndexKind int

// Available index backends.
const (
	Scan IndexKind = iota
	RTree
	PointRTree
	Grid
	// ZOrderIdx indexes boxes by their z-element decomposition — the
	// extension the paper's conclusion sketches ("it seems possible to
	// extend our approach to make use of z-ordering methods"). Stored
	// boxes must lie inside the store universe.
	ZOrderIdx
)

// String returns the backend name.
func (k IndexKind) String() string {
	switch k {
	case Scan:
		return "scan"
	case RTree:
		return "rtree"
	case PointRTree:
		return "point-rtree"
	case Grid:
		return "gridfile"
	case ZOrderIdx:
		return "zorder"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Object is a stored spatial object: a region plus its cached bounding
// box.
type Object struct {
	ID   int64
	Name string
	Reg  *region.Region
	Box  bbox.Box
}

// Stats accumulates index cost counters for one layer.
type Stats struct {
	Queries  int // range queries executed
	Touched  int // index nodes/cells touched
	Scanned  int // candidate objects examined by the index
	Returned int // objects actually matching the spec
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Queries += s2.Queries
	s.Touched += s2.Touched
	s.Scanned += s2.Scanned
	s.Returned += s2.Returned
}

// Layer is a named collection of objects with an index.
type Layer struct {
	name  string
	kind  IndexKind
	k     int
	objs  map[int64]Object
	order []int64 // insertion order, for deterministic scans
	rt    *rtree.Tree
	grid  *gridfile.Grid
	zx    *zorder.Index

	mu    sync.Mutex // guards stats: Search may run concurrently
	stats Stats
}

func newLayer(name string, k int, kind IndexKind, universe bbox.Box) *Layer {
	l := &Layer{name: name, kind: kind, k: k, objs: map[int64]Object{}}
	switch kind {
	case RTree:
		l.rt = rtree.New(k)
	case PointRTree:
		l.rt = rtree.New(2 * k)
	case Grid:
		l.grid = gridfile.New(2*k, 16)
	case ZOrderIdx:
		l.zx = zorder.NewIndex(universe, 16)
	}
	return l
}

// Name returns the layer name.
func (l *Layer) Name() string { return l.name }

// Kind returns the index backend.
func (l *Layer) Kind() IndexKind { return l.kind }

// Len returns the number of stored objects.
func (l *Layer) Len() int { return len(l.objs) }

// Stats returns the accumulated cost counters.
func (l *Layer) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats clears the counters.
func (l *Layer) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// insert adds an object (id already assigned by the store).
func (l *Layer) insert(o Object) error {
	if o.Reg.IsEmpty() {
		return fmt.Errorf("spatialdb: object %q has an empty region", o.Name)
	}
	l.objs[o.ID] = o
	l.order = append(l.order, o.ID)
	switch l.kind {
	case RTree:
		return l.rt.Insert(o.Box, o.ID)
	case PointRTree:
		p := bbox.PointTransform(o.Box)
		return l.rt.Insert(bbox.New(p, p), o.ID)
	case Grid:
		return l.grid.Insert(bbox.PointTransform(o.Box), o.ID)
	case ZOrderIdx:
		return l.zx.Insert(o.Box, o.ID)
	}
	return nil
}

// Get returns an object by id.
func (l *Layer) Get(id int64) (Object, bool) {
	o, ok := l.objs[id]
	return o, ok
}

// All visits all objects in insertion order.
func (l *Layer) All(visit func(Object) bool) {
	for _, id := range l.order {
		if !visit(l.objs[id]) {
			return
		}
	}
}

// Objects returns all objects in insertion order.
func (l *Layer) Objects() []Object {
	out := make([]Object, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.objs[id])
	}
	return out
}

// Search visits every object whose bounding box matches the spec, in
// ascending id order, updating the layer's cost counters. Search is safe
// for concurrent use (the parallel executor issues range queries from
// several goroutines).
func (l *Layer) Search(spec bbox.RangeSpec, visit func(Object) bool) {
	var ids []int64
	scanned, touched := 0, 0
	switch l.kind {
	case Scan:
		for _, id := range l.order {
			scanned++
			if spec.Matches(l.objs[id].Box) {
				ids = append(ids, id)
			}
		}
		touched = len(l.order)
	case RTree:
		touched = l.rt.SearchSpec(spec, func(e rtree.Entry) bool {
			scanned++
			ids = append(ids, e.ID)
			return true
		})
	case PointRTree:
		q, ok := spec.PointQuery()
		if !ok {
			l.addStats(Stats{Queries: 1})
			return
		}
		touched = l.rt.SearchOverlap(q, func(e rtree.Entry) bool {
			scanned++
			ids = append(ids, e.ID)
			return true
		})
	case Grid:
		q, ok := spec.PointQuery()
		if !ok {
			l.addStats(Stats{Queries: 1})
			return
		}
		touched = l.grid.Search(q, func(_ []float64, id int64) bool {
			scanned++
			ids = append(ids, id)
			return true
		})
	case ZOrderIdx:
		if spec.Unsatisfiable() {
			l.addStats(Stats{Queries: 1})
			return
		}
		touched = l.zx.SearchOverlap(zorderFilter(spec), func(id int64) bool {
			scanned++
			ids = append(ids, id)
			return true
		})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Defense in depth: every backend must return exact matches; the
	// filter also protects against floating-point edge cases in the point
	// transform.
	matched := ids[:0]
	for _, id := range ids {
		if spec.Matches(l.objs[id].Box) {
			matched = append(matched, id)
		}
	}
	l.addStats(Stats{Queries: 1, Touched: touched, Scanned: scanned, Returned: len(matched)})
	for _, id := range matched {
		if !visit(l.objs[id]) {
			return
		}
	}
}

func (l *Layer) addStats(s Stats) {
	l.mu.Lock()
	l.stats.Add(s)
	l.mu.Unlock()
}

// Store is a collection of layers over a shared universe.
type Store struct {
	universe bbox.Box
	kind     IndexKind
	layers   map[string]*Layer
	names    []string
	nextID   int64
}

// NewStore returns an empty store; layers created through it use the given
// index backend.
func NewStore(universe bbox.Box, kind IndexKind) *Store {
	if universe.IsEmpty() {
		panic("spatialdb: empty universe")
	}
	return &Store{universe: universe, kind: kind, layers: map[string]*Layer{}}
}

// Universe returns the store's universe box.
func (s *Store) Universe() bbox.Box { return s.universe }

// K returns the dimensionality.
func (s *Store) K() int { return s.universe.K }

// Layer returns (creating if needed) the named layer.
func (s *Store) Layer(name string) *Layer {
	if l, ok := s.layers[name]; ok {
		return l
	}
	l := newLayer(name, s.universe.K, s.kind, s.universe)
	s.layers[name] = l
	s.names = append(s.names, name)
	return l
}

// HasLayer reports whether the named layer exists.
func (s *Store) HasLayer(name string) bool {
	_, ok := s.layers[name]
	return ok
}

// LayerNames returns layer names in creation order.
func (s *Store) LayerNames() []string {
	return append([]string(nil), s.names...)
}

// Insert adds a named region to a layer and returns its object.
func (s *Store) Insert(layer, name string, r *region.Region) (Object, error) {
	s.nextID++
	o := Object{ID: s.nextID, Name: name, Reg: r, Box: r.BoundingBox()}
	if err := s.Layer(layer).insert(o); err != nil {
		return Object{}, err
	}
	return o, nil
}

// MustInsert is Insert that panics on error; for tests and generators
// whose regions are nonempty by construction.
func (s *Store) MustInsert(layer, name string, r *region.Region) Object {
	o, err := s.Insert(layer, name, r)
	if err != nil {
		panic(err)
	}
	return o
}

// TotalStats sums the counters over all layers.
func (s *Store) TotalStats() Stats {
	var t Stats
	for _, name := range s.names {
		t.Add(s.layers[name].Stats())
	}
	return t
}

// ResetStats clears all layers' counters.
func (s *Store) ResetStats() {
	for _, name := range s.names {
		s.layers[name].ResetStats()
	}
}

// zorderFilter picks the single overlap filter a z-order search can use:
// every box matching the spec must overlap it. Preference order: the
// required lower bound (a match contains it, hence overlaps it), then the
// most selective witness meet the upper bound (a match inside Upper
// overlapping w also overlaps w ⊓ Upper), then the upper bound itself.
func zorderFilter(spec bbox.RangeSpec) bbox.Box {
	if !spec.Lower.IsEmpty() {
		return spec.Lower
	}
	if len(spec.Overlaps) > 0 {
		best := spec.Overlaps[0]
		for _, w := range spec.Overlaps[1:] {
			if w.Volume() < best.Volume() {
				best = w
			}
		}
		return best.Meet(spec.Upper)
	}
	return spec.Upper
}
