// Durability endpoints. When boolqd runs with -data-dir the server is
// constructed over a wal.DB (Options.Durable): every mutation handler's
// store call appends a WAL record before acknowledging, /stats and
// /debug/vars grow durability counters, and two endpoints appear:
//
//	GET  /readyz      readiness — 200 once recovery completed (the
//	                  bootstrap handler in cmd/boolqd answers 503 while
//	                  recovery is still running)
//	POST /checkpoint  force a snapshot + WAL truncation now
//
// POST /snapshot is refused in durable mode: swapping the store out from
// under the DB would disconnect it from the log. GET /snapshot (save)
// still works — it only reads.
package server

import (
	"errors"
	"net/http"

	"repro/internal/spatialdb"
)

// mutationStatus maps a mutation error to an HTTP status: a durability
// failure (the WAL append failed; the client must not treat the write as
// acknowledged) is a server-side 500, anything else is the caller's 400.
func mutationStatus(err error) int {
	if errors.Is(err, spatialdb.ErrDurability) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// handleReady is GET /readyz. The Server only exists after recovery
// (OpenDB is synchronous), so a served request is always ready; the
// interesting answer is the 503 the cmd/boolqd bootstrap handler gives
// while recovery is still replaying the log.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"ready": true, "durable": s.durable != nil}
	if s.durable != nil {
		st := s.durable.Stats()
		resp["replayed"] = st.Replayed
		resp["recovery_ms"] = st.RecoveryMS
		resp["applied_lsn"] = st.AppliedLSN
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint is POST /checkpoint: write a snapshot of the current
// state and truncate the WAL segments it covers.
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.durable == nil {
		writeError(w, http.StatusConflict, "not running in durable mode (start boolqd with -data-dir)")
		return
	}
	lsn, err := s.durable.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": true, "lsn": lsn})
}
