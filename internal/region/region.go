// Package region implements a rectilinear region algebra over R^k: regions
// are finite unions of axis-parallel boxes, identified up to null sets.
//
// This is the paper's spatial data model: the Boolean algebra of measurable
// subsets of R^k modulo "equal almost everywhere" (§3), which is *atomless*
// — every nonempty region has a proper nonempty subregion — and therefore
// admits exact quantifier elimination for constraint systems (Theorems 5–6).
// Restricting to rectilinear regions keeps every operation exact and
// decidable while preserving atomlessness in every way the engine relies
// on: regions can always be split (Split), and emptiness means zero
// measure, so lower-dimensional artifacts of the closed-box representation
// (shared faces, degenerate slivers) do not count.
//
// The invariant throughout: a Region's boxes are pairwise interior-disjoint
// and all have positive volume, so Measure is a plain sum.
//
// DESIGN.md §2 ("Foundations") places this package in the module map.
package region

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bbox"
)

// Region is a finite union of interior-disjoint positive-volume boxes.
// The zero value is the empty region in 0 dimensions; use Empty(k) for a
// typed empty region.
type Region struct {
	k     int
	boxes []bbox.Box
}

// Empty returns the empty region in k dimensions.
func Empty(k int) *Region { return &Region{k: k} }

// FromBox returns the region consisting of a single box (empty if the box
// is empty or degenerate).
func FromBox(b bbox.Box) *Region {
	r := &Region{k: b.K}
	if positiveVolume(b) {
		r.boxes = []bbox.Box{b}
	}
	return r
}

// FromBoxes returns the union of the given (possibly overlapping) boxes.
func FromBoxes(k int, boxes ...bbox.Box) *Region {
	r := Empty(k)
	for _, b := range boxes {
		r = r.Union(FromBox(b))
	}
	return r
}

// K returns the dimensionality.
func (r *Region) K() int { return r.k }

// Boxes returns a copy of the disjoint box decomposition.
func (r *Region) Boxes() []bbox.Box {
	return append([]bbox.Box(nil), r.boxes...)
}

// NumBoxes returns the size of the decomposition (a complexity measure).
func (r *Region) NumBoxes() int { return len(r.boxes) }

// IsEmpty reports whether the region has measure zero.
func (r *Region) IsEmpty() bool { return len(r.boxes) == 0 }

// Measure returns the k-dimensional volume.
func (r *Region) Measure() float64 {
	m := 0.0
	for _, b := range r.boxes {
		m += b.Volume()
	}
	return m
}

// BoundingBox returns ⌈r⌉, the minimal enclosing box.
func (r *Region) BoundingBox() bbox.Box {
	return bbox.JoinAll(r.k, r.boxes...)
}

// positiveVolume reports whether b has strictly positive volume (nonempty
// interior).
func positiveVolume(b bbox.Box) bool {
	if b.IsEmpty() {
		return false
	}
	for i := 0; i < b.K; i++ {
		if b.Hi[i] <= b.Lo[i] {
			return false
		}
	}
	return true
}

// subtractBox returns the interior-disjoint decomposition of a \ b as up
// to 2k boxes (the classical slab split).
func subtractBox(a, b bbox.Box) []bbox.Box {
	inter := a.Meet(b)
	if !positiveVolume(inter) {
		if positiveVolume(a) {
			return []bbox.Box{a}
		}
		return nil
	}
	var out []bbox.Box
	cur := a
	for i := 0; i < a.K; i++ {
		if inter.Lo[i] > cur.Lo[i] {
			below := cloneBox(cur)
			below.Hi[i] = inter.Lo[i]
			if positiveVolume(below) {
				out = append(out, below)
			}
			cur = cloneBox(cur)
			cur.Lo[i] = inter.Lo[i]
		}
		if inter.Hi[i] < cur.Hi[i] {
			above := cloneBox(cur)
			above.Lo[i] = inter.Hi[i]
			if positiveVolume(above) {
				out = append(out, above)
			}
			cur = cloneBox(cur)
			cur.Hi[i] = inter.Hi[i]
		}
	}
	return out
}

func cloneBox(b bbox.Box) bbox.Box {
	return bbox.Box{
		K:  b.K,
		Lo: append([]float64(nil), b.Lo...),
		Hi: append([]float64(nil), b.Hi...),
	}
}

// Difference returns r \ s.
func (r *Region) Difference(s *Region) *Region {
	r.checkDim(s)
	cur := r.boxes
	for _, sb := range s.boxes {
		var next []bbox.Box
		for _, rb := range cur {
			next = append(next, subtractBox(rb, sb)...)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	out := &Region{k: r.k, boxes: cur}
	out.compact()
	return out
}

// Union returns r ∪ s.
func (r *Region) Union(s *Region) *Region {
	r.checkDim(s)
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	diff := s.Difference(r)
	out := &Region{k: r.k, boxes: append(append([]bbox.Box(nil), r.boxes...), diff.boxes...)}
	out.compact()
	return out
}

// Intersect returns r ∩ s.
func (r *Region) Intersect(s *Region) *Region {
	r.checkDim(s)
	var out []bbox.Box
	for _, rb := range r.boxes {
		for _, sb := range s.boxes {
			m := rb.Meet(sb)
			if positiveVolume(m) {
				out = append(out, m)
			}
		}
	}
	res := &Region{k: r.k, boxes: out}
	res.compact()
	return res
}

// ComplementIn returns universe \ r.
func (r *Region) ComplementIn(universe bbox.Box) *Region {
	return FromBox(universe).Difference(r)
}

// Equal reports equality up to null sets.
func (r *Region) Equal(s *Region) bool {
	return r.Difference(s).IsEmpty() && s.Difference(r).IsEmpty()
}

// Leq reports r ⊑ s up to null sets.
func (r *Region) Leq(s *Region) bool { return r.Difference(s).IsEmpty() }

// Overlaps reports that r ∩ s has positive measure.
func (r *Region) Overlaps(s *Region) bool { return !r.Intersect(s).IsEmpty() }

// ContainsPoint reports whether p lies in (the closure of) the region.
func (r *Region) ContainsPoint(p []float64) bool {
	for _, b := range r.boxes {
		if b.ContainsPoint(p) {
			return true
		}
	}
	return false
}

// Split returns a proper nonempty subregion of r (half of its first box,
// cut along the box's longest axis). It panics on the empty region. This
// witnesses atomlessness: no region is an atom.
func (r *Region) Split() *Region {
	if r.IsEmpty() {
		panic("region: Split of empty region")
	}
	b := r.boxes[0]
	axis, best := 0, math.Inf(-1)
	for i := 0; i < b.K; i++ {
		if w := b.Hi[i] - b.Lo[i]; w > best {
			axis, best = i, w
		}
	}
	half := cloneBox(b)
	half.Hi[axis] = (b.Lo[axis] + b.Hi[axis]) / 2
	return FromBox(half)
}

// compact merges pairs of boxes that tile a larger box (equal in all
// dimensions but one, adjacent in that one). This keeps decompositions
// small under repeated complement/union without affecting semantics.
func (r *Region) compact() {
	if len(r.boxes) < 2 {
		return
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(r.boxes); i++ {
			for j := i + 1; j < len(r.boxes); j++ {
				if m, ok := tryMerge(r.boxes[i], r.boxes[j]); ok {
					r.boxes[i] = m
					r.boxes = append(r.boxes[:j], r.boxes[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	sort.Slice(r.boxes, func(i, j int) bool { return boxLess(r.boxes[i], r.boxes[j]) })
}

func boxLess(a, b bbox.Box) bool {
	for i := 0; i < a.K; i++ {
		if a.Lo[i] != b.Lo[i] {
			return a.Lo[i] < b.Lo[i]
		}
		if a.Hi[i] != b.Hi[i] {
			return a.Hi[i] < b.Hi[i]
		}
	}
	return false
}

// tryMerge merges two boxes tiling a larger box.
func tryMerge(a, b bbox.Box) (bbox.Box, bool) {
	diff := -1
	for i := 0; i < a.K; i++ {
		if a.Lo[i] == b.Lo[i] && a.Hi[i] == b.Hi[i] {
			continue
		}
		if diff >= 0 {
			return bbox.Box{}, false
		}
		diff = i
	}
	if diff < 0 {
		return a, true // identical boxes
	}
	if a.Hi[diff] == b.Lo[diff] || b.Hi[diff] == a.Lo[diff] {
		m := cloneBox(a)
		m.Lo[diff] = math.Min(a.Lo[diff], b.Lo[diff])
		m.Hi[diff] = math.Max(a.Hi[diff], b.Hi[diff])
		return m, true
	}
	return bbox.Box{}, false
}

func (r *Region) checkDim(s *Region) {
	if r.k != s.k {
		panic(fmt.Sprintf("region: dimension mismatch %d vs %d", r.k, s.k))
	}
}

// String renders the region as its box decomposition.
func (r *Region) String() string {
	if r.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(r.boxes))
	for i, b := range r.boxes {
		parts[i] = b.String()
	}
	return strings.Join(parts, " ∪ ")
}
