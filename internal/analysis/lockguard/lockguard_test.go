package lockguard

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestLockguard(t *testing.T) {
	atest.Run(t, Analyzer, "a")
}
