# Developer entry points; CI runs the same commands.

.PHONY: build test race bench vet lint lint-fix golden golden-update chaos

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# lint runs the domain-invariant static-analysis suite (cmd/boolqvet:
# lockguard, ctxpoll, noalloc, walcheck, errflow — see DESIGN.md §8),
# plus gofmt and go vet. Blocking in CI; every finding is either a real
# bug or carries a reasoned `//lint:ignore <analyzer> <why>`.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go run ./cmd/boolqvet ./...

# lint-fix applies the mechanical part (formatting); analyzer findings
# need a human: fix the bug or add a reasoned suppression.
lint-fix:
	gofmt -w .

# bench runs the tracked benchmark harness with -benchmem and refreshes
# BENCH_PR7.json (see scripts/bench.sh for the BENCH/BENCHTIME/COUNT/OUT
# knobs and docs/API.md + DESIGN.md §5 for what the numbers mean).
bench:
	./scripts/bench.sh

# golden diffs every corpus query's result set against the recorded
# expectations in internal/golden/testdata/golden (uncached, so CI and
# local runs always re-execute); golden-update re-records them from the
# naive reference executor after an intentional semantic change.
golden:
	go test ./internal/golden/... -count=1

golden-update:
	go test ./internal/golden -run TestCorpus -update -count=1

# chaos runs the seeded fault-injection property suite under -race:
# random mutate/query/checkpoint workloads against the vfs fault
# injector across all five backends, the HTTP degraded-mode and
# admission-control (429/503) contract tests, and the two-node
# replication matrix (kill/restart, partition-past-truncation,
# primary-crash promote). Blocking in CI; see DESIGN.md §9–10.
chaos:
	go test -race -count=1 \
		-run 'Chaos|ServerTransient|ServerDegraded|ServerSheds|ServerBatchSheds|AdmissionPool|Fault|WriteBudget' \
		./internal/wal/ ./internal/server/ ./internal/vfs/ ./internal/repl/
