package vfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op classifies a filesystem operation for fault matching.
type Op uint8

// Operations an Injector can fail.
const (
	OpOpen     Op = iota // Open / OpenFile without O_CREATE
	OpCreate             // OpenFile with O_CREATE, CreateTemp
	OpWrite              // File.Write
	OpSync               // File.Sync
	OpSyncDir            // FS.SyncDir
	OpRename             // FS.Rename
	OpRemove             // FS.Remove
	OpTruncate           // FS.Truncate
	OpRead               // File.Read
	opCount
)

// String returns the op name.
func (op Op) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "sync_dir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// ErrInjected is the default error an armed fault returns.
var ErrInjected = errors.New("vfs: injected fault")

// Fault is one programmable failpoint. A fault matches an operation when
// the op kinds are equal and Path (substring, "" = any) occurs in the
// operation's path. Among matching operations, the first After are let
// through, then the fault fires Count times (Count ≤ 0: forever — a
// permanent fault), then it is spent.
type Fault struct {
	// Op is the operation kind to fail.
	Op Op
	// Path is a substring the operation's path must contain ("": any).
	Path string
	// After lets this many matching operations through before firing.
	After int
	// Count is how many times to fire (≤ 0: forever).
	Count int
	// Err is the injected error (nil: ErrInjected). Use syscall.ENOSPC,
	// syscall.EIO etc. to model specific disk conditions.
	Err error
	// Partial applies to OpWrite: the write stores this many leading
	// bytes before failing — a short (torn) write. 0 stores nothing.
	Partial int
	// CorruptBit applies to OpRead: instead of returning an error, the
	// read succeeds with one bit of its first byte flipped.
	CorruptBit bool
}

// fault is a Fault plus its firing state.
type fault struct {
	Fault
	seen  int // matching ops observed
	fired int // times this fault injected
}

// armed reports whether the fault would fire on its next matching op.
func (f *fault) armed() bool {
	if f.seen < f.After {
		return false
	}
	return f.Count <= 0 || f.fired < f.Count
}

func (f *fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// FaultStats summarizes an Injector's activity: how many operations it
// saw and how many faults it injected, per operation kind.
type FaultStats struct {
	Ops      int64            `json:"ops"`      // operations observed
	Injected int64            `json:"injected"` // faults injected
	ByOp     map[string]int64 `json:"by_op,omitempty"`
}

// Faulty is implemented by filesystems that can report injected-fault
// counters; internal/wal surfaces them in /stats when its FS has them.
type Faulty interface {
	FaultStats() FaultStats
}

// Injector is an FS wrapping another FS with programmable failpoints.
// Fault evaluation is deterministic: operations are matched in call
// order under one lock, so a fixed workload plus a fixed fault schedule
// always fails at the same operation.
type Injector struct {
	base FS

	mu       sync.Mutex
	faults   []*fault
	budget   int64 // remaining write bytes before ENOSPC; < 0: unlimited
	ops      int64
	injected int64
	byOp     [opCount]int64
}

var _ Faulty = (*Injector)(nil)

// NewInjector wraps base (nil: OS) with an empty fault schedule.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base, budget: -1}
}

// Add appends a failpoint to the schedule and returns the injector for
// chaining.
func (in *Injector) Add(f Fault) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &fault{Fault: f})
	return in
}

// SetWriteBudget arms an ENOSPC condition: after n more written bytes
// (across all files), every write fails with syscall.ENOSPC, storing
// only the bytes that fit. A negative n removes the budget.
func (in *Injector) SetWriteBudget(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.budget = n
}

// Clear removes every failpoint and any write budget — the disk is
// healthy again. Counters are preserved.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = nil
	in.budget = -1
}

// FaultStats returns the injector's counters.
func (in *Injector) FaultStats() FaultStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := FaultStats{Ops: in.ops, Injected: in.injected}
	for op, n := range in.byOp {
		if n > 0 {
			if st.ByOp == nil {
				st.ByOp = map[string]int64{}
			}
			st.ByOp[Op(op).String()] = n
		}
	}
	return st
}

// check records one operation and returns the fault that fires on it,
// if any. Only the first matching armed fault fires per operation.
func (in *Injector) check(op Op, path string) *fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	for _, f := range in.faults {
		if f.Op != op || !strings.Contains(path, f.Path) {
			continue
		}
		wasArmed := f.armed()
		f.seen++
		if wasArmed {
			f.fired++
			in.injected++
			in.byOp[op]++
			return f
		}
	}
	return nil
}

// debit consumes write budget and reports how many of n bytes may be
// written (all of them when no budget is set) plus whether the write
// must fail with ENOSPC afterwards.
func (in *Injector) debit(n int) (allowed int, full bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.budget < 0 {
		return n, false
	}
	if int64(n) <= in.budget {
		in.budget -= int64(n)
		return n, false
	}
	allowed = int(in.budget)
	in.budget = 0
	in.injected++
	in.byOp[OpWrite]++
	return allowed, true
}

// ---- FS implementation ----

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if f := in.check(op, name); f != nil {
		return nil, f.err()
	}
	base, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: base, path: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if f := in.check(OpOpen, name); f != nil {
		return nil, f.err()
	}
	base, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: base, path: name}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if f := in.check(OpCreate, dir+"/"+pattern); f != nil {
		return nil, f.err()
	}
	base, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: base, path: base.Name()}, nil
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) { return in.base.ReadDir(name) }

func (in *Injector) Stat(name string) (os.FileInfo, error) { return in.base.Stat(name) }

func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.check(OpRename, newpath); f != nil {
		return f.err()
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f := in.check(OpRemove, name); f != nil {
		return f.err()
	}
	return in.base.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if f := in.check(OpTruncate, name); f != nil {
		return f.err()
	}
	return in.base.Truncate(name, size)
}

func (in *Injector) SyncDir(dir string) error {
	if f := in.check(OpSyncDir, dir); f != nil {
		return f.err()
	}
	return in.base.SyncDir(dir)
}

// faultFile threads writes, reads and fsyncs through the injector.
type faultFile struct {
	in   *Injector
	f    File
	path string
}

func (ff *faultFile) Name() string               { return ff.f.Name() }
func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }
func (ff *faultFile) Close() error               { return ff.f.Close() }

// Write injects torn writes and ENOSPC: a firing fault (or an exhausted
// write budget) stores only a prefix of p and reports the error, exactly
// the shape a full disk or a crash mid-write leaves on a real
// filesystem.
func (ff *faultFile) Write(p []byte) (int, error) {
	if f := ff.in.check(OpWrite, ff.path); f != nil {
		n := f.Partial
		if n > len(p) {
			n = len(p)
		}
		written := 0
		if n > 0 {
			written, _ = ff.f.Write(p[:n])
		}
		return written, f.err()
	}
	allowed, full := ff.in.debit(len(p))
	if full {
		written := 0
		if allowed > 0 {
			written, _ = ff.f.Write(p[:allowed])
		}
		return written, syscall.ENOSPC
	}
	return ff.f.Write(p)
}

// Read injects read-side failures: an erroring fault fails the call, a
// CorruptBit fault lets it succeed with one bit flipped — silent media
// corruption the checksums downstream must catch.
func (ff *faultFile) Read(p []byte) (int, error) {
	f := ff.in.check(OpRead, ff.path)
	n, err := ff.f.Read(p)
	if f != nil && err == nil {
		if f.CorruptBit {
			if n > 0 {
				p[0] ^= 0x01
			}
		} else {
			return 0, f.err()
		}
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	if f := ff.in.check(OpSync, ff.path); f != nil {
		return f.err()
	}
	return ff.f.Sync()
}
