// Package server implements boolqd, an HTTP/JSON query service over a
// spatialdb.Store: the serving layer that turns the PODS'91 pipeline
// from an in-process library into a concurrent network service.
//
// Endpoints:
//
//	PUT    /layers/{layer}                      create an empty layer
//	GET    /layers                              list layers
//	PUT    /layers/{layer}/objects/{name}       upsert an object (region JSON)
//	GET    /layers/{layer}/objects/{name}       fetch an object
//	DELETE /layers/{layer}/objects/{name}       delete an object
//	POST   /layers/{layer}/objects:bulk         bulk-insert objects (JSON array or NDJSON)
//	POST   /query                               run a textual query (?stream=1: NDJSON per solution)
//	POST   /query/batch                         run many queries, streaming NDJSON results
//	GET    /stats                               service + store statistics
//	GET    /snapshot                            save the store as JSON
//	POST   /snapshot                            replace the store from JSON (409 in durable mode)
//	POST   /checkpoint                          force a durability checkpoint (durable mode only)
//	GET    /debug/vars                          expvar metrics
//	GET    /healthz                             liveness probe
//	GET    /readyz                              readiness probe (503 until recovery completes)
//	GET    /repl/snapshot                       stream the newest checkpoint to a replica (durable mode)
//	GET    /repl/wal?from=N                     long-poll NDJSON WAL stream for replicas (durable mode)
//	POST   /repl/promote                        re-arm a caught-up replica as a writable primary
//
// docs/API.md is the complete wire reference; DESIGN.md §3 describes the
// concurrency model this package implements.
//
// Queries are compiled through an LRU plan cache keyed by the normalized
// query text (lang.Normalize) and the store epoch: repeated queries skip
// Parse/Compile and execute the cached Plan directly, and any mutation
// (insert, delete, layer creation) bumps the epoch, invalidating every
// cached plan. Reads and writes may be issued concurrently: plan
// execution holds the store's read guard, mutations its write lock.
//
// Every execution is bounded: the server derives each run's context from
// the request context (client disconnects cancel it) plus a server-side
// default timeout (Options.QueryTimeout), which a request's timeout_ms
// can tighten but never extend; limit caps the solution count; and the
// per-request workers override is clamped to MaxQueryWorkers. Expired or
// disconnected runs release the store's read guard within a few hundred
// candidates and come back as 408 with partial results flagged
// cancelled; capped runs flag truncated. The query_timeouts,
// query_cancelled and query_truncated counters expose the outcomes.
//
// The batch-shaped entry points exist because the single-object paths are
// where a production load falls over: objects:bulk takes the store's
// write lock once per batch and engages the index backends' packed bulk
// loaders (spatialdb.BulkLoader), and /query/batch compiles each distinct
// query once through the plan cache against one (store, generation,
// epoch) snapshot, fans execution across a bounded worker pool, and
// streams one NDJSON result line per query so large result sets never
// buffer server-side.
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

// Options configures a Server.
type Options struct {
	// CacheSize is the plan-cache capacity (plans). ≤ 0 means
	// DefaultCacheSize.
	CacheSize int
	// Workers is the default parallelism for POST /query when the request
	// does not set its own (≤ 1 means serial execution).
	Workers int
	// BatchWorkers is the default worker-pool size for POST /query/batch
	// when the request does not set its own concurrency (≤ 0 means
	// DefaultBatchWorkers).
	BatchWorkers int
	// QueryTimeout bounds every query execution server-side (≤ 0 means
	// DefaultQueryTimeout). A request's timeout_ms can tighten it but
	// never extend it, so no single query can hold the store's read
	// guard longer than this.
	QueryTimeout time.Duration
	// Durable, when set, is the wal.DB whose recovered store this server
	// serves. It enables POST /checkpoint, the durability sections of
	// /stats and /debug/vars, and disables POST /snapshot (replacing the
	// store would disconnect it from the write-ahead log). The store
	// passed to New must be Durable.Store().
	Durable *wal.DB
	// StaticPlan disables statistics-driven adaptive planning: plans
	// compile in the query's own retrieval order with no backend
	// overrides and no feedback, as before PR 7. Exposed as boolqd's
	// -plan flag for A/B comparisons.
	StaticPlan bool
	// TunerSize caps how many distinct queries the feedback tuner tracks
	// (≤ 0 means the query package default).
	TunerSize int
	// MaxInflight bounds concurrently admitted expensive requests: one
	// pool of this many slots for plan-executing reads and a separate
	// equal-sized pool for mutations (admission.go). ≤ 0 disables
	// admission control entirely.
	MaxInflight int
	// ShedQueue is how many requests may wait for a slot per pool before
	// further arrivals are shed with 429 (< 0 or 0: no queue — shed as
	// soon as the pool is full). Only meaningful with MaxInflight > 0.
	ShedQueue int
	// MaxQueueWait caps how long a queued request waits for a slot
	// (≤ 0: DefaultMaxQueueWait). The request's own deadline still
	// applies, whichever comes first.
	MaxQueueWait time.Duration
	// Replica, when set, marks this server as a read replica tailing a
	// primary (boolqd -replica-of). The store passed to New must be
	// Replica.Store(); New hooks the replica's bootstrap swaps into
	// swapStore so the plan cache and generation follow snapshot installs.
	// Mutations are rejected with 503 + the primary's address, /readyz
	// gates on catch-up, and POST /repl/promote re-arms the node as a
	// writable primary. Mutually exclusive with Durable.
	Replica *repl.Replica
	// RejectStaleReads additionally gates /query and /query/batch on the
	// replica's readiness (bootstrap, contact, staleness bound): a lagging
	// replica 503s reads instead of serving stale results. Only meaningful
	// with Replica set.
	RejectStaleReads bool
}

// Server is the boolqd HTTP service over one spatial store.
type Server struct {
	mu    sync.RWMutex     // guards store and gen: POST /snapshot swaps them
	store *spatialdb.Store //boolq:guardedby mu
	// gen is the store generation, bumped on every swap.
	gen          uint64 //boolq:guardedby mu
	cache        *PlanCache
	metrics      *Metrics
	vars         *expvar.Map
	workers      int
	batchWorkers int
	queryTimeout time.Duration
	durable      *wal.DB       // nil unless running over a WAL data dir
	replica      *repl.Replica // nil unless running as a read replica
	rejectStale  bool          // 503 reads while the replica lags
	staticPlan   bool
	tuner        *query.Tuner // run-cost feedback for the adaptive planner
	readGate     *admission   // plan-executing reads; nil: unbounded
	mutGate      *admission   // mutations; nil: unbounded
	mux          *http.ServeMux

	// draining flips on BeginDrain (SIGTERM): /readyz 503s so load
	// balancers stop routing here, and open /repl/wal streams are sealed
	// with an end record so replicas reconnect elsewhere. In-flight
	// requests still finish — connection teardown is http.Server.Shutdown's
	// job.
	draining  atomic.Bool
	drainOnce sync.Once
	drainc    chan struct{} // closed by BeginDrain
}

// New returns a server over the given store.
func New(store *spatialdb.Store, opts Options) *Server {
	bw := opts.BatchWorkers
	if bw <= 0 {
		bw = DefaultBatchWorkers
	}
	qt := opts.QueryTimeout
	if qt <= 0 {
		qt = DefaultQueryTimeout
	}
	s := &Server{
		store:        store,
		cache:        NewPlanCache(opts.CacheSize),
		metrics:      &Metrics{},
		workers:      opts.Workers,
		batchWorkers: bw,
		queryTimeout: qt,
		durable:      opts.Durable,
		replica:      opts.Replica,
		rejectStale:  opts.RejectStaleReads,
		staticPlan:   opts.StaticPlan,
		tuner:        query.NewTuner(opts.TunerSize),
		readGate:     newAdmission(opts.MaxInflight, opts.ShedQueue, opts.MaxQueueWait),
		mutGate:      newAdmission(opts.MaxInflight, opts.ShedQueue, opts.MaxQueueWait),
		drainc:       make(chan struct{}),
	}
	if s.replica != nil {
		s.replica.SetOnSwap(s.swapStore)
	}
	s.vars = s.expvarMap()
	publishOnce.Do(func() { expvar.Publish("boolqd", s.vars) })
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Store returns the current backing store (it changes on snapshot load).
func (s *Server) Store() *spatialdb.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store
}

// storeAndGen returns the store together with its generation as one
// consistent pair — the generation tags plan-cache entries so a plan
// compiled against one store can never be served against its successor.
func (s *Server) storeAndGen() (*spatialdb.Store, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store, s.gen
}

// Cache returns the plan cache (exposed for stats and benchmarks).
func (s *Server) Cache() *PlanCache { return s.cache }

// swapStore replaces the backing store and drops all cached plans, whose
// epochs are meaningless against the new store. The generation bump
// makes the drop safe against concurrent queries: an in-flight Put
// tagged with the old generation can land after Clear, but no lookup
// will ever match it again.
func (s *Server) swapStore(store *spatialdb.Store) {
	s.mu.Lock()
	s.store = store
	s.gen++
	s.mu.Unlock()
	s.cache.Clear()
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /layers", s.handleListLayers)
	s.mux.HandleFunc("PUT /layers/{layer}", s.handleCreateLayer)
	s.mux.HandleFunc("PUT /layers/{layer}/objects/{name}", s.handlePutObject)
	s.mux.HandleFunc("GET /layers/{layer}/objects/{name}", s.handleGetObject)
	s.mux.HandleFunc("DELETE /layers/{layer}/objects/{name}", s.handleDeleteObject)
	s.mux.HandleFunc("POST /layers/{layer}/objects:bulk", s.handleBulkInsert)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshotSave)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshotLoad)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /repl/wal", s.handleReplWAL)
	s.mux.HandleFunc("POST /repl/promote", s.handleReplPromote)
}

// BeginDrain starts a graceful shutdown: /readyz flips to 503 and open
// /repl/wal streams emit an end record and return, so replicas and load
// balancers move on before the listener closes. Idempotent; call it
// before http.Server.Shutdown.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainc)
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful to do on error
}

// writeError writes a JSON error body. Handlers must return immediately
// after calling it: anything written afterwards lands inside or after a
// committed error response.
//
//boolq:errwriter
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// Retry-After values, in seconds. Shed requests can come back as soon as
// in-flight work drains; a degraded store needs its background probe to
// succeed first, so it advertises a longer pause.
const (
	retryAfterShed     = 1
	retryAfterDegraded = 5
)

// writeRetryError is writeError plus a Retry-After header — the 429/503
// responses that tell a well-behaved client when to come back. The
// header must be set before the status line goes out.
//
//boolq:errwriter
func writeRetryError(w http.ResponseWriter, status, retryAfter int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
