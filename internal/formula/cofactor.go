package formula

// Cofactor returns f[v ↦ val]: the formula with variable v replaced by the
// constant val, simplified by the constructors. The two cofactors
// f[v↦1], f[v↦0] are the operands of Boole's expansion
//
//	f = (x ∧ f[x↦1]) ∨ (¬x ∧ f[x↦0])
//
// which drives both Algorithm 1 (projection) and the solved-form rewrite
// (Theorems 9 and 10).
func Cofactor(f *Formula, v int, val bool) *Formula {
	c := zero
	if val {
		c = one
	}
	return substitute(f, v, c, map[*Formula]*Formula{})
}

// Substitute returns f[v ↦ g], replacing every occurrence of variable v by
// the formula g.
func Substitute(f *Formula, v int, g *Formula) *Formula {
	return substitute(f, v, g, map[*Formula]*Formula{})
}

// SubstituteAll applies the bindings {v ↦ subs[v]} simultaneously. Variables
// without a binding (subs[v] == nil or v ≥ len(subs)) are left in place.
func SubstituteAll(f *Formula, subs []*Formula) *Formula {
	memo := map[*Formula]*Formula{}
	var walk func(n *Formula) *Formula
	walk = func(n *Formula) *Formula {
		if r, ok := memo[n]; ok {
			return r
		}
		var out *Formula
		switch n.kind {
		case KindConst:
			out = n
		case KindVar:
			if n.v < len(subs) && subs[n.v] != nil {
				out = subs[n.v]
			} else {
				out = n
			}
		case KindNot:
			out = Not(walk(n.l))
		case KindAnd:
			out = And(walk(n.l), walk(n.r))
		case KindOr:
			out = Or(walk(n.l), walk(n.r))
		}
		memo[n] = out
		return out
	}
	return walk(f)
}

func substitute(f *Formula, v int, g *Formula, memo map[*Formula]*Formula) *Formula {
	if r, ok := memo[f]; ok {
		return r
	}
	var out *Formula
	switch f.kind {
	case KindConst:
		out = f
	case KindVar:
		if f.v == v {
			out = g
		} else {
			out = f
		}
	case KindNot:
		out = Not(substitute(f.l, v, g, memo))
	case KindAnd:
		out = And(substitute(f.l, v, g, memo), substitute(f.r, v, g, memo))
	case KindOr:
		out = Or(substitute(f.l, v, g, memo), substitute(f.r, v, g, memo))
	}
	memo[f] = out
	return out
}

// Expansion returns Boole's expansion of f on variable v:
// pos = f[v↦1] and neg = f[v↦0], so that f ≡ (x_v ∧ pos) ∨ (¬x_v ∧ neg).
func Expansion(f *Formula, v int) (pos, neg *Formula) {
	return Cofactor(f, v, true), Cofactor(f, v, false)
}
