package spatialdb

import (
	"fmt"

	"repro/internal/region"
)

// BulkMode selects the failure semantics of Store.BulkInsert.
type BulkMode int

// Bulk insertion modes.
const (
	// BulkAtomic inserts every object or none: an invalid object or an
	// index rejection anywhere in the batch aborts it and leaves the
	// store's objects unchanged (a layer created for the batch persists —
	// it is idempotent metadata).
	BulkAtomic BulkMode = iota
	// BulkBestEffort inserts every insertable object and reports
	// per-object errors for the rest.
	BulkBestEffort
)

// String returns the wire name of the mode.
func (m BulkMode) String() string {
	if m == BulkBestEffort {
		return "best_effort"
	}
	return "atomic"
}

// BulkItem is one object of a batch insert. As with Insert, duplicate
// names are allowed; the batch's last occurrence wins name lookups.
type BulkItem struct {
	Name string
	Reg  *region.Region
}

// BulkResult is the outcome for one BulkItem, in batch order. Object is
// meaningful only when Err is nil and the batch (in atomic mode) was not
// aborted by another item.
type BulkResult struct {
	Object Object
	Err    error
}

// BulkReport summarizes one BulkInsert call.
type BulkReport struct {
	Results  []BulkResult // one per item, in batch order
	Inserted int          // objects actually inserted
	Epoch    uint64       // store epoch after the call
}

// BulkInsert adds a batch of named regions to a layer under ONE
// write-lock acquisition, bumping the epoch once for the whole batch
// instead of once per object. Backends implementing BulkLoader (R-tree
// and point R-tree via STR packing, grid file via pre-seeded scales,
// z-order via a single sorted build) rebuild their structure in one
// packed pass over the existing and new objects; other backends fall
// back to looped inserts.
//
// Validation (empty regions) happens before anything touches the index.
// In BulkAtomic mode any invalid object or index rejection aborts the
// batch with a non-nil error and rolls the index back to its pre-batch
// contents. In BulkBestEffort mode every insertable object is inserted,
// failures are reported per object in the report, and the error is nil.
//
//boolq:mutation
func (s *Store) BulkInsert(layer string, items []BulkItem, mode BulkMode) (BulkReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := BulkReport{Results: make([]BulkResult, len(items))}
	if err := s.admitMutationLocked(); err != nil {
		rep.Epoch = s.epoch.Load()
		return rep, err
	}
	_, existed := s.layers[layer]

	// Validate first: empty regions never reach the index.
	invalid := 0
	for i, it := range items {
		if it.Reg == nil || it.Reg.IsEmpty() {
			rep.Results[i].Err = fmt.Errorf("spatialdb: object %q has an empty region", it.Name)
			invalid++
		}
	}
	if mode == BulkAtomic && invalid > 0 {
		rep.Epoch = s.epoch.Load()
		return rep, fmt.Errorf("spatialdb: bulk insert into %q: %d of %d objects invalid",
			layer, invalid, len(items))
	}

	l := s.ensureLayerLocked(layer)

	// Assign ids to the valid items and hand them to the layer as one
	// batch. vidx maps batch-of-valid position back to the item index.
	objs := make([]Object, 0, len(items)-invalid)
	vidx := make([]int, 0, len(items)-invalid)
	for i, it := range items {
		if rep.Results[i].Err != nil {
			continue
		}
		s.nextID++
		o := Object{ID: s.nextID, Name: it.Name, Reg: it.Reg, Box: it.Reg.BoundingBox()}
		rep.Results[i].Object = o
		objs = append(objs, o)
		vidx = append(vidx, i)
	}
	errs, err := l.bulkInsert(objs, mode == BulkAtomic)
	for vi, e := range errs {
		if e != nil {
			rep.Results[vidx[vi]] = BulkResult{Err: e}
		}
	}
	if err != nil {
		// Atomic abort: nothing was inserted; clear the objects of items
		// that were individually fine but rode in the aborted batch.
		for i := range rep.Results {
			if rep.Results[i].Err == nil {
				rep.Results[i].Object = Object{}
			}
		}
		if !existed {
			s.epoch.Add(1) // the layer creation is a visible mutation
			// The layer survives the abort, so its creation must too.
			if lerr := s.logMutation(&Mutation{Op: OpCreateLayer, Layer: layer}); lerr != nil {
				err = fmt.Errorf("%v (%v)", err, lerr)
			}
		}
		rep.Epoch = s.epoch.Load()
		return rep, fmt.Errorf("spatialdb: bulk insert into %q: %w", layer, err)
	}
	for _, e := range errs {
		if e == nil {
			rep.Inserted++
		}
	}
	if rep.Inserted > 0 || !existed {
		s.epoch.Add(1)
	}
	rep.Epoch = s.epoch.Load()
	// One record for the whole batch, carrying only the objects that made
	// it in (replay re-creates the layer implicitly). A batch that changed
	// nothing but the layer's existence logs the creation alone.
	var lerr error
	if rep.Inserted > 0 {
		m := &Mutation{Op: OpBulkInsert, Layer: layer, Objects: make([]MutObject, 0, rep.Inserted)}
		for i := range rep.Results {
			if rep.Results[i].Err == nil {
				m.Objects = append(m.Objects, mutObject(rep.Results[i].Object))
			}
		}
		lerr = s.logMutation(m)
	} else if !existed {
		lerr = s.logMutation(&Mutation{Op: OpCreateLayer, Layer: layer})
	}
	return rep, lerr
}

// bulkInsert adds objs (regions already validated non-empty, ids
// assigned) to the layer. The returned slice parallels objs (nil entries
// succeeded). In atomic mode either every object is inserted or none,
// and the second return value carries the aborting error; otherwise
// index-rejected objects are skipped and it is nil.
//
// The caller must hold the store's write lock.
func (l *Layer) bulkInsert(objs []Object, atomic bool) ([]error, error) {
	errs := make([]error, len(objs))
	if len(objs) == 0 {
		return errs, nil
	}
	// The packed path rebuilds the whole index (existing + new), so it
	// only pays off when the batch is a sizable fraction of the layer;
	// trickle batches into a big layer go through plain inserts instead
	// of an O(layer) rebuild per call.
	const bulkRebuildFraction = 4 // packed rebuild when new ≥ existing/4
	if bl, ok := l.idx.(BulkLoader); ok && len(objs)*bulkRebuildFraction >= len(l.order) {
		all := make([]Object, 0, len(l.order)+len(objs))
		for _, id := range l.order {
			all = append(all, l.objs[id])
		}
		all = append(all, objs...)
		if err := bl.BulkLoad(all); err == nil {
			for _, o := range objs {
				l.commit(o)
			}
			return errs, nil
		}
		// The packed build failed (e.g. a box outside a z-order universe).
		// The BulkLoader contract leaves the live index at its pre-batch
		// contents, so fall through to looped inserts, which attribute the
		// error to the exact object.
	}
	for i, o := range objs {
		if err := l.idx.insert(o); err != nil {
			errs[i] = err
			if atomic {
				// Roll back the objects inserted so far: the lookup maps
				// are not yet committed, so a rebuild from l.order restores
				// exactly the pre-batch index.
				if rerr := l.rebuildIndex(); rerr != nil {
					return errs, fmt.Errorf("object %q: %v (and rollback failed: %v)", o.Name, err, rerr)
				}
				return errs, fmt.Errorf("object %q: %w", o.Name, err)
			}
		}
	}
	for i, o := range objs {
		if errs[i] == nil {
			l.commit(o)
		}
	}
	return errs, nil
}
