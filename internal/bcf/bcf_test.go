package bcf

import (
	"testing"
	"testing/quick"

	"repro/internal/formula"
)

func term(pos, neg uint64) formula.Term { return formula.Term{Pos: pos, Neg: neg} }

// TestE3PaperExample2 reproduces §4 Example 2 of the paper:
//
//	f = ~x&y ∨ x&y ∨ x&z&~w
//	BCF(f) = y ∨ x&z&~w
//
// via consensus (~x&y, x&y → y) and absorption.
func TestE3PaperExample2(t *testing.T) {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	f := formula.OrN(
		formula.And(formula.Not(x), y),
		formula.And(x, y),
		formula.AndN(x, z, formula.Not(w)),
	)
	got, err := BCF(f)
	if err != nil {
		t.Fatal(err)
	}
	want := formula.SOP{
		term(0b0010, 0),      // y
		term(0b0101, 0b1000), // x & z & ~w
	}.Absorb()
	if len(got) != len(want) {
		t.Fatalf("BCF = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BCF = %v, want %v", got, want)
		}
	}
}

func TestBCFOfConstants(t *testing.T) {
	s, err := BCF(formula.Zero())
	if err != nil || len(s) != 0 {
		t.Errorf("BCF(0) = %v, %v", s, err)
	}
	s, err = BCF(formula.One())
	if err != nil || len(s) != 1 || !s[0].IsTrue() {
		t.Errorf("BCF(1) = %v, %v", s, err)
	}
}

func TestBCFTautology(t *testing.T) {
	x := formula.Var(0)
	s, err := BCF(formula.Or(x, formula.Not(x)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || !s[0].IsTrue() {
		t.Errorf("BCF(x|~x) = %v", s)
	}
}

func TestBCFXor(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	s, err := BCF(formula.Xor(x, y))
	if err != nil {
		t.Fatal(err)
	}
	// Both terms are prime; no consensus (double opposition).
	if len(s) != 2 {
		t.Errorf("BCF(x^y) = %v", s)
	}
}

// Classic example where consensus generates a new prime implicant:
// f = x&y ∨ ~x&z has the consensus y&z, all three prime.
func TestBCFGeneratesConsensusTerm(t *testing.T) {
	x, y, z := formula.Var(0), formula.Var(1), formula.Var(2)
	f := formula.Or(formula.And(x, y), formula.And(formula.Not(x), z))
	s, err := BCF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("BCF = %v, want 3 prime implicants", s)
	}
	hasYZ := false
	for _, tm := range s {
		if tm == term(0b110, 0) {
			hasYZ = true
		}
	}
	if !hasYZ {
		t.Errorf("missing consensus term y&z in %v", s)
	}
}

func TestBCFPreservesSemantics(t *testing.T) {
	x, y, z, w := formula.Var(0), formula.Var(1), formula.Var(2), formula.Var(3)
	formulas := []*formula.Formula{
		formula.Xor(x, formula.Xor(y, z)),
		formula.OrN(formula.And(x, y), formula.And(y, z), formula.And(z, x)),
		formula.Implies(formula.And(x, y), formula.Or(z, w)),
		formula.Not(formula.Or(formula.And(x, formula.Not(y)), z)),
	}
	for _, f := range formulas {
		s, err := BCF(f)
		if err != nil {
			t.Fatal(err)
		}
		if !formula.Equivalent(s.FormulaOf(), f) {
			t.Errorf("BCF changed semantics of %v: %v", f, s)
		}
	}
}

// Property: every term of BCF(f) is a prime implicant of f, and BCF is
// semantically equivalent to f, for random 4-variable functions given by
// their truth table.
func TestQuickBCFTermsArePrime(t *testing.T) {
	check := func(truth uint16) bool {
		f := functionFromTruthTable(truth, 4)
		s, err := BCF(f)
		if err != nil {
			return false
		}
		if !formula.Equivalent(s.FormulaOf(), f) {
			return false
		}
		for _, tm := range s {
			if !IsPrimeImplicant(tm, f) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: BCF contains *all* prime implicants — any implicant of f is
// subsumed by some BCF term (Blake's theorem direction used by Thm 13).
func TestQuickBCFComplete(t *testing.T) {
	check := func(truth uint16, rawPos, rawNeg uint8) bool {
		f := functionFromTruthTable(truth, 4)
		s, err := BCF(f)
		if err != nil {
			return false
		}
		tm := term(uint64(rawPos&0xf), uint64(rawNeg&0xf))
		if tm.Contradictory() || !IsImplicant(tm, f) {
			return true // not an implicant: nothing to check
		}
		return SyllogisticallyLeq(formula.SOP{tm}, s)
	}
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// functionFromTruthTable builds the minterm expansion of an n-variable
// function whose truth table is the low 2^n bits of truth.
func functionFromTruthTable(truth uint16, n int) *formula.Formula {
	acc := formula.Zero()
	for m := 0; m < 1<<uint(n); m++ {
		if truth&(1<<uint(m)) == 0 {
			continue
		}
		tm := formula.TrueTerm
		for v := 0; v < n; v++ {
			if m&(1<<uint(v)) != 0 {
				tm = tm.WithPos(v)
			} else {
				tm = tm.WithNeg(v)
			}
		}
		acc = formula.Or(acc, tm.Formula())
	}
	return acc
}

func TestSyllogisticallyLeq(t *testing.T) {
	p := term(0b01, 0)
	pq := term(0b11, 0)
	if !SyllogisticallyLeq(formula.SOP{pq}, formula.SOP{p}) {
		t.Errorf("pq ≼ p should hold (p subsumes pq)")
	}
	if SyllogisticallyLeq(formula.SOP{p}, formula.SOP{pq}) {
		t.Errorf("p ≼ pq should not hold")
	}
	if !SyllogisticallyLeq(formula.SOP{}, formula.SOP{p}) {
		t.Errorf("empty sum is below everything")
	}
}

func TestAtomicTerms(t *testing.T) {
	s := formula.SOP{
		term(0b001, 0),   // x0 — atomic
		term(0b110, 0),   // x1&x2 — not atomic
		term(0, 0b1000),  // ~x3 — negative, not an atom
		term(0b10000, 0), // x4 — atomic
	}
	got := AtomicTerms(s)
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("AtomicTerms = %v", got)
	}
}

func TestIsPrimeImplicant(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	f := formula.Or(x, formula.And(x, y)) // ≡ x
	if !IsPrimeImplicant(term(0b01, 0), f) {
		t.Errorf("x should be prime for f ≡ x")
	}
	if IsPrimeImplicant(term(0b11, 0), f) {
		t.Errorf("x&y is an implicant but not prime")
	}
	if IsPrimeImplicant(term(0b10, 0), f) {
		t.Errorf("y is not an implicant")
	}
	if IsPrimeImplicant(term(1, 1), f) {
		t.Errorf("contradictory term can not be prime")
	}
}

func TestCloseOnRawSOP(t *testing.T) {
	// x&y ∨ x&~y closes to x.
	s, err := Close(formula.SOP{term(0b11, 0), term(0b01, 0b10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0] != term(0b01, 0) {
		t.Errorf("Close = %v, want [x]", s)
	}
}
