package zorder

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bbox"
)

// TestBulkLoadMatchesLooped: a bulk-built index answers overlap queries
// exactly like an insert-built one.
func TestBulkLoadMatchesLooped(t *testing.T) {
	u := bbox.Rect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(17))
	var boxes []bbox.Box
	var ids []int64
	looped := NewIndex(u, 16)
	for i := 0; i < 400; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		b := bbox.Rect(x, y, x+rng.Float64()*40+1, y+rng.Float64()*40+1).Meet(u)
		boxes = append(boxes, b)
		ids = append(ids, int64(i))
		if err := looped.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(u, 16, boxes, ids)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != looped.Len() {
		t.Fatalf("Len = %d, want %d", bulk.Len(), looped.Len())
	}
	for _, q := range []bbox.Box{
		bbox.Rect(100, 100, 300, 300), bbox.Rect(0, 0, 1000, 1000), bbox.Rect(900, 900, 950, 950),
	} {
		get := func(ix *Index) []int64 {
			var out []int64
			ix.SearchOverlap(q, func(id int64) bool { out = append(out, id); return true })
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		got, want := get(bulk), get(looped)
		if len(got) != len(want) {
			t.Fatalf("query %v: %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: ids differ at %d", q, i)
			}
		}
	}
}

// TestBulkLoadRejectsOutOfUniverse: any out-of-universe box fails the
// whole build.
func TestBulkLoadRejectsOutOfUniverse(t *testing.T) {
	u := bbox.Rect(0, 0, 100, 100)
	_, err := BulkLoad(u, 16,
		[]bbox.Box{bbox.Rect(1, 1, 2, 2), bbox.Rect(90, 90, 150, 150)}, []int64{1, 2})
	if err == nil {
		t.Fatal("out-of-universe box accepted")
	}
	if _, err := BulkLoad(u, 16, []bbox.Box{bbox.Rect(1, 1, 2, 2)}, nil); err == nil {
		t.Fatal("mismatched boxes/ids accepted")
	}
}
