// Package atest is a self-contained analysistest: it loads a fixture
// package from testdata/src/<name>, runs one analyzer over it, and
// matches the diagnostics against `// want "regex"` comments in the
// fixture source. Fixtures are ordinary Go packages restricted to
// standard-library imports (resolved through build-cache export data),
// so the true-positive and near-miss cases stay small and hermetic.
package atest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads testdata/src/<name> (package path = <name>), applies the
// analyzer, and asserts the diagnostics are exactly the fixture's
// `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()
	pkg := Load(t, name)
	results, err := analysis.RunOnPackage(pkg, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}

	type key struct {
		file string
		line int
	}
	expected := map[key][]string{} // unmatched want regexes
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range splitWants(t, m[1]) {
					expected[k] = append(expected[k], pat)
				}
			}
		}
	}

	for _, r := range results {
		k := key{filepath.Base(r.Position.Filename), r.Position.Line}
		pats := expected[k]
		matched := -1
		for i, pat := range pats {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("bad want regexp %q at %s:%d: %v", pat, k.file, k.line, err)
			}
			if re.MatchString(r.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, r.Message)
			continue
		}
		expected[k] = append(pats[:matched], pats[matched+1:]...)
		if len(expected[k]) == 0 {
			delete(expected, k)
		}
	}
	var missed []string
	for k, pats := range expected {
		for _, pat := range pats {
			missed = append(missed, k.file+":"+strconv.Itoa(k.line)+": no diagnostic matching "+strconv.Quote(pat))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// Apply runs one analyzer over an already-loaded fixture package and
// returns the (suppression-filtered) results, for tests that assert on
// findings directly instead of via want comments.
func Apply(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package) []analysis.RunResult {
	t.Helper()
	results, err := analysis.RunOnPackage(pkg, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return results
}

// splitWants parses the tail of a want comment: one or more
// double-quoted (possibly backquoted) regexes.
func splitWants(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("malformed want expectation %q: %v", s, err)
		}
		pat, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("malformed want expectation %q: %v", prefix, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}

// Load parses and type-checks the fixture package testdata/src/<name>
// relative to the calling test's working directory.
func Load(t *testing.T, name string) *analysis.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}
	pkg, err := analysis.CheckFixture(fset, name, files, keys(imports))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return pkg
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
