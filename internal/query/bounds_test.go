package query

import (
	"context"
	"testing"
	"time"

	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

var allKinds = []spatialdb.IndexKind{
	spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
	spatialdb.Grid, spatialdb.ZOrderIdx,
}

// heavyFixture builds a map big enough that the unfiltered cross product
// (no index, no exact filter) takes far longer than the cancellation
// deadlines the tests use.
func heavyFixture(t *testing.T, kind spatialdb.IndexKind) (*spatialdb.Store, map[string]*region.Region) {
	t.Helper()
	return smugglerFixture(t, kind, workload.MapConfig{Seed: 7, Towns: 60, Interior: 40, Roads: 150})
}

// slowOptions disables both filters: every step scans its whole layer
// and every complete tuple is verified in the region algebra — the
// pathological workload the bounds exist for.
var slowOptions = Options{}

// runExecutor dispatches one of the three executors by name.
func runExecutor(t *testing.T, name string, ctx context.Context, plan *Plan,
	store *spatialdb.Store, params map[string]*region.Region, opts Options) *Result {
	t.Helper()
	var (
		res *Result
		err error
	)
	switch name {
	case "serial":
		res, err = plan.RunCtx(ctx, store, params, opts)
	case "parallel":
		res, err = plan.RunParallelCtx(ctx, store, params, opts, 4)
	case "naive":
		res, err = RunNaiveCtx(ctx, plan.Query, store, params, opts)
	default:
		t.Fatalf("unknown executor %q", name)
	}
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

var executors = []string{"serial", "parallel", "naive"}

// TestCancelledBeforeStart: an already-cancelled context returns an
// empty partial result flagged Cancelled, without doing any index work —
// across all three executors and all five backends.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range allKinds {
		store, params := smugglerFixture(t, kind, workload.MapConfig{Seed: 3})
		plan, err := Compile(Smuggler(), store)
		if err != nil {
			t.Fatal(err)
		}
		for _, exec := range executors {
			res := runExecutor(t, exec, ctx, plan, store, params, DefaultOptions)
			if !res.Stats.Cancelled {
				t.Errorf("%s/%s: Cancelled not set on pre-cancelled context", kind, exec)
			}
			if res.Stats.Candidates != 0 || len(res.Solutions) != 0 {
				t.Errorf("%s/%s: work done despite pre-cancelled context: %+v", kind, exec, res.Stats)
			}
		}
	}
}

// TestCancelMidRun: a short deadline interrupts a pathological
// (unfiltered cross-product) execution mid-run on every executor and
// every backend. The full search takes many seconds; the executors must
// come back around the deadline with the Cancelled flag and a partial
// result instead.
func TestCancelMidRun(t *testing.T) {
	for _, kind := range allKinds {
		store, params := heavyFixture(t, kind)
		plan, err := Compile(Smuggler(), store)
		if err != nil {
			t.Fatal(err)
		}
		for _, exec := range executors {
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			start := time.Now()
			res := runExecutor(t, exec, ctx, plan, store, params, slowOptions)
			elapsed := time.Since(start)
			cancel()
			if !res.Stats.Cancelled {
				t.Errorf("%s/%s: Cancelled not set (finished in %v with %d candidates?)",
					kind, exec, elapsed, res.Stats.Candidates)
			}
			// The bound must actually bind: far below the full search's
			// runtime, with head-room for slow CI machines.
			if elapsed > 5*time.Second {
				t.Errorf("%s/%s: run took %v after a 25ms deadline", kind, exec, elapsed)
			}
		}
	}
}

// TestCancelFromStreamYield cancels deterministically mid-run: the
// yield callback cancels the context after the first solution, so the
// stream must stop with Cancelled set and exactly one solution seen.
func TestCancelFromStreamYield(t *testing.T) {
	for _, kind := range allKinds {
		store, params := smugglerFixture(t, kind, workload.MapConfig{Seed: 42})
		plan, err := Compile(Smuggler(), store)
		if err != nil {
			t.Fatal(err)
		}
		full, err := plan.Run(store, params, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Solutions) < 2 {
			t.Fatalf("%s: fixture has %d solutions, need ≥ 2", kind, len(full.Solutions))
		}
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		stats, err := plan.RunStream(ctx, store, params, DefaultOptions, func(Solution) bool {
			seen++
			cancel()
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Cancelled {
			t.Errorf("%s: Cancelled not set after cancel from yield", kind)
		}
		if seen != 1 {
			t.Errorf("%s: %d solutions streamed after immediate cancel", kind, seen)
		}
		if stats.Candidates >= full.Stats.Candidates {
			t.Errorf("%s: cancellation examined all %d candidates", kind, stats.Candidates)
		}
	}
}

// TestLimitShortCircuits: Options.Limit caps the solution count, flags
// the run Truncated, and provably stops the search early (fewer
// candidates examined than the unbounded run) on every executor.
func TestLimitShortCircuits(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, exec := range executors {
		full := runExecutor(t, exec, ctx, plan, store, params, DefaultOptions)
		if len(full.Solutions) < 2 {
			t.Fatalf("%s: fixture has %d solutions, need ≥ 2", exec, len(full.Solutions))
		}
		if full.Stats.Truncated || full.Stats.Cancelled {
			t.Errorf("%s: unbounded run flagged %+v", exec, full.Stats)
		}
		opts := DefaultOptions
		opts.Limit = 1
		lim := runExecutor(t, exec, ctx, plan, store, params, opts)
		if len(lim.Solutions) != 1 || lim.Stats.Solutions != 1 {
			t.Errorf("%s: limit 1 returned %d solutions (stats %d)",
				exec, len(lim.Solutions), lim.Stats.Solutions)
		}
		if !lim.Stats.Truncated {
			t.Errorf("%s: Truncated not set at the limit", exec)
		}
		if lim.Stats.Cancelled {
			t.Errorf("%s: Cancelled set without cancellation", exec)
		}
		if lim.Stats.Candidates >= full.Stats.Candidates {
			t.Errorf("%s: limit did not shrink the search: %d vs %d candidates",
				exec, lim.Stats.Candidates, full.Stats.Candidates)
		}
	}
}

// TestLimitAcrossBackends: the limit contract (count, flag) holds on
// every index backend for the optimized executors.
func TestLimitAcrossBackends(t *testing.T) {
	for _, kind := range allKinds {
		store, params := smugglerFixture(t, kind, workload.MapConfig{Seed: 42})
		plan, err := Compile(Smuggler(), store)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions
		opts.Limit = 1
		for _, exec := range executors {
			res := runExecutor(t, exec, context.Background(), plan, store, params, opts)
			if len(res.Solutions) != 1 || !res.Stats.Truncated {
				t.Errorf("%s/%s: limit 1 → %d solutions, truncated=%v",
					kind, exec, len(res.Solutions), res.Stats.Truncated)
			}
		}
	}
}

// TestTimeoutFreesReadGuard is the wedged-store regression: a writer
// blocked behind a pathological query must proceed as soon as the
// query's deadline expires, instead of waiting for the full search.
func TestTimeoutFreesReadGuard(t *testing.T) {
	store, params := heavyFixture(t, spatialdb.RTree)
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	queryDone := make(chan *Result, 1)
	go func() {
		res, err := plan.RunCtx(ctx, store, params, slowOptions)
		if err != nil {
			t.Error(err)
		}
		queryDone <- res
	}()
	// Give the query a moment to take the read guard, then write. The
	// Insert blocks on the store's write lock until the guard is freed.
	time.Sleep(5 * time.Millisecond)
	writerDone := make(chan struct{})
	go func() {
		store.MustInsert("towns", "late-writer", region.FromBox(store.Universe()))
		close(writerDone)
	}()
	select {
	case <-writerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("writer still blocked 10s after the query deadline: read guard not freed")
	}
	res := <-queryDone
	if !res.Stats.Cancelled {
		t.Errorf("query not flagged Cancelled: %+v", res.Stats)
	}
}

// TestRunStreamMatchesRun: the streaming executor yields exactly the
// buffered executor's solution set, in the same DFS order, and an
// early-stopping consumer ends the run without flags.
func TestRunStreamMatchesRun(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Solution
	stats, err := plan.RunStream(context.Background(), store, params, DefaultOptions, func(s Solution) bool {
		streamed = append(streamed, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(full.Solutions) {
		t.Fatalf("stream yielded %d solutions, Run found %d", len(streamed), len(full.Solutions))
	}
	for i := range streamed {
		for j, o := range streamed[i].Objects {
			if o.ID != full.Solutions[i].Objects[j].ID {
				t.Fatalf("stream order differs from Run at solution %d", i)
			}
		}
	}
	if stats.Candidates != full.Stats.Candidates || stats.Solutions != full.Stats.Solutions {
		t.Errorf("stream stats differ: %+v vs %+v", stats, full.Stats)
	}

	// Consumer stop: yield false after the first solution.
	seen := 0
	stats, err = plan.RunStream(context.Background(), store, params, DefaultOptions, func(Solution) bool {
		seen++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("yield-false consumer saw %d solutions", seen)
	}
	if stats.Truncated || stats.Cancelled {
		t.Errorf("consumer stop must not set Truncated/Cancelled: %+v", stats)
	}
}

// TestLimitEqualsSolutionsStillSound: limits larger than the solution
// count change nothing (no flags, full set).
func TestLimitOverSolutionCount(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42})
	plan, err := Compile(Smuggler(), store)
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions
	opts.Limit = len(full.Solutions) + 100
	for _, exec := range executors {
		res := runExecutor(t, exec, context.Background(), plan, store, params, opts)
		if len(res.Solutions) != len(full.Solutions) {
			t.Errorf("%s: over-limit changed the solution count: %d vs %d",
				exec, len(res.Solutions), len(full.Solutions))
		}
		if res.Stats.Truncated {
			t.Errorf("%s: Truncated set though nothing was dropped", exec)
		}
	}
}
