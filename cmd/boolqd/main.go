// Command boolqd serves constraint queries over HTTP: the boolq pipeline
// (normalize → triangularize → bounding-box plans → incremental
// execution) behind a concurrent JSON API with a compiled-plan cache.
//
//	boolqd -demo                          # serve the generated smuggler map
//	boolqd -snapshot db.json              # serve a saved store
//	boolqd -data-dir /var/lib/boolqd      # durable: WAL + snapshots, crash recovery
//	boolqd -replica-of http://primary:8080  # read replica tailing the primary's WAL
//	boolqd -addr :9000 -index gridfile -workers 8
//
// Try it:
//
//	curl localhost:8080/layers
//	curl -X POST localhost:8080/query -d '{
//	  "query": "find T in towns given C where T !<= C",
//	  "params": {"C": {"boxes": [{"lo": [100,100], "hi": [900,900]}]}}
//	}'
//	curl -X POST localhost:8080/layers/towns/objects:bulk -d '[
//	  {"name": "t1", "boxes": [{"lo": [10,10], "hi": [20,20]}]},
//	  {"name": "t2", "boxes": [{"lo": [30,30], "hi": [40,40]}]}
//	]'
//	curl localhost:8080/stats
//
// With -data-dir set, every acknowledged mutation is appended to a
// write-ahead log before the response leaves (fsynced per -fsync), a
// background checkpointer writes binary snapshots and truncates the log,
// and startup recovers the store from the newest snapshot plus the WAL
// tail. GET /readyz answers 503 until recovery completes, then 200.
//
// See docs/API.md for the full endpoint reference (including the bulk
// ingestion and streaming batch-query endpoints), internal/server for
// the implementation, and DESIGN.md (§6 for durability) for how the
// service layers over the library.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bbox"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/spatialdb"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "boolqd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		indexName = flag.String("index", "rtree", "index backend: scan|rtree|point-rtree|gridfile|zorder")
		snapshot  = flag.String("snapshot", "", "store snapshot to load at startup (JSON, see /snapshot)")
		universe  = flag.String("universe", "0,0,1000,1000", "universe box x0,y0,x1,y1 when starting empty")
		workers   = flag.Int("workers", 0, "default query parallelism (requests may override)")
		batchWork = flag.Int("batch-workers", server.DefaultBatchWorkers,
			"default /query/batch worker-pool size (requests may override)")
		cacheSize    = flag.Int("cache-size", server.DefaultCacheSize, "plan cache capacity")
		queryTimeout = flag.Duration("query-timeout", server.DefaultQueryTimeout,
			"server-side bound on each query execution (requests may tighten it via timeout_ms)")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second,
			"http.Server.ReadHeaderTimeout: max time to receive request headers (slowloris guard)")
		readTimeout = flag.Duration("read-timeout", 2*time.Minute,
			"http.Server.ReadTimeout: max time to receive a full request including its body")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute,
			"http.Server.IdleTimeout: max keep-alive idle time between requests")
		demo  = flag.Bool("demo", false, "populate the generated §2 smuggler map instead of starting empty")
		seed  = flag.Uint64("seed", 42, "demo map seed")
		scale = flag.Int("scale", 1, "demo map size multiplier")

		planMode = flag.String("plan", "adaptive",
			"planning mode: adaptive (statistics-driven order and backend choice with run-cost feedback) or static (the query's own order; for A/B comparison)")
		altIndexes = flag.String("alt-indexes", "",
			"comma-separated extra index backends to maintain per layer (e.g. rtree,gridfile), giving the adaptive planner per-step backend choices; empty: primary only")

		dataDir = flag.String("data-dir", "",
			"durable mode: directory for the write-ahead log and snapshots (empty: in-memory only)")
		fsyncPolicy = flag.String("fsync", "interval",
			"WAL fsync policy: always (fsync before every ack), interval, never")
		fsyncInterval = flag.Duration("fsync-interval", wal.DefaultSyncInterval,
			"flush+fsync cadence under -fsync interval (the crash-loss window)")
		walSegment = flag.Int64("wal-segment", wal.DefaultSegmentBytes,
			"WAL segment rotation threshold in bytes")
		ckptInterval = flag.Duration("checkpoint-interval", wal.DefaultCheckpointInterval,
			"how often the background checkpointer considers writing a snapshot")
		ckptBytes = flag.Int64("checkpoint-bytes", 0,
			"WAL bytes since the last snapshot that trigger a checkpoint (0: the segment size)")
		walRetryMax = flag.Int("wal-retry-max", wal.DefaultRetryMax,
			"in-line retries (with backoff) of a failed WAL append before the store degrades to read-only (negative: no retries)")

		maxInflight = flag.Int("max-inflight", 0,
			"admission control: max concurrently admitted requests per pool (reads and mutations each get this many slots); 0: unbounded")
		shedQueue = flag.Int("shed-queue", 0,
			"admission control: waiters allowed per pool beyond -max-inflight before arrivals are shed with 429 (0: shed as soon as the pool is full)")

		replicaOf = flag.String("replica-of", "",
			"replica mode: primary base URL to tail (e.g. http://primary:8080); the store is read-only and converges by streaming the primary's WAL")
		maxStaleness = flag.Uint64("max-staleness", 1024,
			"replica mode: /readyz reports ready only while the replica is at most this many records behind the primary (0: no lag bound)")
		rejectStaleReads = flag.Bool("reject-stale-reads", false,
			"replica mode: additionally 503 /query and /query/batch while the replica is outside its staleness bound")
	)
	flag.Parse()

	kind, err := parseIndex(*indexName)
	if err != nil {
		return err
	}
	staticPlan, err := parsePlanMode(*planMode)
	if err != nil {
		return err
	}
	altKinds, err := parseAltIndexes(*altIndexes)
	if err != nil {
		return err
	}

	// The listener opens before recovery behind a switchable handler:
	// /healthz answers 200 and everything else (notably /readyz) 503
	// while the store is still being recovered; the real API is swapped
	// in once it is live. In-memory startup passes through the same path
	// with a near-instant swap.
	//
	// No WriteTimeout: /query/batch and /query?stream=1 responses are
	// long-lived streams; execution time is bounded per query by
	// -query-timeout instead, and dead clients are detected through the
	// request context.
	handler := newSwitchHandler(bootstrapHandler())
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("boolqd listening on %s (index %s, plan cache %d, workers %d)",
			*addr, kind, *cacheSize, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	if *replicaOf != "" && *dataDir != "" {
		return errors.New("-replica-of and -data-dir are mutually exclusive: a replica's durability is the primary's WAL")
	}

	var store *spatialdb.Store
	var db *wal.DB
	var rep *repl.Replica
	if *replicaOf != "" {
		u, err := parseUniverse(*universe)
		if err != nil {
			return err
		}
		rep, err = repl.New(repl.Options{
			Primary:      *replicaOf,
			Transport:    &repl.HTTPTransport{Base: *replicaOf},
			Kind:         kind,
			Universe:     u,
			MaxStaleness: *maxStaleness,
		})
		if err != nil {
			return err
		}
		store = rep.Store()
		log.Printf("replica mode: tailing %s (max staleness %d records)", *replicaOf, *maxStaleness)
	} else if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		db, err = openDurable(*dataDir, kind, wal.Options{
			SegmentBytes: *walSegment,
			Policy:       policy,
			Interval:     *fsyncInterval,
		}, *ckptInterval, *ckptBytes, *walRetryMax, *snapshot, *universe, *demo, *seed, *scale)
		if err != nil {
			return err
		}
		defer db.Close()
		store = db.Store()
	} else {
		store, err = openStore(*snapshot, *universe, kind, *demo, *seed, *scale)
		if err != nil {
			return err
		}
	}
	if len(altKinds) > 0 {
		store.EnableAltIndexes(altKinds...)
		log.Printf("alternate indexes enabled: %v", altKinds)
	}
	for _, name := range store.LayerNames() {
		l := store.Layer(name)
		log.Printf("layer %q: %d objects (%s)", name, l.Len(), l.Kind())
	}

	srv := server.New(store, server.Options{
		CacheSize: *cacheSize, Workers: *workers, BatchWorkers: *batchWork,
		QueryTimeout: *queryTimeout, Durable: db, StaticPlan: staticPlan,
		MaxInflight: *maxInflight, ShedQueue: *shedQueue,
		Replica: rep, RejectStaleReads: *rejectStaleReads,
	})
	if *maxInflight > 0 {
		log.Printf("admission control: %d in-flight per pool, queue depth %d", *maxInflight, *shedQueue)
	}
	if rep != nil {
		// Started after server.New so the server's swapStore hook is in
		// place before the first bootstrap can install a snapshot.
		rep.Start()
		defer rep.Stop()
	}
	handler.Set(srv.Handler())
	log.Print("serving")

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		// Drain first: /readyz flips to 503 and open /repl/wal streams are
		// sealed with an end record, so load balancers and replicas move on
		// while in-flight requests finish under Shutdown's grace window.
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if rep != nil {
			rep.Stop()
			log.Print("replication stopped")
		}
		if db != nil {
			// Seal the log: buffered records are flushed and fsynced, so
			// a SIGTERM loses nothing regardless of the fsync policy.
			if err := db.Close(); err != nil {
				return err
			}
			log.Print("wal sealed")
		}
		return nil
	}
}

// switchHandler atomically swaps the handler behind the listener, so the
// port can open (and /healthz answer) before recovery finishes.
type switchHandler struct{ v atomic.Value }

func newSwitchHandler(initial http.Handler) *switchHandler {
	h := &switchHandler{}
	h.v.Store(initial)
	return h
}

func (h *switchHandler) Set(next http.Handler) { h.v.Store(next) }

func (h *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

// bootstrapHandler serves while the store is recovering: alive but not
// ready. /readyz (like every other path) answers 503 until the real API
// replaces this handler.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\n  \"ok\": true\n}\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\n  \"error\": \"recovering\"\n}\n"))
	})
	return mux
}

// openDurable opens (creating if needed) the WAL-backed store in dataDir
// and recovers it. A fresh directory may be seeded from -snapshot or
// -demo; the seed mutations run through the store's normal API, so they
// are logged like any other write. A directory that already holds state
// ignores the seed flags — its own contents win.
func openDurable(dataDir string, kind spatialdb.IndexKind, logOpts wal.Options,
	ckptInterval time.Duration, ckptBytes int64, retryMax int,
	snapshot, universe string, demo bool, seed uint64, scale int) (*wal.DB, error) {

	// Resolve the universe a fresh store starts with (a recovered
	// snapshot's universe always wins) and hold on to the seed contents.
	var seedStore *spatialdb.Store
	var m *workload.Map
	var u bbox.Box
	switch {
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		seedStore, err = spatialdb.Load(f, kind)
		f.Close()
		if err != nil {
			return nil, err
		}
		u = seedStore.Universe()
	case demo:
		m = workload.GenMap(workload.MapConfig{
			Seed:  seed,
			Towns: 12 * scale, Interior: 12 * scale, Roads: 30 * scale,
		})
		u = m.Config.Universe
	default:
		var err error
		if u, err = parseUniverse(universe); err != nil {
			return nil, err
		}
	}

	db, err := wal.OpenDB(dataDir, wal.DBOptions{
		Log: logOpts, Kind: kind, Universe: u,
		CheckpointInterval: ckptInterval, CheckpointBytes: ckptBytes,
		RetryMax: retryMax,
	})
	if err != nil {
		return nil, err
	}
	st := db.Stats()
	log.Printf("recovered %s in %dms: snapshot lsn %d + %d replayed records (fsync %s)",
		dataDir, st.RecoveryMS, st.RecoveredFrom, st.Replayed, st.Policy)

	fresh := st.RecoveredFrom == 0 && st.AppliedLSN == 0 && len(db.Store().LayerNames()) == 0
	switch {
	case fresh && seedStore != nil:
		if err := copyStore(db.Store(), seedStore); err != nil {
			db.Close()
			return nil, fmt.Errorf("seeding from %s: %w", snapshot, err)
		}
		log.Printf("seeded from snapshot %s", snapshot)
	case fresh && m != nil:
		m.Populate(db.Store())
		log.Printf("generated demo map (seed %d, scale %d); parameters C=%v A=%v",
			seed, scale, m.Country.BoundingBox(), m.Area.BoundingBox())
	case !fresh && (seedStore != nil || m != nil):
		log.Printf("data dir %s already holds state; ignoring -snapshot/-demo", dataDir)
	}
	return db, nil
}

// copyStore replays src's contents into dst through the public mutation
// API, so in durable mode every object lands in the WAL.
func copyStore(dst, src *spatialdb.Store) error {
	for _, name := range src.LayerNames() {
		if _, _, err := dst.CreateLayer(name); err != nil {
			return err
		}
		for _, o := range src.Layer(name).Objects() {
			var err error
			if o.Name != "" {
				_, _, err = dst.Upsert(name, o.Name, o.Reg)
			} else {
				_, err = dst.Insert(name, "", o.Reg)
			}
			if err != nil {
				return fmt.Errorf("object %q: %w", o.Name, err)
			}
		}
	}
	return nil
}

func openStore(snapshot, universe string, kind spatialdb.IndexKind, demo bool, seed uint64, scale int) (*spatialdb.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		store, err := spatialdb.Load(f, kind)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s", snapshot)
		return store, nil
	}
	if demo {
		m := workload.GenMap(workload.MapConfig{
			Seed:  seed,
			Towns: 12 * scale, Interior: 12 * scale, Roads: 30 * scale,
		})
		store := spatialdb.NewStore(m.Config.Universe, kind)
		m.Populate(store)
		log.Printf("generated demo map (seed %d, scale %d); parameters C=%v A=%v",
			seed, scale, m.Country.BoundingBox(), m.Area.BoundingBox())
		return store, nil
	}
	u, err := parseUniverse(universe)
	if err != nil {
		return nil, err
	}
	return spatialdb.NewStore(u, kind), nil
}

func parseUniverse(s string) (bbox.Box, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return bbox.Box{}, fmt.Errorf("universe: want x0,y0,x1,y1, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return bbox.Box{}, fmt.Errorf("universe: %w", err)
		}
		vals[i] = v
	}
	u := bbox.Rect(vals[0], vals[1], vals[2], vals[3])
	if u.IsEmpty() {
		return bbox.Box{}, fmt.Errorf("universe: empty box %q", s)
	}
	return u, nil
}

// parsePlanMode resolves -plan; true means static (adaptive disabled).
func parsePlanMode(mode string) (bool, error) {
	switch mode {
	case "adaptive":
		return false, nil
	case "static":
		return true, nil
	}
	return false, fmt.Errorf("unknown plan mode %q (want adaptive or static)", mode)
}

// parseAltIndexes resolves -alt-indexes into index kinds.
func parseAltIndexes(s string) ([]spatialdb.IndexKind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []spatialdb.IndexKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := parseIndex(part)
		if err != nil {
			return nil, fmt.Errorf("alt-indexes: %w", err)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func parseIndex(name string) (spatialdb.IndexKind, error) {
	for _, k := range []spatialdb.IndexKind{
		spatialdb.Scan, spatialdb.RTree, spatialdb.PointRTree,
		spatialdb.Grid, spatialdb.ZOrderIdx,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index backend %q", name)
}
