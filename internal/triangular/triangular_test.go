package triangular

import (
	"testing"

	"repro/internal/boolalg"
	"repro/internal/constraint"
	"repro/internal/formula"
)

// TestE2PaperExample1 reproduces §3 Example 1: the projection of
// S = { x∧y ≠ 0, ¬x∧y ≠ 0 } on x is y ≠ 0 — the best unquantified
// approximation of ∃x.S (which itself is not expressible: it says
// "y has at least two parts" in atomic algebras).
func TestE2PaperExample1(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	n := constraint.Normal{
		F: formula.Zero(),
		G: []*formula.Formula{
			formula.And(x, y),
			formula.And(formula.Not(x), y),
		},
	}
	p, err := Proj(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.F.IsConst(false) {
		t.Errorf("projected equation = %v, want 0", p.F)
	}
	for _, g := range p.G {
		if !formula.Equivalent(g, y) {
			t.Errorf("projected disequation = %v, want y", g)
		}
	}
	if len(p.G) == 0 {
		t.Errorf("projection lost the disequations")
	}
}

// Theorem 4: for a system with ONE disequation the projection is exact in
// EVERY Boolean algebra. Exhaustive check over the 8-element algebra:
// for all f,g over {x,y} and every value of y,
// ∃x.(f=0 ∧ g≠0) ⇔ proj(S,x) satisfied.
func TestTheorem4ExactnessSingleDiseq(t *testing.T) {
	alg := boolalg.NewBitset(3)
	x, y := formula.Var(0), formula.Var(1)
	// A representative zoo of formula pairs.
	fs := []*formula.Formula{
		formula.Zero(),
		formula.And(x, y),
		formula.Diff(x, y),
		formula.Xor(x, y),
		formula.And(formula.Not(x), formula.Not(y)),
		formula.Or(x, y),
	}
	gs := []*formula.Formula{
		x,
		formula.And(x, y),
		formula.Diff(y, x),
		formula.Not(x),
		formula.Or(formula.And(x, y), formula.Not(y)),
	}
	for _, f := range fs {
		for _, g := range gs {
			n := constraint.Normal{F: f, G: []*formula.Formula{g}}
			p, err := Proj(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			for yv := uint64(0); yv < 8; yv++ {
				exists := false
				for xv := uint64(0); xv < 8; xv++ {
					if n.Satisfied(alg, []boolalg.Element{xv, yv}) {
						exists = true
						break
					}
				}
				env := []boolalg.Element{uint64(0), yv} // x unused in p
				if got := p.Satisfied(alg, env); got != exists {
					t.Fatalf("f=%v g=%v y=%#b: proj=%v, ∃x=%v\nproj form: F=%v G=%v",
						f, g, yv, got, exists, p.F, p.G)
				}
			}
		}
	}
}

// Soundness for MANY disequations in any algebra: ∃x.S ⇒ proj(S,x)
// (projection never loses true solutions). The converse can fail on atomic
// algebras — checked in TestE7AtomicGap below.
func TestProjSoundnessMultiDiseq(t *testing.T) {
	alg := boolalg.NewBitset(3)
	x, y, z := formula.Var(0), formula.Var(1), formula.Var(2)
	n := constraint.Normal{
		F: formula.Diff(x, formula.Or(y, z)),
		G: []*formula.Formula{
			formula.And(x, y),
			formula.And(formula.Not(x), y),
			formula.And(x, z),
		},
	}
	p, err := Proj(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for yv := uint64(0); yv < 8; yv++ {
		for zv := uint64(0); zv < 8; zv++ {
			for xv := uint64(0); xv < 8; xv++ {
				env := []boolalg.Element{xv, yv, zv}
				if n.Satisfied(alg, env) && !p.Satisfied(alg, env) {
					t.Fatalf("projection pruned a real solution x=%#b y=%#b z=%#b", xv, yv, zv)
				}
			}
		}
	}
}

// TestE7AtomicGap: on the ONE-atom algebra the projection of Example 1's
// system is satisfiable (y = the atom ≠ 0) yet no witness x exists —
// exactly the approximation gap Theorem 5 excludes for atomless algebras.
func TestE7AtomicGap(t *testing.T) {
	alg := boolalg.Two()
	x, y := formula.Var(0), formula.Var(1)
	n := constraint.Normal{
		F: formula.Zero(),
		G: []*formula.Formula{
			formula.And(x, y),
			formula.And(formula.Not(x), y),
		},
	}
	p, err := Proj(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	yv := alg.Top() // the single atom: y ≠ 0 holds
	if !p.Satisfied(alg, []boolalg.Element{alg.Bottom(), yv}) {
		t.Fatalf("projection should accept y = atom")
	}
	for _, xv := range []boolalg.Element{alg.Bottom(), alg.Top()} {
		if n.Satisfied(alg, []boolalg.Element{xv, yv}) {
			t.Fatalf("unexpected witness exists on the atomic algebra")
		}
	}
}

func TestCompileTriangularity(t *testing.T) {
	// Three query variables, one parameter (index 3).
	s := constraint.NewSystem()
	x := s.Var("x")
	y := s.Var("y")
	z := s.Var("z")
	c := s.Var("C") // parameter
	s.Subset(x, c).Subset(y, x).Overlap(y, z).NotSubset(z, y)
	order := []int{0, 1, 2} // retrieve x, then y, then z
	form, err := Compile(s.Normalize(), order)
	if err != nil {
		t.Fatal(err)
	}
	if form.Unsat {
		t.Fatalf("satisfiable system compiled to Unsat")
	}
	allowed := map[int]map[int]bool{
		0: {3: true},
		1: {3: true, 0: true},
		2: {3: true, 0: true, 1: true},
	}
	for i, st := range form.Steps {
		if st.Var != order[i] {
			t.Errorf("step %d constrains %d, want %d", i, st.Var, order[i])
		}
		for _, v := range st.Vars() {
			if !allowed[i][v] {
				t.Errorf("step %d mentions x%d — not triangular", i, v)
			}
		}
	}
	// Ground part mentions only the parameter.
	for _, v := range form.Ground.F.FreeVars() {
		if v != 3 {
			t.Errorf("ground equation mentions x%d", v)
		}
	}
}

// Compile soundness: for every full assignment satisfying the original
// system, every step accepts its prefix — the optimizer never prunes a
// real solution. Exhaustive over a 2-atom algebra.
func TestCompileNeverPrunesSolutions(t *testing.T) {
	systems := []func() *constraint.System{
		func() *constraint.System {
			s := constraint.NewSystem()
			x, y, c := s.Var("x"), s.Var("y"), s.Var("C")
			s.Subset(x, c).Overlap(x, y).Subset(y, c)
			return s
		},
		func() *constraint.System {
			s := constraint.NewSystem()
			x, y, c := s.Var("x"), s.Var("y"), s.Var("C")
			s.NotSubset(x, y).Equal(formula.Or(x, y), c)
			return s
		},
		func() *constraint.System {
			s := constraint.NewSystem()
			x, y, c := s.Var("x"), s.Var("y"), s.Var("C")
			s.StrictSubset(x, y).Disjoint(x, formula.Not(c))
			return s
		},
	}
	alg := boolalg.NewBitset(2)
	for si, mk := range systems {
		s := mk()
		form, err := Compile(s.Normalize(), []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		for cv := uint64(0); cv < 4; cv++ {
			for xv := uint64(0); xv < 4; xv++ {
				for yv := uint64(0); yv < 4; yv++ {
					env := []boolalg.Element{xv, yv, cv}
					if !s.Satisfied(alg, env) {
						continue
					}
					if form.Unsat {
						t.Fatalf("system %d: Unsat but solution exists", si)
					}
					if !form.Ground.Satisfied(alg, env) {
						t.Errorf("system %d: ground rejects params of a solution", si)
					}
					if !form.Steps[0].Satisfied(alg, env, xv) {
						t.Errorf("system %d: step 0 rejects x=%#b of solution (%#b,%#b,%#b)",
							si, xv, xv, yv, cv)
					}
					if !form.Steps[1].Satisfied(alg, env, yv) {
						t.Errorf("system %d: step 1 rejects y=%#b of solution (%#b,%#b,%#b)",
							si, yv, xv, yv, cv)
					}
				}
			}
		}
	}
}

// Compile completeness on exact steps: a full assignment accepted by all
// steps AND the ground residual satisfies the original system, whenever
// each level had at most one disequation (Theorem 4 exactness) — here we
// simply verify it holds for these specific systems on the 2-atom algebra.
func TestCompileExactForTheseSystems(t *testing.T) {
	s := constraint.NewSystem()
	x, y, c := s.Var("x"), s.Var("y"), s.Var("C")
	s.Subset(x, c).Subset(y, x).Overlap(y, c)
	form, err := Compile(s.Normalize(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	alg := boolalg.NewBitset(2)
	for cv := uint64(0); cv < 4; cv++ {
		for xv := uint64(0); xv < 4; xv++ {
			for yv := uint64(0); yv < 4; yv++ {
				env := []boolalg.Element{xv, yv, cv}
				accepted := form.Ground.Satisfied(alg, env) &&
					form.Steps[0].Satisfied(alg, env, xv) &&
					form.Steps[1].Satisfied(alg, env, yv)
				if accepted != s.Satisfied(alg, env) {
					t.Errorf("exactness fails at (%#b,%#b,%#b): steps=%v, system=%v",
						xv, yv, cv, accepted, s.Satisfied(alg, env))
				}
			}
		}
	}
}

func TestCompileDetectsUnsat(t *testing.T) {
	s := constraint.NewSystem()
	x := s.Var("x")
	s.Subset(x, formula.Zero()).NonEmpty(x)
	form, err := Compile(s.Normalize(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !form.Unsat {
		t.Errorf("x ⊑ 0 ∧ x ≠ 0 not detected as unsat")
	}
}

func TestCompileSchroderRange(t *testing.T) {
	// x = C exactly: lower and upper bounds both C.
	s := constraint.NewSystem()
	x, c := s.Var("x"), s.Var("C")
	s.Equal(x, c)
	form, err := Compile(s.Normalize(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	st := form.Steps[0]
	if !formula.Equivalent(st.Lower, c) {
		t.Errorf("Lower = %v, want C", st.Lower)
	}
	if !formula.Equivalent(st.Upper, c) {
		t.Errorf("Upper = %v, want C", st.Upper)
	}
}

func TestStepVarsAndString(t *testing.T) {
	s := constraint.NewSystem()
	x, y, c := s.Var("x"), s.Var("y"), s.Var("C")
	s.Subset(y, formula.Or(x, c)).Overlap(y, x)
	form, err := Compile(s.Normalize(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	vars := form.Steps[1].Vars()
	if len(vars) != 2 || vars[0] != 0 || vars[1] != 2 {
		t.Errorf("step 1 Vars = %v", vars)
	}
	out := form.StringNamed(s.Vars.Name)
	if out == "" {
		t.Errorf("empty rendering")
	}
	if form.String() == "" {
		t.Errorf("empty default rendering")
	}
}

func TestProjEliminatesVariable(t *testing.T) {
	x, y := formula.Var(0), formula.Var(1)
	n := constraint.Normal{
		F: formula.Xor(x, y),
		G: []*formula.Formula{formula.And(x, y)},
	}
	p, err := Proj(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.F.Uses(0) {
		t.Errorf("projected equation still uses x: %v", p.F)
	}
	for _, g := range p.G {
		if g.Uses(0) {
			t.Errorf("projected disequation still uses x: %v", g)
		}
	}
}
