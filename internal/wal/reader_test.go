package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/spatialdb"
	"repro/internal/vfs"
)

// readerPayload is the deterministic content of record i (1-based LSN).
func readerPayload(i uint64) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%23))))
}

func appendReaderScript(t *testing.T, l *Log, n uint64) {
	t.Helper()
	for i := uint64(1); i <= n; i++ {
		lsn, err := l.Append(readerPayload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != i {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
}

// collectFrom drains ReadFrom(after) completely and returns the LSNs and
// payload copies it delivered, verifying ordering as it goes.
func collectFrom(t *testing.T, l *Log, after uint64) ([]uint64, [][]byte) {
	t.Helper()
	var lsns []uint64
	var payloads [][]byte
	_, err := l.ReadFrom(after, 0, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrom(%d): %v", after, err)
	}
	return lsns, payloads
}

// TestReadFromEveryBoundary is the replication resumability property: a
// reader resumed from every record boundary yields exactly the suffix of
// the record sequence, across segment rotations. Tiny segments force
// many rotations so every boundary class — segment start, mid-segment,
// active tail — is exercised.
func TestReadFromEveryBoundary(t *testing.T) {
	const n = 60
	l, err := Open(t.TempDir(), Options{SegmentBytes: 96, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendReaderScript(t, l, n)
	if segs := l.Stats().Segments; segs < 5 {
		t.Fatalf("only %d segments; the property needs rotations", segs)
	}
	for after := uint64(0); after <= n; after++ {
		lsns, payloads := collectFrom(t, l, after)
		if want := int(n - after); len(lsns) != want {
			t.Fatalf("ReadFrom(%d): %d records, want %d", after, len(lsns), want)
		}
		for j, lsn := range lsns {
			want := after + uint64(j) + 1
			if lsn != want {
				t.Fatalf("ReadFrom(%d): record %d has LSN %d, want %d", after, j, lsn, want)
			}
			if string(payloads[j]) != string(readerPayload(want)) {
				t.Fatalf("ReadFrom(%d): LSN %d payload mismatch", after, lsn)
			}
		}
	}
}

// TestReadFromAfterTornFinalRecord crashes the log mid-append (simulated
// by chopping bytes off the newest segment) and requires every resumed
// reader to deliver the suffix minus the torn record — exactly what
// recovery preserves.
func TestReadFromAfterTornFinalRecord(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendReaderScript(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: remove 3 bytes from the newest segment.
	segs, err := scanSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, segs[len(segs)-1], segSuffix))
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{SegmentBytes: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !l.Stats().TornTail {
		t.Fatal("open did not detect the torn tail")
	}
	if got := l.LastLSN(); got != n-1 {
		t.Fatalf("LastLSN after torn open = %d, want %d", got, n-1)
	}
	for after := uint64(0); after <= n-1; after++ {
		lsns, _ := collectFrom(t, l, after)
		if want := int(n - 1 - after); len(lsns) != want {
			t.Fatalf("ReadFrom(%d) after torn tail: %d records, want %d", after, len(lsns), want)
		}
	}
}

// TestReadFromTruncatedPosition pins the snapshot-handoff contract: a
// cursor behind the oldest retained segment gets ErrTruncated, not a
// silent gap.
func TestReadFromTruncatedPosition(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 96, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendReaderScript(t, l, 30)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	removed, err := l.TruncateBelow(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBelow removed nothing; test needs a pruned prefix")
	}
	oldest := l.SegmentStart()
	if _, err := l.ReadFrom(0, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(0) after truncation = %v, want ErrTruncated", err)
	}
	// The oldest retained boundary still works.
	if _, err := l.ReadFrom(oldest-1, 0, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("ReadFrom(%d) at retention edge: %v", oldest-1, err)
	}
}

// TestReadFromBatchLimit pins the long-poll batching contract: max
// bounds each call and consecutive calls with advancing cursors cover
// the log exactly once.
func TestReadFromBatchLimit(t *testing.T) {
	const n = 25
	l, err := Open(t.TempDir(), Options{SegmentBytes: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendReaderScript(t, l, n)
	var got []uint64
	cursor := uint64(0)
	for {
		delivered, err := l.ReadFrom(cursor, 7, func(lsn uint64, _ []byte) error {
			got = append(got, lsn)
			cursor = lsn
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if delivered == 0 {
			break
		}
		if delivered > 7 {
			t.Fatalf("batch of %d exceeds max=7", delivered)
		}
	}
	if len(got) != n {
		t.Fatalf("batched reads delivered %d records, want %d", len(got), n)
	}
	for i, lsn := range got {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, lsn)
		}
	}
}

// TestChaosReadFromConcurrentAppend runs a tailing reader against a live
// appender — the exact shape of the primary-side replication stream —
// asserting under -race that the reader sees every record exactly once,
// in order, using AppendNotify instead of spinning.
func TestChaosReadFromConcurrentAppend(t *testing.T) {
	const n = 300
	l, err := Open(t.TempDir(), Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; i++ {
			if _, err := l.Append(readerPayload(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	cursor := uint64(0)
	deadline := time.After(10 * time.Second)
	for cursor < n {
		notify := l.AppendNotify()
		for {
			delivered, err := l.ReadFrom(cursor, 32, func(lsn uint64, payload []byte) error {
				if lsn != cursor+1 {
					return fmt.Errorf("saw LSN %d after %d", lsn, cursor)
				}
				if string(payload) != string(readerPayload(lsn)) {
					return fmt.Errorf("LSN %d payload mismatch", lsn)
				}
				cursor = lsn
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if delivered == 0 {
				break
			}
		}
		if cursor >= n {
			break
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatalf("reader stalled at LSN %d", cursor)
		}
	}
	wg.Wait()
}

// TestSnapshotPinDefersPrune is the satellite regression test for the
// snapshot-prune race: a snapshot being streamed to a replica must
// survive checkpoints that would otherwise prune it, and must be pruned
// once released.
func TestSnapshotPinDefersPrune(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, DBOptions{
		Kind: spatialdb.Scan, Universe: testUniverse,
		KeepSnapshots: 1, CheckpointInterval: -1, CheckpointBytes: -1,
		Log: Options{Policy: SyncNever},
	})
	defer db.Close()

	if _, _, _, err := db.AcquireSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("AcquireSnapshot on empty dir = %v, want ErrNoSnapshot", err)
	}

	// advance runs the deterministic mutation script forward; each op
	// logs exactly one record, so checkpoints land at fresh LSNs.
	scripted := 0
	advance := func(upto int) {
		t.Helper()
		for ; scripted < upto; scripted++ {
			if err := scriptOp(scripted, db.Store()); err != nil {
				t.Fatalf("script op %d: %v", scripted, err)
			}
		}
	}

	advance(4)
	lsnA, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snapA := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsnA, snapSuffix))

	gotLSN, r, release, err := db.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gotLSN != lsnA {
		t.Fatalf("AcquireSnapshot LSN %d, want %d", gotLSN, lsnA)
	}

	// Two more checkpoints; with KeepSnapshots=1 both would prune snapA
	// were it not pinned.
	advance(8)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	advance(12)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapA); err != nil {
		t.Fatalf("pinned snapshot was pruned mid-stream: %v", err)
	}
	// The pinned file must still be fully readable.
	buf := make([]byte, 16)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("reading pinned snapshot: %v", err)
	}
	r.Close()
	release()

	// Released: the next checkpoint prunes it.
	advance(16)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapA); !os.IsNotExist(err) {
		t.Fatalf("released snapshot still present after checkpoint (stat err %v)", err)
	}
}
