// Tests for the primary-side replication endpoints and the probe-header
// contract (PR 10): /repl/snapshot and /repl/wal serve a durable
// primary's checkpoint and log, and /healthz and /readyz attach
// Retry-After on every transient state they report — the PR 9 bug was a
// degraded /healthz with no header while /readyz set one by hand.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/bbox"
	"repro/internal/repl"
	"repro/internal/spatialdb"
	"repro/internal/vfs"
	"repro/internal/wal"
)

func TestHealthzDegradedCarriesRetryAfter(t *testing.T) {
	s, db, inj := newFaultyServer(t, t.TempDir())
	putTestObject(t, s, "towns", "a")
	inj.Add(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Err: syscall.EIO})
	body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	if w := do(t, s, http.MethodPut, "/layers/towns/objects/b", body, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("PUT during outage: %d, want 503", w.Code)
	}
	if !db.Degraded() {
		t.Fatal("store not degraded")
	}
	// Liveness stays 200 — but the transient state must carry Retry-After,
	// exactly like /readyz does.
	w := do(t, s, http.MethodGet, "/healthz", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz while degraded: %d, want 200", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("degraded /healthz carries no Retry-After (the probes disagree again)")
	}
	wr := do(t, s, http.MethodGet, "/readyz", nil, nil)
	if wr.Code != http.StatusServiceUnavailable || wr.Header().Get("Retry-After") == "" {
		t.Fatalf("/readyz while degraded: %d (Retry-After %q)", wr.Code, wr.Header().Get("Retry-After"))
	}
}

func TestHealthzHealthyHasNoRetryAfter(t *testing.T) {
	s, db := newDurableServer(t, t.TempDir())
	defer db.Close()
	w := do(t, s, http.MethodGet, "/healthz", nil, nil)
	if w.Code != http.StatusOK || w.Header().Get("Retry-After") != "" {
		t.Fatalf("healthy /healthz: %d (Retry-After %q), want 200 without the header",
			w.Code, w.Header().Get("Retry-After"))
	}
}

func TestHealthzReplicaReportsCatchUpState(t *testing.T) {
	// A replica that has never reached its primary: /healthz stays 200
	// (alive) but reports the replica state with Retry-After; /readyz
	// 503s until bootstrap.
	rep, err := repl.New(repl.Options{
		Primary:   "http://primary.invalid:8080",
		Transport: &repl.HTTPTransport{Base: "http://primary.invalid:8080"},
		Kind:      spatialdb.RTree,
		Universe:  bbox.Rect(0, 0, 1000, 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(rep.Store(), Options{Replica: rep})

	var health map[string]any
	w := do(t, s, http.MethodGet, "/healthz", nil, &health)
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz on replica: %d, want 200", w.Code)
	}
	if health["state"] != "replica" || health["primary"] != "http://primary.invalid:8080" {
		t.Fatalf("/healthz = %v", health)
	}
	if health["lagging"] != true || w.Header().Get("Retry-After") == "" {
		t.Fatalf("bootstrapping replica /healthz lacks lagging+Retry-After: %v (Retry-After %q)",
			health, w.Header().Get("Retry-After"))
	}
	wr := do(t, s, http.MethodGet, "/readyz", nil, nil)
	if wr.Code != http.StatusServiceUnavailable || wr.Header().Get("Retry-After") == "" {
		t.Fatalf("bootstrapping replica /readyz: %d (Retry-After %q), want 503 with Retry-After",
			wr.Code, wr.Header().Get("Retry-After"))
	}
	var ready map[string]any
	if err := json.Unmarshal(wr.Body.Bytes(), &ready); err != nil {
		t.Fatalf("/readyz body %q: %v", wr.Body.String(), err)
	}
	if ready["state"] != "catching-up" || ready["reason"] == "" {
		t.Fatalf("/readyz body = %v", ready)
	}
	// Local mutations bounce to the primary.
	body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	wm := do(t, s, http.MethodPut, "/layers/towns/objects/x", body, nil)
	if wm.Code != http.StatusServiceUnavailable ||
		wm.Header().Get(PrimaryHeader) != "http://primary.invalid:8080" ||
		wm.Header().Get("Retry-After") == "" {
		t.Fatalf("replica mutation: %d (%s %q, Retry-After %q)", wm.Code, PrimaryHeader,
			wm.Header().Get(PrimaryHeader), wm.Header().Get("Retry-After"))
	}
	// Snapshot load would desync the replica: refused the same way.
	if w := do(t, s, http.MethodPost, "/snapshot", map[string]any{"version": 2}, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /snapshot on replica: %d, want 503", w.Code)
	}
	// /stats grows the replication section.
	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.Replication == nil || stats.Replication.Primary != "http://primary.invalid:8080" {
		t.Fatalf("/stats replication = %+v", stats.Replication)
	}
}

func TestReplEndpointsRequireDurableMode(t *testing.T) {
	s, _ := newTestServer(t)
	if w := do(t, s, http.MethodGet, "/repl/snapshot", nil, nil); w.Code != http.StatusConflict {
		t.Fatalf("/repl/snapshot on non-durable: %d, want 409", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/repl/wal", nil, nil); w.Code != http.StatusConflict {
		t.Fatalf("/repl/wal on non-durable: %d, want 409", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/repl/promote", nil, nil); w.Code != http.StatusConflict {
		t.Fatalf("/repl/promote on non-replica: %d, want 409", w.Code)
	}
}

func TestReplSnapshotEndpoint(t *testing.T) {
	s, db := newDurableServer(t, t.TempDir())
	defer db.Close()
	putTestObject(t, s, "towns", "a")
	putTestObject(t, s, "towns", "b")

	// No checkpoint yet: 404, the replica tails from LSN 0.
	if w := do(t, s, http.MethodGet, "/repl/snapshot", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("/repl/snapshot before checkpoint: %d, want 404", w.Code)
	}

	lsn, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodGet, "/repl/snapshot", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/repl/snapshot: %d %s", w.Code, w.Body.String())
	}
	if got, want := w.Header().Get(repl.SnapshotLSNHeader), strconv.FormatUint(lsn, 10); got != want {
		t.Fatalf("%s = %q, want %q (checkpoint LSN)", repl.SnapshotLSNHeader, got, want)
	}
	// The body is a loadable binary snapshot reproducing the store.
	st, err := spatialdb.LoadBinary(bytes.NewReader(w.Body.Bytes()), spatialdb.RTree)
	if err != nil {
		t.Fatalf("snapshot body does not load: %v", err)
	}
	if st.Layer("towns") == nil || st.Layer("towns").Len() != 2 {
		t.Fatalf("snapshot store layers = %v", st.LayerNames())
	}
}

func TestReplWALStreamEndpoint(t *testing.T) {
	s, db := newDurableServer(t, t.TempDir())
	defer db.Close()
	putTestObject(t, s, "towns", "a")
	putTestObject(t, s, "towns", "b")
	putTestObject(t, s, "towns", "c")

	// Bad cursor: 400 before the stream starts.
	if w := do(t, s, http.MethodGet, "/repl/wal?from=nope", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("/repl/wal?from=nope: %d, want 400", w.Code)
	}

	// The wire protocol end to end, through the real transport: resume
	// from LSN 1 and receive exactly records 2..3 (each put is one WAL
	// record).
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tr := &repl.HTTPTransport{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream, err := tr.OpenWAL(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var lsns []uint64
	for len(lsns) < 2 {
		rec, err := stream.Next()
		if err != nil {
			t.Fatalf("Next after %v: %v", lsns, err)
		}
		if rec.Heartbeat {
			continue
		}
		if rec.DurableLSN != db.DurableLSN() {
			t.Fatalf("record %d carries durable_lsn %d, want %d", rec.LSN, rec.DurableLSN, db.DurableLSN())
		}
		if _, err := spatialdb.DecodeMutation(rec.Data); err != nil {
			t.Fatalf("record %d payload does not decode: %v", rec.LSN, err)
		}
		lsns = append(lsns, rec.LSN)
	}
	if lsns[0] != 2 || lsns[1] != 3 {
		t.Fatalf("streamed LSNs %v, want [2 3]", lsns)
	}

	// Truncate past the cursor: the resume comes back 410 → ErrTruncated.
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.OpenWAL(ctx, 1); !errors.Is(err, wal.ErrTruncated) {
		t.Fatalf("OpenWAL behind retention: %v, want wal.ErrTruncated", err)
	}
}

func TestReplWALStreamDrains(t *testing.T) {
	s, db := newDurableServer(t, t.TempDir())
	defer db.Close()
	putTestObject(t, s, "towns", "a")

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tr := &repl.HTTPTransport{Base: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream, err := tr.OpenWAL(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	// Drain the pending records, then BeginDrain: the stream must end
	// with an end record followed by a clean EOF.
	sawEnd := false
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.BeginDrain()
	}()
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.End {
			sawEnd = true
			if rec.DurableLSN != db.DurableLSN() {
				t.Fatalf("end record durable_lsn %d, want %d", rec.DurableLSN, db.DurableLSN())
			}
		}
	}
	if !sawEnd {
		t.Fatal("drained stream closed without an end record")
	}
}
