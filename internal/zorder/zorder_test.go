package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bbox"
)

func TestInterleaveRoundTrip(t *testing.T) {
	cases := []struct{ x, y uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {0xffff, 0xffff}, {0x1234, 0xabc},
	}
	for _, c := range cases {
		code := Interleave2(c.x, c.y)
		x, y := Deinterleave2(code)
		if x != c.x || y != c.y {
			t.Errorf("round trip (%d,%d) → %d → (%d,%d)", c.x, c.y, code, x, y)
		}
	}
}

func TestInterleaveOrderIsZOrder(t *testing.T) {
	// The four children of the root quadrant in z order:
	// (0,0) < (1,0) < (0,1) < (1,1).
	codes := []uint64{
		Interleave2(0, 0), Interleave2(1, 0), Interleave2(0, 1), Interleave2(1, 1),
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatalf("z-order violated: %v", codes)
		}
	}
	if codes[3] != 3 {
		t.Errorf("Interleave2(1,1) = %d, want 3", codes[3])
	}
}

// Property: round trip for arbitrary 16-bit coordinates.
func TestQuickInterleaveRoundTrip(t *testing.T) {
	check := func(x, y uint16) bool {
		cx, cy := Deinterleave2(Interleave2(uint32(x), uint32(y)))
		return cx == uint32(x) && cy == uint32(y)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementContains(t *testing.T) {
	whole := Element{Code: 0, Level: 0}
	quadrant := Element{Code: 0, Level: 1}
	other := Element{Code: quadrant.Size(), Level: 1}
	if !whole.ContainsElem(quadrant) || !whole.ContainsElem(other) {
		t.Errorf("root must contain its children")
	}
	if quadrant.ContainsElem(other) || other.ContainsElem(quadrant) {
		t.Errorf("siblings must not contain each other")
	}
	if !quadrant.ContainsElem(quadrant) {
		t.Errorf("containment must be reflexive")
	}
}

func testSpace() *Space { return NewSpace(bbox.Rect(0, 0, 1024, 1024)) }

func TestNewSpaceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty universe should panic")
		}
	}()
	NewSpace(bbox.Empty(2))
}

func TestDecomposeWholeUniverse(t *testing.T) {
	s := testSpace()
	es := s.Decompose(bbox.Rect(0, 0, 1024, 1024), 0)
	if len(es) != 1 || es[0].Level != 0 {
		t.Errorf("universe decomposition = %v", es)
	}
}

func TestDecomposeQuadrant(t *testing.T) {
	s := testSpace()
	// Cell width is 1024/2^16 = 0.015625; the lower-left quadrant spans
	// grid cells [0, 32767], i.e. coordinates [0, 512). A box whose upper
	// corner falls inside cell 32767 decomposes to exactly that quadrant.
	es := s.Decompose(bbox.Rect(0, 0, 511.99, 511.99), 0)
	if len(es) != 1 || es[0].Level != 1 || es[0].Code != 0 {
		t.Errorf("quadrant decomposition = %v", es)
	}
}

func TestDecomposeOutsideUniverse(t *testing.T) {
	s := testSpace()
	if es := s.Decompose(bbox.Rect(2000, 2000, 3000, 3000), 0); es != nil {
		t.Errorf("outside box decomposed to %v", es)
	}
}

func TestDecomposeCoverage(t *testing.T) {
	s := testSpace()
	b := bbox.Rect(100, 200, 300, 250)
	es := s.Decompose(b, 64)
	if len(es) == 0 {
		t.Fatalf("no elements")
	}
	// Every element interval must be disjoint from the others (after
	// merge) and the union must cover the box's grid cells: spot-check by
	// verifying a sample of points inside b fall in some element.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		px := 100 + rng.Float64()*200
		py := 200 + rng.Float64()*50
		cx := uint32(px / 1024 * (1 << MaxLevel))
		cy := uint32(py / 1024 * (1 << MaxLevel))
		leaf := Element{Code: Interleave2(cx, cy), Level: MaxLevel}
		found := false
		for _, e := range es {
			if e.ContainsElem(leaf) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point (%g,%g) not covered", px, py)
		}
	}
	// Disjointness.
	for i := range es {
		for j := i + 1; j < len(es); j++ {
			if es[i].ContainsElem(es[j]) || es[j].ContainsElem(es[i]) {
				t.Fatalf("elements %v and %v overlap", es[i], es[j])
			}
		}
	}
}

func TestDecomposeBudget(t *testing.T) {
	s := testSpace()
	// A thin diagonal-ish box needs many cells; the budget must cap it.
	budgeted := s.Decompose(bbox.Rect(1, 1, 1000, 3), 8)
	unbounded := s.Decompose(bbox.Rect(1, 1, 1000, 3), 0)
	// The budget is approximate (it is checked before each emit and the
	// post-merge can recombine), but it must cut the cover substantially.
	if len(budgeted)*2 > len(unbounded) {
		t.Errorf("budgeted cover has %d elements vs %d unbounded — budget ineffective",
			len(budgeted), len(unbounded))
	}
}

func randItems(n int, seed int64, span float64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64()*900, rng.Float64()*900
		w, h := rng.Float64()*span+1, rng.Float64()*span+1
		items[i] = Item{ID: int64(i), Box: bbox.Rect(x, y, x+w, y+h)}
	}
	return items
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	s := testSpace()
	as := randItems(80, 1, 50)
	bs := randItems(90, 2, 50)
	pairs, stats := s.Join(as, bs, 32)
	want := map[Pair]bool{}
	for _, a := range as {
		for _, b := range bs {
			if a.Box.Overlaps(b.Box) {
				want[Pair{a.ID, b.ID}] = true
			}
		}
	}
	if len(pairs) != len(want) {
		t.Fatalf("join found %d pairs, nested loop %d", len(pairs), len(want))
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("join reported non-overlapping pair %v", p)
		}
	}
	if stats.Results != len(pairs) {
		t.Errorf("stats.Results = %d, len(pairs) = %d", stats.Results, len(pairs))
	}
	if stats.Candidates < stats.Results {
		t.Errorf("candidates %d < results %d", stats.Candidates, stats.Results)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	s := testSpace()
	pairs, _ := s.Join(nil, randItems(5, 3, 10), 0)
	if len(pairs) != 0 {
		t.Errorf("join with empty left = %v", pairs)
	}
}

func TestJoinIdenticalBoxes(t *testing.T) {
	s := testSpace()
	box := bbox.Rect(10, 10, 20, 20)
	as := []Item{{ID: 1, Box: box}}
	bs := []Item{{ID: 2, Box: box}}
	pairs, _ := s.Join(as, bs, 0)
	if len(pairs) != 1 || pairs[0] != (Pair{1, 2}) {
		t.Errorf("identical-box join = %v", pairs)
	}
}

func TestJoinTouchingBoxes(t *testing.T) {
	s := testSpace()
	as := []Item{{ID: 1, Box: bbox.Rect(0, 0, 10, 10)}}
	bs := []Item{{ID: 2, Box: bbox.Rect(10, 0, 20, 10)}}
	pairs, _ := s.Join(as, bs, 0)
	if len(pairs) != 1 {
		t.Errorf("touching boxes should join (closed semantics): %v", pairs)
	}
}

// Property: z-order join equals nested loop on random inputs.
func TestQuickJoinAgainstNestedLoop(t *testing.T) {
	s := testSpace()
	check := func(seed int64) bool {
		as := randItems(25, seed, 80)
		bs := randItems(25, seed+1, 80)
		pairs, _ := s.Join(as, bs, 16)
		count := 0
		for _, a := range as {
			for _, b := range bs {
				if a.Box.Overlaps(b.Box) {
					count++
				}
			}
		}
		return len(pairs) == count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
