// Nested module pinning the ecosystem analyzers CI's non-blocking job
// runs (staticcheck, govulncheck). Keeping them out of the root module
// keeps the engine dependency-free and buildable offline; `go install`
// run inside this directory resolves each tool at the version below.
// CI runs `go mod tidy` first, so go.sum is generated there rather than
// committed.
module repro/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
