// GIS overlay analysis: site selection with positive AND negative
// constraints — the query class the paper's Boolean constraint language
// adds over plain spatial joins.
//
// Scenario: find a parcel P and its containing zone Z such that P lies in
// the zone, overlaps the serviced area S, and avoids the flood plain F
// entirely (P ∧ F = 0) while NOT being fully built over (P ⋢ built).
//
// Run with:
//
//	go run ./examples/gis
package main

import (
	"fmt"
	"log"

	boolq "repro"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

func main() {
	universe := boolq.Rect(0, 0, 1000, 1000)
	store := spatialdb.NewStore(universe, spatialdb.RTree)
	rng := workload.NewRNG(2024)

	// Zones: a 4x4 grid.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			store.MustInsert("zones", fmt.Sprintf("zone-%d%d", i, j),
				boolq.RegionFromBox(boolq.Rect(
					float64(i)*250, float64(j)*250,
					float64(i+1)*250, float64(j+1)*250)))
		}
	}
	// Parcels: random small lots.
	for p := 0; p < 120; p++ {
		x, y := rng.Range(0, 960), rng.Range(0, 960)
		w, h := rng.Range(10, 40), rng.Range(10, 40)
		store.MustInsert("parcels", fmt.Sprintf("parcel-%d", p),
			boolq.RegionFromBox(boolq.Rect(x, y, x+w, y+h)))
	}

	// Parameters: serviced area, flood plain, built-up region.
	params := map[string]*boolq.Region{
		"S": boolq.RegionFromBox(boolq.Rect(100, 100, 600, 600)),
		"F": boolq.RegionFromBoxes(2, boolq.Rect(0, 450, 1000, 550), boolq.Rect(700, 0, 800, 1000)),
		"B": boolq.RegionFromBoxes(2, boolq.Rect(150, 150, 350, 350)),
	}

	q, err := boolq.ParseQuery(`
		find P in parcels, Z in zones
		given S, F, B
		where
		  P <= Z;            # parcel inside its zone
		  P & S != 0;        # touches the serviced area
		  disjoint(P, F);    # entirely outside the flood plain
		  P !<= B            # not fully built over
	`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := boolq.Compile(q, store)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.Run(store, params, boolq.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("eligible parcels: %d\n", len(res.Solutions))
	for i, sol := range res.Solutions {
		if i == 10 {
			fmt.Printf("  … and %d more\n", len(res.Solutions)-10)
			break
		}
		fmt.Printf("  %s in %s\n", sol.Objects[0].Name, sol.Objects[1].Name)
	}

	naive, err := boolq.RunNaive(q, store, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwork: optimized %d tuples vs naive %d (%.1fx reduction)\n",
		res.Stats.Candidates, naive.Stats.Candidates,
		float64(naive.Stats.Candidates)/float64(res.Stats.Candidates))
	if naive.Stats.Solutions != res.Stats.Solutions {
		log.Fatalf("BUG: optimized and naive disagree")
	}
}
